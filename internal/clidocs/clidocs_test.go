// Package clidocs gates the documented command lines. Every
// `go run ./cmd/<tool> ...` invocation in the repo's markdown is
// extracted and its flags and subcommands are checked against the
// tool's actual usage output, so a renamed flag or removed subcommand
// fails the build instead of silently rotting the docs.
package clidocs

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// docSources are the markdown files whose command lines are under
// contract. docs/*.md is globbed so new documents join automatically.
var docSources = []string{"README.md", "EXPERIMENTS.md", "DESIGN.md"}

var cmdLine = regexp.MustCompile("go run \\./cmd/([a-z]+)([^`\\n]*)")

// stopTokens end argument scanning: everything after shell syntax
// (redirection, background, comments) is not part of the tool's argv.
func stopToken(tok string) bool {
	switch tok {
	case "#", "|", "&", "&&":
		return true
	}
	return strings.HasPrefix(tok, ">") || strings.HasPrefix(tok, "2>")
}

type invocation struct {
	where   string // file:line
	tool    string
	subcmds []string // leading bare words: "scenario", "run", "summarize", ...
	flags   []string // flag names with dashes stripped: "exp", "verdict-dir", ...
}

// parseInvocation splits the text after "go run ./cmd/<tool>" into
// leading subcommand words and flag names. Value arguments (file
// names, experiment ids, placeholders like <id>) are skipped: flag
// arity is not knowable from usage text, and file arguments carry no
// contract.
func parseInvocation(where, tool, rest string) invocation {
	inv := invocation{where: where, tool: tool}
	leading := true
	for _, tok := range strings.Fields(rest) {
		if stopToken(tok) {
			break
		}
		if strings.HasPrefix(tok, "-") {
			leading = false
			name := strings.TrimLeft(tok, "-")
			name, _, _ = strings.Cut(name, "=")
			if name != "" {
				inv.flags = append(inv.flags, name)
			}
			continue
		}
		if leading && !strings.ContainsAny(tok, "./<") {
			inv.subcmds = append(inv.subcmds, tok)
			continue
		}
		leading = false
	}
	return inv
}

func collectInvocations(t *testing.T, root string) []invocation {
	t.Helper()
	files := append([]string(nil), docSources...)
	globbed, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range globbed {
		rel, _ := filepath.Rel(root, g)
		files = append(files, rel)
	}
	var invs []invocation
	for _, rel := range files {
		data, err := os.ReadFile(filepath.Join(root, rel))
		if err != nil {
			t.Errorf("%s: %v", rel, err)
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range cmdLine.FindAllStringSubmatch(line, -1) {
				where := rel + ":" + itoa(i+1)
				invs = append(invs, parseInvocation(where, m[1], m[2]))
			}
		}
	}
	return invs
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// usageHarvester builds each referenced tool once and collects usage
// text: `tool -h` plus, when a subcommand is documented,
// `tool <subcmd>` with no further arguments — every subcommand CLI in
// this repo fails fast to usage when given nothing to work on.
type usageHarvester struct {
	root   string
	binDir string
	bins   map[string]string // tool -> built binary (or "" on failure)
	usage  map[string]string // tool or tool+" "+subcmd -> output
}

func (h *usageHarvester) run(t *testing.T, args ...string) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, args[0], args[1:]...)
	cmd.Dir = h.root
	out, _ := cmd.CombinedOutput() // usage exits non-zero by design
	return string(out)
}

func (h *usageHarvester) bin(t *testing.T, tool string) string {
	t.Helper()
	if b, ok := h.bins[tool]; ok {
		return b
	}
	if _, err := os.Stat(filepath.Join(h.root, "cmd", tool)); err != nil {
		t.Errorf("documented tool cmd/%s does not exist: %v", tool, err)
		h.bins[tool] = ""
		return ""
	}
	bin := filepath.Join(h.binDir, tool)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/"+tool)
	cmd.Dir = h.root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Errorf("building cmd/%s: %v\n%s", tool, err, out)
		bin = ""
	}
	h.bins[tool] = bin
	return bin
}

func (h *usageHarvester) corpus(t *testing.T, tool string, subcmds []string) string {
	t.Helper()
	bin := h.bin(t, tool)
	if bin == "" {
		return ""
	}
	text, ok := h.usage[tool]
	if !ok {
		text = h.run(t, bin, "-h")
		h.usage[tool] = text
	}
	if len(subcmds) > 0 {
		key := tool + " " + subcmds[0]
		sub, ok := h.usage[key]
		if !ok {
			sub = h.run(t, bin, subcmds[0])
			h.usage[key] = sub
		}
		text += "\n" + sub
	}
	return text
}

// TestDocumentedCommandsParse fails when a command line documented in
// the markdown names a flag or subcommand the tool no longer defines.
// It is deliberately one-sided: docs may show a subset of the flags,
// but never a stale one.
func TestDocumentedCommandsParse(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI tools")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	invs := collectInvocations(t, root)
	if len(invs) < 10 {
		t.Fatalf("found only %d documented command lines; the extractor regressed", len(invs))
	}
	h := &usageHarvester{
		root:   root,
		binDir: t.TempDir(),
		bins:   map[string]string{},
		usage:  map[string]string{},
	}
	for _, inv := range invs {
		corpus := h.corpus(t, inv.tool, inv.subcmds)
		if corpus == "" {
			continue // build failure already reported
		}
		for _, sub := range inv.subcmds {
			if !regexp.MustCompile(`\b` + regexp.QuoteMeta(sub) + `\b`).MatchString(corpus) {
				t.Errorf("%s: %s has no subcommand %q (documented: go run ./cmd/%s %s ...)",
					inv.where, inv.tool, sub, inv.tool, strings.Join(inv.subcmds, " "))
			}
		}
		for _, fl := range inv.flags {
			re := regexp.MustCompile(`(^|[^-\w])-` + regexp.QuoteMeta(fl) + `([^-\w]|$)`)
			if !re.MatchString(corpus) {
				t.Errorf("%s: %s does not define flag -%s", inv.where, inv.tool, fl)
			}
		}
	}
}
