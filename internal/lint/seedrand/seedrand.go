// Package seedrand forbids ambient randomness inside the simulation
// packages.
//
// Two shapes are rejected: the global math/rand (and math/rand/v2)
// top-level functions, whose shared source makes results depend on
// everything else that drew from it; and rand.NewSource / rand.NewPCG
// with hard-coded constant seeds, which hide the seed from the cache
// key. Every RNG must be constructed from an explicit config seed, as
// migrate's policies do (rand.New(rand.NewSource(cfg.Seed))).
package seedrand

import (
	"go/ast"
	"go/types"

	"starnuma/internal/lint/analysis"
)

// globalFns are the top-level convenience functions that draw from the
// package-global source (both math/rand and math/rand/v2 spellings).
var globalFns = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "N": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true, "UintN": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// constructors whose all-constant arguments indicate a hard-coded seed.
var seedCtors = map[string]bool{"NewSource": true, "NewPCG": true, "NewChaCha8": true}

func isRandPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

var packages = analysis.NewListFlag(analysis.SimPackages...)

// Analyzer is the seedrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "seedrand",
	Doc: "require explicitly-seeded RNGs in simulation packages\n\n" +
		"Global math/rand functions share one ambient source, and literal\n" +
		"seeds bypass the config that forms the result-cache key. Construct\n" +
		"RNGs as rand.New(rand.NewSource(cfg.Seed)).",
	Run: run,
}

func init() {
	Analyzer.Flags.Var(packages, "packages",
		"comma-separated package paths the check applies to")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !packages.Contains(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				fn, ok := pass.TypesInfo.Uses[n].(*types.Func)
				if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // a method on an explicit *rand.Rand is fine
				}
				if globalFns[fn.Name()] {
					pass.Reportf(n.Pos(), "%s.%s draws from the process-global source; construct an RNG from an explicit config seed (rand.New(rand.NewSource(cfg.Seed)))",
						fn.Pkg().Path(), fn.Name())
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass, n)
				if fn == nil || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) || !seedCtors[fn.Name()] {
					return true
				}
				if len(n.Args) == 0 {
					return true
				}
				for _, arg := range n.Args {
					if pass.TypesInfo.Types[arg].Value == nil {
						return true // at least one non-constant argument: seed flows in
					}
				}
				pass.Reportf(n.Pos(), "%s.%s with a hard-coded seed hides the seed from the result-cache key; take it from the config",
					fn.Pkg().Path(), fn.Name())
			}
			return true
		})
	}
	return nil, nil
}

// calleeFunc resolves the called function object, if the callee is a
// plain identifier or selector.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
