// Fixture for seedrand: package path "a" is placed in the analyzer's
// scope by the test.
package a

import "math/rand"

func bad() {
	_ = rand.Intn(16)    // want `math/rand\.Intn draws from the process-global source`
	_ = rand.Float64()   // want `math/rand\.Float64 draws from the process-global source`
	_ = rand.Perm(8)     // want `math/rand\.Perm draws from the process-global source`
	rand.Seed(1)         // want `math/rand\.Seed draws from the process-global source`
	rand.Shuffle(4, nil) // want `math/rand\.Shuffle draws from the process-global source`
}

func hardcoded() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `math/rand\.NewSource with a hard-coded seed`
}

type config struct{ Seed int64 }

// good mirrors migrate's pattern: the RNG flows from an explicit
// config seed, and instance methods are unrestricted.
func good(cfg config) int {
	r := rand.New(rand.NewSource(cfg.Seed))
	if r.Float64() < 0.5 {
		return r.Intn(16)
	}
	return r.Perm(8)[0]
}

func justified() int {
	//starnumavet:allow seedrand fixture demonstrates the reasoned escape hatch
	return rand.Intn(2)
}
