package seedrand

import (
	"path/filepath"
	"testing"

	"starnuma/internal/lint/linttest"
)

func scopeTo(t *testing.T, pkgs string) {
	t.Helper()
	old := Analyzer.Flags.Lookup("packages").Value.String()
	if err := Analyzer.Flags.Set("packages", pkgs); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { Analyzer.Flags.Set("packages", old) })
}

func TestSeedrand(t *testing.T) {
	scopeTo(t, "a")
	linttest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"))
}
