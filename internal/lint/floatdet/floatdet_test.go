package floatdet

import (
	"path/filepath"
	"testing"

	"starnuma/internal/lint/linttest"
)

// scopeTo points the analyzer at the fixture package for the duration
// of a test.
func scopeTo(t *testing.T, pkgs string) {
	t.Helper()
	old := Analyzer.Flags.Lookup("packages").Value.String()
	if err := Analyzer.Flags.Set("packages", pkgs); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { Analyzer.Flags.Set("packages", old) })
}

func TestFloatdet(t *testing.T) {
	scopeTo(t, "a")
	linttest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"))
}

// TestOutOfScope: float equality in a package outside the scope list
// (the orchestration layer) produces no diagnostics.
func TestOutOfScope(t *testing.T) {
	scopeTo(t, "a")
	linttest.Run(t, Analyzer, filepath.Join("testdata", "src", "b"))
}
