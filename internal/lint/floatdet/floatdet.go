// Package floatdet forbids exact equality comparison of floating-point
// values inside the simulation packages.
//
// The bit-identity contract makes float results reproducible, but `==`
// on floats is still a trap: NaN compares unequal to itself, signed
// zeros compare equal while having different bits, and a comparison
// that "works" on one code path silently diverges when an upstream
// refactor changes rounding. The sanctioned helpers in internal/stats
// say what is actually meant: stats.SameFloat for bit-level identity
// (NaN-safe), stats.ApproxEqual for tolerance checks, stats.IsZero for
// guard clauses before division.
package floatdet

import (
	"go/ast"
	"go/token"
	"go/types"

	"starnuma/internal/lint/analysis"
)

var packages = analysis.NewListFlag(analysis.SimPackages...)

// Analyzer is the floatdet pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatdet",
	Doc: "forbid == and != on floating-point operands in simulation packages\n\n" +
		"Exact float equality is NaN-hostile and brittle under refactoring.\n" +
		"Use stats.SameFloat (bit identity), stats.ApproxEqual (tolerance), or\n" +
		"stats.IsZero (division guards) instead; math.IsNaN/math.IsInf for\n" +
		"special values.",
	Run: run,
}

func init() {
	Analyzer.Flags.Var(packages, "packages",
		"comma-separated package paths the check applies to")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !packages.Contains(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
				return true
			}
			// A comparison folded entirely at compile time cannot see a
			// runtime NaN and is deterministic by construction.
			if isConstant(pass, be.X) && isConstant(pass, be.Y) {
				return true
			}
			op := "=="
			if be.Op == token.NEQ {
				op = "!="
			}
			switch {
			case isMathCall(pass, be.X, "NaN") || isMathCall(pass, be.Y, "NaN"):
				pass.Reportf(be.OpPos, "comparing against math.NaN() with %s is always %v; use math.IsNaN",
					op, be.Op == token.NEQ)
			case isMathCall(pass, be.X, "Inf") || isMathCall(pass, be.Y, "Inf"):
				pass.Reportf(be.OpPos, "comparing against math.Inf with %s is fragile; use math.IsInf", op)
			case be.Op == token.NEQ && sameIdent(be.X, be.Y):
				pass.Reportf(be.OpPos, "x != x as a NaN test is obscure; use math.IsNaN")
			case isZeroLiteral(pass, be.X) || isZeroLiteral(pass, be.Y):
				pass.Reportf(be.OpPos, "float %s 0 comparison in simulation package %s; use stats.IsZero (or stats.ApproxEqual with an explicit tolerance)",
					op, pass.Pkg.Path())
			default:
				pass.Reportf(be.OpPos, "float %s comparison in simulation package %s; use stats.SameFloat for bit identity or stats.ApproxEqual with an explicit tolerance",
					op, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil, nil
}

// isFloat reports whether the expression has floating-point type
// (including named types whose underlying type is a float).
func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	return pass.TypesInfo.Types[e].Value != nil
}

// isZeroLiteral reports whether e is the constant zero.
func isZeroLiteral(pass *analysis.Pass, e ast.Expr) bool {
	v := pass.TypesInfo.Types[e].Value
	return v != nil && v.String() == "0"
}

// isMathCall reports whether e is a call math.<name>(...).
func isMathCall(pass *analysis.Pass, e ast.Expr, name string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == name
}

// sameIdent reports whether both operands are the same simple
// identifier (the classic x != x NaN test).
func sameIdent(x, y ast.Expr) bool {
	xi, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return false
	}
	yi, ok := ast.Unparen(y).(*ast.Ident)
	return ok && xi.Name == yi.Name
}
