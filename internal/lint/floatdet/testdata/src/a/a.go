package a

import "math"

type reading struct{ v float64 }

func compares(x, y float64, r reading) bool {
	if x == y { // want `float == comparison in simulation package a; use stats.SameFloat`
		return true
	}
	if x != y { // want `float != comparison in simulation package a; use stats.SameFloat`
		return true
	}
	if r.v == x { // want `float == comparison`
		return true
	}
	return false
}

func zeroGuards(x float64) float64 {
	if x == 0 { // want `float == 0 comparison in simulation package a; use stats.IsZero`
		return 0
	}
	if 0.0 != x { // want `float != 0 comparison`
		return 1 / x
	}
	return x
}

func specials(x float64) bool {
	if x == math.NaN() { // want `comparing against math.NaN\(\) with == is always false; use math.IsNaN`
		return true
	}
	if x != math.NaN() { // want `comparing against math.NaN\(\) with != is always true; use math.IsNaN`
		return true
	}
	if x == math.Inf(1) { // want `comparing against math.Inf with == is fragile; use math.IsInf`
		return true
	}
	return x != x // want `x != x as a NaN test is obscure; use math.IsNaN`
}

type celsius float64

func named(a, b celsius) bool {
	return a == b // want `float == comparison`
}

// Negative cases: none of these may be flagged.
func clean(x, y float64, n int) bool {
	if n == 0 { // integers are fine
		return false
	}
	if x < y || x >= y { // ordering comparisons are fine
		return true
	}
	if math.IsNaN(x) || math.IsInf(x, 0) { // the sanctioned forms
		return true
	}
	const a, b = 1.5, 2.5
	return a == b // both operands constant: folded at compile time
}

func allowed(x float64) bool {
	//starnumavet:allow floatdet exact sentinel comparison against a value we stored ourselves
	return x == 12.5
}
