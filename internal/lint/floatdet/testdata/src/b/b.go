package b

// Package b stands in for the orchestration layer (runner/exp/cmd),
// which is outside floatdet's package scope: the same comparison that
// is an error in package a is fine here.
func compare(x, y float64) bool {
	return x == y
}
