package suite

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"starnuma/internal/lint/analysis"
)

// minPkgDocLen rejects placeholder docs ("Package x does x."): a
// package bound by the determinism contract owes the reader what it
// models and what the contract demands of it, which does not fit in
// one clause.
const minPkgDocLen = 120

// TestEveryHotPackageDocumented gates package-level godoc for every
// package in analysis.SimPackages — the set starnumavet holds to the
// determinism contract, which is exactly the set a reader debugging a
// nondeterministic or slow window has to navigate. Each must carry a
// substantive package comment (on any one non-test file) so `go doc`
// explains its role in the step-A/B/C pipeline before anyone reads
// code.
func TestEveryHotPackageDocumented(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	for _, imp := range analysis.SimPackages {
		rel, ok := strings.CutPrefix(imp, "starnuma/")
		if !ok {
			t.Errorf("SimPackages entry %q does not start with the module path", imp)
			continue
		}
		dir := filepath.Join(root, filepath.FromSlash(rel))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("%s: listed in SimPackages but unreadable: %v", imp, err)
			continue
		}
		var doc string
		var docFiles []string
		fset := token.NewFileSet()
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
				parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Errorf("%s/%s: %v", imp, name, err)
				continue
			}
			if f.Doc != nil {
				doc = f.Doc.Text()
				docFiles = append(docFiles, name)
			}
		}
		switch {
		case len(docFiles) == 0:
			t.Errorf("%s has no package godoc comment on any file", imp)
		case len(docFiles) > 1:
			t.Errorf("%s has package godoc comments in %d files (%s); godoc concatenates them — keep one",
				imp, len(docFiles), strings.Join(docFiles, ", "))
		case len(doc) < minPkgDocLen:
			t.Errorf("%s package godoc is %d chars; under %d it cannot explain the package's pipeline role (doc: %q)",
				imp, len(doc), minPkgDocLen, doc)
		}
	}
}
