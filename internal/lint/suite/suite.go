// Package suite is the single registry of starnumavet's analyzers.
//
// cmd/starnumavet, the fixture-coverage tests, and the documentation
// gate (TestEveryAnalyzerDocumented) all draw from Analyzers(), so a
// new analyzer that is not registered here, documented in
// docs/STATIC_ANALYSIS.md, and covered by fixtures fails the build.
package suite

import (
	"starnuma/internal/lint/allowcheck"
	"starnuma/internal/lint/analysis"
	"starnuma/internal/lint/cycleunits"
	"starnuma/internal/lint/detclock"
	"starnuma/internal/lint/floatdet"
	"starnuma/internal/lint/hotalloc"
	"starnuma/internal/lint/maporder"
	"starnuma/internal/lint/metricname"
	"starnuma/internal/lint/seedrand"
)

// Analyzers returns every starnumavet analyzer, in the order the driver
// runs them (allowcheck is RunAfter and goes last regardless).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detclock.Analyzer,
		seedrand.Analyzer,
		maporder.Analyzer,
		cycleunits.Analyzer,
		hotalloc.Analyzer,
		metricname.Analyzer,
		floatdet.Analyzer,
		allowcheck.Analyzer,
	}
}
