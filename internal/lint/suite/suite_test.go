package suite

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"starnuma/internal/lint/allowcheck"
	"starnuma/internal/lint/analysis"
	"starnuma/internal/lint/floatdet"
)

// docFile is the analyzer catalogue, relative to this package.
var docFile = filepath.Join("..", "..", "..", "docs", "STATIC_ANALYSIS.md")

// tableRowRE matches a catalogue table row of the form "| `name` | ...".
var tableRowRE = regexp.MustCompile("(?m)^\\|\\s*`([a-z]+)`\\s*\\|")

// TestEveryAnalyzerDocumented keeps three sources of truth aligned:
// the registered analyzers (Analyzers()), the catalogue table in
// docs/STATIC_ANALYSIS.md, and the fixture directories under
// internal/lint/<name>/testdata/src. Adding an analyzer without
// documenting it, or documenting one that does not exist, fails here.
func TestEveryAnalyzerDocumented(t *testing.T) {
	registered := make(map[string]bool)
	for _, a := range Analyzers() {
		if registered[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		registered[a.Name] = true
	}

	data, err := os.ReadFile(docFile)
	if err != nil {
		t.Fatalf("reading catalogue: %v", err)
	}
	doc := string(data)

	documented := make(map[string]bool)
	for _, m := range tableRowRE.FindAllStringSubmatch(doc, -1) {
		if documented[m[1]] {
			t.Errorf("analyzer %q has two catalogue table rows", m[1])
		}
		documented[m[1]] = true
	}

	for name := range registered {
		if !documented[name] {
			t.Errorf("analyzer %q is registered but has no table row in %s", name, docFile)
		}
		// Each analyzer also gets a prose section headed "### name".
		if !strings.Contains(doc, "### "+name+" ") {
			t.Errorf("analyzer %q has no \"### %s — ...\" section in %s", name, name, docFile)
		}
		fixtures := filepath.Join("..", name, "testdata", "src")
		entries, err := os.ReadDir(fixtures)
		if err != nil || len(entries) == 0 {
			t.Errorf("analyzer %q has no fixture packages under %s: %v", name, fixtures, err)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("%s documents analyzer %q, which is not registered in suite.Analyzers()", docFile, name)
		}
	}
}

// setFlag sets an analyzer flag for the duration of the test.
func setFlag(t *testing.T, a *analysis.Analyzer, name, value string) {
	t.Helper()
	f := a.Flags.Lookup(name)
	if f == nil {
		t.Fatalf("%s has no -%s flag", a.Name, name)
	}
	old := f.Value.String()
	if err := a.Flags.Set(name, value); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Flags.Set(name, old) })
}

// TestFixturesPositive asserts that every registered analyzer still
// fires on its own positive fixture (testdata/src/a). A silently dead
// analyzer — one whose scope list, directive spelling, or type lookup
// rotted — passes its own // want-based test only if the wants rotted
// with it; this gate holds the minimum bar that each analyzer finds
// *something* in the tree of violations written for it.
func TestFixturesPositive(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			// Fixtures type-check as package "a"; analyzers scoped to the
			// real simulation packages need pointing at it, and
			// metricname needs its fixture observability doc.
			analyzers := []*analysis.Analyzer{a}
			switch a.Name {
			case "detclock", "seedrand", "floatdet":
				setFlag(t, a, "packages", "a")
			case "cycleunits":
				setFlag(t, a, "types", "a.Time,a.Cycles,a.GBps")
			case "metricname":
				setFlag(t, a, "doc", filepath.Join("..", "metricname", "testdata", "obs.md"))
			case "allowcheck":
				// allowcheck audits suppression usage, so it only fires
				// when run behind the analyzer its fixture's directives
				// name, through the shared driver pipeline.
				setFlag(t, floatdet.Analyzer, "packages", "a")
				analyzers = []*analysis.Analyzer{floatdet.Analyzer, allowcheck.Analyzer}
			}

			dir := filepath.Join("..", a.Name, "testdata", "src", "a")
			pkg, err := analysis.LoadFixture(dir)
			if err != nil {
				t.Fatalf("loading %s: %v", dir, err)
			}
			n := 0
			for _, res := range analysis.RunAnalyzers(analyzers, pkg) {
				if res.Err != nil {
					t.Fatalf("%s failed: %v", res.Analyzer.Name, res.Err)
				}
				if res.Analyzer.Name == a.Name {
					n += len(res.Diagnostics)
				}
			}
			if n == 0 {
				t.Errorf("%s produced no diagnostics on its positive fixture %s", a.Name, dir)
			}
		})
	}
}
