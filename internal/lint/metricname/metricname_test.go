package metricname

import (
	"path/filepath"
	"testing"

	"starnuma/internal/lint/linttest"
)

// withDoc points the doc check at a fixture document for the duration
// of a test.
func withDoc(t *testing.T, path string) {
	t.Helper()
	old := docPath
	if err := Analyzer.Flags.Set("doc", path); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { docPath = old })
}

func TestMetricname(t *testing.T) {
	withDoc(t, filepath.Join("testdata", "obs.md"))
	linttest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"))
}
