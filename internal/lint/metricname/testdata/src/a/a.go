package a

import (
	"fmt"

	"starnuma/internal/metrics"
)

func emit(m *metrics.Registry, kind string, i int) {
	// Well-formed, documented names in every resolvable shape.
	m.Add("good/counter", 1)
	m.Observe("sim/queue_depth", 3)
	m.Add("good/"+kind, 1)                         // constant prefix + dynamic tail
	m.Point(fmt.Sprintf("link/s%d/util", i), 0, 1) // Sprintf constant prefix
	name := "good/" + kind
	m.Add(name+"/messages", 1) // single-assignment local

	m.Add("Bad/Name", 1)                // want `does not match the namespace grammar`
	m.SetGauge("bad name/x", 1)         // want `does not match the namespace grammar`
	m.Add("flat", 1)                    // want `does not match the namespace grammar`
	m.Add("undoc/x", 1)                 // want `metric namespace "undoc" is undocumented`
	m.Add(kind, 1)                      // want `cannot be statically resolved`
	m.Add(fmt.Sprintf("%s/x", kind), 1) // want `cannot be statically resolved|is malformed`
}

// reassigned is assigned twice, so its value is not statically known.
func reassigned(m *metrics.Registry, cond bool) {
	name := "good/a"
	if cond {
		name = "undoc/b"
	}
	m.Add(name, 1) // want `cannot be statically resolved`
}

// otherAdd: Add methods on non-Registry receivers are not emission
// sites and are left alone.
type counter struct{ n int }

func (c *counter) Add(name string, v int) { c.n += v }

func clean(c *counter, kind string) {
	c.Add(kind, 1)
	c.Add("Whatever Format", 2)
}
