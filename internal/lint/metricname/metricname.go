// Package metricname statically validates every metric name passed to
// an internal/metrics emission site (Registry.Add / SetGauge / Observe
// / Point).
//
// The runtime gate TestMetricNamespaceDocumented only sees names a
// particular simulation happens to emit; this analyzer sees them all at
// compile time. Each name argument is resolved to a constant string —
// or at least a constant prefix — through string concatenation chains,
// fmt.Sprintf constant formats, and single-assignment locals. The
// resolved text must fit the namespace grammar
//
//	segment(/segment)+   with   segment = [a-z0-9_-]+
//
// and its top-level segment must have a section in
// docs/OBSERVABILITY.md (matched the same way the runtime gate does:
// the document must contain `<prefix>/` in backquotes). Names the
// analyzer cannot resolve to any constant prefix are themselves
// diagnostics: dynamic names defeat both checks and the doc.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"starnuma/internal/lint/analysis"
)

// metricsPkg is the package whose Registry methods are emission sites.
const metricsPkg = "starnuma/internal/metrics"

// nameMethods maps emission-method names to the index of the name
// argument.
var nameMethods = map[string]int{
	"Add":      0,
	"SetGauge": 0,
	"Observe":  0,
	"Point":    0,
}

var nameRE = regexp.MustCompile(`^[a-z0-9_-]+(/[a-z0-9_-]+)+$`)

// prefixRE constrains a partially-resolved prefix: same alphabet, no
// leading separator, no empty segment.
var prefixRE = regexp.MustCompile(`^[a-z0-9_-][a-z0-9_/-]*$`)

var docPath string

// Analyzer is the metricname pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "validate metric names at internal/metrics emission sites\n\n" +
		"Metric names must follow the namespace grammar seg(/seg)+ with\n" +
		"segments [a-z0-9_-]+, and the top-level namespace must be documented\n" +
		"in docs/OBSERVABILITY.md. Names are resolved statically; a name with\n" +
		"no resolvable constant prefix is an error.",
	Run: run,
}

func init() {
	Analyzer.Flags.StringVar(&docPath, "doc", "",
		"path to the observability doc (default: docs/OBSERVABILITY.md beside the module's go.mod)")
}

func run(pass *analysis.Pass) (interface{}, error) {
	doc, docName, err := loadDoc(pass)
	if err != nil {
		return nil, err
	}
	r := &resolver{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			argIdx, ok := emissionSite(pass, call)
			if !ok || argIdx >= len(call.Args) {
				return true
			}
			arg := call.Args[argIdx]
			name, complete, resolved := r.resolve(arg, 0)
			switch {
			case !resolved:
				pass.Reportf(arg.Pos(), "metric name cannot be statically resolved to a constant prefix; build names from constant strings so the grammar and doc checks can see them")
			case complete && !nameRE.MatchString(name):
				pass.Reportf(arg.Pos(), "metric name %q does not match the namespace grammar seg(/seg)+ with segments [a-z0-9_-]+", name)
			case !complete && !prefixRE.MatchString(name):
				pass.Reportf(arg.Pos(), "metric name prefix %q is malformed: segments are [a-z0-9_-]+ separated by single slashes", name)
			default:
				top, _, ok := strings.Cut(name, "/")
				if !ok && !complete {
					return true // prefix too short to name its namespace; the runtime gate still covers it
				}
				if doc != "" && !strings.Contains(doc, "`"+top+"/`") {
					pass.Reportf(arg.Pos(), "metric namespace %q is undocumented: add a `%s/` section to %s", top, top, docName)
				}
			}
			return true
		})
	}
	return nil, nil
}

// emissionSite reports whether call invokes one of the Registry
// emission methods, returning the index of its name argument.
func emissionSite(pass *analysis.Pass, call *ast.CallExpr) (int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	idx, ok := nameMethods[sel.Sel.Name]
	if !ok {
		return 0, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0, false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return 0, false
	}
	if named.Obj().Pkg().Path() != metricsPkg || named.Obj().Name() != "Registry" {
		return 0, false
	}
	return idx, true
}

// resolver resolves name expressions to constant text, using a lazily
// built index of single-assignment locals.
type resolver struct {
	pass    *analysis.Pass
	assigns map[types.Object][]ast.Expr // every RHS ever assigned to the object (nil entry: unresolvable form)
}

// resolve returns the statically-known text of e. complete reports
// whether the text is the whole name (false: a prefix); ok reports
// whether anything was resolved at all.
func (r *resolver) resolve(e ast.Expr, depth int) (text string, complete, ok bool) {
	if depth > 8 {
		return "", false, false
	}
	e = ast.Unparen(e)
	if tv, found := r.pass.TypesInfo.Types[e]; found && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true, true
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op != token.ADD {
			return "", false, false
		}
		l, lComplete, lOK := r.resolve(x.X, depth+1)
		if !lOK {
			return "", false, false
		}
		if !lComplete {
			return l, false, true
		}
		rt, rComplete, rOK := r.resolve(x.Y, depth+1)
		if !rOK {
			return l, false, true
		}
		return l + rt, rComplete, true
	case *ast.CallExpr:
		if format, ok := sprintfFormat(r.pass, x); ok {
			if i := strings.IndexByte(format, '%'); i >= 0 {
				return format[:i], false, true
			}
			return format, true, true
		}
		return "", false, false
	case *ast.Ident:
		obj := r.pass.TypesInfo.ObjectOf(x)
		if _, isVar := obj.(*types.Var); !isVar {
			return "", false, false
		}
		rhss, found := r.assignIndex()[obj]
		if !found || len(rhss) != 1 || rhss[0] == nil {
			return "", false, false
		}
		return r.resolve(rhss[0], depth+1)
	}
	return "", false, false
}

// sprintfFormat returns the constant format string of a fmt.Sprintf
// call.
func sprintfFormat(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Sprintf" {
		return "", false
	}
	if len(call.Args) == 0 {
		return "", false
	}
	tv := pass.TypesInfo.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// assignIndex maps each local variable to every right-hand side ever
// assigned to it; a nil entry marks a form resolve cannot follow (range
// variables, +=, multi-value assignments).
func (r *resolver) assignIndex() map[types.Object][]ast.Expr {
	if r.assigns != nil {
		return r.assigns
	}
	r.assigns = make(map[types.Object][]ast.Expr)
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := r.pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return
		}
		r.assigns[obj] = append(r.assigns[obj], rhs)
	}
	for _, f := range r.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				simple := (st.Tok == token.DEFINE || st.Tok == token.ASSIGN) && len(st.Lhs) == len(st.Rhs)
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if simple {
						record(id, st.Rhs[i])
					} else {
						record(id, nil)
					}
				}
			case *ast.ValueSpec:
				for i, id := range st.Names {
					if i < len(st.Values) && len(st.Values) == len(st.Names) {
						record(id, st.Values[i])
					} else if len(st.Values) > 0 {
						record(id, nil)
					}
				}
			case *ast.RangeStmt:
				for _, x := range []ast.Expr{st.Key, st.Value} {
					if id, ok := x.(*ast.Ident); ok {
						record(id, nil)
					}
				}
			}
			return true
		})
	}
	return r.assigns
}

// loadDoc returns the observability doc's text and display name. With
// no -doc flag it walks up from the package's source to the module root
// and reads docs/OBSERVABILITY.md; a missing doc disables only the
// documentation check (grammar still applies), so fixtures and
// embedded uses stay self-contained.
func loadDoc(pass *analysis.Pass) (text, name string, err error) {
	if docPath != "" {
		data, err := os.ReadFile(docPath)
		if err != nil {
			return "", "", err
		}
		return string(data), filepath.ToSlash(docPath), nil
	}
	if len(pass.Files) == 0 {
		return "", "", nil
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			data, err := os.ReadFile(filepath.Join(dir, "docs", "OBSERVABILITY.md"))
			if err != nil {
				return "", "", nil
			}
			return string(data), "docs/OBSERVABILITY.md", nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", nil
		}
		dir = parent
	}
}
