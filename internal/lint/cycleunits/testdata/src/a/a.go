// Fixture for cycleunits: the test points the analyzer's -types flag
// at this package's own unit types, mirroring sim.Time / sim.Cycles /
// link.GBps.
package a

// Time is a duration in picoseconds.
type Time int64

// Cycles counts core clock ticks.
type Cycles int64

// GBps is a bandwidth.
type GBps float64

// Unit constants: built by constant multiplication, never flagged.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
)

func directConversion(c Cycles) Time {
	return Time(c) // want `direct conversion from a\.Cycles to a\.Time`
}

func bandwidthAsTime(b GBps) Time {
	return Time(b) // want `direct conversion from a\.GBps to a\.Time`
}

// scalarCrossing is the sanctioned route: through a dimensionless
// scalar with an explicit conversion factor.
func scalarCrossing(c Cycles, periodPS float64) Time {
	return Time(float64(c)*periodPS + 0.5)
}

func timeSquared(t, u Time) Time {
	return t * u // want `a\.Time \* a\.Time has no physical meaning`
}

func scaleByConstant(t Time) Time {
	return 2 * t // dimensionless constant scale: fine
}

func bareLiteral(t Time) Time {
	return t + 100 // want `bare numeric literal added to a\.Time`
}

func bareLiteralSub(t Time) Time {
	return t - 7 // want `bare numeric literal subtracted from a\.Time`
}

func unitConstant(t Time) Time {
	return t + 100*Nanosecond // the literal's unit is spelled out: fine
}

func zeroIsUnitFree(t Time) Time {
	return t + 0 // adding zero needs no unit
}

func justified(t, u Time) Time {
	//starnumavet:allow cycleunits fixture demonstrates the reasoned escape hatch
	return t * u
}

func plainArithmetic(x, y int64) int64 {
	return x*y + 100 // untyped/plain scalars are unrestricted
}
