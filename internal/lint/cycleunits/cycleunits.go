// Package cycleunits guards the codebase's physical-unit types against
// silent unit crossings.
//
// The simulator measures time in sim.Time (picoseconds), core work in
// sim.Cycles (clock ticks) and bandwidth in link.GBps. Go's type system
// keeps these from mixing implicitly, but a latency-model refactor can
// still cross units through a careless conversion (sim.Time(cycles)
// treats a cycle count as picoseconds) or a meaningless product
// (Time*Time). The analyzer rejects:
//
//   - direct conversion between two distinct unit types — cross via a
//     scalar and an explicit conversion factor, or a helper such as
//     Cycles.Time(periodPS);
//   - multiplying two values of the same unit type (unit² has no
//     physical meaning in the model);
//   - adding/subtracting a bare numeric literal to a unit-typed value —
//     spell the unit out (100*sim.Nanosecond) or name the constant.
package cycleunits

import (
	"go/ast"
	"go/constant"
	"go/types"

	"starnuma/internal/lint/analysis"
)

// unitTypes lists the guarded named types as "pkgpath.Name".
var unitTypes = analysis.NewListFlag(
	"starnuma/internal/sim.Time",
	"starnuma/internal/sim.Cycles",
	"starnuma/internal/link.GBps",
)

// Analyzer is the cycleunits pass.
var Analyzer = &analysis.Analyzer{
	Name: "cycleunits",
	Doc: "forbid arithmetic that silently crosses unit types\n\n" +
		"sim.Time (picoseconds), sim.Cycles (core clock ticks) and link.GBps\n" +
		"may only be converted into one another through an explicit scalar\n" +
		"with a conversion factor (or a helper like Cycles.Time).",
	Run: run,
}

func init() {
	Analyzer.Flags.Var(unitTypes, "types",
		"comma-separated pkgpath.TypeName list of guarded unit types")
}

// unitKey returns the "pkgpath.Name" of t if it is a guarded unit type.
func unitKey(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	key := obj.Pkg().Path() + "." + obj.Name()
	if unitTypes.Contains(key) {
		return key
	}
	return ""
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, n)
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkConversion flags T2(x) where x has unit type T1 != T2.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := unitKey(tv.Type)
	if dst == "" {
		return
	}
	src := unitKey(pass.TypesInfo.Types[call.Args[0]].Type)
	if src == "" || src == dst {
		return
	}
	pass.Reportf(call.Pos(), "direct conversion from %s to %s silently crosses units; go through an explicit scalar with a conversion factor (e.g. a Cycles.Time-style helper)",
		src, dst)
}

func checkBinary(pass *analysis.Pass, b *ast.BinaryExpr) {
	xt := pass.TypesInfo.Types[b.X]
	yt := pass.TypesInfo.Types[b.Y]
	xu, yu := unitKey(xt.Type), unitKey(yt.Type)
	switch b.Op.String() {
	case "*":
		// A unit times itself is unit², which nothing in the model
		// measures; one operand must be a dimensionless scalar.
		if xu != "" && xu == yu && !(isConstant(xt) || isConstant(yt)) {
			pass.Reportf(b.Pos(), "%s * %s has no physical meaning (unit squared); one operand should be a dimensionless scalar",
				xu, yu)
		}
	case "+", "-":
		// unit ± bare literal: the literal's unit is unstated. Spell it
		// (100*sim.Nanosecond) or name the constant.
		if xu != "" && bareNonZeroLiteral(pass, b.Y) {
			pass.Reportf(b.Y.Pos(), "bare numeric literal %s %s leaves its unit unstated; use a unit constant (e.g. 100*sim.Nanosecond) or a named constant",
				opWord(b.Op.String()), xu)
		} else if yu != "" && bareNonZeroLiteral(pass, b.X) {
			pass.Reportf(b.X.Pos(), "bare numeric literal %s %s leaves its unit unstated; use a unit constant (e.g. 100*sim.Nanosecond) or a named constant",
				opWord(b.Op.String()), yu)
		}
	}
}

func opWord(op string) string {
	if op == "+" {
		return "added to"
	}
	return "subtracted from"
}

// isConstant reports whether the operand is a compile-time constant
// (e.g. the 1000 in `1000 * Nanosecond` carries no unit of its own even
// though the context types it as Time).
func isConstant(tv types.TypeAndValue) bool { return tv.Value != nil }

// bareNonZeroLiteral reports whether e is a literal like 100 or 0.5
// (possibly negated) with a non-zero value.
func bareNonZeroLiteral(pass *analysis.Pass, e ast.Expr) bool {
	inner := ast.Unparen(e)
	if u, ok := inner.(*ast.UnaryExpr); ok {
		inner = ast.Unparen(u.X)
	}
	if _, ok := inner.(*ast.BasicLit); !ok {
		return false
	}
	v := pass.TypesInfo.Types[e].Value
	return v != nil && constant.Sign(v) != 0
}
