package cycleunits

import (
	"path/filepath"
	"testing"

	"starnuma/internal/lint/linttest"
)

func TestCycleunits(t *testing.T) {
	old := Analyzer.Flags.Lookup("types").Value.String()
	if err := Analyzer.Flags.Set("types", "a.Time,a.Cycles,a.GBps"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { Analyzer.Flags.Set("types", old) })
	linttest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"))
}
