// Package linttest runs a starnumavet analyzer over a fixture
// directory and checks its diagnostics against // want comments, the
// same contract as x/tools' analysistest:
//
//	time.Now() // want `wall clock`
//
// Each `// want "re"` (or backquoted) regexp on a line must be matched
// by exactly one diagnostic reported on that line, and every diagnostic
// must be claimed by a want. Fixtures live under testdata/src/<pkg> and
// are type-checked as package path <pkg>, so analyzers whose behaviour
// depends on the package path can be pointed at "a" via their flags.
package linttest

import (
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"starnuma/internal/lint/analysis"
)

var wantRE = regexp.MustCompile("//" + `\s*want\s+(.*)$`)

// Run loads the fixture directory, applies the analyzer, and reports
// any mismatch between diagnostics and // want comments as test
// errors.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	RunAnalyzers(t, []*analysis.Analyzer{a}, dir)
}

// RunAnalyzers loads the fixture directory and applies several
// analyzers through the same driver pipeline starnumavet uses
// (analysis.RunAnalyzers), so they share one allow index. The combined
// diagnostics are checked against the fixture's // want comments. This
// is how meta-analyzers such as allowcheck — whose findings depend on
// what the other analyzers suppressed — are fixture-tested.
func RunAnalyzers(t *testing.T, analyzers []*analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := analysis.LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				k := key{posn.Filename, posn.Line}
				for _, pat := range splitPatterns(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	for _, res := range analysis.RunAnalyzers(analyzers, pkg) {
		if res.Err != nil {
			t.Fatalf("analyzer %s: %v", res.Analyzer.Name, res.Err)
		}
		diags = append(diags, res.Diagnostics...)
	}
	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		k := key{posn.Filename, posn.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// Diagnostics applies the analyzer to an already-loaded package and
// returns its findings (skipping _test.go files, as the drivers do).
func Diagnostics(t *testing.T, a *analysis.Analyzer, pkg *analysis.Package) []analysis.Diagnostic {
	t.Helper()
	var files []*ast.File
	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	return diags
}

// splitPatterns parses the payload of a want comment: a sequence of
// double-quoted or backquoted regexps.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			break
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			break
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	if len(out) == 0 {
		// Unquoted single pattern, tolerated for terseness.
		out = append(out, s)
	}
	return out
}
