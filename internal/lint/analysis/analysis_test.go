package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestListFlag(t *testing.T) {
	f := NewListFlag("x", "y")
	if !f.Contains("x") || f.Contains("z") {
		t.Fatalf("defaults not honoured: %v", f.List)
	}
	if err := f.Set(" a, b ,,c"); err != nil {
		t.Fatal(err)
	}
	if got := f.String(); got != "a,b,c" {
		t.Fatalf("Set/String = %q", got)
	}
	if f.Contains("x") || !f.Contains("b") {
		t.Fatalf("Set did not replace the list: %v", f.List)
	}
}

func TestAllowDirective(t *testing.T) {
	src := `package p

func f() {
	//starnumavet:allow det reason given here
	a := 1
	b := 2 //starnumavet:allow det same-line reason
	c := 3
	//starnumavet:allow det
	d := 4
	_, _, _, _ = a, b, c, d
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{
		Analyzer: &Analyzer{Name: "det"},
		Fset:     fset,
		Files:    []*ast.File{file},
	}
	lineStart := func(line int) token.Pos {
		return fset.File(file.Pos()).LineStart(line)
	}
	for _, tc := range []struct {
		line int
		want bool
		why  string
	}{
		{5, true, "directive on preceding line"},
		{6, true, "directive on same line"},
		{7, false, "no directive"},
		{9, false, "directive without a reason is inert"},
	} {
		if got := pass.Allowed(lineStart(tc.line)); got != tc.want {
			t.Errorf("line %d: Allowed = %v, want %v (%s)", tc.line, got, tc.want, tc.why)
		}
	}

	other := &Pass{Analyzer: &Analyzer{Name: "other"}, Fset: fset, Files: pass.Files}
	if other.Allowed(lineStart(5)) {
		t.Error("directive for det must not cover analyzer other")
	}
}

// TestLoad exercises the go list -export pipeline on a real package.
func TestLoad(t *testing.T) {
	pkgs, err := Load("", "starnuma/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "starnuma/internal/sim" {
		t.Fatalf("Load = %v", pkgs)
	}
	p := pkgs[0]
	if p.Types == nil || p.TypesInfo == nil || len(p.Files) == 0 {
		t.Fatal("package not fully populated")
	}
	if p.Types.Scope().Lookup("Engine") == nil {
		t.Error("sim.Engine not in package scope")
	}
}
