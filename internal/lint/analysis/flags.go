package analysis

import "strings"

// ListFlag is a comma-separated string-list flag value, used by
// analyzers for package scopes and type lists.
type ListFlag struct {
	List []string
}

// NewListFlag returns a ListFlag holding the given defaults.
func NewListFlag(defaults ...string) *ListFlag { return &ListFlag{List: defaults} }

func (f *ListFlag) String() string { return strings.Join(f.List, ",") }

// Set replaces the list with the comma-separated elements of s.
func (f *ListFlag) Set(s string) error {
	f.List = f.List[:0]
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			f.List = append(f.List, e)
		}
	}
	return nil
}

// Contains reports whether v is in the list.
func (f *ListFlag) Contains(v string) bool {
	for _, e := range f.List {
		if e == v {
			return true
		}
	}
	return false
}

// SimPackages is the set of packages bound by the determinism contract:
// everything that executes between a (system, sim, workload, seed)
// cache key and a Result must be a pure function of that key. Only
// internal/runner, internal/exp, internal/lint and cmd/ may read the
// wall clock or the environment — they sit outside the cached
// computation.
var SimPackages = []string{
	"starnuma/internal/attrib",
	"starnuma/internal/fault",
	"starnuma/internal/scenario",
	"starnuma/internal/metrics",
	"starnuma/internal/sim",
	"starnuma/internal/core",
	"starnuma/internal/evtrace",
	"starnuma/internal/migrate",
	"starnuma/internal/coherence",
	"starnuma/internal/cache",
	"starnuma/internal/link",
	"starnuma/internal/memdev",
	"starnuma/internal/pool",
	"starnuma/internal/tlb",
	"starnuma/internal/topology",
	"starnuma/internal/trace",
	"starnuma/internal/tracker",
	"starnuma/internal/workload",
	"starnuma/internal/stats",
}
