package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ReportSchema versions the machine-readable diagnostics format. CI
// compares reports across commits, so the encoding must stay
// byte-stable for a given set of findings; bump the schema when the
// shape changes.
const ReportSchema = "starnumavet-diagnostics-v1"

// ErrBadBaseline marks a baseline file that could not be decoded:
// invalid JSON, a missing or foreign schema tag. Callers match it with
// errors.Is.
var ErrBadBaseline = errors.New("malformed starnumavet baseline")

// JSONDiagnostic is one finding in the machine-readable report. File is
// module-relative with forward slashes, so reports and baselines are
// stable across checkouts and operating systems.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Report is the top-level machine-readable diagnostics document, used
// both for -json output and for committed baselines.
type Report struct {
	Schema      string           `json:"schema"`
	Diagnostics []JSONDiagnostic `json:"diagnostics"`
}

// NewReport converts resolved findings into a sorted report. Paths are
// made module-relative by locating the nearest enclosing go.mod.
func NewReport(diags []flatDiag) *Report {
	r := &Report{Schema: ReportSchema, Diagnostics: []JSONDiagnostic{}}
	for _, d := range diags {
		r.Diagnostics = append(r.Diagnostics, JSONDiagnostic{
			File:     modRelative(d.posn.Filename),
			Line:     d.posn.Line,
			Col:      d.posn.Column,
			Analyzer: d.analyzer,
			Message:  d.msg,
		})
	}
	r.Sort()
	return r
}

// Sort orders the diagnostics deterministically by (file, line, col,
// analyzer, message).
func (r *Report) Sort() {
	sort.Slice(r.Diagnostics, func(i, j int) bool {
		a, b := r.Diagnostics[i], r.Diagnostics[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Encode renders the report as byte-stable, newline-terminated JSON:
// identical findings always produce identical bytes.
func (r *Report) Encode() []byte {
	r.Sort()
	if r.Diagnostics == nil {
		r.Diagnostics = []JSONDiagnostic{}
	}
	data, err := json.MarshalIndent(r, "", "\t")
	if err != nil {
		panic(err) // plain structs cannot fail to marshal
	}
	return append(data, '\n')
}

// DecodeReport parses a report or baseline document, rejecting corrupt
// input and foreign schemas with an error matching ErrBadBaseline.
func DecodeReport(data []byte) (*Report, error) {
	r := new(Report)
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBaseline, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("%w: schema %q, want %q", ErrBadBaseline, r.Schema, ReportSchema)
	}
	if r.Diagnostics == nil {
		r.Diagnostics = []JSONDiagnostic{}
	}
	return r, nil
}

// LoadBaseline reads and decodes a baseline file.
func LoadBaseline(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeReport(data)
}

// baselineKey identifies a finding for baseline diffing. Line and
// column are deliberately excluded: unrelated edits move findings
// around a file without changing what they are, and a baseline that
// churns on every edit is a baseline nobody trusts.
type baselineKey struct {
	file, analyzer, message string
}

// Diff returns the findings in cur that are not covered by base,
// multiset-style: if base records one instance of a key and cur has
// three, two survive.
func Diff(cur, base *Report) *Report {
	budget := make(map[baselineKey]int, len(base.Diagnostics))
	for _, d := range base.Diagnostics {
		budget[baselineKey{d.File, d.Analyzer, d.Message}]++
	}
	out := &Report{Schema: ReportSchema, Diagnostics: []JSONDiagnostic{}}
	for _, d := range cur.Diagnostics {
		k := baselineKey{d.File, d.Analyzer, d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out.Diagnostics = append(out.Diagnostics, d)
	}
	out.Sort()
	return out
}

// modRelative rewrites filename relative to its module root (the
// nearest ancestor directory holding go.mod), with forward slashes.
// Files outside any module keep their original path.
func modRelative(filename string) string {
	dir := filepath.Dir(filename)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			if rel, err := filepath.Rel(dir, filename); err == nil {
				return filepath.ToSlash(rel)
			}
			return filepath.ToSlash(filename)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return filepath.ToSlash(filename)
		}
		dir = parent
	}
}
