package analysis

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// parseFile parses src as one file of a package under test.
func parseFile(t *testing.T, fset *token.FileSet, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

const importsFmt = `package x

import "fmt"

var _ = fmt.Sprint
`

// TestCheckMissingExportData: type-checking a package whose import has
// no export data fails with an error naming the missing package,
// rather than a panic or a silently incomplete package.
func TestCheckMissingExportData(t *testing.T) {
	fset := token.NewFileSet()
	f := parseFile(t, fset, importsFmt)
	_, err := check(fset, "x", []*ast.File{f}, map[string]string{}, nil)
	if err == nil {
		t.Fatal("check succeeded with no export data for fmt")
	}
	if !strings.Contains(err.Error(), `no export data for "fmt"`) {
		t.Fatalf("error does not name the missing package: %v", err)
	}
}

// TestCheckImportMap: a vendored-style import — where the source-level
// import path differs from the resolved package path carrying the
// export data — resolves through the importMap translation, the same
// mechanism `go list`'s ImportMap feeds into Load.
func TestCheckImportMap(t *testing.T) {
	// Export data is registered only under the resolved (vendored)
	// path; without the importMap entry the lookup must fail ...
	exports := map[string]string{"vendor/fmt": exportDataFor(t, "fmt")}
	fset := token.NewFileSet()
	f := parseFile(t, fset, importsFmt)
	if _, err := check(fset, "x", []*ast.File{f}, exports, nil); err == nil {
		t.Fatal("check resolved fmt without an importMap entry")
	}
	// ... and with it, the same source type-checks.
	fset2 := token.NewFileSet()
	f2 := parseFile(t, fset2, importsFmt)
	pkg, err := check(fset2, "x", []*ast.File{f2}, exports, map[string]string{"fmt": "vendor/fmt"})
	if err != nil {
		t.Fatalf("check with importMap: %v", err)
	}
	if pkg.Types == nil || pkg.TypesInfo == nil {
		t.Fatal("package not fully populated")
	}
}

// TestLoadSkipsTestdata: `go list ./...` never matches packages under
// a testdata directory, so Load over a module containing one analyzes
// only the real packages — fixture trees full of deliberate violations
// stay invisible to the tree-wide lint run.
func TestLoadSkipsTestdata(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.test/m\n\ngo 1.21\n")
	write("p/p.go", "package p\n\nfunc P() int { return 1 }\n")
	write("p/testdata/src/a/a.go", "package a\n\nfunc Broken() { select {} }\n")

	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "example.test/m/p" {
		var got []string
		for _, p := range pkgs {
			got = append(got, p.ImportPath)
		}
		t.Fatalf("Load matched %v, want only example.test/m/p", got)
	}
}

// TestLoadFixtureEmpty: a fixture directory with no Go files is an
// explicit error, not an empty package.
func TestLoadFixtureEmpty(t *testing.T) {
	if _, err := LoadFixture(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no fixture files") {
		t.Fatalf("LoadFixture on empty dir = %v", err)
	}
}

// exportDataFor asks the go command for a std package's compiled
// export data, the same way Load does.
func exportDataFor(t *testing.T, pkg string) string {
	t.Helper()
	cmd := exec.Command("go", "list", "-e", "-export", "-json=ImportPath,Export", pkg)
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list -export %s: %v", pkg, err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if p.ImportPath == pkg && p.Export != "" {
			return p.Export
		}
	}
	t.Fatalf("no export data reported for %s", pkg)
	return ""
}
