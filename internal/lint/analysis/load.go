package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
}

// Load type-checks the packages matching patterns (resolved relative to
// dir, "" meaning the current directory) and returns them ready for
// analysis. It shells out to `go list -export -json -deps`, which works
// offline: the go command compiles export data into the build cache and
// reports the file paths, and go/importer reads them back. Test files
// are not listed and therefore never analyzed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,ImportMap",
		"-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range targets {
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := check(fset, lp.ImportPath, files, exports, lp.ImportMap)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadFixture parses and type-checks a single test-fixture directory
// (testdata/src/<name>) as package path <name>. Imports are resolved by
// asking the surrounding module for their export data, so fixtures may
// import anything the module can.
func LoadFixture(dir string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("lint: no fixture files in %s", dir)
	}
	sort.Strings(matches)
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, name := range matches {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[importPathOf(imp)] = true
		}
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		args := append([]string{
			"list", "-e", "-export",
			"-json=ImportPath,Export", "-deps"}, imports...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir // inside the module; go list resolves std from anywhere in it
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("lint: go list %v: %v\n%s", imports, err, stderr.Bytes())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			p := new(listPackage)
			if err := dec.Decode(p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	pkgPath := filepath.Base(dir)
	pkg, err := check(fset, pkgPath, files, exports, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %v", dir, err)
	}
	return pkg, nil
}

func importPathOf(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	return p[1 : len(p)-1] // strip quotes
}

// check type-checks one package whose imports resolve through the
// export-data files in exports (keyed by resolved package path, with
// importMap translating source-level import paths first).
func check(fset *token.FileSet, path string, files []*ast.File, exports map[string]string, importMap map[string]string) (*Package, error) {
	lookup := func(pkgPath string) (io.ReadCloser, error) {
		file, ok := exports[pkgPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", pkgPath)
		}
		return os.Open(file)
	}
	compilerImporter := importer.ForCompiler(fset, "gc", lookup)
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if resolved, ok := importMap[importPath]; ok {
			importPath = resolved
		}
		return compilerImporter.Import(importPath)
	})
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := NewInfo()
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: path,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
