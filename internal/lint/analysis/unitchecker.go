package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// Main is the entry point of a starnumavet-style checker binary. It
// supports two modes:
//
//	starnumavet [packages]        standalone: load packages via go list
//	                              (default ./...) and report findings
//	go vet -vettool=starnumavet   build-system mode: the go command
//	                              invokes the binary per compilation
//	                              unit with a JSON .cfg file
//
// Standalone mode additionally supports a machine-readable pipeline:
//
//	-json                  emit the diagnostics report (ReportSchema)
//	                       on stdout instead of text on stderr
//	-baseline file         subtract the committed baseline's findings;
//	                       only new findings count toward the exit code
//	-writebaseline file    write the current findings as a baseline and
//	                       exit 0
//
// The build-system protocol (mirroring x/tools' unitchecker) is:
//
//	-V=full    print a version fingerprint for the build cache
//	-flags     print supported flags as JSON
//	unit.cfg   analyze the described compilation unit
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	flag.Var(versionFlag{}, "V", "print version and exit (-V=full, used by go vet)")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (used by go vet)")
	jsonOut := flag.Bool("json", false, "standalone mode: print a machine-readable diagnostics report on stdout")
	baseline := flag.String("baseline", "", "standalone mode: baseline report file; only findings absent from it count")
	writeBaseline := flag.String("writebaseline", "", "standalone mode: write the current findings to this baseline file and exit 0")
	for _, a := range analyzers {
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [package pattern ... | unit.cfg]\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
		}
		flag.PrintDefaults()
		os.Exit(2)
	}
	flag.Parse()
	if *printflags {
		printFlags()
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], analyzers)
		return
	}
	runStandalone(args, analyzers, standaloneOpts{
		json:          *jsonOut,
		baseline:      *baseline,
		writeBaseline: *writeBaseline,
	})
}

// versionFlag implements the -V=full protocol: the go command hashes
// the printed line into its build cache key so results are invalidated
// when the tool changes.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }

func (versionFlag) Get() interface{} { return nil }

func (versionFlag) String() string { return "" }

func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (only -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// printFlags describes the flag set as JSON, the answer go vet expects
// from -flags.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// unitConfig describes one compilation unit, decoded from the .cfg file
// the go command writes. Field names are fixed by the go vet protocol.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single compilation unit described by cfgFile and
// exits: 0 on a clean pass, 1 with diagnostics on stderr otherwise.
func runUnit(cfgFile string, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("package has no files: %s", cfg.ImportPath)
	}

	// The go command regards the vetx (facts) file as an output of this
	// action; starnumavet's analyzers are fact-free, so an empty file
	// satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatalf("failed to write facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0) // the compiler will report it
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}
	pkg, err := check(fset, cfg.ImportPath, files, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}
	os.Exit(report(RunAnalyzers(analyzers, pkg), fset))
}

// standaloneOpts carries the standalone-mode output flags.
type standaloneOpts struct {
	json          bool
	baseline      string
	writeBaseline string
}

// runStandalone loads the given package patterns from the current
// directory and analyzes them all.
func runStandalone(patterns []string, analyzers []*Analyzer, opts standaloneOpts) {
	pkgs, err := Load("", patterns...)
	if err != nil {
		log.Fatal(err)
	}
	var all []flatDiag
	hadErr := false
	for _, pkg := range pkgs {
		for _, res := range RunAnalyzers(analyzers, pkg) {
			if res.Err != nil {
				log.Println(res.Err)
				hadErr = true
			}
			for _, d := range res.Diagnostics {
				all = append(all, flatDiag{pkg.Fset.Position(d.Pos), res.Analyzer.Name, d.Message})
			}
		}
	}
	sortDiagnostics(all)
	rep := NewReport(all)

	if opts.writeBaseline != "" {
		if err := os.WriteFile(opts.writeBaseline, rep.Encode(), 0o666); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote baseline %s (%d findings)", opts.writeBaseline, len(rep.Diagnostics))
		if hadErr {
			os.Exit(1)
		}
		os.Exit(0)
	}
	if opts.baseline != "" {
		base, err := LoadBaseline(opts.baseline)
		if err != nil {
			log.Fatal(err)
		}
		rep = Diff(rep, base)
	}

	exit := 0
	if hadErr || len(rep.Diagnostics) > 0 {
		exit = 1
	}
	if opts.json {
		os.Stdout.Write(rep.Encode())
		os.Exit(exit)
	}
	for _, d := range rep.Diagnostics {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", d.File, d.Line, d.Col, d.Message, d.Analyzer)
	}
	os.Exit(exit)
}

// report prints diagnostics (sorted by position so output is itself
// deterministic) and returns the exit code. Used by the per-unit vet
// protocol, where baselines and JSON reports do not apply.
func report(results []Result, fset *token.FileSet) int {
	var all []flatDiag
	exit := 0
	for _, res := range results {
		if res.Err != nil {
			log.Println(res.Err)
			exit = 1
		}
		for _, d := range res.Diagnostics {
			all = append(all, flatDiag{fset.Position(d.Pos), res.Analyzer.Name, d.Message})
		}
	}
	sortDiagnostics(all)
	for _, d := range all {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.posn, d.msg, d.analyzer)
		exit = 1
	}
	return exit
}
