package analysis

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleReport() *Report {
	return &Report{Schema: ReportSchema, Diagnostics: []JSONDiagnostic{
		{File: "internal/link/link.go", Line: 9, Col: 3, Analyzer: "floatdet", Message: "float == comparison"},
		{File: "internal/core/system.go", Line: 41, Col: 7, Analyzer: "hotalloc", Message: "hot path (sendPage): append allocates"},
		{File: "internal/core/system.go", Line: 12, Col: 2, Analyzer: "detclock", Message: "time.Now reads the wall clock"},
	}}
}

// TestReportRoundTrip: decode(encode(diags)) == diags, with the
// canonical sort applied — a report survives the write/commit/read
// cycle CI puts baselines through.
func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	got, err := DecodeReport(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleReport()
	want.Sort()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestReportEncodeStable: the same findings encode to identical bytes
// regardless of input order, and an empty report keeps an explicit
// empty diagnostics array (never JSON null).
func TestReportEncodeStable(t *testing.T) {
	a := sampleReport()
	b := sampleReport()
	b.Diagnostics[0], b.Diagnostics[2] = b.Diagnostics[2], b.Diagnostics[0]
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Error("encoding depends on input order")
	}

	empty := (&Report{Schema: ReportSchema}).Encode()
	if !bytes.Contains(empty, []byte(`"diagnostics": []`)) {
		t.Errorf("empty report lacks explicit empty array:\n%s", empty)
	}
	if empty[len(empty)-1] != '\n' {
		t.Error("encoding is not newline-terminated")
	}
}

// TestDecodeReportRejectsCorrupt: invalid JSON and foreign schemas are
// both rejected with an error matching ErrBadBaseline, so the driver
// can distinguish "bad baseline file" from "no baseline file".
func TestDecodeReportRejectsCorrupt(t *testing.T) {
	for _, tc := range []struct {
		name string
		data string
	}{
		{"truncated JSON", `{"schema": "starnumavet-diagnostics-v1", "diagnostics": [`},
		{"not JSON", "findings: none\n"},
		{"missing schema", `{"diagnostics": []}`},
		{"foreign schema", `{"schema": "somebody-elses-v9", "diagnostics": []}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeReport([]byte(tc.data))
			if !errors.Is(err, ErrBadBaseline) {
				t.Fatalf("DecodeReport = %v, want ErrBadBaseline", err)
			}
		})
	}
}

// TestLoadBaseline covers the file-level wrapper: a good file decodes,
// a missing file surfaces the os error untouched (callers treat it
// differently from corruption).
func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	if err := os.WriteFile(path, sampleReport().Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Diagnostics) != 3 {
		t.Fatalf("loaded %d diagnostics, want 3", len(r.Diagnostics))
	}
	if _, err := LoadBaseline(filepath.Join(dir, "absent.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing baseline = %v, want os.ErrNotExist", err)
	}
}

// TestDiffMultiset: baseline diffing is by (file, analyzer, message)
// multiset — line drift does not resurrect baselined findings, but a
// *second* instance of a baselined finding is new.
func TestDiffMultiset(t *testing.T) {
	base := &Report{Schema: ReportSchema, Diagnostics: []JSONDiagnostic{
		{File: "a.go", Line: 10, Analyzer: "floatdet", Message: "m"},
	}}
	cur := &Report{Schema: ReportSchema, Diagnostics: []JSONDiagnostic{
		{File: "a.go", Line: 99, Analyzer: "floatdet", Message: "m"},  // moved: covered
		{File: "a.go", Line: 120, Analyzer: "floatdet", Message: "m"}, // second instance: new
		{File: "b.go", Line: 1, Analyzer: "hotalloc", Message: "n"},   // new file: new
	}}
	got := Diff(cur, base)
	if len(got.Diagnostics) != 2 {
		t.Fatalf("Diff kept %d findings, want 2: %+v", len(got.Diagnostics), got.Diagnostics)
	}
	if got.Diagnostics[0].Line != 120 || got.Diagnostics[1].File != "b.go" {
		t.Fatalf("Diff kept the wrong findings: %+v", got.Diagnostics)
	}

	// Fixing every finding yields an empty, well-formed report.
	clean := Diff(&Report{Schema: ReportSchema}, base)
	if len(clean.Diagnostics) != 0 || clean.Diagnostics == nil {
		t.Fatalf("empty diff = %+v", clean)
	}
}

// TestModRelative: paths inside this module become module-relative
// with forward slashes; paths outside any module pass through.
func TestModRelative(t *testing.T) {
	abs, err := filepath.Abs(filepath.Join("..", "..", "..", "internal", "sim", "engine.go"))
	if err != nil {
		t.Fatal(err)
	}
	if got := modRelative(abs); got != "internal/sim/engine.go" {
		t.Errorf("modRelative(%s) = %q", abs, got)
	}
	outside := filepath.Join(string(filepath.Separator), "nonexistent-root", "f.go")
	if got := modRelative(outside); got != filepath.ToSlash(outside) {
		t.Errorf("modRelative(outside module) = %q", got)
	}
}
