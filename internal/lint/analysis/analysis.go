// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis model, sized for starnumavet.
//
// The repository is stdlib-only by policy (DESIGN.md §2), so rather
// than vendoring x/tools this package provides the three pieces the
// determinism lint suite needs:
//
//   - the Analyzer/Pass/Diagnostic contract analyzers are written
//     against (this file);
//   - a package loader driving `go list -export` + go/importer for
//     standalone runs and test fixtures (load.go);
//   - the `go vet -vettool` unitchecker protocol (unitchecker.go).
//
// Analyzers written against this package look exactly like x/tools
// analyzers, so they can be ported wholesale if the dependency policy
// ever changes.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check. Name must be a valid identifier; it
// doubles as the key in //starnumavet:allow directives.
type Analyzer struct {
	Name string
	Doc  string

	// Flags holds analyzer-specific flags, registered by the driver as
	// -<name>.<flag> in multichecker mode.
	Flags flag.FlagSet

	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // excludes _test.go files; the contract covers shipped code only
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// allow maps filename -> directive line -> the analyzers permitted
	// by a //starnumavet:allow directive there.
	allow map[string]map[int]allowEntry
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos, unless an allow
// directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if p.Allowed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// AllowDirective is the comment prefix that suppresses a diagnostic:
//
//	//starnumavet:allow <analyzer> <reason>
//
// placed on the flagged line or the line immediately above it. A
// directive without a reason is ignored — every exemption must say why
// (the determinism contract in README.md explains the policy).
const AllowDirective = "//starnumavet:allow"

// allowEntry records the analyzers a directive line permits and
// whether the directive stands alone on its line (in which case it
// also covers the following line).
type allowEntry struct {
	analyzers  map[string]bool
	standalone bool
}

// Allowed reports whether an allow directive for this pass's analyzer
// covers pos: a directive trailing code covers that line only; a
// directive alone on a line covers the line below it.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.allow == nil {
		p.allow = buildAllowIndex(p.Fset, p.Files)
	}
	posn := p.Fset.Position(pos)
	lines := p.allow[posn.Filename]
	if e, ok := lines[posn.Line]; ok && e.analyzers[p.Analyzer.Name] {
		return true
	}
	if e, ok := lines[posn.Line-1]; ok && e.standalone && e.analyzers[p.Analyzer.Name] {
		return true
	}
	return false
}

func buildAllowIndex(fset *token.FileSet, files []*ast.File) map[string]map[int]allowEntry {
	idx := make(map[string]map[int]allowEntry)
	for _, f := range files {
		// Lines on which a non-comment token starts: a directive on such
		// a line trails code and must not cover the next line.
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.Comment, *ast.CommentGroup:
				return false
			}
			codeLines[fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: directive has no effect
				}
				posn := fset.Position(c.Pos())
				lines := idx[posn.Filename]
				if lines == nil {
					lines = make(map[int]allowEntry)
					idx[posn.Filename] = lines
				}
				e, ok := lines[posn.Line]
				if !ok {
					e = allowEntry{analyzers: make(map[string]bool), standalone: !codeLines[posn.Line]}
				}
				e.analyzers[fields[0]] = true
				lines[posn.Line] = e
			}
		}
	}
	return idx
}

// runResult pairs an analyzer with its findings on one package.
type runResult struct {
	Analyzer    *Analyzer
	Diagnostics []Diagnostic
	Err         error
}

// runAnalyzers executes each analyzer over the package, filtering
// _test.go files out of the pass (the determinism contract covers
// shipped code; tests may time things and read the environment).
func runAnalyzers(analyzers []*Analyzer, pkg *Package) []runResult {
	var nonTest []*ast.File
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		nonTest = append(nonTest, f)
	}
	results := make([]runResult, len(analyzers))
	for i, a := range analyzers {
		res := &results[i]
		res.Analyzer = a
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     nonTest,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d Diagnostic) { res.Diagnostics = append(res.Diagnostics, d) },
		}
		_, res.Err = a.Run(pass)
	}
	return results
}

// The loader fills this in; declared here so runAnalyzers can live next
// to the Pass type it builds.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// NewInfo returns a types.Info with every map analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
