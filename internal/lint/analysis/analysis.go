// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis model, sized for starnumavet.
//
// The repository is stdlib-only by policy (DESIGN.md §2), so rather
// than vendoring x/tools this package provides the pieces the
// determinism lint suite needs:
//
//   - the Analyzer/Pass/Diagnostic contract analyzers are written
//     against (this file);
//   - a package loader driving `go list -export` + go/importer for
//     standalone runs and test fixtures (load.go);
//   - the `go vet -vettool` unitchecker protocol (unitchecker.go);
//   - a machine-readable diagnostics report with baseline diffing for
//     CI (report.go).
//
// Analyzers written against this package look exactly like x/tools
// analyzers, so they can be ported wholesale if the dependency policy
// ever changes.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Name must be a valid identifier; it
// doubles as the key in //starnumavet:allow directives.
type Analyzer struct {
	Name string
	Doc  string

	// Flags holds analyzer-specific flags, registered by the driver as
	// -<name>.<flag> in multichecker mode.
	Flags flag.FlagSet

	// RunAfter marks a meta-analyzer that must run after every ordinary
	// analyzer on the package: its pass observes the shared AllowIndex
	// (directives, suppression usage, registered analyzer names). The
	// allowcheck analyzer is the only RunAfter pass today.
	RunAfter bool

	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // excludes _test.go files; the contract covers shipped code only
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// allow is the package's shared allow-directive index. The driver
	// builds it once per package; a Pass constructed by hand (tests)
	// builds it lazily on first use.
	allow *AllowIndex
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos, unless an allow
// directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	if p.Allowed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// AllowIndex returns the pass's shared allow-directive index, building
// it from the pass's files on first use.
func (p *Pass) AllowIndex() *AllowIndex {
	if p.allow == nil {
		p.allow = NewAllowIndex(p.Fset, p.Files)
	}
	return p.allow
}

// AllowDirective is the comment prefix that suppresses a diagnostic:
//
//	//starnumavet:allow <analyzer> <reason>
//
// placed on the flagged line or the line immediately above it. A
// directive without a reason is ignored — every exemption must say why
// (the determinism contract in README.md explains the policy). The
// allowcheck analyzer turns reasonless, misspelled and stale directives
// into errors of their own.
const AllowDirective = "//starnumavet:allow"

// AllowInfo describes one parsed //starnumavet:allow directive.
type AllowInfo struct {
	Pos      token.Pos
	Analyzer string // first field after the directive ("" if none)
	Reason   string // remainder; "" marks an inert, reasonless directive
}

// allowEntry records the analyzers a directive line permits and
// whether the directive stands alone on its line (in which case it
// also covers the following line).
type allowEntry struct {
	analyzers  map[string]bool
	standalone bool
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// AllowIndex is one package's parsed //starnumavet:allow directives
// plus their suppression usage, shared by every pass the driver runs so
// the allowcheck analyzer can flag stale or misspelled directives.
type AllowIndex struct {
	directives []AllowInfo
	byLine     map[string]map[int]allowEntry
	used       map[allowKey]bool
	registered map[string]bool
}

// NewAllowIndex parses the files' allow directives.
func NewAllowIndex(fset *token.FileSet, files []*ast.File) *AllowIndex {
	ix := &AllowIndex{
		byLine: make(map[string]map[int]allowEntry),
		used:   make(map[allowKey]bool),
	}
	for _, f := range files {
		// Lines on which a non-comment token starts: a directive on such
		// a line trails code and must not cover the next line.
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.Comment, *ast.CommentGroup:
				return false
			}
			codeLines[fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowDirective)
				if !ok {
					continue
				}
				// The payload ends at an embedded "//": it marks a nested
				// comment (fixtures put // want checks there), not reason text.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				info := AllowInfo{Pos: c.Pos()}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					info.Analyzer = fields[0]
				}
				if len(fields) > 1 {
					info.Reason = strings.Join(fields[1:], " ")
				}
				ix.directives = append(ix.directives, info)
				if info.Analyzer == "" || info.Reason == "" {
					continue // no reason given: directive has no effect
				}
				posn := fset.Position(c.Pos())
				lines := ix.byLine[posn.Filename]
				if lines == nil {
					lines = make(map[int]allowEntry)
					ix.byLine[posn.Filename] = lines
				}
				e, ok := lines[posn.Line]
				if !ok {
					e = allowEntry{analyzers: make(map[string]bool), standalone: !codeLines[posn.Line]}
				}
				e.analyzers[info.Analyzer] = true
				lines[posn.Line] = e
			}
		}
	}
	return ix
}

// SetRegistered records the analyzer names the driver is running, so
// allowcheck can reject directives naming analyzers that do not exist.
func (ix *AllowIndex) SetRegistered(names []string) {
	ix.registered = make(map[string]bool, len(names))
	for _, n := range names {
		ix.registered[n] = true
	}
}

// IsRegistered reports whether name is a driver-registered analyzer.
// Without a driver (hand-built passes) every name is accepted.
func (ix *AllowIndex) IsRegistered(name string) bool {
	if ix.registered == nil {
		return true
	}
	return ix.registered[name]
}

// Directives returns every parsed allow directive, including inert
// (reasonless) and misspelled ones.
func (ix *AllowIndex) Directives() []AllowInfo { return ix.directives }

// Used reports whether the directive at pos for the given analyzer
// suppressed at least one diagnostic.
func (ix *AllowIndex) Used(fset *token.FileSet, d AllowInfo) bool {
	posn := fset.Position(d.Pos)
	return ix.used[allowKey{posn.Filename, posn.Line, d.Analyzer}]
}

// allowed reports whether a directive for analyzer covers posn, and
// records the suppression: a directive trailing code covers that line
// only; a directive alone on a line covers the line below it.
func (ix *AllowIndex) allowed(analyzer string, posn token.Position) bool {
	lines := ix.byLine[posn.Filename]
	if e, ok := lines[posn.Line]; ok && e.analyzers[analyzer] {
		ix.used[allowKey{posn.Filename, posn.Line, analyzer}] = true
		return true
	}
	if e, ok := lines[posn.Line-1]; ok && e.standalone && e.analyzers[analyzer] {
		ix.used[allowKey{posn.Filename, posn.Line - 1, analyzer}] = true
		return true
	}
	return false
}

// Allowed reports whether an allow directive for this pass's analyzer
// covers pos, recording the suppression in the shared index.
func (p *Pass) Allowed(pos token.Pos) bool {
	return p.AllowIndex().allowed(p.Analyzer.Name, p.Fset.Position(pos))
}

// Result pairs an analyzer with its findings on one package.
type Result struct {
	Analyzer    *Analyzer
	Diagnostics []Diagnostic
	Err         error
}

// RunAnalyzers executes each analyzer over the package, filtering
// _test.go files out of the pass (the determinism contract covers
// shipped code; tests may time things and read the environment). All
// passes share one AllowIndex; RunAfter analyzers run last and observe
// the suppression usage the ordinary analyzers accumulated.
func RunAnalyzers(analyzers []*Analyzer, pkg *Package) []Result {
	var nonTest []*ast.File
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		nonTest = append(nonTest, f)
	}
	ix := NewAllowIndex(pkg.Fset, nonTest)
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	ix.SetRegistered(names)

	ordered := make([]*Analyzer, 0, len(analyzers))
	for _, a := range analyzers {
		if !a.RunAfter {
			ordered = append(ordered, a)
		}
	}
	for _, a := range analyzers {
		if a.RunAfter {
			ordered = append(ordered, a)
		}
	}

	indexOf := make(map[*Analyzer]int, len(analyzers))
	for i, a := range analyzers {
		indexOf[a] = i
	}
	results := make([]Result, len(analyzers))
	for _, a := range ordered {
		res := &results[indexOf[a]]
		res.Analyzer = a
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     nonTest,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Report:    func(d Diagnostic) { res.Diagnostics = append(res.Diagnostics, d) },
			allow:     ix,
		}
		_, res.Err = a.Run(pass)
	}
	return results
}

// The loader fills this in; declared here so RunAnalyzers can live next
// to the Pass type it builds.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// NewInfo returns a types.Info with every map analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// sortDiagnostics orders flat (position, analyzer, message) findings
// deterministically.
func sortDiagnostics(all []flatDiag) {
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.posn.Filename != b.posn.Filename {
			return a.posn.Filename < b.posn.Filename
		}
		if a.posn.Line != b.posn.Line {
			return a.posn.Line < b.posn.Line
		}
		if a.posn.Column != b.posn.Column {
			return a.posn.Column < b.posn.Column
		}
		if a.analyzer != b.analyzer {
			return a.analyzer < b.analyzer
		}
		return a.msg < b.msg
	})
}

// flatDiag is one finding with its position resolved, the driver's
// common currency for text output, JSON reports and baselines.
type flatDiag struct {
	posn     token.Position
	analyzer string
	msg      string
}
