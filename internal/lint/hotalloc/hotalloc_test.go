package hotalloc

import (
	"path/filepath"
	"testing"

	"starnuma/internal/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"))
}
