package a

import "fmt"

type buf struct {
	vals []int
	m    map[int]int
	sink interface{}
}

//starnuma:hotpath
func hot(b *buf, x int) {
	b.vals = append(b.vals, x) // want `hot path \(hot\): append may grow its backing array`
	p := new(int)              // want `hot path \(hot\): new allocates`
	_ = p
	b.sink = x    // want `hot path \(hot\): int value boxed into interface allocates`
	s := []int{x} // want `hot path \(hot\): slice literal allocates`
	_ = s
	m := map[int]int{x: x} // want `hot path \(hot\): map literal allocates`
	_ = m
	q := &buf{} // want `hot path \(hot\): &composite literal allocates`
	_ = q
	for k := range b.m { // want `hot path \(hot\): map iteration is nondeterministically ordered`
		_ = k
	}
	defer cleanup() // want `hot path \(hot\): defer adds per-call overhead`
	helper(b, x)
	coldHelper()
	fmtHelper(x)
	take(x) // want `hot path \(hot\): int value boxed into interface allocates`
}

func cleanup() {}

func take(v interface{}) {}

// helper is reached from hot through the static call closure, so it is
// checked too.
func helper(b *buf, x int) {
	b.vals = append(b.vals, x) // want `hot path \(helper \(via hot\)\): append may grow its backing array`
}

// coldHelper is excluded from the closure: once-per-window setup may
// allocate freely.
//
//starnuma:coldpath
func coldHelper() {
	var s []int
	s = append(s, 1)
	_ = fmt.Sprintf("cold %d", len(s))
}

func fmtHelper(x int) {
	_ = fmt.Sprintf("hot %d", x) // want `hot path \(fmtHelper \(via hot\)\): reference to package fmt allocates and reflects`
}

type w struct{ b buf }

// methods get receiver-qualified labels.
//
//starnuma:hotpath
func (v *w) step(x int) {
	v.b.vals = append(v.b.vals, x) // want `hot path \(w\.step\): append may grow its backing array`
}

//starnuma:hotpath
//starnuma:coldpath
func confused() {} // want `function confused is marked both //starnuma:hotpath and //starnuma:coldpath`

//starnuma:hotpath
func allowed(b *buf, x int) {
	//starnumavet:allow hotalloc append is bounded by the socket count, reset each window
	b.vals = append(b.vals, x)
}

// notHot is never called from a hot root: anything goes.
func notHot() {
	var s []int
	s = append(s, 1)
	defer cleanup()
	_ = fmt.Sprint(s)
}
