// Package hotalloc enforces allocation-free discipline on the
// simulator's hot path.
//
// Functions annotated //starnuma:hotpath — and everything they
// statically call in the same package — form the step-C window
// perimeter: the code that runs once per simulated event. Inside it the
// analyzer forbids the constructs that heap-allocate, dispatch
// dynamically, or carry hidden per-call costs:
//
//   - &composite literals, and slice/map composite literals
//   - the append and new builtins
//   - boxing a concrete non-pointer value into an interface
//   - ranging over a map (nondeterministic order, hash-walk overhead)
//   - defer
//   - any reference to package fmt
//
// A //starnuma:coldpath annotation excludes a callee from the closure:
// once-per-window setup, teardown, and error paths may allocate freely.
// Bounded, deliberate exceptions inside the perimeter carry a
// //starnumavet:allow hotalloc directive with the reason.
//
// The closure is intra-package: export data has no function bodies, so
// a hot function in another package must carry its own
// //starnuma:hotpath annotation (the step-C perimeter in
// internal/{sim,core,link,tlb,coherence,memdev,migrate,cache,stats,
// metrics} is annotated this way). Calls through function values and
// interfaces are invisible to the closure as well — keep the hot path
// statically dispatched, which is the point of the exercise.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"starnuma/internal/lint/analysis"
)

// Directives recognised on function declarations.
const (
	HotDirective  = "//starnuma:hotpath"
	ColdDirective = "//starnuma:coldpath"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid allocation and hidden per-call costs in //starnuma:hotpath functions\n\n" +
		"Hot-path functions and their same-package static callees must not\n" +
		"use composite-literal allocation, append, new, interface boxing, map\n" +
		"iteration, defer, or fmt. Mark once-per-window setup callees\n" +
		"//starnuma:coldpath to exclude them.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Index every function declaration in the package, in source order
	// so the closure walk (and thus provenance labels) is deterministic.
	var order []*types.Func
	decls := make(map[*types.Func]*ast.FuncDecl)
	hot := make(map[*types.Func]bool)
	cold := make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			order = append(order, obj)
			decls[obj] = fd
			if hasDirective(fd.Doc, HotDirective) {
				hot[obj] = true
			}
			if hasDirective(fd.Doc, ColdDirective) {
				cold[obj] = true
			}
			if hot[obj] && cold[obj] {
				pass.Reportf(fd.Name.Pos(), "function %s is marked both %s and %s", funcLabel(fd), HotDirective, ColdDirective)
			}
		}
	}

	// Transitive closure over static same-package calls, rooted at the
	// annotated functions. via records each function's discovering
	// caller for the diagnostic label.
	via := make(map[*types.Func]*types.Func)
	inClosure := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, fn := range order {
		if hot[fn] && !cold[fn] {
			inClosure[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range callees(pass, decls[fn]) {
			if _, local := decls[callee]; !local || inClosure[callee] || cold[callee] {
				continue
			}
			inClosure[callee] = true
			via[callee] = fn
			queue = append(queue, callee)
		}
	}

	for _, fn := range order {
		if !inClosure[fn] {
			continue
		}
		fd := decls[fn]
		label := funcLabel(fd)
		if caller := via[fn]; caller != nil {
			label += " (via " + funcLabel(decls[caller]) + ")"
		}
		sig, _ := fn.Type().(*types.Signature)
		checkBody(pass, fd.Body, sig, label)
	}
	return nil, nil
}

// callees returns the same-package functions fd statically calls, in
// source order.
func callees(pass *analysis.Pass, fd *ast.FuncDecl) []*types.Func {
	var out []*types.Func
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		if fn, ok := pass.TypesInfo.Uses[id].(*types.Func); ok && fn.Pkg() == pass.Pkg {
			out = append(out, fn)
		}
		return true
	})
	return out
}

// checkBody reports every forbidden construct in one function (or
// function literal) body. sig provides the result types for
// return-statement boxing checks.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, sig *types.Signature, label string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A literal's body runs on the hot path too (it is called
			// from it or stored for it); check it against its own
			// signature for returns.
			litSig, _ := pass.TypesInfo.Types[x].Type.(*types.Signature)
			checkBody(pass, x.Body, litSig, label)
			return false

		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "hot path (%s): &composite literal allocates; preallocate and reuse across windows", label)
				}
			}

		case *ast.CompositeLit:
			switch pass.TypesInfo.Types[x].Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(x.Pos(), "hot path (%s): slice literal allocates; preallocate in cold setup", label)
			case *types.Map:
				pass.Reportf(x.Pos(), "hot path (%s): map literal allocates; preallocate in cold setup", label)
			}

		case *ast.CallExpr:
			checkCall(pass, x, label)

		case *ast.AssignStmt:
			if x.Tok != token.ASSIGN || len(x.Lhs) != len(x.Rhs) {
				break // := infers the concrete type; no boxing
			}
			for i, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				checkBox(pass, x.Rhs[i], pass.TypesInfo.Types[lhs].Type, label)
			}

		case *ast.ValueSpec:
			if x.Type == nil {
				break
			}
			target := pass.TypesInfo.Types[x.Type].Type
			for _, v := range x.Values {
				checkBox(pass, v, target, label)
			}

		case *ast.ReturnStmt:
			if sig == nil || sig.Results() == nil || len(x.Results) != sig.Results().Len() {
				break
			}
			for i, res := range x.Results {
				checkBox(pass, res, sig.Results().At(i).Type(), label)
			}

		case *ast.RangeStmt:
			if _, ok := pass.TypesInfo.Types[x.X].Type.Underlying().(*types.Map); ok {
				pass.Reportf(x.Pos(), "hot path (%s): map iteration is nondeterministically ordered and slow; keep a sorted slice alongside the map", label)
			}

		case *ast.DeferStmt:
			pass.Reportf(x.Pos(), "hot path (%s): defer adds per-call overhead; call directly on each return path", label)

		case *ast.Ident:
			if pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(x.Pos(), "hot path (%s): reference to package fmt allocates and reflects; move formatting to a //starnuma:coldpath helper", label)
			}
		}
		return true
	})
}

// checkCall flags allocation builtins and interface boxing at call
// arguments.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, label string) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "hot path (%s): append may grow its backing array; preallocate capacity in cold setup", label)
			case "new":
				pass.Reportf(call.Pos(), "hot path (%s): new allocates; preallocate in cold setup", label)
			}
			return
		}
	}

	// Conversions: T(x) where T is an interface type boxes x.
	if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkBox(pass, call.Args[0], tv.Type, label)
		}
		return
	}

	// Ordinary calls: arguments passed to interface parameters box.
	// Calls into fmt are already flagged wholesale by the package
	// reference check; skip their arguments to avoid double reports.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			return
		}
	}
	sig, ok := pass.TypesInfo.Types[fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var target types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				target = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				target = s.Elem()
			}
		case i < params.Len():
			target = params.At(i).Type()
		}
		checkBox(pass, arg, target, label)
	}
}

// checkBox reports e when assigning it to target boxes a concrete
// non-pointer value into an interface. Constants are exempt (the
// compiler materialises them in read-only data, no allocation), as are
// pointer-shaped values (the interface data word holds them directly).
func checkBox(pass *analysis.Pass, e ast.Expr, target types.Type, label string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return
	}
	t := tv.Type
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if types.IsInterface(t) || pointerShaped(t) {
		return
	}
	pass.Reportf(e.Pos(), "hot path (%s): %s value boxed into interface allocates", label, types.TypeString(t, types.RelativeTo(pass.Pkg)))
}

// pointerShaped reports whether values of t fit an interface's data
// word without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// hasDirective reports whether the doc comment carries the directive
// (exactly, or followed by explanatory text).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// funcLabel names a declaration for diagnostics: receiver-qualified for
// methods (timingSystem.tryIssue), bare otherwise.
func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
