// Fixture for maporder. The analyzer applies to every package, so no
// scope flag is involved.
package a

import (
	"fmt"
	"sort"
	"strings"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appending to keys while ranging over a map`
	}
	return keys
}

// appendThenSort is the canonical collect-then-sort idiom: the slice is
// ordered before use, so the analyzer stays quiet.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendThenSlicesStyle(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func printing(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d\n", k, v) // want `fmt\.Fprintf inside map iteration`
	}
}

func writing(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `WriteString inside map iteration`
	}
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation over map iteration`
	}
	return sum
}

// intAccum is order-insensitive (integer addition is exact and
// commutative): not flagged.
func intAccum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// mapToMap rebuilds a map; map writes carry no order: not flagged.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v + 1
	}
	return out
}

func justified(m map[string]int) []string {
	var keys []string
	for k := range m {
		//starnumavet:allow maporder fixture demonstrates the reasoned escape hatch
		keys = append(keys, k)
	}
	return keys
}

// sliceRange: ranging a slice is ordered; appends are fine.
func sliceRange(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
