package maporder

import (
	"path/filepath"
	"testing"

	"starnuma/internal/lint/linttest"
)

func TestMaporder(t *testing.T) {
	linttest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"))
}
