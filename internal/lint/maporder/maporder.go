// Package maporder flags map iterations whose bodies are sensitive to
// iteration order.
//
// Go randomizes map iteration, so a `range` over a map that appends to
// a slice, writes to a writer/encoder, or accumulates floating-point
// values produces run-to-run drift — the classic way a "deterministic"
// simulator starts emitting unstable output during result assembly or
// cache-key construction. Order-insensitive bodies (counting, integer
// sums, min/max, writes into another map) are fine and not flagged.
//
// The canonical fix is to sort: either iterate sorted keys, or collect
// into a slice and sort it before use. The analyzer recognizes the
// collect-then-sort idiom (the appended slice is passed to sort.* or
// slices.Sort* later in the same block) and stays quiet. Intentionally
// order-dependent sites can be justified with
//
//	//starnumavet:allow maporder <reason>
package maporder

import (
	"go/ast"
	"go/types"

	"starnuma/internal/lint/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-dependent effects inside map iteration\n\n" +
		"Appending to slices, writing to writers/encoders, or accumulating\n" +
		"floats while ranging over a map yields nondeterministic output\n" +
		"unless the keys are sorted first.",
	Run: run,
}

// writerMethods are method names whose invocation inside a map range
// serializes data in iteration order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true,
}

// printFns are fmt functions that emit output in iteration order.
var printFns = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// sortFns maps package path -> function names that establish an order
// after collection, forgiving an append inside the loop.
var sortFns = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				for {
					if ls, ok := stmt.(*ast.LabeledStmt); ok {
						stmt = ls.Stmt
						continue
					}
					break
				}
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				if _, isMap := pass.TypesInfo.Types[rs.X].Type.Underlying().(*types.Map); !isMap {
					continue
				}
				checkRange(pass, rs, list[i+1:])
			}
			return true
		})
	}
	return nil, nil
}

// checkRange inspects one map-range body; rest is the statement tail of
// the enclosing block, consulted for the collect-then-sort idiom.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rs, n, rest)
		case *ast.CallExpr:
			checkCall(pass, rs, n)
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, rest []ast.Stmt) {
	switch as.Tok.String() {
	case "+=", "-=", "*=", "/=":
		if b, ok := pass.TypesInfo.Types[as.Lhs[0]].Type.Underlying().(*types.Basic); ok &&
			b.Info()&types.IsFloat != 0 {
			pass.Reportf(as.Pos(), "floating-point accumulation over map iteration is order-dependent (rounding); iterate sorted keys, or justify with %s maporder <reason>",
				analysis.AllowDirective)
		}
		return
	}
	// x = append(x, ...): order-dependent unless x is sorted afterwards.
	for j, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) {
			continue
		}
		lhs := as.Lhs[0]
		if len(as.Lhs) == len(as.Rhs) {
			lhs = as.Lhs[j]
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if ok && sortedLater(pass, pass.TypesInfo.ObjectOf(id), rest) {
			continue
		}
		name := "a slice"
		if ok {
			name = id.Name
		}
		pass.Reportf(call.Pos(), "appending to %s while ranging over a map records iteration order; sort the keys first (or sort %s before use in this block), or justify with %s maporder <reason>",
			name, name, analysis.AllowDirective)
	}
}

func checkCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if s := pass.TypesInfo.Selections[sel]; s != nil {
		if s.Kind() == types.MethodVal && writerMethods[sel.Sel.Name] {
			pass.Reportf(call.Pos(), "%s inside map iteration serializes in nondeterministic order; iterate sorted keys, or justify with %s maporder <reason>",
				sel.Sel.Name, analysis.AllowDirective)
		}
		return
	}
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
		fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && printFns[fn.Name()] {
		pass.Reportf(call.Pos(), "fmt.%s inside map iteration prints in nondeterministic order; iterate sorted keys, or justify with %s maporder <reason>",
			fn.Name(), analysis.AllowDirective)
	}
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// sortedLater reports whether obj is passed to a sort function in one
// of the trailing statements of the block containing the range.
func sortedLater(pass *analysis.Pass, obj types.Object, rest []ast.Stmt) bool {
	if obj == nil {
		return false
	}
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || found {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !sortFns[fn.Pkg().Path()][fn.Name()] {
				return true
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok &&
				pass.TypesInfo.ObjectOf(id) == obj {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
