// Fixture for detclock scoping: package path "b" is outside the
// analyzer's scope, so these clock reads are not reported (they model
// orchestration code like internal/runner's timing reporter).
package b

import "time"

func Elapsed(start time.Time) time.Duration { return time.Since(start) }

func Stamp() time.Time { return time.Now() }
