// Fixture for detclock: package path "a" is placed in the analyzer's
// scope by the test.
package a

import (
	"os"
	"time"
)

func bad() {
	_ = time.Now()               // want `time\.Now reads the wall clock`
	_ = time.Since(time.Time{})  // want `time\.Since reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep depends on real time`
	_ = time.After(time.Second)  // want `time\.After depends on real time`
	_ = os.Getenv("STARNUMA")    // want `os\.Getenv reads the environment`
	_, _ = os.LookupEnv("HOME")  // want `os\.LookupEnv reads the environment`
}

// Mentioning the function as a value is just as nondeterministic as
// calling it.
var clock = time.Now // want `time\.Now reads the wall clock`

func justified() {
	//starnumavet:allow detclock fixture demonstrates the reasoned escape hatch
	_ = time.Now()
}

func fine(t time.Time) time.Duration {
	d := 5 * time.Millisecond // unit constants are values, not clock reads
	_ = t.Add(d)              // methods on time values are pure
	return t.Sub(time.Time{})
}
