// Package detclock forbids wall-clock and environment reads inside the
// simulation packages.
//
// The result cache keys every simulation by (system, sim config,
// workload spec, schema version) and nothing else, so any influence of
// time.Now, a timer, or an environment variable on a simulation result
// silently poisons the cache and breaks bit-reproducibility. The clock
// belongs to the orchestration layer (internal/runner, internal/exp,
// cmd/...), which is outside the analyzer's default scope.
package detclock

import (
	"go/ast"
	"go/types"

	"starnuma/internal/lint/analysis"
)

// forbidden maps package path -> function names whose call (or mere
// mention: passing time.Now as a value is just as nondeterministic)
// is rejected inside the scoped packages.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":       "reads the wall clock",
		"Since":     "reads the wall clock",
		"Until":     "reads the wall clock",
		"Sleep":     "depends on real time",
		"Tick":      "depends on real time",
		"After":     "depends on real time",
		"AfterFunc": "depends on real time",
		"NewTimer":  "depends on real time",
		"NewTicker": "depends on real time",
	},
	"os": {
		"Getenv":    "reads the environment",
		"LookupEnv": "reads the environment",
		"Environ":   "reads the environment",
	},
}

var packages = analysis.NewListFlag(analysis.SimPackages...)

// Analyzer is the detclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "detclock",
	Doc: "forbid wall-clock and environment reads in simulation packages\n\n" +
		"Simulation results are content-addressed by their configuration; any\n" +
		"dependence on real time or the environment breaks the determinism\n" +
		"contract. Use sim.Engine's virtual clock, or plumb the value through\n" +
		"an explicit config field.",
	Run: run,
}

func init() {
	Analyzer.Flags.Var(packages, "packages",
		"comma-separated package paths the check applies to")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !packages.Contains(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods (e.g. on a time.Duration value) are not ambient reads
			}
			if why, bad := forbidden[fn.Pkg().Path()][fn.Name()]; bad {
				pass.Reportf(id.Pos(), "%s.%s %s; simulation package %s must be a pure function of its config (use the sim.Engine clock or a config field)",
					fn.Pkg().Path(), fn.Name(), why, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil, nil
}
