package detclock

import (
	"path/filepath"
	"testing"

	"starnuma/internal/lint/linttest"
)

// scopeTo points the analyzer at the fixture package for the duration
// of a test.
func scopeTo(t *testing.T, pkgs string) {
	t.Helper()
	old := Analyzer.Flags.Lookup("packages").Value.String()
	if err := Analyzer.Flags.Set("packages", pkgs); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { Analyzer.Flags.Set("packages", old) })
}

func TestDetclock(t *testing.T) {
	scopeTo(t, "a")
	linttest.Run(t, Analyzer, filepath.Join("testdata", "src", "a"))
}

// TestOutOfScope: the same calls in a package outside the scope list
// (the runner/exp/cmd orchestration layer) produce no diagnostics.
func TestOutOfScope(t *testing.T) {
	scopeTo(t, "a")
	linttest.Run(t, Analyzer, filepath.Join("testdata", "src", "b"))
}
