package allowcheck

import (
	"path/filepath"
	"testing"

	"starnuma/internal/lint/analysis"
	"starnuma/internal/lint/floatdet"
	"starnuma/internal/lint/linttest"
)

// TestAllowcheck runs allowcheck together with floatdet through the
// driver pipeline, the way starnumavet does: floatdet's suppressed
// findings mark their directives used, and allowcheck audits the rest.
func TestAllowcheck(t *testing.T) {
	old := floatdet.Analyzer.Flags.Lookup("packages").Value.String()
	if err := floatdet.Analyzer.Flags.Set("packages", "a"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { floatdet.Analyzer.Flags.Set("packages", old) })

	linttest.RunAnalyzers(t,
		[]*analysis.Analyzer{floatdet.Analyzer, Analyzer},
		filepath.Join("testdata", "src", "a"))
}
