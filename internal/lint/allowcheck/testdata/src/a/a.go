package a

// usedStandalone: a directive alone on its line covers the line below;
// this one suppresses a real floatdet finding, so allowcheck is silent.
func usedStandalone(x, y float64) bool {
	//starnumavet:allow floatdet sentinel equality on a value we wrote ourselves
	return x == y
}

// usedTrailing: same, trailing the offending line.
func usedTrailing(x, y float64) bool {
	return x == y //starnumavet:allow floatdet sentinel equality on a value we wrote ourselves
}

func bad(x int) int {
	//starnumavet:allow // want `allow directive names no analyzer`
	//starnumavet:allow floatdet // want `allow directive for "floatdet" has no reason`
	//starnumavet:allow floatdte typo of the analyzer name // want `allow directive names unknown analyzer "floatdte"`
	//starnumavet:allow floatdet nothing to suppress here // want `stale allow directive: no floatdet diagnostic here to suppress`
	return x + 1
}
