// Package allowcheck audits //starnumavet:allow directives themselves.
//
// An allow directive is a hole in the determinism contract, so each one
// must be well-formed (name a registered analyzer, give a reason) and
// earn its keep (suppress at least one diagnostic on this run).
// Misspelled analyzer names and stale directives that no longer
// suppress anything would otherwise rot silently — an allow for a long-
// fixed finding reads as if the exemption were still needed, and a typo
// in the analyzer name suppresses nothing while looking like it does.
//
// allowcheck is a RunAfter meta-analyzer: the driver runs it once every
// ordinary analyzer has finished, so the shared allow index has
// recorded which directives actually fired. Its own findings cannot be
// suppressed by allow directives.
package allowcheck

import (
	"fmt"

	"starnuma/internal/lint/analysis"
)

// Analyzer is the allowcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "allowcheck",
	Doc: "reject malformed, misspelled, and stale //starnumavet:allow directives\n\n" +
		"Every allow directive must name a registered analyzer, carry a\n" +
		"reason, and suppress at least one diagnostic; anything else is an\n" +
		"error. Runs after all other analyzers so suppression usage is known.",
	RunAfter: true,
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ix := pass.AllowIndex()
	for _, d := range ix.Directives() {
		switch {
		case d.Analyzer == "":
			report(pass, d, "allow directive names no analyzer; write //starnumavet:allow <analyzer> <reason>")
		case d.Reason == "":
			report(pass, d, "allow directive for %q has no reason and therefore suppresses nothing; add the reason or delete it", d.Analyzer)
		case !ix.IsRegistered(d.Analyzer):
			report(pass, d, "allow directive names unknown analyzer %q; it suppresses nothing", d.Analyzer)
		case !ix.Used(pass.Fset, d):
			report(pass, d, "stale allow directive: no %s diagnostic here to suppress; delete it", d.Analyzer)
		}
	}
	return nil, nil
}

// report emits directly through pass.Report, bypassing allow
// suppression: an allow cannot excuse another allow.
func report(pass *analysis.Pass, d analysis.AllowInfo, format string, args ...interface{}) {
	pass.Report(analysis.Diagnostic{Pos: d.Pos, Message: fmt.Sprintf(format, args...)})
}
