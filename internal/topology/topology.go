// Package topology models the interconnect layout of a hierarchical
// multi-socket system in the style of the HPE Superdome FLEX studied by
// the StarNUMA paper (§II-A, Fig. 1), optionally extended with a CXL
// star-connected memory pool (§III).
//
// The system consists of chassis housing a fixed number of sockets each.
// Sockets within a chassis are fully connected by UPI links. Each chassis
// hosts two FLEX ASICs; every socket attaches to one of them, and every
// ASIC has a NUMALink to each ASIC in every other chassis, so any two
// chassis are one NUMALink apart. The optional memory pool is a separate
// node directly connected to every socket by a dedicated CXL link.
//
// The package enumerates directed channels (the unit of bandwidth
// contention) and computes hop-by-hop routes with per-hop one-way
// latencies. Latency constants are configurable so the paper's
// sensitivity studies (e.g. Fig. 10's 190ns CXL penalty) are one config
// change away.
package topology

import (
	"fmt"

	"starnuma/internal/sim"
)

// NodeID identifies an endpoint that can source or sink memory traffic:
// sockets are 0..Sockets-1 and the memory pool (if present) is node
// Sockets.
type NodeID int

// ChannelKind classifies a directed channel for bandwidth assignment.
type ChannelKind int

const (
	// KindUPI is a socket-to-socket link within a chassis.
	KindUPI ChannelKind = iota
	// KindUPIASIC is the UPI link between a socket and its FLEX ASIC.
	KindUPIASIC
	// KindNUMALink is an inter-chassis link between two FLEX ASICs.
	KindNUMALink
	// KindCXL is the dedicated link between a socket and the pool.
	KindCXL
)

// String returns the conventional name of the channel kind.
func (k ChannelKind) String() string {
	switch k {
	case KindUPI:
		return "UPI"
	case KindUPIASIC:
		return "UPI-ASIC"
	case KindNUMALink:
		return "NUMALink"
	case KindCXL:
		return "CXL"
	default:
		return fmt.Sprintf("ChannelKind(%d)", int(k))
	}
}

// Channel is one direction of a physical link. Bandwidth contention is
// modelled per channel by higher layers.
type Channel struct {
	ID      int
	Kind    ChannelKind
	Latency sim.Time // one-way propagation + traversal latency of this hop
	// From/To describe the endpoints for diagnostics. Sockets are
	// "s<N>", ASICs "a<chassis>.<idx>", the pool "pool".
	From, To string
}

// Config describes the system shape and latency constants.
type Config struct {
	Sockets           int // total sockets; must be a multiple of SocketsPerChassis
	SocketsPerChassis int // sockets housed per chassis (4 in the paper)
	HasPool           bool

	// One-way latencies. The defaults (DefaultConfig) are chosen so the
	// paper's end-to-end unloaded numbers emerge exactly: 130ns 1-hop,
	// 360ns 2-hop, 180ns pool access (see DESIGN.md §3).
	UPIOneWay  sim.Time // socket↔socket and socket↔ASIC hop
	ASICOneWay sim.Time // traversal latency per FLEX ASIC
	NUMAOneWay sim.Time // inter-chassis NUMALink flight
	CXLOneWay  sim.Time // socket↔pool, all CXL pipeline stages summed
}

// DefaultConfig returns the paper's 16-socket, four-chassis system with a
// memory pool.
func DefaultConfig() Config {
	return Config{
		Sockets:           16,
		SocketsPerChassis: 4,
		HasPool:           true,
		UPIOneWay:         25 * sim.Nanosecond,
		ASICOneWay:        20 * sim.Nanosecond,
		NUMAOneWay:        50 * sim.Nanosecond,
		CXLOneWay:         50 * sim.Nanosecond,
	}
}

// Validate reports whether the configuration is structurally sound.
func (c Config) Validate() error {
	if c.Sockets <= 0 {
		return fmt.Errorf("topology: Sockets = %d, must be positive", c.Sockets)
	}
	if c.SocketsPerChassis <= 0 {
		return fmt.Errorf("topology: SocketsPerChassis = %d, must be positive", c.SocketsPerChassis)
	}
	if c.Sockets%c.SocketsPerChassis != 0 {
		return fmt.Errorf("topology: Sockets (%d) not a multiple of SocketsPerChassis (%d)",
			c.Sockets, c.SocketsPerChassis)
	}
	if c.UPIOneWay < 0 || c.ASICOneWay < 0 || c.NUMAOneWay < 0 || c.CXLOneWay < 0 {
		return fmt.Errorf("topology: negative latency in config")
	}
	return nil
}

// Topology is an immutable description of the interconnect: the directed
// channel table plus precomputed routes between every pair of nodes.
type Topology struct {
	cfg      Config
	channels []Channel
	// routes[from][to] is the ordered list of channel IDs a message
	// traverses from node `from` to node `to`. Empty for from == to.
	routes [][][]int
}

// New builds the topology for cfg. It panics on invalid configuration;
// configurations are programmer-supplied constants, not user input.
func New(cfg Config) *Topology {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t := &Topology{cfg: cfg}
	t.build()
	return t
}

// Config returns the configuration the topology was built from.
func (t *Topology) Config() Config { return t.cfg }

// Sockets returns the number of CPU sockets.
func (t *Topology) Sockets() int { return t.cfg.Sockets }

// Chassis returns the chassis index housing socket s.
func (t *Topology) Chassis(s NodeID) int { return int(s) / t.cfg.SocketsPerChassis }

// NumChassis returns the number of chassis in the system.
func (t *Topology) NumChassis() int { return t.cfg.Sockets / t.cfg.SocketsPerChassis }

// PoolNode returns the node ID of the memory pool. Callers must only use
// it when HasPool is set.
func (t *Topology) PoolNode() NodeID { return NodeID(t.cfg.Sockets) }

// HasPool reports whether the system includes a memory pool.
func (t *Topology) HasPool() bool { return t.cfg.HasPool }

// Nodes returns the number of routable nodes (sockets plus pool).
func (t *Topology) Nodes() int {
	if t.cfg.HasPool {
		return t.cfg.Sockets + 1
	}
	return t.cfg.Sockets
}

// Channels returns the directed channel table. Callers must not mutate it.
func (t *Topology) Channels() []Channel { return t.channels }

// Route returns the channel IDs traversed from node from to node to, in
// order. The returned slice is shared; callers must not mutate it.
func (t *Topology) Route(from, to NodeID) []int {
	return t.routes[from][to]
}

// OneWayLatency returns the summed per-hop latency from from to to,
// excluding any endpoint (memory/directory) time.
func (t *Topology) OneWayLatency(from, to NodeID) sim.Time {
	var total sim.Time
	for _, id := range t.routes[from][to] {
		total += t.channels[id].Latency
	}
	return total
}

// HopCount classifies an access from a socket to a home node by the
// paper's terminology: 0 = local, 1 = intra-chassis (single UPI hop),
// 2 = inter-chassis (through both ASICs).
func (t *Topology) HopCount(from, to NodeID) int {
	if from == to {
		return 0
	}
	if t.cfg.HasPool && (from == t.PoolNode() || to == t.PoolNode()) {
		return 1 // single CXL hop, reported separately by callers
	}
	if t.Chassis(from) == t.Chassis(to) {
		return 1
	}
	return 2
}

// asicIndex returns which of its chassis' two ASICs socket s attaches to.
// With four sockets per chassis, sockets 0-1 use ASIC 0 and 2-3 use ASIC
// 1, halving each ASIC's socket fan-in as in the FLEX design.
func (t *Topology) asicIndex(s NodeID) int {
	within := int(s) % t.cfg.SocketsPerChassis
	if within < (t.cfg.SocketsPerChassis+1)/2 {
		return 0
	}
	return 1
}

func (t *Topology) build() {
	cfg := t.cfg
	nodes := t.Nodes()
	t.routes = make([][][]int, nodes)
	for i := range t.routes {
		t.routes[i] = make([][]int, nodes)
	}

	addChannel := func(kind ChannelKind, lat sim.Time, from, to string) int {
		id := len(t.channels)
		t.channels = append(t.channels, Channel{ID: id, Kind: kind, Latency: lat, From: from, To: to})
		return id
	}
	sockName := func(s NodeID) string { return fmt.Sprintf("s%d", int(s)) }
	asicName := func(chassis, idx int) string { return fmt.Sprintf("a%d.%d", chassis, idx) }

	// Intra-chassis UPI mesh: a directed channel for every ordered pair
	// of distinct sockets in the same chassis.
	upi := make(map[[2]NodeID]int)
	for a := NodeID(0); int(a) < cfg.Sockets; a++ {
		for b := NodeID(0); int(b) < cfg.Sockets; b++ {
			if a == b || t.Chassis(a) != t.Chassis(b) {
				continue
			}
			upi[[2]NodeID{a, b}] = addChannel(KindUPI, cfg.UPIOneWay, sockName(a), sockName(b))
		}
	}

	// Socket↔ASIC UPI links (one ASIC per socket, two per chassis).
	nChassis := t.NumChassis()
	sockToASIC := make(map[NodeID]int)
	asicToSock := make(map[NodeID]int)
	for s := NodeID(0); int(s) < cfg.Sockets; s++ {
		ch := t.Chassis(s)
		an := asicName(ch, t.asicIndex(s))
		sockToASIC[s] = addChannel(KindUPIASIC, cfg.UPIOneWay, sockName(s), an)
		asicToSock[s] = addChannel(KindUPIASIC, cfg.UPIOneWay, an, sockName(s))
	}

	// Inter-chassis NUMALinks: every ASIC connects to every ASIC of every
	// other chassis. The channel's latency folds in both ASIC traversals
	// plus the link flight time, since the ASICs are crossed exactly when
	// the NUMALink is.
	type asicKey struct{ chassis, idx int }
	numa := make(map[[2]asicKey]int)
	numaLat := cfg.NUMAOneWay + 2*cfg.ASICOneWay
	for c1 := 0; c1 < nChassis; c1++ {
		for i1 := 0; i1 < 2; i1++ {
			for c2 := 0; c2 < nChassis; c2++ {
				if c1 == c2 {
					continue
				}
				for i2 := 0; i2 < 2; i2++ {
					k := [2]asicKey{{c1, i1}, {c2, i2}}
					numa[k] = addChannel(KindNUMALink, numaLat, asicName(c1, i1), asicName(c2, i2))
				}
			}
		}
	}

	// CXL star: one dedicated link per socket, each direction.
	var cxlToPool, cxlFromPool map[NodeID]int
	if cfg.HasPool {
		cxlToPool = make(map[NodeID]int)
		cxlFromPool = make(map[NodeID]int)
		for s := NodeID(0); int(s) < cfg.Sockets; s++ {
			cxlToPool[s] = addChannel(KindCXL, cfg.CXLOneWay, sockName(s), "pool")
			cxlFromPool[s] = addChannel(KindCXL, cfg.CXLOneWay, "pool", sockName(s))
		}
	}

	// Precompute routes.
	pool := t.PoolNode()
	for from := NodeID(0); int(from) < nodes; from++ {
		for to := NodeID(0); int(to) < nodes; to++ {
			if from == to {
				continue
			}
			switch {
			case cfg.HasPool && from == pool:
				t.routes[from][to] = []int{cxlFromPool[to]}
			case cfg.HasPool && to == pool:
				t.routes[from][to] = []int{cxlToPool[from]}
			case t.Chassis(from) == t.Chassis(to):
				t.routes[from][to] = []int{upi[[2]NodeID{from, to}]}
			default:
				srcA := asicKey{t.Chassis(from), t.asicIndex(from)}
				dstA := asicKey{t.Chassis(to), t.asicIndex(to)}
				t.routes[from][to] = []int{
					sockToASIC[from],
					numa[[2]asicKey{srcA, dstA}],
					asicToSock[to],
				}
			}
		}
	}
}
