package topology

import (
	"testing"

	"starnuma/internal/sim"
)

// The 8- and 32-socket variants used by the scaling study (§III-B) must
// preserve the structural invariants of the 16-socket system.
func TestEightSocketSystem(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sockets = 8
	tp := New(cfg)
	if tp.NumChassis() != 2 || tp.Nodes() != 9 {
		t.Fatalf("chassis=%d nodes=%d", tp.NumChassis(), tp.Nodes())
	}
	// Inter-chassis latency identical to the 16-socket system: the
	// chassis-to-chassis hop structure does not change with scale.
	if got := tp.OneWayLatency(0, 7); got != 140*sim.Nanosecond {
		t.Fatalf("inter-chassis one-way = %v", got)
	}
	if got := tp.OneWayLatency(0, tp.PoolNode()); got != 50*sim.Nanosecond {
		t.Fatalf("pool one-way = %v", got)
	}
}

func TestThirtyTwoSocketSystem(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sockets = 32
	tp := New(cfg)
	if tp.NumChassis() != 8 || tp.Nodes() != 33 {
		t.Fatalf("chassis=%d nodes=%d", tp.NumChassis(), tp.Nodes())
	}
	// All-to-all ASIC connectivity: every inter-chassis pair is still
	// exactly three hops.
	for a := NodeID(0); a < 32; a += 5 {
		for b := NodeID(0); b < 32; b += 7 {
			if a == b || tp.Chassis(a) == tp.Chassis(b) {
				continue
			}
			if got := len(tp.Route(a, b)); got != 3 {
				t.Fatalf("route %d->%d has %d hops", a, b, got)
			}
			if got := tp.OneWayLatency(a, b); got != 140*sim.Nanosecond {
				t.Fatalf("latency %d->%d = %v", a, b, got)
			}
		}
	}
	// NUMALink count grows as 2*C*(C-1)*2 directed channels.
	n := 0
	for _, ch := range tp.Channels() {
		if ch.Kind == KindNUMALink {
			n++
		}
	}
	if n != 8*7*4 { // 8 chassis, 2 ASICs each, directed
		t.Fatalf("NUMALink channels = %d", n)
	}
}

// Aggregate bandwidth bookkeeping for Fig. 11's ISO-BW argument: the
// 16-socket system has 68 coherent links (28 inter-chassis pairs + 40
// intra-chassis... the paper counts 28+40). We model 24 inter-chassis
// (excluding same-chassis ASIC pairs) + 24 intra-chassis + 16
// socket-ASIC links; the test documents our accounting.
func TestCoherentLinkInventory(t *testing.T) {
	tp := New(DefaultConfig())
	counts := map[ChannelKind]int{}
	for _, ch := range tp.Channels() {
		counts[ch.Kind]++
	}
	undirected := func(k ChannelKind) int { return counts[k] / 2 }
	if undirected(KindUPI) != 24 {
		t.Errorf("intra-chassis UPI pairs = %d, want 24 (16 sockets x 3 peers / 2)", undirected(KindUPI))
	}
	if undirected(KindUPIASIC) != 16 {
		t.Errorf("socket-ASIC links = %d, want 16", undirected(KindUPIASIC))
	}
	if undirected(KindNUMALink) != 24 {
		t.Errorf("NUMALinks = %d, want 24 (8 ASICs x 6 remote / 2)", undirected(KindNUMALink))
	}
	if undirected(KindCXL) != 16 {
		t.Errorf("CXL links = %d, want 16", undirected(KindCXL))
	}
}
