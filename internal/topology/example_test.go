package topology_test

import (
	"fmt"

	"starnuma/internal/topology"
)

// Route a message from socket 0 to socket 15 (a different chassis) and
// to the memory pool, and inspect the unloaded one-way latencies.
func ExampleTopology_Route() {
	topo := topology.New(topology.DefaultConfig())

	interChassis := topo.Route(0, 15)
	fmt.Println("inter-chassis hops:", len(interChassis))
	fmt.Println("inter-chassis one-way:", topo.OneWayLatency(0, 15))

	pool := topo.PoolNode()
	fmt.Println("pool hops:", len(topo.Route(0, pool)))
	fmt.Println("pool one-way:", topo.OneWayLatency(0, pool))
	// Output:
	// inter-chassis hops: 3
	// inter-chassis one-way: 140.000ns
	// pool hops: 1
	// pool one-way: 50.000ns
}
