package topology

import (
	"testing"
	"testing/quick"

	"starnuma/internal/sim"
)

func defaultTopo(t *testing.T) *Topology {
	t.Helper()
	return New(DefaultConfig())
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"default", func(*Config) {}, true},
		{"zero sockets", func(c *Config) { c.Sockets = 0 }, false},
		{"zero per chassis", func(c *Config) { c.SocketsPerChassis = 0 }, false},
		{"non multiple", func(c *Config) { c.Sockets = 14 }, false},
		{"negative latency", func(c *Config) { c.CXLOneWay = -1 }, false},
		{"single socket", func(c *Config) { c.Sockets = 4; c.SocketsPerChassis = 4 }, true},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		err := cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Sockets = -3
	New(cfg)
}

func TestShape(t *testing.T) {
	tp := defaultTopo(t)
	if tp.Sockets() != 16 || tp.NumChassis() != 4 || tp.Nodes() != 17 {
		t.Fatalf("shape: sockets=%d chassis=%d nodes=%d", tp.Sockets(), tp.NumChassis(), tp.Nodes())
	}
	if tp.PoolNode() != 16 {
		t.Fatalf("pool node = %d", tp.PoolNode())
	}
	if tp.Chassis(0) != 0 || tp.Chassis(3) != 0 || tp.Chassis(4) != 1 || tp.Chassis(15) != 3 {
		t.Fatal("chassis mapping wrong")
	}
}

func TestChannelCounts(t *testing.T) {
	tp := defaultTopo(t)
	counts := map[ChannelKind]int{}
	for _, ch := range tp.Channels() {
		counts[ch.Kind]++
	}
	// 16 sockets x 3 intra-chassis peers, directed.
	if counts[KindUPI] != 48 {
		t.Errorf("UPI channels = %d, want 48", counts[KindUPI])
	}
	// One socket<->ASIC link per socket, both directions.
	if counts[KindUPIASIC] != 32 {
		t.Errorf("UPI-ASIC channels = %d, want 32", counts[KindUPIASIC])
	}
	// 8 ASICs x 6 remote ASICs, directed.
	if counts[KindNUMALink] != 48 {
		t.Errorf("NUMALink channels = %d, want 48", counts[KindNUMALink])
	}
	// One CXL link per socket, both directions.
	if counts[KindCXL] != 32 {
		t.Errorf("CXL channels = %d, want 32", counts[KindCXL])
	}
}

func TestChannelKindString(t *testing.T) {
	want := map[ChannelKind]string{
		KindUPI: "UPI", KindUPIASIC: "UPI-ASIC", KindNUMALink: "NUMALink", KindCXL: "CXL",
		ChannelKind(99): "ChannelKind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// The paper's headline unloaded latencies (§II-A): +50ns intra-chassis,
// +280ns inter-chassis, +100ns pool — i.e. one-way 25ns / 140ns / 50ns.
func TestPaperOneWayLatencies(t *testing.T) {
	tp := defaultTopo(t)
	if got := tp.OneWayLatency(0, 1); got != 25*sim.Nanosecond {
		t.Errorf("intra-chassis one-way = %v, want 25ns", got)
	}
	if got := tp.OneWayLatency(0, 4); got != 140*sim.Nanosecond {
		t.Errorf("inter-chassis one-way = %v, want 140ns", got)
	}
	if got := tp.OneWayLatency(0, tp.PoolNode()); got != 50*sim.Nanosecond {
		t.Errorf("pool one-way = %v, want 50ns", got)
	}
	if got := tp.OneWayLatency(tp.PoolNode(), 9); got != 50*sim.Nanosecond {
		t.Errorf("pool->socket one-way = %v, want 50ns", got)
	}
	if got := tp.OneWayLatency(3, 3); got != 0 {
		t.Errorf("self latency = %v, want 0", got)
	}
}

func TestHopCount(t *testing.T) {
	tp := defaultTopo(t)
	if tp.HopCount(5, 5) != 0 {
		t.Error("self should be 0 hops")
	}
	if tp.HopCount(0, 2) != 1 {
		t.Error("intra-chassis should be 1 hop")
	}
	if tp.HopCount(0, 12) != 2 {
		t.Error("inter-chassis should be 2 hops")
	}
	if tp.HopCount(0, tp.PoolNode()) != 1 {
		t.Error("pool should be a single hop")
	}
}

func TestRouteSymmetryAndEndpoints(t *testing.T) {
	tp := defaultTopo(t)
	n := NodeID(tp.Nodes())
	for a := NodeID(0); a < n; a++ {
		for b := NodeID(0); b < n; b++ {
			fwd, rev := tp.Route(a, b), tp.Route(b, a)
			if a == b {
				if len(fwd) != 0 {
					t.Fatalf("self route %d non-empty", a)
				}
				continue
			}
			if len(fwd) == 0 {
				t.Fatalf("no route %d->%d", a, b)
			}
			if len(fwd) != len(rev) {
				t.Fatalf("asymmetric hop count %d->%d: %d vs %d", a, b, len(fwd), len(rev))
			}
			if tp.OneWayLatency(a, b) != tp.OneWayLatency(b, a) {
				t.Fatalf("asymmetric latency %d->%d", a, b)
			}
			// Route hops must chain: To of hop i == From of hop i+1.
			chs := tp.Channels()
			for i := 0; i+1 < len(fwd); i++ {
				if chs[fwd[i]].To != chs[fwd[i+1]].From {
					t.Fatalf("route %d->%d broken chain at hop %d: %v -> %v",
						a, b, i, chs[fwd[i]], chs[fwd[i+1]])
				}
			}
		}
	}
}

func TestInterChassisRouteUsesThreeHops(t *testing.T) {
	tp := defaultTopo(t)
	r := tp.Route(0, 15)
	if len(r) != 3 {
		t.Fatalf("inter-chassis route has %d hops, want 3", len(r))
	}
	chs := tp.Channels()
	if chs[r[0]].Kind != KindUPIASIC || chs[r[1]].Kind != KindNUMALink || chs[r[2]].Kind != KindUPIASIC {
		t.Fatalf("route kinds = %v %v %v", chs[r[0]].Kind, chs[r[1]].Kind, chs[r[2]].Kind)
	}
}

func TestNoPoolConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HasPool = false
	tp := New(cfg)
	if tp.Nodes() != 16 || tp.HasPool() {
		t.Fatalf("nodes = %d hasPool = %v", tp.Nodes(), tp.HasPool())
	}
	for _, ch := range tp.Channels() {
		if ch.Kind == KindCXL {
			t.Fatal("pool-less topology has CXL channels")
		}
	}
}

func TestSingleChassisSystem(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sockets = 4
	cfg.HasPool = false
	tp := New(cfg)
	for a := NodeID(0); a < 4; a++ {
		for b := NodeID(0); b < 4; b++ {
			if a == b {
				continue
			}
			if got := tp.OneWayLatency(a, b); got != 25*sim.Nanosecond {
				t.Fatalf("single-chassis latency %d->%d = %v", a, b, got)
			}
		}
	}
	for _, ch := range tp.Channels() {
		if ch.Kind == KindNUMALink {
			t.Fatal("single-chassis system has NUMALinks")
		}
	}
}

// Fig. 10's sensitivity study: a 190ns CXL penalty (95ns one-way) yields a
// 270ns end-to-end pool access (95+80+95).
func TestCXLLatencyOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CXLOneWay = 95 * sim.Nanosecond
	tp := New(cfg)
	if got := tp.OneWayLatency(2, tp.PoolNode()); got != 95*sim.Nanosecond {
		t.Fatalf("override one-way = %v", got)
	}
}

// Property: every socket pair in different chassis costs exactly 140ns
// one-way, and same chassis exactly 25ns, regardless of which pair.
func TestLatencyUniformityProperty(t *testing.T) {
	tp := defaultTopo(t)
	f := func(a, b uint8) bool {
		x, y := NodeID(a%16), NodeID(b%16)
		if x == y {
			return tp.OneWayLatency(x, y) == 0
		}
		want := 140 * sim.Nanosecond
		if tp.Chassis(x) == tp.Chassis(y) {
			want = 25 * sim.Nanosecond
		}
		return tp.OneWayLatency(x, y) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Fig. 4: average 3-hop block-transfer network latency across all
// (R, H, O) combinations is ~333ns; the 4-hop pool path is 200ns.
func TestFig4BlockTransferLatencies(t *testing.T) {
	tp := defaultTopo(t)
	var sum sim.Time
	var n int
	for r := NodeID(0); r < 16; r++ {
		for h := NodeID(0); h < 16; h++ {
			for o := NodeID(0); o < 16; o++ {
				if r == o {
					continue // a cache-to-cache transfer needs distinct endpoints
				}
				sum += tp.OneWayLatency(r, h) + tp.OneWayLatency(h, o) + tp.OneWayLatency(o, r)
				n++
			}
		}
	}
	avg := float64(sum) / float64(n) / float64(sim.Nanosecond)
	if avg < 300 || avg > 366 {
		t.Errorf("avg 3-hop BT latency = %.1fns, want ~333ns (paper Fig. 4)", avg)
	}
	pool := tp.PoolNode()
	fourHop := tp.OneWayLatency(0, pool) + tp.OneWayLatency(pool, 9) +
		tp.OneWayLatency(9, pool) + tp.OneWayLatency(pool, 0)
	if fourHop != 200*sim.Nanosecond {
		t.Errorf("4-hop via pool = %v, want 200ns (paper Fig. 4)", fourHop)
	}
}

func BenchmarkRouteLookup(b *testing.B) {
	tp := New(DefaultConfig())
	for i := 0; i < b.N; i++ {
		_ = tp.Route(NodeID(i%16), NodeID((i+7)%16))
	}
}
