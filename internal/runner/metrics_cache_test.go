package runner

import (
	"reflect"
	"testing"

	"starnuma/internal/core"
)

// TestCachePreservesMetrics: a metrics-bearing result survives the
// content-addressed cache byte for byte — a cache hit reproduces the
// exact snapshot the cold run collected.
func TestCachePreservesMetrics(t *testing.T) {
	dir := t.TempDir()
	sys := core.StarNUMASystem()
	cfg := tinySim()
	cfg.Policy = core.PolicyStarNUMA
	cfg.CollectMetrics = true
	spec := tinySpec(t, "BFS")

	cold := New(Config{Jobs: 2, CacheDir: dir})
	want, err := cold.Run("t/BFS", sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if want.Metrics.Empty() {
		t.Fatal("cold run collected no metrics")
	}

	warm := New(Config{Jobs: 2, CacheDir: dir})
	got, err := warm.Run("t/BFS", sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Metrics().CacheHits != 1 {
		t.Fatalf("expected a cache hit, metrics %+v", warm.Metrics())
	}
	if !reflect.DeepEqual(want.Metrics, got.Metrics) {
		t.Errorf("metrics changed across the cache:\nwant %s\ngot  %s",
			want.Metrics.Dump(), got.Metrics.Dump())
	}
}

// TestCacheKeySeparatesMetricsFlag: CollectMetrics participates in the
// cache key, so a metrics-off run never serves a stale metrics-on entry
// or vice versa.
func TestCacheKeySeparatesMetricsFlag(t *testing.T) {
	c := newResultCache(t.TempDir(), "")
	sys := core.StarNUMASystem()
	cfg := tinySim()
	spec := tinySpec(t, "BFS")

	off, err := c.key(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CollectMetrics = true
	on, err := c.key(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if off == on {
		t.Error("cache key ignores CollectMetrics")
	}
}
