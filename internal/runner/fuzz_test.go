package runner

import (
	"encoding/json"
	"reflect"
	"testing"

	"starnuma/internal/core"
	"starnuma/internal/stats"
	"starnuma/internal/workload"
)

// fuzzSeedEntry builds a realistic on-disk cache entry from a real
// (tiny) simulation, the same shape cache_test's round-trip covers.
func fuzzSeedEntry(f *testing.F) []byte {
	f.Helper()
	spec, err := workload.ByName("BFS", 0.05)
	if err != nil {
		f.Fatal(err)
	}
	cfg := core.DefaultSim()
	cfg.Phases = 1
	cfg.PhaseInstr = 50_000
	cfg.TimedInstr = 5_000
	cfg.WarmupInstr = 500
	res, err := core.Run(core.StarNUMASystem(), cfg, spec)
	if err != nil {
		f.Fatal(err)
	}
	b, err := json.Marshal(cacheEntry{Version: SchemaVersion, Key: "seed", Result: res})
	if err != nil {
		f.Fatal(err)
	}
	return b
}

// FuzzResultRoundTrip guards the result-cache JSON codec: decoding
// arbitrary bytes must never panic (the cache treats corrupt entries as
// misses, so any byte string can reach the decoder), and for entries
// that do decode, decode(encode(r)) == r — a lossy codec would let a
// warm cache return results that differ from a cold run and break the
// bit-reproducibility contract.
func FuzzResultRoundTrip(f *testing.F) {
	seed := fuzzSeedEntry(f)
	f.Add(seed)
	// Truncated, corrupted, and hand-written variants.
	f.Add(seed[:len(seed)/2])
	f.Add([]byte(`{`))
	f.Add([]byte(`{"version":"bogus","key":"k","result":null}`))
	f.Add([]byte(`{"version":"` + SchemaVersion + `","key":"k","result":{"IPC":1e308,"MPKI":-1}}`))
	f.Add([]byte(`{"result":{"AMAT":{"Mean":0.5}}}`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		var e cacheEntry
		if err := json.Unmarshal(data, &e); err != nil {
			return // corrupt input: a cache miss, never a panic
		}
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("decoded entry failed to re-encode: %v", err)
		}
		var e2 cacheEntry
		if err := json.Unmarshal(b, &e2); err != nil {
			t.Fatalf("re-encoded entry failed to decode: %v\n%s", err, b)
		}
		if !reflect.DeepEqual(e, e2) {
			t.Fatalf("decode(encode(r)) != r:\n r: %+v\n r2: %+v", e, e2)
		}
	})
}

// TestFuzzSeedDecodes pins the seed corpus construction: the realistic
// entry must round-trip exactly and load through the cache's own path.
func TestFuzzSeedDecodes(t *testing.T) {
	spec, err := workload.ByName("BFS", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinySim()
	res, err := core.Run(core.StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.AMAT == nil {
		t.Fatal("tiny run produced no AMAT; seed entry would not exercise the nested codec")
	}
	var restored stats.AMAT
	b, err := json.Marshal(res.AMAT)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &restored); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res.AMAT, restored) {
		t.Fatalf("AMAT round-trip drifted:\n want %+v\n got %+v", *res.AMAT, restored)
	}
}
