package runner

import (
	"os"
	"testing"

	"starnuma/internal/core"
	"starnuma/internal/fault"
)

// TestCacheRoundTrip: a second runner over the same directory satisfies
// an identical run from disk, with an identical Result.
func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sys := core.StarNUMASystem()
	cfg := tinySim()
	cfg.Policy = core.PolicyStarNUMA
	spec := tinySpec(t, "BFS")

	cold := New(Config{Jobs: 2, CacheDir: dir})
	want, err := cold.Run("t/BFS", sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if m := cold.Metrics(); m.CacheHits != 0 || m.CacheMisses != 1 {
		t.Fatalf("cold cache counters hits=%d misses=%d", m.CacheHits, m.CacheMisses)
	}

	warm := New(Config{Jobs: 2, CacheDir: dir})
	got, err := warm.Run("t/BFS", sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	m := warm.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 0 {
		t.Fatalf("warm cache counters hits=%d misses=%d", m.CacheHits, m.CacheMisses)
	}
	if m.WindowsDone != 0 {
		t.Fatalf("cache hit still simulated %d windows", m.WindowsDone)
	}
	if m.CacheHitRate() != 1 {
		t.Fatalf("hit rate = %v, want 1", m.CacheHitRate())
	}
	if w, g := mustJSON(t, want), mustJSON(t, got); string(w) != string(g) {
		t.Fatalf("cached result differs:\ncold: %s\nwarm: %s", w, g)
	}
}

// TestCacheKeySensitivity: any config change must change the content key.
func TestCacheKeySensitivity(t *testing.T) {
	c := newResultCache(t.TempDir(), "")
	sys := core.StarNUMASystem()
	cfg := tinySim()
	spec := tinySpec(t, "BFS")

	base, err := c.key(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Phases++
	sys2 := sys
	sys2.CoresPerSocket++
	spec2 := spec
	spec2.Seed++
	for name, got := range map[string]func() (string, error){
		"sim":  func() (string, error) { return c.key(sys, cfg2, spec) },
		"sys":  func() (string, error) { return c.key(sys2, cfg, spec) },
		"spec": func() (string, error) { return c.key(sys, cfg, spec2) },
		"ver":  func() (string, error) { return newResultCache(c.dir, "other").key(sys, cfg, spec) },
	} {
		k, err := got()
		if err != nil {
			t.Fatal(err)
		}
		if k == base {
			t.Errorf("%s change did not change the cache key", name)
		}
	}
}

// TestCacheVersionMismatch: an entry whose embedded version disagrees
// with the runner's is ignored (recomputed), even if it sits at the
// right path.
func TestCacheVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	sys := core.BaselineSystem()
	cfg := tinySim()
	cfg.Policy = core.PolicyPerfectBaseline
	spec := tinySpec(t, "TC")

	// Simulate a stale entry: compute under version v2's key but store
	// an envelope stamped v1 (as a hand-copied or pre-bump file would be).
	r1 := New(Config{Jobs: 1, CacheDir: dir, Version: "v1"})
	res, err := r1.Run("t/TC", sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	c2 := newResultCache(dir, "v2")
	k2, err := c2.key(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := newResultCache(dir, "v1").store(k2, res); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.load(k2); ok {
		t.Fatal("entry with mismatched embedded version was served")
	}

	// End to end: a v2 runner recomputes rather than reading v1 state.
	r2 := New(Config{Jobs: 1, CacheDir: dir, Version: "v2"})
	if _, err := r2.Run("t/TC", sys, cfg, spec); err != nil {
		t.Fatal(err)
	}
	if m := r2.Metrics(); m.CacheHits != 0 || m.CacheMisses != 1 {
		t.Fatalf("version bump did not invalidate: hits=%d misses=%d", m.CacheHits, m.CacheMisses)
	}
}

// TestCacheCorruptEntry: truncated or garbage cache files degrade to a
// miss and get overwritten with a good entry.
func TestCacheCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	sys := core.BaselineSystem()
	cfg := tinySim()
	cfg.Policy = core.PolicyPerfectBaseline
	spec := tinySpec(t, "BFS")

	c := newResultCache(dir, "")
	key, err := c.key(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(Config{Jobs: 1}).Run("ref", sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}

	for name, content := range map[string][]byte{
		"garbage":   []byte("not json at all"),
		"truncated": mustJSON(t, cacheEntry{Version: SchemaVersion, Key: key, Result: want})[:40],
		"empty":     nil,
	} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(c.path(key), content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.load(key); ok {
			t.Fatalf("%s: corrupt entry was served", name)
		}
		r := New(Config{Jobs: 2, CacheDir: dir})
		got, err := r.Run("t/BFS", sys, cfg, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m := r.Metrics(); m.CacheMisses != 1 {
			t.Fatalf("%s: corrupt entry not treated as miss", name)
		}
		if w, g := mustJSON(t, want), mustJSON(t, got); string(w) != string(g) {
			t.Fatalf("%s: recomputed result differs", name)
		}
		// The recompute should have healed the entry.
		if _, ok := c.load(key); !ok {
			t.Fatalf("%s: entry not rewritten after recompute", name)
		}
	}
}

// TestCacheReadOnlyDirDegrades: an unwritable cache directory must not
// fail runs — it just recomputes every time.
func TestCacheReadOnlyDirDegrades(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)

	sys := core.BaselineSystem()
	cfg := tinySim()
	cfg.Policy = core.PolicyPerfectBaseline
	if _, err := New(Config{Jobs: 1, CacheDir: dir}).Run("t", sys, cfg, tinySpec(t, "BFS")); err != nil {
		t.Fatalf("read-only cache dir failed the run: %v", err)
	}
}

// TestCacheKeyIncludesFaultPlan: the fault plan content-hashes into the
// cache key, so a degraded run can never be satisfied by a fault-free
// cache entry (or vice versa), and editing a plan invalidates its runs.
func TestCacheKeyIncludesFaultPlan(t *testing.T) {
	c := newResultCache(t.TempDir(), "")
	sys := core.StarNUMASystem()
	cfg := tinySim()
	spec := tinySpec(t, "BFS")

	base, err := c.key(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = fault.FlapPlan()
	flap, err := c.key(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if flap == base {
		t.Error("fault plan did not change the cache key")
	}
	cfg.Faults = fault.DegradePlan(4)
	if k, _ := c.key(sys, cfg, spec); k == flap || k == base {
		t.Error("different plans share a cache key")
	}
}
