package runner

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// JobKind distinguishes the scheduler's two job levels.
type JobKind int

const (
	// KindRun is a suite-level job: one full workload×config pipeline.
	KindRun JobKind = iota
	// KindWindow is a step-C job: one checkpoint's timing window.
	KindWindow
)

// String names the kind.
func (k JobKind) String() string {
	switch k {
	case KindRun:
		return "run"
	case KindWindow:
		return "window"
	default:
		return fmt.Sprintf("JobKind(%d)", int(k))
	}
}

// JobInfo identifies a job to a Reporter.
type JobInfo struct {
	// Label names the job, e.g. "baseline/BFS" or "baseline/BFS window 3/8".
	Label string
	Kind  JobKind
}

// Reporter observes scheduler progress. Implementations must be safe
// for concurrent use: jobs start and finish on worker goroutines.
type Reporter interface {
	// JobStarted fires when a job acquires a worker slot (or, for
	// run-level jobs, when its pipeline begins).
	JobStarted(info JobInfo)
	// JobDone fires when a job completes. cacheHit is true when a
	// run-level job was satisfied from the persistent result cache
	// without simulating.
	JobDone(info JobInfo, wall time.Duration, cacheHit bool)
}

// NopReporter discards all events.
type NopReporter struct{}

// JobStarted implements Reporter.
func (NopReporter) JobStarted(JobInfo) {}

// JobDone implements Reporter.
func (NopReporter) JobDone(JobInfo, time.Duration, bool) {}

// TerminalReporter prints live progress lines. Window-level jobs are
// counted but not printed (a suite schedules hundreds); every run-level
// completion emits one line with cumulative counters, so a watching
// terminal sees the suite advance job by job.
type TerminalReporter struct {
	mu          sync.Mutex
	w           io.Writer
	start       time.Time
	runsStarted int
	runsDone    int
	windowsDone int
	cacheHits   int
}

// NewTerminalReporter writes progress to w (conventionally stderr, so
// result tables on stdout stay clean).
func NewTerminalReporter(w io.Writer) *TerminalReporter {
	return &TerminalReporter{w: w, start: time.Now()}
}

// JobStarted implements Reporter.
func (t *TerminalReporter) JobStarted(info JobInfo) {
	if info.Kind != KindRun {
		return
	}
	t.mu.Lock()
	t.runsStarted++
	t.mu.Unlock()
}

// JobDone implements Reporter.
func (t *TerminalReporter) JobDone(info JobInfo, wall time.Duration, cacheHit bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if info.Kind == KindWindow {
		t.windowsDone++
		return
	}
	t.runsDone++
	if cacheHit {
		t.cacheHits++
	}
	tag := ""
	if cacheHit {
		tag = "  [cached]"
	}
	fmt.Fprintf(t.w, "[runner %6s] %3d runs (%d cached) · %4d windows · %s %v%s\n",
		time.Since(t.start).Round(time.Second),
		t.runsDone, t.cacheHits, t.windowsDone,
		info.Label, wall.Round(time.Millisecond), tag)
}
