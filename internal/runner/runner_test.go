package runner

import (
	"encoding/json"
	"testing"

	"starnuma/internal/core"
	"starnuma/internal/workload"
)

// tinySim returns a configuration small enough for unit tests.
func tinySim() core.SimConfig {
	c := core.DefaultSim()
	c.Phases = 2
	c.PhaseInstr = 200_000
	c.TimedInstr = 20_000
	c.WarmupInstr = 2_000
	return c
}

func tinySpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	spec, err := workload.ByName(name, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunMatchesSequential checks the central determinism contract: the
// parallel scheduler produces the exact Result of the sequential
// core.Run path.
func TestRunMatchesSequential(t *testing.T) {
	sys := core.StarNUMASystem()
	cfg := tinySim()
	cfg.Policy = core.PolicyStarNUMA
	spec := tinySpec(t, "BFS")

	want, err := core.Run(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(Config{Jobs: 4}).Run("test/BFS", sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if w, g := mustJSON(t, want), mustJSON(t, got); string(w) != string(g) {
		t.Fatalf("parallel result differs from sequential:\nseq: %s\npar: %s", w, g)
	}
}

// TestRunAll checks input-order results and the progress counters.
func TestRunAll(t *testing.T) {
	cfgB := tinySim()
	cfgB.Policy = core.PolicyPerfectBaseline
	cfgS := tinySim()
	cfgS.Policy = core.PolicyStarNUMA
	spec := tinySpec(t, "TC")

	r := New(Config{Jobs: 2})
	results, err := r.RunAll([]Job{
		{Label: "baseline/TC", Sys: core.BaselineSystem(), Cfg: cfgB, Spec: spec},
		{Label: "starnuma/TC", Sys: core.StarNUMASystem(), Cfg: cfgS, Spec: spec},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if !results[0].Policy.Is("baseline-perfect") || !results[1].Policy.Is("starnuma") {
		t.Fatalf("results out of input order: %v, %v", results[0].Policy, results[1].Policy)
	}

	m := r.Metrics()
	if m.RunsStarted != 2 || m.RunsDone != 2 {
		t.Fatalf("runs started/done = %d/%d, want 2/2", m.RunsStarted, m.RunsDone)
	}
	wantWindows := int64(2 * cfgB.Phases)
	if m.WindowsDone != wantWindows {
		t.Fatalf("windows done = %d, want %d", m.WindowsDone, wantWindows)
	}
	if m.CacheHits != 0 || m.CacheMisses != 0 {
		t.Fatalf("cache counters %d/%d without a cache", m.CacheHits, m.CacheMisses)
	}
	if m.CacheHitRate() != 0 {
		t.Fatalf("hit rate = %v without cache traffic", m.CacheHitRate())
	}
}

// TestRunErrorPropagates checks that an invalid job surfaces its error.
func TestRunErrorPropagates(t *testing.T) {
	sys := core.BaselineSystem()
	sys.CoresPerSocket = 0 // invalid
	cfg := tinySim()
	if _, err := New(Config{Jobs: 2}).Run("bad", sys, cfg, tinySpec(t, "BFS")); err == nil {
		t.Fatal("invalid system accepted")
	}
}

func TestJobKindString(t *testing.T) {
	if KindRun.String() != "run" || KindWindow.String() != "window" {
		t.Fatal("JobKind.String wrong")
	}
}
