// Package runner executes the evaluation pipeline as scheduled jobs on
// a bounded worker pool, with a persistent content-addressed result
// cache and live progress reporting.
//
// Work is decomposed at two levels:
//
//   - suite level: one job per workload×config pair (Run / RunAll /
//     RunSuite), and
//   - step-C level: one job per checkpoint timing window, since the
//     windows of one run are independent once step B's checkpoints
//     exist (core.Plan).
//
// Orchestration goroutines are cheap and unbounded; actual simulation
// work acquires a slot from a single semaphore of Jobs entries, so CPU
// parallelism is bounded at both levels by one knob and the two levels
// can never deadlock against each other. Results are bit-identical to
// the sequential core.RunSource path at any worker count: each window
// job replays its phase on a private generator (streams are pure
// functions of (seed, core, phase)) and windows are merged back in
// checkpoint order.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"starnuma/internal/core"
	"starnuma/internal/topology"
	"starnuma/internal/workload"
)

// Config parameterises a Runner.
type Config struct {
	// Jobs is the worker-slot count; <=0 means GOMAXPROCS.
	Jobs int
	// CacheDir enables the persistent result cache when non-empty.
	CacheDir string
	// Version overrides the cache schema version (tests); "" means
	// SchemaVersion.
	Version string
	// Reporter observes job progress; nil means silent.
	Reporter Reporter
}

// Metrics is a snapshot of a Runner's lifetime counters.
type Metrics struct {
	RunsStarted int64 // run-level jobs begun (including cache hits)
	RunsDone    int64 // run-level jobs completed
	WindowsDone int64 // step-C window jobs completed
	CacheHits   int64 // runs satisfied from the persistent cache
	CacheMisses int64 // runs that had to simulate (cache enabled only)
}

// CacheHitRate returns hits/(hits+misses), 0 when the cache saw no
// traffic.
func (m Metrics) CacheHitRate() float64 {
	total := m.CacheHits + m.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(total)
}

// Runner schedules pipeline executions. It is safe for concurrent use.
type Runner struct {
	jobs  int
	sem   chan struct{}
	cache *resultCache
	rep   Reporter

	runsStarted atomic.Int64
	runsDone    atomic.Int64
	windowsDone atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// New builds a Runner from cfg.
func New(cfg Config) *Runner {
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	r := &Runner{
		jobs: jobs,
		sem:  make(chan struct{}, jobs),
		rep:  cfg.Reporter,
	}
	if r.rep == nil {
		r.rep = NopReporter{}
	}
	if cfg.CacheDir != "" {
		r.cache = newResultCache(cfg.CacheDir, cfg.Version)
	}
	return r
}

// Jobs returns the worker-slot count.
func (r *Runner) Jobs() int { return r.jobs }

// Metrics returns a snapshot of the runner's counters.
func (r *Runner) Metrics() Metrics {
	return Metrics{
		RunsStarted: r.runsStarted.Load(),
		RunsDone:    r.runsDone.Load(),
		WindowsDone: r.windowsDone.Load(),
		CacheHits:   r.cacheHits.Load(),
		CacheMisses: r.cacheMisses.Load(),
	}
}

func (r *Runner) acquire() { r.sem <- struct{}{} }
func (r *Runner) release() { <-r.sem }

// Job is one suite-level unit of work.
type Job struct {
	// Label names the job in progress output (e.g. "baseline/BFS").
	Label string
	Sys   core.SystemConfig
	Cfg   core.SimConfig
	Spec  workload.Spec
}

// Run executes one workload×config pipeline: persistent-cache lookup,
// then step B under a worker slot, then one window job per checkpoint
// fanned across the pool, merged deterministically.
func (r *Runner) Run(label string, sys core.SystemConfig, cfg core.SimConfig, spec workload.Spec) (*core.Result, error) {
	info := JobInfo{Label: label, Kind: KindRun}
	r.runsStarted.Add(1)
	r.rep.JobStarted(info)
	start := time.Now()

	var key string
	if r.cache != nil {
		k, err := r.cache.key(sys, cfg, spec)
		if err != nil {
			return nil, err
		}
		key = k
		if res, ok := r.cache.load(key); ok {
			r.cacheHits.Add(1)
			r.runsDone.Add(1)
			r.rep.JobDone(info, time.Since(start), true)
			return res, nil
		}
		r.cacheMisses.Add(1)
	}

	res, err := r.compute(label, sys, cfg, spec)
	if err != nil {
		return nil, err
	}
	if r.cache != nil {
		if err := r.cache.store(key, res); err != nil {
			// A read-only cache directory degrades to recomputation;
			// it must not fail the run.
			_ = err
		}
	}
	r.runsDone.Add(1)
	r.rep.JobDone(info, time.Since(start), false)
	return res, nil
}

// compute runs the pipeline with parallel step-C windows.
func (r *Runner) compute(label string, sys core.SystemConfig, cfg core.SimConfig, spec workload.Spec) (*core.Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	sockets := topology.New(sys.Topology).Sockets()
	// Generators come from the workload pool: their drift tables and
	// recorded phase streams are expensive to rebuild, and every window
	// of a run draws the identical streams regardless of which pooled
	// instance serves it.
	newGen := func() (*workload.Generator, error) {
		return workload.AcquireGenerator(spec, sockets, sys.CoresPerSocket)
	}

	// Step B occupies one worker slot.
	r.acquire()
	plan, err := func() (*core.Plan, error) {
		gen, err := newGen()
		if err != nil {
			return nil, err
		}
		defer workload.ReleaseGenerator(gen)
		return core.NewPlan(sys, cfg, gen)
	}()
	r.release()
	if err != nil {
		return nil, fmt.Errorf("runner: %s: %w", label, err)
	}

	// Step C: one job per window, each on a private generator so the
	// streams match the sequential replay exactly.
	n := plan.NumWindows()
	windows := make([]core.Window, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.acquire()
			defer r.release()
			winfo := JobInfo{
				Label: fmt.Sprintf("%s window %d/%d", label, i+1, n),
				Kind:  KindWindow,
			}
			r.rep.JobStarted(winfo)
			t0 := time.Now()
			gen, err := newGen()
			if err != nil {
				errs[i] = err
				return
			}
			windows[i] = plan.RunWindow(i, gen)
			workload.ReleaseGenerator(gen)
			r.windowsDone.Add(1)
			r.rep.JobDone(winfo, time.Since(t0), false)
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("runner: %s: %w", label, e)
		}
	}
	return plan.Assemble(windows), nil
}

// RunAll executes jobs concurrently (each internally window-parallel)
// and returns results in input order. The first error wins; remaining
// jobs still run to completion.
func (r *Runner) RunAll(jobs []Job) ([]*core.Result, error) {
	results := make([]*core.Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j Job) {
			defer wg.Done()
			results[i], errs[i] = r.Run(j.Label, j.Sys, j.Cfg, j.Spec)
		}(i, j)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return results, nil
}

// RunSuite runs every workload of the suite on one system configuration
// — the parallel counterpart of core.RunSuite.
func (r *Runner) RunSuite(sys core.SystemConfig, cfg core.SimConfig, scale float64) ([]*core.Result, error) {
	var jobs []Job
	for _, spec := range workload.Suite(scale) {
		jobs = append(jobs, Job{Label: "suite/" + spec.Name, Sys: sys, Cfg: cfg, Spec: spec})
	}
	return r.RunAll(jobs)
}
