package runner

import (
	"strconv"
	"sync"
	"time"

	"starnuma/internal/evtrace"
	"starnuma/internal/sim"
)

// TraceReporter records job start/done as wall-clock spans in an
// event-trace buffer (internal/evtrace), so a run's real execution —
// worker occupancy, cache hits, window fan-out — can be laid next to
// the simulated timelines in one Perfetto view. Jobs land on lanes
// "runner/slot0".."runner/slotN": a job takes the lowest free slot when
// it starts, which mirrors worker-pool occupancy without needing the
// scheduler to expose its slots.
//
// Unlike every simulated lane, this one reads the wall clock, so it is
// explicitly exempt from the byte-stability contract: reruns produce
// different runner spans. The determinism tests therefore compare
// simulation-level traces only.
type TraceReporter struct {
	mu      sync.Mutex
	buf     *evtrace.Buffer
	started bool
	base    time.Time
	slots   []bool // occupancy; index = lane number
	active  map[string]traceJob
}

type traceJob struct {
	slot  int
	start sim.Time
}

// NewTraceReporter returns an empty reporter; the trace clock starts at
// the first JobStarted.
func NewTraceReporter() *TraceReporter {
	return &TraceReporter{buf: evtrace.NewBuffer(), active: make(map[string]traceJob)}
}

// now returns the wall time since base on the trace clock.
func (t *TraceReporter) now() sim.Time {
	return sim.FromNanos(float64(time.Since(t.base).Nanoseconds()))
}

// JobStarted implements Reporter.
func (t *TraceReporter) JobStarted(info JobInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.started, t.base = true, time.Now()
	}
	slot := -1
	for i, used := range t.slots {
		if !used {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = len(t.slots)
		t.slots = append(t.slots, false)
	}
	t.slots[slot] = true
	t.active[info.Label] = traceJob{slot: slot, start: t.now()}
}

// JobDone implements Reporter.
func (t *TraceReporter) JobDone(info JobInfo, wall time.Duration, cacheHit bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.active[info.Label]
	if !ok {
		return
	}
	delete(t.active, info.Label)
	t.slots[j.slot] = false
	end := t.now()
	args := []evtrace.Arg{{Key: "kind", Val: info.Kind.String()}}
	if cacheHit {
		args = append(args, evtrace.Arg{Key: "cached", Val: "true"})
	}
	t.buf.SpanArgs("runner", info.Label, "runner/slot"+strconv.Itoa(j.slot),
		j.start, end-j.start, args...)
}

// Buffer returns the recorded wall-clock events. Call it only after all
// jobs have completed; the returned buffer is the reporter's own.
func (t *TraceReporter) Buffer() *evtrace.Buffer {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buf
}

// MultiReporter fans every event out to each of its reporters, letting
// a terminal progress display and a trace recorder observe the same
// run.
type MultiReporter []Reporter

// JobStarted implements Reporter.
func (m MultiReporter) JobStarted(info JobInfo) {
	for _, r := range m {
		r.JobStarted(info)
	}
}

// JobDone implements Reporter.
func (m MultiReporter) JobDone(info JobInfo, wall time.Duration, cacheHit bool) {
	for _, r := range m {
		r.JobDone(info, wall, cacheHit)
	}
}
