package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"starnuma/internal/core"
	"starnuma/internal/workload"
)

// SchemaVersion is the result-cache schema/code version. It is part of
// the content key AND embedded in every entry, so bumping it orphans
// all previous entries (they simply stop being addressed) and a stale
// or hand-copied file whose embedded version mismatches is ignored.
// Bump it whenever a model change alters simulation results without
// changing any configuration struct.
const SchemaVersion = "starnuma-results-v1"

// DefaultCacheDir is where CLIs persist results by default.
const DefaultCacheDir = ".starnuma-cache"

// cacheEntry is the on-disk JSON envelope of one cached result.
type cacheEntry struct {
	Version string       `json:"version"`
	Key     string       `json:"key"`
	Result  *core.Result `json:"result"`
}

// resultCache is a content-addressed store of simulation results under
// one directory: filename = SHA-256 of the canonical JSON encoding of
// (version, SystemConfig, SimConfig, workload.Spec). All configuration
// structs have exported fields only, so the encoding captures every
// knob that can influence a result; anything else (code behaviour) is
// covered by the version string.
type resultCache struct {
	dir     string
	version string
}

func newResultCache(dir, version string) *resultCache {
	if version == "" {
		version = SchemaVersion
	}
	return &resultCache{dir: dir, version: version}
}

// key returns the content hash addressing (sys, cfg, spec) under the
// cache's version.
func (c *resultCache) key(sys core.SystemConfig, cfg core.SimConfig, spec workload.Spec) (string, error) {
	payload := struct {
		Version string
		Sys     core.SystemConfig
		Cfg     core.SimConfig
		Spec    workload.Spec
	}{c.version, sys, cfg, spec}
	b, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("runner: cache key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

func (c *resultCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// load returns the cached result for key, or ok=false on any miss:
// absent file, unreadable/corrupt/truncated JSON, or an entry whose
// embedded version or key disagrees. A bad entry is never an error —
// the caller recomputes and overwrites it.
func (c *resultCache) load(key string) (*core.Result, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(b, &e); err != nil {
		return nil, false
	}
	if e.Version != c.version || e.Key != key || e.Result == nil {
		return nil, false
	}
	return e.Result, true
}

// store persists res under key, atomically (write temp file + rename)
// so a concurrent reader never observes a truncated entry.
func (c *resultCache) store(key string, res *core.Result) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("runner: cache dir: %w", err)
	}
	b, err := json.Marshal(cacheEntry{Version: c.version, Key: key, Result: res})
	if err != nil {
		return fmt.Errorf("runner: cache encode: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*.json")
	if err != nil {
		return fmt.Errorf("runner: cache write: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache write: %w", err)
	}
	return nil
}
