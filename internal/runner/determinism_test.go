package runner

import (
	"bytes"
	"testing"

	"starnuma/internal/core"
	"starnuma/internal/evtrace"
	"starnuma/internal/fault"
	"starnuma/internal/tracker"
)

// TestDeterminismAcrossWorkerCounts runs the Fig. 8a variant set
// (baseline, StarNUMA/T0, StarNUMA/T16) for one workload at 1, 2 and 8
// workers and requires byte-identical serialized Results: worker count
// must never influence measured numbers, only wall time.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	spec := tinySpec(t, "CC")

	cfgB := tinySim()
	cfgB.Policy = core.PolicyPerfectBaseline
	cfgT16 := tinySim()
	cfgT16.Policy = core.PolicyStarNUMA
	cfgT0 := cfgT16
	cfgT0.Tracker = tracker.T0

	jobs := []Job{
		{Label: "baseline/CC", Sys: core.BaselineSystem(), Cfg: cfgB, Spec: spec},
		{Label: "starnuma-t0/CC", Sys: core.StarNUMASystem(), Cfg: cfgT0, Spec: spec},
		{Label: "starnuma-t16/CC", Sys: core.StarNUMASystem(), Cfg: cfgT16, Spec: spec},
	}

	var ref []byte
	for _, workers := range []int{1, 2, 8} {
		results, err := New(Config{Jobs: workers}).RunAll(jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", workers, err)
		}
		b := mustJSON(t, results)
		if ref == nil {
			ref = b
			continue
		}
		if string(b) != string(ref) {
			t.Fatalf("results at jobs=%d differ from jobs=1:\njobs=1: %s\njobs=%d: %s",
				workers, ref, workers, b)
		}
	}
}

// TestFaultDeterminismAcrossWorkerCounts is the fault-injection analogue
// of the pin above: the same fault plan + seed must serialize to
// identical bytes at 1 and 8 workers (ISSUE acceptance criterion).
func TestFaultDeterminismAcrossWorkerCounts(t *testing.T) {
	spec := tinySpec(t, "CC")

	cfg := tinySim()
	cfg.Policy = core.PolicyStarNUMA
	cfg.Phases = 4
	cfgFlap := cfg
	cfgFlap.Faults = fault.FlapPlan()
	cfgKill := cfg
	cfgKill.Faults = fault.DeadChannelPlan(0)

	jobs := []Job{
		{Label: "flap/CC", Sys: core.StarNUMASystem(), Cfg: cfgFlap, Spec: spec},
		{Label: "deadch/CC", Sys: core.StarNUMASystem(), Cfg: cfgKill, Spec: spec},
	}

	var ref []byte
	for _, workers := range []int{1, 8} {
		results, err := New(Config{Jobs: workers}).RunAll(jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", workers, err)
		}
		b := mustJSON(t, results)
		if ref == nil {
			ref = b
			continue
		}
		if string(b) != string(ref) {
			t.Fatalf("fault results at jobs=%d differ from jobs=1:\njobs=1: %s\njobs=%d: %s",
				workers, ref, workers, b)
		}
	}
}

// TestTraceDeterminismAcrossWorkerCounts is the event-trace analogue:
// with SimConfig.Trace enabled, the encoded simulation trace must be
// byte-identical at 1 and 8 workers. Only the sim-time lanes are
// compared — the runner's wall-clock lane is explicitly exempt from
// byte stability.
func TestTraceDeterminismAcrossWorkerCounts(t *testing.T) {
	spec := tinySpec(t, "CC")

	cfg := tinySim()
	cfg.Policy = core.PolicyStarNUMA
	cfg.Phases = 4
	cfg.Trace = true
	cfgB := tinySim()
	cfgB.Policy = core.PolicyPerfectBaseline
	cfgB.Trace = true

	jobs := []Job{
		{Label: "baseline/CC", Sys: core.BaselineSystem(), Cfg: cfgB, Spec: spec},
		{Label: "starnuma-t16/CC", Sys: core.StarNUMASystem(), Cfg: cfg, Spec: spec},
	}

	encode := func(results []*core.Result) []byte {
		t.Helper()
		bd := evtrace.NewBuilder()
		for i, r := range results {
			if r.Trace == nil {
				t.Fatalf("%s: Trace=true but Result.Trace is nil", jobs[i].Label)
			}
			bd.Add(jobs[i].Label, r.Trace)
		}
		b, err := bd.Build().Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var ref []byte
	for _, workers := range []int{1, 8} {
		results, err := New(Config{Jobs: workers}).RunAll(jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", workers, err)
		}
		b := encode(results)
		if ref == nil {
			ref = b
			continue
		}
		if !bytes.Equal(b, ref) {
			t.Fatalf("traces at jobs=%d differ from jobs=1 (%d vs %d bytes)",
				workers, len(b), len(ref))
		}
	}
}

// TestAttribDeterminismAcrossWorkerCounts is the stall-attribution
// analogue: with SimConfig.Attrib enabled, the serialized Results —
// including the per-window attribution profile — must be byte-identical
// at 1 and 8 workers, and every profile must conserve stall time
// exactly (ISSUE acceptance criterion).
func TestAttribDeterminismAcrossWorkerCounts(t *testing.T) {
	spec := tinySpec(t, "CC")

	cfg := tinySim()
	cfg.Policy = core.PolicyStarNUMA
	cfg.Attrib = true
	cfgB := tinySim()
	cfgB.Policy = core.PolicyPerfectBaseline
	cfgB.Attrib = true

	jobs := []Job{
		{Label: "baseline/CC", Sys: core.BaselineSystem(), Cfg: cfgB, Spec: spec},
		{Label: "starnuma-t16/CC", Sys: core.StarNUMASystem(), Cfg: cfg, Spec: spec},
	}

	var ref []byte
	for _, workers := range []int{1, 8} {
		results, err := New(Config{Jobs: workers}).RunAll(jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", workers, err)
		}
		for i, r := range results {
			if r.Profile == nil {
				t.Fatalf("%s: Attrib=true but Result.Profile is nil", jobs[i].Label)
			}
			if err := r.Profile.CheckConservation(); err != nil {
				t.Fatalf("%s at jobs=%d: %v", jobs[i].Label, workers, err)
			}
		}
		b := mustJSON(t, results)
		if ref == nil {
			ref = b
			continue
		}
		if string(b) != string(ref) {
			t.Fatalf("attributed results at jobs=%d differ from jobs=1 (%d vs %d bytes)",
				workers, len(b), len(ref))
		}
	}
}
