package runner

import (
	"encoding/json"
	"strings"
	"testing"

	"starnuma/internal/core"
	"starnuma/internal/workload"
)

// goldenCacheKeys pins the content-addressed cache keys of the three
// legacy policies, captured before the PolicyKind enum was replaced by
// the PolicySpec registry selector. The redesign's compatibility
// contract: a pre-redesign SimConfig must hash to the byte-identical
// key, so every previously cached result stays addressable.
var goldenCacheKeys = map[string]string{
	"starnuma":         "c7e9c406470a3e20ec287a2898b2edbeb0c41c32bb2a1288dd98c8452b16a955",
	"baseline-perfect": "4f9ce07bc2b06cd62b1ebb3bbac3ce8f3f13e1040a6b51404e7fa70c1ee0aca6",
	"none":             "99d10ec83b136e911018b1dff55a54940adaba42c66d006330ff36937602f895",
}

func goldenInputs(t *testing.T, policy core.PolicySpec) (core.SystemConfig, core.SimConfig, workload.Spec) {
	t.Helper()
	spec, err := workload.ByName("BFS", 0.125)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.QuickSim()
	cfg.Policy = policy
	return core.StarNUMASystem(), cfg, spec
}

func TestCacheKeyLegacyPolicyCompat(t *testing.T) {
	c := newResultCache(t.TempDir(), "")
	for _, p := range []core.PolicySpec{core.PolicyStarNUMA, core.PolicyPerfectBaseline, core.PolicyNone} {
		sys, cfg, spec := goldenInputs(t, p)
		k, err := c.key(sys, cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		if want := goldenCacheKeys[p.String()]; k != want {
			t.Errorf("cache key for %v drifted:\n got  %s\n want %s\n"+
				"(pre-redesign entries would no longer be addressable)", p, k, want)
		}
	}
}

// TestCacheKeyLegacyJSONRoundTrip proves the stronger property: a
// SimConfig decoded from legacy JSON (bare integer Policy values, as
// every pre-redesign config marshaled) hashes to the same key as the
// modern value — and the modern value still marshals to that legacy
// form.
func TestCacheKeyLegacyJSONRoundTrip(t *testing.T) {
	c := newResultCache(t.TempDir(), "")
	for code, p := range []core.PolicySpec{core.PolicyStarNUMA, core.PolicyPerfectBaseline, core.PolicyNone} {
		sys, cfg, spec := goldenInputs(t, p)
		b, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The modern spec must emit the legacy bare-integer encoding.
		if want := `"Policy":` + string(rune('0'+code)) + `,`; !strings.Contains(string(b), want) {
			t.Fatalf("SimConfig JSON for %v lost the legacy encoding %s:\n%s", p, want, b)
		}
		var decoded core.SimConfig
		if err := json.Unmarshal(b, &decoded); err != nil {
			t.Fatal(err)
		}
		k1, err := c.key(sys, cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := c.key(sys, decoded, spec)
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Errorf("legacy JSON round-trip changed the cache key for %v: %s != %s", p, k1, k2)
		}
		if k1 != goldenCacheKeys[p.String()] {
			t.Errorf("key for %v drifted from golden: %s", p, k1)
		}
	}
}
