package link_test

import (
	"fmt"

	"starnuma/internal/link"
	"starnuma/internal/sim"
)

// Two back-to-back cache lines on a scaled 3 GB/s NUMALink: the second
// queues behind the first's serialization.
func ExampleLink() {
	l := link.New("numalink", 3, 50*sim.Nanosecond)
	done1, q1 := l.Send(0, 72)
	done2, q2 := l.Send(0, 72)
	fmt.Println("first delivered:", done1, "queued:", q1)
	fmt.Println("second delivered:", done2, "queued:", q2)
	// Output:
	// first delivered: 74.000ns queued: 0.000ns
	// second delivered: 98.000ns queued: 24.000ns
}
