package link

import (
	"math/rand"
	"testing"
	"testing/quick"

	"starnuma/internal/fault"
	"starnuma/internal/sim"
)

func TestUnloadedSend(t *testing.T) {
	// 1 GB/s = 1 byte/ns, so 64 bytes serialize in 64ns; +25ns latency.
	l := New("upi", 1, 25*sim.Nanosecond)
	done, q := l.Send(0, 64)
	if q != 0 {
		t.Fatalf("queuing = %v on idle link", q)
	}
	if done != 89*sim.Nanosecond {
		t.Fatalf("done = %v, want 89ns", done)
	}
}

func TestInfiniteBandwidth(t *testing.T) {
	l := New("inf", 0, 10*sim.Nanosecond)
	for i := 0; i < 100; i++ {
		done, q := l.Send(0, 1<<20)
		if q != 0 || done != 10*sim.Nanosecond {
			t.Fatalf("infinite-bw link queued: done=%v q=%v", done, q)
		}
	}
}

func TestQueuingDelay(t *testing.T) {
	l := New("upi", 1, 0) // 64B takes 64ns on the wire
	done1, q1 := l.Send(0, 64)
	if q1 != 0 || done1 != 64*sim.Nanosecond {
		t.Fatalf("first: done=%v q=%v", done1, q1)
	}
	// Second message arrives while the first still transmits.
	done2, q2 := l.Send(10*sim.Nanosecond, 64)
	if q2 != 54*sim.Nanosecond {
		t.Fatalf("second queuing = %v, want 54ns", q2)
	}
	if done2 != 128*sim.Nanosecond {
		t.Fatalf("second done = %v, want 128ns", done2)
	}
	// Third message arrives after the wire is free again: no queuing.
	done3, q3 := l.Send(200*sim.Nanosecond, 64)
	if q3 != 0 || done3 != 264*sim.Nanosecond {
		t.Fatalf("third: done=%v q=%v", done3, q3)
	}
}

func TestStatsAndUtilization(t *testing.T) {
	l := New("n", 2, 5*sim.Nanosecond) // 2 GB/s: 64B = 32ns
	l.Send(0, 64)
	l.Send(0, 64)
	s := l.Stats()
	if s.Messages != 2 || s.Bytes != 128 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BusyTime != 64*sim.Nanosecond {
		t.Fatalf("busy = %v", s.BusyTime)
	}
	if s.QueuedTime != 32*sim.Nanosecond {
		t.Fatalf("queued = %v", s.QueuedTime)
	}
	if u := l.Utilization(128 * sim.Nanosecond); u != 0.5 {
		t.Fatalf("utilization = %v", u)
	}
	if u := l.Utilization(0); u != 0 {
		t.Fatalf("utilization(0) = %v", u)
	}
	l.Reset()
	if s := l.Stats(); s.Messages != 0 || s.BusyTime != 0 {
		t.Fatalf("after reset: %+v", s)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	l := New("n", 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Send(0, -1)
}

func TestNegativeLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("n", 1, -1)
}

// Property: deliveries are FIFO and the wire never transmits two messages
// at once — total busy time equals the sum of serialization times, and
// each message's delivery is at least arrival + its own serialization +
// latency.
func TestLinkConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := New("p", 3, 7*sim.Nanosecond)
		now := sim.Time(0)
		var lastDone sim.Time
		for i := 0; i < 100; i++ {
			now += sim.Time(rng.Int63n(30 * int64(sim.Nanosecond)))
			bytes := 8 + rng.Intn(120)
			done, q := l.Send(now, bytes)
			if q < 0 || done < now+7*sim.Nanosecond {
				return false
			}
			if done < lastDone { // FIFO: deliveries in order
				return false
			}
			lastDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: at saturation, throughput approaches the configured
// bandwidth: N back-to-back messages of size S finish no earlier than
// N*S/BW.
func TestLinkThroughputBound(t *testing.T) {
	l := New("sat", 3, 0) // 3 GB/s
	const n, size = 1000, 72
	var done sim.Time
	for i := 0; i < n; i++ {
		done, _ = l.Send(0, size)
	}
	// 3 GB/s = 3 bytes/ns -> 72000 bytes need >= 24000ns.
	min := sim.Time(n * size / 3 * int64(sim.Nanosecond))
	if done < min {
		t.Fatalf("finished in %v, faster than line rate %v", done, min)
	}
	if done > min+min/100 {
		t.Fatalf("finished in %v, want within 1%% of %v", done, min)
	}
}

func BenchmarkLinkSend(b *testing.B) {
	l := New("b", 3, 25*sim.Nanosecond)
	for i := 0; i < b.N; i++ {
		l.Send(sim.Time(i)*sim.Nanosecond, 72)
	}
}

// Queueing-theory validation: for Poisson arrivals and deterministic
// service (M/D/1), mean waiting time is ρ·S / (2(1-ρ)). The link model
// must reproduce this within sampling error — it is the foundation the
// "Contention Delay" AMAT component rests on.
func TestMD1QueueingDelay(t *testing.T) {
	const (
		serviceNS = 24.0 // 72B at 3 GB/s
		rho       = 0.6
	)
	l := New("md1", 3, 0)
	rng := rand.New(rand.NewSource(7))
	meanInterarrival := serviceNS / rho

	var now float64
	var totalQueue sim.Time
	const n = 200000
	for i := 0; i < n; i++ {
		now += rng.ExpFloat64() * meanInterarrival
		_, q := l.Send(sim.FromNanos(now), 72)
		totalQueue += q
	}
	measured := totalQueue.Nanos() / n
	expected := rho * serviceNS / (2 * (1 - rho)) // 18ns at ρ=0.6
	if measured < expected*0.9 || measured > expected*1.1 {
		t.Fatalf("M/D/1 wait = %.2fns, theory %.2fns", measured, expected)
	}
}

// At high utilisation the same law must hold (queuing grows nonlinearly).
func TestMD1HighUtilisation(t *testing.T) {
	const (
		serviceNS = 24.0
		rho       = 0.9
	)
	l := New("md1hi", 3, 0)
	rng := rand.New(rand.NewSource(11))
	var now float64
	var totalQueue sim.Time
	const n = 400000
	for i := 0; i < n; i++ {
		now += rng.ExpFloat64() * serviceNS / rho
		_, q := l.Send(sim.FromNanos(now), 72)
		totalQueue += q
	}
	measured := totalQueue.Nanos() / n
	expected := rho * serviceNS / (2 * (1 - rho)) // 108ns at ρ=0.9
	if measured < expected*0.8 || measured > expected*1.2 {
		t.Fatalf("M/D/1 wait at ρ=0.9 = %.2fns, theory %.2fns", measured, expected)
	}
}

func TestSendBatchMatchesSequentialSends(t *testing.T) {
	for _, tc := range []struct {
		name  string
		warm  bool // pre-load the wire so the batch queues
		bytes int
		count int
	}{
		{"cold", false, 64, 64},
		{"queued", true, 64, 64},
		{"single", false, 4096, 1},
		{"zero-bytes", false, 0, 16},
	} {
		seq := New("seq", 6, 50*sim.Nanosecond)
		bat := New("bat", 6, 50*sim.Nanosecond)
		now := sim.Time(1000)
		if tc.warm {
			seq.Send(0, 100000)
			bat.Send(0, 100000)
		}
		var want []sim.Time
		for i := 0; i < tc.count; i++ {
			d, _ := seq.Send(now, tc.bytes)
			want = append(want, d)
		}
		first, step, ok := bat.SendBatch(now, tc.bytes, tc.count)
		if !ok {
			t.Fatalf("%s: SendBatch refused without an injector", tc.name)
		}
		for i, w := range want {
			if got := first + sim.Time(i)*step; got != w {
				t.Fatalf("%s: message %d delivered at %v, sequential %v", tc.name, i, got, w)
			}
		}
		ss, bs := seq.Stats(), bat.Stats()
		ss.Name, bs.Name = "", ""
		if ss != bs {
			t.Fatalf("%s: batch stats %+v, sequential %+v", tc.name, bs, ss)
		}
	}
}

func TestSendBatchRefusesFaultedLink(t *testing.T) {
	l := New("faulted", 6, sim.Nanosecond)
	l.SetFault(&fault.Injector{})
	if _, _, ok := l.SendBatch(0, 64, 4); ok {
		t.Fatal("SendBatch accepted a link with a fault injector")
	}
	if l.Stats().Messages != 0 {
		t.Fatal("refused batch still charged the link")
	}
}
