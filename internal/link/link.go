// Package link models bandwidth-constrained, work-conserving links.
//
// Each Link represents one direction of a physical channel (UPI,
// NUMALink, or CXL in the StarNUMA system). Messages are serialized in
// FIFO order: a message arriving at time t begins transmission at
// max(t, link-free time), occupies the wire for size/bandwidth, and then
// experiences the channel's propagation latency. The difference between
// arrival and transmission start is the queuing delay that the paper's
// "Contention Delay" AMAT component measures (§V-A, Fig. 8b).
package link

import (
	"fmt"
	"strconv"

	"starnuma/internal/evtrace"
	"starnuma/internal/fault"
	"starnuma/internal/sim"
	"starnuma/internal/stats"
)

// faultTraceSample records every N-th fault-adjusted send; adjusted
// sends on a degraded link are the common case, not the exception, so
// tracing each would swamp the timeline.
const faultTraceSample = 64

// Link is a single-direction bandwidth server.
type Link struct {
	name       string
	latency    sim.Time // propagation/traversal latency after serialization
	psPerByte  float64  // inverse bandwidth; 0 means infinite bandwidth
	nextFree   sim.Time // when the wire becomes idle
	busy       sim.Time // cumulative transmission time (for utilisation)
	queued     sim.Time // cumulative queuing delay
	messages   uint64
	bytesMoved uint64
	inj        *fault.Injector // nil when no fault targets this link

	trc     *evtrace.Buffer // nil when event tracing is off
	trcLane string
	trcN    uint64 // adjusted-send counter for sampling

	lastRetry sim.Time // retry delay of the most recent Send
}

// GBps expresses a bandwidth in gigabytes (1e9 bytes) per second.
type GBps float64

// New creates a link. bandwidth <= 0 means the link never queues
// (infinite bandwidth); latency must be non-negative.
func New(name string, bandwidth GBps, latency sim.Time) *Link {
	if latency < 0 {
		panic(fmt.Sprintf("link %s: negative latency %v", name, latency))
	}
	l := &Link{name: name, latency: latency}
	if bandwidth > 0 {
		// bytes/ns = bandwidth (GB/s) / 1e9 * 1e9 ... 1 GB/s = 1 byte/ns
		// = 1e-3 bytes/ps, so ps/byte = 1000 / GBps.
		l.psPerByte = 1000 / float64(bandwidth)
	}
	return l
}

// Name returns the diagnostic name of the link.
func (l *Link) Name() string { return l.name }

// Latency returns the post-serialization propagation latency.
func (l *Link) Latency() sim.Time { return l.latency }

// SetFault installs a fault injector consulted on every Send (nil
// removes it). Flap retries delay the send before it touches the wire;
// degrade events scale the effective latency and inverse bandwidth.
// The retry delay is charged to the message, not counted as queuing —
// it is retrain/backoff cost, reported via the injector's stats.
func (l *Link) SetFault(inj *fault.Injector) { l.inj = inj }

// SetTrace attaches an event-trace buffer (internal/evtrace): sends
// whose timing the fault injector adjusted record sampled spans on the
// given lane, covering arrival to delivery. A nil buffer disables
// recording; recording never alters timing.
func (l *Link) SetTrace(buf *evtrace.Buffer, lane string) {
	l.trc, l.trcLane = buf, lane
}

// Send models transmitting a message of size bytes arriving at the link
// at time now. It returns the time the message is delivered at the far
// end and the queuing delay it suffered waiting for the wire.
//
//starnuma:hotpath one call per message on every traversed channel
func (l *Link) Send(now sim.Time, bytes int) (delivered, queuing sim.Time) {
	if bytes < 0 {
		l.sizePanic(bytes)
	}
	arrived := now
	latency, psPerByte := l.latency, l.psPerByte
	var retry sim.Time
	if l.inj != nil {
		latency, psPerByte, retry = l.inj.Adjust(now, latency, psPerByte)
		now += retry
	}
	l.lastRetry = retry
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	queuing = start - now
	serialize := sim.Time(float64(bytes)*psPerByte + 0.5)
	l.nextFree = start + serialize
	l.busy += serialize
	l.queued += queuing
	l.messages++
	l.bytesMoved += uint64(bytes)
	delivered = l.nextFree + latency
	if l.trc.Enabled() && (retry > 0 || latency != l.latency || !stats.SameFloat(psPerByte, l.psPerByte)) {
		l.trcN++
		if l.trcN%faultTraceSample == 1 {
			l.trc.SpanArgs("fault", "adjusted send", l.trcLane, arrived, delivered-arrived,
				evtrace.Arg{Key: "retry_ns", Val: strconv.FormatFloat(retry.Nanos(), 'f', -1, 64)},
				evtrace.Arg{Key: "bytes", Val: strconv.Itoa(bytes)})
		}
	}
	return delivered, queuing
}

// SendBatch models count equal-size messages all arriving at time now,
// charged in one shot. It is exactly equivalent to count sequential
// Send(now, bytes) calls on an un-faulted link: message i is delivered
// at first + i*step, and every counter advances by its closed-form sum.
// ok is false — and nothing is charged — when a fault injector is
// installed, because injector state evolves per message; callers fall
// back to the per-message path.
//
//starnuma:hotpath one call per page-sized transfer (64 packets each)
func (l *Link) SendBatch(now sim.Time, bytes, count int) (first, step sim.Time, ok bool) {
	if l.inj != nil || count <= 0 {
		return 0, 0, false
	}
	if bytes < 0 {
		l.sizePanic(bytes)
	}
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	queuing := start - now
	serialize := sim.Time(float64(bytes)*l.psPerByte + 0.5)
	l.nextFree = start + serialize.Scale(count)
	l.busy += serialize.Scale(count)
	// Message 0 queues `queuing`; each later message additionally waits
	// for its predecessors' serialization (the triangular sum).
	l.queued += queuing.Scale(count) + serialize.Scale(count*(count-1)/2)
	l.messages += uint64(count)
	l.bytesMoved += uint64(count) * uint64(bytes)
	return start + serialize + l.latency, serialize, true
}

// sizePanic reports a negative message size. Split out of Send so the
// hot path keeps no fmt reference.
//
//starnuma:coldpath
func (l *Link) sizePanic(bytes int) {
	panic(fmt.Sprintf("link %s: negative message size %d", l.name, bytes))
}

// Stats is a snapshot of a link's lifetime counters.
type Stats struct {
	Name       string
	Messages   uint64
	Bytes      uint64
	BusyTime   sim.Time // total wire-occupied time
	QueuedTime sim.Time // total queuing delay across messages
}

// Stats returns the link's counters.
func (l *Link) Stats() Stats {
	return Stats{Name: l.name, Messages: l.messages, Bytes: l.bytesMoved,
		BusyTime: l.busy, QueuedTime: l.queued}
}

// Utilization returns the fraction of the interval [0, horizon] the wire
// spent transmitting. Returns 0 for a non-positive horizon.
func (l *Link) Utilization(horizon sim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(l.busy) / float64(horizon)
}

// LastRetry returns the fault-injector retry delay of the most recent
// Send: the retrain/backoff time that preceded queuing, which Send's
// return values do not break out. The stall-attribution ledger
// (internal/attrib) reads it immediately after each charged Send to
// separate fault-retry time from link queuing and propagation.
func (l *Link) LastRetry() sim.Time { return l.lastRetry }

// Reset clears counters and the wire-busy horizon. Used between timing
// windows so warm-up traffic does not pollute measured statistics.
func (l *Link) Reset() {
	l.nextFree = 0
	l.busy = 0
	l.queued = 0
	l.messages = 0
	l.bytesMoved = 0
	l.lastRetry = 0
}
