package workload

import (
	"fmt"
	"math"
	"sort"

	"starnuma/internal/stats"
)

// Generator produces deterministic per-core LLC-miss streams for one
// workload on a given system shape.
//
// Determinism contract: page→class and page→sharer-set assignments are
// pure functions of (spec.Seed, page). Per-core streams are pure
// functions of (spec.Seed, core, phase), so step B (trace simulation)
// and step C (timing simulation) of the evaluation pipeline replay
// byte-identical streams, mirroring the paper's reuse of one trace for
// both steps (§IV-A).
type Generator struct {
	spec           Spec
	sockets        int
	coresPerSocket int

	classStart []uint32 // page range start per class; end = start of next
	classEnd   []uint32

	// pagesFor[class][socket] lists the class's pages whose sharer set
	// includes the socket.
	pagesFor [][][]uint32

	// chunkSharers caches the balanced per-chunk sharer assignment for
	// the current phase epoch (see assignSharers).
	chunkSharers map[uint32][]int

	// Per-socket class selection: cumulative access weights over the
	// classes with at least one page for that socket.
	classCum [][]float64
	classIdx [][]int

	rngs []splitmix64 // one stream per core, reseeded in place per phase

	// meanGap caches spec.MeanGap() off the draw path.
	meanGap float64

	// phase is the current phase; it participates in sharer-set hashing
	// for drifting chunks (Spec.DriftFrac).
	phase int

	// Stream replay state (see stream.go). With a non-zero budget,
	// ResetPhase binds stream to the recorded phase stream and Next
	// replays it via per-core cursors instead of drawing.
	budget uint64
	sig    string
	stream *phaseStream
	cursor []int32
}

// NewGenerator builds a generator for spec on a system of
// sockets × coresPerSocket cores. Sharer counts are clamped to the
// socket count, which is how single-socket (Table III) runs reuse the
// same specs. It returns an error if the spec is invalid.
func NewGenerator(spec Spec, sockets, coresPerSocket int) (*Generator, error) {
	if sockets <= 0 || coresPerSocket <= 0 {
		return nil, fmt.Errorf("workload: invalid system shape %dx%d", sockets, coresPerSocket)
	}
	valSockets := sockets
	if valSockets < 16 {
		valSockets = 16 // specs are authored for 16 sockets; smaller systems clamp
	}
	if err := spec.Validate(valSockets); err != nil {
		return nil, err
	}
	g := &Generator{
		spec:           spec,
		sockets:        sockets,
		coresPerSocket: coresPerSocket,
		rngs:           make([]splitmix64, sockets*coresPerSocket),
		meanGap:        spec.MeanGap(),
	}
	g.assignPages()
	g.buildClassWeights()
	g.ResetPhase(0)
	return g, nil
}

// Spec returns the workload specification.
func (g *Generator) Spec() Spec { return g.spec }

// NumPages returns the footprint size in pages.
func (g *Generator) NumPages() int { return g.spec.FootprintPages }

// NumCores returns the total core count.
func (g *Generator) NumCores() int { return len(g.rngs) }

// SocketOf maps a core index to its socket.
func (g *Generator) SocketOf(core int) int { return core / g.coresPerSocket }

// assignPages partitions the footprint into per-class contiguous ranges,
// assigns each chunk a balanced sharer set, and builds per-socket page
// lists.
func (g *Generator) assignPages() {
	n := g.spec.FootprintPages
	nc := len(g.spec.Classes)
	g.classStart = make([]uint32, nc)
	g.classEnd = make([]uint32, nc)
	g.pagesFor = make([][][]uint32, nc)
	g.chunkSharers = make(map[uint32][]int)

	next := uint32(0)
	for ci, c := range g.spec.Classes {
		count := uint32(math.Round(c.PageShare * float64(n)))
		if ci == nc-1 { // absorb rounding in the last class
			count = uint32(n) - next
		}
		if count == 0 && c.PageShare > 0 {
			count = 1
		}
		g.classStart[ci] = next
		g.classEnd[ci] = next + count
		next += count

		g.assignSharers(ci)
		g.pagesFor[ci] = make([][]uint32, g.sockets)
		for p := g.classStart[ci]; p < g.classEnd[ci]; p++ {
			for _, s := range g.sharersOf(ci, p) {
				g.pagesFor[ci][s] = append(g.pagesFor[ci][s], p)
			}
		}
	}
}

// assignSharers draws the sharer set of every chunk of class ci with
// balanced socket coverage: each chunk's k sockets are the least-covered
// sockets so far (ties broken by a per-chunk hash). Every socket
// therefore serves ≈ the same number of chunks per class, matching the
// paper's assumption of symmetric threads ("all threads of the same
// workload achieve, on average, similar IPC", §IV-B). Without balancing,
// a socket covering fewer chunks would concentrate its fixed access
// budget onto them, skewing per-page heat systematically.
func (g *Generator) assignSharers(ci int) {
	c := g.spec.Classes[ci]
	coverage := make([]int, g.sockets)
	firstChunk := g.classStart[ci] / SharerChunkPages
	lastChunk := (g.classEnd[ci] - 1) / SharerChunkPages
	for chunk := firstChunk; chunk <= lastChunk; chunk++ {
		if _, done := g.chunkSharers[chunk]; done {
			continue // chunk straddles a class boundary: first class wins
		}
		epoch := g.chunkEpoch(uint64(chunk))
		k := c.MinSharers
		if c.MaxSharers > c.MinSharers {
			k += int(mix(g.spec.Seed, uint64(chunk), 0xA) % uint64(c.MaxSharers-c.MinSharers+1))
		}
		if k == 1 {
			owner := int(chunk) % g.sockets
			if epoch != 0 {
				owner = int(mix(g.spec.Seed, uint64(chunk), 0xE0+epoch) % uint64(g.sockets))
			}
			g.chunkSharers[chunk] = []int{owner}
			coverage[owner]++
			continue
		}
		// Specs are authored for 16 sockets; larger systems (§III-B's
		// scaling study) scale sharer counts proportionally.
		if g.sockets > 16 {
			k = k * g.sockets / 16
		}
		if k > g.sockets {
			k = g.sockets
		}
		// Order sockets by (coverage, per-chunk hash) and take the k
		// least covered.
		order := make([]int, g.sockets)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			sa, sb := order[a], order[b]
			if coverage[sa] != coverage[sb] {
				return coverage[sa] < coverage[sb]
			}
			return mix(g.spec.Seed, uint64(chunk), 0xB+epoch, uint64(sa)) <
				mix(g.spec.Seed, uint64(chunk), 0xB+epoch, uint64(sb))
		})
		set := append([]int(nil), order[:k]...)
		sort.Ints(set)
		for _, sck := range set {
			coverage[sck]++
		}
		g.chunkSharers[chunk] = set
	}
}

// chunkEpoch returns the drift epoch for a chunk (0 when stationary).
func (g *Generator) chunkEpoch(chunk uint64) uint64 {
	if g.spec.DriftFrac <= 0 {
		return 0
	}
	if float64(mix(g.spec.Seed, chunk, 0xD)%1000)/1000 >= g.spec.DriftFrac {
		return 0
	}
	period := g.spec.DriftPeriod
	if period < 1 {
		period = 1
	}
	return uint64(g.phase / period)
}

// SharerChunkPages is the spatial-correlation granularity of sharer
// sets: consecutive pages in one chunk are accessed by the same set of
// sockets. Real workloads exhibit exactly this locality (a thread's
// partition, a shard, a sub-graph is contiguous), and it is what makes
// region-granularity tracking (§III-D4) meaningful — the paper's
// regions are physically contiguous and therefore socket-coherent.
const SharerChunkPages = 32

// sharersOf returns the sharer sockets of page p in class ci, from the
// balanced per-chunk assignment (see assignSharers).
func (g *Generator) sharersOf(ci int, p uint32) []int {
	_ = ci
	return g.chunkSharers[p/SharerChunkPages]
}

// Sharers returns the sharer sockets of page p (for tests and analysis).
func (g *Generator) Sharers(p uint32) []int {
	ci := g.classOf(p)
	return g.sharersOf(ci, p)
}

// ClassOf returns the index of the class containing page p.
func (g *Generator) classOf(p uint32) int {
	for ci := range g.classStart {
		if p >= g.classStart[ci] && p < g.classEnd[ci] {
			return ci
		}
	}
	panic(fmt.Sprintf("workload %s: page %d outside footprint", g.spec.Name, p))
}

func (g *Generator) buildClassWeights() {
	// A socket's weight for a class is the class's access share scaled
	// by the fraction of the class's per-page traffic this socket is
	// responsible for: each page receives 1/k of its accesses from each
	// of its k sharers. Without this scaling, a socket appearing in few
	// chunks of a class would hammer each of them k× harder than the
	// other sharers — a systematic asymmetry that (among other things)
	// lets argmax-based migration policies concentrate whole chunks onto
	// a handful of sockets.
	classPages := make([]float64, len(g.spec.Classes))
	for ci := range g.spec.Classes {
		classPages[ci] = float64(g.classEnd[ci] - g.classStart[ci])
	}
	shareOf := func(ci, s int) float64 {
		if stats.IsZero(classPages[ci]) {
			return 0
		}
		var sum float64
		for _, p := range g.pagesFor[ci][s] {
			sum += 1 / float64(len(g.sharersOf(ci, p)))
		}
		return sum / classPages[ci]
	}

	g.classCum = make([][]float64, g.sockets)
	g.classIdx = make([][]int, g.sockets)
	for s := 0; s < g.sockets; s++ {
		var cum float64
		for ci, c := range g.spec.Classes {
			if len(g.pagesFor[ci][s]) == 0 {
				continue
			}
			w := c.AccessShare * float64(g.sockets) * shareOf(ci, s)
			if w <= 0 {
				continue
			}
			cum += w
			g.classCum[s] = append(g.classCum[s], cum)
			g.classIdx[s] = append(g.classIdx[s], ci)
		}
		if len(g.classCum[s]) == 0 {
			if g.spec.DriftFrac > 0 {
				// Drift can transiently strand a socket at tiny
				// footprints; fall back to the largest class so its
				// cores still generate work.
				big, bigLen := 0, 0
				for ci := range g.pagesFor {
					for _, lst := range g.pagesFor[ci] {
						if len(lst) > bigLen {
							big, bigLen = ci, len(lst)
						}
					}
				}
				for _, lst := range g.pagesFor[big] {
					if len(lst) > 0 {
						g.pagesFor[big][s] = lst
						break
					}
				}
				g.classCum[s] = []float64{1}
				g.classIdx[s] = []int{big}
				continue
			}
			panic(fmt.Sprintf("workload %s: socket %d has no accessible pages", g.spec.Name, s))
		}
		// Normalize.
		for i := range g.classCum[s] {
			g.classCum[s][i] /= cum
		}
	}
}

// ResetPhase re-seeds every core's stream for the given phase. Streams
// are stationary across phases (the paper observes sharing patterns are
// stable over time, §V-B); distinct phases still get decorrelated
// streams. With a non-zero DriftFrac, drifting chunks re-draw their
// sharer sets, so the per-socket page lists are rebuilt.
func (g *Generator) ResetPhase(phase int) {
	if g.spec.DriftFrac > 0 && phase != g.phase {
		g.phase = phase
		g.assignPages()
		g.buildClassWeights()
	}
	for core := range g.rngs {
		g.rngs[core] = splitmix64{state: mix(g.spec.Seed, uint64(core)+1, uint64(phase)+1)}
	}
	if g.budget > 0 {
		g.loadStream(phase)
	} else {
		g.stream = nil
	}
}

// maxGap bounds the exponential gap draw so a single pathological sample
// cannot stall a phase.
const maxGap = 1 << 16

// Next returns core's next LLC miss: a pure array read when a recorded
// phase stream is bound (see SetPhaseBudget), a fresh draw otherwise.
// Both paths yield bit-identical streams — replay is a recording of the
// very draws generate would make.
//
//starnuma:hotpath one call per simulated LLC miss, in both step B and step C
func (g *Generator) Next(core int) Access {
	if s := g.stream; s != nil {
		i := g.cursor[core]
		if i >= s.off[core+1] {
			streamOverrun(core)
		}
		g.cursor[core] = i + 1
		return Access{Gap: s.gaps[i], Page: s.pages[i], Block: s.blocks[i], Write: s.writes[i]}
	}
	return g.generate(core)
}

// generate draws core's next LLC miss from its RNG stream.
//
//starnuma:hotpath draw path when no stream is bound, and stream recording
func (g *Generator) generate(core int) Access {
	rng := &g.rngs[core]
	socket := g.SocketOf(core)

	// Exponential inter-miss gap with the spec's mean, at least one
	// instruction.
	u := rng.float64v()
	gap := uint32(-g.meanGap*math.Log(1-u)) + 1
	if gap > maxGap {
		gap = maxGap
	}

	// Class choice by per-socket cumulative access weight: the first
	// class whose cumulative weight reaches x (clamped to the last class
	// for x beyond the normalized sum, as rounding allows). Class lists
	// are short (≤ ~6), so a linear scan beats binary search.
	cum := g.classCum[socket]
	x := rng.float64v()
	lo := 0
	for lo < len(cum)-1 && cum[lo] < x {
		lo++
	}
	ci := g.classIdx[socket][lo]

	pages := g.pagesFor[ci][socket]
	page := pages[rng.intn(len(pages))]
	block := uint16(rng.intn(BlocksPerPage))
	write := rng.float64v() < g.spec.Classes[ci].WriteFrac
	return Access{Gap: gap, Page: page, Block: block, Write: write}
}
