package workload

import (
	"fmt"
	"sync"
)

// This file implements the phase-stream cache and the generator pool —
// the two allocation-side levers behind fast step-C windows.
//
// Stream cache: a core's miss stream for one phase is a pure function
// of (spec, system shape, phase) — see the determinism contract on
// Generator. Step B replays every phase once and step C replays each
// phase once per timing window, so without caching the same exponential
// draws, class searches and page picks are recomputed dozens of times.
// When a consumer declares its per-core instruction budget
// (SetPhaseBudget), ResetPhase records the stream once into a compact
// struct-of-arrays buffer and every later replay is pure array reads.
//
// Generator pool: runner workers previously built a fresh Generator per
// window, re-deriving page→class and page→sharer assignments each time.
// AcquireGenerator/ReleaseGenerator recycle generators per (spec,
// shape), and ResetPhase already rebuilds any phase-dependent drift
// state, so a pooled generator is indistinguishable from a fresh one.

// phaseStream is one phase's recorded miss stream for every core, in
// struct-of-arrays layout: core c's accesses live at indices
// [off[c], off[c+1]) of the four parallel arrays.
type phaseStream struct {
	off    []int32
	gaps   []uint32
	pages  []uint32
	blocks []uint16
	writes []bool
}

func (s *phaseStream) bytes() int64 {
	return int64(len(s.off))*4 + int64(len(s.gaps))*4 +
		int64(len(s.pages))*4 + int64(len(s.blocks))*2 + int64(len(s.writes))
}

// streamKey identifies one cached stream. The sig string folds in the
// full Spec (seed, classes, drift), the system shape, and the recording
// budget; phase is kept separate because every phase of one workload
// shares the sig.
type streamKey struct {
	sig   string
	phase int
}

// streamCacheCap bounds cached stream bytes. It must hold the whole
// suite's working set — every (workload, shape, phase) the process
// touches, tens of MB each — because an evicted stream is re-recorded
// from the RNGs at full generation cost: an undersized cap turns the
// cache into a treadmill where each experiment evicts the streams the
// next one needs. Least-recently-used entries are dropped only past
// this cap, which is sized for full-scale sweeps, not just the quick
// suite.
const streamCacheCap = 6 << 30

var streamCache struct {
	sync.Mutex
	entries map[streamKey]*streamEntry
	total   int64
	tick    int64
}

type streamEntry struct {
	s       *phaseStream
	lastUse int64
}

// lookupStream returns the cached stream for key, or nil.
func lookupStream(key streamKey) *phaseStream {
	c := &streamCache
	c.Lock()
	defer c.Unlock()
	e := c.entries[key]
	if e == nil {
		return nil
	}
	c.tick++
	e.lastUse = c.tick
	return e.s
}

// storeStream inserts s, evicting least-recently-used entries to stay
// under the byte cap. Streams larger than the cap are simply not cached
// (the caller keeps its reference either way).
func storeStream(key streamKey, s *phaseStream) {
	sz := s.bytes()
	if sz > streamCacheCap {
		return
	}
	c := &streamCache
	c.Lock()
	defer c.Unlock()
	if c.entries == nil {
		c.entries = make(map[streamKey]*streamEntry)
	}
	if _, dup := c.entries[key]; dup {
		return // lost a race; keep the resident copy
	}
	for c.total+sz > streamCacheCap && len(c.entries) > 0 {
		var victim streamKey
		oldest := int64(1<<63 - 1)
		for k, e := range c.entries {
			if e.lastUse < oldest {
				oldest, victim = e.lastUse, k
			}
		}
		c.total -= c.entries[victim].s.bytes()
		delete(c.entries, victim)
	}
	c.tick++
	c.entries[key] = &streamEntry{s: s, lastUse: c.tick}
	c.total += sz
}

// streamSig derives the cache signature for a generator+budget. Spec is
// a plain value type (its only reference field is the Classes slice of
// scalar structs), so the %+v rendering is a faithful identity.
func streamSig(spec Spec, sockets, coresPerSocket int, budget uint64) string {
	return fmt.Sprintf("%+v|%d|%d|%d", spec, sockets, coresPerSocket, budget)
}

// SetPhaseBudget declares that every core will draw at most `budget`
// instructions worth of accesses per phase (each Access consumes Gap
// instructions; consumers stop at or before the first access that
// reaches the budget). A non-zero budget makes the next ResetPhase
// record or reuse a cached stream and switches Next to pure replay.
// Zero disables recording (the default, and the step-A analysis mode).
//
// The budget must cover the consumer's real consumption: replaying past
// the recorded stream panics rather than silently decorrelating.
func (g *Generator) SetPhaseBudget(budget uint64) {
	if budget == g.budget {
		return
	}
	g.budget = budget
	g.sig = ""
	if budget > 0 {
		g.sig = streamSig(g.spec, g.sockets, g.coresPerSocket, budget)
	}
	g.stream = nil
}

// loadStream points the generator at the cached stream for phase,
// recording it on a cache miss, and rewinds every core's cursor.
func (g *Generator) loadStream(phase int) {
	key := streamKey{sig: g.sig, phase: phase}
	s := lookupStream(key)
	if s == nil {
		s = g.recordStream()
		storeStream(key, s)
	}
	g.stream = s
	if g.cursor == nil {
		g.cursor = make([]int32, len(g.rngs))
	}
	copy(g.cursor, s.off[:len(g.rngs)])
}

// recordStream generates every core's stream for the current phase
// until the per-core cumulative gap reaches the budget, capturing it in
// struct-of-arrays form. It consumes the per-core RNG streams, which is
// safe because replay mode never touches them again this phase.
func (g *Generator) recordStream() *phaseStream {
	cores := len(g.rngs)
	s := &phaseStream{off: make([]int32, cores+1)}
	for core := 0; core < cores; core++ {
		s.off[core] = int32(len(s.gaps))
		var cum uint64
		for cum < g.budget {
			a := g.generate(core)
			cum += uint64(a.Gap)
			s.gaps = append(s.gaps, a.Gap)
			s.pages = append(s.pages, a.Page)
			s.blocks = append(s.blocks, a.Block)
			s.writes = append(s.writes, a.Write)
		}
		if core == 0 && cores > 1 {
			// Cores draw from the same mixture, so core 0's access count
			// predicts the total well; pre-growing here avoids repeated
			// multi-MB reallocation copies as the remaining cores append.
			want := len(s.gaps) * cores * 9 / 8
			s.gaps = append(make([]uint32, 0, want), s.gaps...)
			s.pages = append(make([]uint32, 0, want), s.pages...)
			s.blocks = append(make([]uint16, 0, want), s.blocks...)
			s.writes = append(make([]bool, 0, want), s.writes...)
		}
	}
	s.off[cores] = int32(len(s.gaps))
	return s
}

// ReplayArrays exposes the recorded stream bound by the last ResetPhase
// for bulk replay: core c's accesses are pages[off[c]:off[c+1]] with
// parallel writes flags. It returns ok=false unless a stream is bound
// and was recorded at exactly the requested budget — the caller's
// consumption contract (one access per round until the per-core budget
// is crossed) only matches the recorded lengths at equal budgets.
// Callers must treat the arrays as read-only.
func (g *Generator) ReplayArrays(budget uint64) (off []int32, pages []uint32, writes []bool, ok bool) {
	s := g.stream
	if s == nil || g.budget != budget {
		return nil, nil, nil, false
	}
	return s.off, s.pages, s.writes, true
}

// StreamSig returns the identity of the recorded phase streams — the
// stream-cache signature folding in the Spec, the system shape and the
// recording budget — with ok=false when no phase budget is declared.
// Two generators with equal signatures replay byte-identical streams
// for every phase, which is what step B's ingest memo keys on.
func (g *Generator) StreamSig() (sig string, ok bool) {
	return g.sig, g.sig != ""
}

//starnuma:coldpath only on replay overrun, which is a consumer bug
func streamOverrun(core int) {
	panic(fmt.Sprintf("workload: core %d replayed past its recorded phase stream (budget too small)", core))
}

// generatorPools recycles Generators per (spec, shape) signature so
// runner workers stop rebuilding page/sharer assignments every window.
var generatorPools sync.Map // string -> *sync.Pool

// AcquireGenerator returns a pooled Generator for spec on the given
// shape, building one only when the pool is empty. Callers must
// ResetPhase before drawing (all consumers already do) and should hand
// the generator back with ReleaseGenerator when the window completes.
func AcquireGenerator(spec Spec, sockets, coresPerSocket int) (*Generator, error) {
	sig := streamSig(spec, sockets, coresPerSocket, 0)
	if p, ok := generatorPools.Load(sig); ok {
		if g, _ := p.(*sync.Pool).Get().(*Generator); g != nil {
			return g, nil
		}
	}
	return NewGenerator(spec, sockets, coresPerSocket)
}

// ReleaseGenerator returns g to its shape pool for reuse. The generator
// must not be used after release.
func ReleaseGenerator(g *Generator) {
	if g == nil {
		return
	}
	sig := streamSig(g.spec, g.sockets, g.coresPerSocket, 0)
	p, _ := generatorPools.LoadOrStore(sig, &sync.Pool{})
	p.(*sync.Pool).Put(g)
}
