package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func mustGen(t *testing.T, name string, sockets, cps int) *Generator {
	t.Helper()
	spec, err := ByName(name, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(spec, sockets, cps)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratorShape(t *testing.T) {
	g := mustGen(t, "BFS", 16, 4)
	if g.NumCores() != 64 {
		t.Fatalf("cores = %d", g.NumCores())
	}
	if g.SocketOf(0) != 0 || g.SocketOf(5) != 1 || g.SocketOf(63) != 15 {
		t.Fatal("SocketOf mapping wrong")
	}
	if g.NumPages() != g.Spec().FootprintPages {
		t.Fatal("NumPages mismatch")
	}
}

func TestGeneratorBadShape(t *testing.T) {
	spec, _ := ByName("BFS", 1)
	if _, err := NewGenerator(spec, 0, 4); err == nil {
		t.Fatal("accepted 0 sockets")
	}
	if _, err := NewGenerator(spec, 16, 0); err == nil {
		t.Fatal("accepted 0 cores/socket")
	}
	if _, err := NewGenerator(Spec{}, 16, 4); err == nil {
		t.Fatal("accepted invalid spec")
	}
}

func TestDeterministicReplay(t *testing.T) {
	g1 := mustGen(t, "BFS", 16, 4)
	g2 := mustGen(t, "BFS", 16, 4)
	g1.ResetPhase(3)
	g2.ResetPhase(3)
	for i := 0; i < 1000; i++ {
		core := i % 64
		a, b := g1.Next(core), g2.Next(core)
		if a != b {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestPhasesDiffer(t *testing.T) {
	g := mustGen(t, "BFS", 16, 4)
	g.ResetPhase(0)
	var p0 []Access
	for i := 0; i < 50; i++ {
		p0 = append(p0, g.Next(7))
	}
	g.ResetPhase(1)
	same := 0
	for i := 0; i < 50; i++ {
		if g.Next(7) == p0[i] {
			same++
		}
	}
	if same == 50 {
		t.Fatal("phase 1 stream identical to phase 0")
	}
}

func TestResetPhaseRestartsStream(t *testing.T) {
	g := mustGen(t, "CC", 16, 4)
	g.ResetPhase(2)
	first := g.Next(0)
	g.ResetPhase(2)
	if got := g.Next(0); got != first {
		t.Fatalf("ResetPhase not idempotent: %+v vs %+v", got, first)
	}
}

func TestAccessFieldsInRange(t *testing.T) {
	g := mustGen(t, "SSSP", 16, 4)
	for i := 0; i < 20000; i++ {
		a := g.Next(i % 64)
		if a.Page >= uint32(g.NumPages()) {
			t.Fatalf("page %d out of range", a.Page)
		}
		if a.Block >= BlocksPerPage {
			t.Fatalf("block %d out of range", a.Block)
		}
		if a.Gap < 1 || a.Gap > maxGap {
			t.Fatalf("gap %d out of range", a.Gap)
		}
	}
}

func TestSocketOnlyAccessesItsPages(t *testing.T) {
	g := mustGen(t, "BFS", 16, 4)
	for i := 0; i < 20000; i++ {
		core := i % 64
		a := g.Next(core)
		socket := g.SocketOf(core)
		found := false
		for _, s := range g.Sharers(a.Page) {
			if s == socket {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("core %d (socket %d) accessed page %d with sharers %v",
				core, socket, a.Page, g.Sharers(a.Page))
		}
	}
}

func TestMeanGapApproximatesMPKI(t *testing.T) {
	g := mustGen(t, "BFS", 16, 4) // MPKI 32 -> mean gap 31.25+1
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(g.Next(i % 64).Gap)
	}
	mean := sum / n
	want := g.Spec().MeanGap() + 1 // +1 from the minimum-gap offset
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("mean gap = %v, want ~%v", mean, want)
	}
}

func TestWriteFractionApproximatesSpec(t *testing.T) {
	g := mustGen(t, "Masstree", 16, 4)
	// Expected mix: Σ AccessShare × WriteFrac over the classes.
	var want float64
	for _, c := range g.Spec().Classes {
		want += c.AccessShare * c.WriteFrac
	}
	writes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next(i % 64).Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < want-0.05 || frac > want+0.05 {
		t.Fatalf("write fraction = %v, want ~%v", frac, want)
	}
}

// The empirical access distribution by sharing degree must track the
// analytic histogram (which itself is validated against Fig. 2). Sharer
// sets are chunk-correlated, which makes individual degrees lumpy at
// small footprints, so compare Fig. 2's buckets rather than single
// degrees.
func TestEmpiricalSharingMatchesAnalytic(t *testing.T) {
	spec, err := ByName("BFS", 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(spec, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, wantAcc := g.Spec().SharingHistogram(16)
	got := make([]float64, 17)
	const n = 100000
	for i := 0; i < n; i++ {
		a := g.Next(i % 64)
		got[len(g.Sharers(a.Page))] += 1.0 / n
	}
	buckets := [][2]int{{1, 1}, {2, 4}, {5, 8}, {9, 15}, {16, 16}}
	for _, b := range buckets {
		var w, e float64
		for k := b[0]; k <= b[1]; k++ {
			w += wantAcc[k]
			e += got[k]
		}
		if math.Abs(e-w) > 0.05 {
			t.Errorf("sharing bucket %d-%d: empirical %.3f vs analytic %.3f", b[0], b[1], e, w)
		}
	}
}

func TestSharersProperties(t *testing.T) {
	g := mustGen(t, "BFS", 16, 4)
	f := func(p uint32) bool {
		page := p % uint32(g.NumPages())
		sh := g.Sharers(page)
		if len(sh) < 1 || len(sh) > 16 {
			return false
		}
		seen := map[int]bool{}
		for _, s := range sh {
			if s < 0 || s > 15 || seen[s] {
				return false
			}
			seen[s] = true
		}
		// Deterministic.
		sh2 := g.Sharers(page)
		if len(sh2) != len(sh) {
			return false
		}
		for i := range sh {
			if sh[i] != sh2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSocketClampsSharers(t *testing.T) {
	spec, _ := ByName("BFS", 0.25)
	g, err := NewGenerator(spec, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a := g.Next(i % 4)
		sh := g.Sharers(a.Page)
		if len(sh) != 1 || sh[0] != 0 {
			t.Fatalf("single-socket sharers = %v", sh)
		}
	}
}

func TestPrivatePagesStripedEvenly(t *testing.T) {
	g := mustGen(t, "POA", 16, 4)
	counts := make([]int, 16)
	for p := uint32(0); p < uint32(g.NumPages()); p++ {
		sh := g.Sharers(p)
		counts[sh[0]]++
	}
	want := g.NumPages() / 16
	for s, c := range counts {
		if c < want-1 || c > want+1 {
			t.Fatalf("socket %d owns %d private pages, want ~%d", s, c, want)
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	spec, _ := ByName("BFS", 0.25)
	g, err := NewGenerator(spec, 16, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(i % 64)
	}
}

// §III-B's 32-socket scaling: sharer counts authored for 16 sockets
// scale proportionally, so "shared by all" stays "shared by all".
func TestThirtyTwoSocketSharerScaling(t *testing.T) {
	spec, err := ByName("BFS", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(spec, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCores() != 128 {
		t.Fatalf("cores = %d", g.NumCores())
	}
	// The last class (global, authored 16/16) must span all 32 sockets.
	maxSharers := 0
	for p := uint32(0); p < uint32(g.NumPages()); p++ {
		if n := len(g.Sharers(p)); n > maxSharers {
			maxSharers = n
		}
	}
	if maxSharers != 32 {
		t.Fatalf("max sharers = %d, want 32", maxSharers)
	}
	// Private pages stay private.
	poa, _ := ByName("POA", 0.25)
	gp, err := NewGenerator(poa, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint32(0); p < 1000; p++ {
		if len(gp.Sharers(p)) != 1 {
			t.Fatalf("private page %d has %d sharers", p, len(gp.Sharers(p)))
		}
	}
}

// Drift: a non-zero DriftFrac re-draws sharer sets between phases while
// keeping everything deterministic and replayable.
func TestDriftRedrawsSharerSets(t *testing.T) {
	spec, _ := ByName("BFS", 0.05)
	spec.DriftFrac = 0.5
	g, err := NewGenerator(spec, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	g.ResetPhase(0)
	before := make(map[uint32][]int)
	for p := uint32(0); p < uint32(g.NumPages()); p += SharerChunkPages {
		before[p] = g.Sharers(p)
	}
	g.ResetPhase(3)
	changed := 0
	for p, sh := range before {
		now := g.Sharers(p)
		if len(now) != len(sh) {
			changed++
			continue
		}
		for i := range sh {
			if now[i] != sh[i] {
				changed++
				break
			}
		}
	}
	if changed == 0 {
		t.Fatal("no sharer sets drifted")
	}
	if changed == len(before) {
		t.Fatal("all chunks drifted despite DriftFrac 0.5")
	}
	// Replay determinism: same phase, same sets.
	g.ResetPhase(0)
	for p, sh := range before {
		now := g.Sharers(p)
		if len(now) != len(sh) {
			t.Fatalf("phase 0 not reproducible for page %d", p)
		}
	}
}

func TestZeroDriftIsStationary(t *testing.T) {
	g := mustGen(t, "BFS", 16, 4)
	sh0 := g.Sharers(100)
	g.ResetPhase(5)
	sh5 := g.Sharers(100)
	if len(sh0) != len(sh5) {
		t.Fatal("stationary workload drifted")
	}
	for i := range sh0 {
		if sh0[i] != sh5[i] {
			t.Fatal("stationary workload drifted")
		}
	}
}

func TestDriftFracValidation(t *testing.T) {
	spec, _ := ByName("BFS", 0.25)
	spec.DriftFrac = 1.5
	if err := spec.Validate(16); err == nil {
		t.Fatal("DriftFrac > 1 accepted")
	}
}
