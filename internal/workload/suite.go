package workload

import "fmt"

// The suite below encodes the eight workloads of Table III. Sharing
// distributions follow the paper's published characterisations:
//
//   - BFS (Fig. 2): 17% of pages private, 78% with ≤4 sharers, 7% with
//     >8 sharers — but those widely-shared pages absorb 68% of accesses
//     and the 2% shared by all 16 sockets absorb 36%. Mostly read-write.
//   - TC (Fig. 13): read-only sharing; 60% of the dataset touched by all
//     16 sockets, 80% by 8+, accesses spread more evenly than BFS.
//   - SSSP/CC: graph kernels qualitatively like BFS (§II-B: "other
//     workloads exhibit similar behavior"); SSSP is the most
//     bandwidth-bound of the suite (MPKI 73), CC milder.
//   - Masstree: uniform key popularity and 50/50 read/write (§IV-E), so
//     nearly the whole keyspace is touched by every socket; accesses
//     still concentrate on the shared trie index (every lookup walks
//     it). The paper measures 100% of its migrations going to the pool
//     (Table IV).
//   - TPCC: warehouse-partitioned locality plus globally shared
//     stock/item/order tables; 93% of migrations to the pool.
//   - FMI: a shared read-mostly FM-index plus private query state; only
//     47% of migrations target the pool.
//   - POA: completely NUMA-insensitive — all accesses local after
//     first-touch (§V-A), zero migrations.
//
// MLP values are the calibration knob reconciling Table III's
// single-socket IPC with its MPKI under the MLP-limited core model (see
// Spec.ZeroLoadIPC); graph/pointer-chasing codes overlap few misses,
// streaming and bandwidth-bound codes many.

// DefaultFootprintPages returns the scaled default footprint of each
// workload, ordered as in suiteSpecs.
const (
	graphPages    = 32768 // 128 MB: GAP Kronecker graph, scaled from ~50 GB
	masstreePages = 49152 // 192 MB: 100 GB KV dataset, scaled
	tpccPages     = 12288 // 48 MB: 12 GB TPCC footprint, scaled
	genomicsPages = 8192  // 32 MB: ~10 GB GenomicsBench footprints, scaled
)

func suiteSpecs() []Spec {
	return []Spec{
		{
			Name: "SSSP", SingleSocketIPC: 0.56, MPKI: 73, MLP: 6,
			FootprintPages: graphPages, Seed: 0x55501,
			Classes: []PageClass{
				{Name: "private", PageShare: 0.20, AccessShare: 0.16, MinSharers: 1, MaxSharers: 1, WriteFrac: 0.18},
				{Name: "low", PageShare: 0.55, AccessShare: 0.20, MinSharers: 2, MaxSharers: 4, WriteFrac: 0.15},
				{Name: "mid", PageShare: 0.15, AccessShare: 0.08, MinSharers: 5, MaxSharers: 8, WriteFrac: 0.15},
				{Name: "high", PageShare: 0.07, AccessShare: 0.26, MinSharers: 9, MaxSharers: 15, WriteFrac: 0.18},
				{Name: "global", PageShare: 0.03, AccessShare: 0.30, MinSharers: 16, MaxSharers: 16, WriteFrac: 0.20},
			},
		},
		{
			Name: "BFS", SingleSocketIPC: 0.69, MPKI: 32, MLP: 4,
			FootprintPages: graphPages, Seed: 0xBF501,
			Classes: []PageClass{
				{Name: "private", PageShare: 0.17, AccessShare: 0.10, MinSharers: 1, MaxSharers: 1, WriteFrac: 0.15},
				{Name: "low", PageShare: 0.61, AccessShare: 0.15, MinSharers: 2, MaxSharers: 4, WriteFrac: 0.12},
				{Name: "mid", PageShare: 0.15, AccessShare: 0.07, MinSharers: 5, MaxSharers: 8, WriteFrac: 0.12},
				{Name: "high", PageShare: 0.05, AccessShare: 0.32, MinSharers: 9, MaxSharers: 15, WriteFrac: 0.15},
				{Name: "global", PageShare: 0.02, AccessShare: 0.36, MinSharers: 16, MaxSharers: 16, WriteFrac: 0.18},
			},
		},
		{
			Name: "CC", SingleSocketIPC: 0.78, MPKI: 17, MLP: 4,
			FootprintPages: graphPages, Seed: 0xCC001,
			Classes: []PageClass{
				{Name: "private", PageShare: 0.25, AccessShare: 0.15, MinSharers: 1, MaxSharers: 1, WriteFrac: 0.12},
				{Name: "low", PageShare: 0.55, AccessShare: 0.20, MinSharers: 2, MaxSharers: 4, WriteFrac: 0.10},
				{Name: "mid", PageShare: 0.12, AccessShare: 0.10, MinSharers: 5, MaxSharers: 8, WriteFrac: 0.12},
				{Name: "high", PageShare: 0.06, AccessShare: 0.25, MinSharers: 9, MaxSharers: 15, WriteFrac: 0.15},
				{Name: "global", PageShare: 0.02, AccessShare: 0.30, MinSharers: 16, MaxSharers: 16, WriteFrac: 0.15},
			},
		},
		{
			Name: "TC", SingleSocketIPC: 1.7, MPKI: 3.2, MLP: 2,
			FootprintPages: graphPages, Seed: 0x7C001,
			Classes: []PageClass{
				{Name: "private", PageShare: 0.07, AccessShare: 0.05, MinSharers: 1, MaxSharers: 1, WriteFrac: 0.05},
				{Name: "low", PageShare: 0.08, AccessShare: 0.05, MinSharers: 2, MaxSharers: 4, WriteFrac: 0.02},
				{Name: "mid", PageShare: 0.05, AccessShare: 0.04, MinSharers: 5, MaxSharers: 7, WriteFrac: 0.02},
				{Name: "high", PageShare: 0.20, AccessShare: 0.18, MinSharers: 8, MaxSharers: 15, WriteFrac: 0.02},
				{Name: "globalHot", PageShare: 0.06, AccessShare: 0.55, MinSharers: 16, MaxSharers: 16, WriteFrac: 0.02},
				{Name: "globalCold", PageShare: 0.54, AccessShare: 0.13, MinSharers: 16, MaxSharers: 16, WriteFrac: 0.02},
			},
		},
		{
			Name: "Masstree", SingleSocketIPC: 0.89, MPKI: 15, MLP: 4,
			FootprintPages: masstreePages, Seed: 0x3A501,
			Classes: []PageClass{
				{Name: "private", PageShare: 0.15, AccessShare: 0.20, MinSharers: 1, MaxSharers: 1, WriteFrac: 0.50},
				{Name: "index", PageShare: 0.04, AccessShare: 0.42, MinSharers: 16, MaxSharers: 16, WriteFrac: 0.30},
				{Name: "data", PageShare: 0.81, AccessShare: 0.38, MinSharers: 16, MaxSharers: 16, WriteFrac: 0.50},
			},
		},
		{
			Name: "TPCC", SingleSocketIPC: 1.12, MPKI: 4.8, MLP: 3,
			FootprintPages: tpccPages, Seed: 0x79CC1,
			Classes: []PageClass{
				{Name: "private", PageShare: 0.55, AccessShare: 0.45, MinSharers: 1, MaxSharers: 1, WriteFrac: 0.45},
				{Name: "low", PageShare: 0.15, AccessShare: 0.10, MinSharers: 2, MaxSharers: 4, WriteFrac: 0.30},
				{Name: "high", PageShare: 0.10, AccessShare: 0.15, MinSharers: 9, MaxSharers: 15, WriteFrac: 0.40},
				{Name: "global", PageShare: 0.20, AccessShare: 0.30, MinSharers: 16, MaxSharers: 16, WriteFrac: 0.50},
			},
		},
		{
			Name: "FMI", SingleSocketIPC: 1.45, MPKI: 2.6, MLP: 2,
			FootprintPages: genomicsPages, Seed: 0xF3101,
			Classes: []PageClass{
				{Name: "private", PageShare: 0.40, AccessShare: 0.25, MinSharers: 1, MaxSharers: 1, WriteFrac: 0.10},
				{Name: "mid", PageShare: 0.30, AccessShare: 0.25, MinSharers: 4, MaxSharers: 8, WriteFrac: 0.02},
				{Name: "index", PageShare: 0.08, AccessShare: 0.35, MinSharers: 12, MaxSharers: 16, WriteFrac: 0.02},
				{Name: "global", PageShare: 0.22, AccessShare: 0.15, MinSharers: 12, MaxSharers: 16, WriteFrac: 0.02},
			},
		},
		{
			Name: "POA", SingleSocketIPC: 0.68, MPKI: 33, MLP: 6,
			FootprintPages: genomicsPages, Seed: 0x90A01,
			Classes: []PageClass{
				{Name: "private", PageShare: 1.00, AccessShare: 1.00, MinSharers: 1, MaxSharers: 1, WriteFrac: 0.35},
			},
		},
	}
}

// Suite returns the eight-workload suite with footprints multiplied by
// scale (0 < scale ≤ 1 shrinks footprints for quick runs; values above 1
// grow them). Ordering matches Table III: SSSP, BFS, CC, TC, Masstree,
// TPCC, FMI, POA.
func Suite(scale float64) []Spec {
	if scale <= 0 {
		panic(fmt.Sprintf("workload: non-positive scale %v", scale))
	}
	specs := suiteSpecs()
	for i := range specs {
		fp := int(float64(specs[i].FootprintPages) * scale)
		if fp < 1024 {
			fp = 1024
		}
		specs[i].FootprintPages = fp
	}
	return specs
}

// ByName returns the named workload at the given footprint scale.
func ByName(name string, scale float64) (Spec, error) {
	for _, s := range Suite(scale) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists the suite's workload names in canonical order.
func Names() []string {
	specs := suiteSpecs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
