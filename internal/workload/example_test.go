package workload_test

import (
	"fmt"

	"starnuma/internal/workload"
)

// Generate the first LLC miss of core 0 for the BFS model.
func ExampleGenerator() {
	spec, _ := workload.ByName("BFS", 0.125)
	gen, _ := workload.NewGenerator(spec, 16, 4)

	a := gen.Next(0)
	fmt.Println("page in range:", a.Page < uint32(gen.NumPages()))
	fmt.Println("cores:", gen.NumCores())

	// The same phase replays identically.
	gen2, _ := workload.NewGenerator(spec, 16, 4)
	fmt.Println("deterministic:", gen2.Next(0) == a)
	// Output:
	// page in range: true
	// cores: 64
	// deterministic: true
}
