// Package workload provides synthetic memory-access models for the eight
// workloads of the StarNUMA evaluation (§IV-E, Table III).
//
// The paper drives its simulator with Pin-collected traces of GAP graph
// kernels (BFS, CC, SSSP, TC), GenomicsBench pipelines (FMI, POA), the
// Masstree key-value store, and Silo running TPCC. Those traces are not
// public and require the original hardware/software stack, so — per the
// substitution rule in DESIGN.md — we model each workload as a
// parameterised generator that reproduces the properties StarNUMA's
// behaviour actually depends on:
//
//   - the page sharing-degree distribution (Fig. 2a, Fig. 13a),
//   - the concentration of accesses on widely-shared pages (Fig. 2b),
//   - the read/write ratio of shared pages,
//   - LLC misses per kilo-instruction (Table III),
//   - single-socket IPC (Table III), from which a zero-load IPC is
//     derived for the core timing model, and
//   - memory-level parallelism (how much miss latency overlaps).
//
// Each workload's footprint is divided into page classes; a class fixes
// the number of sharer sockets per page and carries a share of the pages
// and a (generally different) share of the accesses. Hot, widely-shared
// classes with AccessShare ≫ PageShare are exactly the paper's "vagabond
// pages".
package workload

import (
	"fmt"
	"math"
)

// PageBytes is the (small) page size used throughout, matching the
// paper's 4KB pages.
const PageBytes = 4096

// BlocksPerPage is the number of 64-byte blocks in a page.
const BlocksPerPage = PageBytes / 64

// Access is one LLC-missing memory reference of a core.
type Access struct {
	Gap   uint32 // instructions retired since this core's previous miss
	Page  uint32 // virtual page number
	Block uint16 // block index within the page (0..BlocksPerPage-1)
	Write bool
}

// PageClass describes one region of a workload's footprint.
type PageClass struct {
	Name        string
	PageShare   float64 // fraction of footprint pages
	AccessShare float64 // fraction of all LLC misses
	// MinSharers/MaxSharers bound the per-page sharer-socket count;
	// each page draws its own count uniformly from the range.
	// 1/1 means private; S/S means shared by every socket.
	MinSharers, MaxSharers int
	WriteFrac              float64 // probability an access is a store
}

// Spec is the complete description of one synthetic workload.
type Spec struct {
	Name string

	// Published per-core characteristics (Table III).
	SingleSocketIPC float64 // IPC with all-local memory
	MPKI            float64 // LLC misses per kilo-instruction

	// MLP is the number of outstanding misses the core model overlaps.
	// It is the calibration knob that reconciles single-socket IPC with
	// the miss rate (graph kernels overlap little; streaming codes a
	// lot).
	MLP int

	// FootprintPages is the scaled footprint in 4KB pages.
	FootprintPages int

	Classes []PageClass

	// DriftFrac makes sharing non-stationary: this fraction of chunks
	// re-draws its sharer set every DriftPeriod phases. The paper
	// observes stable sharing for its workloads (§V-B); drift probes
	// when dynamic migration beats static oracular placement.
	DriftFrac float64
	// DriftPeriod is the number of phases an epoch's sharer sets stay
	// stable (0 is treated as 1). Migration reacts at phase granularity,
	// so drift only rewards migration when the period exceeds one phase.
	DriftPeriod int

	Seed uint64
}

// Validate checks structural soundness: shares must each sum to ~1 and
// every class must be well-formed for a system with `sockets` sockets.
func (s Spec) Validate(sockets int) error {
	if s.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if s.SingleSocketIPC <= 0 || s.MPKI <= 0 || s.MLP <= 0 || s.FootprintPages <= 0 {
		return fmt.Errorf("workload %s: non-positive scalar parameter", s.Name)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("workload %s: no page classes", s.Name)
	}
	var pageSum, accSum float64
	for _, c := range s.Classes {
		if c.PageShare < 0 || c.AccessShare < 0 {
			return fmt.Errorf("workload %s class %s: negative share", s.Name, c.Name)
		}
		if c.MinSharers < 1 || c.MaxSharers < c.MinSharers || c.MaxSharers > sockets {
			return fmt.Errorf("workload %s class %s: sharer range [%d,%d] invalid for %d sockets",
				s.Name, c.Name, c.MinSharers, c.MaxSharers, sockets)
		}
		if c.WriteFrac < 0 || c.WriteFrac > 1 {
			return fmt.Errorf("workload %s class %s: WriteFrac %v", s.Name, c.Name, c.WriteFrac)
		}
		pageSum += c.PageShare
		accSum += c.AccessShare
	}
	if math.Abs(pageSum-1) > 1e-6 {
		return fmt.Errorf("workload %s: PageShares sum to %v", s.Name, pageSum)
	}
	if math.Abs(accSum-1) > 1e-6 {
		return fmt.Errorf("workload %s: AccessShares sum to %v", s.Name, accSum)
	}
	if s.DriftFrac < 0 || s.DriftFrac > 1 {
		return fmt.Errorf("workload %s: DriftFrac %v", s.Name, s.DriftFrac)
	}
	if s.DriftPeriod < 0 {
		return fmt.Errorf("workload %s: DriftPeriod %d", s.Name, s.DriftPeriod)
	}
	return nil
}

// ZeroLoadIPC derives the IPC the core would achieve with zero-latency
// memory, by removing the local-miss stall component from the published
// single-socket IPC:
//
//	1/IPC_single = 1/IPC_0 + MPKI/1000 × localMissCycles / MLP
//
// The result is clamped to [0.05, issue width 4]; the clamp engages for
// extremely memory-bound workloads (SSSP) whose single-socket IPC is
// itself almost entirely miss time.
func (s Spec) ZeroLoadIPC(localMissCycles float64) float64 {
	inv := 1/s.SingleSocketIPC - s.MPKI/1000*localMissCycles/float64(s.MLP)
	ipc := math.Inf(1)
	if inv > 0 {
		ipc = 1 / inv
	}
	if ipc > 4 {
		ipc = 4
	}
	if ipc < 0.05 {
		ipc = 0.05
	}
	return ipc
}

// MeanGap is the mean instruction distance between LLC misses.
func (s Spec) MeanGap() float64 { return 1000 / s.MPKI }

// SharingHistogram computes the expected distributions reported in the
// paper's Fig. 2 and Fig. 13: for each sharer count k (1..sockets),
// the fraction of footprint pages with exactly k sharers and the
// fraction of all accesses targeting such pages.
func (s Spec) SharingHistogram(sockets int) (pages, accesses []float64) {
	pages = make([]float64, sockets+1)
	accesses = make([]float64, sockets+1)
	for _, c := range s.Classes {
		span := float64(c.MaxSharers - c.MinSharers + 1)
		for k := c.MinSharers; k <= c.MaxSharers; k++ {
			pages[k] += c.PageShare / span
			accesses[k] += c.AccessShare / span
		}
	}
	return pages, accesses
}
