package workload

import (
	"math"
	"testing"
)

func TestSuiteSpecsValidate(t *testing.T) {
	specs := Suite(1)
	if len(specs) != 8 {
		t.Fatalf("suite has %d workloads", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(16); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestSuiteOrderMatchesTable3(t *testing.T) {
	want := []string{"SSSP", "BFS", "CC", "TC", "Masstree", "TPCC", "FMI", "POA"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("BFS", 1)
	if err != nil || s.Name != "BFS" {
		t.Fatalf("ByName(BFS) = %v, %v", s.Name, err)
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown workload did not error")
	}
}

func TestSuiteScaling(t *testing.T) {
	full := Suite(1)
	half := Suite(0.5)
	for i := range full {
		if half[i].FootprintPages >= full[i].FootprintPages {
			t.Errorf("%s: scale 0.5 footprint %d !< %d",
				full[i].Name, half[i].FootprintPages, full[i].FootprintPages)
		}
	}
	tiny := Suite(0.0001)
	for _, s := range tiny {
		if s.FootprintPages < 1024 {
			t.Errorf("%s: footprint floor violated: %d", s.Name, s.FootprintPages)
		}
	}
}

func TestSuiteScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Suite(0)
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	base := func() Spec {
		s, _ := ByName("BFS", 1)
		return s
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"zero ipc", func(s *Spec) { s.SingleSocketIPC = 0 }},
		{"zero mpki", func(s *Spec) { s.MPKI = 0 }},
		{"zero mlp", func(s *Spec) { s.MLP = 0 }},
		{"zero footprint", func(s *Spec) { s.FootprintPages = 0 }},
		{"no classes", func(s *Spec) { s.Classes = nil }},
		{"page shares", func(s *Spec) { s.Classes[0].PageShare += 0.5 }},
		{"access shares", func(s *Spec) { s.Classes[0].AccessShare += 0.5 }},
		{"sharer range", func(s *Spec) { s.Classes[0].MinSharers = 0 }},
		{"sharers exceed sockets", func(s *Spec) { s.Classes[0].MaxSharers = 99 }},
		{"write frac", func(s *Spec) { s.Classes[0].WriteFrac = 1.5 }},
		{"negative share", func(s *Spec) {
			s.Classes[0].PageShare = -0.1
			s.Classes[1].PageShare += 0.27
		}},
	}
	for _, tc := range cases {
		s := base()
		tc.mut(&s)
		if err := s.Validate(16); err == nil {
			t.Errorf("%s: Validate accepted bad spec", tc.name)
		}
	}
}

func TestZeroLoadIPC(t *testing.T) {
	s, _ := ByName("BFS", 1)
	ipc0 := s.ZeroLoadIPC(192)
	if ipc0 <= s.SingleSocketIPC {
		t.Fatalf("zero-load IPC %v not above single-socket %v", ipc0, s.SingleSocketIPC)
	}
	if ipc0 > 4 {
		t.Fatalf("zero-load IPC %v above issue width", ipc0)
	}
	// SSSP is so memory-bound that the clamp engages.
	sssp, _ := ByName("SSSP", 1)
	if got := sssp.ZeroLoadIPC(192); got != 4 {
		t.Fatalf("SSSP zero-load IPC = %v, want clamped 4", got)
	}
}

func TestMeanGap(t *testing.T) {
	s := Spec{MPKI: 32}
	if got := s.MeanGap(); got != 31.25 {
		t.Fatalf("MeanGap = %v", got)
	}
}

// Fig. 2's published BFS facts: 17% single-sharer pages, 78% with ≤4
// sharers, ~7% with >8 sharers absorbing ~68% of accesses, 2% 16-shared
// absorbing 36%.
func TestBFSSharingHistogramMatchesFig2(t *testing.T) {
	s, _ := ByName("BFS", 1)
	pages, accs := s.SharingHistogram(16)
	near := func(got, want, tol float64) bool { return math.Abs(got-want) <= tol }
	if !near(pages[1], 0.17, 0.01) {
		t.Errorf("single-sharer pages = %v, want 0.17", pages[1])
	}
	var le4, gt8pages, gt8accs float64
	for k := 1; k <= 4; k++ {
		le4 += pages[k]
	}
	for k := 9; k <= 16; k++ {
		gt8pages += pages[k]
		gt8accs += accs[k]
	}
	if !near(le4, 0.78, 0.02) {
		t.Errorf("pages with <=4 sharers = %v, want 0.78", le4)
	}
	if !near(gt8pages, 0.07, 0.01) {
		t.Errorf("pages with >8 sharers = %v, want 0.07", gt8pages)
	}
	if !near(gt8accs, 0.68, 0.03) {
		t.Errorf("accesses to >8-shared pages = %v, want 0.68", gt8accs)
	}
	if !near(accs[16], 0.36, 0.02) {
		t.Errorf("accesses to 16-shared pages = %v, want 0.36", accs[16])
	}
}

// Fig. 13's TC facts: ~60% of pages touched by all 16 sockets, ~80% by 8+.
func TestTCSharingHistogramMatchesFig13(t *testing.T) {
	s, _ := ByName("TC", 1)
	pages, _ := s.SharingHistogram(16)
	var ge8 float64
	for k := 8; k <= 16; k++ {
		ge8 += pages[k]
	}
	if math.Abs(pages[16]-0.60) > 0.02 {
		t.Errorf("16-shared pages = %v, want 0.60", pages[16])
	}
	if math.Abs(ge8-0.80) > 0.03 {
		t.Errorf("8+-shared pages = %v, want 0.80", ge8)
	}
}

func TestPOAIsEntirelyPrivate(t *testing.T) {
	s, _ := ByName("POA", 1)
	pages, accs := s.SharingHistogram(16)
	if pages[1] != 1 || accs[1] != 1 {
		t.Fatalf("POA pages[1]=%v accs[1]=%v", pages[1], accs[1])
	}
}
