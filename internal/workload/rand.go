package workload

// splitmix64 is a tiny, fast, deterministic PRNG used for both page
// property hashing and per-core access streams. We avoid math/rand so
// that page→sharer assignments are pure functions of (seed, page) and
// never depend on call order.
type splitmix64 struct{ state uint64 }

func newSplitmix(seed uint64) *splitmix64 { return &splitmix64{state: seed} }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64v returns a uniform value in [0, 1).
func (s *splitmix64) float64v() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// intn returns a uniform value in [0, n). n must be positive.
func (s *splitmix64) intn(n int) int {
	return int(s.next() % uint64(n))
}

// mix hashes an arbitrary sequence of values into a single 64-bit value;
// used to derive stable per-page and per-core seeds.
func mix(vs ...uint64) uint64 {
	h := uint64(0x8445d61a4e774912)
	for _, v := range vs {
		h ^= v
		h *= 0x9e3779b97f4a7c15
		h ^= h >> 29
	}
	return h
}
