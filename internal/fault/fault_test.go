package fault

import (
	"strings"
	"testing"

	"starnuma/internal/sim"
)

func TestParsePlanValid(t *testing.T) {
	p, err := ParsePlan([]byte(`{
		"name": "mixed",
		"events": [
			{"kind": "flap", "target": "cxl:s3", "from_phase": 1,
			 "period_ns": 2000, "down_ns": 300, "retry_ns": 100},
			{"kind": "degrade", "target": "upi", "from_phase": 0, "to_phase": 2,
			 "latency_x": 2, "bandwidth_div": 2},
			{"kind": "kill", "target": "pool:ch1", "from_phase": 3}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mixed" || len(p.Events) != 3 {
		t.Fatalf("plan %+v", p)
	}
}

func TestParsePlanRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"malformed", `{"events": [`, "parse plan"},
		{"unknown field", `{"events": [], "bogus": 1}`, "bogus"},
		{"trailing", `{"events": []} garbage`, "trailing"},
		{"unknown kind", `{"events":[{"kind":"melt","target":"cxl"}]}`, "unknown kind"},
		{"negative phase", `{"events":[{"kind":"degrade","target":"cxl","from_phase":-1,"latency_x":2}]}`, "negative from_phase"},
		{"negative time", `{"events":[{"kind":"degrade","target":"cxl","from_ns":-5,"latency_x":2}]}`, "negative time"},
		{"empty time range", `{"events":[{"kind":"degrade","target":"cxl","from_ns":10,"to_ns":5,"latency_x":2}]}`, "empty time range"},
		{"empty phase range", `{"events":[{"kind":"degrade","target":"cxl","from_phase":2,"to_phase":1,"latency_x":2}]}`, "empty phase range"},
		{"no-op degrade", `{"events":[{"kind":"degrade","target":"cxl"}]}`, "no effect"},
		{"degrade on pool", `{"events":[{"kind":"degrade","target":"pool","latency_x":2}]}`, "link target"},
		{"bad flap duty", `{"events":[{"kind":"flap","target":"cxl","period_ns":100,"down_ns":100}]}`, "down_ns"},
		{"flap no period", `{"events":[{"kind":"flap","target":"cxl","down_ns":10}]}`, "period_ns"},
		{"kill on link", `{"events":[{"kind":"kill","target":"cxl"}]}`, "pool target"},
		{"kill bad channel", `{"events":[{"kind":"kill","target":"pool:chx"}]}`, "integer"},
		{"kill healed", `{"events":[{"kind":"kill","target":"pool","to_phase":4}]}`, "permanent"},
		{"overlap same link", `{"events":[
			{"kind":"degrade","target":"cxl","latency_x":2},
			{"kind":"degrade","target":"cxl:s1","latency_x":3}]}`, "overlap"},
		{"overlap wildcard", `{"events":[
			{"kind":"flap","target":"link","period_ns":100,"down_ns":10},
			{"kind":"flap","target":"upi","period_ns":200,"down_ns":20}]}`, "overlap"},
		{"overlap kills", `{"events":[
			{"kind":"kill","target":"pool"},
			{"kind":"kill","target":"pool:ch0","from_phase":7}]}`, "overlap"},
	}
	for _, tc := range cases {
		if _, err := ParsePlan([]byte(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParsePlanAllowsDisjoint(t *testing.T) {
	// Same kind on disjoint phases, disjoint targets, disjoint channels,
	// and different kinds on the same link must all be accepted.
	if _, err := ParsePlan([]byte(`{"events":[
		{"kind":"degrade","target":"cxl","from_phase":0,"to_phase":2,"latency_x":2},
		{"kind":"degrade","target":"cxl","from_phase":2,"latency_x":4},
		{"kind":"degrade","target":"upi","latency_x":2},
		{"kind":"flap","target":"cxl","period_ns":100,"down_ns":10},
		{"kind":"kill","target":"pool:ch0"},
		{"kind":"kill","target":"pool:ch1"}
	]}`)); err != nil {
		t.Fatal(err)
	}
}

func TestNilSafety(t *testing.T) {
	var s *Schedule
	if s.Active(0) != 0 {
		t.Error("nil schedule has active events")
	}
	if s.Link("CXL", "s0", "pool", 0) != nil {
		t.Error("nil schedule returned an injector")
	}
	if ps := s.Pool(0, 2); ps.Dead || len(ps.Down) != 0 {
		t.Errorf("nil schedule pool state %+v", ps)
	}
	var p *Plan
	if err := p.Validate(); err != nil {
		t.Errorf("nil plan invalid: %v", err)
	}
	if NewSchedule(nil) != nil || NewSchedule(&Plan{}) != nil {
		t.Error("empty plan compiled to a non-nil schedule")
	}
	var j *Injector
	lat, psb, d := j.Adjust(0, 100, 1.5)
	if lat != 100 || psb != 1.5 || d != 0 {
		t.Error("nil injector adjusted a send")
	}
}

func TestInjectorDegrade(t *testing.T) {
	s := NewSchedule(DegradePlan(4))
	if s == nil {
		t.Fatal("no schedule")
	}
	if s.Link("CXL", "s0", "pool", 0) != nil {
		t.Error("degrade active before from_phase")
	}
	if s.Link("UPI", "s0", "s1", 1) != nil {
		t.Error("degrade leaked onto UPI")
	}
	inj := s.Link("CXL", "s0", "pool", 1)
	if inj == nil {
		t.Fatal("no injector for CXL at phase 1")
	}
	lat, psb, d := inj.Adjust(0, 50*sim.Nanosecond, 100)
	if lat != 200*sim.Nanosecond || psb != 400 || d != 0 {
		t.Errorf("degrade 4x: lat=%v psb=%v delay=%v", lat, psb, d)
	}
	if st := inj.Stats(); st.DegradedSends != 1 || st.FlapRetries != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestInjectorFlap(t *testing.T) {
	s := NewSchedule(FlapPlan())
	inj := s.Link("CXL", "pool", "s2", 1)
	if inj == nil {
		t.Fatal("no injector")
	}
	// 100ns into the 300ns down-interval: wait the remaining 200ns plus
	// the 100ns retry cost.
	_, _, d := inj.Adjust(100*sim.Nanosecond, 10, 1)
	if d != 300*sim.Nanosecond {
		t.Errorf("delay in down interval = %v, want 300ns", d)
	}
	// In the up part of the period: no delay.
	if _, _, d := inj.Adjust(1500*sim.Nanosecond, 10, 1); d != 0 {
		t.Errorf("delay while up = %v", d)
	}
	// Next period's down interval hits again.
	if _, _, d := inj.Adjust(2000*sim.Nanosecond, 10, 1); d == 0 {
		t.Error("no delay at next period's down interval")
	}
	if st := inj.Stats(); st.FlapRetries != 2 || st.RetryTime == 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestInjectorTimeWindow(t *testing.T) {
	p, err := ParsePlan([]byte(`{"events":[{"kind":"degrade","target":"cxl",
		"from_ns":100,"to_ns":200,"latency_x":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	inj := NewSchedule(p).Link("CXL", "s0", "pool", 0)
	check := func(at sim.Time, want sim.Time) {
		t.Helper()
		if lat, _, _ := inj.Adjust(at, 10*sim.Nanosecond, 1); lat != want {
			t.Errorf("at %v: lat=%v, want %v", at, lat, want)
		}
	}
	check(50*sim.Nanosecond, 10*sim.Nanosecond)  // before window
	check(150*sim.Nanosecond, 20*sim.Nanosecond) // inside
	check(250*sim.Nanosecond, 10*sim.Nanosecond) // after
}

func TestSchedulePool(t *testing.T) {
	s := NewSchedule(DeadChannelPlan(1))
	if ps := s.Pool(0, 2); len(ps.Down) != 0 || ps.Dead {
		t.Errorf("phase 0 state %+v", ps)
	}
	ps := s.Pool(1, 2)
	if ps.Dead || len(ps.Down) != 1 || ps.Down[0] != 1 {
		t.Errorf("phase 1 state %+v", ps)
	}
	if ps.FailedChannels(2) != 1 {
		t.Errorf("failed channels %d", ps.FailedChannels(2))
	}
	// Killing a one-channel device's only channel kills the device.
	if ps := NewSchedule(DeadChannelPlan(0)).Pool(1, 1); !ps.Dead {
		t.Error("all channels down but device not dead")
	}
	if ps := NewSchedule(DeadPoolPlan()).Pool(2, 2); !ps.Dead || ps.FailedChannels(2) != 2 {
		t.Errorf("dead pool state %+v", ps)
	}
}

func TestCannedPlansValidate(t *testing.T) {
	for _, p := range []*Plan{FlapPlan(), DegradePlan(4), DeadChannelPlan(0), DeadChannelPlan(12), DeadPoolPlan()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}
