package fault

import (
	"sort"
	"strings"

	"starnuma/internal/sim"
	"starnuma/internal/stats"
)

// compiledEvent is an Event with its scheduling fields converted to
// integer simulation time and parsed targets.
type compiledEvent struct {
	kind      Kind
	class     string
	sub       string
	fromPhase int
	toPhase   int // <= 0 means open-ended
	from, to  sim.Time
	openEnd   bool // ToNS unset: active until the window ends

	latX, bwDiv float64 // degrade

	period, down, retry sim.Time // flap

	channel int // kill: -1 = whole device

	capFrac float64 // capacity: usable fraction of nominal
}

// activePhase reports whether the event covers the given checkpoint
// phase.
func (c *compiledEvent) activePhase(phase int) bool {
	if phase < c.fromPhase {
		return false
	}
	return c.toPhase <= 0 || phase < c.toPhase
}

// activeAt reports whether the event covers window-relative time now.
func (c *compiledEvent) activeAt(now sim.Time) bool {
	if now < c.from {
		return false
	}
	return c.openEnd || now < c.to
}

// Schedule is a Plan compiled for querying by the timing stack. All
// methods are nil-safe: a nil *Schedule (no plan, or an empty one)
// answers every query with "no fault", so fault-free runs take the
// exact code paths they always did.
type Schedule struct {
	events []compiledEvent
}

// NewSchedule compiles a validated plan. A nil or empty plan yields a
// nil schedule. NewSchedule never fails: events an earlier Validate
// would have rejected are skipped defensively.
func NewSchedule(p *Plan) *Schedule {
	if p == nil || len(p.Events) == 0 {
		return nil
	}
	s := &Schedule{}
	for _, e := range p.Events {
		if e.validate() != nil {
			continue
		}
		class, sub := splitTarget(e.Target)
		ce := compiledEvent{
			kind:      e.Kind,
			class:     class,
			sub:       sub,
			fromPhase: e.FromPhase,
			toPhase:   e.ToPhase,
			from:      sim.FromNanos(e.FromNS),
			to:        sim.FromNanos(e.ToNS),
			openEnd:   stats.IsZero(e.ToNS),
			latX:      e.LatencyX,
			bwDiv:     e.BandwidthDiv,
			period:    sim.FromNanos(e.PeriodNS),
			down:      sim.FromNanos(e.DownNS),
			retry:     sim.FromNanos(e.RetryNS),
			channel:   -1,
			capFrac:   e.CapacityFrac,
		}
		if e.Kind == Kill {
			ce.channel, _ = killChannel(sub)
		}
		s.events = append(s.events, ce)
	}
	if len(s.events) == 0 {
		return nil
	}
	return s
}

// Active returns the number of plan events covering the given phase —
// the "fault/events_active" metric.
func (s *Schedule) Active(phase int) int {
	if s == nil {
		return 0
	}
	n := 0
	for i := range s.events {
		if s.events[i].activePhase(phase) {
			n++
		}
	}
	return n
}

// matchLink reports whether the event targets the directed link of the
// given channel kind ("UPI", "CXL", ...) between endpoints from and to.
func (c *compiledEvent) matchLink(kind, from, to string) bool {
	if c.kind == Kill {
		return false
	}
	if c.class != "link" && !strings.EqualFold(c.class, kind) {
		return false
	}
	return c.sub == "" || c.sub == from || c.sub == to
}

// Link returns the injector a link with the given channel kind and
// endpoints must consult during the given phase's timing window, or nil
// when no event targets it.
func (s *Schedule) Link(kind, from, to string, phase int) *Injector {
	if s == nil {
		return nil
	}
	var inj *Injector
	for i := range s.events {
		ce := &s.events[i]
		if !ce.activePhase(phase) || !ce.matchLink(kind, from, to) {
			continue
		}
		if inj == nil {
			inj = &Injector{}
		}
		inj.spans = append(inj.spans, *ce)
	}
	return inj
}

// PoolState describes the pool device's health during one phase — the
// query interface internal/memdev, internal/pool and internal/migrate
// consume.
type PoolState struct {
	// Down lists the failed DDR channel indexes, sorted ascending.
	Down []int
	// Dead marks the whole multi-headed device as failed.
	Dead bool
	// CapacityFrac is the usable fraction of nominal capacity imposed by
	// active capacity events; 0 means unscaled (full capacity). It
	// composes multiplicatively with the surviving-channel fraction.
	CapacityFrac float64
}

// FailedChannels returns how many of total channels are unavailable.
func (ps PoolState) FailedChannels(total int) int {
	if ps.Dead {
		return total
	}
	n := 0
	for _, ch := range ps.Down {
		if ch >= 0 && ch < total {
			n++
		}
	}
	return n
}

// Pool returns the pool device's health during the given phase, for a
// device with the given channel count. A device whose every channel is
// killed individually is Dead.
func (s *Schedule) Pool(phase, channels int) PoolState {
	var ps PoolState
	if s == nil {
		return ps
	}
	for i := range s.events {
		ce := &s.events[i]
		if !ce.activePhase(phase) {
			continue
		}
		switch ce.kind {
		case Kill:
			if ce.channel < 0 {
				ps.Dead = true
				continue
			}
			ps.Down = append(ps.Down, ce.channel)
		case Capacity:
			// Validate rejects overlapping capacity events, but compose
			// multiplicatively anyway so a defensively-compiled schedule
			// stays monotone.
			if stats.IsZero(ps.CapacityFrac) {
				ps.CapacityFrac = 1
			}
			ps.CapacityFrac *= ce.capFrac
		}
	}
	sort.Ints(ps.Down)
	if !ps.Dead && channels > 0 && ps.FailedChannels(channels) >= channels {
		ps.Dead = true
	}
	return ps
}

// Outlook summarises the health of one link class during one phase's
// timing window — the phase-granular signal bandwidth-aware migration
// policies consult before committing pool placements. It is a
// conservative class-wide summary: the worst active degradation across
// every event targeting the class, regardless of endpoint.
type Outlook struct {
	// LatencyX is the worst active latency multiplier (1 = nominal).
	LatencyX float64
	// BandwidthDiv is the worst active bandwidth divisor (1 = nominal).
	BandwidthDiv float64
	// DownFrac is the largest fraction of the window a flap event keeps
	// the link down, in [0, 1).
	DownFrac float64
}

// Degraded reports whether any fault touches the class this phase.
func (o Outlook) Degraded() bool {
	return o.LatencyX > 1 || o.BandwidthDiv > 1 || o.DownFrac > 0
}

// Outlook returns the health summary for a link class ("CXL", "UPI",
// "NUMAlink") during the given phase. Nil-safe: a nil schedule reports a
// healthy link.
func (s *Schedule) Outlook(kind string, phase int) Outlook {
	o := Outlook{LatencyX: 1, BandwidthDiv: 1}
	if s == nil {
		return o
	}
	for i := range s.events {
		ce := &s.events[i]
		if ce.kind == Kill || !ce.activePhase(phase) {
			continue
		}
		if ce.class != "link" && !strings.EqualFold(ce.class, kind) {
			continue
		}
		switch ce.kind {
		case Degrade:
			if ce.latX > o.LatencyX {
				o.LatencyX = ce.latX
			}
			if ce.bwDiv > o.BandwidthDiv {
				o.BandwidthDiv = ce.bwDiv
			}
		case Flap:
			if ce.period > 0 {
				if f := float64(ce.down) / float64(ce.period); f > o.DownFrac {
					o.DownFrac = f
				}
			}
		}
	}
	return o
}

// InjectorStats counts what an Injector did to its link's traffic.
type InjectorStats struct {
	// DegradedSends counts sends served with degraded latency/bandwidth.
	DegradedSends uint64
	// FlapRetries counts sends that hit a down interval and waited.
	FlapRetries uint64
	// RetryTime is the total wait (retrain remainder + retry cost).
	RetryTime sim.Time
}

// Injector adjusts one link's sends according to the events targeting
// it. It is built per (link, window) by Schedule.Link, shares the
// single-threaded determinism contract of the link it serves, and
// accumulates InjectorStats for the fault/* metrics namespace.
type Injector struct {
	spans []compiledEvent
	stats InjectorStats
}

// Adjust applies the active events to a send arriving at window-relative
// time now with the link's nominal latency and inverse bandwidth. It
// returns the effective latency and ps/byte plus a delay the send must
// wait before touching the wire (flap retrain + retry cost). Degrade
// factors are evaluated at the original arrival time.
func (j *Injector) Adjust(now, latency sim.Time, psPerByte float64) (lat sim.Time, psb float64, delay sim.Time) {
	lat, psb = latency, psPerByte
	if j == nil {
		return lat, psb, 0
	}
	degraded := false
	for i := range j.spans {
		sp := &j.spans[i]
		if !sp.activeAt(now) {
			continue
		}
		switch sp.kind {
		case Flap:
			pos := (now - sp.from) % sp.period
			if pos < sp.down {
				d := (sp.down - pos) + sp.retry
				delay += d
				j.stats.FlapRetries++
				j.stats.RetryTime += d
			}
		case Degrade:
			if sp.latX > 1 {
				lat = sim.Time(float64(lat)*sp.latX + 0.5)
			}
			if sp.bwDiv > 1 {
				psb *= sp.bwDiv
			}
			degraded = true
		}
	}
	if degraded {
		j.stats.DegradedSends++
	}
	return lat, psb, delay
}

// Stats returns the injector's counters.
func (j *Injector) Stats() InjectorStats {
	if j == nil {
		return InjectorStats{}
	}
	return j.stats
}
