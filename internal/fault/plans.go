package fault

import "strconv"

// Canned plans for the faultsweep experiment and the CLIs' examples.
// Each starts at phase 1 so phase 0's first-touch placement is common
// to every scenario and differences are attributable to the fault.

// FlapPlan returns transient CXL port flaps on every socket's pool
// link: down 300ns out of every 2µs, with a 100ns retry cost — roughly
// a 15% duty cycle of unavailability on the pool fabric.
func FlapPlan() *Plan {
	return &Plan{
		Name: "cxl-flap",
		Events: []Event{{
			Kind: Flap, Target: "cxl", FromPhase: 1,
			PeriodNS: 2000, DownNS: 300, RetryNS: 100,
		}},
	}
}

// DegradePlan returns a persistent CXL fabric degradation: every pool
// link serves at latency ×k and bandwidth ÷k from phase 1 onward (a
// downtrained port, a misbehaving retimer).
func DegradePlan(k float64) *Plan {
	return &Plan{
		Name: "cxl-degrade",
		Events: []Event{{
			Kind: Degrade, Target: "cxl", FromPhase: 1,
			LatencyX: k, BandwidthDiv: k,
		}},
	}
}

// DeadChannelPlan returns a permanent failure of one pool DDR channel
// from phase 1 onward: surviving channels absorb the traffic and the
// capacity budget shrinks proportionally, so migrate drains the
// overflow.
func DeadChannelPlan(ch int) *Plan {
	return &Plan{
		Name: "dead-channel",
		Events: []Event{{
			Kind: Kill, Target: poolChannelTarget(ch), FromPhase: 1,
		}},
	}
}

// DeadPoolPlan returns a permanent whole-device failure from phase 2
// onward: every pool-resident page is drained back to the sockets and
// the policy falls back to StarNUMA-Halt (socket-only) behaviour.
func DeadPoolPlan() *Plan {
	return &Plan{
		Name: "dead-pool",
		Events: []Event{{
			Kind: Kill, Target: "pool", FromPhase: 2,
		}},
	}
}

// poolChannelTarget formats "pool:chN" ("pool" for negative ch).
func poolChannelTarget(ch int) string {
	if ch < 0 {
		return "pool"
	}
	return "pool:ch" + strconv.Itoa(ch)
}
