package fault

import "testing"

func TestOutlookNilSchedule(t *testing.T) {
	var s *Schedule
	o := s.Outlook("CXL", 3)
	if o.Degraded() {
		t.Fatalf("nil schedule reports degradation: %+v", o)
	}
	if o.LatencyX != 1 || o.BandwidthDiv != 1 || o.DownFrac != 0 {
		t.Fatalf("nil outlook not nominal: %+v", o)
	}
}

func TestOutlookDegrade(t *testing.T) {
	s := NewSchedule(DegradePlan(4))
	if o := s.Outlook("CXL", 0); o.Degraded() {
		t.Fatalf("degrade active before from_phase: %+v", o)
	}
	o := s.Outlook("CXL", 1)
	if o.LatencyX != 4 || o.BandwidthDiv != 4 {
		t.Fatalf("phase 1 outlook = %+v, want 4x/4x", o)
	}
	if !o.Degraded() {
		t.Fatal("Degraded() false under 4x degrade")
	}
	// The plan targets "cxl": UPI must see a healthy outlook, but a
	// class-wide "link" event would match any kind (covered below).
	if o := s.Outlook("UPI", 1); o.Degraded() {
		t.Fatalf("cxl degrade leaked onto UPI: %+v", o)
	}
}

func TestOutlookFlapDownFrac(t *testing.T) {
	s := NewSchedule(FlapPlan()) // period 2000ns, down 300ns, from phase 1
	o := s.Outlook("CXL", 1)
	if want := 300.0 / 2000; o.DownFrac != want {
		t.Fatalf("DownFrac = %v, want %v", o.DownFrac, want)
	}
	if o.LatencyX != 1 || o.BandwidthDiv != 1 {
		t.Fatalf("flap must not report degrade factors: %+v", o)
	}
}

func TestOutlookIgnoresKills(t *testing.T) {
	// Kill events are device faults, not link-health signals: the pool
	// state (Schedule.Pool) carries them, the outlook stays nominal.
	s := NewSchedule(DeadPoolPlan())
	if o := s.Outlook("CXL", 3); o.Degraded() {
		t.Fatalf("kill event leaked into the outlook: %+v", o)
	}
	if ps := s.Pool(3, 8); !ps.Dead {
		t.Fatal("pool not dead despite kill plan")
	}
}

func TestOutlookLinkClassMatchesEverything(t *testing.T) {
	s := NewSchedule(&Plan{Name: "any-link", Events: []Event{{
		Kind: Degrade, Target: "link", FromPhase: 0, LatencyX: 2,
	}}})
	for _, kind := range []string{"CXL", "UPI", "NUMAlink"} {
		if o := s.Outlook(kind, 0); o.LatencyX != 2 {
			t.Errorf("class-wide link event missed kind %s: %+v", kind, o)
		}
	}
}

func TestOutlookWorstOfOverlapping(t *testing.T) {
	s := NewSchedule(&Plan{Name: "stacked", Events: []Event{
		{Kind: Degrade, Target: "cxl:s0", FromPhase: 0, LatencyX: 2},
		{Kind: Degrade, Target: "cxl:s1", FromPhase: 0, LatencyX: 3, BandwidthDiv: 1.5},
	}})
	o := s.Outlook("CXL", 0)
	if o.LatencyX != 3 || o.BandwidthDiv != 1.5 {
		t.Fatalf("outlook should take the worst across events: %+v", o)
	}
}
