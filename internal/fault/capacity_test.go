package fault

import "testing"

func TestCapacityEventValidate(t *testing.T) {
	ok := Event{Kind: Capacity, Target: "pool", FromPhase: 1, CapacityFrac: 0.25}
	if err := ok.validate(); err != nil {
		t.Fatalf("valid capacity event rejected: %v", err)
	}
	healed := ok
	healed.ToPhase = 3
	if err := healed.validate(); err != nil {
		t.Fatalf("healing capacity event rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Event)
	}{
		{"link target", func(e *Event) { e.Target = "cxl" }},
		{"channel target", func(e *Event) { e.Target = "pool:ch0" }},
		{"zero frac", func(e *Event) { e.CapacityFrac = 0 }},
		{"full frac", func(e *Event) { e.CapacityFrac = 1 }},
		{"over frac", func(e *Event) { e.CapacityFrac = 1.5 }},
		{"time scoped", func(e *Event) { e.FromNS = 10 }},
	}
	for _, c := range cases {
		e := ok
		c.mut(&e)
		if err := e.validate(); err == nil {
			t.Errorf("%s: invalid capacity event accepted", c.name)
		}
	}
}

func TestCapacityOverlap(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: Capacity, Target: "pool", FromPhase: 1, ToPhase: 2, CapacityFrac: 0.5},
		{Kind: Capacity, Target: "pool", FromPhase: 2, CapacityFrac: 0.25},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("disjoint capacity events rejected: %v", err)
	}
	p.Events[1].FromPhase = 1
	if err := p.Validate(); err == nil {
		t.Fatal("overlapping capacity events accepted")
	}
	// Capacity composes with kill: different kinds never conflict.
	p = &Plan{Events: []Event{
		{Kind: Capacity, Target: "pool", FromPhase: 1, CapacityFrac: 0.5},
		{Kind: Kill, Target: "pool:ch0", FromPhase: 1},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("capacity+kill plan rejected: %v", err)
	}
}

func TestSchedulePoolCapacity(t *testing.T) {
	s := NewSchedule(&Plan{Events: []Event{
		{Kind: Capacity, Target: "pool", FromPhase: 1, ToPhase: 3, CapacityFrac: 0.25},
	}})
	if got := s.Pool(0, 2); got.CapacityFrac != 0 {
		t.Errorf("phase 0: CapacityFrac = %v, want 0 (unscaled)", got.CapacityFrac)
	}
	if got := s.Pool(1, 2); got.CapacityFrac != 0.25 {
		t.Errorf("phase 1: CapacityFrac = %v, want 0.25", got.CapacityFrac)
	}
	if got := s.Pool(3, 2); got.CapacityFrac != 0 {
		t.Errorf("phase 3 (healed): CapacityFrac = %v, want 0", got.CapacityFrac)
	}
}

func TestParsePlanCapacity(t *testing.T) {
	p, err := ParsePlan([]byte(`{
		"name": "squeeze",
		"events": [
			{"kind": "capacity", "target": "pool", "from_phase": 2, "capacity_frac": 0.25}
		]
	}`))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Events[0].CapacityFrac != 0.25 {
		t.Fatalf("CapacityFrac = %v, want 0.25", p.Events[0].CapacityFrac)
	}
	if _, err := ParsePlan([]byte(`{
		"events": [{"kind": "capacity", "target": "pool", "from_phase": 2, "capacity_frac": 2}]
	}`)); err == nil {
		t.Fatal("capacity_frac 2 accepted")
	}
}
