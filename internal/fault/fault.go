// Package fault is the deterministic fault-injection subsystem for the
// StarNUMA fabric. A Plan is a declarative, JSON-loadable list of fault
// events scheduled at simulated phases and simulated times — never wall
// clocks — so a run under a plan is a pure function of
// (system, sim, workload, plan) and remains bit-reproducible: the plan
// rides core.SimConfig into the runner's content-addressed cache key,
// and the same plan + seed yields byte-identical Results at any worker
// count.
//
// Four event kinds model the failure modes a star-attached CXL pool
// must survive:
//
//   - "degrade": a link serves traffic with latency ×LatencyX and
//     bandwidth ÷BandwidthDiv for a phase/time window (a misbehaving
//     retimer, a downtrained x8→x4 port);
//   - "flap": a link goes down periodically; messages arriving during a
//     down interval wait for the link to retrain and then pay a retry
//     cost (transient CXL port flaps with retry/backoff);
//   - "kill": a pool DDR channel — or the whole multi-headed device —
//     fails permanently from a phase onward;
//   - "capacity": the pool's usable capacity shrinks to CapacityFrac of
//     nominal for a phase range (an operator squeeze, a co-tenant's
//     reservation, RAS-triggered page offlining) — migrate drains the
//     overflow exactly as it does for dead channels.
//
// Consumers query a compiled Schedule: internal/link installs per-link
// Injectors that adjust each Send, internal/memdev and internal/pool
// take the PoolState to reroute traffic off dead channels and shrink
// the capacity budget, and internal/migrate drains vagabond pages off
// dying channels (falling back to socket-only StarNUMA-Halt behaviour
// when the pool is fully dead).
//
// The package performs no file IO and reads no clocks or environment —
// it is part of the determinism contract (starnumavet's SimPackages);
// plan files are read by the exp/cmd layer and handed in as bytes.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"starnuma/internal/stats"
)

// Kind names a fault event's behaviour.
type Kind string

const (
	// Degrade scales a link's latency and divides its bandwidth.
	Degrade Kind = "degrade"
	// Flap takes a link down periodically; sends during a down interval
	// wait for retrain and pay a retry cost.
	Flap Kind = "flap"
	// Kill permanently fails a pool DDR channel (target "pool:chN") or
	// the whole device (target "pool") from FromPhase onward.
	Kill Kind = "kill"
	// Capacity shrinks the pool's usable capacity to CapacityFrac of
	// nominal (target "pool") for a phase range; unlike Kill it can heal
	// when ToPhase closes the range.
	Capacity Kind = "capacity"
)

// Event is one scheduled fault. Link events (degrade, flap) are scoped
// by phase range and optionally by a window-relative simulated-time
// range; kill events are permanent from FromPhase.
type Event struct {
	Kind Kind `json:"kind"`
	// Target selects the faulted component as "class" or "class:sub".
	// Link classes: "link" (every link), "cxl", "upi", "upi-asic",
	// "numalink"; sub restricts to links with the named endpoint (e.g.
	// "cxl:s3" is socket 3's pool port, both directions). Kill targets:
	// "pool" (whole device) or "pool:chN" (one DDR channel).
	Target string `json:"target"`
	// FromPhase..ToPhase scope the event to checkpoint phases;
	// ToPhase 0 means open-ended. Kill events must leave ToPhase 0:
	// permanent failures do not heal.
	FromPhase int `json:"from_phase"`
	ToPhase   int `json:"to_phase,omitempty"`
	// FromNS..ToNS further scope link events within each affected timing
	// window, in window-relative simulated nanoseconds; ToNS 0 means
	// until the window ends.
	FromNS float64 `json:"from_ns,omitempty"`
	ToNS   float64 `json:"to_ns,omitempty"`
	// Degrade knobs: latency multiplier and bandwidth divisor (each ≥ 1;
	// 0 means unchanged; at least one must be > 1).
	LatencyX     float64 `json:"latency_x,omitempty"`
	BandwidthDiv float64 `json:"bandwidth_div,omitempty"`
	// Flap knobs: the link is down for the first DownNS of every
	// PeriodNS, and a send hitting a down interval additionally pays
	// RetryNS of retry/backoff cost after the link comes back.
	PeriodNS float64 `json:"period_ns,omitempty"`
	DownNS   float64 `json:"down_ns,omitempty"`
	RetryNS  float64 `json:"retry_ns,omitempty"`
	// Capacity knob: the fraction of nominal pool capacity that stays
	// usable while the event is active (must be in (0, 1)).
	CapacityFrac float64 `json:"capacity_frac,omitempty"`
}

// Plan is a named, validated set of fault events. The zero Plan (and a
// nil *Plan) injects nothing and simulates bit-identically to a
// fault-free run.
type Plan struct {
	Name   string  `json:"name,omitempty"`
	Events []Event `json:"events"`
}

// ParsePlan decodes and validates a JSON plan. Unknown fields,
// malformed JSON, trailing garbage, and semantically invalid events
// (unknown kinds/targets, negative times, overlapping same-kind
// windows) are all rejected with an error; ParsePlan never panics.
func ParsePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	p := &Plan{}
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("fault: parse plan: trailing data after plan object")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// linkClasses are the target classes that select interconnect links.
var linkClasses = []string{"link", "cxl", "upi", "upi-asic", "numalink"}

// splitTarget separates "class:sub" into its parts.
func splitTarget(target string) (class, sub string) {
	class, sub, _ = strings.Cut(target, ":")
	return strings.ToLower(class), sub
}

// isLinkClass reports whether class selects links.
func isLinkClass(class string) bool {
	for _, c := range linkClasses {
		if class == c {
			return true
		}
	}
	return false
}

// killChannel parses a kill event's channel sub-target: -1 for the
// whole device, N for "chN".
func killChannel(sub string) (int, error) {
	if sub == "" {
		return -1, nil
	}
	num, ok := strings.CutPrefix(sub, "ch")
	if !ok {
		return 0, fmt.Errorf("pool sub-target %q is not chN", sub)
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("pool channel %q is not a non-negative integer", sub)
	}
	return n, nil
}

// validate checks one event in isolation.
func (e Event) validate() error {
	class, sub := splitTarget(e.Target)
	if e.FromPhase < 0 {
		return fmt.Errorf("negative from_phase %d", e.FromPhase)
	}
	if e.ToPhase < 0 {
		return fmt.Errorf("negative to_phase %d", e.ToPhase)
	}
	if e.ToPhase != 0 && e.ToPhase <= e.FromPhase {
		return fmt.Errorf("empty phase range [%d, %d)", e.FromPhase, e.ToPhase)
	}
	if e.FromNS < 0 || e.ToNS < 0 {
		return fmt.Errorf("negative time range [%v, %v)", e.FromNS, e.ToNS)
	}
	if !stats.IsZero(e.ToNS) && e.ToNS <= e.FromNS {
		return fmt.Errorf("empty time range [%vns, %vns)", e.FromNS, e.ToNS)
	}
	switch e.Kind {
	case Degrade:
		if !isLinkClass(class) {
			return fmt.Errorf("degrade needs a link target, got %q", e.Target)
		}
		if !stats.IsZero(e.LatencyX) && e.LatencyX < 1 {
			return fmt.Errorf("latency_x %v < 1", e.LatencyX)
		}
		if !stats.IsZero(e.BandwidthDiv) && e.BandwidthDiv < 1 {
			return fmt.Errorf("bandwidth_div %v < 1", e.BandwidthDiv)
		}
		if e.LatencyX <= 1 && e.BandwidthDiv <= 1 {
			return fmt.Errorf("degrade with no effect (latency_x and bandwidth_div both ≤ 1)")
		}
	case Flap:
		if !isLinkClass(class) {
			return fmt.Errorf("flap needs a link target, got %q", e.Target)
		}
		if e.PeriodNS <= 0 {
			return fmt.Errorf("flap period_ns %v must be > 0", e.PeriodNS)
		}
		if e.DownNS <= 0 || e.DownNS >= e.PeriodNS {
			return fmt.Errorf("flap down_ns %v must be in (0, period_ns=%v)", e.DownNS, e.PeriodNS)
		}
		if e.RetryNS < 0 {
			return fmt.Errorf("negative flap retry_ns %v", e.RetryNS)
		}
	case Kill:
		if class != "pool" {
			return fmt.Errorf("kill needs a pool target, got %q", e.Target)
		}
		if _, err := killChannel(sub); err != nil {
			return err
		}
		if e.ToPhase != 0 || !stats.IsZero(e.FromNS) || !stats.IsZero(e.ToNS) {
			return fmt.Errorf("kill is permanent: to_phase/from_ns/to_ns must be unset")
		}
	case Capacity:
		if class != "pool" || sub != "" {
			return fmt.Errorf("capacity needs target \"pool\", got %q", e.Target)
		}
		if e.CapacityFrac <= 0 || e.CapacityFrac >= 1 {
			return fmt.Errorf("capacity_frac %v must be in (0, 1)", e.CapacityFrac)
		}
		if !stats.IsZero(e.FromNS) || !stats.IsZero(e.ToNS) {
			return fmt.Errorf("capacity is phase-granular: from_ns/to_ns must be unset")
		}
	default:
		return fmt.Errorf("unknown kind %q", e.Kind)
	}
	return nil
}

// rangesIntersect reports whether half-open ranges [a1,b1) and [a2,b2)
// intersect, with b ≤ 0 meaning open-ended.
func rangesIntersect(a1, b1, a2, b2 float64) bool {
	if b1 > 0 && a2 >= b1 {
		return false
	}
	if b2 > 0 && a1 >= b2 {
		return false
	}
	return true
}

// overlaps reports whether two events of the same kind can be active on
// the same component at the same instant, which Validate rejects so
// composed adjustments stay unambiguous.
func overlaps(a, b Event) bool {
	if a.Kind != b.Kind {
		return false
	}
	ac, as := splitTarget(a.Target)
	bc, bs := splitTarget(b.Target)
	if a.Kind == Kill {
		an, _ := killChannel(as)
		bn, _ := killChannel(bs)
		if an != -1 && bn != -1 && an != bn {
			return false // distinct channels
		}
		return true // kills are permanent, so they always co-occur
	}
	// Link classes intersect when equal or when either is the "link"
	// wildcard; sub-targets intersect when equal or when either is empty.
	if ac != bc && ac != "link" && bc != "link" {
		return false
	}
	if as != bs && as != "" && bs != "" {
		return false
	}
	if !rangesIntersect(float64(a.FromPhase), float64(a.ToPhase), float64(b.FromPhase), float64(b.ToPhase)) {
		return false
	}
	return rangesIntersect(a.FromNS, a.ToNS, b.FromNS, b.ToNS)
}

// Validate reports the first semantic error in the plan. A nil plan is
// valid (no faults).
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if err := e.validate(); err != nil {
			return fmt.Errorf("fault: event %d: %v", i, err)
		}
		for j := 0; j < i; j++ {
			if overlaps(p.Events[j], e) {
				return fmt.Errorf("fault: events %d and %d overlap (same kind %q on intersecting targets, phases and times)",
					j, i, e.Kind)
			}
		}
	}
	return nil
}
