package fault

import (
	"encoding/json"
	"testing"
)

// FuzzParsePlan checks the parser's contract: arbitrary bytes —
// malformed JSON, overlapping windows, negative times, nonsense targets
// — never panic; they either parse into a plan that re-validates and
// compiles cleanly, or are rejected with an error.
func FuzzParsePlan(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"events":[]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"events":[{"kind":"flap","target":"cxl","period_ns":2000,"down_ns":300,"retry_ns":100}]}`))
	f.Add([]byte(`{"events":[{"kind":"degrade","target":"upi:s3","from_phase":1,"to_phase":3,"latency_x":2.5}]}`))
	f.Add([]byte(`{"events":[{"kind":"kill","target":"pool:ch1","from_phase":2}]}`))
	f.Add([]byte(`{"events":[{"kind":"degrade","target":"cxl","from_ns":-1,"latency_x":2}]}`))
	f.Add([]byte(`{"events":[{"kind":"flap","target":"cxl","period_ns":1,"down_ns":2}]}`))
	f.Add([]byte(`{"events":[{"kind":"degrade","target":"cxl","latency_x":2},{"kind":"degrade","target":"cxl","latency_x":3}]}`))
	for _, p := range []*Plan{FlapPlan(), DegradePlan(3), DeadChannelPlan(0), DeadPoolPlan()} {
		b, err := json.Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			return
		}
		// An accepted plan must re-validate, survive a JSON round trip,
		// and compile into a queryable schedule without panicking.
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted plan fails Validate: %v", err)
		}
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("accepted plan does not marshal: %v", err)
		}
		p2, err := ParsePlan(b)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(p2.Events) != len(p.Events) {
			t.Fatalf("round trip changed event count %d -> %d", len(p.Events), len(p2.Events))
		}
		s := NewSchedule(p)
		for phase := 0; phase < 4; phase++ {
			s.Active(phase)
			s.Pool(phase, 2)
			if inj := s.Link("CXL", "s0", "pool", phase); inj != nil {
				inj.Adjust(0, 10, 1)
				inj.Adjust(1_000_000, 10, 1)
			}
		}
	})
}
