package fault_test

import (
	"encoding/json"
	"fmt"

	"starnuma/internal/fault"
)

// ExamplePlan shows a plan's JSON shape and that ParsePlan(Marshal(p))
// round-trips: the same document drives -faults on both CLIs.
func ExamplePlan() {
	plan := &fault.Plan{
		Name: "degraded-port",
		Events: []fault.Event{
			{Kind: fault.Degrade, Target: "cxl:s3", FromPhase: 1, LatencyX: 4, BandwidthDiv: 4},
			{Kind: fault.Kill, Target: "pool:ch0", FromPhase: 2},
		},
	}
	data, _ := json.MarshalIndent(plan, "", "  ")
	fmt.Println(string(data))

	back, err := fault.ParsePlan(data)
	fmt.Println("round trip:", err == nil && len(back.Events) == len(plan.Events))
	// Output:
	// {
	//   "name": "degraded-port",
	//   "events": [
	//     {
	//       "kind": "degrade",
	//       "target": "cxl:s3",
	//       "from_phase": 1,
	//       "latency_x": 4,
	//       "bandwidth_div": 4
	//     },
	//     {
	//       "kind": "kill",
	//       "target": "pool:ch0",
	//       "from_phase": 2
	//     }
	//   ]
	// }
	// round trip: true
}

// ExampleParsePlan loads the JSON document a user would pass via
// -faults and rejects an invalid one.
func ExampleParsePlan() {
	plan, err := fault.ParsePlan([]byte(`{
		"name": "flappy",
		"events": [
			{"kind": "flap", "target": "cxl", "from_phase": 1,
			 "period_ns": 2000, "down_ns": 300, "retry_ns": 100}
		]
	}`))
	fmt.Println(plan.Name, err)

	_, err = fault.ParsePlan([]byte(`{"events": [{"kind": "kill", "target": "cxl"}]}`))
	fmt.Println(err)
	// Output:
	// flappy <nil>
	// fault: event 0: kill needs a pool target, got "cxl"
}
