package evtrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"starnuma/internal/sim"
)

// TraceEvent is one event of an assembled Trace, with its timeline
// coordinates (pid/tid) resolved. Ts and Dur are simulated picoseconds;
// the codec maps them onto the trace clock as microsecond ticks with
// six fractional digits, so one trace-clock microsecond renders one
// simulated microsecond and picosecond precision survives the round
// trip exactly.
type TraceEvent struct {
	Name string
	Cat  string
	Ph   string
	Ts   sim.Time
	Dur  sim.Time
	Pid  int64
	Tid  int64
	Args map[string]string
}

// Trace is an assembled, serializable event timeline — the document
// cmd/tracetool reads and Perfetto/chrome://tracing load.
type Trace struct {
	Events []TraceEvent
}

// group is one Builder input: a buffer whose lanes are namespaced under
// prefix.
type group struct {
	prefix string
	buf    *Buffer
}

// Builder assembles recording buffers into a Trace. Each Add namespaces
// a buffer's lanes under a prefix (typically the run label, e.g.
// "starnuma-t16/BFS"), so multiple simulations and the runner's
// wall-clock lane coexist on one timeline. Build assigns pids to sorted
// process names and tids to sorted thread names, and emits the
// process_name/thread_name metadata Perfetto uses for labels — the
// output is a pure function of the added buffers.
type Builder struct {
	groups []group
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Add appends a buffer under the given lane prefix ("" for none). Nil
// buffers are ignored.
func (bd *Builder) Add(prefix string, b *Buffer) {
	if b == nil || len(b.Events) == 0 {
		return
	}
	bd.groups = append(bd.groups, group{prefix: prefix, buf: b})
}

// splitLane resolves an event's lane under a prefix into process and
// thread names. The lane's first path segment is the process, the rest
// the thread; empty parts default to "main".
func splitLane(prefix, lane string) (proc, thread string) {
	proc, thread, _ = strings.Cut(lane, "/")
	if proc == "" {
		proc = "main"
	}
	if thread == "" {
		thread = "main"
	}
	if prefix != "" {
		proc = prefix + "/" + proc
	}
	return proc, thread
}

// Build assembles the added buffers into a Trace.
func (bd *Builder) Build() *Trace {
	// First pass: collect the process/thread name sets.
	procSet := make(map[string]map[string]bool)
	for _, g := range bd.groups {
		for i := range g.buf.Events {
			proc, thread := splitLane(g.prefix, g.buf.Events[i].Lane)
			if procSet[proc] == nil {
				procSet[proc] = make(map[string]bool)
			}
			procSet[proc][thread] = true
		}
	}
	procs := make([]string, 0, len(procSet))
	for p := range procSet {
		procs = append(procs, p)
	}
	sort.Strings(procs)

	t := &Trace{}
	pidOf := make(map[string]int64, len(procs))
	tidOf := make(map[string]int64)
	for i, p := range procs {
		pid := int64(i + 1)
		pidOf[p] = pid
		t.Events = append(t.Events, TraceEvent{
			Name: "process_name", Ph: PhMeta, Pid: pid,
			Args: map[string]string{"name": p},
		})
		threads := make([]string, 0, len(procSet[p]))
		for th := range procSet[p] {
			threads = append(threads, th)
		}
		sort.Strings(threads)
		for j, th := range threads {
			tid := int64(j)
			tidOf[p+"\x00"+th] = tid
			t.Events = append(t.Events, TraceEvent{
				Name: "thread_name", Ph: PhMeta, Pid: pid, Tid: tid,
				Args: map[string]string{"name": th},
			})
		}
	}

	// Second pass: emit the events in added/recorded order.
	for _, g := range bd.groups {
		for i := range g.buf.Events {
			e := &g.buf.Events[i]
			proc, thread := splitLane(g.prefix, e.Lane)
			te := TraceEvent{
				Name: e.Name, Cat: e.Cat, Ph: e.Ph,
				Ts: e.Ts, Dur: e.Dur,
				Pid: pidOf[proc], Tid: tidOf[proc+"\x00"+thread],
			}
			if len(e.Args) > 0 {
				te.Args = make(map[string]string, len(e.Args))
				for _, a := range e.Args {
					te.Args[a.Key] = a.Val
				}
			}
			t.Events = append(t.Events, te)
		}
	}
	return t
}

// formatPS renders a picosecond quantity as canonical trace-clock
// microseconds: an exact decimal with six fractional digits.
func formatPS(t sim.Time) string {
	v := int64(t)
	u := uint64(v)
	sign := ""
	if v < 0 {
		sign = "-"
		u = uint64(-v)
	}
	return fmt.Sprintf("%s%d.%06d", sign, u/1_000_000, u%1_000_000)
}

// isDigits reports whether s is one or more ASCII digits.
func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// parsePS parses a trace-clock microsecond number back into
// picoseconds. Canonical decimals (what formatPS emits) parse exactly;
// exotic but valid JSON numbers (exponents) fall back to float parsing;
// unrepresentable values return an error, never a panic.
func parsePS(num string) (sim.Time, error) {
	if num == "" {
		return 0, nil
	}
	s := num
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	intPart, fracPart, hasFrac := strings.Cut(s, ".")
	if isDigits(intPart) && (!hasFrac || isDigits(fracPart)) {
		if us, err := strconv.ParseUint(intPart, 10, 64); err == nil && us <= math.MaxInt64/1_000_000 {
			f := fracPart
			if len(f) > 6 {
				f = f[:6] // sub-picosecond digits: beyond the clock's resolution
			}
			for len(f) < 6 {
				f += "0"
			}
			fv, _ := strconv.ParseInt(f, 10, 64)
			ps := int64(us)*1_000_000 + fv
			if neg {
				ps = -ps
			}
			return sim.Time(ps), nil
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("evtrace: bad timestamp %q: %w", num, err)
	}
	ps := v * 1e6
	if math.IsNaN(ps) || ps > math.MaxInt64/2 || ps < -math.MaxInt64/2 {
		return 0, fmt.Errorf("evtrace: timestamp %q out of range", num)
	}
	return sim.Time(int64(ps)), nil
}

// Encode renders the trace as canonical Chrome trace_event JSON (the
// "JSON object format": a traceEvents array plus displayTimeUnit).
// Field order, number formatting and args-key order are all fixed, so
// identical traces encode byte-identically — the contract the
// worker-count determinism test pins.
func (t *Trace) Encode() ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	for i := range t.Events {
		if i > 0 {
			b.WriteByte(',')
		}
		if err := encodeEvent(&b, &t.Events[i]); err != nil {
			return nil, err
		}
	}
	b.WriteString("]}\n")
	return b.Bytes(), nil
}

// encodeEvent writes one event object. Empty cat and args are omitted
// (Decode normalizes them back), everything else is always present.
func encodeEvent(b *bytes.Buffer, e *TraceEvent) error {
	writeStr := func(key, val string) error {
		j, err := json.Marshal(val)
		if err != nil {
			return err
		}
		fmt.Fprintf(b, `"%s":%s,`, key, j)
		return nil
	}
	b.WriteByte('{')
	if err := writeStr("name", e.Name); err != nil {
		return err
	}
	if e.Cat != "" {
		if err := writeStr("cat", e.Cat); err != nil {
			return err
		}
	}
	if err := writeStr("ph", e.Ph); err != nil {
		return err
	}
	fmt.Fprintf(b, `"ts":%s,"dur":%s,"pid":%d,"tid":%d`,
		formatPS(e.Ts), formatPS(e.Dur), e.Pid, e.Tid)
	if len(e.Args) > 0 {
		j, err := json.Marshal(e.Args) // map keys sort deterministically
		if err != nil {
			return err
		}
		fmt.Fprintf(b, `,"args":%s`, j)
	}
	b.WriteByte('}')
	return nil
}

// jsonEvent is the decoding shape of one trace event. Ts/Dur decode as
// json.Number so the literal digits reach parsePS un-rounded.
type jsonEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   json.Number       `json:"ts"`
	Dur  json.Number       `json:"dur"`
	Pid  int64             `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args"`
}

// Decode parses Chrome trace_event JSON — the object format Encode
// emits, or the bare-array legacy format — back into a Trace. Corrupt
// input returns an error, never a panic, and anything Decode accepts
// re-encodes losslessly (FuzzTraceRoundTrip).
func Decode(data []byte) (*Trace, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var raw []jsonEvent
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(trimmed, &raw); err != nil {
			return nil, fmt.Errorf("evtrace: decode: %w", err)
		}
	} else {
		var doc struct {
			TraceEvents []jsonEvent `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("evtrace: decode: %w", err)
		}
		raw = doc.TraceEvents
	}
	t := &Trace{}
	for i := range raw {
		ts, err := parsePS(string(raw[i].Ts))
		if err != nil {
			return nil, fmt.Errorf("evtrace: event %d: %w", i, err)
		}
		dur, err := parsePS(string(raw[i].Dur))
		if err != nil {
			return nil, fmt.Errorf("evtrace: event %d: %w", i, err)
		}
		args := raw[i].Args
		if len(args) == 0 {
			args = nil // canonical: absent and empty args are the same
		}
		t.Events = append(t.Events, TraceEvent{
			Name: raw[i].Name, Cat: raw[i].Cat, Ph: raw[i].Ph,
			Ts: ts, Dur: dur, Pid: raw[i].Pid, Tid: raw[i].Tid, Args: args,
		})
	}
	return t, nil
}

// Validate checks the trace against the subset of the trace_event
// schema this package emits: known phase types, named events,
// non-negative coordinates, and a process_name metadata record for
// every pid that carries events. This is the in-repo schema check the
// Perfetto-loadability criterion relies on.
func (t *Trace) Validate() error {
	named := make(map[int64]bool)
	for i := range t.Events {
		e := &t.Events[i]
		if e.Ph == PhMeta && e.Name == "process_name" {
			named[e.Pid] = true
		}
	}
	for i := range t.Events {
		e := &t.Events[i]
		switch e.Ph {
		case PhSpan, PhInstant, PhMeta:
		default:
			return fmt.Errorf("evtrace: event %d: unknown phase type %q", i, e.Ph)
		}
		if e.Name == "" {
			return fmt.Errorf("evtrace: event %d: empty name", i)
		}
		if e.Ph == PhMeta {
			continue
		}
		if e.Ts < 0 || e.Dur < 0 {
			return fmt.Errorf("evtrace: event %d (%s): negative ts/dur %v/%v", i, e.Name, e.Ts, e.Dur)
		}
		if !named[e.Pid] {
			return fmt.Errorf("evtrace: event %d (%s): pid %d has no process_name metadata", i, e.Name, e.Pid)
		}
	}
	return nil
}

// CatStat summarises one category's events — the unit cmd/tracetool
// reports and CI's -require check gates on.
type CatStat struct {
	Cat      string
	Events   int      // spans + instants
	Spans    int      // complete ("X") events
	TotalDur sim.Time // summed span duration
	MaxDur   sim.Time // longest single span
}

// CatStats aggregates the trace's non-metadata events per category,
// sorted by category name.
func (t *Trace) CatStats() []CatStat {
	byCat := make(map[string]*CatStat)
	var cats []string
	for i := range t.Events {
		e := &t.Events[i]
		if e.Ph == PhMeta {
			continue
		}
		st := byCat[e.Cat]
		if st == nil {
			st = &CatStat{Cat: e.Cat}
			byCat[e.Cat] = st
			cats = append(cats, e.Cat)
		}
		st.Events++
		if e.Ph == PhSpan {
			st.Spans++
			st.TotalDur += e.Dur
			if e.Dur > st.MaxDur {
				st.MaxDur = e.Dur
			}
		}
	}
	sort.Strings(cats)
	out := make([]CatStat, 0, len(cats))
	for _, c := range cats {
		out = append(out, *byCat[c])
	}
	return out
}
