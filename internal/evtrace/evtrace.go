// Package evtrace is the simulator's deterministic event-trace
// recorder: a timeline companion to internal/metrics' aggregate
// counters. Model code records spans and instants into a Buffer in
// simulated time; the exp/cmd layer assembles buffers into a Trace and
// encodes it as Chrome trace_event JSON that Perfetto and
// chrome://tracing load directly.
//
// The package obeys the simulation determinism contract (DESIGN.md §3,
// starnumavet's SimPackages): it never reads wall clocks, buffers
// preserve recording order, pid/tid assignment sorts lane names, and
// the JSON codec is canonical, so two identical runs emit
// byte-identical traces. Recording is off by default and nil-safe —
// every method of a nil *Buffer is an allocation-free no-op — which
// lets model code instrument unconditionally and pay nothing when
// tracing is disabled (pinned by BenchmarkEvtraceDisabled and
// TestDisabledHotPathAllocatesNothing).
//
// The package is named evtrace because internal/trace is the workload
// trace-replay package; the two are unrelated.
package evtrace

import "starnuma/internal/sim"

// Chrome trace_event phase types emitted by this package. Decode
// accepts any phase string; Validate restricts to these.
const (
	// PhSpan is a complete event ("X"): a named interval with a duration.
	PhSpan = "X"
	// PhInstant is an instant event ("i"): a point in time.
	PhInstant = "i"
	// PhMeta is a metadata event ("M"): process/thread naming.
	PhMeta = "M"
)

// Arg is one key/value annotation on an event. Values are strings so
// the codec round-trips exactly; numeric annotations format their
// value at record time.
type Arg struct {
	Key, Val string
}

// Event is one recorded event before pid/tid assignment. Lane routes
// the event onto the timeline as "process" or "process/thread"
// (everything after the first slash is the thread); the Builder maps
// lane names to trace pids/tids.
type Event struct {
	Name string
	Cat  string
	Ph   string
	Lane string
	Ts   sim.Time
	Dur  sim.Time
	Args []Arg
}

// Buffer accumulates events during one simulation scope (one timing
// window, or step B's trace pass). It is not safe for concurrent use;
// concurrency is obtained like internal/metrics — each window records
// into its own buffer and the results merge in checkpoint order.
//
// A nil *Buffer is the disabled recorder: every method is a no-op that
// performs no allocation, so call sites need no guard (hot paths still
// guard to skip argument formatting).
type Buffer struct {
	// Events is the recorded sequence, in recording order. Exported so
	// the assembly layer (core.Plan, exp) can shift and merge buffers.
	Events []Event
}

// NewBuffer returns an empty, enabled buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// Enabled reports whether the buffer records anything.
func (b *Buffer) Enabled() bool { return b != nil }

// Len returns the number of recorded events (0 for a nil buffer).
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.Events)
}

// Span records a complete event covering [ts, ts+dur).
func (b *Buffer) Span(cat, name, lane string, ts, dur sim.Time) {
	if b == nil {
		return
	}
	b.Events = append(b.Events, Event{Name: name, Cat: cat, Ph: PhSpan, Lane: lane, Ts: ts, Dur: dur})
}

// SpanArgs records a complete event with annotations. The variadic
// slice allocates, so hot paths guard with Enabled before formatting.
func (b *Buffer) SpanArgs(cat, name, lane string, ts, dur sim.Time, args ...Arg) {
	if b == nil {
		return
	}
	b.Events = append(b.Events, Event{Name: name, Cat: cat, Ph: PhSpan, Lane: lane, Ts: ts, Dur: dur, Args: args})
}

// Instant records a point event at ts.
func (b *Buffer) Instant(cat, name, lane string, ts sim.Time) {
	if b == nil {
		return
	}
	b.Events = append(b.Events, Event{Name: name, Cat: cat, Ph: PhInstant, Lane: lane, Ts: ts})
}

// InstantArgs records a point event with annotations.
func (b *Buffer) InstantArgs(cat, name, lane string, ts sim.Time, args ...Arg) {
	if b == nil {
		return
	}
	b.Events = append(b.Events, Event{Name: name, Cat: cat, Ph: PhInstant, Lane: lane, Ts: ts, Args: args})
}

// Shift adds delta to every event's timestamp — how core.Plan lays the
// step-C windows (each simulated from its own t=0) end to end on one
// continuous timeline.
func (b *Buffer) Shift(delta sim.Time) {
	if b == nil || delta == 0 {
		return
	}
	for i := range b.Events {
		b.Events[i].Ts += delta
	}
}

// Append moves o's events onto the end of b, preserving order. o may
// be nil; appending to a nil b drops the events (recording disabled).
func (b *Buffer) Append(o *Buffer) {
	if b == nil || o == nil {
		return
	}
	b.Events = append(b.Events, o.Events...)
}
