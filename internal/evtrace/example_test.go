package evtrace_test

import (
	"fmt"

	"starnuma/internal/evtrace"
)

// Example records a tiny timeline the way model code does — spans and
// instants into a Buffer, nil-safe when tracing is off — then assembles
// and encodes it as Chrome trace_event JSON that Perfetto loads.
func Example() {
	// Disabled: a nil buffer swallows everything, for free.
	var off *evtrace.Buffer
	off.Span("window", "w0", "socket0", 0, 1000)
	fmt.Println("disabled events:", off.Len())

	// Enabled: record a checkpoint window and a migration inside it.
	b := evtrace.NewBuffer()
	b.Span("window", "window 0", "socket0", 0, 2_000_000) // 2 µs of sim time
	b.SpanArgs("migrate", "migrate region 7", "socket0", 500_000, 80_000,
		evtrace.Arg{"pages", "64"}, evtrace.Arg{"to", "pool"})
	b.Instant("tlb", "shootdown stall", "socket0", 580_000)

	bd := evtrace.NewBuilder()
	bd.Add("fig8a/BFS", b)
	tr := bd.Build()
	if err := tr.Validate(); err != nil {
		fmt.Println("invalid:", err)
		return
	}
	for _, st := range tr.CatStats() {
		fmt.Printf("%-8s %d events, %d spans\n", st.Cat, st.Events, st.Spans)
	}
	// Output:
	// disabled events: 0
	// migrate  1 events, 1 spans
	// tlb      1 events, 0 spans
	// window   1 events, 1 spans
}
