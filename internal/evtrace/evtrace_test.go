package evtrace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"starnuma/internal/sim"
)

func TestNilBufferIsSafeNoOp(t *testing.T) {
	var b *Buffer
	if b.Enabled() {
		t.Fatal("nil buffer reports enabled")
	}
	if b.Len() != 0 {
		t.Fatal("nil buffer has nonzero length")
	}
	// None of these may panic or record.
	b.Span("cat", "s", "lane", 1, 2)
	b.SpanArgs("cat", "s", "lane", 1, 2, Arg{"k", "v"})
	b.Instant("cat", "i", "lane", 3)
	b.InstantArgs("cat", "i", "lane", 3, Arg{"k", "v"})
	b.Shift(100)
	b.Append(NewBuffer())
	if b.Len() != 0 {
		t.Fatal("nil buffer recorded events")
	}
}

func TestDisabledHotPathAllocatesNothing(t *testing.T) {
	var b *Buffer
	allocs := testing.AllocsPerRun(1000, func() {
		b.Span("migrate", "move", "socket0", 10, 20)
		b.Instant("tlb", "shootdown", "socket1", 30)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocated %v times per op", allocs)
	}
}

func TestRecordShiftAppend(t *testing.T) {
	w0 := NewBuffer()
	w0.Span("window", "w0", "core", 0, 100)
	w1 := NewBuffer()
	w1.Span("window", "w1", "core", 0, 50)
	w1.Shift(100) // lay window 1 after window 0

	all := NewBuffer()
	all.Append(w0)
	all.Append(w1)
	if all.Len() != 2 {
		t.Fatalf("got %d events, want 2", all.Len())
	}
	if got := all.Events[1].Ts; got != 100 {
		t.Fatalf("shifted ts = %v, want 100", got)
	}
}

func TestBuilderAssignsDeterministicLanes(t *testing.T) {
	build := func() *Trace {
		b := NewBuffer()
		b.Span("window", "w0", "socket1", 0, 10)
		b.Span("window", "w0", "socket0/core2", 5, 10)
		b.Instant("pool", "drain", "pool", 7)
		bd := NewBuilder()
		bd.Add("fig8a/BFS", b)
		return bd.Build()
	}
	t1, t2 := build(), build()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("Build is not deterministic")
	}
	e1, err := t1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := t2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1, e2) {
		t.Fatal("Encode is not byte-stable")
	}
	if err := t1.Validate(); err != nil {
		t.Fatalf("built trace fails validation: %v", err)
	}
	// Sorted process names get ascending pids: fig8a/BFS/pool=1,
	// fig8a/BFS/socket0=2, fig8a/BFS/socket1=3.
	var names []string
	for _, e := range t1.Events {
		if e.Ph == PhMeta && e.Name == "process_name" {
			names = append(names, e.Args["name"])
		}
	}
	want := []string{"fig8a/BFS/pool", "fig8a/BFS/socket0", "fig8a/BFS/socket1"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("process names = %v, want %v", names, want)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	b := NewBuffer()
	b.SpanArgs("migrate", "move", "socket0", 123456789, 987654, Arg{"pages", "64"}, Arg{"to", "pool"})
	b.Instant("fault", "flap", "link/cxl", 42)
	bd := NewBuilder()
	bd.Add("", b)
	tr := bd.Build()

	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, dec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", dec, tr)
	}
	// Picosecond resolution must survive: 123456789 ps = 123.456789 µs.
	if !bytes.Contains(enc, []byte(`"ts":123.456789`)) {
		t.Fatalf("canonical ts encoding missing from %s", enc)
	}
}

func TestDecodeLegacyArrayForm(t *testing.T) {
	raw := `[{"name":"process_name","ph":"M","ts":0,"dur":0,"pid":1,"tid":0,"args":{"name":"p"}},
	         {"name":"x","cat":"c","ph":"X","ts":1.5,"dur":2,"pid":1,"tid":0}]`
	tr, err := Decode([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(tr.Events))
	}
	if tr.Events[1].Ts != 1_500_000 {
		t.Fatalf("ts = %v ps, want 1500000", tr.Events[1].Ts)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"", "{", `{"traceEvents":1}`, `[{"ts":"zebra"}]`, `[{"ts":1e400}]`} {
		if _, err := Decode([]byte(bad)); err == nil {
			t.Fatalf("Decode(%q) succeeded, want error", bad)
		}
	}
}

func TestValidateCatchesSchemaViolations(t *testing.T) {
	named := TraceEvent{Name: "process_name", Ph: PhMeta, Pid: 1, Args: map[string]string{"name": "p"}}
	cases := []struct {
		name string
		ev   TraceEvent
		want string
	}{
		{"unknown phase", TraceEvent{Name: "x", Ph: "B", Pid: 1}, "unknown phase"},
		{"empty name", TraceEvent{Ph: PhSpan, Pid: 1}, "empty name"},
		{"negative dur", TraceEvent{Name: "x", Ph: PhSpan, Pid: 1, Dur: -1}, "negative"},
		{"unnamed pid", TraceEvent{Name: "x", Ph: PhSpan, Pid: 2}, "process_name"},
	}
	for _, tc := range cases {
		tr := &Trace{Events: []TraceEvent{named, tc.ev}}
		err := tr.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestFormatParsePSExact(t *testing.T) {
	for _, ps := range []sim.Time{0, 1, 999_999, 1_000_000, 123_456_789_012_345, -42} {
		got, err := parsePS(formatPS(ps))
		if err != nil {
			t.Fatalf("parsePS(formatPS(%d)): %v", ps, err)
		}
		if got != ps {
			t.Fatalf("round trip %d -> %q -> %d", ps, formatPS(ps), got)
		}
	}
}

func TestCatStats(t *testing.T) {
	b := NewBuffer()
	b.Span("window", "w0", "core", 0, 100)
	b.Span("window", "w1", "core", 100, 250)
	b.Span("migrate", "move", "socket0", 10, 5)
	b.Instant("migrate", "skip", "socket0", 12)
	bd := NewBuilder()
	bd.Add("", b)
	stats := bd.Build().CatStats()
	if len(stats) != 2 {
		t.Fatalf("got %d categories, want 2", len(stats))
	}
	if stats[0].Cat != "migrate" || stats[0].Events != 2 || stats[0].Spans != 1 {
		t.Fatalf("migrate stats = %+v", stats[0])
	}
	if stats[1].Cat != "window" || stats[1].Spans != 2 || stats[1].TotalDur != 350 || stats[1].MaxDur != 250 {
		t.Fatalf("window stats = %+v", stats[1])
	}
}
