package evtrace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTraceRoundTrip mirrors metrics' FuzzSnapshotRoundTrip: Decode
// must never panic on arbitrary bytes, and any input it accepts must
// reach a codec fixpoint — decode → encode → decode yields the same
// Trace and the same bytes.
func FuzzTraceRoundTrip(f *testing.F) {
	b := NewBuffer()
	b.SpanArgs("migrate", "move", "socket0", 123456789, 987654, Arg{"pages", "64"})
	b.Instant("fault", "flap", "link/cxl", 42)
	bd := NewBuilder()
	bd.Add("fig8a/BFS", b)
	tr := bd.Build()
	seed, err := tr.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"displayTimeUnit":"ns","traceEvents":[]}`))
	f.Add([]byte(`[{"name":"x","ph":"X","ts":1.5,"dur":0,"pid":1,"tid":0}]`))
	f.Add([]byte(`[{"ts":1e3}]`))
	f.Add([]byte("not json"))

	f.Fuzz(func(t *testing.T, data []byte) {
		t1, err := Decode(data)
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		enc1, err := t1.Encode()
		if err != nil {
			t.Fatalf("Encode after successful Decode: %v", err)
		}
		t2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("re-Decode of canonical encoding: %v", err)
		}
		if !reflect.DeepEqual(t1, t2) {
			t.Fatalf("decode/encode fixpoint mismatch:\n t1=%+v\n t2=%+v", t1, t2)
		}
		enc2, err := t2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encoding unstable:\n %s\n %s", enc1, enc2)
		}
	})
}
