// Package prof wires Go's profiling facilities into the CLIs: CPU and
// heap profile files plus an optional live net/http/pprof endpoint. It
// lives entirely at the cmd layer, outside the simulation determinism
// contract — profiling never touches model code.
package prof

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the parsed profiling flags.
type Flags struct {
	// CPUProfile is the CPU profile output path (-cpuprofile).
	CPUProfile string
	// MemProfile is the heap profile output path (-memprofile), written
	// at Stop after a final GC.
	MemProfile string
	// PprofAddr is the listen address of the live pprof HTTP endpoint
	// (-pprof), e.g. "localhost:6060"; empty disables it.
	PprofAddr string
}

// AddFlags registers -cpuprofile, -memprofile and -pprof on fs.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve live net/http/pprof on this address (e.g. localhost:6060)")
	return f
}

// Start begins profiling per the flags and returns a stop function the
// caller must run before exiting (defer it in main). Start fails if a
// profile file cannot be created or CPU profiling cannot begin; the
// pprof server starts best-effort in the background, reporting listen
// errors to stderr rather than failing the run.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("prof: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: -cpuprofile: %w", err)
		}
	}
	if f.PprofAddr != "" {
		go func() {
			// http.DefaultServeMux carries the /debug/pprof handlers via
			// the blank import.
			if err := http.ListenAndServe(f.PprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "prof: pprof server: %v\n", err)
			}
		}()
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: -memprofile: %v\n", err)
				return
			}
			defer mf.Close()
			runtime.GC() // settle live-heap statistics
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintf(os.Stderr, "prof: -memprofile: %v\n", err)
			}
		}
	}, nil
}
