package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	c := New(8<<20, 16) // 8 MB, 16-way: 131072 blocks, 8192 sets
	if c.CapacityBlocks() != 131072 {
		t.Fatalf("capacity = %d blocks", c.CapacityBlocks())
	}
	if c.Sets() != 8192 || c.Ways() != 16 {
		t.Fatalf("sets=%d ways=%d", c.Sets(), c.Ways())
	}
}

func TestTinyCacheClampsWays(t *testing.T) {
	c := New(128, 16) // 2 blocks only
	if c.CapacityBlocks() > 2 {
		t.Fatalf("capacity = %d", c.CapacityBlocks())
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 4) },
		func() { New(1<<20, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestInsertContainsInvalidate(t *testing.T) {
	c := New(1<<16, 4)
	if c.Contains(42) {
		t.Fatal("empty cache contains block")
	}
	if _, _, ev := c.Insert(42, false); ev {
		t.Fatal("insert into empty set evicted")
	}
	if !c.Contains(42) {
		t.Fatal("block missing after insert")
	}
	present, dirty := c.Invalidate(42)
	if !present || dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Contains(42) {
		t.Fatal("block present after invalidate")
	}
	if present, _ := c.Invalidate(42); present {
		t.Fatal("double invalidate reported present")
	}
}

func TestDirtyBitLifecycle(t *testing.T) {
	c := New(1<<16, 4)
	c.Insert(7, false)
	if !c.MarkDirty(7) {
		t.Fatal("MarkDirty on cached block failed")
	}
	if c.MarkDirty(8) {
		t.Fatal("MarkDirty on absent block succeeded")
	}
	_, dirty := c.Invalidate(7)
	if !dirty {
		t.Fatal("dirty bit lost")
	}
	// Re-insert clean then dirty: dirty wins.
	c.Insert(9, false)
	c.Insert(9, true)
	if _, d := c.Invalidate(9); !d {
		t.Fatal("re-insert should OR dirty bits")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(4*BlockBytes, 4) // one set, 4 ways
	for b := uint64(0); b < 4; b++ {
		c.Insert(b, false)
	}
	c.Touch(0) // 0 becomes MRU; LRU is now 1
	victim, _, ev := c.Insert(100, false)
	if !ev || victim != 1 {
		t.Fatalf("evicted %d (ev=%v), want 1", victim, ev)
	}
	if !c.Contains(0) || c.Contains(1) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := New(2*BlockBytes, 2)
	c.Insert(1, true)
	c.Insert(2, false)
	victim, vd, ev := c.Insert(3, false)
	if !ev || victim != 1 || !vd {
		t.Fatalf("victim=%d dirty=%v ev=%v", victim, vd, ev)
	}
	if s := c.Stats(); s.DirtyEvictions != 1 || s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTouchMiss(t *testing.T) {
	c := New(1<<12, 2)
	if c.Touch(123) {
		t.Fatal("Touch on absent block returned true")
	}
}

func TestStatsCounters(t *testing.T) {
	c := New(1<<12, 2)
	c.Insert(1, false)
	c.Insert(1, false) // hit path
	c.Touch(1)
	s := c.Stats()
	if s.Inserts != 1 || s.Hits != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// Property: the number of cached blocks never exceeds capacity, and a
// just-inserted block is always present.
func TestOccupancyInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(64*BlockBytes, 4)
		live := map[uint64]bool{}
		for i := 0; i < 500; i++ {
			b := uint64(rng.Intn(300))
			switch rng.Intn(3) {
			case 0:
				victim, _, ev := c.Insert(b, rng.Intn(2) == 0)
				live[b] = true
				if ev {
					delete(live, victim)
				}
				if !c.Contains(b) {
					return false
				}
			case 1:
				present, _ := c.Invalidate(b)
				if present != live[b] {
					return false
				}
				delete(live, b)
			case 2:
				if c.Touch(b) != live[b] {
					return false
				}
			}
			if len(live) > c.CapacityBlocks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	c := New(8<<20, 16)
	for i := 0; i < b.N; i++ {
		c.Insert(uint64(i)%200000, i%7 == 0)
	}
}

// True-LRU sanity at scale: a working set equal to capacity never
// misses after warm-up; capacity+1 in a cyclic pattern always misses
// (the classic LRU worst case).
func TestLRUWorkingSetBehaviour(t *testing.T) {
	c := New(16*BlockBytes, 16) // one fully associative set of 16
	for b := uint64(0); b < 16; b++ {
		c.Insert(b, false)
	}
	for round := 0; round < 3; round++ {
		for b := uint64(0); b < 16; b++ {
			if !c.Touch(b) {
				t.Fatalf("working set == capacity missed block %d", b)
			}
		}
	}
	// Cyclic capacity+1: every access misses under LRU.
	d := New(16*BlockBytes, 16)
	for b := uint64(0); b < 17; b++ {
		d.Insert(b, false)
	}
	for round := 0; round < 2; round++ {
		for b := uint64(0); b < 17; b++ {
			if d.Touch(b) {
				t.Fatalf("cyclic over-capacity pattern hit block %d", b)
			}
			d.Insert(b, false)
		}
	}
}
