// Package cache implements the per-socket LLC presence model used by the
// timing simulation.
//
// Following the paper's mixed-modality methodology (§IV-B), "light"
// sockets carry an LLC-sized cache whose job is not to filter the traced
// miss stream (the stream already is LLC misses) but to track which
// blocks each socket currently caches, so the coherence directory can
// decide when an access must be served by a cache-to-cache block
// transfer and when an eviction must write back dirty data.
//
// The cache is set-associative with true per-set LRU.
package cache

import "fmt"

const (
	// BlockBytes is the cache block (line) size.
	BlockBytes = 64
	// BlockShift is log2(BlockBytes).
	BlockShift = 6
)

type way struct {
	tag   uint64
	valid bool
	dirty bool
}

// LLC is a set-associative presence cache over 64-byte block addresses.
type LLC struct {
	ways    int
	sets    int
	setMask uint64
	lines   []way // sets*ways entries; within a set, index 0 is MRU
	// counters
	inserts, hits, evictions, dirtyEvictions uint64
}

// New builds an LLC holding capacityBytes of 64-byte blocks with the
// given associativity. The set count is rounded down to a power of two
// (at least one set). It panics on nonsensical arguments.
func New(capacityBytes int64, ways int) *LLC {
	if capacityBytes < BlockBytes || ways <= 0 {
		panic(fmt.Sprintf("cache: invalid capacity %d / ways %d", capacityBytes, ways))
	}
	blocks := int(capacityBytes / BlockBytes)
	if blocks < ways {
		ways = blocks
	}
	sets := 1
	for sets*2*ways <= blocks {
		sets *= 2
	}
	return &LLC{
		ways:    ways,
		sets:    sets,
		setMask: uint64(sets - 1),
		lines:   make([]way, sets*ways),
	}
}

// Sets returns the number of sets.
func (c *LLC) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *LLC) Ways() int { return c.ways }

// CapacityBlocks returns how many blocks the cache can hold.
func (c *LLC) CapacityBlocks() int { return c.sets * c.ways }

func (c *LLC) set(block uint64) []way {
	s := int(block & c.setMask)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Contains reports whether block is cached, without touching LRU state.
//
//starnuma:hotpath per-access presence probe
func (c *LLC) Contains(block uint64) bool {
	for i := range c.set(block) {
		w := &c.set(block)[i]
		if w.valid && w.tag == block {
			return true
		}
	}
	return false
}

// Touch promotes block to MRU if present and reports whether it was.
//
//starnuma:hotpath one call per access
func (c *LLC) Touch(block uint64) bool {
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			promote(set, i)
			c.hits++
			return true
		}
	}
	return false
}

// Insert places block in the cache as MRU, marking it dirty if requested.
// If the block was already present, its dirty bit is OR-ed. If the
// insertion displaces a valid block, the displaced block and its dirty
// bit are returned with evicted=true.
//
//starnuma:hotpath one call per miss fill
func (c *LLC) Insert(block uint64, dirty bool) (victim uint64, victimDirty, evicted bool) {
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].dirty = set[i].dirty || dirty
			promote(set, i)
			c.hits++
			return 0, false, false
		}
	}
	c.inserts++
	// Prefer an invalid way.
	for i := range set {
		if !set[i].valid {
			set[i] = way{tag: block, valid: true, dirty: dirty}
			promote(set, i)
			return 0, false, false
		}
	}
	// Evict LRU (last slot).
	last := len(set) - 1
	victim, victimDirty = set[last].tag, set[last].dirty
	set[last] = way{tag: block, valid: true, dirty: dirty}
	promote(set, last)
	c.evictions++
	if victimDirty {
		c.dirtyEvictions++
	}
	return victim, victimDirty, true
}

// Invalidate removes block if present, returning whether it was present
// and whether it was dirty.
//
//starnuma:hotpath one call per coherence invalidation
func (c *LLC) Invalidate(block uint64) (present, wasDirty bool) {
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			wasDirty = set[i].dirty
			set[i] = way{}
			return true, wasDirty
		}
	}
	return false, false
}

// MarkDirty sets the dirty bit on block, reporting whether it was cached.
//
//starnuma:hotpath one call per write hit
func (c *LLC) MarkDirty(block uint64) bool {
	set := c.set(block)
	for i := range set {
		if set[i].valid && set[i].tag == block {
			set[i].dirty = true
			return true
		}
	}
	return false
}

// Stats is a snapshot of the cache's lifetime counters.
type Stats struct {
	Inserts        uint64
	Hits           uint64
	Evictions      uint64
	DirtyEvictions uint64
}

// Stats returns the cache's counters.
func (c *LLC) Stats() Stats {
	return Stats{Inserts: c.inserts, Hits: c.hits, Evictions: c.evictions, DirtyEvictions: c.dirtyEvictions}
}

// promote moves index i of the set to MRU position, shifting others down.
func promote(set []way, i int) {
	if i == 0 {
		return
	}
	w := set[i]
	copy(set[1:i+1], set[0:i])
	set[0] = w
}
