// Package cache implements the per-socket LLC presence model used by the
// timing simulation.
//
// Following the paper's mixed-modality methodology (§IV-B), "light"
// sockets carry an LLC-sized cache whose job is not to filter the traced
// miss stream (the stream already is LLC misses) but to track which
// blocks each socket currently caches, so the coherence directory can
// decide when an access must be served by a cache-to-cache block
// transfer and when an eviction must write back dirty data.
//
// The cache is set-associative with true per-set LRU. Storage is
// struct-of-arrays (parallel tag and metadata arrays) and invalidation
// on Reset is by generation bump, so a timing window can recycle a
// multi-megabyte LLC without touching its arrays — the per-window
// allocation cost this replaced dominated step-C setup time.
package cache

import "fmt"

const (
	// BlockBytes is the cache block (line) size.
	BlockBytes = 64
	// BlockShift is log2(BlockBytes).
	BlockShift = 6
)

// Line metadata layout: generation<<2 | dirty<<1 | valid. A line is
// live only when its stored generation matches the cache's current one,
// which lets Reset invalidate every line in O(1). Generation 0 is never
// current, so zeroed metadata is always invalid.
const (
	metaValid = 1 << 0
	metaDirty = 1 << 1
	metaGen   = 2 // generation shift
	// maxGen bounds the generation counter; on wrap Reset falls back to
	// clearing the metadata array. 2^30 windows per LLC never happens in
	// practice, so the fallback is effectively dead code kept for
	// correctness.
	maxGen = 1<<30 - 1
)

// LLC is a set-associative presence cache over 64-byte block addresses.
type LLC struct {
	ways    int
	sets    int
	setMask uint64
	gen     uint32
	clock   uint64   // monotone LRU stamp source, shared by all sets
	tags    []uint64 // sets*ways entries; slot order within a set is arbitrary
	meta    []uint32 // parallel to tags: generation/dirty/valid
	// tick holds each line's last-use stamp. LRU is the live line with
	// the smallest stamp — equivalent to an ordered recency list, but
	// promotion is one store instead of shifting the set's arrays.
	// Stamps are unique (clock is strictly increasing) and only their
	// relative order within one window's live lines is ever compared, so
	// carrying the clock across Reset cannot be observed.
	tick []uint64
	// counters
	inserts, hits, evictions, dirtyEvictions uint64
}

// New builds an LLC holding capacityBytes of 64-byte blocks with the
// given associativity. The set count is rounded down to a power of two
// (at least one set). It panics on nonsensical arguments.
func New(capacityBytes int64, ways int) *LLC {
	if capacityBytes < BlockBytes || ways <= 0 {
		panic(fmt.Sprintf("cache: invalid capacity %d / ways %d", capacityBytes, ways))
	}
	blocks := int(capacityBytes / BlockBytes)
	if blocks < ways {
		ways = blocks
	}
	sets := 1
	for sets*2*ways <= blocks {
		sets *= 2
	}
	return &LLC{
		ways:    ways,
		sets:    sets,
		setMask: uint64(sets - 1),
		gen:     1,
		tags:    make([]uint64, sets*ways),
		meta:    make([]uint32, sets*ways),
		tick:    make([]uint64, sets*ways),
	}
}

// Reset empties the cache and zeroes its counters by bumping the line
// generation, leaving the arrays untouched. A reset LLC is
// indistinguishable from a newly built one.
//
//starnuma:coldpath once per window on scratch reuse
func (c *LLC) Reset() {
	c.gen++
	if c.gen > maxGen {
		for i := range c.meta {
			c.meta[i] = 0
		}
		c.gen = 1
	}
	c.inserts, c.hits, c.evictions, c.dirtyEvictions = 0, 0, 0, 0
}

// Sets returns the number of sets.
func (c *LLC) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *LLC) Ways() int { return c.ways }

// CapacityBlocks returns how many blocks the cache can hold.
func (c *LLC) CapacityBlocks() int { return c.sets * c.ways }

// setBase returns the first line index of block's set.
func (c *LLC) setBase(block uint64) int {
	return int(block&c.setMask) * c.ways
}

// live reports whether line i currently holds a valid block.
func (c *LLC) live(i int) bool {
	m := c.meta[i]
	return m&metaValid != 0 && m>>metaGen == c.gen
}

// Contains reports whether block is cached, without touching LRU state.
//
//starnuma:hotpath per-access presence probe
func (c *LLC) Contains(block uint64) bool {
	base := c.setBase(block)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == block && c.live(i) {
			return true
		}
	}
	return false
}

// Touch promotes block to MRU if present and reports whether it was.
//
//starnuma:hotpath one call per access
func (c *LLC) Touch(block uint64) bool {
	base := c.setBase(block)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == block && c.live(i) {
			c.stamp(i)
			c.hits++
			return true
		}
	}
	return false
}

// Insert places block in the cache as MRU, marking it dirty if requested.
// If the block was already present, its dirty bit is OR-ed. If the
// insertion displaces a valid block, the displaced block and its dirty
// bit are returned with evicted=true.
//
//starnuma:hotpath one call per miss fill
func (c *LLC) Insert(block uint64, dirty bool) (victim uint64, victimDirty, evicted bool) {
	base := c.setBase(block)
	m := c.gen<<metaGen | metaValid
	if dirty {
		m |= metaDirty
	}
	// One scan resolves both outcomes: a tag hit, or the first invalid
	// way to fill on a miss.
	invalid := -1
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == block && c.live(i) {
			c.meta[i] |= m // OR keeps an existing dirty bit
			c.stamp(i)
			c.hits++
			return 0, false, false
		}
		if invalid < 0 && !c.live(i) {
			invalid = i
		}
	}
	c.inserts++
	if invalid >= 0 {
		c.tags[invalid], c.meta[invalid] = block, m
		c.stamp(invalid)
		return 0, false, false
	}
	// Evict the LRU line: every way is live here, so the victim is the
	// one with the oldest stamp.
	lru := base
	for i := base + 1; i < base+c.ways; i++ {
		if c.tick[i] < c.tick[lru] {
			lru = i
		}
	}
	victim, victimDirty = c.tags[lru], c.meta[lru]&metaDirty != 0
	c.tags[lru], c.meta[lru] = block, m
	c.stamp(lru)
	c.evictions++
	if victimDirty {
		c.dirtyEvictions++
	}
	return victim, victimDirty, true
}

// Invalidate removes block if present, returning whether it was present
// and whether it was dirty.
//
//starnuma:hotpath one call per coherence invalidation
func (c *LLC) Invalidate(block uint64) (present, wasDirty bool) {
	base := c.setBase(block)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == block && c.live(i) {
			wasDirty = c.meta[i]&metaDirty != 0
			c.tags[i], c.meta[i] = 0, 0
			return true, wasDirty
		}
	}
	return false, false
}

// MarkDirty sets the dirty bit on block, reporting whether it was cached.
//
//starnuma:hotpath one call per write hit
func (c *LLC) MarkDirty(block uint64) bool {
	base := c.setBase(block)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == block && c.live(i) {
			c.meta[i] |= metaDirty
			return true
		}
	}
	return false
}

// Stats is a snapshot of the cache's lifetime counters.
type Stats struct {
	Inserts        uint64
	Hits           uint64
	Evictions      uint64
	DirtyEvictions uint64
}

// Stats returns the cache's counters.
func (c *LLC) Stats() Stats {
	return Stats{Inserts: c.inserts, Hits: c.hits, Evictions: c.evictions, DirtyEvictions: c.dirtyEvictions}
}

// stamp marks line i as the set's most recently used.
//
//starnuma:hotpath one call per hit or fill
func (c *LLC) stamp(i int) {
	c.clock++
	c.tick[i] = c.clock
}
