// Package stats provides the measurement types of the evaluation:
// memory-access breakdowns by type (Fig. 8c), AMAT accounting split into
// unloaded latency and contention delay (Fig. 8b), and small numeric
// helpers (geometric mean) used across experiment reports.
package stats

import (
	"encoding/json"
	"fmt"
	"math"

	"starnuma/internal/sim"
)

// AccessType classifies a serviced memory access, matching the
// categories of the paper's Fig. 8c.
type AccessType int

const (
	// Local is an access to the socket's own memory.
	Local AccessType = iota
	// OneHop is an intra-chassis remote access (single UPI hop).
	OneHop
	// TwoHop is an inter-chassis remote access.
	TwoHop
	// Pool is a memory-pool access over a CXL link.
	Pool
	// BTSocket is a coherence-triggered 3-hop socket-to-socket block
	// transfer.
	BTSocket
	// BTPool is a coherence-triggered 4-hop block transfer via the pool.
	BTPool

	// NumAccessTypes is the number of categories.
	NumAccessTypes
)

// String names the access type as in Fig. 8's legend.
func (t AccessType) String() string {
	switch t {
	case Local:
		return "Local"
	case OneHop:
		return "1-hop"
	case TwoHop:
		return "2-hop"
	case Pool:
		return "Pool"
	case BTSocket:
		return "BT_Socket"
	case BTPool:
		return "BT_Pool"
	default:
		return fmt.Sprintf("AccessType(%d)", int(t))
	}
}

// UnloadedLatency returns the paper's unloaded latency for each access
// type (§V-A): local 80ns, 1-hop 130ns, 2-hop 360ns, pool 180ns,
// BT_Socket 413ns, BT_Pool 280ns.
func (t AccessType) UnloadedLatency() sim.Time {
	switch t {
	case Local:
		return 80 * sim.Nanosecond
	case OneHop:
		return 130 * sim.Nanosecond
	case TwoHop:
		return 360 * sim.Nanosecond
	case Pool:
		return 180 * sim.Nanosecond
	case BTSocket:
		return 413 * sim.Nanosecond
	case BTPool:
		return 280 * sim.Nanosecond
	default:
		panic(fmt.Sprintf("stats: unknown access type %d", int(t)))
	}
}

// Breakdown counts accesses by type.
type Breakdown [NumAccessTypes]uint64

// Add counts one access.
func (b *Breakdown) Add(t AccessType) { b[t]++ }

// Total returns the access count across types.
func (b Breakdown) Total() uint64 {
	var n uint64
	for _, v := range b {
		n += v
	}
	return n
}

// Fractions returns each type's share of the total (zeros if empty).
func (b Breakdown) Fractions() [NumAccessTypes]float64 {
	var out [NumAccessTypes]float64
	total := b.Total()
	if total == 0 {
		return out
	}
	for i, v := range b {
		out[i] = float64(v) / float64(total)
	}
	return out
}

// Merge adds other's counts into b.
func (b *Breakdown) Merge(other Breakdown) {
	for i, v := range other {
		b[i] += v
	}
}

// AMAT is the average-memory-access-time accounting of Fig. 8b. The
// measured mean comes from the timing simulation; the unloaded component
// is derived analytically from the access breakdown exactly as the paper
// does: Σ (type fraction × type unloaded latency). Contention delay is
// the difference.
type AMAT struct {
	sumLatency sim.Time
	count      uint64
	breakdown  Breakdown
	// unloadedOverride lets a system with non-default latencies (e.g.
	// Fig. 10's 270ns pool) substitute its own per-type constants.
	unloadedOverride *[NumAccessTypes]sim.Time
}

// NewAMAT returns an empty accumulator using the paper's default
// unloaded latencies.
func NewAMAT() *AMAT { return &AMAT{} }

// SetUnloadedLatencies overrides the per-type unloaded constants, for
// sensitivity studies that change link latencies.
func (a *AMAT) SetUnloadedLatencies(lat [NumAccessTypes]sim.Time) {
	l := lat
	a.unloadedOverride = &l
}

// Observe records one completed access.
//
//starnuma:hotpath one call per timed memory access
func (a *AMAT) Observe(t AccessType, latency sim.Time) {
	a.sumLatency += latency
	a.count++
	a.breakdown.Add(t)
}

// Count returns the number of observed accesses.
func (a *AMAT) Count() uint64 { return a.count }

// SumLatency returns the total recorded access latency — the exact
// integer the stall-attribution ledger's per-window conservation
// invariant compares against (internal/attrib).
func (a *AMAT) SumLatency() sim.Time { return a.sumLatency }

// Breakdown returns the access-type counts.
func (a *AMAT) Breakdown() Breakdown { return a.breakdown }

// Measured returns the measured mean latency (0 if empty).
func (a *AMAT) Measured() sim.Time {
	if a.count == 0 {
		return 0
	}
	return sim.Time(uint64(a.sumLatency) / a.count)
}

// Unloaded returns the analytically derived zero-contention AMAT.
func (a *AMAT) Unloaded() sim.Time {
	if a.count == 0 {
		return 0
	}
	var sum float64
	fr := a.breakdown.Fractions()
	for t := AccessType(0); t < NumAccessTypes; t++ {
		lat := t.UnloadedLatency()
		if a.unloadedOverride != nil {
			lat = a.unloadedOverride[t]
		}
		sum += fr[t] * float64(lat)
	}
	return sim.Time(sum)
}

// Contention returns measured minus unloaded, floored at zero.
func (a *AMAT) Contention() sim.Time {
	d := a.Measured() - a.Unloaded()
	if d < 0 {
		return 0
	}
	return d
}

// Merge combines another accumulator into a (checkpoint aggregation).
func (a *AMAT) Merge(other *AMAT) {
	a.sumLatency += other.sumLatency
	a.count += other.count
	a.breakdown.Merge(other.breakdown)
}

// amatJSON is the serialized form of AMAT; the accumulator's fields are
// unexported, so persistence (internal/runner's result cache) goes
// through an explicit codec that round-trips losslessly.
type amatJSON struct {
	SumLatency sim.Time                  `json:"sum_latency"`
	Count      uint64                    `json:"count"`
	Breakdown  Breakdown                 `json:"breakdown"`
	Unloaded   *[NumAccessTypes]sim.Time `json:"unloaded,omitempty"`
}

// MarshalJSON serializes the accumulator, including any unloaded-latency
// override, so a decoded AMAT reports identical Measured/Unloaded/
// Contention values.
func (a *AMAT) MarshalJSON() ([]byte, error) {
	return json.Marshal(amatJSON{
		SumLatency: a.sumLatency,
		Count:      a.count,
		Breakdown:  a.breakdown,
		Unloaded:   a.unloadedOverride,
	})
}

// UnmarshalJSON restores an accumulator serialized by MarshalJSON.
func (a *AMAT) UnmarshalJSON(b []byte) error {
	var j amatJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	a.sumLatency = j.SumLatency
	a.count = j.Count
	a.breakdown = j.Breakdown
	a.unloadedOverride = j.Unloaded
	return nil
}

// GeoMean returns the geometric mean of vs, ignoring non-positive
// entries; 0 for an empty slice.
func GeoMean(vs []float64) float64 {
	var sum float64
	n := 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of the finite entries of vs, and 0
// when there are none. Skipping NaN/Inf keeps degenerate measurements
// (a window that retired nothing and produced no IPC sample) from
// poisoning whole-run aggregates.
func Mean(vs []float64) float64 {
	var sum float64
	n := 0
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SameFloat reports whether a and b are the same floating-point value,
// bit for bit: NaN matches NaN, and +0 is distinguished from -0. This
// is the sanctioned equality for determinism checks (the floatdet
// analyzer forbids raw == on floats in simulation packages), because it
// asks the question those checks mean: "did the computation produce the
// identical bits?"
func SameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// ApproxEqual reports whether a and b differ by at most tol. NaN is
// approximately equal to nothing, including itself; use SameFloat for
// bit identity.
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// IsZero reports whether v is exactly zero (of either sign), the
// sanctioned guard before division.
func IsZero(v float64) bool {
	//starnumavet:allow floatdet this helper is the sanctioned zero test the analyzer points at
	return v == 0
}
