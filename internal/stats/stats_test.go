package stats

import (
	"math"
	"testing"
	"testing/quick"

	"starnuma/internal/sim"
)

func TestAccessTypeStrings(t *testing.T) {
	want := map[AccessType]string{
		Local: "Local", OneHop: "1-hop", TwoHop: "2-hop",
		Pool: "Pool", BTSocket: "BT_Socket", BTPool: "BT_Pool",
	}
	for at, s := range want {
		if at.String() != s {
			t.Errorf("%d.String() = %q want %q", at, at.String(), s)
		}
	}
	if AccessType(42).String() != "AccessType(42)" {
		t.Error("unknown type string")
	}
}

func TestUnloadedLatenciesMatchPaper(t *testing.T) {
	want := map[AccessType]sim.Time{
		Local:    80 * sim.Nanosecond,
		OneHop:   130 * sim.Nanosecond,
		TwoHop:   360 * sim.Nanosecond,
		Pool:     180 * sim.Nanosecond,
		BTSocket: 413 * sim.Nanosecond,
		BTPool:   280 * sim.Nanosecond,
	}
	for at, lat := range want {
		if got := at.UnloadedLatency(); got != lat {
			t.Errorf("%v unloaded = %v want %v", at, got, lat)
		}
	}
}

func TestUnloadedLatencyPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NumAccessTypes.UnloadedLatency()
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(Local)
	b.Add(Local)
	b.Add(TwoHop)
	b.Add(Pool)
	if b.Total() != 4 {
		t.Fatalf("total = %d", b.Total())
	}
	fr := b.Fractions()
	if fr[Local] != 0.5 || fr[TwoHop] != 0.25 || fr[Pool] != 0.25 || fr[OneHop] != 0 {
		t.Fatalf("fractions = %v", fr)
	}
	var b2 Breakdown
	b2.Add(OneHop)
	b.Merge(b2)
	if b.Total() != 5 || b[OneHop] != 1 {
		t.Fatal("merge failed")
	}
	if (Breakdown{}).Fractions() != [NumAccessTypes]float64{} {
		t.Fatal("empty fractions not zero")
	}
}

// §II-B's worked example: 64% local + 36% to 16-shared pages of which
// 25% are 1-hop and 75% 2-hop gives AMAT 160ns; pooling those accesses
// gives 112.8ns (the paper rounds to 112).
func TestPaperSection2BWorkedExample(t *testing.T) {
	a := NewAMAT()
	for i := 0; i < 640; i++ {
		a.Observe(Local, 80*sim.Nanosecond)
	}
	for i := 0; i < 90; i++ {
		a.Observe(OneHop, 130*sim.Nanosecond)
	}
	for i := 0; i < 270; i++ {
		a.Observe(TwoHop, 360*sim.Nanosecond)
	}
	if got := a.Unloaded().Nanos(); math.Abs(got-160.0) > 0.5 {
		t.Fatalf("baseline unloaded AMAT = %vns, want 160ns", got)
	}

	p := NewAMAT()
	for i := 0; i < 640; i++ {
		p.Observe(Local, 80*sim.Nanosecond)
	}
	for i := 0; i < 360; i++ {
		p.Observe(Pool, 180*sim.Nanosecond)
	}
	if got := p.Unloaded().Nanos(); math.Abs(got-116.0) > 0.5 {
		t.Fatalf("pooled unloaded AMAT = %vns, want 116ns", got)
	}
}

func TestAMATMeasuredAndContention(t *testing.T) {
	a := NewAMAT()
	a.Observe(Local, 200*sim.Nanosecond) // 120ns of queuing over the 80ns unloaded
	a.Observe(Local, 100*sim.Nanosecond)
	if got := a.Measured(); got != 150*sim.Nanosecond {
		t.Fatalf("measured = %v", got)
	}
	if got := a.Unloaded(); got != 80*sim.Nanosecond {
		t.Fatalf("unloaded = %v", got)
	}
	if got := a.Contention(); got != 70*sim.Nanosecond {
		t.Fatalf("contention = %v", got)
	}
	if a.Count() != 2 {
		t.Fatalf("count = %d", a.Count())
	}
}

func TestAMATContentionFloor(t *testing.T) {
	a := NewAMAT()
	a.Observe(TwoHop, 100*sim.Nanosecond) // below unloaded (cannot happen in sim)
	if a.Contention() != 0 {
		t.Fatal("contention must floor at 0")
	}
}

func TestAMATEmpty(t *testing.T) {
	a := NewAMAT()
	if a.Measured() != 0 || a.Unloaded() != 0 || a.Contention() != 0 {
		t.Fatal("empty AMAT non-zero")
	}
}

func TestAMATMerge(t *testing.T) {
	a, b := NewAMAT(), NewAMAT()
	a.Observe(Local, 80*sim.Nanosecond)
	b.Observe(Pool, 180*sim.Nanosecond)
	a.Merge(b)
	if a.Count() != 2 || a.Breakdown()[Pool] != 1 {
		t.Fatal("merge failed")
	}
}

func TestAMATUnloadedOverride(t *testing.T) {
	a := NewAMAT()
	var lat [NumAccessTypes]sim.Time
	for i := range lat {
		lat[i] = AccessType(i).UnloadedLatency()
	}
	lat[Pool] = 270 * sim.Nanosecond // Fig. 10 switched pool
	a.SetUnloadedLatencies(lat)
	a.Observe(Pool, 300*sim.Nanosecond)
	if got := a.Unloaded(); got != 270*sim.Nanosecond {
		t.Fatalf("override unloaded = %v", got)
	}
	if got := a.Contention(); got != 30*sim.Nanosecond {
		t.Fatalf("override contention = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean = %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean")
	}
	if got := GeoMean([]float64{0, -1, 3}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("GeoMean skipping non-positive = %v", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("empty Mean")
	}
}

// Property: unloaded AMAT is always within [min, max] unloaded latency
// of the observed types, and contention is non-negative.
func TestAMATBoundsProperty(t *testing.T) {
	f := func(events []uint8) bool {
		a := NewAMAT()
		minL, maxL := sim.Time(math.MaxInt64), sim.Time(0)
		for _, e := range events {
			at := AccessType(e % uint8(NumAccessTypes))
			l := at.UnloadedLatency()
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
			a.Observe(at, l+sim.Time(e)*sim.Nanosecond)
		}
		if a.Count() == 0 {
			return true
		}
		u := a.Unloaded()
		return u >= minL && u <= maxL && a.Contention() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// §V-A's analytical decomposition on a realistic mixed profile: the
// unloaded component must equal the hand-computed dot product.
func TestUnloadedDecompositionDotProduct(t *testing.T) {
	a := NewAMAT()
	counts := map[AccessType]int{
		Local: 300, OneHop: 100, TwoHop: 400, Pool: 150, BTSocket: 30, BTPool: 20,
	}
	for at, n := range counts {
		for i := 0; i < n; i++ {
			a.Observe(at, at.UnloadedLatency()+25*sim.Nanosecond)
		}
	}
	var want float64
	total := 0
	for at, n := range counts {
		want += float64(n) * float64(at.UnloadedLatency())
		total += n
	}
	want /= float64(total)
	got := float64(a.Unloaded())
	if math.Abs(got-want) > float64(sim.Nanosecond) {
		t.Fatalf("unloaded = %v, want %v", got, want)
	}
	// Contention is exactly the constant 25ns we injected.
	if c := a.Contention().Nanos(); math.Abs(c-25) > 1 {
		t.Fatalf("contention = %vns, want 25ns", c)
	}
}
