package stats

import (
	"encoding/json"
	"math"
	"testing"

	"starnuma/internal/sim"
)

func TestMeanSkipsNonFinite(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{math.NaN()}, 0},
		{[]float64{math.Inf(1), math.Inf(-1)}, 0},
		{[]float64{1, 3}, 2},
		{[]float64{1, math.NaN(), 3, math.Inf(1)}, 2},
	}
	for _, c := range cases {
		got := Mean(c.in)
		if got != c.want || math.IsNaN(got) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAMATJSONRoundTrip(t *testing.T) {
	a := NewAMAT()
	var lat [NumAccessTypes]sim.Time
	for i := range lat {
		lat[i] = sim.Time(80+50*i) * sim.Nanosecond
	}
	a.SetUnloadedLatencies(lat)
	a.Observe(Local, 90*sim.Nanosecond)
	a.Observe(Local, 110*sim.Nanosecond)
	a.Observe(Pool, 250*sim.Nanosecond)
	a.Observe(BTPool, 400*sim.Nanosecond)

	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	back := NewAMAT()
	if err := json.Unmarshal(b, back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != a.Count() ||
		back.Measured() != a.Measured() ||
		back.Unloaded() != a.Unloaded() ||
		back.Contention() != a.Contention() ||
		back.Breakdown() != a.Breakdown() {
		t.Fatalf("round trip lost state:\norig %+v\nback %+v", a, back)
	}

	// Without observations the override must still survive.
	empty := NewAMAT()
	empty.SetUnloadedLatencies(lat)
	b, err = json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	back = NewAMAT()
	if err := json.Unmarshal(b, back); err != nil {
		t.Fatal(err)
	}
	if back.Unloaded() != empty.Unloaded() {
		t.Fatalf("unloaded override lost: %v != %v", back.Unloaded(), empty.Unloaded())
	}
}
