package stats_test

import (
	"fmt"

	"starnuma/internal/sim"
	"starnuma/internal/stats"
)

// Reproduce the paper's §II-B back-of-envelope AMAT estimate: 64% local
// accesses and 36% to fully-shared pages split 25%/75% between 1-hop
// and 2-hop.
func ExampleAMAT() {
	a := stats.NewAMAT()
	for i := 0; i < 64; i++ {
		a.Observe(stats.Local, 80*sim.Nanosecond)
	}
	for i := 0; i < 9; i++ {
		a.Observe(stats.OneHop, 130*sim.Nanosecond)
	}
	for i := 0; i < 27; i++ {
		a.Observe(stats.TwoHop, 360*sim.Nanosecond)
	}
	fmt.Println("unloaded AMAT:", a.Unloaded())
	// Output:
	// unloaded AMAT: 160.100ns
}
