package coherence

import (
	"math/rand"
	"testing"

	"starnuma/internal/cache"
	"starnuma/internal/topology"
)

// Co-simulation invariant: driving per-socket LLC presence caches and
// the directory together (exactly as the timing simulator does), the
// directory's sharer set for a block must always equal the set of LLCs
// holding it, and every dirty eviction must be reported as a writeback.
func TestDirectoryTracksLLCs(t *testing.T) {
	const sockets = 16
	dir := NewDirectory(sockets)
	llcs := make([]*cache.LLC, sockets)
	for i := range llcs {
		llcs[i] = cache.New(64*cache.BlockBytes, 4) // tiny: forces evictions
	}
	rng := rand.New(rand.NewSource(42))

	for i := 0; i < 20000; i++ {
		s := topology.NodeID(rng.Intn(sockets))
		block := uint64(rng.Intn(512))
		write := rng.Intn(4) == 0

		res := dir.Access(s, block, write, rng.Intn(2) == 0)
		for _, tgt := range res.Invalidate {
			llcs[tgt].Invalidate(block)
		}
		if write && res.Owner >= 0 {
			llcs[res.Owner].Invalidate(block) // RFO: ownership transfer
		}
		if victim, vd, ev := llcs[s].Insert(block, write); ev {
			dir.Evict(s, victim, vd)
		}

		// Spot-check consistency every few hundred operations.
		if i%500 == 0 {
			for b := uint64(0); b < 512; b += 37 {
				inLLCs := 0
				for _, l := range llcs {
					if l.Contains(b) {
						inLLCs++
					}
				}
				if got := dir.Sharers(b); got != inLLCs {
					t.Fatalf("op %d block %d: directory says %d sharers, LLCs hold %d",
						i, b, got, inLLCs)
				}
			}
		}
	}
}

// The directory never reports an owner that is the requester itself, and
// a block transfer's owner always currently caches the block.
func TestTransferOwnerIsCachingRemote(t *testing.T) {
	const sockets = 8
	dir := NewDirectory(sockets)
	llcs := make([]*cache.LLC, sockets)
	for i := range llcs {
		llcs[i] = cache.New(1<<14, 4)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		s := topology.NodeID(rng.Intn(sockets))
		block := uint64(rng.Intn(256))
		write := rng.Intn(3) == 0
		res := dir.Access(s, block, write, false)
		if res.Outcome != Memory {
			if res.Owner == s {
				t.Fatalf("op %d: transfer from self", i)
			}
			if !llcs[res.Owner].Contains(block) {
				t.Fatalf("op %d: owner %d does not cache block %d", i, res.Owner, block)
			}
		}
		for _, tgt := range res.Invalidate {
			llcs[tgt].Invalidate(block)
		}
		if write && res.Owner >= 0 {
			llcs[res.Owner].Invalidate(block)
		}
		if victim, vd, ev := llcs[s].Insert(block, write); ev {
			dir.Evict(s, victim, vd)
		}
	}
}
