package coherence

import (
	"testing"

	"starnuma/internal/topology"
)

func TestColdReadGoesToMemory(t *testing.T) {
	d := NewDirectory(16)
	r := d.Access(0, 100, false, false)
	if r.Outcome != Memory || r.Owner != -1 || len(r.Invalidate) != 0 {
		t.Fatalf("cold read: %+v", r)
	}
	if d.Sharers(100) != 1 {
		t.Fatalf("sharers = %d", d.Sharers(100))
	}
}

func TestDirtyRemoteReadIs3HopWithSocketHome(t *testing.T) {
	d := NewDirectory(16)
	d.Access(3, 100, true, false) // socket 3 writes: becomes dirty owner
	r := d.Access(7, 100, false, false)
	if r.Outcome != BlockTransfer3Hop || r.Owner != 3 {
		t.Fatalf("got %+v", r)
	}
	// After the transfer the line is shared, not dirty: another read hits
	// memory.
	r2 := d.Access(9, 100, false, false)
	if r2.Outcome != Memory {
		t.Fatalf("post-downgrade read: %+v", r2)
	}
	if d.Sharers(100) != 3 {
		t.Fatalf("sharers = %d", d.Sharers(100))
	}
}

func TestDirtyRemoteReadIs4HopWithPoolHome(t *testing.T) {
	d := NewDirectory(16)
	d.Access(3, 200, true, true)
	r := d.Access(7, 200, false, true)
	if r.Outcome != BlockTransfer4Hop || r.Owner != 3 {
		t.Fatalf("got %+v", r)
	}
	s := d.Stats()
	if s.BT4Hop != 1 || s.BT3Hop != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := NewDirectory(16)
	d.Access(1, 300, false, false)
	d.Access(2, 300, false, false)
	d.Access(3, 300, false, false)
	r := d.Access(4, 300, true, false)
	if len(r.Invalidate) != 3 {
		t.Fatalf("invalidate list = %v", r.Invalidate)
	}
	if d.Sharers(300) != 1 {
		t.Fatalf("sharers after write = %d", d.Sharers(300))
	}
	// Writer is now dirty owner.
	r2 := d.Access(1, 300, false, false)
	if r2.Outcome != BlockTransfer3Hop || r2.Owner != 4 {
		t.Fatalf("read after write: %+v", r2)
	}
}

func TestWriteByOwnerNoTransfer(t *testing.T) {
	d := NewDirectory(16)
	d.Access(5, 400, true, false)
	r := d.Access(5, 400, true, false)
	if r.Outcome != Memory || len(r.Invalidate) != 0 {
		t.Fatalf("owner re-write: %+v", r)
	}
}

func TestReadByDirtyOwnerStaysDirty(t *testing.T) {
	d := NewDirectory(16)
	d.Access(5, 450, true, false)
	r := d.Access(5, 450, false, false)
	if r.Outcome != Memory {
		t.Fatalf("owner read: %+v", r)
	}
	// Still dirty in 5: another socket must see a transfer.
	r2 := d.Access(6, 450, false, false)
	if r2.Outcome != BlockTransfer3Hop || r2.Owner != 5 {
		t.Fatalf("remote read: %+v", r2)
	}
}

func TestEvictionWritebackAndCleanup(t *testing.T) {
	d := NewDirectory(16)
	d.Access(2, 500, true, false)
	if wb := d.Evict(2, 500, true); !wb {
		t.Fatal("dirty owner eviction must write back")
	}
	if d.TrackedBlocks() != 0 {
		t.Fatalf("tracked = %d after last sharer evicted", d.TrackedBlocks())
	}
	// Clean sharer eviction: no writeback.
	d.Access(1, 501, false, false)
	d.Access(2, 501, false, false)
	if wb := d.Evict(1, 501, false); wb {
		t.Fatal("clean eviction should not write back")
	}
	if d.Sharers(501) != 1 {
		t.Fatalf("sharers = %d", d.Sharers(501))
	}
}

func TestEvictUntrackedBlock(t *testing.T) {
	d := NewDirectory(16)
	if wb := d.Evict(0, 999, true); !wb {
		t.Fatal("dirty eviction of untracked block should write back")
	}
	if wb := d.Evict(0, 999, false); wb {
		t.Fatal("clean eviction of untracked block should not write back")
	}
}

func TestInvalidated(t *testing.T) {
	d := NewDirectory(16)
	d.Access(1, 600, false, false)
	d.Access(2, 600, false, false)
	d.Invalidated(1, 600)
	if d.Sharers(600) != 1 {
		t.Fatalf("sharers = %d", d.Sharers(600))
	}
	d.Invalidated(2, 600)
	if d.TrackedBlocks() != 0 {
		t.Fatal("entry not cleaned up")
	}
	d.Invalidated(3, 601) // untracked: no-op
}

func TestInvalidateExcludesOwnerAndRequester(t *testing.T) {
	d := NewDirectory(16)
	d.Access(1, 700, true, false) // dirty owner 1
	d.Access(2, 700, false, false)
	// Now shared by {1,2}, clean. Socket 1 writes again.
	r := d.Access(1, 700, true, false)
	for _, s := range r.Invalidate {
		if s == 1 {
			t.Fatalf("requester in invalidate list: %v", r.Invalidate)
		}
	}
	if len(r.Invalidate) != 1 || r.Invalidate[0] != 2 {
		t.Fatalf("invalidate = %v", r.Invalidate)
	}
}

func TestStatsAndReset(t *testing.T) {
	d := NewDirectory(16)
	d.Access(0, 1, true, false)
	d.Access(1, 1, false, false)
	s := d.Stats()
	if s.Transactions != 2 || s.BT3Hop != 1 {
		t.Fatalf("stats = %+v", s)
	}
	d.ResetStats()
	if s := d.Stats(); s.Transactions != 0 {
		t.Fatalf("after reset: %+v", s)
	}
	if d.TrackedBlocks() == 0 {
		t.Fatal("ResetStats must not clear coherence state")
	}
}

func TestNewDirectoryBounds(t *testing.T) {
	for _, n := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("sockets=%d did not panic", n)
				}
			}()
			NewDirectory(n)
		}()
	}
}

func TestOutcomeString(t *testing.T) {
	if Memory.String() != "Memory" || BlockTransfer3Hop.String() != "BT3" ||
		BlockTransfer4Hop.String() != "BT4" || Outcome(9).String() != "Outcome(?)" {
		t.Fatal("Outcome.String wrong")
	}
}

// Invariant: sharer count equals the number of distinct sockets that
// accessed the block since the last write, writer resets to one.
func TestSharerCountInvariant(t *testing.T) {
	d := NewDirectory(16)
	for s := topology.NodeID(0); s < 16; s++ {
		d.Access(s, 42, false, false)
		if got := d.Sharers(42); got != int(s)+1 {
			t.Fatalf("after %d readers: sharers = %d", s+1, got)
		}
	}
	d.Access(5, 42, true, false)
	if got := d.Sharers(42); got != 1 {
		t.Fatalf("after write: sharers = %d", got)
	}
}

func BenchmarkDirectoryAccess(b *testing.B) {
	d := NewDirectory(16)
	for i := 0; i < b.N; i++ {
		d.Access(topology.NodeID(i%16), uint64(i%100000), i%5 == 0, i%3 == 0)
	}
}
