package coherence_test

import (
	"fmt"

	"starnuma/internal/coherence"
)

// A dirty block written by socket 3 is read by socket 7: with a socket
// home this is a 3-hop cache-to-cache transfer; with a pool home it
// becomes the paper's (faster on average) 4-hop pool path.
func ExampleDirectory() {
	d := coherence.NewDirectory(16)
	d.Access(3, 0x1000, true, false)
	r := d.Access(7, 0x1000, false, false)
	fmt.Println("socket home:", r.Outcome, "owner:", r.Owner)

	d.Access(3, 0x2000, true, true)
	r = d.Access(7, 0x2000, false, true)
	fmt.Println("pool home:", r.Outcome, "owner:", r.Owner)
	// Output:
	// socket home: BT3 owner: 3
	// pool home: BT4 owner: 3
}
