// Package coherence implements the directory-based MESI protocol model of
// StarNUMA (§III-C).
//
// Directory information is logically distributed across sockets and pool
// in proportion to the address space (the home node of a block is the
// home of its page); we model it as a single table keyed by block
// address, because only the *location* of the home matters for timing.
//
// On an LLC miss the directory classifies the access:
//
//   - Memory: no remote dirty copy exists; data comes from the home
//     node's DRAM.
//   - BlockTransfer3Hop: the block is dirty in another socket's LLC and
//     its home is a socket; the R→H→O→R path of Fig. 4 applies.
//   - BlockTransfer4Hop: as above but the home is the memory pool; the
//     R→H→O→H→R path applies. Counter-intuitively this is *faster* on
//     average than 3-hop (200ns vs ~333ns of network latency).
//
// Writes invalidate remote sharers; invalidation message traffic is
// charged by the caller (the timing simulator) using InvalTargets.
package coherence

import (
	"starnuma/internal/topology"
)

// Outcome classifies how an access is served.
type Outcome int

const (
	// Memory means the home node's DRAM services the access.
	Memory Outcome = iota
	// BlockTransfer3Hop is a cache-to-cache transfer with a socket home.
	BlockTransfer3Hop
	// BlockTransfer4Hop is a cache-to-cache transfer via the pool home.
	BlockTransfer4Hop
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Memory:
		return "Memory"
	case BlockTransfer3Hop:
		return "BT3"
	case BlockTransfer4Hop:
		return "BT4"
	default:
		return "Outcome(?)"
	}
}

// Result describes the directory's decision for one access.
type Result struct {
	Outcome Outcome
	// Owner is the socket that supplies data for a block transfer.
	Owner topology.NodeID
	// Invalidate lists sockets whose cached copies a write must
	// invalidate (excluding the requester and the owner).
	Invalidate []topology.NodeID
}

type entry struct {
	sharers uint32 // bitmask over sockets
	owner   int16  // socket holding the dirty copy, -1 if clean
}

// Directory tracks the global coherence state of cached blocks.
type Directory struct {
	blocks  map[uint64]entry
	sockets int

	// Counters for §V-A's coherence-activity observations.
	transactions  uint64 // all directory lookups
	bt3, bt4      uint64
	invalidations uint64
}

// NewDirectory creates an empty directory for a system with the given
// socket count (at most 32).
func NewDirectory(sockets int) *Directory {
	if sockets <= 0 || sockets > 32 {
		panic("coherence: socket count out of range")
	}
	return &Directory{blocks: make(map[uint64]entry, 1<<16), sockets: sockets}
}

// Access records socket s reading or writing block, whose current home
// node is home (a socket or the pool). homeIsPool selects the 4-hop path
// for dirty remote hits. The returned Result tells the timing layer what
// to simulate. Directory state is updated to reflect the access: the
// requester becomes a sharer (and owner, for writes).
//
//starnuma:hotpath one call per LLC-missing access
func (d *Directory) Access(s topology.NodeID, block uint64, write bool, homeIsPool bool) Result {
	d.transactions++
	e, ok := d.blocks[block]
	res := Result{Outcome: Memory, Owner: -1}
	bit := uint32(1) << uint(s)

	if ok && e.owner >= 0 && topology.NodeID(e.owner) != s {
		// Dirty in another socket: cache-to-cache transfer.
		res.Owner = topology.NodeID(e.owner)
		if homeIsPool {
			res.Outcome = BlockTransfer4Hop
			d.bt4++
		} else {
			res.Outcome = BlockTransfer3Hop
			d.bt3++
		}
	}

	if write {
		// Invalidate all other sharers.
		for i := 0; i < d.sockets; i++ {
			other := uint32(1) << uint(i)
			if e.sharers&other != 0 && topology.NodeID(i) != s && topology.NodeID(i) != res.Owner {
				//starnumavet:allow hotalloc bounded by the socket count (≤16) and only on write-to-shared, the rare coherence case
				res.Invalidate = append(res.Invalidate, topology.NodeID(i))
				d.invalidations++
			}
		}
		d.blocks[block] = entry{sharers: bit, owner: int16(s)}
	} else {
		newOwner := int16(-1)
		sharers := e.sharers | bit
		if ok && e.owner >= 0 {
			if topology.NodeID(e.owner) == s {
				newOwner = e.owner // still dirty in requester
			}
			// Remote dirty copy was transferred; it downgrades to shared
			// (the transfer writes the data back through the home).
		}
		d.blocks[block] = entry{sharers: sharers, owner: newOwner}
	}
	return res
}

// Evict records that socket s dropped block from its LLC. It reports
// whether the eviction requires a writeback (the evicted copy was the
// dirty owner copy).
//
//starnuma:hotpath one call per LLC eviction
func (d *Directory) Evict(s topology.NodeID, block uint64, dirty bool) (writeback bool) {
	e, ok := d.blocks[block]
	if !ok {
		return dirty
	}
	bit := uint32(1) << uint(s)
	e.sharers &^= bit
	if e.owner == int16(s) {
		e.owner = -1
		writeback = true
	} else {
		writeback = dirty
	}
	if e.sharers == 0 {
		delete(d.blocks, block)
	} else {
		d.blocks[block] = e
	}
	return writeback
}

// Invalidated records that socket s lost block via an invalidation (the
// caller has already removed it from the LLC model).
//
//starnuma:hotpath one call per invalidation acknowledgement
func (d *Directory) Invalidated(s topology.NodeID, block uint64) {
	e, ok := d.blocks[block]
	if !ok {
		return
	}
	e.sharers &^= uint32(1) << uint(s)
	if e.owner == int16(s) {
		e.owner = -1
	}
	if e.sharers == 0 {
		delete(d.blocks, block)
	} else {
		d.blocks[block] = e
	}
}

// Sharers returns the number of sockets currently caching block.
func (d *Directory) Sharers(block uint64) int {
	e, ok := d.blocks[block]
	if !ok {
		return 0
	}
	n := 0
	for m := e.sharers; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// TrackedBlocks returns the number of blocks with live directory state.
func (d *Directory) TrackedBlocks() int { return len(d.blocks) }

// Stats is a snapshot of the directory's lifetime activity counters.
type Stats struct {
	Transactions  uint64
	BT3Hop        uint64
	BT4Hop        uint64
	Invalidations uint64
}

// Stats returns the directory's counters.
func (d *Directory) Stats() Stats {
	return Stats{Transactions: d.transactions, BT3Hop: d.bt3, BT4Hop: d.bt4, Invalidations: d.invalidations}
}

// ResetStats clears activity counters without touching coherence state.
func (d *Directory) ResetStats() {
	d.transactions, d.bt3, d.bt4, d.invalidations = 0, 0, 0, 0
}
