// Package coherence implements the directory-based MESI protocol model of
// StarNUMA (§III-C).
//
// Directory information is logically distributed across sockets and pool
// in proportion to the address space (the home node of a block is the
// home of its page); we model it as a single table keyed by block
// address, because only the *location* of the home matters for timing.
//
// On an LLC miss the directory classifies the access:
//
//   - Memory: no remote dirty copy exists; data comes from the home
//     node's DRAM.
//   - BlockTransfer3Hop: the block is dirty in another socket's LLC and
//     its home is a socket; the R→H→O→R path of Fig. 4 applies.
//   - BlockTransfer4Hop: as above but the home is the memory pool; the
//     R→H→O→H→R path applies. Counter-intuitively this is *faster* on
//     average than 3-hop (200ns vs ~333ns of network latency).
//
// Writes invalidate remote sharers; invalidation message traffic is
// charged by the caller (the timing simulator) using InvalTargets.
package coherence

import (
	"starnuma/internal/topology"
)

// Outcome classifies how an access is served.
type Outcome int

const (
	// Memory means the home node's DRAM services the access.
	Memory Outcome = iota
	// BlockTransfer3Hop is a cache-to-cache transfer with a socket home.
	BlockTransfer3Hop
	// BlockTransfer4Hop is a cache-to-cache transfer via the pool home.
	BlockTransfer4Hop
)

// IsBlockTransfer reports whether the outcome adds cache-to-cache hops
// beyond the home's memory access. The stall-attribution ledger
// (internal/attrib) charges those extra legs' propagation to the
// coherence category.
func (o Outcome) IsBlockTransfer() bool {
	return o == BlockTransfer3Hop || o == BlockTransfer4Hop
}

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Memory:
		return "Memory"
	case BlockTransfer3Hop:
		return "BT3"
	case BlockTransfer4Hop:
		return "BT4"
	default:
		return "Outcome(?)"
	}
}

// Result describes the directory's decision for one access.
type Result struct {
	Outcome Outcome
	// Owner is the socket that supplies data for a block transfer.
	Owner topology.NodeID
	// Invalidate lists sockets whose cached copies a write must
	// invalidate (excluding the requester and the owner).
	Invalidate []topology.NodeID
}

type entry struct {
	sharers uint32 // bitmask over sockets
	owner   int16  // socket holding the dirty copy, -1 if clean
}

// denseEntry is the flat-table representation of entry: an entry is
// live only when its generation matches the directory's current one AND
// it has at least one sharer (directory invariants guarantee live
// entries always do — the dirty owner is itself a sharer).
type denseEntry struct {
	sharers uint32
	owner   int16
	gen     uint16
}

// Directory tracks the global coherence state of cached blocks. It has
// two storage modes with identical semantics: a hash map for unbounded
// address spaces (NewDirectory) and a flat generation-stamped table for
// bounded ones (NewDirectorySized) — the timing simulation knows its
// footprint in blocks, and the flat table turns the per-access map
// lookups that dominated its profile into array indexing, with O(1)
// Reset via generation bump.
type Directory struct {
	blocks  map[uint64]entry // map mode (dense == nil)
	dense   []denseEntry     // dense mode
	gen     uint16
	live    int // dense-mode tracked-block count
	sockets int

	// Counters for §V-A's coherence-activity observations.
	transactions  uint64 // all directory lookups
	bt3, bt4      uint64
	invalidations uint64
}

// NewDirectory creates an empty directory for a system with the given
// socket count (at most 32).
func NewDirectory(sockets int) *Directory {
	if sockets <= 0 || sockets > 32 {
		panic("coherence: socket count out of range")
	}
	return &Directory{blocks: make(map[uint64]entry, 1<<16), sockets: sockets}
}

// maxDenseBlocks caps the dense table at 64MB of entries; larger
// address spaces keep the map representation.
const maxDenseBlocks = 1 << 23

// NewDirectorySized creates an empty directory for block addresses in
// [0, maxBlocks). Small-enough footprints get the flat dense table;
// larger ones silently fall back to the map, so callers can always
// prefer this constructor when they know their footprint.
func NewDirectorySized(sockets, maxBlocks int) *Directory {
	if maxBlocks <= 0 || maxBlocks > maxDenseBlocks {
		return NewDirectory(sockets)
	}
	if sockets <= 0 || sockets > 32 {
		panic("coherence: socket count out of range")
	}
	return &Directory{dense: make([]denseEntry, maxBlocks), gen: 1, sockets: sockets}
}

// Reset empties the directory and zeroes its counters. In dense mode
// this is a generation bump that leaves the table untouched; a reset
// directory is indistinguishable from a newly built one.
//
//starnuma:coldpath once per window on scratch reuse
func (d *Directory) Reset() {
	if d.dense != nil {
		d.gen++
		if d.gen == 0 { // wrap: invalidate by clearing
			for i := range d.dense {
				d.dense[i] = denseEntry{}
			}
			d.gen = 1
		}
		d.live = 0
	} else {
		clear(d.blocks)
	}
	d.ResetStats()
}

// lookup fetches the entry for block, if live.
//
//starnuma:hotpath per directory operation
func (d *Directory) lookup(block uint64) (entry, bool) {
	if d.dense != nil {
		de := &d.dense[block]
		if de.gen == d.gen && de.sharers != 0 {
			return entry{sharers: de.sharers, owner: de.owner}, true
		}
		return entry{}, false
	}
	e, ok := d.blocks[block]
	return e, ok
}

// store writes the entry for block. e.sharers must be non-zero (every
// caller has just added a sharer bit).
//
//starnuma:hotpath per directory operation
func (d *Directory) store(block uint64, e entry) {
	if d.dense != nil {
		de := &d.dense[block]
		if de.gen != d.gen || de.sharers == 0 {
			d.live++
		}
		*de = denseEntry{sharers: e.sharers, owner: e.owner, gen: d.gen}
		return
	}
	d.blocks[block] = e
}

// remove drops block's entry.
//
//starnuma:hotpath per last-sharer eviction
func (d *Directory) remove(block uint64) {
	if d.dense != nil {
		de := &d.dense[block]
		if de.gen == d.gen && de.sharers != 0 {
			d.live--
		}
		de.sharers = 0
		return
	}
	delete(d.blocks, block)
}

// Access records socket s reading or writing block, whose current home
// node is home (a socket or the pool). homeIsPool selects the 4-hop path
// for dirty remote hits. The returned Result tells the timing layer what
// to simulate. Directory state is updated to reflect the access: the
// requester becomes a sharer (and owner, for writes).
//
//starnuma:hotpath one call per LLC-missing access
func (d *Directory) Access(s topology.NodeID, block uint64, write bool, homeIsPool bool) Result {
	d.transactions++
	e, ok := d.lookup(block)
	res := Result{Outcome: Memory, Owner: -1}
	bit := uint32(1) << uint(s)

	if ok && e.owner >= 0 && topology.NodeID(e.owner) != s {
		// Dirty in another socket: cache-to-cache transfer.
		res.Owner = topology.NodeID(e.owner)
		if homeIsPool {
			res.Outcome = BlockTransfer4Hop
			d.bt4++
		} else {
			res.Outcome = BlockTransfer3Hop
			d.bt3++
		}
	}

	if write {
		// Invalidate all other sharers.
		for i := 0; i < d.sockets; i++ {
			other := uint32(1) << uint(i)
			if e.sharers&other != 0 && topology.NodeID(i) != s && topology.NodeID(i) != res.Owner {
				//starnumavet:allow hotalloc bounded by the socket count (≤16) and only on write-to-shared, the rare coherence case
				res.Invalidate = append(res.Invalidate, topology.NodeID(i))
				d.invalidations++
			}
		}
		d.store(block, entry{sharers: bit, owner: int16(s)})
	} else {
		newOwner := int16(-1)
		sharers := e.sharers | bit
		if ok && e.owner >= 0 {
			if topology.NodeID(e.owner) == s {
				newOwner = e.owner // still dirty in requester
			}
			// Remote dirty copy was transferred; it downgrades to shared
			// (the transfer writes the data back through the home).
		}
		d.store(block, entry{sharers: sharers, owner: newOwner})
	}
	return res
}

// Evict records that socket s dropped block from its LLC. It reports
// whether the eviction requires a writeback (the evicted copy was the
// dirty owner copy).
//
//starnuma:hotpath one call per LLC eviction
func (d *Directory) Evict(s topology.NodeID, block uint64, dirty bool) (writeback bool) {
	e, ok := d.lookup(block)
	if !ok {
		return dirty
	}
	bit := uint32(1) << uint(s)
	e.sharers &^= bit
	if e.owner == int16(s) {
		e.owner = -1
		writeback = true
	} else {
		writeback = dirty
	}
	if e.sharers == 0 {
		d.remove(block)
	} else {
		d.store(block, e)
	}
	return writeback
}

// Invalidated records that socket s lost block via an invalidation (the
// caller has already removed it from the LLC model).
//
//starnuma:hotpath one call per invalidation acknowledgement
func (d *Directory) Invalidated(s topology.NodeID, block uint64) {
	e, ok := d.lookup(block)
	if !ok {
		return
	}
	e.sharers &^= uint32(1) << uint(s)
	if e.owner == int16(s) {
		e.owner = -1
	}
	if e.sharers == 0 {
		d.remove(block)
	} else {
		d.store(block, e)
	}
}

// Sharers returns the number of sockets currently caching block.
func (d *Directory) Sharers(block uint64) int {
	e, ok := d.lookup(block)
	if !ok {
		return 0
	}
	n := 0
	for m := e.sharers; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// TrackedBlocks returns the number of blocks with live directory state.
func (d *Directory) TrackedBlocks() int {
	if d.dense != nil {
		return d.live
	}
	return len(d.blocks)
}

// Stats is a snapshot of the directory's lifetime activity counters.
type Stats struct {
	Transactions  uint64
	BT3Hop        uint64
	BT4Hop        uint64
	Invalidations uint64
}

// Stats returns the directory's counters.
func (d *Directory) Stats() Stats {
	return Stats{Transactions: d.transactions, BT3Hop: d.bt3, BT4Hop: d.bt4, Invalidations: d.invalidations}
}

// ResetStats clears activity counters without touching coherence state.
func (d *Directory) ResetStats() {
	d.transactions, d.bt3, d.bt4, d.invalidations = 0, 0, 0, 0
}
