package coherence

import (
	"strconv"

	"starnuma/internal/evtrace"
	"starnuma/internal/sim"
	"starnuma/internal/topology"
)

// TxnTracer samples directory transactions into an event-trace buffer,
// annotated with the hop count of the coherence path taken (§III-C /
// Fig. 4: 2 hops for a remote memory access, 3 for a socket-homed block
// transfer, 4 for a pool-homed one). Recording every transaction would
// dwarf every other event class, so only every sample-th transaction is
// recorded; the counter still advances deterministically for all of
// them, keeping the selection reproducible.
//
// A nil *TxnTracer is the disabled tracer: Record is a free no-op, so
// the timing layer calls it unconditionally.
type TxnTracer struct {
	buf    *evtrace.Buffer
	sample uint64
	n      uint64
}

// NewTxnTracer creates a tracer recording every sample-th transaction
// into buf. A nil buffer or non-positive sample yields a nil (disabled)
// tracer.
func NewTxnTracer(buf *evtrace.Buffer, sample int) *TxnTracer {
	if buf == nil || sample <= 0 {
		return nil
	}
	return &TxnTracer{buf: buf, sample: uint64(sample)}
}

// hops returns the network hop count of the path res prescribes for a
// request from requester to home.
func hops(requester, home topology.NodeID, res Result) int {
	switch res.Outcome {
	case BlockTransfer3Hop:
		return 3
	case BlockTransfer4Hop:
		return 4
	default:
		if requester == home {
			return 0
		}
		return 2 // request out, data back
	}
}

// Record notes one directory transaction spanning [ts, ts+dur) on the
// requester's lane. Only sampled transactions emit an event.
func (t *TxnTracer) Record(ts, dur sim.Time, lane string, requester, home topology.NodeID, res Result) {
	if t == nil {
		return
	}
	t.n++
	if t.sample > 1 && t.n%t.sample != 1 {
		return
	}
	t.buf.SpanArgs("coherence", res.Outcome.String(), lane, ts, dur,
		evtrace.Arg{Key: "hops", Val: strconv.Itoa(hops(requester, home, res))},
		evtrace.Arg{Key: "home", Val: strconv.Itoa(int(home))})
}
