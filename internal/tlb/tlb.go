// Package tlb models the translation machinery StarNUMA's migration
// mechanism depends on (§III-D3, Fig. 5):
//
//   - per-core set-associative TLBs holding page translations;
//   - a shared TLB directory in the style of DiDi [Villavieja et al.,
//     PACT'11], which records which cores cache a translation so that a
//     page migration's shootdown is delivered only to the cores that
//     actually need it, entirely in hardware;
//   - shootdown bookkeeping: invalidated translations force a page walk
//     on next access (§IV-C: "TLB shootdowns still invalidate TLB
//     entries as needed and TLB misses trigger page walks").
//
// Steady-state TLB behaviour is already folded into each workload's
// measured single-socket IPC, so the timing simulation charges latency
// only for *shootdown-induced* walks — the marginal cost migrations add.
//
// The directory and shootdown state are flat per-page core bitsets over
// a bounded page space (the simulation knows its footprint), so the
// translation hot path performs no map operations and no allocation,
// and a timing window can Reset and reuse the whole subsystem.
package tlb

import (
	"fmt"
	"math/bits"

	"starnuma/internal/sim"
)

// coreSet is a bitset over cores (SC3 scales to 128 cores, past uint64).
type coreSet []uint64

func newCoreSet(cores int) coreSet { return make(coreSet, (cores+63)/64) }

func (s coreSet) set(c int)      { s[c/64] |= 1 << uint(c%64) }
func (s coreSet) clear(c int)    { s[c/64] &^= 1 << uint(c%64) }
func (s coreSet) has(c int) bool { return s[c/64]&(1<<uint(c%64)) != 0 }
func (s coreSet) count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}
func (s coreSet) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

type tlbEntry struct {
	page  uint32
	valid bool
}

// coreTLB is one core's set-associative TLB with per-set LRU.
type coreTLB struct {
	ways    int
	setMask uint32
	entries []tlbEntry
}

func newCoreTLB(entries, ways int) coreTLB {
	if entries < ways {
		ways = entries
	}
	sets := 1
	for sets*2*ways <= entries {
		sets *= 2
	}
	return coreTLB{ways: ways, setMask: uint32(sets - 1), entries: make([]tlbEntry, sets*ways)}
}

func (t *coreTLB) set(page uint32) []tlbEntry {
	s := int(page & t.setMask)
	return t.entries[s*t.ways : (s+1)*t.ways]
}

// lookup promotes page to MRU and reports a hit.
func (t *coreTLB) lookup(page uint32) bool {
	set := t.set(page)
	for i := range set {
		if set[i].valid && set[i].page == page {
			e := set[i]
			copy(set[1:i+1], set[0:i])
			set[0] = e
			return true
		}
	}
	return false
}

// insert fills page as MRU, returning any displaced valid translation.
func (t *coreTLB) insert(page uint32) (victim uint32, evicted bool) {
	set := t.set(page)
	for i := range set {
		if !set[i].valid {
			e := tlbEntry{page: page, valid: true}
			copy(set[1:i+1], set[0:i])
			set[0] = e
			return 0, false
		}
	}
	last := len(set) - 1
	victim = set[last].page
	e := tlbEntry{page: page, valid: true}
	copy(set[1:], set[0:last])
	set[0] = e
	return victim, true
}

// invalidate drops page if present.
func (t *coreTLB) invalidate(page uint32) bool {
	set := t.set(page)
	for i := range set {
		if set[i].valid && set[i].page == page {
			set[i] = tlbEntry{}
			return true
		}
	}
	return false
}

// Stats counts translation activity.
type Stats struct {
	Hits  uint64
	Walks uint64 // TLB misses (page table walks)
	// ShootdownWalks are walks forced by a preceding shootdown — the
	// marginal migration cost the timing model charges.
	ShootdownWalks uint64
	// Shootdowns counts migration-triggered invalidation rounds.
	Shootdowns uint64
	// ShootdownTargets sums the cores notified across shootdowns; with
	// the shared directory this is far below cores×shootdowns.
	ShootdownTargets uint64
}

// InducedStall returns the total walk delay the counted shootdown
// walks impose at the given per-walk penalty — an upper bound on the
// stall-attribution ledger's tlb category (an upper bound, not an
// equality, because warm-up walks count here but are never charged).
func (s Stats) InducedStall(penalty sim.Time) sim.Time {
	return penalty.Scale(int(s.ShootdownWalks))
}

// System is the full translation subsystem: per-core TLBs plus the
// shared directory, for page numbers in [0, pages).
type System struct {
	cores int
	pages int
	words int // bitset words per page row
	tlbs  []coreTLB
	// dir is the DiDi shared TLB directory: per-page bitsets of the
	// cores caching the translation, flattened into one array.
	dir []uint64
	// shot marks (core, page) pairs whose next walk is shootdown-induced.
	shot       []uint64
	trackedDir int
	stats      Stats
}

// Config sizes the per-core TLBs.
type Config struct {
	EntriesPerCore int
	Ways           int
}

// DefaultConfig models a typical two-level TLB's reach collapsed into
// one structure (1536 entries, 8-way), matching the paper's Fig. 5
// sketch of an L2-TLB-attached annex.
func DefaultConfig() Config { return Config{EntriesPerCore: 1536, Ways: 8} }

// NewSystem builds the subsystem for the given core count and page
// space (page numbers must stay below pages).
func NewSystem(cores, pages int, cfg Config) *System {
	if cores <= 0 || pages <= 0 || cfg.EntriesPerCore <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("tlb: invalid config cores=%d pages=%d %+v", cores, pages, cfg))
	}
	words := (cores + 63) / 64
	s := &System{
		cores: cores,
		pages: pages,
		words: words,
		dir:   make([]uint64, pages*words),
		shot:  make([]uint64, pages*words),
	}
	for i := 0; i < cores; i++ {
		s.tlbs = append(s.tlbs, newCoreTLB(cfg.EntriesPerCore, cfg.Ways))
	}
	return s
}

// Reset clears all translation, directory and shootdown state and the
// counters, making the subsystem indistinguishable from a newly built
// one while keeping its allocations.
//
//starnuma:coldpath once per window on scratch reuse
func (s *System) Reset() {
	for i := range s.dir {
		s.dir[i] = 0
	}
	for i := range s.shot {
		s.shot[i] = 0
	}
	for c := range s.tlbs {
		entries := s.tlbs[c].entries
		for i := range entries {
			entries[i] = tlbEntry{}
		}
	}
	s.trackedDir = 0
	s.stats = Stats{}
}

// dirRow returns page's directory bitset.
func (s *System) dirRow(page uint32) coreSet {
	i := int(page) * s.words
	return coreSet(s.dir[i : i+s.words])
}

// shotRow returns page's pending-shootdown bitset.
func (s *System) shotRow(page uint32) coreSet {
	i := int(page) * s.words
	return coreSet(s.shot[i : i+s.words])
}

//starnuma:coldpath out-of-range pages are a caller bug
func pagePanic(page uint32, pages int) {
	panic(fmt.Sprintf("tlb: page %d outside configured space of %d pages", page, pages))
}

// Access runs core's translation of page. It returns whether the access
// missed the TLB and, if so, whether the walk was forced by a shootdown
// (the only case the timing model charges).
//
//starnuma:hotpath one call per memory access (step C)
func (s *System) Access(core int, page uint32) (walk, shootdownInduced bool) {
	if int(page) >= s.pages {
		pagePanic(page, s.pages)
	}
	if s.tlbs[core].lookup(page) {
		s.stats.Hits++
		return false, false
	}
	s.stats.Walks++
	if row := s.shotRow(page); row.has(core) {
		row.clear(core)
		shootdownInduced = true
		s.stats.ShootdownWalks++
	}
	if victim, evicted := s.tlbs[core].insert(page); evicted {
		s.dirRemove(victim, core)
	}
	s.dirAdd(page, core)
	return true, shootdownInduced
}

//starnuma:hotpath per walk
func (s *System) dirAdd(page uint32, core int) {
	row := s.dirRow(page)
	if row.empty() {
		s.trackedDir++
	}
	row.set(core)
}

//starnuma:hotpath per TLB eviction
func (s *System) dirRemove(page uint32, core int) {
	row := s.dirRow(page)
	if !row.has(core) {
		return
	}
	row.clear(core)
	if row.empty() {
		s.trackedDir--
	}
}

// Sharers returns how many cores currently cache page's translation.
func (s *System) Sharers(page uint32) int {
	if int(page) >= s.pages {
		return 0
	}
	return s.dirRow(page).count()
}

// Shootdown invalidates page's translation everywhere it is cached,
// using the shared directory to target only the caching cores. It
// returns how many cores were notified.
//
//starnuma:hotpath one call per migration-invalidated page
func (s *System) Shootdown(page uint32) int {
	if int(page) >= s.pages {
		pagePanic(page, s.pages)
	}
	s.stats.Shootdowns++
	row := s.dirRow(page)
	notified := 0
	for w, word := range row {
		for word != 0 {
			c := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			s.tlbs[c].invalidate(page)
			notified++
		}
	}
	if notified > 0 {
		// The pending-shootdown set is *replaced*: a stale pending bit
		// belongs to a core that has not re-walked since the previous
		// shootdown of this page, and the new round's set supersedes it.
		copy(s.shotRow(page), row)
		for w := range row {
			row[w] = 0
		}
		s.trackedDir--
	}
	s.stats.ShootdownTargets += uint64(notified)
	return notified
}

// Stats returns the subsystem's counters.
func (s *System) Stats() Stats { return s.stats }

// TrackedPages returns the number of pages with live directory state.
func (s *System) TrackedPages() int { return s.trackedDir }
