package tlb_test

import (
	"fmt"

	"starnuma/internal/tlb"
)

// A page migration's shootdown reaches only the cores that cache the
// translation (the shared TLB directory), and each repays with one walk.
func ExampleSystem() {
	s := tlb.NewSystem(64, 8192, tlb.DefaultConfig())
	s.Access(0, 42)
	s.Access(9, 42)
	s.Access(30, 99) // unrelated

	fmt.Println("notified:", s.Shootdown(42))
	_, induced := s.Access(0, 42)
	fmt.Println("victim core repays a walk:", induced)
	_, induced = s.Access(30, 99)
	fmt.Println("unrelated core charged:", induced)
	// Output:
	// notified: 2
	// victim core repays a walk: true
	// unrelated core charged: false
}
