package tlb

import (
	"testing"
	"testing/quick"
)

func TestCoreSet(t *testing.T) {
	s := newCoreSet(128)
	if len(s) != 2 {
		t.Fatalf("words = %d", len(s))
	}
	s.set(0)
	s.set(63)
	s.set(64)
	s.set(127)
	if !s.has(0) || !s.has(63) || !s.has(64) || !s.has(127) || s.has(1) {
		t.Fatal("membership wrong")
	}
	if s.count() != 4 {
		t.Fatalf("count = %d", s.count())
	}
	s.clear(64)
	if s.has(64) || s.count() != 3 {
		t.Fatal("clear failed")
	}
	if s.empty() {
		t.Fatal("not empty")
	}
}

func TestAccessHitMiss(t *testing.T) {
	s := NewSystem(4, 1024, DefaultConfig())
	walk, shot := s.Access(0, 100)
	if !walk || shot {
		t.Fatalf("first access: walk=%v shot=%v", walk, shot)
	}
	walk, shot = s.Access(0, 100)
	if walk || shot {
		t.Fatalf("second access: walk=%v shot=%v", walk, shot)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Walks != 1 || st.ShootdownWalks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDirectoryTracksSharers(t *testing.T) {
	s := NewSystem(8, 1024, DefaultConfig())
	s.Access(0, 42)
	s.Access(3, 42)
	s.Access(7, 42)
	if got := s.Sharers(42); got != 3 {
		t.Fatalf("sharers = %d", got)
	}
	if s.Sharers(43) != 0 {
		t.Fatal("untracked page has sharers")
	}
	if s.TrackedPages() != 1 {
		t.Fatalf("tracked = %d", s.TrackedPages())
	}
}

func TestShootdownTargetsOnlyCachingCores(t *testing.T) {
	s := NewSystem(8, 1024, DefaultConfig())
	s.Access(1, 42)
	s.Access(5, 42)
	s.Access(2, 99) // unrelated page
	if n := s.Shootdown(42); n != 2 {
		t.Fatalf("notified %d cores, want 2", n)
	}
	if s.Sharers(42) != 0 {
		t.Fatal("directory entry survived shootdown")
	}
	// Unrelated page untouched.
	if walk, _ := s.Access(2, 99); walk {
		t.Fatal("unrelated core lost its translation")
	}
	st := s.Stats()
	if st.Shootdowns != 1 || st.ShootdownTargets != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShootdownOfUncachedPage(t *testing.T) {
	s := NewSystem(4, 1024, DefaultConfig())
	if n := s.Shootdown(7); n != 0 {
		t.Fatalf("notified %d cores for uncached page", n)
	}
}

func TestShootdownInducedWalkChargedOnce(t *testing.T) {
	s := NewSystem(4, 1024, DefaultConfig())
	s.Access(1, 42)
	s.Shootdown(42)
	walk, shot := s.Access(1, 42)
	if !walk || !shot {
		t.Fatalf("post-shootdown: walk=%v shot=%v", walk, shot)
	}
	// A second shootdown and access by a core that never cached it: the
	// walk is cold, not shootdown-induced.
	s.Shootdown(42)
	walk, shot = s.Access(3, 42)
	if !walk || shot {
		t.Fatalf("never-cached core: walk=%v shot=%v", walk, shot)
	}
	if st := s.Stats(); st.ShootdownWalks != 1 {
		t.Fatalf("shootdown walks = %d, want 1", st.ShootdownWalks)
	}
}

func TestEvictionRemovesFromDirectory(t *testing.T) {
	cfg := Config{EntriesPerCore: 4, Ways: 2} // tiny TLB forces evictions
	s := NewSystem(1, 1024, cfg)
	for p := uint32(0); p < 64; p++ {
		s.Access(0, p)
	}
	// Directory must track at most the TLB capacity.
	if got := s.TrackedPages(); got > 4 {
		t.Fatalf("directory holds %d pages, TLB capacity 4", got)
	}
}

func TestLRUWithinTLB(t *testing.T) {
	cfg := Config{EntriesPerCore: 2, Ways: 2} // one set, 2 ways
	s := NewSystem(1, 1024, cfg)
	s.Access(0, 1)
	s.Access(0, 2)
	s.Access(0, 1) // promote 1
	s.Access(0, 3) // evicts 2
	if walk, _ := s.Access(0, 1); walk {
		t.Fatal("MRU page evicted")
	}
	if walk, _ := s.Access(0, 2); !walk {
		t.Fatal("LRU page survived")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSystem(0, 1024, DefaultConfig()) },
		func() { NewSystem(4, 1024, Config{EntriesPerCore: 0, Ways: 1}) },
		func() { NewSystem(4, 1024, Config{EntriesPerCore: 16, Ways: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: the directory sharer count for a page always equals the
// number of cores whose most recent operation on it was a caching
// access (not an eviction or shootdown).
func TestDirectoryConsistencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSystem(4, 1024, Config{EntriesPerCore: 8, Ways: 2})
		for _, op := range ops {
			core := int(op % 4)
			page := uint32(op/4) % 16
			if op%7 == 0 {
				s.Shootdown(page)
			} else {
				s.Access(core, page)
			}
		}
		// Every tracked page must be consistent: a hit on an access by a
		// tracked sharer.
		for page := uint32(0); page < 16; page++ {
			n := s.Sharers(page)
			if n < 0 || n > 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	s := NewSystem(64, 8192, DefaultConfig())
	for i := 0; i < b.N; i++ {
		s.Access(i%64, uint32(i%8192))
	}
}

func BenchmarkShootdown(b *testing.B) {
	s := NewSystem(64, 8192, DefaultConfig())
	for i := 0; i < 8192; i++ {
		s.Access(i%64, uint32(i%8192))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := uint32(i % 8192)
		s.Shootdown(p)
		s.Access(i%64, p)
	}
}
