package attrib

import (
	"encoding/json"
	"fmt"
	"strings"
)

// RenderFolded renders the document as folded stacks — the
// flamegraph.pl / speedscope-importable text format: one line per
// (workload;socket;category) stack with its total picosecond weight,
// in run → socket → category order so output is deterministic.
func RenderFolded(d *Doc) string {
	var b strings.Builder
	d.Sort()
	for i := range d.Runs {
		r := &d.Runs[i]
		p := r.Profile
		nc := len(p.Categories)
		for s := 0; s < p.Sockets; s++ {
			for c := 0; c < nc; c++ {
				var sum int64
				for _, w := range p.Windows {
					sum += w.Cells[s*nc+c]
				}
				if sum == 0 {
					continue
				}
				fmt.Fprintf(&b, "%s;socket%d;%s %d\n", r.Workload, s, p.Categories[c], sum)
			}
		}
	}
	return b.String()
}

// Speedscope file-format structures (sampled profile flavour); see
// https://www.speedscope.app/file-format-schema.json.
type speedscopeFile struct {
	Schema   string              `json:"$schema"`
	Shared   speedscopeShared    `json:"shared"`
	Profiles []speedscopeProfile `json:"profiles"`
	Name     string              `json:"name"`
}

type speedscopeShared struct {
	Frames []speedscopeFrame `json:"frames"`
}

type speedscopeFrame struct {
	Name string `json:"name"`
}

type speedscopeProfile struct {
	Type       string    `json:"type"`
	Name       string    `json:"name"`
	Unit       string    `json:"unit"`
	StartValue float64   `json:"startValue"`
	EndValue   float64   `json:"endValue"`
	Samples    [][]int   `json:"samples"`
	Weights    []float64 `json:"weights"`
}

// RenderSpeedscope renders the document as a speedscope sampled
// profile: one profile per run, stacks workload → socket → category,
// weights in nanoseconds. The frame table and sample order are
// deterministic (runs sorted by key, cells in socket-major order).
func RenderSpeedscope(d *Doc) ([]byte, error) {
	d.Sort()
	var frames []speedscopeFrame
	frameIdx := func(name string) int {
		for i, f := range frames {
			if f.Name == name {
				return i
			}
		}
		frames = append(frames, speedscopeFrame{Name: name})
		return len(frames) - 1
	}
	file := speedscopeFile{
		Schema: "https://www.speedscope.app/file-format-schema.json",
		Name:   "starnuma stall attribution",
	}
	for i := range d.Runs {
		r := &d.Runs[i]
		p := r.Profile
		nc := len(p.Categories)
		prof := speedscopeProfile{
			Type: "sampled",
			Name: fmt.Sprintf("%s/%s (%s)", r.Workload, r.Policy, shortKey(r.Key)),
			Unit: "nanoseconds",
		}
		wlFrame := frameIdx(r.Workload)
		for s := 0; s < p.Sockets; s++ {
			sockFrame := frameIdx(fmt.Sprintf("socket%d", s))
			for c := 0; c < nc; c++ {
				var sum int64
				for _, w := range p.Windows {
					sum += w.Cells[s*nc+c]
				}
				if sum == 0 {
					continue
				}
				catFrame := frameIdx(p.Categories[c])
				prof.Samples = append(prof.Samples, []int{wlFrame, sockFrame, catFrame})
				prof.Weights = append(prof.Weights, float64(sum)/1000)
			}
		}
		for _, w := range prof.Weights {
			prof.EndValue += w
		}
		if prof.Samples == nil {
			prof.Samples = [][]int{}
			prof.Weights = []float64{}
		}
		file.Profiles = append(file.Profiles, prof)
	}
	file.Shared.Frames = frames
	if file.Shared.Frames == nil {
		file.Shared.Frames = []speedscopeFrame{}
	}
	if file.Profiles == nil {
		file.Profiles = []speedscopeProfile{}
	}
	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
