// Package attrib is the deterministic stall-attribution ledger of the
// step-C timing windows: every picosecond of recorded demand-access
// stall is charged to exactly one category (on-chip, DRAM service,
// DRAM queueing, socket-link and CXL propagation/queueing, coherence
// hops, TLB walks, migration and drain waits, replication write
// penalty, fault retry), bucketed per window × socket × category.
//
// The ledger is bound by the determinism contract: charges are integer
// picosecond sums accumulated in engine event order, so a profile is a
// pure function of (SystemConfig, SimConfig, spec, seed) and
// bit-identical across worker counts. Charging is passive — it never
// schedules events or alters timing — and the hot-path Charge method
// performs one bounds-free index add, so windows with attribution off
// pay nothing and windows with it on allocate only at window setup.
//
// The categories satisfy a conservation invariant checked by
// Profile.CheckConservation and `starnuma prof report -require`: each
// window's cells sum exactly to the window's total recorded stall time
// (internal/stats AMAT.SumLatency), because internal/core decomposes
// each access's latency into contiguous integer segments.
package attrib

import (
	"fmt"

	"starnuma/internal/sim"
)

// Category is one stall-attribution bucket.
type Category uint8

// The attribution categories. Every charged picosecond lands in
// exactly one of these; docs/OBSERVABILITY.md carries the catalogue of
// what each covers.
const (
	// OnChip is the memory controller's on-chip portion of an access.
	OnChip Category = iota
	// DRAM is DRAM service time: channel serialization plus device
	// latency (row activation for the banked model) after queueing.
	DRAM
	// DRAMQueue is time queued for a busy memory channel.
	DRAMQueue
	// LinkProp is propagation plus serialization on UPI/NUMALink hops.
	LinkProp
	// LinkQueue is queueing for a busy UPI/NUMALink wire.
	LinkQueue
	// CXLProp is propagation plus serialization on CXL hops.
	CXLProp
	// CXLQueue is queueing for a busy CXL wire.
	CXLQueue
	// Coherence is the propagation/serialization of the extra hops a
	// directory block transfer adds after the home's memory access
	// (forward to owner and the owner-side data legs). Queueing on
	// those hops still lands in the link/CXL queue categories —
	// contention is contention regardless of why the hop exists.
	Coherence
	// TLB covers shootdown-induced page walks and the software-tracking
	// study's minor page faults.
	TLB
	// Migration is demand stall behind an in-flight page migration.
	Migration
	// Drain is demand stall behind an in-flight fault-drain migration
	// (a page evacuating a failing pool device).
	Drain
	// Replication is the software replica-coherence write penalty.
	Replication
	// FaultRetry is flap retrain/backoff delay charged to demand sends
	// by a link fault injector.
	FaultRetry

	// NumCategories is the number of attribution buckets.
	NumCategories
)

// names indexes the canonical category spellings. They follow the
// metric-namespace grammar ([a-z0-9_-]) so they can appear verbatim in
// attrib/* metric names and scenario stall_frac assertions.
var names = [NumCategories]string{
	"on-chip",
	"dram",
	"dram-queue",
	"link-prop",
	"link-queue",
	"cxl-prop",
	"cxl-queue",
	"coherence",
	"tlb",
	"migration",
	"drain",
	"replication",
	"fault-retry",
}

// String returns the category's canonical name.
func (c Category) String() string {
	if c >= NumCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return names[c]
}

// Names returns the canonical category names in index order (a fresh
// copy, safe to retain).
func Names() []string {
	out := make([]string, NumCategories)
	copy(out, names[:])
	return out
}

// ByName resolves a canonical category name.
func ByName(name string) (Category, bool) {
	for i, n := range names {
		if n == name {
			return Category(i), true
		}
	}
	return 0, false
}

// Ledger accumulates one window's charges in a flat sockets ×
// NumCategories cell array. It is scratch state: internal/core pools
// it with the rest of the timing system and drains it into a
// WindowProfile at window end.
type Ledger struct {
	sockets int
	cells   []int64
}

// NewLedger returns a zeroed ledger for the given socket count.
func NewLedger(sockets int) *Ledger {
	return &Ledger{sockets: sockets, cells: make([]int64, sockets*int(NumCategories))}
}

// Sockets returns the ledger's socket dimension.
func (l *Ledger) Sockets() int { return l.sockets }

// Reset zeroes every cell in place.
func (l *Ledger) Reset() {
	clear(l.cells)
}

// Charge adds ps to the (socket, category) cell. The caller guarantees
// socket is in range; charging zero is a harmless no-op by arithmetic.
//
//starnuma:hotpath several calls per recorded demand access
func (l *Ledger) Charge(socket int, c Category, ps sim.Time) {
	l.cells[socket*int(NumCategories)+int(c)] += int64(ps)
}

// CategoryTotal returns the ledger's running total for one category
// across sockets (metrics harvesting reads it at window end).
func (l *Ledger) CategoryTotal(c Category) int64 {
	var s int64
	for sk := 0; sk < l.sockets; sk++ {
		s += l.cells[sk*int(NumCategories)+int(c)]
	}
	return s
}

// Window snapshots the ledger into a WindowProfile for the given phase
// with the given conservation target (the window's total recorded
// stall, internal/stats AMAT.SumLatency).
//
//starnuma:coldpath once-per-window drain
func (l *Ledger) Window(phase int, totalPS int64) WindowProfile {
	cells := make([]int64, len(l.cells))
	copy(cells, l.cells)
	return WindowProfile{Phase: phase, TotalPS: totalPS, Cells: cells}
}

// WindowProfile is one timing window's attribution: the checkpoint
// phase, the window's total recorded stall time, and the socket-major
// sockets × NumCategories cell array.
type WindowProfile struct {
	Phase   int     `json:"phase"`
	TotalPS int64   `json:"total_ps"`
	Cells   []int64 `json:"cells"`
}

// Sum returns the total charged picoseconds across all cells.
func (w WindowProfile) Sum() int64 {
	var s int64
	for _, v := range w.Cells {
		s += v
	}
	return s
}

// Profile is a run's attribution: windows in checkpoint order, plus
// the dimensions that make the cell arrays self-describing. It rides
// core.Result through the content-addressed result cache.
type Profile struct {
	Sockets    int             `json:"sockets"`
	Categories []string        `json:"categories"`
	Windows    []WindowProfile `json:"windows"`
}

// NewProfile returns an empty profile for the given socket count.
func NewProfile(sockets int) *Profile {
	return &Profile{Sockets: sockets, Categories: Names()}
}

// Append adds one window's profile. Callers append in checkpoint order
// so encoded profiles are bit-identical across worker counts.
//
//starnuma:hotpath one call per merged window on the merge goroutine
func (p *Profile) Append(w WindowProfile) {
	//starnumavet:allow hotalloc once per merged window, amortized over the run
	p.Windows = append(p.Windows, w)
}

// Validate checks the profile's shape: positive dimensions, known
// category count, and every window's cell array sized sockets ×
// categories. Decoders call it so corrupt documents fail loudly
// instead of panicking on a short slice downstream.
func (p *Profile) Validate() error {
	if p == nil {
		return fmt.Errorf("attrib: nil profile")
	}
	if p.Sockets <= 0 {
		return fmt.Errorf("attrib: profile has non-positive socket count %d", p.Sockets)
	}
	if len(p.Categories) == 0 {
		return fmt.Errorf("attrib: profile has no categories")
	}
	want := p.Sockets * len(p.Categories)
	for i, w := range p.Windows {
		if len(w.Cells) != want {
			return fmt.Errorf("attrib: window %d has %d cells, want %d (%d sockets × %d categories)",
				i, len(w.Cells), want, p.Sockets, len(p.Categories))
		}
		if w.TotalPS < 0 {
			return fmt.Errorf("attrib: window %d has negative total %d", i, w.TotalPS)
		}
	}
	return nil
}

// CheckConservation verifies the invariant that makes the profile
// trustworthy: every window's cells sum exactly to its recorded total
// stall time.
func (p *Profile) CheckConservation() error {
	if err := p.Validate(); err != nil {
		return err
	}
	for i, w := range p.Windows {
		if got := w.Sum(); got != w.TotalPS {
			return fmt.Errorf("attrib: window %d (phase %d) violates conservation: cells sum to %d ps, total stall is %d ps",
				i, w.Phase, got, w.TotalPS)
		}
	}
	return nil
}

// Total returns the charged picoseconds across all windows.
func (p *Profile) Total() int64 {
	var s int64
	for _, w := range p.Windows {
		s += w.Sum()
	}
	return s
}

// CategoryTotals returns the per-category totals (indexed like
// p.Categories), summed over windows and sockets.
func (p *Profile) CategoryTotals() []int64 {
	nc := len(p.Categories)
	out := make([]int64, nc)
	for _, w := range p.Windows {
		for i, v := range w.Cells {
			out[i%nc] += v
		}
	}
	return out
}

// SocketTotals returns the per-socket totals summed over windows and
// categories.
func (p *Profile) SocketTotals() []int64 {
	nc := len(p.Categories)
	out := make([]int64, p.Sockets)
	for _, w := range p.Windows {
		for i, v := range w.Cells {
			out[i/nc] += v
		}
	}
	return out
}

// Fraction returns the named category's share of the profile's total
// charge (0 when the profile is empty or the name unknown).
func (p *Profile) Fraction(category string) float64 {
	total := p.Total()
	if total == 0 {
		return 0
	}
	for i, n := range p.Categories {
		if n == category {
			return float64(p.CategoryTotals()[i]) / float64(total)
		}
	}
	return 0
}

// AddCategoryTotals accumulates the profile's per-category totals into
// dst, which must be indexed like p.Categories (callers aggregating
// several runs size it with len(Names())). Extra dst entries are left
// untouched; a short dst is an error by the same shape rules as
// Validate.
func (p *Profile) AddCategoryTotals(dst []int64) error {
	if len(dst) < len(p.Categories) {
		return fmt.Errorf("attrib: destination has %d entries, profile has %d categories",
			len(dst), len(p.Categories))
	}
	for i, v := range p.CategoryTotals() {
		dst[i] += v
	}
	return nil
}
