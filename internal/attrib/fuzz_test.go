package attrib

import (
	"testing"
)

// FuzzDecodeDoc pins that the profile-document decoder never panics on
// arbitrary bytes, and that anything it accepts is well-shaped enough
// for every downstream consumer (renderers, aggregation, diffs).
func FuzzDecodeDoc(f *testing.F) {
	good, err := testDoc().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte(`{"schema":"starnuma-stallprof-v1","runs":[{"key":"k","profile":{"sockets":1,"categories":["a"],"windows":[{"phase":0,"total_ps":-1,"cells":[1]}]}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDoc(data)
		if err != nil {
			return
		}
		// Accepted documents must survive every consumer without panics.
		_ = RenderReport(d, true)
		_ = RenderFolded(d)
		if _, err := RenderSpeedscope(d); err != nil {
			t.Fatalf("accepted doc fails speedscope render: %v", err)
		}
		a, _, _ := d.GroupTotals("")
		_ = RenderDiff("a", "b", a, a)
		if _, err := d.Encode(); err != nil {
			t.Fatalf("accepted doc fails re-encode: %v", err)
		}
	})
}
