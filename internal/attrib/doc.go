package attrib

import (
	"encoding/json"
	"fmt"
	"sort"
)

// DocSchema versions the on-disk stall-profile document. Decoders
// reject other schemas so stale artifacts fail loudly.
const DocSchema = "starnuma-stallprof-v1"

// DocRun is one experiment run's profile inside a document: the
// runner's content-address key plus enough labels to group runs by
// workload or policy without re-parsing the key.
type DocRun struct {
	Key      string   `json:"key"`
	Workload string   `json:"workload"`
	Policy   string   `json:"policy"`
	Profile  *Profile `json:"profile"`
}

// Doc is the stall-profile artifact the exp layer writes and the
// `starnuma prof` subcommands read: every attribution-enabled run of
// an invocation, keyed and sorted for deterministic output.
type Doc struct {
	Schema string   `json:"schema"`
	Runs   []DocRun `json:"runs"`
}

// Sort orders runs by key so encoded documents are deterministic
// regardless of accumulation order.
func (d *Doc) Sort() {
	sort.Slice(d.Runs, func(i, j int) bool { return d.Runs[i].Key < d.Runs[j].Key })
}

// Encode renders the document as indented JSON with a trailing newline
// (the repo's artifact convention).
func (d *Doc) Encode() ([]byte, error) {
	d.Sort()
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeDoc parses and validates a stall-profile document. It never
// panics on corrupt input: every failure — malformed JSON, wrong
// schema, missing or mis-shaped profiles — returns an error, which the
// fuzz harness pins.
func DecodeDoc(data []byte) (*Doc, error) {
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("attrib: parse profile document: %w", err)
	}
	if d.Schema != DocSchema {
		return nil, fmt.Errorf("attrib: profile document schema %q, want %q", d.Schema, DocSchema)
	}
	for i := range d.Runs {
		r := &d.Runs[i]
		if r.Key == "" {
			return nil, fmt.Errorf("attrib: run %d has no key", i)
		}
		if r.Profile == nil {
			return nil, fmt.Errorf("attrib: run %d (%s) has no profile", i, r.Key)
		}
		if err := r.Profile.Validate(); err != nil {
			return nil, fmt.Errorf("attrib: run %d (%s): %w", i, r.Key, err)
		}
	}
	return &d, nil
}
