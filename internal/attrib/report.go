package attrib

import (
	"fmt"
	"strings"
)

// psToMS renders picoseconds as milliseconds for human tables.
func psToMS(ps int64) string {
	return fmt.Sprintf("%.3fms", float64(ps)/1e9)
}

// share renders a fraction of total as a percentage; "-" when total is
// zero.
func share(part, total int64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%5.1f%%", 100*float64(part)/float64(total))
}

// RenderReport renders the per-run category tables of `starnuma prof
// report`: one block per run (runs sorted by key), each category's
// charged time and share of the run total, and optionally the
// per-socket split. Zero categories are elided from the rows but the
// run totals always cover every cell.
func RenderReport(d *Doc, perSocket bool) string {
	var b strings.Builder
	d.Sort()
	for i := range d.Runs {
		r := &d.Runs[i]
		p := r.Profile
		total := p.Total()
		fmt.Fprintf(&b, "run %s workload=%s policy=%s windows=%d sockets=%d total=%s\n",
			shortKey(r.Key), r.Workload, r.Policy, len(p.Windows), p.Sockets, psToMS(total))
		cats := p.CategoryTotals()
		for ci, name := range p.Categories {
			if cats[ci] == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-12s %12s  %s\n", name, psToMS(cats[ci]), share(cats[ci], total))
		}
		if perSocket {
			socks := p.SocketTotals()
			for s := 0; s < p.Sockets; s++ {
				if socks[s] == 0 {
					continue
				}
				fmt.Fprintf(&b, "  socket %-5d %12s  %s\n", s, psToMS(socks[s]), share(socks[s], total))
			}
		}
	}
	if len(d.Runs) == 0 {
		b.WriteString("no attribution runs in document\n")
	}
	return b.String()
}

// shortKey abbreviates a content-address key for table headers.
func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

// GroupTotals sums category totals and run counts over the document's
// runs whose key, workload, or policy contains substr (empty matches
// all). The totals slice is indexed like Names(); runs whose profiles
// carry a different category list are skipped and counted in skipped.
func (d *Doc) GroupTotals(substr string) (totals []int64, runs, skipped int) {
	totals = make([]int64, NumCategories)
	for i := range d.Runs {
		r := &d.Runs[i]
		if substr != "" && !strings.Contains(r.Key, substr) &&
			!strings.Contains(r.Workload, substr) && !strings.Contains(r.Policy, substr) {
			continue
		}
		if err := r.Profile.AddCategoryTotals(totals); err != nil || len(r.Profile.Categories) != int(NumCategories) {
			skipped++
			continue
		}
		runs++
	}
	return totals, runs, skipped
}

// Shift is one category's movement between two aggregates, in shares
// of each side's total.
type Shift struct {
	Category string
	APS, BPS int64
	// DeltaPP is the share change in percentage points (B − A).
	DeltaPP float64
}

// DiffTotals compares two category aggregates (indexed like Names())
// and returns the per-category share shifts in index order.
func DiffTotals(a, b []int64) []Shift {
	var ta, tb int64
	for _, v := range a {
		ta += v
	}
	for _, v := range b {
		tb += v
	}
	out := make([]Shift, 0, NumCategories)
	for c := Category(0); c < NumCategories; c++ {
		s := Shift{Category: c.String(), APS: a[c], BPS: b[c]}
		var fa, fb float64
		if ta != 0 {
			fa = float64(a[c]) / float64(ta)
		}
		if tb != 0 {
			fb = float64(b[c]) / float64(tb)
		}
		s.DeltaPP = 100 * (fb - fa)
		out = append(out, s)
	}
	return out
}

// MaxAbsShift returns the largest absolute share shift in percentage
// points — `starnuma prof diff` reports it and the acceptance tests
// assert it is nonzero between policies.
func MaxAbsShift(shifts []Shift) float64 {
	var m float64
	for _, s := range shifts {
		d := s.DeltaPP
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// RenderDiff renders the category shift table of `starnuma prof diff`:
// each category's time and share on both sides and the share movement
// in percentage points. Categories empty on both sides are elided.
func RenderDiff(labelA, labelB string, a, b []int64) string {
	var ta, tb int64
	for _, v := range a {
		ta += v
	}
	for _, v := range b {
		tb += v
	}
	var out strings.Builder
	fmt.Fprintf(&out, "a=%s total=%s\nb=%s total=%s\n", labelA, psToMS(ta), labelB, psToMS(tb))
	fmt.Fprintf(&out, "  %-12s %12s %7s  %12s %7s  %8s\n", "category", "a", "a%", "b", "b%", "Δpp")
	shifts := DiffTotals(a, b)
	for _, s := range shifts {
		if s.APS == 0 && s.BPS == 0 {
			continue
		}
		fmt.Fprintf(&out, "  %-12s %12s %7s  %12s %7s  %+8.2f\n",
			s.Category, psToMS(s.APS), share(s.APS, ta), psToMS(s.BPS), share(s.BPS, tb), s.DeltaPP)
	}
	fmt.Fprintf(&out, "max category shift: %.2fpp\n", MaxAbsShift(shifts))
	return out.String()
}
