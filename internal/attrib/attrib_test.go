package attrib

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCategoryNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Category(0); c < NumCategories; c++ {
		n := c.String()
		if n == "" || strings.HasPrefix(n, "Category(") {
			t.Fatalf("category %d has no name", c)
		}
		if seen[n] {
			t.Fatalf("duplicate category name %q", n)
		}
		seen[n] = true
		for _, r := range n {
			if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_') {
				t.Fatalf("category %q breaks the metric-name grammar (rune %q)", n, r)
			}
		}
		got, ok := ByName(n)
		if !ok || got != c {
			t.Fatalf("ByName(%q) = %v, %v", n, got, ok)
		}
	}
	if _, ok := ByName("no-such-category"); ok {
		t.Fatal("ByName accepted an unknown name")
	}
	if len(Names()) != int(NumCategories) {
		t.Fatalf("Names() has %d entries", len(Names()))
	}
	if Category(200).String() == "" {
		t.Fatal("out-of-range String empty")
	}
}

func TestLedgerChargeAndWindow(t *testing.T) {
	l := NewLedger(3)
	if l.Sockets() != 3 {
		t.Fatalf("sockets = %d", l.Sockets())
	}
	l.Charge(0, DRAM, 100)
	l.Charge(2, DRAM, 50)
	l.Charge(1, CXLQueue, 7)
	if got := l.CategoryTotal(DRAM); got != 150 {
		t.Fatalf("CategoryTotal(DRAM) = %d", got)
	}
	w := l.Window(4, 157)
	if w.Phase != 4 || w.TotalPS != 157 {
		t.Fatalf("window header %+v", w)
	}
	if w.Sum() != 157 {
		t.Fatalf("window sum = %d", w.Sum())
	}
	// The snapshot must not alias the ledger.
	l.Charge(0, DRAM, 1)
	if w.Sum() != 157 {
		t.Fatal("window snapshot aliases ledger cells")
	}
	l.Reset()
	if l.CategoryTotal(DRAM) != 0 || l.CategoryTotal(CXLQueue) != 0 {
		t.Fatal("Reset left charges behind")
	}
}

func TestChargeAllocs(t *testing.T) {
	l := NewLedger(4)
	if allocs := testing.AllocsPerRun(1000, func() {
		l.Charge(2, LinkQueue, 123)
		l.Charge(0, DRAM, 7)
	}); allocs != 0 {
		t.Fatalf("Charge allocates %v per run, want 0", allocs)
	}
}

func testProfile() *Profile {
	p := NewProfile(2)
	l := NewLedger(2)
	l.Charge(0, DRAM, 100)
	l.Charge(1, CXLProp, 40)
	p.Append(l.Window(0, 140))
	l.Reset()
	l.Charge(0, LinkQueue, 30)
	p.Append(l.Window(1, 30))
	return p
}

func TestProfileInvariants(t *testing.T) {
	p := testProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if p.Total() != 170 {
		t.Fatalf("total = %d", p.Total())
	}
	ct := p.CategoryTotals()
	if ct[DRAM] != 100 || ct[CXLProp] != 40 || ct[LinkQueue] != 30 {
		t.Fatalf("category totals %v", ct)
	}
	st := p.SocketTotals()
	if st[0] != 130 || st[1] != 40 {
		t.Fatalf("socket totals %v", st)
	}
	if f := p.Fraction("dram"); f < 0.58 || f > 0.59 {
		t.Fatalf("Fraction(dram) = %v", f)
	}
	if f := p.Fraction("unknown"); f != 0 {
		t.Fatalf("Fraction(unknown) = %v", f)
	}

	// Conservation violation is detected.
	p.Windows[0].TotalPS++
	if err := p.CheckConservation(); err == nil {
		t.Fatal("conservation violation undetected")
	}
	p.Windows[0].TotalPS--

	// Shape violations are detected.
	bad := testProfile()
	bad.Windows[1].Cells = bad.Windows[1].Cells[:3]
	if err := bad.Validate(); err == nil {
		t.Fatal("short cell array accepted")
	}
	if err := (&Profile{Sockets: 0, Categories: Names()}).Validate(); err == nil {
		t.Fatal("zero sockets accepted")
	}
	var nilP *Profile
	if err := nilP.Validate(); err == nil {
		t.Fatal("nil profile accepted")
	}
}

func testDoc() *Doc {
	return &Doc{Schema: DocSchema, Runs: []DocRun{
		{Key: "bbb", Workload: "CC", Policy: "starnuma", Profile: testProfile()},
		{Key: "aaa", Workload: "BFS", Policy: "oracle", Profile: testProfile()},
	}}
}

func TestDocRoundTrip(t *testing.T) {
	d := testDoc()
	b, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDoc(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 2 || got.Runs[0].Key != "aaa" {
		t.Fatalf("decoded doc %+v", got)
	}
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("re-encode not byte-identical")
	}
}

func TestDecodeDocRejects(t *testing.T) {
	cases := []string{
		"",
		"{",
		`{"schema":"wrong","runs":[]}`,
		`{"schema":"starnuma-stallprof-v1","runs":[{"key":"","profile":{"sockets":1,"categories":["x"],"windows":[]}}]}`,
		`{"schema":"starnuma-stallprof-v1","runs":[{"key":"k"}]}`,
		`{"schema":"starnuma-stallprof-v1","runs":[{"key":"k","profile":{"sockets":1,"categories":["x"],"windows":[{"phase":0,"total_ps":1,"cells":[1,2]}]}}]}`,
	}
	for i, c := range cases {
		if _, err := DecodeDoc([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGroupTotalsAndDiff(t *testing.T) {
	d := testDoc()
	all, runs, skipped := d.GroupTotals("")
	if runs != 2 || skipped != 0 {
		t.Fatalf("runs=%d skipped=%d", runs, skipped)
	}
	if all[DRAM] != 200 {
		t.Fatalf("aggregate dram = %d", all[DRAM])
	}
	only, runs, _ := d.GroupTotals("oracle")
	if runs != 1 || only[DRAM] != 100 {
		t.Fatalf("filtered runs=%d dram=%d", runs, only[DRAM])
	}
	none, runs, _ := d.GroupTotals("zzz")
	if runs != 0 || none[DRAM] != 0 {
		t.Fatal("empty filter group not empty")
	}

	a := make([]int64, NumCategories)
	b := make([]int64, NumCategories)
	a[CXLProp], a[CXLQueue] = 80, 20
	b[CXLProp], b[CXLQueue] = 20, 80
	shifts := DiffTotals(a, b)
	if shifts[CXLQueue].DeltaPP < 59 || shifts[CXLQueue].DeltaPP > 61 {
		t.Fatalf("cxl-queue shift = %v", shifts[CXLQueue].DeltaPP)
	}
	if m := MaxAbsShift(shifts); m < 59 || m > 61 {
		t.Fatalf("max shift = %v", m)
	}
	if m := MaxAbsShift(DiffTotals(a, a)); m != 0 {
		t.Fatalf("self-diff shift = %v", m)
	}
}

func TestRenderers(t *testing.T) {
	d := testDoc()
	rep := RenderReport(d, true)
	for _, want := range []string{"workload=BFS", "workload=CC", "dram", "socket"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	if rep := RenderReport(&Doc{Schema: DocSchema}, false); !strings.Contains(rep, "no attribution runs") {
		t.Fatalf("empty report: %q", rep)
	}

	a, _, _ := d.GroupTotals("oracle")
	b, _, _ := d.GroupTotals("starnuma")
	diff := RenderDiff("oracle", "starnuma", a, b)
	if !strings.Contains(diff, "max category shift") {
		t.Fatalf("diff output:\n%s", diff)
	}

	folded := RenderFolded(d)
	if !strings.Contains(folded, "CC;socket0;dram 100") {
		t.Fatalf("folded output:\n%s", folded)
	}

	ss, err := RenderSpeedscope(d)
	if err != nil {
		t.Fatal(err)
	}
	var parsed speedscopeFile
	if err := json.Unmarshal(ss, &parsed); err != nil {
		t.Fatalf("speedscope output not JSON: %v", err)
	}
	if !strings.Contains(parsed.Schema, "file-format-schema") {
		t.Fatal("speedscope schema header missing")
	}
	if len(parsed.Shared.Frames) == 0 {
		t.Fatal("speedscope frame table empty")
	}
	if len(parsed.Profiles) != 2 {
		t.Fatalf("speedscope profiles = %d", len(parsed.Profiles))
	}
	// Every sample must index into the frame table.
	for _, p := range parsed.Profiles {
		for _, s := range p.Samples {
			for _, fi := range s {
				if fi < 0 || fi >= len(parsed.Shared.Frames) {
					t.Fatalf("sample frame index %d out of range", fi)
				}
			}
		}
	}
}
