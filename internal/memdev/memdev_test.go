package memdev

import (
	"testing"
	"testing/quick"

	"starnuma/internal/fault"

	"starnuma/internal/sim"
)

func TestUnloadedLocalAccessIs80ns(t *testing.T) {
	c := NewController("s0", DefaultSocketConfig())
	if got := c.UnloadedLatency(); got != 80*sim.Nanosecond {
		t.Fatalf("unloaded = %v, want 80ns (paper §II-A)", got)
	}
	done, q := c.Access(0, 0x1000, 64)
	if q != 0 {
		t.Fatalf("queuing on idle controller = %v", q)
	}
	// 30ns on-chip + 64B/38.4GBps serialization (1.67ns) + 50ns DRAM.
	want := 30*sim.Nanosecond + sim.FromNanos(64.0/38.4) + 50*sim.Nanosecond
	if done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
}

func TestChannelInterleaving(t *testing.T) {
	c := NewController("pool", DefaultPoolConfig())
	// Blocks 0 and 1 must land on different channels.
	c.Access(0, 0, 64)
	c.Access(0, 64, 64)
	st := c.Stats()
	if len(st) != 2 {
		t.Fatalf("channels = %d", len(st))
	}
	if st[0].Messages != 1 || st[1].Messages != 1 {
		t.Fatalf("interleaving failed: %d/%d", st[0].Messages, st[1].Messages)
	}
}

func TestChannelQueuing(t *testing.T) {
	c := NewController("s0", DefaultSocketConfig())
	c.Access(0, 0, 64)
	_, q := c.Access(0, 4096, 64) // same single channel, same arrival
	if q <= 0 {
		t.Fatalf("second access saw no queuing: %v", q)
	}
}

func TestReset(t *testing.T) {
	c := NewController("s0", DefaultSocketConfig())
	c.Access(0, 0, 64)
	c.Reset()
	for _, s := range c.Stats() {
		if s.Messages != 0 {
			t.Fatalf("reset left stats %+v", s)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Channels: 0, ChannelBW: 1},
		{Channels: 1, OnChip: -1},
		{Channels: 1, DRAMLatency: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			NewController("bad", cfg)
		}()
	}
}

// Property: accesses never complete before on-chip + DRAM latency, and
// channel selection is always in range.
func TestAccessLowerBoundProperty(t *testing.T) {
	c := NewController("p", DefaultPoolConfig())
	min := c.UnloadedLatency()
	f := func(addr uint64, gap uint16) bool {
		now := sim.Time(gap) * sim.Nanosecond
		done, q := c.Access(now, addr, 64)
		return done >= now+min && q >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkControllerAccess(b *testing.B) {
	c := NewController("b", DefaultSocketConfig())
	for i := 0; i < b.N; i++ {
		c.Access(sim.Time(i)*sim.Nanosecond, uint64(i)<<6, 64)
	}
}

func bankedConfig() Config {
	hit, miss := DefaultBankLatencies()
	return Config{
		Channels: 1, ChannelBW: 38.4, OnChip: 30 * sim.Nanosecond,
		BanksPerChannel: 8, RowHitLatency: hit, RowMissLatency: miss,
	}
}

func TestBankedRowBufferHit(t *testing.T) {
	c := NewController("b", bankedConfig())
	// First access to a row: miss. Second to the same row: hit, cheaper.
	done1, _ := c.Access(0, 0x1000, 64)
	done2, _ := c.Access(done1, 0x1000, 64)
	miss := done1
	hit := done2 - done1
	if hit >= miss {
		t.Fatalf("row hit (%v) not cheaper than miss (%v)", hit, miss)
	}
	st := c.BankStats()
	if st[0].RowHits != 1 || st[0].RowMisses != 1 {
		t.Fatalf("bank stats = %+v", st)
	}
}

func TestBankedRowConflict(t *testing.T) {
	c := NewController("b", bankedConfig())
	c.Access(0, 0, 64)
	// Same bank, different row (stride = rowBytes * banks).
	_, q := c.Access(0, uint64(rowBytes*8), 64)
	if q == 0 {
		t.Fatal("bank conflict saw no queuing")
	}
	st := c.BankStats()
	if st[0].RowMisses != 2 {
		t.Fatalf("bank stats = %+v", st)
	}
}

func TestBankedUnloadedLatency(t *testing.T) {
	c := NewController("b", bankedConfig())
	want := 30*sim.Nanosecond + 48*sim.Nanosecond
	if got := c.UnloadedLatency(); got != want {
		t.Fatalf("unloaded = %v, want %v", got, want)
	}
}

func TestBankedParallelBanks(t *testing.T) {
	c := NewController("b", bankedConfig())
	// Two accesses to different banks at the same instant overlap their
	// array access; only the bus serialises.
	done1, _ := c.Access(0, 0, 64)
	done2, q2 := c.Access(0, uint64(rowBytes), 64) // next bank
	if done2 > done1+10*sim.Nanosecond {
		t.Fatalf("bank-parallel access too slow: %v vs %v", done2, done1)
	}
	_ = q2
}

func TestBankedReset(t *testing.T) {
	c := NewController("b", bankedConfig())
	c.Access(0, 0, 64)
	c.Reset()
	if st := c.BankStats(); st[0].RowHits != 0 || st[0].RowMisses != 0 {
		t.Fatalf("reset kept stats: %+v", st)
	}
	// Open rows closed: next access is a miss again.
	c.Access(0, 0, 64)
	if st := c.BankStats(); st[0].RowMisses != 1 {
		t.Fatalf("row survived reset: %+v", st)
	}
}

func TestBankedInvalidLatenciesPanic(t *testing.T) {
	cfg := bankedConfig()
	cfg.RowMissLatency = cfg.RowHitLatency / 2
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewController("bad", cfg)
}

func TestSimpleModelHasNoBankStats(t *testing.T) {
	c := NewController("s", DefaultSocketConfig())
	if c.BankStats() != nil {
		t.Fatal("simple model returned bank stats")
	}
}

func TestApplyFaultRemapsDeadChannel(t *testing.T) {
	c := NewController("pool", DefaultPoolConfig()) // 2 channels
	c.ApplyFault(fault.PoolState{Down: []int{0}})
	// Blocks that interleave across both channels now all land on the
	// survivor — the dead channel sees no traffic.
	c.Access(0, 0, 64)
	c.Access(0, 64, 64)
	st := c.Stats()
	if st[0].Messages != 0 || st[1].Messages != 2 {
		t.Fatalf("traffic after ch0 death: %d/%d, want 0/2", st[0].Messages, st[1].Messages)
	}
}

func TestApplyFaultHealthyIsNoOp(t *testing.T) {
	c := NewController("pool", DefaultPoolConfig())
	c.ApplyFault(fault.PoolState{})
	c.Access(0, 0, 64)
	c.Access(0, 64, 64)
	st := c.Stats()
	if st[0].Messages != 1 || st[1].Messages != 1 {
		t.Fatalf("healthy fault state changed interleaving: %d/%d", st[0].Messages, st[1].Messages)
	}
}

func TestApplyFaultDeadDeviceKeepsEmergencyChannel(t *testing.T) {
	c := NewController("pool", DefaultPoolConfig())
	c.ApplyFault(fault.PoolState{Dead: true})
	// A dead device must still answer (the drain traffic has to go
	// somewhere) — everything funnels through channel 0.
	done, _ := c.Access(0, 128, 64)
	if done <= 0 {
		t.Fatalf("dead device refused access: %v", done)
	}
	st := c.Stats()
	if st[0].Messages != 1 || st[1].Messages != 0 {
		t.Fatalf("dead-device traffic %d/%d, want all on emergency ch0", st[0].Messages, st[1].Messages)
	}
}
