package memdev_test

import (
	"fmt"

	"starnuma/internal/memdev"
)

// The scaled socket memory of Table II: one DDR5-4800 channel behind a
// 30ns on-chip path, giving the paper's 80ns unloaded local access.
func ExampleController() {
	c := memdev.NewController("socket0", memdev.DefaultSocketConfig())
	fmt.Println("unloaded:", c.UnloadedLatency())

	_, queuing := c.Access(0, 0x1000, 64)
	fmt.Println("first access queued:", queuing)
	_, queuing = c.Access(0, 0x2000, 64) // same instant: queues behind the first
	fmt.Println("simultaneous access queued:", queuing > 0)
	// Output:
	// unloaded: 80.000ns
	// first access queued: 0.000ns
	// simultaneous access queued: true
}
