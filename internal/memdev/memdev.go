// Package memdev models DRAM memory devices: per-node memory controllers
// with one or more DDR channels.
//
// A memory access at a node costs a fixed on-chip portion (LLC-miss
// handling, arbitration, directory lookup) plus the DRAM access latency,
// and occupies one channel for size/bandwidth, which is where local and
// pool memory bandwidth contention arises. With the default constants an
// unloaded local access totals the paper's 80ns (§II-A): 30ns on-chip +
// 50ns DRAM.
package memdev

import (
	"fmt"

	"starnuma/internal/fault"
	"starnuma/internal/link"
	"starnuma/internal/sim"
)

// Config describes one node's memory subsystem.
type Config struct {
	Channels    int       // number of DDR channels
	ChannelBW   link.GBps // per-channel bandwidth
	OnChip      sim.Time  // on-chip portion charged per access
	DRAMLatency sim.Time  // DRAM array access latency (simple model)

	// BanksPerChannel > 0 switches to the open-page bank model (see
	// banks.go): DRAMLatency is ignored and RowHit/RowMissLatency apply.
	BanksPerChannel int
	RowHitLatency   sim.Time
	RowMissLatency  sim.Time
}

// DefaultSocketConfig matches the paper's scaled simulation socket
// (Table II): one DDR5 channel.
func DefaultSocketConfig() Config {
	return Config{Channels: 1, ChannelBW: 38.4, OnChip: 30 * sim.Nanosecond, DRAMLatency: 50 * sim.Nanosecond}
}

// DefaultPoolConfig matches the paper's scaled pool (Table II): two DDR5
// channels.
func DefaultPoolConfig() Config {
	return Config{Channels: 2, ChannelBW: 38.4, OnChip: 30 * sim.Nanosecond, DRAMLatency: 50 * sim.Nanosecond}
}

// Controller is one node's memory controller. It is not safe for
// concurrent use; the simulation is single-threaded.
type Controller struct {
	name     string
	cfg      Config
	channels []*link.Link
	banked   []*bankedChannel // non-nil when BanksPerChannel > 0
	remap    []int            // fault remap of channel indexes; nil = healthy
}

// NewController builds a controller from cfg. It panics on nonsensical
// configuration (these are programmer-supplied constants).
func NewController(name string, cfg Config) *Controller {
	if cfg.Channels <= 0 {
		panic(fmt.Sprintf("memdev %s: %d channels", name, cfg.Channels))
	}
	if cfg.OnChip < 0 || cfg.DRAMLatency < 0 {
		panic(fmt.Sprintf("memdev %s: negative latency", name))
	}
	c := &Controller{name: name, cfg: cfg}
	if cfg.BanksPerChannel > 0 {
		if cfg.RowHitLatency <= 0 || cfg.RowMissLatency < cfg.RowHitLatency {
			panic(fmt.Sprintf("memdev %s: invalid bank latencies %v/%v",
				name, cfg.RowHitLatency, cfg.RowMissLatency))
		}
		for i := 0; i < cfg.Channels; i++ {
			c.banked = append(c.banked, newBankedChannel(
				cfg.BanksPerChannel, float64(cfg.ChannelBW), cfg.RowHitLatency, cfg.RowMissLatency))
		}
		return c
	}
	for i := 0; i < cfg.Channels; i++ {
		c.channels = append(c.channels,
			link.New(fmt.Sprintf("%s.ch%d", name, i), cfg.ChannelBW, cfg.DRAMLatency))
	}
	return c
}

// Name returns the label the controller was constructed with.
func (c *Controller) Name() string { return c.name }

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// OnChipLatency is the fixed on-chip portion every access pays before
// reaching a channel. The stall-attribution ledger (internal/attrib)
// uses it to split an Access round trip into on-chip, queuing, and
// DRAM-service segments.
func (c *Controller) OnChipLatency() sim.Time { return c.cfg.OnChip }

// UnloadedLatency is the zero-contention service time of one access
// (a row-buffer miss, for the banked model).
func (c *Controller) UnloadedLatency() sim.Time {
	if c.cfg.BanksPerChannel > 0 {
		return c.cfg.OnChip + c.cfg.RowMissLatency
	}
	return c.cfg.OnChip + c.cfg.DRAMLatency
}

// Access services a memory access of size bytes to addr arriving at the
// controller at time now. It returns when the data is available and the
// queuing delay suffered at the channel.
//
//starnuma:hotpath one call per memory-device access
func (c *Controller) Access(now sim.Time, addr uint64, bytes int) (done, queuing sim.Time) {
	i := c.channelFor(addr)
	if c.banked != nil {
		return c.banked[i].access(now+c.cfg.OnChip, addr, bytes)
	}
	done, queuing = c.channels[i].Send(now+c.cfg.OnChip, bytes)
	return done, queuing
}

// channelFor interleaves 64B blocks across channels, as real controllers
// do, so streaming access spreads evenly. Under a fault remap, failed
// channels' shares fold onto the survivors.
func (c *Controller) channelFor(addr uint64) int {
	i := int((addr >> 6) % uint64(c.cfg.Channels))
	if c.remap != nil {
		i = c.remap[i]
	}
	return i
}

// ApplyFault reroutes traffic off the channels st marks failed: each
// failed channel's interleave share folds onto the surviving channels
// round-robin, which is where a dying channel's bandwidth loss shows up
// as contention. A fully dead device keeps its lowest-indexed channel
// answering as a documented emergency path, so drain traffic and stale
// accesses still complete — graceful degradation, never a stall or a
// panic. A healthy st clears any previous remap.
func (c *Controller) ApplyFault(st fault.PoolState) {
	failed := make([]bool, c.cfg.Channels)
	if st.Dead {
		for i := range failed {
			failed[i] = true
		}
	}
	for _, ch := range st.Down {
		if ch >= 0 && ch < len(failed) {
			failed[ch] = true
		}
	}
	var surviving []int
	for i, f := range failed {
		if !f {
			surviving = append(surviving, i)
		}
	}
	if len(surviving) == c.cfg.Channels {
		c.remap = nil
		return
	}
	if len(surviving) == 0 {
		surviving = []int{0} // emergency channel
	}
	remap := make([]int, c.cfg.Channels)
	for i := range remap {
		remap[i] = surviving[i%len(surviving)]
	}
	c.remap = remap
}

// Stats returns per-channel counters (simple model only; empty for the
// banked model — see BankStats).
func (c *Controller) Stats() []link.Stats {
	out := make([]link.Stats, len(c.channels))
	for i, ch := range c.channels {
		out[i] = ch.Stats()
	}
	return out
}

// BankStats returns per-channel row-buffer statistics; nil for the
// simple model.
func (c *Controller) BankStats() []BankStats {
	if c.banked == nil {
		return nil
	}
	out := make([]BankStats, len(c.banked))
	for i, ch := range c.banked {
		out[i] = ch.stats
	}
	return out
}

// Reset clears all channel counters and busy horizons.
func (c *Controller) Reset() {
	for _, ch := range c.channels {
		ch.Reset()
	}
	for _, ch := range c.banked {
		ch.busTill = 0
		ch.stats = BankStats{}
		for i := range ch.banks {
			ch.banks[i] = bankState{openRow: -1}
		}
	}
}
