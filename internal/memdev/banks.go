package memdev

import (
	"starnuma/internal/sim"
)

// Bank-level DRAM modelling. The default controller treats a channel as
// a fixed-latency bandwidth server (DESIGN.md §3), which is what the
// calibrated evaluation uses. Setting Config.BanksPerChannel > 0 enables
// an open-page bank model instead: each bank keeps its last-activated
// row open, row-buffer hits pay only CAS, conflicts pay
// precharge+activate+CAS, and requests serialise per bank. This is an
// opt-in fidelity upgrade (and an ablation: how much do row-buffer
// dynamics matter to the StarNUMA conclusions?).

const (
	// rowBytes is the DRAM row (page) size per bank.
	rowBytes = 8192
	// bankShift positions the bank index above the row-column bits.
	bankShift = 13 // log2(rowBytes)
)

// bankState tracks one bank's open row and busy horizon.
type bankState struct {
	openRow  int64 // -1 = closed
	busyTill sim.Time
}

// BankStats counts row-buffer outcomes.
type BankStats struct {
	RowHits   uint64
	RowMisses uint64
}

// bankedChannel is one DRAM channel with open-page banks sharing a data
// bus.
type bankedChannel struct {
	banks     []bankState
	busTill   sim.Time // shared data bus horizon
	psPerByte float64
	hitLat    sim.Time
	missLat   sim.Time
	stats     BankStats
}

func newBankedChannel(banks int, bw float64, hit, miss sim.Time) *bankedChannel {
	ch := &bankedChannel{
		banks:   make([]bankState, banks),
		hitLat:  hit,
		missLat: miss,
	}
	if bw > 0 {
		ch.psPerByte = 1000 / bw
	}
	for i := range ch.banks {
		ch.banks[i].openRow = -1
	}
	return ch
}

// access services one request, returning completion time and queuing
// delay (time spent waiting for bank and bus).
func (ch *bankedChannel) access(now sim.Time, addr uint64, bytes int) (done, queuing sim.Time) {
	bankIdx := int(addr>>bankShift) % len(ch.banks)
	row := int64(addr >> bankShift / uint64(len(ch.banks)))
	bank := &ch.banks[bankIdx]

	start := now
	if bank.busyTill > start {
		start = bank.busyTill
	}
	service := ch.missLat
	if bank.openRow == row {
		service = ch.hitLat
		ch.stats.RowHits++
	} else {
		ch.stats.RowMisses++
		bank.openRow = row
	}
	ready := start + service
	bank.busyTill = ready

	// Data transfer on the shared bus.
	busStart := ready
	if ch.busTill > busStart {
		busStart = ch.busTill
	}
	xfer := sim.Time(float64(bytes)*ch.psPerByte + 0.5)
	ch.busTill = busStart + xfer
	done = ch.busTill
	queuing = (start - now) + (busStart - ready)
	return done, queuing
}

// DefaultBankLatencies returns typical DDR5 open-page timings: ~18ns CAS
// for a row hit, ~48ns precharge+activate+CAS for a conflict — chosen so
// a 50/50 hit/miss mix lands near the simple model's 50ns x ~0.7.
func DefaultBankLatencies() (hit, miss sim.Time) {
	return 18 * sim.Nanosecond, 48 * sim.Nanosecond
}
