package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"starnuma/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := Header{Workload: "BFS", Cores: 64, Pages: 4096, Phase: 3}
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Core: 0, Access: workload.Access{Gap: 10, Page: 42, Block: 7, Write: true}},
		{Core: 63, Access: workload.Access{Gap: 1, Page: 4095, Block: 63, Write: false}},
		{Core: 12, Access: workload.Access{Gap: 65535, Page: 0, Block: 0, Write: true}},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header() != h {
		t.Fatalf("header = %+v, want %+v", r.Header(), h)
	}
	for i, want := range recs {
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{Workload: "x", Cores: 0, Pages: 1}); err == nil {
		t.Fatal("accepted zero cores")
	}
	if _, err := NewWriter(&buf, Header{Workload: "x", Cores: 1, Pages: 0}); err == nil {
		t.Fatal("accepted zero pages")
	}
	if _, err := NewWriter(&buf, Header{Workload: strings.Repeat("y", 70000), Cores: 1, Pages: 1}); err == nil {
		t.Fatal("accepted oversized name")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("JUNKJUNKJUNKJUNKJUNK"))); err == nil {
		t.Fatal("accepted bad magic")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty stream")
	}
	// Valid magic but truncated header.
	if _, err := NewReader(bytes.NewReader([]byte("SNTR\x01\x00"))); err == nil {
		t.Fatal("accepted truncated header")
	}
}

func TestReaderRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Workload: "x", Cores: 1, Pages: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 0xFF // corrupt version
	if _, err := NewReader(bytes.NewReader(b)); err == nil {
		t.Fatal("accepted wrong version")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Workload: "x", Cores: 1, Pages: 1})
	w.Write(Record{})
	w.Flush()
	b := buf.Bytes()
	r, err := NewReader(bytes.NewReader(b[:len(b)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("truncated record not detected: %v", err)
	}
}

func TestDumpPhaseRoundTrip(t *testing.T) {
	spec, err := workload.ByName("TPCC", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(spec, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := DumpPhase(gen, 2, 5000, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no records dumped")
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().Workload != "TPCC" || r.Header().Phase != 2 || r.Header().Cores != 64 {
		t.Fatalf("header = %+v", r.Header())
	}
	// Replay must agree with a fresh generator.
	gen2, _ := workload.NewGenerator(spec, 16, 4)
	gen2.ResetPhase(2)
	instr := make([]uint64, 64)
	count := uint64(0)
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
		if rec.Access.Page >= uint32(gen.NumPages()) {
			t.Fatalf("page out of range: %+v", rec)
		}
		instr[rec.Core] += uint64(rec.Access.Gap)
	}
	if count != n {
		t.Fatalf("read %d records, wrote %d", count, n)
	}
	for c, in := range instr {
		if in < 5000 {
			t.Fatalf("core %d only traced %d instructions", c, in)
		}
	}
}

// Property: any record survives a round trip.
func TestRecordRoundTripProperty(t *testing.T) {
	f := func(core uint16, gap, page uint32, block uint16, write bool) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{Workload: "p", Cores: 65535, Pages: 1})
		if err != nil {
			return false
		}
		in := Record{Core: core, Access: workload.Access{
			Gap: gap, Page: page, Block: block % workload.BlocksPerPage, Write: write}}
		if w.Write(in) != nil || w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		out, err := r.Read()
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
