package trace

import (
	"os"
	"path/filepath"
	"testing"

	"starnuma/internal/workload"
)

// dumpTestTrace writes one phase file and returns its path.
func dumpTestTrace(t *testing.T, dir string, gen *workload.Generator, phase int, instr uint64) string {
	t.Helper()
	path := filepath.Join(dir, "phase.sntr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := DumpPhase(gen, phase, instr, f); err != nil {
		t.Fatal(err)
	}
	return path
}

func testGen(t *testing.T) *workload.Generator {
	t.Helper()
	spec, err := workload.ByName("CC", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(spec, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestSourceReplaysDump(t *testing.T) {
	gen := testGen(t)
	dir := t.TempDir()
	path := dumpTestTrace(t, dir, gen, 0, 3000)

	src, err := NewSource(gen.Spec(), 16, 4, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	if src.NumCores() != 64 || src.NumPages() != gen.NumPages() {
		t.Fatalf("shape: cores=%d pages=%d", src.NumCores(), src.NumPages())
	}
	if src.SocketOf(5) != 1 {
		t.Fatal("SocketOf wrong")
	}
	if src.Spec().FootprintPages != gen.NumPages() {
		t.Fatal("spec footprint not adopted from header")
	}

	// Replay must byte-match the generator for the dumped prefix.
	gen.ResetPhase(0)
	src.ResetPhase(0)
	for i := 0; i < 500; i++ {
		core := i % 64
		want := gen.Next(core)
		got := src.Next(core)
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestSourceResetRewinds(t *testing.T) {
	gen := testGen(t)
	path := dumpTestTrace(t, t.TempDir(), gen, 1, 2000)
	src, err := NewSource(gen.Spec(), 16, 4, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	first := src.Next(0)
	src.Next(0)
	src.ResetPhase(0)
	if got := src.Next(0); got != first {
		t.Fatalf("reset did not rewind: %+v vs %+v", got, first)
	}
}

func TestSourceWrapsExhaustedStream(t *testing.T) {
	gen := testGen(t)
	path := dumpTestTrace(t, t.TempDir(), gen, 0, 200) // tiny
	src, err := NewSource(gen.Spec(), 16, 4, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	first := src.Next(0)
	// Drain far past the stream length; must not panic and must wrap.
	seenFirstAgain := false
	for i := 0; i < 10000; i++ {
		if src.Next(0) == first {
			seenFirstAgain = true
		}
	}
	if !seenFirstAgain {
		t.Fatal("stream did not wrap")
	}
}

func TestSourcePhaseWrapAcrossFiles(t *testing.T) {
	gen := testGen(t)
	dir := t.TempDir()
	p0 := filepath.Join(dir, "p0.sntr")
	p1 := filepath.Join(dir, "p1.sntr")
	for phase, path := range map[int]string{0: p0, 1: p1} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DumpPhase(gen, phase, 1000, f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	src, err := NewSource(gen.Spec(), 16, 4, []string{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	src.ResetPhase(0)
	a0 := src.Next(3)
	src.ResetPhase(1)
	src.ResetPhase(2) // wraps to file 0
	if got := src.Next(3); got != a0 {
		t.Fatalf("phase wrap broken: %+v vs %+v", got, a0)
	}
}

func TestSourceValidation(t *testing.T) {
	gen := testGen(t)
	path := dumpTestTrace(t, t.TempDir(), gen, 0, 1000)
	if _, err := NewSource(gen.Spec(), 16, 4, nil); err == nil {
		t.Fatal("accepted empty path list")
	}
	if _, err := NewSource(gen.Spec(), 0, 4, []string{path}); err == nil {
		t.Fatal("accepted zero sockets")
	}
	if _, err := NewSource(gen.Spec(), 8, 4, []string{path}); err == nil {
		t.Fatal("accepted core-count mismatch")
	}
	if _, err := NewSource(gen.Spec(), 16, 4, []string{"/nonexistent"}); err == nil {
		t.Fatal("accepted missing file")
	}
}
