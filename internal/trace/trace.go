// Package trace provides a compact binary format for step-A access
// traces (§IV-A1).
//
// The paper records per-thread instruction and memory traces with a
// Pin-based tracer and replays them in steps B and C. Our generators are
// deterministic, so traces normally need not be materialised — but the
// format lets users persist a stream (cmd/tracegen), inspect it, or feed
// externally produced traces through the same pipeline.
//
// Layout: a fixed header followed by fixed-size little-endian records.
//
//	header:  magic "SNTR" | version u16 | cores u16 | pages u32 |
//	         phase u32 | workload name len u16 | name bytes
//	record:  core u16 | gap u32 | page u32 | block u16 | flags u8
//
// flags bit 0 = write.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"starnuma/internal/workload"
)

// Magic identifies a trace stream.
const Magic = "SNTR"

// Version is the current format version.
const Version = 1

const recordSize = 2 + 4 + 4 + 2 + 1

// Header describes a trace stream.
type Header struct {
	Workload string
	Cores    int
	Pages    int
	Phase    int
}

// Record is one traced access, tagged with its core.
type Record struct {
	Core   uint16
	Access workload.Access
}

// Writer encodes records to an underlying stream.
type Writer struct {
	w   *bufio.Writer
	n   uint64
	err error
}

// NewWriter writes a header and returns a record writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.Cores <= 0 || h.Cores > 1<<16-1 {
		return nil, fmt.Errorf("trace: core count %d out of range", h.Cores)
	}
	if h.Pages <= 0 {
		return nil, fmt.Errorf("trace: page count %d out of range", h.Pages)
	}
	if len(h.Workload) > 1<<16-1 {
		return nil, errors.New("trace: workload name too long")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, err
	}
	var buf [14]byte
	binary.LittleEndian.PutUint16(buf[0:], Version)
	binary.LittleEndian.PutUint16(buf[2:], uint16(h.Cores))
	binary.LittleEndian.PutUint32(buf[4:], uint32(h.Pages))
	binary.LittleEndian.PutUint32(buf[8:], uint32(h.Phase))
	binary.LittleEndian.PutUint16(buf[12:], uint16(len(h.Workload)))
	if _, err := bw.Write(buf[:]); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(h.Workload); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if w.err != nil {
		return w.err
	}
	var buf [recordSize]byte
	binary.LittleEndian.PutUint16(buf[0:], r.Core)
	binary.LittleEndian.PutUint32(buf[2:], r.Access.Gap)
	binary.LittleEndian.PutUint32(buf[6:], r.Access.Page)
	binary.LittleEndian.PutUint16(buf[10:], r.Access.Block)
	if r.Access.Write {
		buf[12] = 1
	}
	if _, err := w.w.Write(buf[:]); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// Count returns how many records were written.
func (w *Writer) Count() uint64 { return w.n }

// Flush drains buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes a trace stream.
type Reader struct {
	r      *bufio.Reader
	header Header
}

// NewReader validates the header and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var buf [14]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(buf[0:]); v != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	h := Header{
		Cores: int(binary.LittleEndian.Uint16(buf[2:])),
		Pages: int(binary.LittleEndian.Uint32(buf[4:])),
		Phase: int(binary.LittleEndian.Uint32(buf[8:])),
	}
	nameLen := int(binary.LittleEndian.Uint16(buf[12:]))
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	h.Workload = string(name)
	return &Reader{r: br, header: h}, nil
}

// Header returns the stream's header.
func (r *Reader) Header() Header { return r.header }

// Read returns the next record, or io.EOF at end of stream.
func (r *Reader) Read() (Record, error) {
	var buf [recordSize]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	rec := Record{
		Core: binary.LittleEndian.Uint16(buf[0:]),
		Access: workload.Access{
			Gap:   binary.LittleEndian.Uint32(buf[2:]),
			Page:  binary.LittleEndian.Uint32(buf[6:]),
			Block: binary.LittleEndian.Uint16(buf[10:]),
			Write: buf[12]&1 != 0,
		},
	}
	return rec, nil
}

// DumpPhase writes one phase of a generator's streams (all cores,
// round-robin, each up to instrBudget instructions) to w. It returns the
// number of records written.
func DumpPhase(gen *workload.Generator, phase int, instrBudget uint64, w io.Writer) (uint64, error) {
	tw, err := NewWriter(w, Header{
		Workload: gen.Spec().Name,
		Cores:    gen.NumCores(),
		Pages:    gen.NumPages(),
		Phase:    phase,
	})
	if err != nil {
		return 0, err
	}
	gen.ResetPhase(phase)
	instr := make([]uint64, gen.NumCores())
	active := gen.NumCores()
	for active > 0 {
		for c := 0; c < gen.NumCores(); c++ {
			if instr[c] >= instrBudget {
				continue
			}
			a := gen.Next(c)
			instr[c] += uint64(a.Gap)
			if instr[c] >= instrBudget {
				active--
			}
			if err := tw.Write(Record{Core: uint16(c), Access: a}); err != nil {
				return tw.Count(), err
			}
		}
	}
	return tw.Count(), tw.Flush()
}
