package trace_test

import (
	"bytes"
	"fmt"

	"starnuma/internal/trace"
	"starnuma/internal/workload"
)

// Round-trip one record through the binary step-A trace format.
func ExampleWriter() {
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf, trace.Header{
		Workload: "BFS", Cores: 64, Pages: 4096, Phase: 0,
	})
	w.Write(trace.Record{Core: 12, Access: workload.Access{
		Gap: 31, Page: 1700, Block: 9, Write: true,
	}})
	w.Flush()

	r, _ := trace.NewReader(&buf)
	rec, _ := r.Read()
	fmt.Printf("%s phase %d: core %d page %d write=%v\n",
		r.Header().Workload, r.Header().Phase, rec.Core, rec.Access.Page, rec.Access.Write)
	// Output:
	// BFS phase 0: core 12 page 1700 write=true
}
