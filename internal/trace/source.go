package trace

import (
	"fmt"
	"os"

	"starnuma/internal/workload"
)

// Source replays step-A trace files through the evaluation pipeline: it
// implements core.AccessSource, so externally captured traces (or
// traces dumped by cmd/tracegen) can drive steps B and C exactly like
// the synthetic generators.
//
// One file per phase, in phase order. If the pipeline asks for more
// phases than files exist, phases wrap around; if a core's stream is
// exhausted within a phase, it also wraps (traces are treated as
// stationary samples, like the paper's per-phase trace reuse).
type Source struct {
	spec           workload.Spec
	paths          []string
	sockets        int
	coresPerSocket int
	pages          int

	cur     int // currently loaded phase file index (-1 = none)
	streams [][]workload.Access
	idx     []int
}

// NewSource opens a replay source over the given per-phase trace files.
// The spec supplies the timing parameters (IPC, MPKI, MLP) the trace
// itself does not carry; its footprint is overridden by the trace
// header. All files must agree with the system shape.
func NewSource(spec workload.Spec, sockets, coresPerSocket int, paths []string) (*Source, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("trace: no trace files")
	}
	if sockets <= 0 || coresPerSocket <= 0 {
		return nil, fmt.Errorf("trace: invalid system shape %dx%d", sockets, coresPerSocket)
	}
	s := &Source{
		spec:           spec,
		paths:          paths,
		sockets:        sockets,
		coresPerSocket: coresPerSocket,
		cur:            -1,
	}
	// Validate the first file and adopt its footprint.
	h, err := s.readHeader(paths[0])
	if err != nil {
		return nil, err
	}
	if h.Cores != sockets*coresPerSocket {
		return nil, fmt.Errorf("trace: file %s has %d cores, system needs %d",
			paths[0], h.Cores, sockets*coresPerSocket)
	}
	s.pages = h.Pages
	s.spec.FootprintPages = h.Pages
	if err := s.load(0); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Source) readHeader(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return Header{}, fmt.Errorf("trace: %s: %w", path, err)
	}
	return r.Header(), nil
}

// load reads phase file i into per-core streams.
func (s *Source) load(i int) error {
	f, err := os.Open(s.paths[i])
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return fmt.Errorf("trace: %s: %w", s.paths[i], err)
	}
	h := r.Header()
	if h.Cores != s.sockets*s.coresPerSocket || h.Pages != s.pages {
		return fmt.Errorf("trace: %s shape (%d cores, %d pages) disagrees with %s",
			s.paths[i], h.Cores, h.Pages, s.paths[0])
	}
	streams := make([][]workload.Access, h.Cores)
	for {
		rec, err := r.Read()
		if err != nil {
			break // io.EOF or truncation; partial final record dropped
		}
		if int(rec.Core) >= h.Cores || int(rec.Access.Page) >= s.pages {
			return fmt.Errorf("trace: %s: record out of range: %+v", s.paths[i], rec)
		}
		streams[rec.Core] = append(streams[rec.Core], rec.Access)
	}
	for c, st := range streams {
		if len(st) == 0 {
			return fmt.Errorf("trace: %s: core %d has no records", s.paths[i], c)
		}
	}
	s.streams = streams
	s.idx = make([]int, h.Cores)
	s.cur = i
	return nil
}

// Next implements core.AccessSource.
func (s *Source) Next(core int) workload.Access {
	st := s.streams[core]
	a := st[s.idx[core]]
	s.idx[core]++
	if s.idx[core] >= len(st) {
		s.idx[core] = 0 // wrap: treat the trace as a stationary sample
	}
	return a
}

// ResetPhase implements core.AccessSource.
func (s *Source) ResetPhase(phase int) {
	i := phase % len(s.paths)
	if i != s.cur {
		if err := s.load(i); err != nil {
			// Files validated at construction; a failure here means the
			// file changed underneath us — fail loudly.
			panic(fmt.Sprintf("trace: reloading phase %d: %v", phase, err))
		}
		return
	}
	for c := range s.idx {
		s.idx[c] = 0
	}
}

// NumPages implements core.AccessSource.
func (s *Source) NumPages() int { return s.pages }

// NumCores implements core.AccessSource.
func (s *Source) NumCores() int { return s.sockets * s.coresPerSocket }

// SocketOf implements core.AccessSource.
func (s *Source) SocketOf(core int) int { return core / s.coresPerSocket }

// Spec implements core.AccessSource.
func (s *Source) Spec() workload.Spec { return s.spec }
