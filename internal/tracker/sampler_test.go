package tracker

import "testing"

func TestSamplerFractionRoughlyRespected(t *testing.T) {
	tb := NewTable(T16, 32768, 32) // 1024 regions
	s := NewSampler(tb, 0.25, 42)
	n := 0
	for r := 0; r < tb.NumRegions(); r++ {
		if s.Sampled(r) {
			n++
		}
	}
	frac := float64(n) / float64(tb.NumRegions())
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("sampled fraction = %v, want ~0.25", frac)
	}
}

func TestSamplerFullCoverage(t *testing.T) {
	tb := NewTable(T16, 1024, 32)
	s := NewSampler(tb, 1.0, 1)
	for r := 0; r < tb.NumRegions(); r++ {
		if !s.Sampled(r) {
			t.Fatalf("region %d unsampled at frac 1.0", r)
		}
	}
}

func TestSamplerInvalidFracPanics(t *testing.T) {
	tb := NewTable(T16, 1024, 32)
	for _, f := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("frac %v accepted", f)
				}
			}()
			NewSampler(tb, f, 1)
		}()
	}
}

func TestSamplerRecordsOnlySampledRegions(t *testing.T) {
	tb := NewTable(T16, 1024, 32)
	s := NewSampler(tb, 0.5, 7)
	for page := uint32(0); page < 1024; page++ {
		s.Record(3, page)
	}
	for r := 0; r < tb.NumRegions(); r++ {
		hasData := tb.SharerCount(r) > 0
		if hasData != s.Sampled(r) {
			t.Fatalf("region %d: data=%v sampled=%v", r, hasData, s.Sampled(r))
		}
	}
}

func TestSamplerFaultsOncePerPagePerPhase(t *testing.T) {
	tb := NewTable(T16, 1024, 32)
	s := NewSampler(tb, 1.0, 7)
	if !s.Record(0, 5) {
		t.Fatal("first access did not fault")
	}
	if s.Record(1, 5) {
		t.Fatal("second access faulted")
	}
	if s.Faults() != 1 {
		t.Fatalf("faults = %d", s.Faults())
	}
	s.ResetPhase(1)
	if !s.Record(0, 5) {
		t.Fatal("post-reset access did not fault")
	}
}

func TestSamplerPhaseRedrawIsDeterministic(t *testing.T) {
	tb1 := NewTable(T16, 4096, 32)
	tb2 := NewTable(T16, 4096, 32)
	s1 := NewSampler(tb1, 0.3, 99)
	s2 := NewSampler(tb2, 0.3, 99)
	s1.ResetPhase(4)
	s2.ResetPhase(4)
	for r := 0; r < tb1.NumRegions(); r++ {
		if s1.Sampled(r) != s2.Sampled(r) {
			t.Fatalf("sample draw not deterministic at region %d", r)
		}
	}
	// Different phases draw different samples.
	s2.ResetPhase(5)
	same := 0
	for r := 0; r < tb1.NumRegions(); r++ {
		if s1.Sampled(r) == s2.Sampled(r) {
			same++
		}
	}
	if same == tb1.NumRegions() {
		t.Fatal("phase 5 sample identical to phase 4")
	}
}

func TestSamplerWouldFaultAndMark(t *testing.T) {
	tb := NewTable(T16, 1024, 32)
	s := NewSampler(tb, 1.0, 7)
	if !s.WouldFault(9) {
		t.Fatal("fresh sampled page should fault")
	}
	s.MarkFaulted(9)
	if s.WouldFault(9) {
		t.Fatal("marked page still faults")
	}
	// WouldFault must not record metadata.
	if tb.SharerCount(tb.RegionOf(9)) != 0 {
		t.Fatal("WouldFault mutated the table")
	}
}
