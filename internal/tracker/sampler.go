package tracker

// Sampler models the conventional software-based access tracking the
// paper argues against (§III-D1): each migration phase the OS "poisons"
// a sampled subset of regions; the first access to a poisoned page
// triggers a minor page fault whose handler records the access. Two
// consequences, both of which StarNUMA's hardware tracker removes:
//
//  1. Coverage: only the sampled regions produce metadata, so the
//     migration policy is blind to hot regions outside the sample.
//  2. Overhead: every first touch of a poisoned page costs a minor page
//     fault (thousands of cycles) on the faulting core.
//
// The Sampler wraps a Table; the sample is redrawn deterministically per
// phase so trace simulation (step B) and timing simulation (step C)
// observe identical sampling decisions.
type Sampler struct {
	table *Table
	// frac is the fraction of regions monitored each phase.
	frac float64
	seed uint64

	sampled []bool
	// faultedPages tracks pages that already took their per-phase fault.
	faultedPages map[uint32]bool
	faults       uint64
}

// NewSampler wraps table, monitoring frac of its regions per phase.
func NewSampler(table *Table, frac float64, seed uint64) *Sampler {
	if frac <= 0 || frac > 1 {
		panic("tracker: sample fraction out of (0,1]")
	}
	s := &Sampler{table: table, frac: frac, seed: seed,
		sampled:      make([]bool, table.NumRegions()),
		faultedPages: make(map[uint32]bool)}
	s.ResetPhase(0)
	return s
}

// Table returns the underlying metadata table (which only ever holds
// sampled regions' data).
func (s *Sampler) Table() *Table { return s.table }

// splitmix64-style hash for the per-phase sample draw.
func sampleHash(seed, phase, region uint64) uint64 {
	z := seed ^ phase*0x9e3779b97f4a7c15 ^ region*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ResetPhase redraws the sample for the given phase and clears the
// table and per-phase fault set.
func (s *Sampler) ResetPhase(phase int) {
	s.table.Reset()
	s.faultedPages = make(map[uint32]bool)
	if s.frac >= 1 {
		for r := range s.sampled {
			s.sampled[r] = true
		}
		return
	}
	threshold := uint64(s.frac * float64(1<<63) * 2)
	for r := range s.sampled {
		s.sampled[r] = sampleHash(s.seed, uint64(phase)+1, uint64(r)) < threshold
	}
}

// Sampled reports whether region r is monitored this phase.
func (s *Sampler) Sampled(r int) bool { return s.sampled[r] }

// Record notes one access. Only accesses to sampled regions reach the
// metadata table; the first access to each sampled page per phase
// additionally incurs a minor page fault, which the caller charges to
// the accessing core.
func (s *Sampler) Record(socket int, page uint32) (fault bool) {
	r := s.table.RegionOf(page)
	if !s.sampled[r] {
		return false
	}
	s.table.Record(socket, page)
	if !s.faultedPages[page] {
		s.faultedPages[page] = true
		s.faults++
		return true
	}
	return false
}

// WouldFault reports whether an access to page would fault without
// recording anything (the timing simulation's query; step C must not
// disturb step B's metadata).
func (s *Sampler) WouldFault(page uint32) bool {
	return s.sampled[s.table.RegionOf(page)] && !s.faultedPages[page]
}

// MarkFaulted consumes page's per-phase fault (timing-side bookkeeping).
func (s *Sampler) MarkFaulted(page uint32) {
	if s.sampled[s.table.RegionOf(page)] {
		s.faultedPages[page] = true
	}
}

// Faults returns the total minor page faults incurred so far.
func (s *Sampler) Faults() uint64 { return s.faults }
