package tracker_test

import (
	"fmt"

	"starnuma/internal/tracker"
)

// Track a region touched by three sockets; T16 counts accesses, T0 only
// records presence.
func ExampleTable() {
	t16 := tracker.NewTable(tracker.T16, 1024, 32)
	for i := 0; i < 5; i++ {
		t16.Record(0, 10)
	}
	t16.Record(7, 11)
	t16.Record(15, 12) // all in region 0
	fmt.Println("sharers:", t16.SharerCount(0), "count:", t16.Count(0))

	t0 := tracker.NewTable(tracker.T0, 1024, 32)
	t0.Record(0, 10)
	t0.Record(7, 11)
	fmt.Println("T0 sharers:", t0.SharerCount(0), "count:", t0.Count(0))
	// Output:
	// sharers: 3 count: 7
	// T0 sharers: 2 count: 0
}
