package tracker

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if T16.String() != "T16" || T0.String() != "T0" || Kind(7).String() != "Kind(7)" {
		t.Fatal("Kind.String wrong")
	}
}

func TestSizing(t *testing.T) {
	tb := NewTable(T16, 1000, 32)
	if tb.NumRegions() != 32 { // ceil(1000/32)
		t.Fatalf("regions = %d", tb.NumRegions())
	}
	if tb.RegionPages() != 32 {
		t.Fatalf("regionPages = %d", tb.RegionPages())
	}
	if tb.RegionOf(0) != 0 || tb.RegionOf(31) != 0 || tb.RegionOf(32) != 1 || tb.RegionOf(999) != 31 {
		t.Fatal("RegionOf wrong")
	}
	first, count := tb.PageRange(2)
	if first != 64 || count != 32 {
		t.Fatalf("PageRange = %d,%d", first, count)
	}
}

func TestInvalidSizingPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTable(T16, 0, 32) },
		func() { NewTable(T16, 100, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRecordAndSharers(t *testing.T) {
	tb := NewTable(T16, 1024, 32)
	tb.Record(3, 10)
	tb.Record(3, 11)
	tb.Record(7, 20) // same region 0
	tb.Record(1, 40) // region 1
	if got := tb.SharerCount(0); got != 2 {
		t.Fatalf("region 0 sharers = %d", got)
	}
	set := tb.SharerSet(0)
	if len(set) != 2 || set[0] != 3 || set[1] != 7 {
		t.Fatalf("sharer set = %v", set)
	}
	if got := tb.Count(0); got != 3 {
		t.Fatalf("region 0 count = %d", got)
	}
	if got := tb.Count(1); got != 1 {
		t.Fatalf("region 1 count = %d", got)
	}
	if tb.SharerCount(2) != 0 || len(tb.SharerSet(2)) != 0 {
		t.Fatal("untouched region has sharers")
	}
}

func TestT0HasNoCounts(t *testing.T) {
	tb := NewTable(T0, 1024, 32)
	for i := 0; i < 100; i++ {
		tb.Record(0, 5)
	}
	if tb.Count(0) != 0 {
		t.Fatalf("T0 count = %d, want 0", tb.Count(0))
	}
	if tb.SharerCount(0) != 1 {
		t.Fatalf("T0 sharers = %d", tb.SharerCount(0))
	}
}

func TestCounterSaturates(t *testing.T) {
	tb := NewTable(T16, 64, 64)
	for i := 0; i < 70000; i++ {
		tb.Record(0, 0)
	}
	if got := tb.Count(0); got != 0xFFFF {
		t.Fatalf("count = %d, want saturation at 65535", got)
	}
}

func TestReset(t *testing.T) {
	tb := NewTable(T16, 1024, 32)
	tb.Record(5, 100)
	tb.Reset()
	if tb.Count(3) != 0 || tb.SharerCount(3) != 0 {
		t.Fatal("reset did not clear state")
	}
	// Flush accounting survives reset (it is lifetime traffic).
	for i := 0; i < annexBatch; i++ {
		tb.Record(0, 0)
	}
	if tb.Flushes() == 0 {
		t.Fatal("no flushes recorded")
	}
}

func TestFlushRate(t *testing.T) {
	tb := NewTable(T16, 1024, 32)
	const n = 10 * annexBatch
	for i := 0; i < n; i++ {
		tb.Record(i%16, uint32(i%1024))
	}
	if got := tb.Flushes(); got != 10 {
		t.Fatalf("flushes = %d, want 10", got)
	}
}

func TestMetadataBytes(t *testing.T) {
	t16 := NewTable(T16, 32768, 32) // 1024 regions
	if got := t16.MetadataBytes(); got != 1024*6 {
		t.Fatalf("T16 metadata = %d", got)
	}
	t0 := NewTable(T0, 32768, 32)
	if got := t0.MetadataBytes(); got != 1024*4 {
		t.Fatalf("T0 metadata = %d", got)
	}
}

// Property: SharerCount always equals the number of distinct sockets
// recorded into the region, and counts equal records (below saturation).
func TestTrackerConsistencyProperty(t *testing.T) {
	f := func(events []uint16) bool {
		tb := NewTable(T16, 4096, 64)
		type key struct{ r, s int }
		distinct := map[key]bool{}
		perRegion := map[int]uint32{}
		for _, ev := range events {
			s := int(ev % 16)
			page := uint32(ev) % 4096
			tb.Record(s, page)
			r := tb.RegionOf(page)
			distinct[key{r, s}] = true
			perRegion[r]++
		}
		for r, want := range perRegion {
			if tb.Count(r) != want && want < 0xFFFF {
				return false
			}
			n := 0
			for s := 0; s < 16; s++ {
				if distinct[key{r, s}] {
					n++
				}
			}
			if tb.SharerCount(r) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecord(b *testing.B) {
	tb := NewTable(T16, 32768, 32)
	for i := 0; i < b.N; i++ {
		tb.Record(i%16, uint32(i%32768))
	}
}
