package metrics_test

import (
	"fmt"

	"starnuma/internal/metrics"
)

// Example shows the registry lifecycle: instrument, snapshot, dump.
func Example() {
	reg := metrics.New()
	reg.Add("link/upi/s0-s1/tx_bytes", 4096)
	reg.Point("pool/resident_pages", 0, 12)
	reg.Point("pool/resident_pages", 1, 53)
	fmt.Print(reg.Snapshot().Dump())

	// A nil registry is the disabled instrument: same calls, no effect.
	var off *metrics.Registry
	off.Add("link/upi/s0-s1/tx_bytes", 4096)
	fmt.Println(off.Snapshot().Empty())
	// Output:
	// counter link/upi/s0-s1/tx_bytes 4096
	// series pool/resident_pages 0:12 1:53
	// true
}
