package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Point is one time-series sample: T is a simulation bucket (phase
// index or sim-time bucket), V the sampled value.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Bucket is one populated power-of-two histogram bucket: Lo is the
// bucket's inclusive lower bound, N its population.
type Bucket struct {
	Lo int64  `json:"lo"`
	N  uint64 `json:"n"`
}

// Histogram is the exportable form of a histogram: summary moments plus
// the populated buckets sorted by lower bound.
type Histogram struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the histogram's arithmetic mean (0 when empty).
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// merge folds o into h.
func (h Histogram) merge(o Histogram) Histogram {
	if o.Count == 0 {
		return h
	}
	if h.Count == 0 {
		return o
	}
	out := Histogram{
		Count: h.Count + o.Count,
		Sum:   h.Sum + o.Sum,
		Min:   h.Min,
		Max:   h.Max,
	}
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	// Merge the two sorted bucket lists.
	i, j := 0, 0
	for i < len(h.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(h.Buckets) && h.Buckets[i].Lo < o.Buckets[j].Lo):
			out.Buckets = append(out.Buckets, h.Buckets[i])
			i++
		case i >= len(h.Buckets) || o.Buckets[j].Lo < h.Buckets[i].Lo:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, Bucket{Lo: h.Buckets[i].Lo, N: h.Buckets[i].N + o.Buckets[j].N})
			i++
			j++
		}
	}
	return out
}

// Snapshot is an immutable, serializable metrics export. The JSON
// encoding is byte-stable: encoding/json sorts map keys, bucket and
// series orders are deterministic, and every value derives from the
// simulation alone.
type Snapshot struct {
	Counters   map[string]uint64    `json:"counters,omitempty"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]Histogram `json:"histograms,omitempty"`
	Series     map[string][]Point   `json:"series,omitempty"`
}

// Empty reports whether the snapshot carries no metrics at all.
func (s *Snapshot) Empty() bool {
	return s == nil || (len(s.Counters) == 0 && len(s.Gauges) == 0 &&
		len(s.Histograms) == 0 && len(s.Series) == 0)
}

// Clone returns a deep copy (nil in, nil out).
func (s *Snapshot) Clone() *Snapshot {
	if s == nil {
		return nil
	}
	c := &Snapshot{}
	c.Merge(s)
	return c
}

// Merge folds o into s: counters and histograms sum, gauges take o's
// value (last writer wins, so merge in checkpoint order), and series
// points accumulate sorted by T (stable, so same-T points keep merge
// order). Merging in checkpoint order therefore yields identical
// snapshots regardless of how the windows were executed.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	for _, k := range sortedKeys(o.Counters) {
		if s.Counters == nil {
			s.Counters = make(map[string]uint64, len(o.Counters))
		}
		s.Counters[k] += o.Counters[k]
	}
	for _, k := range sortedKeys(o.Gauges) {
		if s.Gauges == nil {
			s.Gauges = make(map[string]float64, len(o.Gauges))
		}
		s.Gauges[k] = o.Gauges[k]
	}
	for _, k := range sortedKeys(o.Histograms) {
		if s.Histograms == nil {
			s.Histograms = make(map[string]Histogram, len(o.Histograms))
		}
		s.Histograms[k] = s.Histograms[k].merge(o.Histograms[k])
	}
	for _, k := range sortedKeys(o.Series) {
		if s.Series == nil {
			s.Series = make(map[string][]Point, len(o.Series))
		}
		merged := append(s.Series[k], o.Series[k]...)
		sort.SliceStable(merged, func(i, j int) bool { return merged[i].T < merged[j].T })
		s.Series[k] = merged
	}
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Names returns every metric name in the snapshot, sorted, without
// duplicates across sections.
func (s *Snapshot) Names() []string {
	if s == nil {
		return nil
	}
	seen := make(map[string]bool)
	var names []string
	add := func(ks []string) {
		for _, k := range ks {
			if !seen[k] {
				seen[k] = true
				names = append(names, k)
			}
		}
	}
	add(sortedKeys(s.Counters))
	add(sortedKeys(s.Gauges))
	add(sortedKeys(s.Histograms))
	add(sortedKeys(s.Series))
	sort.Strings(names)
	return names
}

// Encode renders the snapshot as canonical JSON.
func (s *Snapshot) Encode() ([]byte, error) {
	return json.Marshal(s)
}

// Decode parses a snapshot previously produced by Encode. Corrupt
// input returns an error, never a panic.
func Decode(b []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("metrics: decode: %w", err)
	}
	return &s, nil
}

// Dump renders the snapshot as deterministic plain text, one metric per
// line, sorted by name within each section — the format cmd/runstat
// prints and the determinism tests pin byte for byte.
func (s *Snapshot) Dump() string {
	if s.Empty() {
		return ""
	}
	var b strings.Builder
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %s %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge %s %g\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		h := s.Histograms[k]
		fmt.Fprintf(&b, "hist %s count=%d sum=%d min=%d max=%d mean=%.3f\n",
			k, h.Count, h.Sum, h.Min, h.Max, h.Mean())
	}
	for _, k := range sortedKeys(s.Series) {
		fmt.Fprintf(&b, "series %s", k)
		for _, p := range s.Series[k] {
			fmt.Fprintf(&b, " %d:%g", p.T, p.V)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
