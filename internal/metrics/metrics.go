// Package metrics is the simulator's instrumentation substrate: a
// typed registry of counters, gauges, histograms and sim-time-bucketed
// time series, keyed by hierarchical slash-separated names such as
// "link/upi/s0-s1/tx_bytes".
//
// The registry obeys the same determinism contract as the rest of the
// simulation stack (DESIGN.md §3): it never reads wall clocks, every
// export iterates sorted keys, and its JSON codec produces byte-stable
// encodings, so two identical runs dump byte-identical metrics.
// Collection is off by default and nil-safe throughout — every method
// of a nil *Registry is a no-op — which lets model code instrument
// unconditionally and pay (almost) nothing when disabled.
package metrics

import (
	"math/bits"
)

// Registry accumulates metrics during one simulation scope (one timing
// window or one step-B trace pass). It is not safe for concurrent use;
// concurrency is obtained by giving each window its own registry and
// merging the resulting Snapshots in checkpoint order.
type Registry struct {
	counters map[string]uint64
	gauges   map[string]float64
	hists    map[string]*histogram
	series   map[string][]Point
}

// New returns an empty, enabled registry.
func New() *Registry { return &Registry{} }

// Enabled reports whether the registry records anything. A nil registry
// is the disabled (no-op) instrument.
func (r *Registry) Enabled() bool { return r != nil }

// Add increments the named counter by delta.
//
//starnuma:hotpath counters are bumped from per-event handlers
func (r *Registry) Add(name string, delta uint64) {
	if r == nil {
		return
	}
	if r.counters == nil {
		r.counters = make(map[string]uint64)
	}
	r.counters[name] += delta
}

// SetGauge records the latest value of the named gauge.
//
//starnuma:hotpath
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	if r.gauges == nil {
		r.gauges = make(map[string]float64)
	}
	r.gauges[name] = v
}

// Observe folds v into the named histogram (power-of-two buckets).
//
//starnuma:hotpath histograms are fed per dispatched event
func (r *Registry) Observe(name string, v int64) {
	if r == nil {
		return
	}
	if r.hists == nil {
		r.hists = make(map[string]*histogram)
	}
	h := r.hists[name]
	if h == nil {
		h = &histogram{} //starnumavet:allow hotalloc one allocation per histogram name, on its first observation only
		r.hists[name] = h
	}
	h.observe(v)
}

// Point appends a (t, v) sample to the named time series. t is a
// simulation bucket — typically the phase index or a sim-time bucket —
// never wall-clock time.
//
//starnuma:hotpath
func (r *Registry) Point(name string, t int64, v float64) {
	if r == nil {
		return
	}
	if r.series == nil {
		r.series = make(map[string][]Point)
	}
	//starnumavet:allow hotalloc amortized series growth; the backing array is retained for the whole run
	r.series[name] = append(r.series[name], Point{T: t, V: v})
}

// histogram is the mutable accumulator behind Observe.
type histogram struct {
	count    uint64
	sum      int64
	min, max int64
	buckets  [65]uint64 // index = bits.Len64(v); 0 holds v <= 0
}

func (h *histogram) observe(v int64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx]++
}

// snapshot converts the accumulator into its exportable form.
func (h *histogram) snapshot() Histogram {
	out := Histogram{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = int64(1) << uint(i-1)
		}
		out.Buckets = append(out.Buckets, Bucket{Lo: lo, N: n})
	}
	return out
}

// Snapshot freezes the registry into an immutable, serializable value.
// A nil or empty registry yields nil, so "no metrics collected" and
// "collection disabled" serialize identically.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for k, v := range r.counters {
			s.Counters[k] = v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			s.Gauges[k] = v
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]Histogram, len(r.hists))
		for k, h := range r.hists {
			s.Histograms[k] = h.snapshot()
		}
	}
	if len(r.series) > 0 {
		s.Series = make(map[string][]Point, len(r.series))
		for _, k := range sortedKeys(r.series) {
			s.Series[k] = append([]Point(nil), r.series[k]...)
		}
	}
	if s.Empty() {
		return nil
	}
	return s
}
