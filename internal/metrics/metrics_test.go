package metrics

import (
	"reflect"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	// None of these may panic.
	r.Add("a", 1)
	r.SetGauge("g", 2)
	r.Observe("h", 3)
	r.Point("s", 0, 4)
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %+v, want nil", snap)
	}
}

func TestEmptyRegistrySnapshotIsNil(t *testing.T) {
	if snap := New().Snapshot(); snap != nil {
		t.Fatalf("empty registry snapshot = %+v, want nil", snap)
	}
}

func TestRegistryAccumulates(t *testing.T) {
	r := New()
	r.Add("c", 2)
	r.Add("c", 3)
	r.SetGauge("g", 1.5)
	r.SetGauge("g", 2.5)
	r.Observe("h", 1)
	r.Observe("h", 7)
	r.Point("s", 0, 10)
	r.Point("s", 1, 20)
	s := r.Snapshot()
	if s.Counters["c"] != 5 {
		t.Errorf("counter = %d, want 5", s.Counters["c"])
	}
	if s.Gauges["g"] != 2.5 {
		t.Errorf("gauge = %v, want 2.5", s.Gauges["g"])
	}
	h := s.Histograms["h"]
	if h.Count != 2 || h.Sum != 8 || h.Min != 1 || h.Max != 7 {
		t.Errorf("hist = %+v", h)
	}
	if got := h.Mean(); got != 4 {
		t.Errorf("mean = %v, want 4", got)
	}
	want := []Point{{0, 10}, {1, 20}}
	if !reflect.DeepEqual(s.Series["s"], want) {
		t.Errorf("series = %v, want %v", s.Series["s"], want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	for _, v := range []int64{0, 1, 2, 3, 4, 1000} {
		r.Observe("h", v)
	}
	h := r.Snapshot().Histograms["h"]
	// 0 -> bucket lo 0; 1 -> lo 1; 2,3 -> lo 2; 4 -> lo 4; 1000 -> lo 512.
	want := []Bucket{{0, 1}, {1, 1}, {2, 2}, {4, 1}, {512, 1}}
	if !reflect.DeepEqual(h.Buckets, want) {
		t.Errorf("buckets = %v, want %v", h.Buckets, want)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := New()
	a.Add("c", 1)
	a.Observe("h", 2)
	a.Point("s", 0, 1)
	b := New()
	b.Add("c", 2)
	b.Add("only-b", 7)
	b.Observe("h", 8)
	b.Point("s", 1, 2)

	m := a.Snapshot()
	m.Merge(b.Snapshot())
	if m.Counters["c"] != 3 || m.Counters["only-b"] != 7 {
		t.Errorf("merged counters = %v", m.Counters)
	}
	h := m.Histograms["h"]
	if h.Count != 2 || h.Sum != 10 || h.Min != 2 || h.Max != 8 {
		t.Errorf("merged hist = %+v", h)
	}
	want := []Point{{0, 1}, {1, 2}}
	if !reflect.DeepEqual(m.Series["s"], want) {
		t.Errorf("merged series = %v, want %v", m.Series["s"], want)
	}
	// Merging nil is a no-op.
	before := m.Dump()
	m.Merge(nil)
	if m.Dump() != before {
		t.Error("Merge(nil) changed the snapshot")
	}
}

func TestMergeOrderIndependentForDistinctT(t *testing.T) {
	mk := func(t0, t1 int64) *Snapshot {
		r := New()
		r.Point("s", t0, float64(t0))
		r.Point("s", t1, float64(t1))
		return r.Snapshot()
	}
	a := &Snapshot{}
	a.Merge(mk(0, 1))
	a.Merge(mk(2, 3))
	b := &Snapshot{}
	b.Merge(mk(2, 3))
	b.Merge(mk(0, 1))
	if a.Dump() != b.Dump() {
		t.Fatalf("merge order changed series:\n%s\nvs\n%s", a.Dump(), b.Dump())
	}
}

func TestCloneIsDeepAndNilSafe(t *testing.T) {
	var nilSnap *Snapshot
	if nilSnap.Clone() != nil {
		t.Fatal("nil clone not nil")
	}
	r := New()
	r.Add("c", 1)
	r.Point("s", 0, 1)
	s := r.Snapshot()
	c := s.Clone()
	c.Counters["c"] = 99
	c.Series["s"][0].V = 99
	if s.Counters["c"] != 1 || s.Series["s"][0].V != 1 {
		t.Fatalf("clone shares storage with original: %+v", s)
	}
}

func TestDumpDeterministicAndSorted(t *testing.T) {
	build := func() *Snapshot {
		r := New()
		// Insert in scrambled order; Dump must sort.
		r.Add("z/last", 1)
		r.Add("a/first", 2)
		r.SetGauge("m/gauge", 3)
		r.Observe("h/hist", 4)
		r.Point("s/series", 0, 5)
		return r.Snapshot()
	}
	d1, d2 := build().Dump(), build().Dump()
	if d1 != d2 {
		t.Fatalf("dump not deterministic:\n%s\nvs\n%s", d1, d2)
	}
	want := "counter a/first 2\ncounter z/last 1\ngauge m/gauge 3\n" +
		"hist h/hist count=1 sum=4 min=4 max=4 mean=4.000\nseries s/series 0:5\n"
	if d1 != want {
		t.Fatalf("dump = %q, want %q", d1, want)
	}
	var empty *Snapshot
	if empty.Dump() != "" {
		t.Error("nil snapshot dump not empty")
	}
}

func TestNames(t *testing.T) {
	r := New()
	r.Add("b", 1)
	r.SetGauge("a", 1)
	r.Observe("c", 1)
	r.Point("a", 0, 1) // duplicate across sections
	got := r.Snapshot().Names()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := New()
	r.Add("c", 42)
	r.SetGauge("g", 0.125)
	r.Observe("h", 9)
	r.Point("s", 3, 1.5)
	s := r.Snapshot()
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip drifted:\n want %+v\n got %+v", s, got)
	}
	// Byte-stable encoding.
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatalf("re-encoding not byte-identical:\n%s\nvs\n%s", b, b2)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	for _, in := range []string{"{", "null garbage", `{"counters":"nope"}`} {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("Decode(%q) accepted corrupt input", in)
		}
	}
	// Valid null decodes to an empty snapshot.
	s, err := Decode([]byte("null"))
	if err != nil || !s.Empty() {
		t.Fatalf("Decode(null) = %+v, %v", s, err)
	}
}
