package metrics

import (
	"reflect"
	"testing"
)

// fuzzSeed builds a realistic encoded snapshot covering every section.
func fuzzSeed(f *testing.F) []byte {
	f.Helper()
	r := New()
	r.Add("link/upi/s0-s1/tx_bytes", 123456)
	r.Add("sim/events/wake", 42)
	r.SetGauge("sim/queue_depth_max", 17)
	for _, v := range []int64{0, 1, 100, 100000} {
		r.Observe("sim/queue_depth", v)
	}
	r.Point("pool/resident_pages", 0, 12)
	r.Point("pool/resident_pages", 1, 53)
	b, err := r.Snapshot().Encode()
	if err != nil {
		f.Fatal(err)
	}
	return b
}

// FuzzSnapshotRoundTrip guards the metrics JSON codec the same way
// runner.FuzzResultRoundTrip guards the result cache: decoding
// arbitrary bytes must never panic (snapshots travel inside cached
// results, so any byte string can reach the decoder), and entries that
// do decode must round-trip exactly — a lossy codec would make a warm
// cache dump different metrics than a cold run.
func FuzzSnapshotRoundTrip(f *testing.F) {
	seed := fuzzSeed(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte(`{`))
	f.Add([]byte(`{"counters":{"a":1},"series":{"s":[{"t":0,"v":1e308}]}}`))
	f.Add([]byte(`{"histograms":{"h":{"count":1,"sum":-9,"min":-9,"max":-9}}}`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return // corrupt input: an error, never a panic
		}
		b, err := s.Encode()
		if err != nil {
			t.Fatalf("decoded snapshot failed to re-encode: %v", err)
		}
		s2, err := Decode(b)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v\n%s", err, b)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("decode(encode(s)) != s:\n s: %+v\n s2: %+v", s, s2)
		}
		// Dump must be total: any decodable snapshot renders.
		_ = s.Dump()
	})
}
