package exp

import (
	"os"
	"sort"
	"strings"
	"testing"

	"starnuma/internal/core"
	"starnuma/internal/fault"
	"starnuma/internal/workload"
)

// TestMetricNamespaceDocumented runs a small instrumented simulation
// (with a fault plan active, so fault/* keys appear) and fails when an
// emitted metric's top-level prefix has no section in
// docs/OBSERVABILITY.md. Adding a new metric family without documenting
// it breaks the build; the doc's namespace table cannot rot silently.
func TestMetricNamespaceDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)

	spec, err := workload.ByName("BFS", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultSim()
	cfg.Phases = 2
	cfg.PhaseInstr = 200_000
	cfg.TimedInstr = 20_000
	cfg.WarmupInstr = 2_000
	cfg.CollectMetrics = true
	// Attribution on so the attrib/* mirror keys appear and must be
	// documented too.
	cfg.Attrib = true
	cfg.Faults = fault.FlapPlan()
	res, err := core.Run(core.StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Empty() {
		t.Fatal("CollectMetrics=true produced an empty snapshot")
	}

	prefixes := make(map[string]bool)
	collect := func(name string) {
		p, _, ok := strings.Cut(name, "/")
		if !ok {
			t.Errorf("metric %q is not hierarchical (no / separator)", name)
			return
		}
		prefixes[p] = true
	}
	for name := range res.Metrics.Counters {
		collect(name)
	}
	for name := range res.Metrics.Gauges {
		collect(name)
	}
	for name := range res.Metrics.Histograms {
		collect(name)
	}
	for name := range res.Metrics.Series {
		collect(name)
	}

	var missing []string
	for p := range prefixes {
		// Each namespace gets a heading of the form "### `sim/` — ...".
		if !strings.Contains(text, "`"+p+"/`") {
			missing = append(missing, p)
		}
	}
	sort.Strings(missing)
	for _, p := range missing {
		t.Errorf("metric prefix %q emitted but undocumented: add a `### `+\"`%s/`\"+` section to docs/OBSERVABILITY.md", p, p)
	}
}
