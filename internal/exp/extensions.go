package exp

import (
	"fmt"

	"starnuma/internal/core"
	"starnuma/internal/migrate"
	"starnuma/internal/pool"
	"starnuma/internal/stats"
	"starnuma/internal/workload"
)

// ExtReplication quantifies §V-F's replication-vs-pooling discussion,
// which the paper argues qualitatively: replicating read-only vagabond
// pages can substitute for the pool, but read-write sharing makes
// software replica coherence prohibitive, and the two techniques
// compose. We run an idealized best-case replication (whole-run
// knowledge selects hot, widely-shared, read-mostly pages).
func (r *Runner) ExtReplication() (*Table, error) {
	specs, err := r.opts.specs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "extrep",
		Title:   "Extension (§V-F): page replication vs memory pooling",
		Columns: []string{"workload", "baseline+repl", "naive repl (r/w too)", "starnuma", "starnuma+repl", "repl pages", "write stalls"},
		Notes:   "§V-F (qualitative): replication suits read-only sharing (TC) but software coherence on read-write pages (BFS, Masstree) is prohibitive; replication and pooling are complementary",
	}
	cfgR := r.opts.Sim
	cfgR.Policy = core.PolicyPerfectBaseline
	cfgR.Replication = migrate.DefaultReplicationConfig()
	cfgR.Replication.Enable = true
	// Naive replication ignores the read-only filter — the paper's
	// "prohibitive overheads" case: every store to a replicated page
	// pays the software coherence penalty.
	cfgN := cfgR
	cfgN.Replication.MaxWriteFrac = 1.0
	cfgB := r.opts.Sim
	cfgB.Policy = core.PolicyStarNUMA
	cfgB.Replication = cfgR.Replication
	replV := variant{"baseline-repl", core.BaselineSystem(), cfgR}
	naiveV := variant{"baseline-repl-naive", core.BaselineSystem(), cfgN}
	bothV := variant{"starnuma-repl", core.StarNUMASystem(), cfgB}
	if err := r.prefetch(specs, r.baselineVariant(), r.starnumaVariant(), replV, naiveV, bothV); err != nil {
		return nil, err
	}
	var vRepl, vNaive, vSN, vBoth []float64
	for _, spec := range specs {
		rb, err := r.baseline(spec)
		if err != nil {
			return nil, err
		}
		rRepl, err := r.runVariant(replV, spec)
		if err != nil {
			return nil, err
		}
		rNaive, err := r.runVariant(naiveV, spec)
		if err != nil {
			return nil, err
		}
		rs, err := r.starnuma(spec)
		if err != nil {
			return nil, err
		}
		rBoth, err := r.runVariant(bothV, spec)
		if err != nil {
			return nil, err
		}
		a, n, b, c := core.Speedup(rRepl, rb), core.Speedup(rNaive, rb),
			core.Speedup(rs, rb), core.Speedup(rBoth, rb)
		vRepl, vNaive, vSN, vBoth = append(vRepl, a), append(vNaive, n), append(vSN, b), append(vBoth, c)
		t.Rows = append(t.Rows, []string{
			spec.Name, x(a), x(n), x(b), x(c),
			fmt.Sprintf("%d", rNaive.ReplicatedPages),
			fmt.Sprintf("%d", rNaive.ReplicaWriteStalls),
		})
	}
	t.Rows = append(t.Rows, []string{"gmean",
		x(stats.GeoMean(vRepl)), x(stats.GeoMean(vNaive)),
		x(stats.GeoMean(vSN)), x(stats.GeoMean(vBoth)), "", ""})
	return t, nil
}

// Ext32Sockets evaluates §III-B's scaling argument across the paper's
// target range (8-32 sockets): at 8 sockets NUMA pressure is milder so
// the pool helps less; at 32 the pool needs an intermediate CXL switch
// (~270ns end-to-end pool access, only 25% under a 2-hop access) yet
// the bandwidth benefit remains.
func (r *Runner) Ext32Sockets() (*Table, error) {
	specs, err := r.opts.specs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext32",
		Title:   "Extension (§III-B): StarNUMA across system scales (8/16/32 sockets)",
		Columns: []string{"workload", "8-socket", "16-socket", "32-socket (switched)"},
		Notes:   "§III-B: with a CXL switch the latency gap to a 2-hop access shrinks, but the pool's added bandwidth for heavily shared pages remains; the design targets 8-32 sockets",
	}

	base8 := core.BaselineSystem()
	base8.Topology.Sockets = 8
	sn8 := core.StarNUMASystem()
	sn8.Topology.Sockets = 8

	base32 := core.BaselineSystem()
	base32.Topology.Sockets = 32
	sn32 := core.StarNUMASystem()
	sn32.Topology.Sockets = 32
	sn32.Pool.Latency = pool.SwitchedLatency()
	sn32.Topology.CXLOneWay = sn32.Pool.Latency.OneWay()

	cfgB := r.opts.Sim
	cfgB.Policy = core.PolicyPerfectBaseline
	cfgS := r.opts.Sim
	cfgS.Policy = core.PolicyStarNUMA
	// 8 sockets: Algorithm 1's "half the system" threshold is 4.
	cfgS8 := cfgS
	cfgS8.Migration.PoolSharerThreshold = 4
	cfgS32 := cfgS
	cfgS32.Migration.PoolSharerThreshold = 16
	b8 := variant{"baseline-8", base8, cfgB}
	s8 := variant{"starnuma-8", sn8, cfgS8}
	b32 := variant{"baseline-32", base32, cfgB}
	s32 := variant{"starnuma-32", sn32, cfgS32}
	if err := r.prefetch(specs, b8, s8, r.baselineVariant(), r.starnumaVariant(), b32, s32); err != nil {
		return nil, err
	}

	var v8, v16, v32 []float64
	for _, spec := range specs {
		rb8, err := r.runVariant(b8, spec)
		if err != nil {
			return nil, err
		}
		rs8, err := r.runVariant(s8, spec)
		if err != nil {
			return nil, err
		}

		rb16, err := r.baseline(spec)
		if err != nil {
			return nil, err
		}
		rs16, err := r.starnuma(spec)
		if err != nil {
			return nil, err
		}

		rb32, err := r.runVariant(b32, spec)
		if err != nil {
			return nil, err
		}
		rs32, err := r.runVariant(s32, spec)
		if err != nil {
			return nil, err
		}

		a, b, c := core.Speedup(rs8, rb8), core.Speedup(rs16, rb16), core.Speedup(rs32, rb32)
		v8, v16, v32 = append(v8, a), append(v16, b), append(v32, c)
		t.Rows = append(t.Rows, []string{spec.Name, x(a), x(b), x(c)})
	}
	t.Rows = append(t.Rows, []string{"gmean",
		x(stats.GeoMean(v8)), x(stats.GeoMean(v16)), x(stats.GeoMean(v32))})
	return t, nil
}

// ExtSoftwareTracking quantifies §III-D1's motivation for hardware
// tracking support: conventional OS page-poisoning sampling either
// monitors too few pages to find pool candidates fast enough (small
// samples) or drowns the workload in minor page faults (large samples).
func (r *Runner) ExtSoftwareTracking() (*Table, error) {
	specs, err := r.opts.specs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "extsw",
		Title:   "Extension (§III-D1): hardware tracking vs OS sampling",
		Columns: []string{"workload", "hardware", "sample 5%", "sample 25%", "sample 100%", "faults@100%"},
		Notes:   "§III-D1: practical software sample sizes cannot identify pool candidates at a sufficient rate; monitoring everything in software is fault-prohibitive — hence hardware support",
	}
	fracs := []float64{0.05, 0.25, 1.0}
	swVariants := make([]variant, len(fracs))
	for i, frac := range fracs {
		cfg := r.opts.Sim
		cfg.Policy = core.PolicyStarNUMA
		cfg.SoftwareTracking = core.DefaultSoftwareTracking()
		cfg.SoftwareTracking.Enable = true
		cfg.SoftwareTracking.SampleFrac = frac
		swVariants[i] = variant{fmt.Sprintf("starnuma-sw%.2f", frac), core.StarNUMASystem(), cfg}
	}
	if err := r.prefetch(specs, append([]variant{r.baselineVariant(), r.starnumaVariant()}, swVariants...)...); err != nil {
		return nil, err
	}
	var gms [][]float64 = make([][]float64, 1+len(fracs))
	for _, spec := range specs {
		rb, err := r.baseline(spec)
		if err != nil {
			return nil, err
		}
		hw, err := r.starnuma(spec)
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name, x(core.Speedup(hw, rb))}
		gms[0] = append(gms[0], core.Speedup(hw, rb))
		var lastFaults uint64
		for i := range fracs {
			res, err := r.runVariant(swVariants[i], spec)
			if err != nil {
				return nil, err
			}
			row = append(row, x(core.Speedup(res, rb)))
			gms[1+i] = append(gms[1+i], core.Speedup(res, rb))
			lastFaults = res.PageFaults
		}
		row = append(row, fmt.Sprintf("%d", lastFaults))
		t.Rows = append(t.Rows, row)
	}
	gm := []string{"gmean"}
	for _, vs := range gms {
		gm = append(gm, x(stats.GeoMean(vs)))
	}
	gm = append(gm, "")
	t.Rows = append(t.Rows, gm)
	return t, nil
}

// ExtDrift probes §V-B's stability observation from the other side: the
// paper finds sharing patterns stable enough that oracular *static*
// placement is at least as good as dynamic migration (Fig. 9). Under
// non-stationary placement affinity the ordering must flip. Widely
// shared pages are immune by construction (the pool is a good home no
// matter *which* sockets share), so the probe uses POA — the fully
// private workload — with a fraction of its pages rotating owner socket
// every phase: dynamic migration re-localises them each phase, a
// one-shot oracle cannot.
func (r *Runner) ExtDrift() (*Table, error) {
	t := &Table{
		ID:      "extdrift",
		Title:   "Extension (§V-B): dynamic migration vs static oracle under placement drift (POA)",
		Columns: []string{"drift", "dynamic migration", "static oracle", "starnuma dynamic"},
		Notes:   "Fig. 9 shows static ≥ dynamic for the paper's stable workloads; once page affinity drifts, dynamic migration wins and the oracle goes stale — quantifying when migration machinery earns its keep",
	}
	// Reference: baseline with dynamic perfect-knowledge migration.
	cfgB := r.opts.Sim
	cfgB.Policy = core.PolicyPerfectBaseline
	// Static oracle on the same architecture.
	cfgS := r.opts.Sim
	cfgS.Policy = core.PolicyNone
	cfgS.StaticOracle = true
	// StarNUMA's own policy on the pool-equipped system.
	cfgD := r.opts.Sim
	cfgD.Policy = core.PolicyStarNUMA

	drifts := []float64{0, 0.25, 0.5}
	type driftRow struct {
		drift            float64
		spec             workload.Spec
		dyn, stat, starn variant
	}
	var rows []driftRow
	for _, drift := range drifts {
		spec, err := workload.ByName("POA", r.opts.Scale)
		if err != nil {
			return nil, err
		}
		spec.DriftFrac = drift
		// An epoch lasts two phases: long enough for phase-granularity
		// migration to catch up, short enough that a one-shot oracle is
		// stale most of the time.
		spec.DriftPeriod = 2
		spec.Name = fmt.Sprintf("POA-drift%.0f%%", 100*drift)
		rows = append(rows, driftRow{
			drift: drift,
			spec:  spec,
			dyn:   variant{"drift-dynamic-" + spec.Name, core.BaselineSystem(), cfgB},
			stat:  variant{"drift-static-" + spec.Name, core.BaselineSystem(), cfgS},
			starn: variant{"drift-starnuma-" + spec.Name, core.StarNUMASystem(), cfgD},
		})
	}
	for _, row := range rows {
		if err := r.prefetch([]workload.Spec{row.spec}, row.dyn, row.stat, row.starn); err != nil {
			return nil, err
		}
	}
	for _, row := range rows {
		rb, err := r.runVariant(row.dyn, row.spec)
		if err != nil {
			return nil, err
		}
		rs, err := r.runVariant(row.stat, row.spec)
		if err != nil {
			return nil, err
		}
		rd, err := r.runVariant(row.starn, row.spec)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", 100*row.drift),
			x(1.0), x(core.Speedup(rs, rb)), x(core.Speedup(rd, rb)),
		})
	}
	return t, nil
}
