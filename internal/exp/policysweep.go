package exp

import (
	"fmt"
	"sort"

	"starnuma/internal/attrib"
	"starnuma/internal/core"
	"starnuma/internal/fault"
	"starnuma/internal/migrate"
	"starnuma/internal/stats"
)

// sweepPlans are the fault plans the tournament scores under: fault-free,
// transient CXL flaps, and a persistent 4× CXL degradation. Kill plans
// (dead channel / dead device) are deliberately excluded — the zero-cost
// oracle commits its whole-run placement up front and cannot drain a
// dying pool, so kill plans would measure drain mechanics rather than
// placement quality.
func sweepPlans() []struct {
	name string
	plan *fault.Plan
} {
	return []struct {
		name string
		plan *fault.Plan
	}{
		{"none", nil},
		{"flap", fault.FlapPlan()},
		{"degrade", fault.DegradePlan(4)},
	}
}

// PolicySweep runs the migration-policy tournament: every policy in the
// migrate registry, each on the pooled StarNUMA system across the full
// workload suite and the sweep's fault plans, every cell normalized to
// the paper's favoured baseline (pool-less, perfect zero-cost knowledge,
// fault-free). Rows are ranked by the overall geometric-mean speedup —
// ties broken by name — so the table reads as a leaderboard. The
// zero-cost oracle is the expected winner (Fig. 9's static-oracle 1.46×
// vs dynamic 1.31× on the pooled system); a dynamic policy beating it
// signals a modeling bug, which is exactly what CI asserts.
func (r *Runner) PolicySweep() (*Table, error) {
	specs, err := r.opts.specs()
	if err != nil {
		return nil, err
	}
	plans := sweepPlans()
	pols := migrate.Policies()

	base := r.baselineVariant()
	vs := []variant{base}
	for _, d := range pols {
		for _, pl := range plans {
			cfg := r.opts.Sim
			cfg.Policy = core.PolicySpec{Name: d.Name}
			cfg.Faults = pl.plan
			vs = append(vs, variant{"psweep-" + d.Name + "-" + pl.name,
				core.StarNUMASystem(), cfg})
		}
	}
	if err := r.prefetch(specs, vs...); err != nil {
		return nil, err
	}

	type ranked struct {
		name    string
		perPlan []float64
		overall float64
		// stalls aggregates the policy's stall attribution across every
		// (plan, workload) run when -attrib is enabled.
		stalls []int64
	}
	rows := make([]ranked, 0, len(pols))
	idx := 1 // vs[0] is the baseline anchor
	for _, d := range pols {
		rk := ranked{name: d.Name}
		if r.opts.Sim.Attrib {
			rk.stalls = make([]int64, attrib.NumCategories)
		}
		var all []float64
		for range plans {
			v := vs[idx]
			idx++
			var ratios []float64
			for _, spec := range specs {
				b, err := r.runVariant(base, spec)
				if err != nil {
					return nil, err
				}
				res, err := r.runVariant(v, spec)
				if err != nil {
					return nil, err
				}
				s := core.Speedup(res, b)
				ratios = append(ratios, s)
				all = append(all, s)
				if rk.stalls != nil && res.Profile != nil {
					// Cache recalls of attribution-off entries carry no
					// profile; mismatched shapes are skipped the same way.
					_ = res.Profile.AddCategoryTotals(rk.stalls)
				}
			}
			rk.perPlan = append(rk.perPlan, stats.GeoMean(ratios))
		}
		rk.overall = stats.GeoMean(all)
		rows = append(rows, rk)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].overall > rows[j].overall {
			return true
		}
		if rows[i].overall < rows[j].overall {
			return false
		}
		return rows[i].name < rows[j].name
	})

	t := &Table{
		ID:    "policysweep",
		Title: "Migration-policy tournament: gmean speedup vs favoured baseline",
		Columns: []string{"rank", "policy", "fault-free", "flap", "degrade 4x",
			"overall"},
		Notes: "extension (§V-B/§VI): leaderboard across fault plans, all on the pooled system, normalized to the fault-free pool-less perfect baseline; the zero-cost oracle must rank first (Fig. 9: static oracle 1.46x vs dynamic 1.31x) — a dynamic policy beating it would signal a modeling bug",
	}
	if r.opts.Sim.Attrib {
		t.Columns = append(t.Columns, "top-stall", "top-stall-share")
	}
	for i, rk := range rows {
		row := []string{fmt.Sprintf("%d", i+1), rk.name}
		for _, g := range rk.perPlan {
			row = append(row, x(g))
		}
		row = append(row, x(rk.overall))
		if rk.stalls != nil {
			cat, share := topStall(rk.stalls)
			row = append(row, cat, share)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// topStall names the dominant stall category of an attribution
// aggregate and its share of total stall time; "-" cells when the
// aggregate is empty (e.g. every run recalled from an attribution-off
// cache entry).
func topStall(totals []int64) (name, share string) {
	var sum, best int64
	bi := -1
	for i, v := range totals {
		sum += v
		if v > best {
			best, bi = v, i
		}
	}
	if sum == 0 || bi < 0 {
		return "-", "-"
	}
	return attrib.Category(bi).String(), fmt.Sprintf("%.1f%%", 100*float64(best)/float64(sum))
}
