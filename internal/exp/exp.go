// Package exp reproduces every table and figure of the StarNUMA
// evaluation (§V). Each experiment returns a Table whose rows mirror the
// series the paper reports; cmd/expall renders the full set and
// EXPERIMENTS.md records paper-vs-measured values.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"starnuma/internal/core"
	"starnuma/internal/runner"
	"starnuma/internal/workload"
)

// Table is a printable experiment result.
type Table struct {
	ID      string // e.g. "fig8a"
	Title   string
	Columns []string
	Rows    [][]string
	// Notes records the paper's reported values/shape for comparison.
	Notes string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				// Ragged row: cells beyond the column count render
				// unpadded rather than panicking.
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.Notes)
	}
	return b.String()
}

// Options configures an experiment run.
type Options struct {
	// Scale multiplies workload footprints (DESIGN.md §4).
	Scale float64
	// Sim is the base methodology configuration; experiments override
	// policy/tracker per variant.
	Sim core.SimConfig
	// Workloads restricts the suite (nil = all eight).
	Workloads []string

	// Jobs is the worker-slot count of the parallel execution runner
	// (0 = GOMAXPROCS).
	Jobs int
	// CacheDir enables the persistent result cache when non-empty
	// (internal/runner; keyed by system+sim+workload content hash).
	CacheDir string
	// Reporter observes job progress; nil = silent.
	Reporter runner.Reporter

	// Trace is the event-trace output path (WriteTrace); non-empty
	// implies Sim.Trace. Set CacheDir empty alongside it: cache hits
	// skip simulation and therefore contribute no events.
	Trace string
	// WallTrace, when non-nil, is the wall-clock runner-lane recorder;
	// it must also be wired into Reporter to observe anything.
	WallTrace *runner.TraceReporter
}

// Quick returns bench/test-sized options (minutes for the full suite).
func Quick() Options {
	return Options{Scale: 0.125, Sim: core.QuickSim()}
}

// Default returns the full evaluation options.
func Default() Options {
	return Options{Scale: 0.25, Sim: core.DefaultSim()}
}

// specs resolves the selected workloads.
func (o Options) specs() ([]workload.Spec, error) {
	all := workload.Suite(o.Scale)
	if len(o.Workloads) == 0 {
		return all, nil
	}
	want := map[string]bool{}
	for _, n := range o.Workloads {
		want[n] = true
	}
	var out []workload.Spec
	for _, s := range all {
		if want[s.Name] {
			out = append(out, s)
			delete(want, s.Name)
		}
	}
	if len(want) != 0 {
		var missing []string
		for n := range want {
			missing = append(missing, n)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("exp: unknown workloads %v", missing)
	}
	return out, nil
}

// Runner memoises simulation results so experiments sharing a
// configuration (e.g. the baseline used by Figs. 8-12) simulate it
// once, and routes execution through internal/runner's parallel
// scheduler: each figure prefetches its (variant × workload) grid as
// one wave of suite-level jobs, and each job's step-C windows fan out
// as window-level jobs.
type Runner struct {
	opts Options
	exec *runner.Runner

	mu   sync.Mutex
	memo map[string]*core.Result
}

// NewRunner creates a runner for the given options.
func NewRunner(opts Options) *Runner {
	return &Runner{
		opts: opts,
		exec: runner.New(runner.Config{
			Jobs:     opts.Jobs,
			CacheDir: opts.CacheDir,
			Reporter: opts.Reporter,
		}),
		memo: make(map[string]*core.Result),
	}
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opts }

// Exec returns the underlying execution scheduler (progress metrics).
func (r *Runner) Exec() *runner.Runner { return r.exec }

func (r *Runner) memoGet(key string) (*core.Result, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.memo[key]
	return res, ok
}

func (r *Runner) memoPut(key string, res *core.Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.memo[key] = res
}

// run executes (or recalls) one (variant, workload) simulation. The
// variant key must uniquely identify sys+cfg.
func (r *Runner) run(variant string, sys core.SystemConfig, cfg core.SimConfig, spec workload.Spec) (*core.Result, error) {
	key := variant + "|" + spec.Name
	if res, ok := r.memoGet(key); ok {
		return res, nil
	}
	res, err := r.exec.Run(variant+"/"+spec.Name, sys, cfg, spec)
	if err != nil {
		return nil, fmt.Errorf("exp: %s/%s: %w", variant, spec.Name, err)
	}
	r.memoPut(key, res)
	return res, nil
}

// variant bundles a named (system, methodology) configuration. The name
// doubles as the memo key prefix, so it must uniquely identify sys+cfg.
type variant struct {
	name string
	sys  core.SystemConfig
	cfg  core.SimConfig
}

// runVariant recalls or computes one (variant, workload) pair.
func (r *Runner) runVariant(v variant, spec workload.Spec) (*core.Result, error) {
	return r.run(v.name, v.sys, v.cfg, spec)
}

// prefetch fans every not-yet-memoised (variant × workload) pair
// through the parallel scheduler in one wave; subsequent runVariant
// calls for these pairs are memo hits. This is the suite-level job
// decomposition: figures call it before their sequential row loops.
func (r *Runner) prefetch(specs []workload.Spec, vs ...variant) error {
	var jobs []runner.Job
	var keys []string
	for _, v := range vs {
		for _, spec := range specs {
			key := v.name + "|" + spec.Name
			if _, ok := r.memoGet(key); ok {
				continue
			}
			jobs = append(jobs, runner.Job{
				Label: v.name + "/" + spec.Name,
				Sys:   v.sys, Cfg: v.cfg, Spec: spec,
			})
			keys = append(keys, key)
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	results, err := r.exec.RunAll(jobs)
	if err != nil {
		return fmt.Errorf("exp: prefetch: %w", err)
	}
	for i, res := range results {
		r.memoPut(keys[i], res)
	}
	return nil
}

// baselineVariant is the paper's favoured baseline: no pool, perfect
// zero-cost page knowledge.
func (r *Runner) baselineVariant() variant {
	cfg := r.opts.Sim
	cfg.Policy = core.PolicyPerfectBaseline
	return variant{"baseline", core.BaselineSystem(), cfg}
}

// starnumaVariant is the default StarNUMA configuration (T16 tracker).
// A non-default Options.Sim.Policy (the -policy flag) is respected and
// suffixed into the variant name, so the memo key still uniquely
// identifies the configuration; the default keeps the historical name
// and therefore the historical cache keys.
func (r *Runner) starnumaVariant() variant {
	cfg := r.opts.Sim
	name := "starnuma-t16"
	if tag := cfg.Policy.Tag(); tag != "starnuma" {
		name += "@" + tag
	} else {
		cfg.Policy = core.PolicyStarNUMA
	}
	return variant{name, core.StarNUMASystem(), cfg}
}

// baseline runs the paper's favoured baseline for one workload.
func (r *Runner) baseline(spec workload.Spec) (*core.Result, error) {
	return r.runVariant(r.baselineVariant(), spec)
}

// starnuma runs the default StarNUMA configuration for one workload.
func (r *Runner) starnuma(spec workload.Spec) (*core.Result, error) {
	return r.runVariant(r.starnumaVariant(), spec)
}

// formatting helpers

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func ns(v float64) string  { return fmt.Sprintf("%.0fns", v) }
func x(v float64) string   { return fmt.Sprintf("%.2fx", v) }
