package exp

import (
	"fmt"
	"strings"
)

// CSV renders the table as RFC-4180-style comma-separated values with a
// header row. Cells containing commas, quotes or newlines are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Markdown renders the table as a GitHub-flavoured Markdown table with a
// heading and the paper note as a trailing blockquote.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		for i := range cells {
			if i < len(row) {
				cells[i] = strings.ReplaceAll(row[i], "|", "\\|")
			}
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n> paper: %s\n", t.Notes)
	}
	return b.String()
}

// Format renders the table in the named format: "text" (default),
// "csv", or "md"/"markdown".
func (t *Table) Format(format string) (string, error) {
	switch format {
	case "", "text":
		return t.Render(), nil
	case "csv":
		return t.CSV(), nil
	case "md", "markdown":
		return t.Markdown(), nil
	default:
		return "", fmt.Errorf("exp: unknown format %q (text, csv, md)", format)
	}
}

// BarChart renders one numeric column (cells like "1.54x", "48.0%",
// "360ns") as horizontal ASCII bars — a terminal rendition of the
// paper's bar figures. Rows whose cell does not parse (e.g. blank
// summary cells) are skipped. width is the maximum bar length in
// characters (default 40 if non-positive).
func (t *Table) BarChart(col, width int) (string, error) {
	if col < 0 || col >= len(t.Columns) {
		return "", fmt.Errorf("exp: column %d out of range (%d columns)", col, len(t.Columns))
	}
	if width <= 0 {
		width = 40
	}
	type bar struct {
		label string
		text  string
		val   float64
	}
	var bars []bar
	max := 0.0
	labelW := 0
	for _, row := range t.Rows {
		if col >= len(row) {
			continue
		}
		v, ok := parseNumeric(row[col])
		if !ok {
			continue
		}
		b := bar{label: row[0], text: row[col], val: v}
		bars = append(bars, b)
		if v > max {
			max = v
		}
		if len(b.label) > labelW {
			labelW = len(b.label)
		}
	}
	if len(bars) == 0 {
		return "", fmt.Errorf("exp: column %q has no numeric cells", t.Columns[col])
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s — %s ==\n", t.ID, t.Title, t.Columns[col])
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(b.val / max * float64(width))
		}
		fmt.Fprintf(&sb, "%-*s %-8s %s\n", labelW, b.label, b.text, strings.Repeat("█", n))
	}
	return sb.String(), nil
}

// parseNumeric strips the unit suffixes used in tables and parses the
// remainder.
func parseNumeric(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	for _, suffix := range []string{"x", "%", "ns"} {
		s = strings.TrimSuffix(s, suffix)
	}
	if s == "" {
		return 0, false
	}
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
		return 0, false
	}
	return v, true
}
