package exp

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"starnuma/internal/evtrace"
)

// WriteTrace assembles every memoised run's event-trace buffer — plus
// the wall-clock runner lane, when Options.WallTrace observed the run —
// into one Chrome trace_event JSON document at Options.Trace. Each
// run's lanes are prefixed "variant/workload" (the memo key with "|"
// replaced), so all simulations coexist on one Perfetto timeline.
// No-op when Options.Trace is empty.
func (r *Runner) WriteTrace() error {
	path := r.opts.Trace
	if path == "" {
		return nil
	}
	bd := evtrace.NewBuilder()
	r.mu.Lock()
	keys := make([]string, 0, len(r.memo))
	for k := range r.memo {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		bd.Add(strings.ReplaceAll(k, "|", "/"), r.memo[k].Trace)
	}
	r.mu.Unlock()
	if r.opts.WallTrace != nil {
		bd.Add("", r.opts.WallTrace.Buffer())
	}
	tr := bd.Build()
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("exp: trace: %w", err)
	}
	b, err := tr.Encode()
	if err != nil {
		return fmt.Errorf("exp: trace: %w", err)
	}
	return os.WriteFile(path, b, 0o644)
}
