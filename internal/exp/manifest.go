package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"starnuma/internal/metrics"
)

// ManifestSchema versions the run-manifest document; bump on
// incompatible shape changes.
const ManifestSchema = "starnuma-run-manifest-v1"

// ManifestRun is one simulated (variant, workload) pair of a manifest:
// its memo key, headline results, and the instrumentation snapshot when
// collection was enabled.
type ManifestRun struct {
	// Key is the runner's memo key, "variant|workload".
	Key      string            `json:"key"`
	Workload string            `json:"workload"`
	Policy   string            `json:"policy"`
	Tracker  string            `json:"tracker"`
	IPC      float64           `json:"ipc"`
	MPKI     float64           `json:"mpki"`
	Metrics  *metrics.Snapshot `json:"metrics,omitempty"`
}

// Manifest is the -metrics output document: every simulation the
// experiment runner executed (or recalled), in sorted key order so the
// encoding is deterministic.
type Manifest struct {
	Schema string        `json:"schema"`
	Scale  float64       `json:"scale"`
	Phases int           `json:"phases"`
	Jobs   int           `json:"jobs"`
	Runs   []ManifestRun `json:"runs"`
}

// Manifest snapshots the runner's memoised results. Runs are sorted by
// memo key, so identical run sets encode byte-identically.
func (r *Runner) Manifest() *Manifest {
	m := &Manifest{
		Schema: ManifestSchema,
		Scale:  r.opts.Scale,
		Phases: r.opts.Sim.Phases,
		Jobs:   r.exec.Jobs(),
	}
	r.mu.Lock()
	keys := make([]string, 0, len(r.memo))
	for k := range r.memo {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		res := r.memo[k]
		m.Runs = append(m.Runs, ManifestRun{
			Key:      k,
			Workload: res.Workload,
			Policy:   res.Policy.String(),
			Tracker:  res.Tracker,
			IPC:      res.IPC,
			MPKI:     res.MPKI,
			Metrics:  res.Metrics,
		})
	}
	r.mu.Unlock()
	return m
}

// WriteManifest writes the runner's manifest as indented JSON to path.
func (r *Runner) WriteManifest(path string) error {
	b, err := json.MarshalIndent(r.Manifest(), "", "  ")
	if err != nil {
		return fmt.Errorf("exp: manifest: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
