package exp

import (
	"fmt"
	"testing"
)

func TestExtDriftSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	o := Quick()
	r := NewRunner(o)
	tbl, err := r.ExtDrift()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(tbl.Render())
	// At zero drift the static oracle matches dynamic migration; at high
	// drift it must fall behind (the Fig. 9 ordering reverses).
	atZero := parseX(t, tbl.Rows[0][2])
	atHigh := parseX(t, tbl.Rows[2][2])
	if atZero < 0.9 {
		t.Errorf("static oracle at zero drift = %v, want ~1.0", atZero)
	}
	if atHigh >= 0.95 {
		t.Errorf("static oracle at 50%% drift = %v, want clearly below dynamic's 1.0", atHigh)
	}
}
