package exp

import (
	"fmt"

	"starnuma/internal/core"
	"starnuma/internal/fault"
	"starnuma/internal/stats"
)

// faultScenarios are the canned degraded-mode plans the sweep compares,
// in increasing severity. The fault-free scenario anchors the ratios.
func faultScenarios() []struct {
	name string
	plan *fault.Plan
} {
	return []struct {
		name string
		plan *fault.Plan
	}{
		{"none", nil},
		{"flap", fault.FlapPlan()},
		{"degrade", fault.DegradePlan(4)},
		{"deadch", fault.DeadChannelPlan(0)},
		{"deadpool", fault.DeadPoolPlan()},
	}
}

// FaultSweep runs the StarNUMA configuration under the canned fault
// plans — none, transient CXL flaps, a 4× CXL degradation, one dead
// pool DDR channel, and a dead MHD — and reports each scenario's IPC
// relative to the fault-free run, plus the graceful-degradation
// evidence: pages drained off the dying pool and sends delayed by
// flapping links. The paper's robustness claim (§VI: RAS and
// availability are first-order for a shared pool) has no figure to
// mirror; this sweep is the reproduction's extension of it.
func (r *Runner) FaultSweep() (*Table, error) {
	specs, err := r.opts.specs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "faultsweep",
		Title: "Extension: StarNUMA under CXL fabric faults (degraded mode)",
		Columns: []string{"workload", "fault-free IPC", "flap", "degrade 4x",
			"dead channel", "dead pool", "drained pages", "flap retries"},
		Notes: "extension (§VI RAS): flaps/degradation shave the pool benefit; a dead DDR channel halves pool capacity and drains the overflow; a dead MHD drains everything and falls back to socket-only (StarNUMA-Halt) migration — every scenario completes, none panics",
	}
	scens := faultScenarios()
	vs := make([]variant, len(scens))
	for i, sc := range scens {
		cfg := r.opts.Sim
		cfg.Policy = core.PolicyStarNUMA
		cfg.Faults = sc.plan
		vs[i] = variant{"faults-" + sc.name, core.StarNUMASystem(), cfg}
	}
	if err := r.prefetch(specs, vs...); err != nil {
		return nil, err
	}
	ratios := make([][]float64, len(scens)-1)
	for _, spec := range specs {
		base, err := r.runVariant(vs[0], spec)
		if err != nil {
			return nil, err
		}
		row := []string{spec.Name, f3(base.IPC)}
		var drained, retries uint64
		for i := 1; i < len(scens); i++ {
			res, err := r.runVariant(vs[i], spec)
			if err != nil {
				return nil, err
			}
			s := core.Speedup(res, base)
			ratios[i-1] = append(ratios[i-1], s)
			row = append(row, x(s))
			if scens[i].name == "deadpool" {
				drained = res.FaultDrainedPages
			}
			if scens[i].name == "flap" {
				retries = res.FaultFlapRetries
			}
		}
		row = append(row, fmt.Sprintf("%d", drained), fmt.Sprintf("%d", retries))
		t.Rows = append(t.Rows, row)
	}
	gm := []string{"gmean", ""}
	for _, rs := range ratios {
		gm = append(gm, x(stats.GeoMean(rs)))
	}
	gm = append(gm, "", "")
	t.Rows = append(t.Rows, gm)
	return t, nil
}
