package exp_test

import (
	"fmt"

	"starnuma/internal/exp"
)

// Static experiments (latency algebra) run instantly; simulation-backed
// ones go through a Runner.
func ExampleFig4() {
	tbl := exp.Fig4()
	fmt.Println(tbl.Rows[1][0], "=", tbl.Rows[1][1])
	// Output:
	// 4-hop via pool = 200ns
}

// Tables render as text, CSV, Markdown, or ASCII bar charts.
func ExampleTable_BarChart() {
	tbl := &exp.Table{
		ID: "demo", Title: "speedup", Columns: []string{"workload", "speedup"},
		Rows: [][]string{{"BFS", "2.0x"}, {"POA", "1.0x"}},
	}
	chart, _ := tbl.BarChart(1, 8)
	fmt.Print(chart)
	// Output:
	// == demo: speedup — speedup ==
	// BFS 2.0x     ████████
	// POA 1.0x     ████
}
