package exp

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"starnuma/internal/core"
	"starnuma/internal/fault"
	"starnuma/internal/migrate"
	"starnuma/internal/runner"
)

// CLIFlags is the flag set shared by cmd/starnuma and cmd/expall. Both
// CLIs register the same run-shaping flags through AddCLIFlags and
// materialise Options through CLIFlags.Options, so the two stay in sync
// by construction.
type CLIFlags struct {
	Quick     bool
	Scale     float64
	Phases    int
	Workloads string
	Jobs      int
	CacheDir  string
	NoCache   bool
	Progress  bool
	// Metrics is the run-manifest output path; non-empty enables
	// instrumentation collection (core.SimConfig.CollectMetrics).
	Metrics string
	// Attrib is the stall-attribution document output path; non-empty
	// enables the per-window stall ledger (core.SimConfig.Attrib) and
	// writes an attrib.Doc readable by `starnuma prof`.
	Attrib string
	// Faults is a fault-plan JSON file; non-empty loads it into
	// core.SimConfig.Faults so every experiment runs under the plan.
	Faults string
	// Policy selects the StarNUMA-side migration policy by registry name,
	// optionally with parameter overrides: "name" or "name:{json-params}"
	// (e.g. `starnuma:{"hi_start":64}`). Empty keeps the default.
	Policy string
	// Trace is the event-trace output path; non-empty enables
	// core.SimConfig.Trace, records the wall-clock runner lane, and
	// disables the result cache (cache hits produce no events).
	Trace string
}

// AddCLIFlags registers the shared run-shaping flags on fs and returns
// the struct their parsed values land in. progressDefault seeds
// -progress (expall defaults on, starnuma off).
func AddCLIFlags(fs *flag.FlagSet, progressDefault bool) *CLIFlags {
	f := &CLIFlags{}
	fs.BoolVar(&f.Quick, "quick", false, "use the quick (small) configuration")
	fs.Float64Var(&f.Scale, "scale", 0, "override workload footprint scale")
	fs.IntVar(&f.Phases, "phases", 0, "override number of phases")
	fs.StringVar(&f.Workloads, "workloads", "", "comma-separated workload subset (default: all)")
	fs.IntVar(&f.Jobs, "jobs", 0, "parallel worker slots (0 = GOMAXPROCS)")
	fs.StringVar(&f.CacheDir, "cache", runner.DefaultCacheDir, "result cache directory")
	fs.BoolVar(&f.NoCache, "nocache", false, "disable the persistent result cache")
	fs.BoolVar(&f.Progress, "progress", progressDefault, "report job progress on stderr")
	fs.StringVar(&f.Metrics, "metrics", "", "collect instrumentation and write a run manifest to this JSON file")
	fs.StringVar(&f.Attrib, "attrib", "", "attribute stall time and write a profile document to this JSON file (see: starnuma prof)")
	fs.StringVar(&f.Faults, "faults", "", "run under the fault-injection plan in this JSON file (internal/fault)")
	fs.StringVar(&f.Policy, "policy", "", `migration policy as "name" or "name:{json-params}" (see: starnuma policy list)`)
	fs.StringVar(&f.Trace, "trace", "", "record an event trace (Perfetto/chrome://tracing JSON) to this file; disables the result cache")
	return f
}

// Options materialises parsed flags into experiment options. progressW
// receives the progress reporter's output when -progress is set
// (typically os.Stderr). It fails when -faults names an unreadable or
// invalid plan file.
func (f *CLIFlags) Options(progressW io.Writer) (Options, error) {
	opts := Default()
	if f.Quick {
		opts = Quick()
	}
	if f.Scale > 0 {
		opts.Scale = f.Scale
	}
	if f.Phases > 0 {
		opts.Sim.Phases = f.Phases
	}
	if f.Workloads != "" {
		opts.Workloads = strings.Split(f.Workloads, ",")
	}
	opts.Jobs = f.Jobs
	if !f.NoCache {
		opts.CacheDir = f.CacheDir
	}
	if f.Progress && progressW != nil {
		opts.Reporter = runner.NewTerminalReporter(progressW)
	}
	opts.Sim.CollectMetrics = f.Metrics != ""
	opts.Sim.Attrib = f.Attrib != ""
	if f.Trace != "" {
		opts.Trace = f.Trace
		opts.Sim.Trace = true
		// A cache hit skips simulation, so a cached run would record
		// nothing; tracing forces recomputation.
		opts.CacheDir = ""
		opts.WallTrace = runner.NewTraceReporter()
		if opts.Reporter != nil {
			opts.Reporter = runner.MultiReporter{opts.Reporter, opts.WallTrace}
		} else {
			opts.Reporter = opts.WallTrace
		}
	}
	if f.Faults != "" {
		data, err := os.ReadFile(f.Faults)
		if err != nil {
			return Options{}, fmt.Errorf("exp: -faults: %w", err)
		}
		plan, err := fault.ParsePlan(data)
		if err != nil {
			return Options{}, fmt.Errorf("exp: -faults %s: %w", f.Faults, err)
		}
		opts.Sim.Faults = plan
	}
	if f.Policy != "" {
		spec, err := ParsePolicyArg(f.Policy)
		if err != nil {
			return Options{}, err
		}
		opts.Sim.Policy = spec
	}
	return opts, nil
}

// ParsePolicyArg parses a -policy value: a registry name, optionally
// followed by ":" and a JSON object of parameter overrides. The name and
// parameter keys are validated against the migrate registry, so typos
// fail here with the accepted spellings rather than deep inside a run.
func ParsePolicyArg(arg string) (core.PolicySpec, error) {
	name, rest, hasParams := strings.Cut(arg, ":")
	spec := core.PolicySpec{Name: name}
	if hasParams {
		if err := json.Unmarshal([]byte(rest), &spec.Params); err != nil {
			return core.PolicySpec{}, fmt.Errorf("exp: -policy %s: params: %w", name, err)
		}
	}
	if err := migrate.CheckParams(spec.CanonicalName(), spec.Params); err != nil {
		return core.PolicySpec{}, fmt.Errorf("exp: -policy: %w", err)
	}
	return spec, nil
}
