package exp

import (
	"fmt"

	"starnuma/internal/core"
	"starnuma/internal/runner"
	"starnuma/internal/scenario"
	"starnuma/internal/workload"
)

// scenarioWave is one (variant, spec-list) pair of a scenario run; the
// scenario run proper drifts while its references do not, so the pairs
// run different spec lists and prefetch cannot be reused directly.
type scenarioWave struct {
	v     variant
	specs []workload.Spec
}

// RunScenario executes one compiled scenario through the runner and
// evaluates its assertions. The scenario run, its no-events reference
// and the pool-less baseline (the latter two only when the scenario's
// assertions need them) fan out as one wave of parallel jobs, and every
// simulation rides the runner's content-addressed result cache — the
// scenario's simulation-relevant content reaches the cache key through
// the compiled configurations. The verdict is a pure function of the
// scenario and the (deterministic) results, so it is byte-identical
// across reruns and worker counts.
func (r *Runner) RunScenario(c *scenario.Compiled) (*scenario.Verdict, error) {
	tag := "scenario/" + c.Name() + "@" + shortHash(c.Hash)
	main := variant{tag, c.Sys, c.Cfg}
	ref := variant{tag + "/ref", c.Sys, c.RefCfg}
	base := variant{tag + "/base", c.BaseSys, c.BaseCfg}

	waves := []scenarioWave{{main, c.Specs}}
	if c.NeedsRef {
		waves = append(waves, scenarioWave{ref, c.RefSpecs})
	}
	if c.NeedsBase {
		waves = append(waves, scenarioWave{base, c.RefSpecs})
	}
	if err := r.prefetchWaves(waves); err != nil {
		return nil, fmt.Errorf("exp: scenario %s: %w", c.Name(), err)
	}

	collect := func(v variant, specs []workload.Spec) (map[string]*core.Result, error) {
		out := make(map[string]*core.Result, len(specs))
		for _, spec := range specs {
			res, err := r.runVariant(v, spec) // memo hit after the wave
			if err != nil {
				return nil, err
			}
			out[spec.Name] = res
		}
		return out, nil
	}

	var rs scenario.RunSet
	var err error
	if rs.Results, err = collect(main, c.Specs); err != nil {
		return nil, err
	}
	if c.NeedsRef {
		if rs.Ref, err = collect(ref, c.RefSpecs); err != nil {
			return nil, err
		}
	}
	if c.NeedsBase {
		if rs.Base, err = collect(base, c.RefSpecs); err != nil {
			return nil, err
		}
	}
	return c.Evaluate(rs)
}

// prefetchWaves fans every not-yet-memoised (variant, workload) pair of
// the waves through the parallel scheduler as a single RunAll call —
// prefetch generalised to variants with differing spec lists.
func (r *Runner) prefetchWaves(waves []scenarioWave) error {
	var jobs []runner.Job
	var keys []string
	for _, w := range waves {
		for _, spec := range w.specs {
			key := w.v.name + "|" + spec.Name
			if _, ok := r.memoGet(key); ok {
				continue
			}
			jobs = append(jobs, runner.Job{
				Label: w.v.name + "/" + spec.Name,
				Sys:   w.v.sys, Cfg: w.v.cfg, Spec: spec,
			})
			keys = append(keys, key)
		}
	}
	if len(jobs) == 0 {
		return nil
	}
	results, err := r.exec.RunAll(jobs)
	if err != nil {
		return err
	}
	for i, res := range results {
		r.memoPut(keys[i], res)
	}
	return nil
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
