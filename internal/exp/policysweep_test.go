package exp

import (
	"fmt"
	"reflect"
	"testing"
)

// sweepOpts is a policysweep configuration small enough for a test:
// one workload, short run, no cache (so worker scheduling is exercised
// rather than replayed).
func sweepOpts(jobs int) Options {
	o := Quick()
	o.Scale = 0.05
	o.Sim.Phases = 4
	o.Workloads = []string{"BFS"}
	o.Jobs = jobs
	return o
}

// TestPolicySweepDeterministicAcrossWorkers is the ISSUE 8 acceptance
// check: the tournament's ranking table must be bit-identical whether
// the (policy × plan × workload) grid runs on one worker or eight —
// parallel scheduling must not leak into results or ordering.
func TestPolicySweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	t1, err := NewRunner(sweepOpts(1)).PolicySweep()
	if err != nil {
		t.Fatal(err)
	}
	t8, err := NewRunner(sweepOpts(8)).PolicySweep()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1.Rows, t8.Rows) {
		t.Errorf("ranking differs between 1 and 8 workers:\n1 worker:\n%s\n8 workers:\n%s",
			t1.Render(), t8.Render())
	}
	fmt.Print(t8.Render())

	// The zero-cost oracle must top the leaderboard: it pays nothing for
	// its whole-run-knowledge placement, so a dynamic policy beating it
	// would signal a modeling bug (CI asserts the same on a wider grid).
	if len(t8.Rows) == 0 || t8.Rows[0][1] != "oracle" {
		t.Errorf("oracle should rank first, got rows %v", t8.Rows)
	}
}
