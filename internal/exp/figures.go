package exp

import (
	"fmt"

	"starnuma/internal/core"
	"starnuma/internal/pool"
	"starnuma/internal/stats"
	"starnuma/internal/topology"
	"starnuma/internal/tracker"
	"starnuma/internal/workload"
)

// sharingBuckets are the sharer-count groupings used to report Fig. 2
// and Fig. 13.
var sharingBuckets = [][2]int{{1, 1}, {2, 4}, {5, 8}, {9, 15}, {16, 16}}

// sharingFigure builds a Fig. 2/13-style characterisation: page and
// access distributions by sharing degree, both analytic (from the spec)
// and empirically sampled from the generator.
func (r *Runner) sharingFigure(id, title, wl, notes string) (*Table, error) {
	spec, err := workload.ByName(wl, r.opts.Scale)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(spec, 16, 4)
	if err != nil {
		return nil, err
	}
	pagesA, accsA := spec.SharingHistogram(16)

	// Empirical: page histogram over the footprint, access histogram
	// over a sample of generated misses.
	pagesE := make([]float64, 17)
	for p := 0; p < gen.NumPages(); p++ {
		pagesE[len(gen.Sharers(uint32(p)))] += 1.0 / float64(gen.NumPages())
	}
	accsE := make([]float64, 17)
	const samples = 200_000
	for i := 0; i < samples; i++ {
		a := gen.Next(i % gen.NumCores())
		accsE[len(gen.Sharers(a.Page))] += 1.0 / samples
	}

	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"sharers", "pages(model)", "pages(measured)", "accesses(model)", "accesses(measured)"},
		Notes:   notes,
	}
	sum := func(h []float64, lo, hi int) float64 {
		var s float64
		for k := lo; k <= hi; k++ {
			s += h[k]
		}
		return s
	}
	for _, b := range sharingBuckets {
		label := fmt.Sprintf("%d", b[0])
		if b[1] != b[0] {
			label = fmt.Sprintf("%d-%d", b[0], b[1])
		}
		t.Rows = append(t.Rows, []string{
			label,
			pct(sum(pagesA, b[0], b[1])), pct(sum(pagesE, b[0], b[1])),
			pct(sum(accsA, b[0], b[1])), pct(sum(accsE, b[0], b[1])),
		})
	}
	return t, nil
}

// Fig2 reproduces the BFS access-pattern characterisation (Fig. 2).
func (r *Runner) Fig2() (*Table, error) {
	return r.sharingFigure("fig2", "BFS page sharing and access distributions", "BFS",
		"17% single-sharer pages, 78% ≤4 sharers; >8-sharer pages take 68% of accesses, 16-shared pages 36%")
}

// Fig13 reproduces the TC characterisation (Fig. 13).
func (r *Runner) Fig13() (*Table, error) {
	return r.sharingFigure("fig13", "TC page sharing and access distributions", "TC",
		"60% of pages touched by all 16 sockets, 80% by 8+; accesses spread nearly in proportion (read-only)")
}

// Fig3 reports the CXL memory pool access latency budget (Fig. 3).
func Fig3() *Table {
	l := pool.DefaultLatency()
	t := &Table{
		ID:      "fig3",
		Title:   "CXL memory pool access latency breakdown (round trip)",
		Columns: []string{"component", "latency"},
		Notes:   "25+25+20+10+20 = 100ns interconnect overhead; 180ns end-to-end with DRAM",
	}
	t.Rows = append(t.Rows,
		[]string{"processor CXL port", ns(l.ProcessorPort.Nanos())},
		[]string{"MHD CXL port", ns(l.MHDPort.Nanos())},
		[]string{"retimer", ns(l.Retimer.Nanos())},
		[]string{"flight time", ns(l.Flight.Nanos())},
		[]string{"MHD internal (NoC+dir)", ns(l.MHDInternal.Nanos())},
		[]string{"total overhead", ns(l.RoundTrip().Nanos())},
		[]string{"end-to-end (with 80ns mem)", ns(l.RoundTrip().Nanos() + 80)},
	)
	return t
}

// Fig4 reports coherence block-transfer latencies (Fig. 4): the mean
// unloaded 3-hop socket path vs the 4-hop pool path.
func Fig4() *Table {
	topo := topology.New(topology.DefaultConfig())
	var sum int64
	var n int64
	for rr := topology.NodeID(0); int(rr) < topo.Sockets(); rr++ {
		for h := topology.NodeID(0); int(h) < topo.Sockets(); h++ {
			for o := topology.NodeID(0); int(o) < topo.Sockets(); o++ {
				if rr == o {
					continue
				}
				sum += int64(topo.OneWayLatency(rr, h) + topo.OneWayLatency(h, o) + topo.OneWayLatency(o, rr))
				n++
			}
		}
	}
	threeHop := float64(sum) / float64(n) / 1000
	pn := topo.PoolNode()
	fourHop := (topo.OneWayLatency(0, pn) + topo.OneWayLatency(pn, 9) +
		topo.OneWayLatency(9, pn) + topo.OneWayLatency(pn, 0)).Nanos()
	t := &Table{
		ID:      "fig4",
		Title:   "Coherence-triggered block transfer network latency (unloaded)",
		Columns: []string{"path", "network", "with mem+dir (80ns)"},
		Notes:   "3-hop averages 333ns, 4-hop via pool 200ns; BT_Socket 413ns, BT_Pool 280ns",
	}
	t.Rows = append(t.Rows,
		[]string{"3-hop R→H→O→R (mean)", ns(threeHop), ns(threeHop + 80)},
		[]string{"4-hop via pool", ns(fourHop), ns(fourHop + 80)},
	)
	return t
}

// Table3 reproduces the workload summary (Table III): measured 16-socket
// baseline IPC, measured single-socket IPC, and LLC MPKI.
func (r *Runner) Table3() (*Table, error) {
	specs, err := r.opts.specs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "tab3",
		Title:   "Workload summary: per-core IPC and LLC MPKI",
		Columns: []string{"workload", "IPC (16-socket)", "IPC (1-socket)", "MPKI", "paper IPC16", "paper IPC1", "paper MPKI"},
		Notes:   "the 2-10x IPC gap between single- and 16-socket execution shows the NUMA penalty",
	}
	cfg1 := r.opts.Sim
	cfg1.Policy = core.PolicyNone
	single := variant{"single-socket", core.SingleSocketSystem(), cfg1}
	if err := r.prefetch(specs, r.baselineVariant(), single); err != nil {
		return nil, err
	}
	for _, spec := range specs {
		rb, err := r.baseline(spec)
		if err != nil {
			return nil, err
		}
		r1, err := r.runVariant(single, spec)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			spec.Name, f3(rb.IPC), f3(r1.IPC), f2(rb.MPKI),
			"", f2(spec.SingleSocketIPC), f2(spec.MPKI),
		})
	}
	return t, nil
}

// fig8data runs the three Fig. 8 systems for every workload.
type fig8row struct {
	spec    workload.Spec
	base    *core.Result
	t16, t0 *core.Result
}

func (r *Runner) fig8data() ([]fig8row, error) {
	specs, err := r.opts.specs()
	if err != nil {
		return nil, err
	}
	cfg0 := r.opts.Sim
	cfg0.Policy = core.PolicyStarNUMA
	cfg0.Tracker = tracker.T0
	t0v := variant{"starnuma-t0", core.StarNUMASystem(), cfg0}
	if err := r.prefetch(specs, r.baselineVariant(), r.starnumaVariant(), t0v); err != nil {
		return nil, err
	}
	var rows []fig8row
	for _, spec := range specs {
		rb, err := r.baseline(spec)
		if err != nil {
			return nil, err
		}
		r16, err := r.starnuma(spec)
		if err != nil {
			return nil, err
		}
		r0, err := r.runVariant(t0v, spec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, fig8row{spec: spec, base: rb, t16: r16, t0: r0})
	}
	return rows, nil
}

// Fig8a reproduces the speedup chart: StarNUMA (T16 and T0) over the
// baseline.
func (r *Runner) Fig8a() (*Table, error) {
	data, err := r.fig8data()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8a",
		Title:   "StarNUMA IPC normalized to baseline",
		Columns: []string{"workload", "T16 speedup", "T0 speedup"},
		Notes:   "T16 averages 1.54x (max 2.17x on SSSP); T0 captures most of it at 1.35x; POA 1.0x",
	}
	var s16, s0 []float64
	for _, d := range data {
		v16, v0 := core.Speedup(d.t16, d.base), core.Speedup(d.t0, d.base)
		s16 = append(s16, v16)
		s0 = append(s0, v0)
		t.Rows = append(t.Rows, []string{d.spec.Name, x(v16), x(v0)})
	}
	t.Rows = append(t.Rows, []string{"gmean", x(stats.GeoMean(s16)), x(stats.GeoMean(s0))})
	return t, nil
}

// Fig8b reproduces the AMAT decomposition: unloaded latency plus
// contention delay, baseline vs StarNUMA.
func (r *Runner) Fig8b() (*Table, error) {
	data, err := r.fig8data()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8b",
		Title:   "Average memory access time: unloaded + contention",
		Columns: []string{"workload", "base unloaded", "base contention", "base AMAT", "SN unloaded", "SN contention", "SN AMAT", "reduction"},
		Notes:   "StarNUMA reduces AMAT by 48% on average; bandwidth-bound SSSP/BFS are contention-dominated in the baseline",
	}
	var reductions []float64
	for _, d := range data {
		b, s := d.base.AMAT, d.t16.AMAT
		red := 0.0
		if b.Measured() > 0 {
			red = 1 - float64(s.Measured())/float64(b.Measured())
		}
		reductions = append(reductions, red)
		t.Rows = append(t.Rows, []string{
			d.spec.Name,
			ns(b.Unloaded().Nanos()), ns(b.Contention().Nanos()), ns(b.Measured().Nanos()),
			ns(s.Unloaded().Nanos()), ns(s.Contention().Nanos()), ns(s.Measured().Nanos()),
			pct(red),
		})
	}
	t.Rows = append(t.Rows, []string{"mean", "", "", "", "", "", "", pct(stats.Mean(reductions))})
	return t, nil
}

// Fig8c reproduces the memory access breakdown by type.
func (r *Runner) Fig8c() (*Table, error) {
	data, err := r.fig8data()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig8c",
		Title:   "Memory access breakdown (baseline | StarNUMA)",
		Columns: []string{"workload", "system", "local", "1-hop", "2-hop", "pool", "BT_socket", "BT_pool"},
		Notes:   "StarNUMA converts most 2-hop accesses into pool accesses; BT is ~10% and mostly shifts to the pool path; POA is 100% local",
	}
	addRow := func(wl, system string, res *core.Result) {
		fr := res.AMAT.Breakdown().Fractions()
		t.Rows = append(t.Rows, []string{
			wl, system,
			pct(fr[stats.Local]), pct(fr[stats.OneHop]), pct(fr[stats.TwoHop]),
			pct(fr[stats.Pool]), pct(fr[stats.BTSocket]), pct(fr[stats.BTPool]),
		})
	}
	for _, d := range data {
		addRow(d.spec.Name, "baseline", d.base)
		addRow(d.spec.Name, "starnuma", d.t16)
	}
	return t, nil
}

// Table4 reproduces the fraction of migrations targeting the pool.
func (r *Runner) Table4() (*Table, error) {
	data, err := r.fig8data()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "tab4",
		Title:   "Fraction of migrated pages placed in the pool (T16)",
		Columns: []string{"workload", "to pool", "pages to pool", "pages to sockets", "paper"},
		Notes:   "SSSP 80%, BFS 100%, CC 99%, TC 80%, Masstree 100%, TPCC 93%, FMI 47%, POA 0%; gmean (excl. POA) 83%",
	}
	paperVals := map[string]string{
		"SSSP": "80%", "BFS": "100%", "CC": "99%", "TC": "80%",
		"Masstree": "100%", "TPCC": "93%", "FMI": "47%", "POA": "0%",
	}
	for _, d := range data {
		ms := d.t16.MigrStats
		t.Rows = append(t.Rows, []string{
			d.spec.Name, pct(ms.PoolFraction()),
			fmt.Sprintf("%d", ms.PagesToPool), fmt.Sprintf("%d", ms.PagesToSocket),
			paperVals[d.spec.Name],
		})
	}
	return t, nil
}

// Fig9 reproduces the oracular static placement study: static placement
// on both architectures, normalized to the baseline with dynamic
// migration.
func (r *Runner) Fig9() (*Table, error) {
	specs, err := r.opts.specs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig9",
		Title:   "Oracular static placement, normalized to baseline w/ dynamic migration",
		Columns: []string{"workload", "baseline+static", "starnuma+static", "starnuma+dynamic"},
		Notes:   "static placement does not help the baseline (no good home for vagabond pages exists) but slightly beats dynamic StarNUMA (no migration overheads)",
	}
	cfgStatic := r.opts.Sim
	cfgStatic.StaticOracle = true
	cfgStatic.Policy = core.PolicyNone
	baseStatic := variant{"baseline-static", core.BaselineSystem(), cfgStatic}
	snStatic := variant{"starnuma-static", core.StarNUMASystem(), cfgStatic}
	if err := r.prefetch(specs, r.baselineVariant(), r.starnumaVariant(), baseStatic, snStatic); err != nil {
		return nil, err
	}
	var bs, ss, sd []float64
	for _, spec := range specs {
		rb, err := r.baseline(spec)
		if err != nil {
			return nil, err
		}
		rbs, err := r.runVariant(baseStatic, spec)
		if err != nil {
			return nil, err
		}
		rss, err := r.runVariant(snStatic, spec)
		if err != nil {
			return nil, err
		}
		rsd, err := r.starnuma(spec)
		if err != nil {
			return nil, err
		}
		v1, v2, v3 := core.Speedup(rbs, rb), core.Speedup(rss, rb), core.Speedup(rsd, rb)
		bs, ss, sd = append(bs, v1), append(ss, v2), append(sd, v3)
		t.Rows = append(t.Rows, []string{spec.Name, x(v1), x(v2), x(v3)})
	}
	t.Rows = append(t.Rows, []string{"gmean", x(stats.GeoMean(bs)), x(stats.GeoMean(ss)), x(stats.GeoMean(sd))})
	return t, nil
}

// Fig10 reproduces the memory pool latency sensitivity study: the
// default 100ns CXL penalty vs 190ns (an intermediate CXL switch).
func (r *Runner) Fig10() (*Table, error) {
	specs, err := r.opts.specs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig10",
		Title:   "Speedup over baseline for different CXL latency penalties",
		Columns: []string{"workload", "100ns penalty", "190ns penalty"},
		Notes:   "average speedup drops from 1.54x to 1.34x; latency-driven TC is hit hardest (1.63x → 1.11x)",
	}
	slow := core.StarNUMASystem()
	slow.Pool.Latency = pool.SwitchedLatency()
	slow.Topology.CXLOneWay = slow.Pool.Latency.OneWay()
	cfgS := r.opts.Sim
	cfgS.Policy = core.PolicyStarNUMA
	switched := variant{"starnuma-switched", slow, cfgS}
	if err := r.prefetch(specs, r.baselineVariant(), r.starnumaVariant(), switched); err != nil {
		return nil, err
	}
	var fast, slowV []float64
	for _, spec := range specs {
		rb, err := r.baseline(spec)
		if err != nil {
			return nil, err
		}
		rf, err := r.starnuma(spec)
		if err != nil {
			return nil, err
		}
		rs, err := r.runVariant(switched, spec)
		if err != nil {
			return nil, err
		}
		v1, v2 := core.Speedup(rf, rb), core.Speedup(rs, rb)
		fast, slowV = append(fast, v1), append(slowV, v2)
		t.Rows = append(t.Rows, []string{spec.Name, x(v1), x(v2)})
	}
	t.Rows = append(t.Rows, []string{"gmean", x(stats.GeoMean(fast)), x(stats.GeoMean(slowV))})
	return t, nil
}

// Fig11 reproduces the bandwidth provisioning study.
func (r *Runner) Fig11() (*Table, error) {
	specs, err := r.opts.specs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig11",
		Title:   "Speedup over baseline for different link bandwidth provisioning",
		Columns: []string{"workload", "baseline ISO-BW", "baseline 2xBW", "starnuma half-BW", "starnuma"},
		Notes:   "ISO-BW 1.14x, 2xBW still trails StarNUMA by 12% on average; only BFS slightly prefers 2xBW; half-BW StarNUMA still beats ISO-BW by 11%",
	}
	// ISO-BW: pro-rate StarNUMA's added 640GB/s across coherent links
	// (§V-D): UPI 20.8→26.4, NUMALink 13→17 full scale; scaled 3GB/s
	// links grow by the same ratios.
	iso := core.BaselineSystem()
	iso.UPIBandwidth = 3 * 26.4 / 20.8
	iso.NUMABandwidth = 3 * 17.0 / 13.0
	twoX := core.BaselineSystem()
	twoX.UPIBandwidth = 6
	twoX.NUMABandwidth = 6
	half := core.StarNUMASystem()
	half.Pool.LinkBW = half.Pool.LinkBW / 2
	cfgB := r.opts.Sim
	cfgB.Policy = core.PolicyPerfectBaseline
	cfgS := r.opts.Sim
	cfgS.Policy = core.PolicyStarNUMA
	isoV := variant{"baseline-isobw", iso, cfgB}
	twoXV := variant{"baseline-2xbw", twoX, cfgB}
	halfV := variant{"starnuma-halfbw", half, cfgS}
	if err := r.prefetch(specs, r.baselineVariant(), r.starnumaVariant(), isoV, twoXV, halfV); err != nil {
		return nil, err
	}

	var vIso, v2x, vHalf, vSN []float64
	for _, spec := range specs {
		rb, err := r.baseline(spec)
		if err != nil {
			return nil, err
		}
		rIso, err := r.runVariant(isoV, spec)
		if err != nil {
			return nil, err
		}
		r2x, err := r.runVariant(twoXV, spec)
		if err != nil {
			return nil, err
		}
		rHalf, err := r.runVariant(halfV, spec)
		if err != nil {
			return nil, err
		}
		rs, err := r.starnuma(spec)
		if err != nil {
			return nil, err
		}
		a, b, c, d := core.Speedup(rIso, rb), core.Speedup(r2x, rb), core.Speedup(rHalf, rb), core.Speedup(rs, rb)
		vIso, v2x, vHalf, vSN = append(vIso, a), append(v2x, b), append(vHalf, c), append(vSN, d)
		t.Rows = append(t.Rows, []string{spec.Name, x(a), x(b), x(c), x(d)})
	}
	t.Rows = append(t.Rows, []string{"gmean",
		x(stats.GeoMean(vIso)), x(stats.GeoMean(v2x)), x(stats.GeoMean(vHalf)), x(stats.GeoMean(vSN))})
	return t, nil
}

// Fig12 reproduces the pool capacity study: a chassis-sized pool (1/5 of
// the footprint) vs a socket-sized pool (1/17).
func (r *Runner) Fig12() (*Table, error) {
	specs, err := r.opts.specs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig12",
		Title:   "Speedup over baseline for different memory pool capacities",
		Columns: []string{"workload", "1/5 capacity", "1/17 capacity"},
		Notes:   "average drops only 1.54x → 1.48x; FMI most affected (1.22x → 1.05x); most workloads insensitive to pool size",
	}
	small := core.StarNUMASystem()
	small.Pool.CapacityFraction = 1.0 / 17
	cfgSm := r.opts.Sim
	cfgSm.Policy = core.PolicyStarNUMA
	smallV := variant{"starnuma-smallpool", small, cfgSm}
	if err := r.prefetch(specs, r.baselineVariant(), r.starnumaVariant(), smallV); err != nil {
		return nil, err
	}
	var vBig, vSmall []float64
	for _, spec := range specs {
		rb, err := r.baseline(spec)
		if err != nil {
			return nil, err
		}
		rs, err := r.starnuma(spec)
		if err != nil {
			return nil, err
		}
		rSmall, err := r.runVariant(smallV, spec)
		if err != nil {
			return nil, err
		}
		a, b := core.Speedup(rs, rb), core.Speedup(rSmall, rb)
		vBig, vSmall = append(vBig, a), append(vSmall, b)
		t.Rows = append(t.Rows, []string{spec.Name, x(a), x(b)})
	}
	t.Rows = append(t.Rows, []string{"gmean", x(stats.GeoMean(vBig)), x(stats.GeoMean(vSmall))})
	return t, nil
}

// fig14Workloads is the subset the paper re-evaluates under alternative
// simulation configurations.
var fig14Workloads = []string{"BFS", "TC", "FMI"}

// Fig14 reproduces the methodology robustness study: SC1 (default), SC2
// (3x more detailed instructions per phase) and SC3 (doubled system
// scale: 8 cores/socket with 2x memory and interconnect bandwidth).
func (r *Runner) Fig14() (*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "StarNUMA speedup under alternative simulation configurations",
		Columns: []string{"workload", "SC1", "SC2 (3x window)", "SC3 (2x scale)"},
		Notes:   "SC2/SC3 within ~5% of SC1 for TC and FMI; BFS improves from 1.7x to 2.0x/1.8x — qualitatively identical",
	}
	sc2 := r.opts.Sim
	sc2.TimedInstr *= 3
	if sc2.TimedInstr > sc2.PhaseInstr {
		sc2.TimedInstr = sc2.PhaseInstr
	}
	sc3sysB := core.BaselineSystem()
	sc3sysB.CoresPerSocket = 8
	sc3sysB.UPIBandwidth *= 2
	sc3sysB.NUMABandwidth *= 2
	sc3sysB.SocketMem.Channels *= 2
	sc3sysS := core.StarNUMASystem()
	sc3sysS.CoresPerSocket = 8
	sc3sysS.UPIBandwidth *= 2
	sc3sysS.NUMABandwidth *= 2
	sc3sysS.SocketMem.Channels *= 2
	sc3sysS.Pool.LinkBW *= 2
	sc3sysS.Pool.Channels *= 2

	var specs []workload.Spec
	for _, wl := range fig14Workloads {
		spec, err := workload.ByName(wl, r.opts.Scale)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	cfgB2 := sc2
	cfgB2.Policy = core.PolicyPerfectBaseline
	cfgS2 := sc2
	cfgS2.Policy = core.PolicyStarNUMA
	cfgB3 := r.opts.Sim
	cfgB3.Policy = core.PolicyPerfectBaseline
	cfgS3 := r.opts.Sim
	cfgS3.Policy = core.PolicyStarNUMA
	b2 := variant{"sc2-baseline", core.BaselineSystem(), cfgB2}
	s2 := variant{"sc2-starnuma", core.StarNUMASystem(), cfgS2}
	b3 := variant{"sc3-baseline", sc3sysB, cfgB3}
	s3 := variant{"sc3-starnuma", sc3sysS, cfgS3}
	if err := r.prefetch(specs, r.baselineVariant(), r.starnumaVariant(), b2, s2, b3, s3); err != nil {
		return nil, err
	}

	for _, spec := range specs {
		rb, err := r.baseline(spec)
		if err != nil {
			return nil, err
		}
		rs, err := r.starnuma(spec)
		if err != nil {
			return nil, err
		}
		sc1 := core.Speedup(rs, rb)

		rb2, err := r.runVariant(b2, spec)
		if err != nil {
			return nil, err
		}
		rs2, err := r.runVariant(s2, spec)
		if err != nil {
			return nil, err
		}
		v2 := core.Speedup(rs2, rb2)

		rb3, err := r.runVariant(b3, spec)
		if err != nil {
			return nil, err
		}
		rs3, err := r.runVariant(s3, spec)
		if err != nil {
			return nil, err
		}
		v3 := core.Speedup(rs3, rb3)

		t.Rows = append(t.Rows, []string{spec.Name, x(sc1), x(v2), x(v3)})
	}
	return t, nil
}
