package exp

import (
	"strings"
	"testing"
)

func formatTable() *Table {
	return &Table{
		ID: "t1", Title: "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"x,1", `q"`}, {"plain", "2"}},
		Notes:   "note",
	}
}

func TestCSV(t *testing.T) {
	out := formatTable().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `"x,1","q"""` {
		t.Fatalf("escaped row = %q", lines[1])
	}
	if lines[2] != "plain,2" {
		t.Fatalf("plain row = %q", lines[2])
	}
}

func TestMarkdown(t *testing.T) {
	out := formatTable().Markdown()
	for _, want := range []string{"### t1 — demo", "| a | b |", "|---|---|", "| plain | 2 |", "> paper: note"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Pipes escaped.
	tbl := formatTable()
	tbl.Rows = [][]string{{"a|b", "c"}}
	if !strings.Contains(tbl.Markdown(), `a\|b`) {
		t.Error("pipe not escaped")
	}
}

func TestMarkdownPadsShortRows(t *testing.T) {
	tbl := formatTable()
	tbl.Rows = [][]string{{"only"}}
	out := tbl.Markdown()
	if !strings.Contains(out, "| only |  |") {
		t.Errorf("short row not padded:\n%s", out)
	}
}

func TestFormatDispatch(t *testing.T) {
	tbl := formatTable()
	for _, f := range []string{"", "text", "csv", "md", "markdown"} {
		if _, err := tbl.Format(f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
	}
	if _, err := tbl.Format("xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestBarChart(t *testing.T) {
	tbl := &Table{
		ID: "fig", Title: "speedups",
		Columns: []string{"workload", "speedup"},
		Rows: [][]string{
			{"BFS", "2.00x"},
			{"POA", "1.00x"},
			{"gmean", ""}, // unparseable: skipped
		},
	}
	out, err := tbl.BarChart(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 bars
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) {
		t.Errorf("BFS bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[2], strings.Repeat("█", 5)) {
		t.Errorf("POA bar not half width: %q", lines[2])
	}
}

func TestBarChartErrors(t *testing.T) {
	tbl := &Table{Columns: []string{"a"}, Rows: [][]string{{"text"}}}
	if _, err := tbl.BarChart(5, 10); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := tbl.BarChart(0, 10); err == nil {
		t.Error("non-numeric column accepted")
	}
}

func TestParseNumeric(t *testing.T) {
	cases := map[string]float64{"1.54x": 1.54, "48.0%": 48, "360ns": 360, "7": 7}
	for in, want := range cases {
		v, ok := parseNumeric(in)
		if !ok || v != want {
			t.Errorf("parseNumeric(%q) = %v, %v", in, v, ok)
		}
	}
	if _, ok := parseNumeric("abc"); ok {
		t.Error("parsed garbage")
	}
	if _, ok := parseNumeric(""); ok {
		t.Error("parsed empty")
	}
}
