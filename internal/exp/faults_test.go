package exp

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestFaultSweepSmoke is the graceful-degradation acceptance pin: a
// quick faultsweep — including the dead-channel and dead-pool plans —
// completes without error or panic.
func TestFaultSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	o := Quick()
	o.Workloads = []string{"BFS", "Masstree"}
	o.Sim.Phases = 4 // canned kill plans fire at phases 1-2
	r := NewRunner(o)
	tbl, err := r.FaultSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(o.Workloads)+1 { // + gmean row
		t.Fatalf("faultsweep produced %d rows", len(tbl.Rows))
	}
	fmt.Print(tbl.Render())
}

// TestFaultsFlag checks the -faults CLI path: a plan file parses into
// Options, and a broken one surfaces an error instead of a bad run.
func TestFaultsFlag(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(good, []byte(`{"name":"p","events":[
		{"kind":"flap","target":"cxl","from_phase":1,"period_ns":2000,"down_ns":300,"retry_ns":100}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cf := AddCLIFlags(fs, false)
	if err := fs.Parse([]string{"-quick", "-faults", good}); err != nil {
		t.Fatal(err)
	}
	o, err := cf.Options(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Sim.Faults == nil || o.Sim.Faults.Name != "p" || len(o.Sim.Faults.Events) != 1 {
		t.Fatalf("plan not threaded into Options: %+v", o.Sim.Faults)
	}

	for _, tc := range []struct{ name, content string }{
		{"invalid", `{"events":[{"kind":"kill","target":"cxl"}]}`},
		{"malformed", `{`},
	} {
		bad := filepath.Join(dir, tc.name+".json")
		if err := os.WriteFile(bad, []byte(tc.content), 0o644); err != nil {
			t.Fatal(err)
		}
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		cf := AddCLIFlags(fs, false)
		if err := fs.Parse([]string{"-faults", bad}); err != nil {
			t.Fatal(err)
		}
		if _, err := cf.Options(nil); err == nil {
			t.Errorf("%s plan accepted", tc.name)
		}
	}
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	cf2 := AddCLIFlags(fs2, false)
	if err := fs2.Parse([]string{"-faults", filepath.Join(dir, "missing.json")}); err != nil {
		t.Fatal(err)
	}
	if _, err := cf2.Options(nil); err == nil {
		t.Error("missing plan file accepted")
	}
}
