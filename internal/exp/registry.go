package exp

import "fmt"

// Experiment is one registered reproduction: a stable identifier, the
// figure or table of the paper it reproduces, and the function that
// runs it. The registry below is the single source of truth — IDs,
// ByID, All and both CLIs' -list output all derive from it, so adding
// an experiment is one literal here plus its Run method.
type Experiment struct {
	// ID is the canonical identifier ("fig8a", "tab3", "extrep").
	ID string
	// Aliases are additional accepted spellings ("table3" for "tab3").
	Aliases []string
	// Title is the one-line human description shown by -list.
	Title string
	// PaperRef names the figure/table/section of the paper reproduced,
	// or the extension study it belongs to.
	PaperRef string
	// Run executes the experiment. Static experiments (no simulation)
	// ignore the runner.
	Run func(*Runner) (*Table, error)
}

// registry lists every experiment in paper order.
var registry = []Experiment{
	{ID: "fig2", Title: "BFS page sharing and access distributions", PaperRef: "Fig. 2",
		Run: (*Runner).Fig2},
	{ID: "fig3", Title: "CXL memory pool access latency breakdown", PaperRef: "Fig. 3",
		Run: func(*Runner) (*Table, error) { return Fig3(), nil }},
	{ID: "fig4", Title: "Coherence block-transfer network latency", PaperRef: "Fig. 4",
		Run: func(*Runner) (*Table, error) { return Fig4(), nil }},
	{ID: "tab3", Aliases: []string{"table3"}, Title: "Workload summary: IPC and LLC MPKI", PaperRef: "Table III",
		Run: (*Runner).Table3},
	{ID: "fig8a", Title: "StarNUMA IPC normalized to baseline", PaperRef: "Fig. 8a",
		Run: (*Runner).Fig8a},
	{ID: "fig8b", Title: "AMAT: unloaded + contention decomposition", PaperRef: "Fig. 8b",
		Run: (*Runner).Fig8b},
	{ID: "fig8c", Title: "Memory access breakdown by type", PaperRef: "Fig. 8c",
		Run: (*Runner).Fig8c},
	{ID: "tab4", Aliases: []string{"table4"}, Title: "Fraction of migrations targeting the pool", PaperRef: "Table IV",
		Run: (*Runner).Table4},
	{ID: "fig9", Title: "Oracular static placement study", PaperRef: "Fig. 9",
		Run: (*Runner).Fig9},
	{ID: "fig10", Title: "Pool latency sensitivity (switched CXL)", PaperRef: "Fig. 10",
		Run: (*Runner).Fig10},
	{ID: "fig11", Title: "Link bandwidth provisioning study", PaperRef: "Fig. 11",
		Run: (*Runner).Fig11},
	{ID: "fig12", Title: "Pool capacity sensitivity", PaperRef: "Fig. 12",
		Run: (*Runner).Fig12},
	{ID: "fig13", Title: "TC page sharing and access distributions", PaperRef: "Fig. 13",
		Run: (*Runner).Fig13},
	{ID: "fig14", Title: "Methodology robustness (SC1/SC2/SC3)", PaperRef: "Fig. 14",
		Run: (*Runner).Fig14},
	{ID: "extrep", Title: "Page replication study", PaperRef: "§V-F extension",
		Run: (*Runner).ExtReplication},
	{ID: "ext32", Title: "32-socket scale-out study", PaperRef: "extension",
		Run: (*Runner).Ext32Sockets},
	{ID: "extsw", Title: "Software access tracking study", PaperRef: "§III-D1 extension",
		Run: (*Runner).ExtSoftwareTracking},
	{ID: "extdrift", Title: "Phase-drift sensitivity study", PaperRef: "extension",
		Run: (*Runner).ExtDrift},
	{ID: "faultsweep", Aliases: []string{"faults"}, Title: "Degraded-mode sweep under CXL fabric fault plans", PaperRef: "§VI RAS extension",
		Run: (*Runner).FaultSweep},
	{ID: "policysweep", Aliases: []string{"tournament"}, Title: "Migration-policy tournament across workloads and fault plans", PaperRef: "§V-B/§VI extension",
		Run: (*Runner).PolicySweep},
}

// Experiments returns the registered experiments in paper order. The
// slice is a copy; descriptors are shared.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup resolves an identifier (canonical or alias) to its descriptor.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
		for _, a := range e.Aliases {
			if a == id {
				return e, true
			}
		}
	}
	return Experiment{}, false
}

// IDs lists all canonical experiment identifiers in paper order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// ByID runs a single experiment by identifier or alias.
func (r *Runner) ByID(id string) (*Table, error) {
	e, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (see IDs())", id)
	}
	return e.Run(r)
}

// All runs every experiment in paper order.
func (r *Runner) All() ([]*Table, error) {
	var out []*Table
	for _, e := range registry {
		t, err := e.Run(r)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
