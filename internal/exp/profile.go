package exp

import (
	"fmt"
	"os"

	"starnuma/internal/attrib"
)

// StallProfiles snapshots the stall-attribution profiles of the
// runner's memoised results as a prof document. Runs without a profile
// (attribution off, or recalled from an attribution-off cache entry)
// are skipped; the document sorts by memo key so identical run sets
// encode byte-identically.
func (r *Runner) StallProfiles() *attrib.Doc {
	d := &attrib.Doc{Schema: attrib.DocSchema}
	r.mu.Lock()
	for k, res := range r.memo {
		if res.Profile == nil {
			continue
		}
		d.Runs = append(d.Runs, attrib.DocRun{
			Key:      k,
			Workload: res.Workload,
			Policy:   res.Policy.String(),
			Profile:  res.Profile,
		})
	}
	r.mu.Unlock()
	d.Sort()
	return d
}

// WriteStallProfiles writes the runner's stall-attribution document
// (the -attrib output) as indented JSON to path.
func (r *Runner) WriteStallProfiles(path string) error {
	b, err := r.StallProfiles().Encode()
	if err != nil {
		return fmt.Errorf("exp: stall profiles: %w", err)
	}
	return os.WriteFile(path, b, 0o644)
}
