package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"starnuma/internal/scenario"
)

// corpusFiles returns the repo's scenarios/*.json, sorted.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 6 {
		t.Fatalf("scenario corpus has %d files, want at least 6", len(files))
	}
	sort.Strings(files)
	return files
}

// TestEveryScenarioValidates is the corpus gate: every file under
// scenarios/ must parse, validate and compile, its name must match its
// filename, and EXPERIMENTS.md's Scenarios section must list it — so a
// scenario cannot be added (or renamed) without staying runnable and
// documented.
func TestEveryScenarioValidates(t *testing.T) {
	doc, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for _, file := range corpusFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		s, err := scenario.Parse(data)
		if err != nil {
			t.Errorf("%s: %v", file, err)
			continue
		}
		if _, err := scenario.Compile(s); err != nil {
			t.Errorf("%s: %v", file, err)
			continue
		}
		base := strings.TrimSuffix(filepath.Base(file), ".json")
		if s.Name != base {
			t.Errorf("%s: scenario name %q must match the filename", file, s.Name)
		}
		if s.Description == "" {
			t.Errorf("%s: scenario needs a description", file)
		}
		if !strings.Contains(text, "`"+base+"`") {
			t.Errorf("%s: not listed in EXPERIMENTS.md's Scenarios section (add `%s`)", file, base)
		}
	}
}

// scnDeterminismDoc is a deliberately tiny scenario (one workload, two
// phases, every reference) so the worker-count pin stays cheap.
const scnDeterminismDoc = `{
	"schema": "starnuma-scenario-v1",
	"name": "determinism-pin",
	"sim": {"preset": "quick", "phases": 2, "scale": 0.02},
	"workloads": [{"name": "TPCC", "seed": 11}],
	"events": [
		{"action": "degrade-link", "target": "cxl", "at_phase": 1, "latency_x": 2},
		{"action": "pool-capacity", "at_phase": 1, "capacity_frac": 0.5}
	],
	"assertions": [
		{"kind": "ipc", "op": ">", "value": 0},
		{"kind": "speedup", "vs": "no-events", "op": "<=", "value": 1.5},
		{"kind": "speedup", "vs": "baseline", "op": ">", "value": 0},
		{"kind": "metric", "metric": "migrate/migrations", "op": ">=", "value": 0},
		{"kind": "drain_complete"}
	]}`

// TestScenarioVerdictWorkerCountInvariant pins the determinism
// contract: the same scenario under the same seed produces
// byte-identical verdict manifests at 1 and at 8 worker slots.
func TestScenarioVerdictWorkerCountInvariant(t *testing.T) {
	s, err := scenario.Parse([]byte(scnDeterminismDoc))
	if err != nil {
		t.Fatal(err)
	}
	c, err := scenario.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	encode := func(jobs int) []byte {
		r := NewRunner(Options{Jobs: jobs})
		v, err := r.RunScenario(c)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		b, err := v.Encode()
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return b
	}
	serial := encode(1)
	parallel := encode(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("verdict differs across worker counts:\njobs=1:\n%s\njobs=8:\n%s", serial, parallel)
	}
	v, err := scenario.DecodeVerdict(serial)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("determinism pin scenario should pass:\n%s", serial)
	}
}

// TestRunScenarioCorpusSmoke runs the full corpus end to end in short
// mode's complement: each scenario must pass its own assertions. This
// is the same check CI's scenario step performs through the CLI.
func TestRunScenarioCorpusSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus smoke is a long test")
	}
	r := NewRunner(Options{})
	for _, file := range corpusFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		s, err := scenario.Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		c, err := scenario.Compile(s)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		v, err := r.RunScenario(c)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if !v.Pass {
			for _, chk := range v.Failed() {
				t.Errorf("%s:%d: %s", file, chk.Line, chk.Detail)
			}
		}
	}
}
