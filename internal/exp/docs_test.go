package exp

import (
	"os"
	"strings"
	"testing"
)

// TestEveryExperimentDocumented fails when a registry entry has no
// section in EXPERIMENTS.md: every heading for an experiment carries
// its ID in backticks-in-parens, e.g. "## Fig. 8a — speedup (`fig8a`)",
// so adding an experiment without documenting it breaks the build.
func TestEveryExperimentDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for _, id := range IDs() {
		if !strings.Contains(text, "(`"+id+"`)") {
			t.Errorf("experiment %q has no EXPERIMENTS.md section: add a heading containing (`%s`)", id, id)
		}
	}
}
