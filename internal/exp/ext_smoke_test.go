package exp

import (
	"fmt"
	"testing"
)

func TestExtensionsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	o := Quick()
	o.Workloads = []string{"BFS", "TC", "Masstree", "POA"}
	r := NewRunner(o)
	t1, err := r.ExtReplication()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(t1.Render())
	t2, err := r.Ext32Sockets()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(t2.Render())
}
