package exp

import (
	"encoding/json"
	"flag"
	"strconv"
	"strings"
	"testing"

	"starnuma/internal/core"
)

// tinyOptions keeps integration tests fast.
func tinyOptions(workloads ...string) Options {
	o := Quick()
	o.Scale = 0.05
	o.Sim.Phases = 2
	o.Sim.PhaseInstr = 200_000
	o.Sim.TimedInstr = 20_000
	o.Sim.WarmupInstr = 2_000
	o.Workloads = workloads
	return o
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID: "t", Title: "title",
		Columns: []string{"a", "longcolumn"},
		Rows:    [][]string{{"x", "1"}, {"yy", "22"}},
		Notes:   "note",
	}
	out := tbl.Render()
	for _, want := range []string{"== t: title ==", "a", "longcolumn", "yy", "paper: note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsSpecs(t *testing.T) {
	o := Quick()
	specs, err := o.specs()
	if err != nil || len(specs) != 8 {
		t.Fatalf("specs = %d, %v", len(specs), err)
	}
	o.Workloads = []string{"BFS", "POA"}
	specs, err = o.specs()
	if err != nil || len(specs) != 2 {
		t.Fatalf("filtered specs = %d, %v", len(specs), err)
	}
	o.Workloads = []string{"nope"}
	if _, err := o.specs(); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFig3Constants(t *testing.T) {
	tbl := Fig3()
	if tbl.ID != "fig3" || len(tbl.Rows) != 7 {
		t.Fatalf("fig3 = %+v", tbl)
	}
	if tbl.Rows[5][1] != "100ns" {
		t.Fatalf("total overhead = %s, want 100ns", tbl.Rows[5][1])
	}
	if tbl.Rows[6][1] != "180ns" {
		t.Fatalf("end-to-end = %s, want 180ns", tbl.Rows[6][1])
	}
}

func TestFig4MatchesPaper(t *testing.T) {
	tbl := Fig4()
	if len(tbl.Rows) != 2 {
		t.Fatalf("fig4 rows = %d", len(tbl.Rows))
	}
	three := parseNS(t, tbl.Rows[0][1])
	four := parseNS(t, tbl.Rows[1][1])
	if three < 300 || three > 366 {
		t.Errorf("3-hop mean = %vns, want ~333", three)
	}
	if four != 200 {
		t.Errorf("4-hop = %vns, want 200", four)
	}
}

func parseNS(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ns"), 64)
	if err != nil {
		t.Fatalf("bad ns value %q", s)
	}
	return v
}

func TestFig2Shape(t *testing.T) {
	r := NewRunner(tinyOptions())
	tbl, err := r.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(sharingBuckets) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Measured page fractions must sum to ~100%.
	var sum float64
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if sum < 99 || sum > 101 {
		t.Fatalf("measured pages sum to %v%%", sum)
	}
}

func TestRunnerCaching(t *testing.T) {
	r := NewRunner(tinyOptions("POA"))
	specs, _ := r.opts.specs()
	a, err := r.baseline(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.baseline(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache miss on identical run")
	}
}

func TestFig8aIntegration(t *testing.T) {
	r := NewRunner(tinyOptions("BFS", "POA"))
	tbl, err := r.Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 { // 2 workloads + gmean
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// BFS must speed up; POA must not.
	bfs := parseX(t, tbl.Rows[0][1])
	poa := parseX(t, tbl.Rows[1][1])
	if bfs < 1.1 {
		t.Errorf("BFS T16 speedup = %v, want > 1.1", bfs)
	}
	if poa < 0.95 || poa > 1.05 {
		t.Errorf("POA speedup = %v, want ~1.0", poa)
	}
}

func parseX(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad speedup %q", s)
	}
	return v
}

func TestByIDAndIDs(t *testing.T) {
	r := NewRunner(tinyOptions("POA"))
	if _, err := r.ByID("fig3"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ByID("bogus"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	ids := IDs()
	if len(ids) != 20 {
		t.Fatalf("IDs = %v", ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestFig14RunsOnTinyConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	o := tinyOptions()
	r := NewRunner(o)
	tbl, err := r.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("fig14 rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			if v := parseX(t, cell); v < 0.5 || v > 5 {
				t.Errorf("implausible speedup %v in %v", v, row)
			}
		}
	}
}

func TestFig9StaticOracleIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r := NewRunner(tinyOptions("BFS"))
	tbl, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// StarNUMA static and dynamic must both beat the baseline.
	static := parseX(t, tbl.Rows[0][2])
	dynamic := parseX(t, tbl.Rows[0][3])
	if static < 1.05 || dynamic < 1.05 {
		t.Errorf("static %v / dynamic %v, want both > 1.05", static, dynamic)
	}
}

func TestQuickAndDefaultOptionsValid(t *testing.T) {
	for _, o := range []Options{Quick(), Default()} {
		if err := o.Sim.Validate(); err != nil {
			t.Fatal(err)
		}
		if o.Scale <= 0 {
			t.Fatal("bad scale")
		}
	}
	if Quick().Sim.Phases >= Default().Sim.Phases {
		t.Fatal("quick should be smaller than default")
	}
	_ = core.BaselineSystem() // keep import honest
}

// TestAllExperimentsTiny drives every experiment end to end at a tiny
// scale with a two-workload subset — the cheapest proof that the whole
// harness stays wired together. Experiments that hard-code their own
// workloads (fig2/13/14, extdrift) ignore the subset.
func TestAllExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r := NewRunner(tinyOptions("BFS", "POA"))
	tables, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(IDs()) {
		t.Fatalf("All returned %d tables, want %d", len(tables), len(IDs()))
	}
	seen := map[string]bool{}
	for _, tbl := range tables {
		if tbl.ID == "" || tbl.Title == "" || len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
			t.Errorf("malformed table %+v", tbl)
		}
		if seen[tbl.ID] {
			t.Errorf("duplicate table %s", tbl.ID)
		}
		seen[tbl.ID] = true
		for _, row := range tbl.Rows {
			if len(row) > len(tbl.Columns) {
				t.Errorf("%s: row wider than header: %v", tbl.ID, row)
			}
		}
		// Every table renders in every format.
		for _, f := range []string{"text", "csv", "md"} {
			if _, err := tbl.Format(f); err != nil {
				t.Errorf("%s: format %s: %v", tbl.ID, f, err)
			}
		}
	}
}

func TestByIDCoversAllIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r := NewRunner(tinyOptions("POA"))
	for _, id := range []string{"fig3", "fig4"} { // cheap static ones
		tbl, err := r.ByID(id)
		if err != nil || tbl.ID != id {
			t.Errorf("ByID(%s): %v", id, err)
		}
	}
}

// TestRenderRaggedRow pins the writeRow bounds guard: a row with more
// cells than the header must render (extra cells unpadded), not panic.
func TestRenderRaggedRow(t *testing.T) {
	tbl := &Table{
		ID: "t", Title: "ragged",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2", "surplus"}, {"3"}},
	}
	out := tbl.Render()
	for _, want := range []string{"surplus", "1", "3"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lost cell %q:\n%s", want, out)
		}
	}
}

// TestRegistryDescriptors checks the declarative registry is well
// formed: complete descriptors, unique identifiers (aliases included),
// and alias resolution through Lookup.
func TestRegistryDescriptors(t *testing.T) {
	exps := Experiments()
	if len(exps) != len(IDs()) {
		t.Fatalf("Experiments %d vs IDs %d", len(exps), len(IDs()))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("incomplete descriptor %+v", e)
		}
		for _, id := range append([]string{e.ID}, e.Aliases...) {
			if seen[id] {
				t.Errorf("identifier %q registered twice", id)
			}
			seen[id] = true
			got, ok := Lookup(id)
			if !ok || got.ID != e.ID {
				t.Errorf("Lookup(%q) = %v, %v; want %s", id, got.ID, ok, e.ID)
			}
		}
	}
	if _, ok := Lookup("bogus"); ok {
		t.Error("Lookup resolved an unknown id")
	}
	// The historical alias spellings must keep working.
	for alias, canon := range map[string]string{"table3": "tab3", "table4": "tab4"} {
		if e, ok := Lookup(alias); !ok || e.ID != canon {
			t.Errorf("alias %q -> %v, want %s", alias, e.ID, canon)
		}
	}
}

// TestManifestDeterministic checks the manifest snapshots memoised
// results sorted by key, so identical run sets encode byte-identically.
func TestManifestDeterministic(t *testing.T) {
	mk := func() *Runner {
		r := NewRunner(tinyOptions("BFS"))
		// Seed the memo directly — manifest shape is independent of how
		// results were computed.
		r.memoPut("starnuma-t16|BFS", &core.Result{Workload: "BFS", IPC: 0.5, Tracker: "T16"})
		r.memoPut("baseline|BFS", &core.Result{Workload: "BFS", IPC: 0.4, Tracker: "T16"})
		return r
	}
	m := mk().Manifest()
	if m.Schema != ManifestSchema {
		t.Fatalf("schema %q", m.Schema)
	}
	if len(m.Runs) != 2 || m.Runs[0].Key != "baseline|BFS" || m.Runs[1].Key != "starnuma-t16|BFS" {
		t.Fatalf("runs not sorted by key: %+v", m.Runs)
	}
	a, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(mk().Manifest())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("identical run sets encode differently")
	}
}

// TestCLIFlagsOptions checks the shared flag helper wires every flag
// into Options, including -metrics enabling collection.
func TestCLIFlagsOptions(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddCLIFlags(fs, false)
	err := fs.Parse([]string{"-quick", "-scale", "0.1", "-phases", "3",
		"-workloads", "BFS,TC", "-jobs", "2", "-nocache", "-metrics", "m.json"})
	if err != nil {
		t.Fatal(err)
	}
	o, err := f.Options(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Scale != 0.1 || o.Sim.Phases != 3 || o.Jobs != 2 {
		t.Errorf("options %+v", o)
	}
	if len(o.Workloads) != 2 || o.Workloads[0] != "BFS" {
		t.Errorf("workloads %v", o.Workloads)
	}
	if o.CacheDir != "" {
		t.Errorf("nocache left CacheDir %q", o.CacheDir)
	}
	if !o.Sim.CollectMetrics {
		t.Error("-metrics did not enable collection")
	}

	// Without -metrics, collection stays off.
	fs2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	f2 := AddCLIFlags(fs2, true)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	o2, err := f2.Options(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Sim.CollectMetrics {
		t.Error("collection on by default")
	}
	if o2.CacheDir == "" {
		t.Error("default cache dir missing")
	}
}
