package pool

import (
	"testing"

	"starnuma/internal/fault"
)

func TestDegradedCapacityPagesSqueeze(t *testing.T) {
	c := DefaultConfig() // 2 channels, 20% capacity fraction
	full := c.CapacityPages(1000)
	if got := c.DegradedCapacityPages(1000, fault.PoolState{CapacityFrac: 0.25}); got != full/4 {
		t.Errorf("squeeze to 25%%: got %d, want %d", got, full/4)
	}
	// The squeeze composes with a dead channel: half the channels, then
	// half the remainder.
	st := fault.PoolState{Down: []int{0}, CapacityFrac: 0.5}
	if got := c.DegradedCapacityPages(1000, st); got != full/4 {
		t.Errorf("dead channel + 50%% squeeze: got %d, want %d", got, full/4)
	}
	// A dead device has no capacity regardless of the squeeze.
	if got := c.DegradedCapacityPages(1000, fault.PoolState{Dead: true, CapacityFrac: 0.5}); got != 0 {
		t.Errorf("dead device: got %d, want 0", got)
	}
}
