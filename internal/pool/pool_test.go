package pool

import (
	"testing"

	"starnuma/internal/fault"
	"starnuma/internal/sim"
)

func TestFig3Budget(t *testing.T) {
	l := DefaultLatency()
	if got := l.RoundTrip(); got != 100*sim.Nanosecond {
		t.Fatalf("round trip = %v, want 100ns (Fig. 3)", got)
	}
	if got := l.OneWay(); got != 50*sim.Nanosecond {
		t.Fatalf("one way = %v, want 50ns", got)
	}
}

func TestSwitchedLatencyMatchesFig10(t *testing.T) {
	l := SwitchedLatency()
	if got := l.RoundTrip(); got != 190*sim.Nanosecond {
		t.Fatalf("switched round trip = %v, want 190ns (§V-C)", got)
	}
	// End-to-end: 190 + 80 = 270ns, "still 25% lower than a 2-hop access".
	endToEnd := l.RoundTrip() + 80*sim.Nanosecond
	if endToEnd != 270*sim.Nanosecond {
		t.Fatalf("end-to-end = %v", endToEnd)
	}
	if ratio := float64(endToEnd) / float64(360*sim.Nanosecond); ratio > 0.76 {
		t.Fatalf("switched pool not ≥24%% faster than 2-hop: ratio %v", ratio)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.LinkBW = -1 },
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.CapacityFraction = 0 },
		func(c *Config) { c.CapacityFraction = 1.5 },
		func(c *Config) { c.Latency = LatencyBreakdown{} },
	}
	for i, mod := range mods {
		c := DefaultConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCapacityPages(t *testing.T) {
	c := DefaultConfig() // 20%
	if got := c.CapacityPages(1000); got != 200 {
		t.Fatalf("capacity = %d, want 200", got)
	}
	c.CapacityFraction = 1.0 / 17
	if got := c.CapacityPages(17000); got != 1000 {
		t.Fatalf("capacity = %d, want 1000", got)
	}
	if got := c.CapacityPages(1); got != 1 {
		t.Fatalf("capacity floor = %d, want 1", got)
	}
}

func TestDegradedCapacityPages(t *testing.T) {
	c := DefaultConfig() // 20% of footprint, 2 channels
	full := c.CapacityPages(1000)
	if got := c.DegradedCapacityPages(1000, fault.PoolState{}); got != full {
		t.Fatalf("healthy degraded capacity %d != %d", got, full)
	}
	if got := c.DegradedCapacityPages(1000, fault.PoolState{Down: []int{1}}); got != full/2 {
		t.Fatalf("one channel down: %d, want %d", got, full/2)
	}
	if got := c.DegradedCapacityPages(1000, fault.PoolState{Down: []int{0, 1}}); got != 0 {
		t.Fatalf("all channels down: %d, want 0", got)
	}
	if got := c.DegradedCapacityPages(1000, fault.PoolState{Dead: true}); got != 0 {
		t.Fatalf("dead device: %d, want 0", got)
	}
}
