// Package pool describes StarNUMA's CXL memory pool device: a type-3
// multi-headed device (MHD) with one x8 CXL port per socket (§III-A/B).
//
// The package owns the Fig. 3 latency budget — the per-stage breakdown
// of a pool access's interconnect overhead — and the capacity policy
// (the paper expresses pool capacity as a fraction of each workload's
// footprint, §IV-D). The timing-level behaviour itself is composed from
// topology (the CXL star), link (per-socket bandwidth) and memdev (the
// MHD's DDR channels).
package pool

import (
	"fmt"

	"starnuma/internal/fault"
	"starnuma/internal/link"
	"starnuma/internal/sim"
)

// LatencyBreakdown is Fig. 3's round-trip budget for one pool access's
// interconnect overhead (excluding on-MHD DRAM access time).
type LatencyBreakdown struct {
	ProcessorPort sim.Time // CPU-side CXL port, round trip
	MHDPort       sim.Time // device-side CXL port, round trip
	Retimer       sim.Time // one retimer between host and MHD, round trip
	Flight        sim.Time // wire flight time, both directions
	MHDInternal   sim.Time // on-MHD network, arbitration, coherence directory
	// Switch is the optional CXL switch for >16-socket scaling (§III-B);
	// zero in the default 16-socket design.
	Switch sim.Time
}

// DefaultLatency returns Fig. 3's values: 25+25+20+10+20 = 100ns round
// trip, for a 180ns end-to-end unloaded pool access.
func DefaultLatency() LatencyBreakdown {
	return LatencyBreakdown{
		ProcessorPort: 25 * sim.Nanosecond,
		MHDPort:       25 * sim.Nanosecond,
		Retimer:       20 * sim.Nanosecond,
		Flight:        10 * sim.Nanosecond,
		MHDInternal:   20 * sim.Nanosecond,
	}
}

// SwitchedLatency returns the Fig. 10 sensitivity point: an intermediate
// CXL switch adds ~90ns round trip, for a 190ns penalty and a 270ns
// end-to-end pool access (§V-C).
func SwitchedLatency() LatencyBreakdown {
	l := DefaultLatency()
	l.Switch = 90 * sim.Nanosecond
	return l
}

// RoundTrip sums the budget.
func (l LatencyBreakdown) RoundTrip() sim.Time {
	return l.ProcessorPort + l.MHDPort + l.Retimer + l.Flight + l.MHDInternal + l.Switch
}

// OneWay halves the round trip; it is what the topology's CXL channels
// carry per direction.
func (l LatencyBreakdown) OneWay() sim.Time { return l.RoundTrip() / 2 }

// Config describes the pool device.
type Config struct {
	Latency LatencyBreakdown
	// LinkBW is the effective per-direction bandwidth of each socket's
	// CXL link (Table II scaled: 6 GB/s; Half-BW study: 3 GB/s).
	LinkBW link.GBps
	// Channels and ChannelBW size the MHD's DDR subsystem (Table II
	// scaled: 2 channels).
	Channels int
	// CapacityFraction bounds pool-resident data as a fraction of the
	// workload footprint: 20% (a chassis' worth, 1/5) by default, 1/17
	// (a socket's worth) in Fig. 12.
	CapacityFraction float64
}

// DefaultConfig returns the paper's scaled pool (Table II).
func DefaultConfig() Config {
	return Config{
		Latency:          DefaultLatency(),
		LinkBW:           6,
		Channels:         2,
		CapacityFraction: 0.20,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LinkBW < 0 {
		return fmt.Errorf("pool: negative link bandwidth")
	}
	if c.Channels <= 0 {
		return fmt.Errorf("pool: %d channels", c.Channels)
	}
	if c.CapacityFraction <= 0 || c.CapacityFraction > 1 {
		return fmt.Errorf("pool: capacity fraction %v out of (0,1]", c.CapacityFraction)
	}
	if c.Latency.RoundTrip() <= 0 {
		return fmt.Errorf("pool: non-positive latency budget")
	}
	return nil
}

// CapacityPages converts the capacity fraction into a page budget for a
// workload footprint.
func (c Config) CapacityPages(footprintPages int) int {
	n := int(c.CapacityFraction * float64(footprintPages))
	if n < 1 {
		n = 1
	}
	return n
}

// DegradedCapacityPages scales the page budget by the fraction of MHD
// DDR channels surviving under st: pool-resident data lives interleaved
// across all channels, so losing a channel forfeits its share of the
// capacity (migrate drains the overflow). A capacity squeeze
// (st.CapacityFrac) composes multiplicatively on top. A dead device has
// no capacity, which makes the migration policy fall back to socket-only
// (StarNUMA-Halt) behaviour.
func (c Config) DegradedCapacityPages(footprintPages int, st fault.PoolState) int {
	failed := st.FailedChannels(c.Channels)
	if st.Dead || failed >= c.Channels {
		return 0
	}
	n := c.CapacityPages(footprintPages) * (c.Channels - failed) / c.Channels
	if st.CapacityFrac > 0 && st.CapacityFrac < 1 {
		n = int(float64(n) * st.CapacityFrac)
	}
	return n
}
