package pool_test

import (
	"fmt"

	"starnuma/internal/pool"
)

// The Fig. 3 latency budget and the capacity rule of §IV-D.
func ExampleConfig() {
	cfg := pool.DefaultConfig()
	fmt.Println("interconnect overhead:", cfg.Latency.RoundTrip())
	fmt.Println("capacity for a 32768-page footprint:", cfg.CapacityPages(32768), "pages")
	// Output:
	// interconnect overhead: 100.000ns
	// capacity for a 32768-page footprint: 6553 pages
}
