package core

import (
	"encoding/json"
	"testing"

	"starnuma/internal/workload"
)

func metricsTestConfig(collect bool) (SystemConfig, SimConfig, workload.Spec) {
	sys := StarNUMASystem()
	cfg := QuickSim()
	cfg.Phases = 2
	cfg.PhaseInstr = 200_000
	cfg.TimedInstr = 20_000
	cfg.WarmupInstr = 2_000
	cfg.CollectMetrics = collect
	spec, err := workload.ByName("BFS", 0.05)
	if err != nil {
		panic(err)
	}
	return sys, cfg, spec
}

// stripMetrics re-encodes a result with the Metrics field cleared.
func stripMetrics(t *testing.T, r *Result) string {
	t.Helper()
	c := *r
	c.Metrics = nil
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsOffLeavesResultNil checks collection is genuinely off by
// default: no registry is built, Result.Metrics stays nil.
func TestMetricsOffLeavesResultNil(t *testing.T) {
	sys, cfg, spec := metricsTestConfig(false)
	res, err := Run(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil {
		t.Errorf("metrics collected with CollectMetrics=false: %v", res.Metrics.Names())
	}
}

// TestMetricsDoNotPerturbResults is the tentpole's acceptance test:
// simulation results must be bit-identical with collection on or off.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	sys, cfgOff, spec := metricsTestConfig(false)
	_, cfgOn, _ := metricsTestConfig(true)
	off, err := Run(sys, cfgOff, spec)
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(sys, cfgOn, spec)
	if err != nil {
		t.Fatal(err)
	}
	if on.Metrics.Empty() {
		t.Fatal("CollectMetrics=true produced no metrics")
	}
	if a, b := stripMetrics(t, off), stripMetrics(t, on); a != b {
		t.Errorf("results differ with metrics on vs off:\noff: %s\non:  %s", a, b)
	}
}

// TestMetricsDeterministic pins byte-identical metric dumps (and JSON
// encodings) across two identical runs — the determinism contract
// cmd/runstat's diff relies on.
func TestMetricsDeterministic(t *testing.T) {
	sys, cfg, spec := metricsTestConfig(true)
	r1, err := Run(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if d1, d2 := r1.Metrics.Dump(), r2.Metrics.Dump(); d1 != d2 {
		t.Errorf("metric dumps differ across identical runs:\n%s\n---\n%s", d1, d2)
	}
	b1, err := r1.Metrics.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r2.Metrics.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("metric JSON encodings differ across identical runs")
	}
}

// TestMetricsCoverSubsystems spot-checks that each instrumented layer
// actually reported into the merged snapshot.
func TestMetricsCoverSubsystems(t *testing.T) {
	sys, cfg, spec := metricsTestConfig(true)
	res, err := Run(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	for _, name := range []string{
		"sim/events_fired",
		"coherence/transactions",
		"tlb/walks",
		"tracker/flushes",
	} {
		if _, ok := m.Counters[name]; !ok {
			t.Errorf("counter %q missing", name)
		}
	}
	if _, ok := m.Histograms["sim/queue_depth"]; !ok {
		t.Error("histogram sim/queue_depth missing")
	}
	for _, name := range []string{"core/instructions", "migrate/migrations"} {
		if len(m.Series[name]) == 0 {
			t.Errorf("series %q missing", name)
		}
	}
	// Every per-kind event counter plus link/llc hierarchies exist.
	var haveLink, haveLLC, haveMem, haveKind bool
	for name := range m.Counters {
		switch {
		case len(name) > 5 && name[:5] == "link/":
			haveLink = true
		case len(name) > 4 && name[:4] == "llc/":
			haveLLC = true
		case len(name) > 4 && name[:4] == "mem/":
			haveMem = true
		case len(name) > 11 && name[:11] == "sim/events/":
			haveKind = true
		}
	}
	if !haveLink || !haveLLC || !haveMem || !haveKind {
		t.Errorf("missing hierarchy: link=%v llc=%v mem=%v kind=%v",
			haveLink, haveLLC, haveMem, haveKind)
	}
}
