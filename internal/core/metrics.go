package core

import (
	"fmt"
	"strings"

	"starnuma/internal/attrib"
)

// metricName turns a component name ("UPI:s0->s1", "pool.ch2") into a
// hierarchical metric path segment: lowercase, with "->" collapsed to
// "-" and ":"/"." becoming path separators.
func metricName(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, "->", "-")
	s = strings.ReplaceAll(s, ":", "/")
	s = strings.ReplaceAll(s, ".", "/")
	return s
}

// harvest dumps every substrate component's counters into the window's
// metrics registry at the end of the timing simulation. phase is the
// checkpoint phase, used as the sim-time bucket for series points so
// merged snapshots line up per phase. Reads only — harvesting never
// perturbs simulation state.
//
//starnuma:coldpath once-per-window metrics drain
func (ts *timingSystem) harvest(phase int) {
	m := ts.met
	t := int64(phase)

	// Scheduler.
	m.Add("sim/events_fired", ts.eng.Fired())
	m.Point("sim/queue_depth_max", t, float64(ts.eng.MaxPending()))

	// Interconnect links, per directed channel.
	for _, l := range ts.links {
		st := l.Stats()
		name := "link/" + metricName(st.Name)
		m.Add(name+"/messages", st.Messages)
		m.Add(name+"/tx_bytes", st.Bytes)
		m.Add(name+"/busy_ps", uint64(st.BusyTime))
		m.Add(name+"/queued_ps", uint64(st.QueuedTime))
		m.Point(name+"/util", t, l.Utilization(ts.w.simTime))
	}

	// Memory controllers, per channel (plus row-buffer outcomes for the
	// banked model).
	for _, ctrl := range ts.ctrls {
		for _, st := range ctrl.Stats() {
			name := "mem/" + metricName(st.Name)
			m.Add(name+"/accesses", st.Messages)
			m.Add(name+"/bytes", st.Bytes)
			m.Add(name+"/busy_ps", uint64(st.BusyTime))
			m.Add(name+"/queued_ps", uint64(st.QueuedTime))
		}
		for i, bs := range ctrl.BankStats() {
			name := fmt.Sprintf("mem/%s/ch%d", metricName(ctrl.Name()), i)
			m.Add(name+"/row_hits", bs.RowHits)
			m.Add(name+"/row_misses", bs.RowMisses)
		}
	}

	// Per-socket LLC presence model.
	for s, llc := range ts.llcs {
		st := llc.Stats()
		name := fmt.Sprintf("llc/s%d", s)
		m.Add(name+"/inserts", st.Inserts)
		m.Add(name+"/hits", st.Hits)
		m.Add(name+"/evictions", st.Evictions)
		m.Add(name+"/dirty_evictions", st.DirtyEvictions)
	}

	// Coherence directory.
	dir := ts.dir.Stats()
	m.Add("coherence/transactions", dir.Transactions)
	m.Add("coherence/bt_3hop", dir.BT3Hop)
	m.Add("coherence/bt_4hop", dir.BT4Hop)
	m.Add("coherence/invalidations", dir.Invalidations)

	// Translation subsystem.
	if ts.tlbs != nil {
		st := ts.tlbs.Stats()
		m.Add("tlb/hits", st.Hits)
		m.Add("tlb/walks", st.Walks)
		m.Add("tlb/shootdown_walks", st.ShootdownWalks)
		m.Add("tlb/shootdowns", st.Shootdowns)
		m.Add("tlb/shootdown_targets", st.ShootdownTargets)
		m.Point("tlb/shootdowns_per_phase", t, float64(st.Shootdowns))
	}

	// Fault injection; only when a schedule is active, so fault-free
	// manifests carry no fault/* keys.
	if ts.sched != nil {
		m.Add("fault/link/degraded_sends", ts.w.faultDegraded)
		m.Add("fault/link/flap_retries", ts.w.faultRetries)
		m.Add("fault/link/retry_ps", uint64(ts.w.faultRetryPS))
		m.Point("fault/events_active", t, float64(ts.sched.Active(phase)))
		if ts.topo.HasPool() {
			m.Point("fault/pool/channels_down", t,
				float64(ts.poolFault.FailedChannels(ts.sys.Pool.Channels)))
		}
	}

	// Stall attribution; only when the ledger is active, so
	// attribution-off manifests carry no attrib/* keys.
	if ts.led != nil {
		for c := attrib.Category(0); c < attrib.NumCategories; c++ {
			m.Add("attrib/"+c.String()+"/ps", uint64(ts.led.CategoryTotal(c)))
		}
	}

	// Migration and study counters surfaced by the window itself.
	m.Add("migrate/stalled_accesses", ts.w.migrStalled)
	m.Point("migrate/modeled", t, float64(ts.w.migrModeled))
	m.Add("replica/reads", ts.w.replicaReads)
	m.Add("replica/write_stalls", ts.w.replicaWriteStalls)
	m.Add("tracker/page_faults", ts.w.pageFaults)

	// Core aggregates per phase.
	m.Point("core/sim_time_ns", t, ts.w.simTime.Nanos())
	var instr uint64
	for _, cs := range ts.cores {
		instr += cs.instr - cs.warmupInstr
	}
	m.Point("core/instructions", t, float64(instr))
	m.Point("core/misses", t, float64(ts.w.misses))
}
