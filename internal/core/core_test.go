package core

import (
	"testing"

	"starnuma/internal/memdev"
	"starnuma/internal/migrate"
	"starnuma/internal/sim"
	"starnuma/internal/stats"
	"starnuma/internal/topology"
	"starnuma/internal/tracker"
	"starnuma/internal/workload"
)

// tinySim returns a configuration small enough for unit tests.
func tinySim() SimConfig {
	c := DefaultSim()
	c.Phases = 2
	c.PhaseInstr = 200_000
	c.TimedInstr = 20_000
	c.WarmupInstr = 2_000
	return c
}

func tinySpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	spec, err := workload.ByName(name, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestPolicySpecString(t *testing.T) {
	if PolicyStarNUMA.String() != "starnuma" ||
		PolicyPerfectBaseline.String() != "baseline-perfect" ||
		PolicyNone.String() != "none" ||
		(PolicySpec{}).String() != "starnuma" {
		t.Fatal("PolicySpec.String wrong")
	}
	if (PolicySpec{Name: "oracle"}).Tag() != "oracle" {
		t.Fatal("parameterless Tag should be the bare name")
	}
	withParams := PolicySpec{Name: "oracle", Params: migrate.Params{"pool_sharer_threshold": 4}}
	tag := withParams.Tag()
	if len(tag) != len("oracle")+1+8 || tag[:7] != "oracle-" {
		t.Fatalf("parameterised Tag = %q, want oracle-<8 hex>", tag)
	}
	if tag != withParams.Tag() {
		t.Fatal("Tag must be deterministic")
	}
}

func TestSystemConfigValidate(t *testing.T) {
	if err := BaselineSystem().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := StarNUMASystem().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := SingleSocketSystem().Validate(); err != nil {
		t.Fatal(err)
	}
	mods := []func(*SystemConfig){
		func(c *SystemConfig) { c.Topology.Sockets = 0 },
		func(c *SystemConfig) { c.UPIBandwidth = -1 },
		func(c *SystemConfig) { c.NUMABandwidth = -1 },
		func(c *SystemConfig) { c.LLCBytes = 0 },
		func(c *SystemConfig) { c.LLCWays = 0 },
		func(c *SystemConfig) { c.CoresPerSocket = 0 },
		func(c *SystemConfig) { c.ClockGHz = 0 },
		func(c *SystemConfig) { c.MessageBytes = 0 },
		func(c *SystemConfig) { c.DataBytes = 0 },
		func(c *SystemConfig) { c.Pool.Channels = 0 }, // pool is validated on StarNUMA
	}
	for i, mod := range mods {
		c := StarNUMASystem()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid system accepted", i)
		}
	}
}

func TestSimConfigValidate(t *testing.T) {
	if err := DefaultSim().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuickSim().Validate(); err != nil {
		t.Fatal(err)
	}
	mods := []func(*SimConfig){
		func(c *SimConfig) { c.Phases = 0 },
		func(c *SimConfig) { c.PhaseInstr = 0 },
		func(c *SimConfig) { c.TimedInstr = 0 },
		func(c *SimConfig) { c.TimedInstr = c.PhaseInstr + 1 },
		func(c *SimConfig) { c.WarmupInstr = c.TimedInstr },
		func(c *SimConfig) { c.RegionPages = 0 },
		func(c *SimConfig) { c.MigrationCostCycles = -1 },
	}
	for i, mod := range mods {
		c := DefaultSim()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid sim config accepted", i)
		}
	}
}

func TestStarNUMASystemWiresPoolLatency(t *testing.T) {
	s := StarNUMASystem()
	if !s.Topology.HasPool {
		t.Fatal("no pool")
	}
	if s.Topology.CXLOneWay != 50*sim.Nanosecond {
		t.Fatalf("CXL one-way = %v", s.Topology.CXLOneWay)
	}
}

func TestUnloadedLatenciesMatchPaper(t *testing.T) {
	topo := topology.New(StarNUMASystem().Topology)
	lat := unloadedLatencies(topo, 80*sim.Nanosecond)
	if lat[stats.Local] != 80*sim.Nanosecond ||
		lat[stats.OneHop] != 130*sim.Nanosecond ||
		lat[stats.TwoHop] != 360*sim.Nanosecond ||
		lat[stats.Pool] != 180*sim.Nanosecond ||
		lat[stats.BTPool] != 280*sim.Nanosecond {
		t.Fatalf("unloaded latencies = %v", lat)
	}
	// BT_Socket averages ~333+80ns over R,H,O combinations (Fig. 4).
	bts := lat[stats.BTSocket].Nanos()
	if bts < 380 || bts < 80 || bts > 445 {
		t.Fatalf("BT_Socket unloaded = %vns, want ~413ns", bts)
	}
}

func TestTraceSimulateCheckpointInvariants(t *testing.T) {
	spec := tinySpec(t, "BFS")
	sys := StarNUMASystem()
	cfg := tinySim()
	cfg.Phases = 3
	topo := topology.New(sys.Topology)
	gen, err := workload.NewGenerator(spec, topo.Sockets(), sys.CoresPerSocket)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TraceSimulate(sys, cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Checkpoints) != cfg.Phases {
		t.Fatalf("checkpoints = %d, want %d", len(tr.Checkpoints), cfg.Phases)
	}
	// Checkpoint 0 must be entirely unassigned, later ones mostly
	// assigned; migrations must move pages consistently with the maps.
	for _, h := range tr.Checkpoints[0].PageHome {
		if h != Unassigned {
			t.Fatal("checkpoint 0 has assigned pages")
		}
	}
	if len(tr.Checkpoints[0].Migrations) != 0 {
		t.Fatal("checkpoint 0 has migrations")
	}
	for i := 1; i < len(tr.Checkpoints); i++ {
		chk := tr.Checkpoints[i]
		if chk.Phase != i {
			t.Fatalf("checkpoint %d has phase %d", i, chk.Phase)
		}
		for _, m := range chk.Migrations {
			if chk.PageHome[m.Page] != m.From {
				t.Fatalf("migration %+v inconsistent with start map (home=%v)",
					m, chk.PageHome[m.Page])
			}
			if m.From == m.To {
				t.Fatalf("no-op migration %+v", m)
			}
		}
	}
	// The final map must equal the last checkpoint's map with its
	// migrations applied, modulo first touches in the last phase.
	last := tr.Checkpoints[len(tr.Checkpoints)-1]
	after := make([]topology.NodeID, len(last.PageHome))
	copy(after, last.PageHome)
	for _, m := range last.Migrations {
		after[m.Page] = m.To
	}
	for pg, h := range tr.FinalHome {
		if after[pg] != Unassigned && h != after[pg] {
			t.Fatalf("page %d: final home %v != checkpoint-projected %v", pg, h, after[pg])
		}
	}
}

func TestTraceSimulateFirstTouchIsLocal(t *testing.T) {
	// POA is fully private: after first touch every page must be homed at
	// its single sharer's socket and no migrations must occur.
	spec := tinySpec(t, "POA")
	sys := BaselineSystem()
	cfg := tinySim()
	topo := topology.New(sys.Topology)
	gen, err := workload.NewGenerator(spec, topo.Sockets(), sys.CoresPerSocket)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TraceSimulate(sys, cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	for i, chk := range tr.Checkpoints {
		if len(chk.Migrations) != 0 {
			t.Fatalf("checkpoint %d has %d migrations for POA", i, len(chk.Migrations))
		}
	}
	for pg, h := range tr.FinalHome {
		if h == Unassigned {
			continue
		}
		sh := gen.Sharers(uint32(pg))
		if len(sh) != 1 || topology.NodeID(sh[0]) != h {
			t.Fatalf("page %d homed at %v, sharers %v", pg, h, sh)
		}
	}
}

func TestRunPOAIsNUMAInsensitive(t *testing.T) {
	spec := tinySpec(t, "POA")
	r, err := Run(StarNUMASystem(), tinySim(), spec)
	if err != nil {
		t.Fatal(err)
	}
	fr := r.AMAT.Breakdown().Fractions()
	if fr[stats.Local] < 0.999 {
		t.Fatalf("POA local fraction = %v, want ~1.0 (§V-A)", fr[stats.Local])
	}
	if r.PoolPages != 0 {
		t.Fatalf("POA pooled %d pages", r.PoolPages)
	}
	if r.MigrStats.PagesToPool != 0 {
		t.Fatal("POA migrated to pool")
	}
	if r.AMAT.Measured() < 80*sim.Nanosecond || r.AMAT.Measured() > 120*sim.Nanosecond {
		t.Fatalf("POA AMAT = %v, want ~80-120ns", r.AMAT.Measured())
	}
}

func TestRunDeterminism(t *testing.T) {
	spec := tinySpec(t, "CC")
	cfg := tinySim()
	r1, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.IPC != r2.IPC || r1.AMAT.Measured() != r2.AMAT.Measured() ||
		r1.Misses != r2.Misses || r1.PoolPages != r2.PoolPages {
		t.Fatalf("non-deterministic: %+v vs %+v", r1, r2)
	}
}

func TestRunStarNUMABeatsBaselineOnBFS(t *testing.T) {
	spec := tinySpec(t, "BFS")
	cfg := tinySim()
	cfg.Phases = 3
	base := cfg
	base.Policy = PolicyPerfectBaseline
	rb, err := Run(BaselineSystem(), base, spec)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sp := Speedup(rs, rb); sp < 1.2 {
		t.Fatalf("BFS speedup = %v, want > 1.2 (paper: ~1.7)", sp)
	}
	if rs.AMAT.Measured() >= rb.AMAT.Measured() {
		t.Fatalf("StarNUMA AMAT %v not below baseline %v",
			rs.AMAT.Measured(), rb.AMAT.Measured())
	}
	// Pool accesses must appear in the breakdown, and only on StarNUMA.
	if rs.AMAT.Breakdown()[stats.Pool] == 0 {
		t.Fatal("no pool accesses in StarNUMA run")
	}
	if rb.AMAT.Breakdown()[stats.Pool] != 0 || rb.AMAT.Breakdown()[stats.BTPool] != 0 {
		t.Fatal("pool accesses in baseline run")
	}
}

func TestRunSingleSocketIPCApproachesTable3(t *testing.T) {
	// The single-socket configuration should roughly recover the
	// published single-socket IPC, since ZeroLoadIPC inverts the same
	// model.
	for _, name := range []string{"TC", "FMI", "POA"} {
		spec := tinySpec(t, name)
		r, err := Run(SingleSocketSystem(), tinySim(), spec)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := spec.SingleSocketIPC*0.6, spec.SingleSocketIPC*1.5
		if r.IPC < lo || r.IPC > hi {
			t.Errorf("%s single-socket IPC = %.3f, want within [%.3f, %.3f] of Table III's %.2f",
				name, r.IPC, lo, hi, spec.SingleSocketIPC)
		}
		fr := r.AMAT.Breakdown().Fractions()
		if fr[stats.Local] < 0.999 {
			t.Errorf("%s single-socket local fraction = %v", name, fr[stats.Local])
		}
	}
}

func TestRunMeasuredMPKIMatchesSpec(t *testing.T) {
	spec := tinySpec(t, "Masstree")
	r, err := Run(StarNUMASystem(), tinySim(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.MPKI < spec.MPKI*0.85 || r.MPKI > spec.MPKI*1.15 {
		t.Fatalf("measured MPKI = %v, spec %v", r.MPKI, spec.MPKI)
	}
}

func TestRunStaticOracle(t *testing.T) {
	spec := tinySpec(t, "BFS")
	cfg := tinySim()
	cfg.StaticOracle = true
	r, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Static placement performs no migrations but still pools pages.
	if r.MigrStats.PagesToPool != 0 || r.MigrStats.PagesToSocket != 0 {
		t.Fatalf("static oracle migrated: %+v", r.MigrStats)
	}
	if r.PoolPages == 0 {
		t.Fatal("static oracle pooled nothing")
	}
	if r.AMAT.Breakdown()[stats.Pool] == 0 {
		t.Fatal("no pool accesses under static oracle")
	}
	if r.MigrStalledAccesses != 0 {
		t.Fatal("static oracle stalled accesses on migrations")
	}
}

func TestRunT0CapturesMostOfT16(t *testing.T) {
	spec := tinySpec(t, "BFS")
	cfg := tinySim()
	cfg.Phases = 3
	r16, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracker = tracker.T0
	r0, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r0.AMAT.Breakdown()[stats.Pool] == 0 {
		t.Fatal("T0 placed nothing in the pool")
	}
	// T0 captures most of T16's benefit (Fig. 8a: 1.35x vs 1.54x).
	if r0.IPC < 0.5*r16.IPC {
		t.Fatalf("T0 IPC %v far below T16 %v", r0.IPC, r16.IPC)
	}
}

func TestRunBaselinePolicyIgnoresPool(t *testing.T) {
	spec := tinySpec(t, "BFS")
	cfg := tinySim()
	cfg.Policy = PolicyPerfectBaseline
	// Even on a pool-equipped system, the perfect baseline policy never
	// targets the pool.
	r, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.MigrStats.PagesToPool != 0 {
		t.Fatal("baseline policy migrated to pool")
	}
}

func TestRunRejectsInvalidConfigs(t *testing.T) {
	spec := tinySpec(t, "BFS")
	bad := BaselineSystem()
	bad.ClockGHz = 0
	if _, err := Run(bad, tinySim(), spec); err == nil {
		t.Fatal("invalid system accepted")
	}
	cfg := tinySim()
	cfg.Phases = 0
	if _, err := Run(BaselineSystem(), cfg, spec); err == nil {
		t.Fatal("invalid sim config accepted")
	}
	if _, err := Run(BaselineSystem(), tinySim(), workload.Spec{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestSpeedupAndCoherenceInterval(t *testing.T) {
	a := &Result{IPC: 1.5}
	b := &Result{IPC: 1.0}
	if Speedup(a, b) != 1.5 {
		t.Fatal("Speedup wrong")
	}
	if Speedup(a, &Result{}) != 0 {
		t.Fatal("Speedup by zero")
	}
	r := &Result{SimulatedTime: 1000 * sim.Nanosecond}
	r.Dir.Transactions = 10
	if r.CoherenceTxnIntervalNS() != 100 {
		t.Fatal("txn interval wrong")
	}
	if (&Result{}).CoherenceTxnIntervalNS() != 0 {
		t.Fatal("empty txn interval")
	}
}

func TestGapTime(t *testing.T) {
	// 100 instructions at IPC 2 and 2.4GHz: 50 cycles = 20833ps.
	got := gapTime(100, 2, 1000.0/2.4)
	if got < 20833 || got > 20834 {
		t.Fatalf("gapTime = %v", got)
	}
}

func TestRunMigrationStallsObserved(t *testing.T) {
	// Masstree migrates its entire shared space toward the pool; some
	// accesses must catch pages mid-migration.
	spec := tinySpec(t, "Masstree")
	cfg := tinySim()
	cfg.Phases = 3
	r, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.MigrStats.PagesToPool == 0 {
		t.Fatal("no pool migrations for Masstree")
	}
	if r.MigrStalledAccesses == 0 {
		t.Log("warning: no migration stalls observed (timing-dependent)")
	}
}

func TestTLBModelingObservesShootdowns(t *testing.T) {
	spec := tinySpec(t, "Masstree") // migrates heavily
	cfg := tinySim()
	cfg.Phases = 3
	r, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.TLB.Walks == 0 || r.TLB.Hits == 0 {
		t.Fatalf("TLB inactive: %+v", r.TLB)
	}
	if r.TLB.Shootdowns == 0 {
		t.Fatalf("no shootdowns despite migrations: %+v", r.TLB)
	}
	// The shared directory must target far fewer cores than a broadcast
	// (64 cores x shootdowns).
	if r.TLB.ShootdownTargets >= r.TLB.Shootdowns*64 {
		t.Fatalf("shootdowns look like broadcasts: %+v", r.TLB)
	}
}

func TestTLBModelingCanBeDisabled(t *testing.T) {
	spec := tinySpec(t, "CC")
	cfg := tinySim()
	cfg.ModelTLB = false
	r, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.TLB.Walks != 0 || r.TLB.Shootdowns != 0 {
		t.Fatalf("TLB stats with modelling disabled: %+v", r.TLB)
	}
}

func TestRunSourceValidatesCoreCount(t *testing.T) {
	spec := tinySpec(t, "CC")
	gen, err := workload.NewGenerator(spec, 8, 4) // wrong shape for 16-socket system
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSource(BaselineSystem(), tinySim(), gen); err == nil {
		t.Fatal("accepted core-count mismatch")
	}
}

func TestReplicationStudy(t *testing.T) {
	spec := tinySpec(t, "TC") // read-only sharing: the favourable case
	cfg := tinySim()
	cfg.Policy = PolicyPerfectBaseline
	base, err := Run(BaselineSystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Replication = migrate.DefaultReplicationConfig()
	cfg.Replication.Enable = true
	repl, err := Run(BaselineSystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if repl.ReplicatedPages == 0 {
		t.Fatal("TC replicated no pages despite read-only sharing")
	}
	if repl.ReplicaReads == 0 {
		t.Fatal("no replica reads observed")
	}
	if repl.IPC <= base.IPC {
		t.Fatalf("replication did not help read-only TC: %v vs %v", repl.IPC, base.IPC)
	}
	// Replica reads are local.
	fr := repl.AMAT.Breakdown().Fractions()
	bfr := base.AMAT.Breakdown().Fractions()
	if fr[stats.Local] <= bfr[stats.Local] {
		t.Fatalf("local fraction did not grow: %v vs %v", fr[stats.Local], bfr[stats.Local])
	}
}

func TestReplicationWritePenalty(t *testing.T) {
	spec := tinySpec(t, "Masstree") // 50/50 read-write: the hostile case
	cfg := tinySim()
	cfg.Policy = PolicyPerfectBaseline
	base, err := Run(BaselineSystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Replication = migrate.DefaultReplicationConfig()
	cfg.Replication.Enable = true
	cfg.Replication.MaxWriteFrac = 1.0 // naive: replicate read-write pages too
	repl, err := Run(BaselineSystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if repl.ReplicaWriteStalls == 0 {
		t.Fatal("no write stalls on a 50/50 write workload")
	}
	if repl.IPC >= base.IPC {
		t.Fatalf("naive replication should hurt Masstree: %v vs %v (§V-F)", repl.IPC, base.IPC)
	}
}

func TestReplicationConfigValidation(t *testing.T) {
	cfg := tinySim()
	cfg.Replication = migrate.DefaultReplicationConfig()
	cfg.Replication.Enable = true
	cfg.Replication.CapacityFrac = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("invalid replication config accepted")
	}
	cfg.Replication.Enable = false
	if err := cfg.Validate(); err != nil {
		t.Fatalf("disabled replication should skip validation: %v", err)
	}
}

func TestThirtyTwoSocketSystem(t *testing.T) {
	spec := tinySpec(t, "BFS")
	cfg := tinySim()
	sys := StarNUMASystem()
	sys.Topology.Sockets = 32
	cfg.Migration.PoolSharerThreshold = 16
	r, err := Run(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 {
		t.Fatalf("32-socket IPC = %v", r.IPC)
	}
	if r.AMAT.Breakdown()[stats.Pool] == 0 {
		t.Fatal("no pool accesses at 32 sockets")
	}
}

func TestForceDirectBTAblation(t *testing.T) {
	spec := tinySpec(t, "Masstree") // write-heavy shared pages: many BTs
	cfg := tinySim()
	cfg.Phases = 3
	normal, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ForceDirectBT = true
	direct, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	// With the ablation, pool-home transfers are classified as direct
	// socket transfers.
	if direct.AMAT.Breakdown()[stats.BTPool] != 0 {
		t.Fatal("ForceDirectBT still produced 4-hop transfers")
	}
	if normal.AMAT.Breakdown()[stats.BTPool] == 0 {
		t.Skip("no pool-home transfers in this configuration")
	}
}

func TestStripedPlacementAblation(t *testing.T) {
	spec := tinySpec(t, "POA")
	cfg := tinySim()
	cfg.StripedPlacement = true
	cfg.Policy = PolicyNone
	r, err := Run(BaselineSystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	// POA under striping loses its all-local property: pages land on
	// arbitrary sockets instead of their single accessor.
	fr := r.AMAT.Breakdown().Fractions()
	if fr[stats.Local] > 0.5 {
		t.Fatalf("striped POA still %v local; striping had no effect", fr[stats.Local])
	}
	// And first-touch restores it (the paper's §V-A observation).
	cfg.StripedPlacement = false
	r2, err := Run(BaselineSystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if fr2 := r2.AMAT.Breakdown().Fractions(); fr2[stats.Local] < 0.999 {
		t.Fatalf("first-touch POA local = %v", fr2[stats.Local])
	}
}

func TestSoftwareTrackingStudy(t *testing.T) {
	spec := tinySpec(t, "BFS")
	cfg := tinySim()
	cfg.Phases = 3
	hw, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SoftwareTracking = DefaultSoftwareTracking()
	cfg.SoftwareTracking.Enable = true
	sw, err := Run(StarNUMASystem(), cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sw.PageFaults == 0 {
		t.Fatal("software tracking took no faults")
	}
	if hw.PageFaults != 0 {
		t.Fatal("hardware tracking took faults")
	}
	// Sampling finds fewer pool candidates than full hardware tracking.
	if sw.MigrStats.PagesToPool >= hw.MigrStats.PagesToPool && hw.MigrStats.PagesToPool > 0 {
		t.Fatalf("5%% sample pooled %d pages vs hardware's %d",
			sw.MigrStats.PagesToPool, hw.MigrStats.PagesToPool)
	}
}

func TestSoftwareTrackingValidation(t *testing.T) {
	cfg := tinySim()
	cfg.SoftwareTracking.Enable = true
	cfg.SoftwareTracking.SampleFrac = 0
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero sample fraction accepted")
	}
	cfg.SoftwareTracking.SampleFrac = 0.5
	cfg.SoftwareTracking.FaultPenaltyCycles = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative fault penalty accepted")
	}
}

func TestBankedDRAMPipeline(t *testing.T) {
	spec := tinySpec(t, "CC")
	sys := StarNUMASystem()
	hit, miss := memdev.DefaultBankLatencies()
	sys.SocketMem.BanksPerChannel = 8
	sys.SocketMem.RowHitLatency = hit
	sys.SocketMem.RowMissLatency = miss
	sys.PoolMem.BanksPerChannel = 8
	sys.PoolMem.RowHitLatency = hit
	sys.PoolMem.RowMissLatency = miss
	r, err := Run(sys, tinySim(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 || r.AMAT.Measured() <= 0 {
		t.Fatalf("banked pipeline produced nonsense: %+v", r)
	}
}

func TestRunSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := tinySim()
	results, err := RunSuite(StarNUMASystem(), cfg, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("suite results = %d", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		if r.IPC <= 0 {
			t.Errorf("%s: IPC = %v", r.Workload, r.IPC)
		}
		names[r.Workload] = true
	}
	if len(names) != 8 {
		t.Fatalf("duplicate workloads in suite: %v", names)
	}
}
