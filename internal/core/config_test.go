package core

import (
	"testing"

	"starnuma/internal/sim"
	"starnuma/internal/topology"
)

// The system constructors encode Table II; these tests pin the paper's
// scaled parameters so accidental edits surface immediately.
func TestBaselineSystemMatchesTable2(t *testing.T) {
	s := BaselineSystem()
	if s.UPIBandwidth != 3 || s.NUMABandwidth != 3 {
		t.Errorf("link bandwidth %v/%v, want 3/3 GB/s (Table II)", s.UPIBandwidth, s.NUMABandwidth)
	}
	if s.SocketMem.Channels != 1 {
		t.Errorf("socket channels = %d, want 1 (Table II)", s.SocketMem.Channels)
	}
	if s.CoresPerSocket != 4 {
		t.Errorf("cores/socket = %d, want 4 (Table II)", s.CoresPerSocket)
	}
	if s.ClockGHz != 2.4 {
		t.Errorf("clock = %v, want 2.4 GHz (Table I)", s.ClockGHz)
	}
	if s.LLCBytes != 8<<20 {
		t.Errorf("LLC = %d, want 8 MB (2MB/core x 4)", s.LLCBytes)
	}
	if s.Topology.HasPool {
		t.Error("baseline must not have a pool")
	}
}

func TestStarNUMASystemMatchesTable2(t *testing.T) {
	s := StarNUMASystem()
	if !s.Topology.HasPool {
		t.Fatal("no pool")
	}
	if s.Pool.LinkBW != 6 {
		t.Errorf("CXL bandwidth = %v, want 6 GB/s (Table II)", s.Pool.LinkBW)
	}
	if s.Pool.Channels != 2 {
		t.Errorf("pool channels = %d, want 2 (Table II)", s.Pool.Channels)
	}
	if s.Pool.CapacityFraction != 0.20 {
		t.Errorf("pool capacity = %v, want 20%% (§IV-D)", s.Pool.CapacityFraction)
	}
}

func TestCyclePS(t *testing.T) {
	s := BaselineSystem()
	got := s.CyclePS()
	if got < 416.6 || got > 416.7 {
		t.Fatalf("cycle = %vps, want ~416.67ps at 2.4GHz", got)
	}
}

func TestDefaultSimMethodology(t *testing.T) {
	c := DefaultSim()
	// 10% timing window, warm-up inside it (§IV-A3).
	if c.TimedInstr*10 != c.PhaseInstr {
		t.Errorf("timed window %d is not 10%% of phase %d", c.TimedInstr, c.PhaseInstr)
	}
	if c.WarmupInstr >= c.TimedInstr {
		t.Error("warmup not inside window")
	}
	if c.Phases < 5 || c.Phases > 10 {
		t.Errorf("phases = %d, paper uses 5-10 checkpoints", c.Phases)
	}
	if c.MigrationCostCycles != 3000 {
		t.Errorf("migration cost = %d cycles, want 3000 (§IV-C)", c.MigrationCostCycles)
	}
	if !c.ModelTLB {
		t.Error("TLB modelling should default on")
	}
}

func TestUnassignedSentinel(t *testing.T) {
	if Unassigned >= 0 {
		t.Fatal("Unassigned must be negative (outside node range)")
	}
	if topology.NodeID(0) == Unassigned {
		t.Fatal("socket 0 equals Unassigned")
	}
}

func TestGapTimeMonotone(t *testing.T) {
	cyclePS := BaselineSystem().CyclePS()
	prev := sim.Time(0)
	for gap := uint32(1); gap < 1000; gap *= 3 {
		got := gapTime(gap, 2.0, cyclePS)
		if got <= prev {
			t.Fatalf("gapTime not increasing at gap %d", gap)
		}
		prev = got
	}
}
