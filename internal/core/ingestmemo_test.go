package core

import (
	"reflect"
	"testing"

	"starnuma/internal/topology"
	"starnuma/internal/tracker"
	"starnuma/internal/workload"
)

// plainSource hides a source's fast-path contracts (phaseBudgeter,
// bulkReplayer, streamIdentifier) behind the bare AccessSource
// interface, forcing TraceSimulate down the scalar regenerate-and-visit
// path with no recording and no memoization. It is the reference
// implementation for the differential tests below.
type plainSource struct{ AccessSource }

// traceOutputs projects the fields of a TraceResult that step C and the
// reports consume, for deep comparison.
func traceOutputs(tr *TraceResult) map[string]any {
	return map[string]any{
		"checkpoints": tr.Checkpoints,
		"finalHome":   tr.FinalHome,
		"totals":      tr.Totals,
		"migrStats":   tr.MigrStats,
		"flushes":     tr.TrackerFlushes,
		"drained":     tr.DrainedPages,
		"replicated":  tr.Replicated,
	}
}

// TestIngestMemoizationIsExact runs step B for several policy variants
// over the same workload twice — once through the bare scalar path
// (plainSource: no stream recording, no memo) and once through the full
// fast path, with the ingest memo warmed by the preceding variants —
// and requires byte-identical results. This is the cross-variant
// scenario the memo exists for: the second and later fast-path runs
// restore phase ingests recorded under a different migration policy.
func TestIngestMemoizationIsExact(t *testing.T) {
	sys := StarNUMASystem()
	topo := topology.New(sys.Topology)
	newGen := func() *workload.Generator {
		g, err := workload.NewGenerator(tinySpec(t, "BFS"), topo.Sockets(), sys.CoresPerSocket)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	for _, tc := range []struct {
		name    string
		policy  PolicySpec
		striped bool
	}{
		{name: "starnuma", policy: PolicyStarNUMA},
		{name: "oracle", policy: PolicySpec{Name: "oracle"}},
		{name: "none-striped", policy: PolicyNone, striped: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinySim()
			cfg.Phases = 3
			cfg.Policy = tc.policy
			cfg.StripedPlacement = tc.striped

			want, err := TraceSimulate(sys, cfg, plainSource{newGen()})
			if err != nil {
				t.Fatal(err)
			}
			// Twice through the fast path: the first run may record the
			// memo entries, the second is guaranteed to restore them.
			for round := 0; round < 2; round++ {
				got, err := TraceSimulate(sys, cfg, newGen())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(traceOutputs(got), traceOutputs(want)) {
					t.Fatalf("round %d: memoized trace result diverges from scalar reference", round)
				}
			}
		})
	}
}

// TestIngestMemoKeyedByTrackerShape pins that runs differing only in
// tracker shape do not share memo entries: a T0 run after a T16 run of
// the same workload must still match its own scalar reference.
func TestIngestMemoKeyedByTrackerShape(t *testing.T) {
	sys := StarNUMASystem()
	topo := topology.New(sys.Topology)
	newGen := func() *workload.Generator {
		g, err := workload.NewGenerator(tinySpec(t, "Masstree"), topo.Sockets(), sys.CoresPerSocket)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	for _, cfg := range []SimConfig{
		tinySim(),
		func() SimConfig { c := tinySim(); c.Tracker = tracker.T0; return c }(),
		func() SimConfig { c := tinySim(); c.RegionPages *= 2; return c }(),
	} {
		want, err := TraceSimulate(sys, cfg, plainSource{newGen()})
		if err != nil {
			t.Fatal(err)
		}
		got, err := TraceSimulate(sys, cfg, newGen())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(traceOutputs(got), traceOutputs(want)) {
			t.Fatalf("tracker shape %v/%d: memoized result diverges from scalar reference",
				cfg.Tracker, cfg.RegionPages)
		}
	}
}
