package core

import (
	"encoding/json"
	"testing"

	"starnuma/internal/fault"
)

// faultSim returns a tiny configuration with enough phases for the
// canned plans (which start at phases 1-2) to matter.
func faultSim() SimConfig {
	c := tinySim()
	c.Phases = 4
	return c
}

func resultJSON(t *testing.T, sys SystemConfig, cfg SimConfig, name string) []byte {
	t.Helper()
	res, err := Run(sys, cfg, tinySpec(t, name))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEmptyFaultPlanBitIdentical pins the zero-overhead contract: a nil
// plan and an empty plan produce byte-identical Results — the fault
// subsystem is invisible until a plan has events.
func TestEmptyFaultPlanBitIdentical(t *testing.T) {
	sys := StarNUMASystem()
	cfg := faultSim()
	want := resultJSON(t, sys, cfg, "BFS")
	cfg.Faults = &fault.Plan{Name: "empty"}
	got := resultJSON(t, sys, cfg, "BFS")
	if string(want) != string(got) {
		t.Fatalf("empty plan perturbed the result:\nnil:   %s\nempty: %s", want, got)
	}
}

// TestFaultPlanDeterministic pins bit-reproducibility under faults: the
// same plan + seed yields byte-identical Results across runs.
func TestFaultPlanDeterministic(t *testing.T) {
	sys := StarNUMASystem()
	cfg := faultSim()
	cfg.Faults = fault.FlapPlan()
	a := resultJSON(t, sys, cfg, "BFS")
	b := resultJSON(t, sys, cfg, "BFS")
	if string(a) != string(b) {
		t.Fatalf("same plan+seed differs:\n%s\n%s", a, b)
	}
}

// TestFaultPlanPerturbsTiming checks a flap plan actually injects: the
// run completes, counts retries, and differs from the fault-free run.
func TestFaultPlanPerturbsTiming(t *testing.T) {
	sys := StarNUMASystem()
	cfg := faultSim()
	free := resultJSON(t, sys, cfg, "BFS")
	cfg.Faults = fault.FlapPlan()
	res, err := Run(sys, cfg, tinySpec(t, "BFS"))
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultFlapRetries == 0 {
		t.Error("flap plan recorded no retries")
	}
	b, _ := json.Marshal(res)
	if string(free) == string(b) {
		t.Error("flap plan did not perturb the result")
	}
}

// TestDeadPoolDrainsGracefully is the graceful-degradation pin: killing
// the whole MHD mid-run drains every pool-resident page back to the
// sockets, the run completes without panicking, and the final placement
// has nothing left in the pool.
func TestDeadPoolDrainsGracefully(t *testing.T) {
	sys := StarNUMASystem()
	cfg := faultSim()
	cfg.Faults = fault.DeadPoolPlan()
	res, err := Run(sys, cfg, tinySpec(t, "BFS"))
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolPages != 0 {
		t.Errorf("%d pages still pool-resident after device death", res.PoolPages)
	}
	if res.MigrStats.PagesToPool == 0 {
		t.Error("pool never used before the kill (test needs an earlier kill phase?)")
	}
	if res.FaultDrainedPages == 0 {
		t.Error("no pages drained off the dead pool")
	}
	if res.IPC <= 0 {
		t.Errorf("degraded run produced IPC %v", res.IPC)
	}
}

// TestDeadChannelShrinksPool checks the partial-failure path: killing
// one of the two MHD channels halves the capacity budget, drains the
// overflow, and the run completes with the pool still in (reduced) use.
func TestDeadChannelShrinksPool(t *testing.T) {
	sys := StarNUMASystem()
	cfg := faultSim()
	cfg.Faults = fault.DeadChannelPlan(0)
	res, err := Run(sys, cfg, tinySpec(t, "BFS"))
	if err != nil {
		t.Fatal(err)
	}
	footprint := tinySpec(t, "BFS").FootprintPages
	halfCap := sys.Pool.DegradedCapacityPages(footprint,
		fault.PoolState{Down: []int{0}})
	if full := sys.Pool.CapacityPages(footprint); halfCap != full/2 {
		t.Errorf("degraded capacity %d is not half of %d", halfCap, full)
	}
	if res.PoolPages > halfCap {
		t.Errorf("%d pool pages exceed degraded capacity %d", res.PoolPages, halfCap)
	}
	if res.IPC <= 0 {
		t.Errorf("degraded run produced IPC %v", res.IPC)
	}
}
