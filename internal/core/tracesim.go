package core

import (
	"fmt"
	"strconv"

	"starnuma/internal/evtrace"
	"starnuma/internal/fault"
	"starnuma/internal/metrics"
	"starnuma/internal/migrate"
	"starnuma/internal/sim"
	"starnuma/internal/topology"
	"starnuma/internal/tracker"
	"starnuma/internal/workload"
)

// Checkpoint is the output of step B for one phase: the page map at
// phase start plus the migrations that occur during the phase (§IV-A2).
type Checkpoint struct {
	Phase      int
	PageHome   []topology.NodeID // placement at phase start
	Migrations []migrate.Migration
}

// TraceResult bundles step B's outputs.
type TraceResult struct {
	Checkpoints []Checkpoint
	// Replicated marks the pages selected for replication — by the §V-F
	// study flag or by a replicating policy; nil when neither applies.
	Replicated []bool
	// ReplModel is the effective replication timing model when the policy
	// (rather than the study flag) selected the replica set; Plan threads
	// it into the step-C configuration. nil otherwise.
	ReplModel *migrate.ReplicationConfig
	// FinalHome is the placement after the last phase's decisions.
	FinalHome []topology.NodeID
	// Totals aggregates whole-run per-page access counts (oracle input,
	// Fig. 2/13 style analyses).
	Totals *migrate.PageCounts
	// MigrStats summarises the policy's decisions (Table IV).
	MigrStats migrate.Stats
	// TrackerFlushes is the metadata write traffic the tracker generated.
	TrackerFlushes uint64
	// DrainedPages counts pages evacuated from the pool in reaction to
	// fault-plan channel/device failures (graceful degradation).
	DrainedPages uint64
	// Metrics is step B's instrumentation snapshot (per-phase migration
	// decision series, pool residency); nil unless
	// SimConfig.CollectMetrics.
	Metrics *metrics.Snapshot
	// Trace is step B's event buffer — phase spans, migration/drain
	// decisions — on the phase-index clock (Ts = phase number);
	// Plan.Assemble translates it onto the timing windows' timeline.
	// nil unless SimConfig.Trace.
	Trace *evtrace.Buffer
}

// phaseAccesses returns how many misses one core generates in a step-B
// phase: the generator is drawn until the core's instruction budget is
// consumed.
//
//starnuma:hotpath step-A/B phase replay, one call per phase
func runPhaseTrace(gen AccessSource, phase int, phaseInstr uint64,
	visit func(core int, a workload.Access)) {
	gen.ResetPhase(phase)
	cores := gen.NumCores()
	// Interleave cores round-robin, each consuming its own instruction
	// budget. Round-robin at miss granularity approximates global
	// instruction-count ordering well enough for first-touch purposes.
	instr := make([]uint64, cores)
	active := cores
	for active > 0 {
		for c := 0; c < cores; c++ {
			if instr[c] >= phaseInstr {
				continue
			}
			a := gen.Next(c)
			instr[c] += uint64(a.Gap)
			if instr[c] >= phaseInstr {
				active--
			}
			visit(c, a)
		}
	}
}

// bulkReplayer is the fast-path contract workload.Generator offers step
// B: read-only access to the recorded phase stream as flat arrays, so
// the ingest loop runs over slices instead of making one interface call
// per access.
type bulkReplayer interface {
	ReplayArrays(budget uint64) (off []int32, pages []uint32, writes []bool, ok bool)
}

// streamIdentifier is the memoization contract: a source whose recorded
// streams have a stable identity (workload.Generator's stream-cache
// signature). Equal signatures mean byte-identical streams per phase.
type streamIdentifier interface {
	StreamSig() (sig string, ok bool)
}

// ingestPhase replays one phase into the first-touch map, the tracker
// (or its software-sampling front), and the per-page counts. When the
// source exposes its recorded arrays the replay runs directly over
// them; the visit order — cores interleaved round-robin at miss
// granularity — is identical on both paths, which first-touch
// assignment depends on. Hardware-tracker ingests over identifiable
// streams are memoized across variants (see ingestmemo.go): a repeat of
// the same (stream, phase, tracker shape) restores the recorded
// products by array copy instead of re-walking the stream.
func ingestPhase(gen AccessSource, phase int, phaseInstr uint64, striped bool,
	home []topology.NodeID, sampler *tracker.Sampler, tbl *tracker.Table,
	counts *migrate.PageCounts) {
	br, bulk := gen.(bulkReplayer)
	var key ingestKey
	memoable := false
	if bulk && sampler == nil {
		if si, ok := gen.(streamIdentifier); ok {
			if sig, ok := si.StreamSig(); ok {
				key = ingestKey{sig: sig, phase: phase, kind: tbl.Kind(),
					regionPages: tbl.RegionPages(), striped: striped}
				memoable = true
				if e := lookupIngest(key); e != nil {
					for i, p := range e.firstPages {
						if home[p] == Unassigned {
							home[p] = e.firstHomes[i]
						}
					}
					tbl.LoadState(e.tbl)
					counts.LoadState(e.pc)
					return
				}
			}
		}
	}
	if bulk {
		// ResetPhase binds the recorded stream; runPhaseTrace repeats it
		// harmlessly on the fallback path (rebinding is idempotent).
		gen.ResetPhase(phase)
		if off, pages, writes, ok := br.ReplayArrays(phaseInstr); ok {
			cores := gen.NumCores()
			socketOf := make([]int, cores)
			cur := make([]int32, cores)
			active := 0
			for c := 0; c < cores; c++ {
				socketOf[c] = gen.SocketOf(c)
				cur[c] = off[c]
				if cur[c] < off[c+1] {
					active++
				}
			}
			var firstPages []uint32
			var firstHomes []topology.NodeID
			// A core's recorded length is exactly its consumption at this
			// budget (ReplayArrays guarantees the budgets match), so
			// cursor exhaustion is the per-core finish condition.
			for active > 0 {
				for c := 0; c < cores; c++ {
					i := cur[c]
					if i >= off[c+1] {
						continue
					}
					cur[c] = i + 1
					if i+1 >= off[c+1] {
						active--
					}
					p := pages[i]
					s := socketOf[c]
					if home[p] == Unassigned {
						home[p] = topology.NodeID(s) // first touch
						if memoable {
							firstPages = append(firstPages, p)
							firstHomes = append(firstHomes, topology.NodeID(s))
						}
					}
					if sampler != nil {
						sampler.Record(s, p)
					} else {
						tbl.Record(s, p)
					}
					counts.Record(s, p)
					if writes[i] {
						counts.RecordWrite(p)
					}
				}
			}
			if memoable {
				storeIngest(key, &ingestEntry{tbl: tbl.SaveState(), pc: counts.SaveState(),
					firstPages: firstPages, firstHomes: firstHomes})
			}
			return
		}
	}
	runPhaseTrace(gen, phase, phaseInstr, func(c int, a workload.Access) {
		s := gen.SocketOf(c)
		if home[a.Page] == Unassigned {
			home[a.Page] = topology.NodeID(s) // first touch
		}
		if sampler != nil {
			sampler.Record(s, a.Page)
		} else {
			tbl.Record(s, a.Page)
		}
		counts.Record(s, a.Page)
		if a.Write {
			counts.RecordWrite(a.Page)
		}
	})
}

// TraceSimulate runs step B: per-phase migration decisions over the full
// workload trace, producing one checkpoint per phase.
func TraceSimulate(sys SystemConfig, cfg SimConfig, gen AccessSource) (*TraceResult, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo := topology.New(sys.Topology)
	sockets := topo.Sockets()
	pages := gen.NumPages()
	// Declare the phase budget up front so sources that can record and
	// replay their per-phase miss stream (workload.Generator) do so;
	// step C's windows replay the same streams.
	if pb, ok := gen.(phaseBudgeter); ok {
		pb.SetPhaseBudget(cfg.PhaseInstr)
	}

	home := make([]topology.NodeID, pages)
	for i := range home {
		if cfg.StripedPlacement {
			home[i] = topology.NodeID(i % sockets)
		} else {
			home[i] = Unassigned
		}
	}

	tbl := tracker.NewTable(cfg.Tracker, pages, cfg.RegionPages)
	var sampler *tracker.Sampler
	if cfg.SoftwareTracking.Enable {
		sampler = tracker.NewSampler(tbl, cfg.SoftwareTracking.SampleFrac, gen.Spec().Seed)
	}
	counts := migrate.NewPageCounts(pages, sockets)
	totals := migrate.NewPageCounts(pages, sockets)

	st := &migrate.State{
		PageHome: home,
		Tracker:  tbl,
		Counts:   counts,
		Sockets:  sockets,
		HasPool:  topo.HasPool(),
		PoolNode: topo.PoolNode(),
	}
	if topo.HasPool() {
		st.PoolCapacityPages = sys.Pool.CapacityPages(pages)
	}

	sched := fault.NewSchedule(cfg.Faults)
	spec := gen.Spec()
	// The workload's expected access rate: mean region accesses per
	// phase, Config.AutoScale's input for zero-threshold configs.
	phaseAccesses := float64(gen.NumCores()) * float64(cfg.PhaseInstr) * spec.MPKI / 1000

	// The policy observes the world through its environment: static
	// system shape, the previous phase's placement feedback, and the
	// fault schedule's link-health outlook.
	var lastFB migrate.PhaseFeedback
	env := migrate.PolicyEnv{
		Sockets:                    sockets,
		HasPool:                    topo.HasPool(),
		PoolNode:                   topo.PoolNode(),
		PoolCapacityPages:          st.PoolCapacityPages,
		Pages:                      pages,
		NumRegions:                 tbl.NumRegions(),
		RegionPages:                tbl.RegionPages(),
		TrackerKind:                tbl.Kind(),
		MeanRegionAccessesPerPhase: phaseAccesses / float64(tbl.NumRegions()),
		Seed:                       cfg.Migration.Seed,
		WorkloadSeed:               int64(spec.Seed),
		BaseMigration:              cfg.Migration,
		BaselineMigrationLimit:     cfg.BaselineMigrationLimit,
		Replication:                cfg.Replication,
		Link: func(phase int) migrate.LinkHealth {
			return linkHealth(sched, sys, topo, phase)
		},
		Feedback: func() migrate.PhaseFeedback { return lastFB },
	}
	policyName := cfg.Policy.CanonicalName()
	policy, err := migrate.NewPolicy(policyName, cfg.Policy.Params, env)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.StaticOracle {
		policy = migrate.NoMigration{}
	}

	res := &TraceResult{Totals: totals}
	var reg *metrics.Registry
	if cfg.CollectMetrics {
		reg = metrics.New()
	}
	if cfg.Trace {
		res.Trace = evtrace.NewBuffer()
		st.Trace = res.Trace
	}

	// Checkpoint 0: nothing placed yet, no in-flight migrations; pages
	// are first-touched during the phase itself.
	snap0 := make([]topology.NodeID, pages)
	copy(snap0, home)
	res.Checkpoints = append(res.Checkpoints, Checkpoint{Phase: 0, PageHome: snap0})

	for phase := 0; phase < cfg.Phases; phase++ {
		counts.Reset()
		if sampler != nil {
			sampler.ResetPhase(phase)
		} else {
			tbl.Reset()
		}
		ingestPhase(gen, phase, cfg.PhaseInstr, cfg.StripedPlacement, home, sampler, tbl, counts)
		counts.AddInto(totals)
		lastFB = migrate.ComputeFeedback(phase, counts, home, topo.HasPool(), topo.PoolNode())
		if reg != nil {
			reg.Point("migrate/policy/"+policyName+"/remote_frac", int64(phase), lastFB.RemoteFrac)
			reg.Point("migrate/policy/"+policyName+"/pool_frac", int64(phase), lastFB.PoolFrac)
		}
		if res.Trace != nil {
			// One span per trace phase on the phase-index clock: tick
			// `phase` to tick `phase+1` (a Dur of 1 tick).
			res.Trace.Span("phase", "phase "+strconv.Itoa(phase), "stepB", sim.Time(phase), 1)
		}

		if phase+1 >= cfg.Phases {
			break // no decision needed after the final phase
		}
		// Decisions made now are modeled during phase+1's timing window,
		// so their events anchor at that window's start.
		st.BeginTracePhase(sim.Time(phase + 1))
		// Snapshot the end-of-phase placement, then let the policy decide
		// the migrations that will occur *during* the next phase (§IV-A2:
		// "the N-th checkpoint indicates the set of migrations that must
		// be modeled during phase P_N's simulation"). Decide mutates
		// `home` so subsequent trace phases see the post-migration state.
		snap := make([]topology.NodeID, pages)
		copy(snap, home)
		// Fault reaction precedes the policy: recompute the pool's
		// degraded capacity for the upcoming phase, drain the overflow
		// (everything, when the device dies), and only then let the
		// policy decide — with HasPool off when no capacity remains, so
		// it degenerates to socket-only StarNUMA-Halt behaviour.
		var drained []migrate.Migration
		if topo.HasPool() && sched != nil {
			ps := sched.Pool(phase+1, sys.Pool.Channels)
			capPages := sys.Pool.DegradedCapacityPages(pages, ps)
			st.HasPool = true
			drained = migrate.DrainPool(st, capPages)
			st.PoolCapacityPages = capPages
			st.HasPool = capPages > 0
			res.DrainedPages += uint64(len(drained))
			if reg != nil {
				reg.Point("fault/drained_pages", int64(phase), float64(len(drained)))
			}
		}
		before := policy.Stats()
		pending := policy.Decide(phase, st)
		if len(drained) > 0 {
			// Drains go first so the timing window models the drain
			// traffic within its migration share.
			pending = append(drained, pending...)
		}
		if res.Trace != nil {
			after := policy.Stats()
			res.Trace.InstantArgs("migrate", "decide", "stepB/decide", sim.Time(phase+1),
				evtrace.Arg{Key: "migrations", Val: strconv.Itoa(len(pending))},
				evtrace.Arg{Key: "drained", Val: strconv.Itoa(len(drained))},
				evtrace.Arg{Key: "pingpong_skips", Val: strconv.FormatUint(after.PingPongSkips-before.PingPongSkips, 10)})
		}
		if reg != nil {
			after := policy.Stats()
			t := int64(phase)
			reg.Point("migrate/migrations", t, float64(len(pending)))
			reg.Point("migrate/policy/"+policyName+"/migrations", t, float64(len(pending)))
			reg.Point("migrate/pingpong_skips", t, float64(after.PingPongSkips-before.PingPongSkips))
			reg.Point("migrate/evictions", t, float64(after.Evictions-before.Evictions))
			if topo.HasPool() {
				resident := 0
				for _, h := range home {
					if h == topo.PoolNode() {
						resident++
					}
				}
				reg.Point("pool/resident_pages", t, float64(resident))
			}
		}
		res.Checkpoints = append(res.Checkpoints, Checkpoint{
			Phase:      phase + 1,
			PageHome:   snap,
			Migrations: pending,
		})
	}

	res.FinalHome = home
	// A post-placing policy (the zero-cost oracle) replaces every
	// checkpoint's placement with its whole-run computation and drops the
	// dynamic migrations — §V-B's static placement studies as a policy.
	if pp, ok := policy.(migrate.PostPlacer); ok && !cfg.StaticOracle {
		placement := pp.PostPlace(totals)
		for i := range res.Checkpoints {
			res.Checkpoints[i].PageHome = placement
			res.Checkpoints[i].Migrations = nil
		}
		res.FinalHome = placement
	}
	if cfg.Replication.Enable {
		res.Replicated = migrate.ReplicationSet(totals, cfg.Replication)
	} else if rp, ok := policy.(migrate.Replicator); ok {
		// A replicating policy selected its own replica set during the
		// run; its timing model rides along for step C.
		if set := rp.ReplicatedSet(); set != nil {
			res.Replicated = set
			model := rp.ReplicationModel()
			res.ReplModel = &model
		}
	}
	res.TrackerFlushes = tbl.Flushes()
	res.MigrStats = policy.Stats()
	if reg != nil {
		reg.Add("tracker/flushes", res.TrackerFlushes)
		reg.Add("migrate/pages_to_pool", res.MigrStats.PagesToPool)
		reg.Add("migrate/pages_to_socket", res.MigrStats.PagesToSocket)
		reg.Add("migrate/pingpong_skips", res.MigrStats.PingPongSkips)
		reg.Add("migrate/evictions", res.MigrStats.Evictions)
		reg.Add("migrate/policy/"+policyName+"/pages_to_pool", res.MigrStats.PagesToPool)
		reg.Add("migrate/policy/"+policyName+"/pages_to_socket", res.MigrStats.PagesToSocket)
		reg.Add("migrate/policy/"+policyName+"/evictions", res.MigrStats.Evictions)
		reg.Add("migrate/policy/"+policyName+"/pingpong_skips", res.MigrStats.PingPongSkips)
		reg.Add("migrate/policy/"+policyName+"/link_backoff_phases", res.MigrStats.LinkBackoffPhases)
		if res.Replicated != nil {
			n := uint64(0)
			for _, r := range res.Replicated {
				if r {
					n++
				}
			}
			reg.Add("migrate/policy/"+policyName+"/replicated_pages", n)
		}
		if sched != nil {
			reg.Add("fault/drained_pages", res.DrainedPages)
		}
		res.Metrics = reg.Snapshot()
	}
	return res, nil
}

// linkHealth summarises the fault outlook for the policy-relevant link
// class during one phase — the pool's CXL path when a pool exists, the
// socket interconnect otherwise. This is the PolicyEnv.Link signal
// bandwidth-aware policies consult before committing pool placements.
func linkHealth(sched *fault.Schedule, sys SystemConfig, topo *topology.Topology, phase int) migrate.LinkHealth {
	kind := topology.KindUPI
	if topo.HasPool() {
		kind = topology.KindCXL
	}
	o := sched.Outlook(kind.String(), phase)
	h := migrate.LinkHealth{
		LatencyX:     o.LatencyX,
		BandwidthDiv: o.BandwidthDiv,
		DownFrac:     o.DownFrac,
	}
	if topo.HasPool() {
		ps := sched.Pool(phase, sys.Pool.Channels)
		h.PoolDead = ps.Dead
		h.PoolCapacityFrac = ps.CapacityFrac
	}
	return h
}

// checkpointMapWithStatic replaces every checkpoint's page map with the
// oracle placement and drops all migrations (§V-B's static placement
// studies).
func applyStaticOracle(tr *TraceResult, sys SystemConfig, gen AccessSource, seed int64) {
	topo := topology.New(sys.Topology)
	cfg := migrate.StaticOracleConfig{
		Sockets:             topo.Sockets(),
		HasPool:             topo.HasPool(),
		PoolNode:            topo.PoolNode(),
		PoolSharerThreshold: 8,
		Seed:                seed,
	}
	if topo.HasPool() {
		cfg.PoolCapacityPages = sys.Pool.CapacityPages(gen.NumPages())
	}
	placement := migrate.StaticOraclePlacement(tr.Totals, cfg)
	for i := range tr.Checkpoints {
		tr.Checkpoints[i].PageHome = placement
		tr.Checkpoints[i].Migrations = nil
	}
	tr.FinalHome = placement
}
