package core

import (
	"fmt"

	"starnuma/internal/attrib"
	"starnuma/internal/coherence"
	"starnuma/internal/evtrace"
	"starnuma/internal/metrics"
	"starnuma/internal/migrate"
	"starnuma/internal/sim"
	"starnuma/internal/stats"
	"starnuma/internal/tlb"
	"starnuma/internal/topology"
	"starnuma/internal/workload"
)

// Result aggregates a workload's statistics across all simulated
// checkpoints, the quantities behind the paper's Fig. 8 and Tables
// III/IV.
type Result struct {
	Workload string
	Policy   PolicySpec
	Tracker  string

	// IPC is the mean per-core post-warmup IPC across checkpoints.
	IPC float64
	// AMAT carries the measured mean, the analytically derived unloaded
	// component, and the access-type breakdown.
	AMAT *stats.AMAT
	// MPKI is the measured miss rate.
	MPKI float64

	// MigrStats summarises step B's migration decisions (Table IV).
	MigrStats migrate.Stats
	// Dir sums the coherence directory activity of all windows.
	Dir coherence.Stats
	// PoolPages is the number of pages resident in the pool at the end.
	PoolPages int
	// MigrStalledAccesses counts accesses that waited on an in-flight
	// page migration.
	MigrStalledAccesses uint64
	// TrackerFlushes is the tracker metadata traffic from step B.
	TrackerFlushes uint64
	// TLB sums the translation subsystem's activity across windows
	// (shootdowns, targeted cores, induced walks).
	TLB tlb.Stats
	// Replication study (§V-F) counters.
	ReplicatedPages    int
	ReplicaReads       uint64
	ReplicaWriteStalls uint64
	// PageFaults counts minor faults taken by the software-tracking
	// study's poisoned pages during timing windows.
	PageFaults uint64
	// Fault-injection totals (internal/fault): sends served with
	// degraded latency/bandwidth, sends delayed by a flapping link, and
	// pages drained off failing pool channels. All zero without a plan.
	FaultDegradedSends uint64
	FaultFlapRetries   uint64
	FaultDrainedPages  uint64
	// SimulatedTime is the summed wall-clock of the timing windows.
	SimulatedTime sim.Time
	// Instructions / Misses are post-warmup totals.
	Instructions uint64
	Misses       uint64

	// Metrics is the merged instrumentation snapshot (step B plus every
	// window in checkpoint order); nil unless SimConfig.CollectMetrics.
	// It rides through the runner's result cache like every other field.
	Metrics *metrics.Snapshot `json:",omitempty"`

	// Profile is the stall-attribution profile (internal/attrib): one
	// WindowProfile per timing window in checkpoint order; nil unless
	// SimConfig.Attrib. It rides through the runner's result cache like
	// Metrics, and is omitted from JSON when absent so attribution-off
	// results encode byte-identically to pre-attribution ones.
	Profile *attrib.Profile `json:",omitempty"`

	// Trace is the merged event-trace buffer (step-C windows laid end to
	// end on one timeline, then step B's phase-clock events translated
	// onto it); nil unless SimConfig.Trace. Excluded from JSON so traces
	// never enter the result cache — a cache hit skips simulation and
	// therefore cannot produce one.
	Trace *evtrace.Buffer `json:"-"`

	// ipcs accumulates per-core post-warmup IPC samples across merged
	// windows, in checkpoint order; Plan.Assemble reduces them to IPC.
	ipcs []float64
	// traceOff is the cumulative simulated time of merged windows: the
	// timeline offset the next window's events shift by. windowOffsets
	// records each merged window's start offset, in merge order, for
	// translating step B's phase-clock events.
	traceOff      sim.Time
	windowOffsets []sim.Time
}

// CoherenceTxnIntervalNS returns the mean simulated time between
// directory transactions in nanoseconds (§V-A observes ~100ns on the
// pool's directory). Returns 0 when no transactions occurred.
func (r *Result) CoherenceTxnIntervalNS() float64 {
	if r.Dir.Transactions == 0 {
		return 0
	}
	return r.SimulatedTime.Nanos() / float64(r.Dir.Transactions)
}

// Run executes the full three-step pipeline for one workload on one
// system and returns aggregated statistics.
func Run(sys SystemConfig, cfg SimConfig, spec workload.Spec) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	topo := topology.New(sys.Topology)
	gen, err := workload.NewGenerator(spec, topo.Sockets(), sys.CoresPerSocket)
	if err != nil {
		return nil, err
	}
	return RunSource(sys, cfg, gen)
}

// RunSource executes the pipeline over an arbitrary access source (a
// synthetic generator or a trace replay): step B via NewPlan, then the
// step-C windows sequentially in checkpoint order. internal/runner runs
// the same windows concurrently; both paths produce bit-identical
// Results because Assemble merges in checkpoint order either way.
func RunSource(sys SystemConfig, cfg SimConfig, gen AccessSource) (*Result, error) {
	p, err := NewPlan(sys, cfg, gen)
	if err != nil {
		return nil, err
	}
	windows := make([]Window, p.NumWindows())
	for i := range windows {
		windows[i] = p.RunWindow(i, gen)
	}
	return p.Assemble(windows), nil
}

// RunSuite runs every workload of the suite on one system configuration.
func RunSuite(sys SystemConfig, cfg SimConfig, scale float64) ([]*Result, error) {
	var out []*Result
	for _, spec := range workload.Suite(scale) {
		r, err := Run(sys, cfg, spec)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Speedup returns the IPC ratio of r over base.
func Speedup(r, base *Result) float64 {
	if stats.IsZero(base.IPC) {
		return 0
	}
	return r.IPC / base.IPC
}
