package core

import "starnuma/internal/workload"

// AccessSource produces deterministic per-core LLC-miss streams for the
// pipeline. workload.Generator is the synthetic implementation;
// trace.Source replays step-A trace files (§IV-A1) through the same
// steps B and C.
type AccessSource interface {
	// Next returns core's next miss. Sources must be deterministic:
	// identical (phase, call sequence) yields identical streams, since
	// steps B and C replay the same phases independently.
	Next(core int) workload.Access
	// ResetPhase rewinds every core's stream to the start of phase.
	ResetPhase(phase int)
	// NumPages is the footprint size in 4KB pages.
	NumPages() int
	// NumCores is the total core count.
	NumCores() int
	// SocketOf maps a core index to its socket.
	SocketOf(core int) int
	// Spec carries the workload's timing parameters (zero-load IPC
	// derivation, MLP, MPKI).
	Spec() workload.Spec
}

// compile-time check: the synthetic generator is an AccessSource.
var _ AccessSource = (*workload.Generator)(nil)
