package core_test

import (
	"fmt"

	"starnuma/internal/core"
	"starnuma/internal/workload"
)

// Run the full three-step pipeline for a small POA instance — the
// NUMA-insensitive workload whose accesses are all local after first
// touch (§V-A).
func ExampleRun() {
	spec, _ := workload.ByName("POA", 0.05)
	cfg := core.QuickSim()
	cfg.Phases = 2

	r, err := core.Run(core.StarNUMASystem(), cfg, spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fr := r.AMAT.Breakdown().Fractions()
	fmt.Printf("local fraction: %.2f\n", fr[0])
	fmt.Println("pool pages:", r.PoolPages)
	// Output:
	// local fraction: 1.00
	// pool pages: 0
}
