package core

import (
	"bytes"
	"testing"

	"starnuma/internal/evtrace"
)

// TestTraceOffBitIdentical pins the zero-overhead contract: with
// Trace=false the Result is byte-identical to a config that never heard
// of tracing (the field is json:"-", so this is the same check the
// cache key performs).
func TestTraceOffBitIdentical(t *testing.T) {
	sys := StarNUMASystem()
	cfg := faultSim()
	want := resultJSON(t, sys, cfg, "BFS")
	cfg.Trace = false // explicit, same as zero value
	got := resultJSON(t, sys, cfg, "BFS")
	if !bytes.Equal(want, got) {
		t.Fatalf("trace-off config perturbed the result:\n%s\n%s", want, got)
	}
}

// TestTracePassive pins that recording a trace never changes the
// simulation: Trace=true yields the same Result JSON as Trace=false
// (Result.Trace is json:"-", so the comparison sees only model state).
func TestTracePassive(t *testing.T) {
	sys := StarNUMASystem()
	cfg := faultSim()
	off := resultJSON(t, sys, cfg, "BFS")
	cfg.Trace = true
	on := resultJSON(t, sys, cfg, "BFS")
	if !bytes.Equal(off, on) {
		t.Fatalf("tracing perturbed the result:\noff: %s\non:  %s", off, on)
	}
}

// TestTraceRecordsExpectedCategories runs a small simulation with
// tracing on and checks the assembled buffer covers every event source
// threaded through core: checkpoint windows, step-B phases, migration
// decisions and coherence transactions.
func TestTraceRecordsExpectedCategories(t *testing.T) {
	sys := StarNUMASystem()
	cfg := faultSim()
	cfg.Trace = true
	res, err := Run(sys, cfg, tinySpec(t, "BFS"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Trace=true but Result.Trace is nil")
	}
	cats := make(map[string]int)
	for _, e := range res.Trace.Events {
		cats[e.Cat]++
		if e.Ts < 0 || e.Dur < 0 {
			t.Fatalf("negative time in event %+v", e)
		}
	}
	for _, want := range []string{"window", "phase", "migrate", "coherence"} {
		if cats[want] == 0 {
			t.Errorf("no %q events recorded (got %v)", want, cats)
		}
	}

	// The assembled trace must pass schema validation end to end.
	bd := evtrace.NewBuilder()
	bd.Add("test/BFS", res.Trace)
	tr := bd.Build()
	if err := tr.Validate(); err != nil {
		t.Fatalf("assembled trace invalid: %v", err)
	}
	if _, err := tr.Encode(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceDeterministic pins byte-stable traces: two runs of the same
// config encode to identical bytes.
func TestTraceDeterministic(t *testing.T) {
	sys := StarNUMASystem()
	cfg := faultSim()
	cfg.Trace = true
	encode := func() []byte {
		t.Helper()
		res, err := Run(sys, cfg, tinySpec(t, "BFS"))
		if err != nil {
			t.Fatal(err)
		}
		bd := evtrace.NewBuilder()
		bd.Add("test/BFS", res.Trace)
		b, err := bd.Build().Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatal("same config produced different trace bytes")
	}
}
