package core

import (
	"encoding/json"
	"math"
	"testing"

	"starnuma/internal/topology"
	"starnuma/internal/workload"
)

func planFor(t *testing.T, sys SystemConfig, cfg SimConfig, spec workload.Spec) (*Plan, func() AccessSource) {
	t.Helper()
	sockets := topology.New(sys.Topology).Sockets()
	newGen := func() AccessSource {
		gen, err := workload.NewGenerator(spec, sockets, sys.CoresPerSocket)
		if err != nil {
			t.Fatal(err)
		}
		return gen
	}
	p, err := NewPlan(sys, cfg, newGen())
	if err != nil {
		t.Fatal(err)
	}
	return p, newGen
}

// TestAssembleEmptyIsZeroNotNaN: a degenerate run with no windows (no
// retired instructions, no IPC samples) must report zero aggregates,
// never NaN — downstream speedup ratios and JSON encoding both choke on
// NaN.
func TestAssembleEmptyIsZeroNotNaN(t *testing.T) {
	cfg := tinySim()
	cfg.Policy = PolicyStarNUMA
	p, _ := planFor(t, StarNUMASystem(), cfg, tinySpec(t, "BFS"))
	res := p.Assemble(nil)
	if math.IsNaN(res.IPC) || res.IPC != 0 {
		t.Fatalf("IPC of empty assembly = %v, want 0", res.IPC)
	}
	if math.IsNaN(res.MPKI) || res.MPKI != 0 {
		t.Fatalf("MPKI of empty assembly = %v, want 0", res.MPKI)
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("empty result not JSON-encodable: %v", err)
	}
}

// TestOutOfOrderWindowsAssembleIdentically executes the plan's windows
// in reverse order, each on a private fresh generator, and requires the
// assembled Result to match the sequential RunSource byte for byte —
// the contract internal/runner's concurrent scheduling rests on.
func TestOutOfOrderWindowsAssembleIdentically(t *testing.T) {
	sys := StarNUMASystem()
	cfg := tinySim()
	cfg.Policy = PolicyStarNUMA
	spec := tinySpec(t, "SSSP")

	want, err := Run(sys, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}

	p, newGen := planFor(t, sys, cfg, spec)
	n := p.NumWindows()
	if n != cfg.Phases {
		t.Fatalf("NumWindows = %d, want %d", n, cfg.Phases)
	}
	windows := make([]Window, n)
	for i := n - 1; i >= 0; i-- {
		windows[i] = p.RunWindow(i, newGen())
	}
	got := p.Assemble(windows)

	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wb) != string(gb) {
		t.Fatalf("out-of-order assembly differs:\nseq: %s\nrev: %s", wb, gb)
	}
}
