package core

import (
	"fmt"
	"strconv"
	"sync"

	"starnuma/internal/attrib"
	"starnuma/internal/cache"
	"starnuma/internal/coherence"
	"starnuma/internal/evtrace"
	"starnuma/internal/fault"
	"starnuma/internal/link"
	"starnuma/internal/memdev"
	"starnuma/internal/metrics"
	"starnuma/internal/migrate"
	"starnuma/internal/sim"
	"starnuma/internal/stats"
	"starnuma/internal/tlb"
	"starnuma/internal/topology"
	"starnuma/internal/tracker"
	"starnuma/internal/workload"
)

// annexFlushBatch mirrors the tracker's flush rate: one metadata write
// per this many LLC misses per socket (§III-D1's TLB annex).
const annexFlushBatch = 32

// pageLineMessages is how many line-sized packets carry one migrated
// 4KB page. Pages are packetised rather than sent as one bulk message so
// demand traffic interleaves with migration traffic — a monolithic 4KB
// transfer would monopolise a 3 GB/s link for ~1.4µs and head-of-line
// block every request behind it.
const pageLineMessages = workload.PageBytes / cache.BlockBytes

// coreState is the MLP-limited timing model of one core (DESIGN.md §3):
// compute retires at the workload's zero-load IPC, at most MLP misses
// overlap, and the next miss may not issue before its compute position.
type coreState struct {
	id, socket  int
	instr       uint64   // instructions retired so far (by gap accounting)
	compute     sim.Time // compute-completion time of work up to the pending miss
	pendingA    workload.Access
	hasPending  bool
	outstanding int
	done        bool
	wakeAt      sim.Time // earliest scheduled self-wake (dedup)
	hasWake     bool

	warmupDone  bool
	warmupTime  sim.Time
	warmupInstr uint64
	finish      sim.Time

	// wake is the core's reusable self-wake event, bound once at scratch
	// construction so the issue loop never allocates a closure.
	wake sim.Event
}

// windowStats is what one step-C timing window produces.
type windowStats struct {
	amat        *stats.AMAT
	ipcs        []float64 // per-core post-warmup IPC
	instr       uint64    // post-warmup instructions
	misses      uint64    // post-warmup misses
	dir         coherence.Stats
	migrStalled uint64 // accesses stalled behind in-flight migrations
	migrModeled int
	simTime     sim.Time
	tlb         tlb.Stats
	// replication study counters (§V-F)
	replicaReads       uint64
	replicaWriteStalls uint64
	// software-tracking study: minor page faults taken in the window
	pageFaults uint64
	// fault-injection counters, summed over the window's link injectors:
	// sends served degraded, sends that hit a flap down-interval, and
	// the total retrain+retry wait they paid.
	faultDegraded uint64
	faultRetries  uint64
	faultRetryPS  sim.Time
	// met is the window's instrumentation snapshot; nil unless
	// SimConfig.CollectMetrics.
	met *metrics.Snapshot
	// trc is the window's event-trace buffer, with timestamps on the
	// window's local clock (t=0 at window start); nil unless
	// SimConfig.Trace. Result.MergeWindow shifts it onto the run's
	// continuous timeline.
	trc *evtrace.Buffer
	// prof is the window's stall-attribution snapshot; nil unless
	// SimConfig.Attrib.
	prof *attrib.WindowProfile
}

// timingSystem wires the substrate models together for one window.
//
// Its lifecycle is split in two: the *scratch* — topology, engine,
// links, controllers, caches, directory, TLBs, cores — depends only on
// (SystemConfig, footprint) and is pooled across windows, while
// prepare() applies the per-window state (checkpoint page map, fault
// schedule, sampler, tracing) to either a fresh or a recycled scratch.
// Building the scratch dominated window setup time; recycling it turns
// per-window cost into a handful of O(1) resets.
type timingSystem struct {
	sys  SystemConfig
	cfg  SimConfig
	topo *topology.Topology
	eng  *sim.Engine
	gen  AccessSource
	key  scratchKey

	links   []*link.Link
	ctrls   []*memdev.Controller // indexed by node
	llcs    []*cache.LLC         // indexed by socket
	dir     *coherence.Directory
	tlbs    *tlb.System      // nil when TLB modelling is disabled
	sampler *tracker.Sampler // nil unless the software-tracking study runs

	// fault injection: the compiled schedule (nil = fault-free), the
	// per-link injectors installed for this window's phase, and the
	// pool device's health.
	sched     *fault.Schedule
	injectors []*fault.Injector
	poolFault fault.PoolState

	pageHome   []topology.NodeID
	inFlight   map[uint32][]func() // page -> callbacks waiting for migration
	replicated []bool              // §V-F study; nil when disabled

	// Stall attribution (internal/attrib): led is the active ledger, nil
	// (disabled) unless cfg.Attrib — every charge site is gated on it, so
	// attribution-off windows take no attribution branches. ledger is the
	// pooled allocation behind led; linkCXL marks, index-aligned with
	// links, which channels are CXL (queue/prop category split);
	// drainInFlight marks pages whose in-flight migration is a fault
	// drain, maintained only while a ledger is active.
	led           *attrib.Ledger
	ledger        *attrib.Ledger
	linkCXL       []bool
	drainInFlight map[uint32]bool

	cores   []*coreState
	running int

	ipc0    float64
	cyclePS float64
	mlp     int

	chargeTracker bool
	annexCount    []uint64

	// txnFree recycles transaction state machines within the window, so
	// the per-access coherence paths allocate nothing at steady state.
	txnFree []*txn

	// met is the window's instrumentation registry; nil (disabled)
	// unless cfg.CollectMetrics. All writes are nil-safe no-ops when
	// disabled, and collection never alters timing.
	met *metrics.Registry

	// Event tracing (nil/zero when cfg.Trace is off): precomputed
	// per-node lane names, the sampled coherence-transaction tracer,
	// and per-window caps on migration and TLB-walk spans.
	lanes   []string
	txnTrc  *coherence.TxnTracer
	trcMigN int
	trcTLBN int

	w windowStats
}

// scratchKey identifies a reusable scratch shape. Everything the shape
// depends on is in here; two windows with equal keys can swap scratches
// freely because prepare() re-applies all remaining state.
type scratchKey struct {
	sys      SystemConfig
	pages    int
	modelTLB bool
}

// scratchPools holds one sync.Pool of *timingSystem per scratch shape.
var scratchPools sync.Map // scratchKey -> *sync.Pool

// policyChargesTracker reports whether the configured policy reads the
// hardware access tracker, and therefore whether the timing windows must
// charge annex flush traffic for its metadata. The registry descriptor
// declares it; static placement (oracle) never consults the tracker.
func policyChargesTracker(cfg SimConfig) bool {
	if cfg.StaticOracle {
		return false
	}
	d, ok := migrate.LookupPolicy(cfg.Policy.CanonicalName())
	return ok && d.UsesTracker
}

// acquireTimingSystem returns a timing system ready to run one
// checkpoint window: a pooled scratch when one with the right shape
// exists, a freshly built one otherwise.
//
//starnuma:coldpath once-per-window setup
func acquireTimingSystem(sys SystemConfig, cfg SimConfig, gen AccessSource,
	chk Checkpoint, replicated []bool) *timingSystem {
	key := scratchKey{sys: sys, pages: gen.NumPages(), modelTLB: cfg.ModelTLB}
	var ts *timingSystem
	if p, ok := scratchPools.Load(key); ok {
		if v := p.(*sync.Pool).Get(); v != nil {
			ts = v.(*timingSystem)
			ts.resetScratch()
		}
	}
	if ts == nil {
		ts = newScratch(sys, cfg, gen)
		ts.key = key
	}
	ts.prepare(cfg, gen, chk, replicated)
	return ts
}

// releaseTimingSystem drops the window-specific references (so results
// handed to the caller never alias scratch state) and returns the
// scratch to its shape's pool.
//
//starnuma:coldpath once-per-window teardown
func releaseTimingSystem(ts *timingSystem) {
	ts.w = windowStats{}
	ts.gen = nil
	ts.replicated = nil
	ts.sampler = nil
	ts.sched = nil
	ts.txnTrc = nil
	ts.lanes = nil
	ts.met = nil
	ts.led = nil
	ts.injectors = ts.injectors[:0]
	p, _ := scratchPools.LoadOrStore(ts.key, &sync.Pool{})
	p.(*sync.Pool).Put(ts)
}

// newScratch builds the reusable shape: every structure whose size and
// wiring depend only on the system config and the workload footprint.
// All per-window state is left for prepare.
//
//starnuma:coldpath runs once per (system, footprint) shape
func newScratch(sys SystemConfig, cfg SimConfig, gen AccessSource) *timingSystem {
	topo := topology.New(sys.Topology)
	ts := &timingSystem{
		sys:        sys,
		topo:       topo,
		eng:        sim.NewEngine(),
		dir:        coherence.NewDirectorySized(topo.Sockets(), gen.NumPages()*workload.BlocksPerPage),
		inFlight:   make(map[uint32][]func()),
		cyclePS:    sys.CyclePS(),
		annexCount: make([]uint64, topo.Sockets()),
	}
	if cfg.ModelTLB {
		ts.tlbs = tlb.NewSystem(topo.Sockets()*sys.CoresPerSocket, gen.NumPages(), tlb.DefaultConfig())
	}
	// Links: one bandwidth server per directed channel.
	for _, ch := range topo.Channels() {
		var bw link.GBps
		switch ch.Kind {
		case topology.KindUPI, topology.KindUPIASIC:
			bw = sys.UPIBandwidth
		case topology.KindNUMALink:
			bw = sys.NUMABandwidth
		case topology.KindCXL:
			bw = sys.Pool.LinkBW
		}
		ts.links = append(ts.links, link.New(fmt.Sprintf("%s:%s->%s", ch.Kind, ch.From, ch.To), bw, ch.Latency))
		ts.linkCXL = append(ts.linkCXL, ch.Kind == topology.KindCXL)
	}
	ts.drainInFlight = make(map[uint32]bool)
	// Memory controllers and LLCs per node.
	for s := 0; s < topo.Sockets(); s++ {
		ts.ctrls = append(ts.ctrls, memdev.NewController(fmt.Sprintf("s%d", s), sys.SocketMem))
		ts.llcs = append(ts.llcs, cache.New(sys.LLCBytes, sys.LLCWays))
	}
	if topo.HasPool() {
		pm := sys.PoolMem
		pm.Channels = sys.Pool.Channels
		ts.ctrls = append(ts.ctrls, memdev.NewController("pool", pm))
	}
	n := topo.Sockets() * sys.CoresPerSocket
	for c := 0; c < n; c++ {
		cs := &coreState{id: c}
		cs.wake = func(sim.Time) {
			cs.hasWake = false
			ts.tryIssue(cs)
		}
		ts.cores = append(ts.cores, cs)
	}
	return ts
}

// resetScratch restores a recycled scratch to the fresh-built state.
// Every structure touched here resets in place (generation bumps or
// zeroing), keeping the allocations.
//
//starnuma:coldpath once per window on scratch reuse
func (ts *timingSystem) resetScratch() {
	ts.eng.Reset()
	for _, l := range ts.links {
		l.Reset()
	}
	for _, c := range ts.ctrls {
		c.Reset()
	}
	for _, c := range ts.llcs {
		c.Reset()
	}
	ts.dir.Reset()
	if ts.tlbs != nil {
		ts.tlbs.Reset()
	}
	clear(ts.inFlight)
	clear(ts.drainInFlight)
}

// prepare applies one checkpoint window's configuration to the scratch.
// It runs on both fresh and recycled scratches, so everything a window
// can observe is (re)set here or in resetScratch — a recycled system
// must be indistinguishable from a new one.
//
//starnuma:coldpath once-per-window configuration
func (ts *timingSystem) prepare(cfg SimConfig, gen AccessSource, chk Checkpoint, replicated []bool) {
	ts.cfg = cfg
	ts.gen = gen
	ts.mlp = gen.Spec().MLP
	ts.chargeTracker = policyChargesTracker(cfg)
	ts.w = windowStats{}
	ts.met = nil
	ts.lanes = nil
	ts.txnTrc = nil
	ts.trcMigN, ts.trcTLBN = 0, 0
	if cfg.CollectMetrics {
		ts.met = metrics.New()
	}
	ts.eng.SetMetrics(ts.met)
	ts.led = nil
	if cfg.Attrib {
		if ts.ledger == nil {
			ts.ledger = attrib.NewLedger(ts.topo.Sockets())
		} else {
			ts.ledger.Reset()
		}
		ts.led = ts.ledger
	}
	if cfg.Trace {
		ts.w.trc = evtrace.NewBuffer()
		ts.lanes = traceLanes(ts.topo)
		ts.txnTrc = coherence.NewTxnTracer(ts.w.trc, coherenceTraceSample)
	}
	localMissCycles := float64(ts.localUnloaded()) / ts.cyclePS
	ts.ipc0 = gen.Spec().ZeroLoadIPC(localMissCycles)
	ts.sampler = nil
	if cfg.SoftwareTracking.Enable {
		// A window-local sampler with the same seed redraws the exact
		// sample step B used for this phase.
		tbl := tracker.NewTable(cfg.Tracker, gen.NumPages(), cfg.RegionPages)
		ts.sampler = tracker.NewSampler(tbl, cfg.SoftwareTracking.SampleFrac, gen.Spec().Seed)
		ts.sampler.ResetPhase(chk.Phase)
		ts.chargeTracker = false // faults replace annex flush traffic
	}

	// Fault injectors for this window's phase. Installing nil clears any
	// injector or trace left by a previous window.
	ts.sched = fault.NewSchedule(cfg.Faults)
	ts.injectors = ts.injectors[:0]
	for i, ch := range ts.topo.Channels() {
		l := ts.links[i]
		inj := ts.sched.Link(ch.Kind.String(), ch.From, ch.To, chk.Phase)
		l.SetFault(inj)
		if inj != nil {
			ts.injectors = append(ts.injectors, inj)
			if ts.w.trc != nil {
				// Fault-adjusted sends trace onto a "fault" process with
				// one thread per degraded link.
				l.SetTrace(ts.w.trc, "fault/"+l.Name())
				continue
			}
		}
		l.SetTrace(nil, "")
	}
	ts.poolFault = fault.PoolState{}
	if ts.topo.HasPool() {
		ts.poolFault = ts.sched.Pool(chk.Phase, ts.sys.Pool.Channels)
		// A healthy state installs a nil remap, so applying it
		// unconditionally leaves a recycled controller identical to a
		// fresh one.
		ts.ctrls[ts.topo.PoolNode()].ApplyFault(ts.poolFault)
	}

	// Placement state.
	ts.pageHome = append(ts.pageHome[:0], chk.PageHome...)
	ts.replicated = replicated

	// Cores: reset in place, keeping identity and the bound wake event.
	for _, cs := range ts.cores {
		*cs = coreState{id: cs.id, socket: gen.SocketOf(cs.id), wake: cs.wake}
	}
	ts.running = len(ts.cores)
	for i := range ts.annexCount {
		ts.annexCount[i] = 0
	}
	ts.w.amat = stats.NewAMAT()
	ts.w.amat.SetUnloadedLatencies(unloadedLatencies(ts.topo, ts.localUnloaded()))
}

// localUnloaded is the zero-contention local access latency of the
// configured memory.
func (ts *timingSystem) localUnloaded() sim.Time {
	return ts.sys.SocketMem.OnChip + ts.sys.SocketMem.DRAMLatency
}

// unloadedLatencies derives per-access-type zero-contention latencies
// from the topology's link constants, so the AMAT decomposition follows
// the system being simulated (Fig. 10's switched pool shifts Pool and
// BT_Pool automatically).
func unloadedLatencies(topo *topology.Topology, local sim.Time) [stats.NumAccessTypes]sim.Time {
	var out [stats.NumAccessTypes]sim.Time
	cfg := topo.Config()
	out[stats.Local] = local
	out[stats.OneHop] = 2*cfg.UPIOneWay + local
	inter := 2 * (2*cfg.UPIOneWay + 2*cfg.ASICOneWay + cfg.NUMAOneWay)
	out[stats.TwoHop] = inter + local
	out[stats.Pool] = 2*cfg.CXLOneWay + local
	// BT_Socket: mean 3-hop network latency over R,H,O combinations plus
	// a home memory/directory access (§V-A).
	if topo.Sockets() > 1 {
		var sum sim.Time
		var n int
		for r := topology.NodeID(0); int(r) < topo.Sockets(); r++ {
			for h := topology.NodeID(0); int(h) < topo.Sockets(); h++ {
				for o := topology.NodeID(0); int(o) < topo.Sockets(); o++ {
					if r == o {
						continue
					}
					sum += topo.OneWayLatency(r, h) + topo.OneWayLatency(h, o) + topo.OneWayLatency(o, r)
					n++
				}
			}
		}
		out[stats.BTSocket] = sim.Time(int64(sum)/int64(n)) + local
	} else {
		out[stats.BTSocket] = local
	}
	out[stats.BTPool] = 4*cfg.CXLOneWay + local
	return out
}

// Transaction state machine.
//
// The per-access coherence paths used to be chains of nested closures —
// one fresh heap allocation per hop, per message, per access. A txn is
// the flattened form: a short program of steps (link sends, a memory
// access, completion bookkeeping) executed by one reusable event
// function. A step whose start time is in the future schedules the txn
// and returns; when the event fires, engine-now has reached that time
// and execution proceeds — so each step's guard is naturally
// idempotent. Event times, kinds and scheduling order are identical to
// the closure chains', which the bit-identity determinism tests gate.
const (
	opSend = iota // charge st.bytes over the route st.from -> st.to
	opMem         // DRAM access at node st.to
	opDone        // completion: AMAT/trace/core bookkeeping
)

// hopCoh tags a send step as a coherence leg: an extra hop a block
// transfer adds after the home's memory access. The attribution ledger
// charges tagged hops' propagation to the coherence category; queueing
// on them still lands in the link/CXL queue categories.
const hopCoh uint8 = 1

// txnStep is one instruction of a transaction program.
type txnStep struct {
	op       uint8
	cat      uint8 // hopCoh on coherence legs, 0 otherwise
	bytes    int32
	from, to topology.NodeID
}

// txn is a pooled coherence-transaction state machine.
type txn struct {
	ts     *timingSystem
	fn     sim.Event // bound once: resumes run()
	steps  [6]txnStep
	nsteps uint8
	idx    uint8
	hopIdx int   // progress within the current send step's route
	route  []int // current send step's route (borrowed from topology)
	at     sim.Time

	// Completion context (opDone); unused by fire-and-forget txns.
	addr   uint64
	cs     *coreState
	acc    stats.AccessType
	issued sim.Time
	record bool
	socket topology.NodeID
	home   topology.NodeID
	res    coherence.Result
}

// getTxn returns a blank transaction with at/addr/steps to be filled by
// the caller, which must then call run(now) once.
//
//starnuma:hotpath one to four calls per timed access
func (ts *timingSystem) getTxn() *txn {
	if n := len(ts.txnFree); n > 0 {
		t := ts.txnFree[n-1]
		ts.txnFree = ts.txnFree[:n-1]
		return t
	}
	//starnumavet:allow hotalloc pool refill; amortized to zero once the window's transaction depth is reached
	t := &txn{ts: ts}
	t.fn = func(now sim.Time) { t.run(now) }
	return t
}

// putTxn recycles a completed transaction.
//
//starnuma:hotpath once per completed transaction
func (ts *timingSystem) putTxn(t *txn) {
	t.cs = nil
	t.route = nil
	t.res = coherence.Result{}
	t.nsteps, t.idx, t.hopIdx = 0, 0, 0
	// Clear record so a recycled txn reused fire-and-forget (writebacks,
	// invalidations, annex flushes) never inherits a demand txn's flag —
	// the attribution ledger charges only steps with record set.
	t.record = false
	//starnumavet:allow hotalloc amortized free-list growth; capacity is retained across windows
	ts.txnFree = append(ts.txnFree, t)
}

// sendStep appends a message transfer to the program.
func (t *txn) sendStep(from, to topology.NodeID, bytes int) {
	t.steps[t.nsteps] = txnStep{op: opSend, from: from, to: to, bytes: int32(bytes)}
	t.nsteps++
}

// sendStepCoh appends a message transfer tagged as a coherence leg.
func (t *txn) sendStepCoh(from, to topology.NodeID, bytes int) {
	t.steps[t.nsteps] = txnStep{op: opSend, cat: hopCoh, from: from, to: to, bytes: int32(bytes)}
	t.nsteps++
}

// memStep appends a DRAM access at node to the program.
func (t *txn) memStep(node topology.NodeID) {
	t.steps[t.nsteps] = txnStep{op: opMem, to: node}
	t.nsteps++
}

// doneStep appends the completion step.
func (t *txn) doneStep() {
	t.steps[t.nsteps] = txnStep{op: opDone}
	t.nsteps++
}

// run executes the program from the current step, scheduling itself
// whenever a step starts in the future, and recycles the txn when the
// program ends.
//
//starnuma:hotpath drives every step of every modeled transaction
func (t *txn) run(_ sim.Time) {
	ts := t.ts
	for t.idx < t.nsteps {
		st := &t.steps[t.idx]
		switch st.op {
		case opSend:
			if t.hopIdx == 0 {
				t.route = ts.topo.Route(st.from, st.to)
			}
			for t.hopIdx < len(t.route) {
				now := ts.eng.Now()
				if t.at > now {
					ts.eng.AtKind(t.at, "send", t.fn)
					return
				}
				li := t.route[t.hopIdx]
				delivered, q := ts.links[li].Send(now, int(st.bytes))
				if ts.led != nil && t.record {
					ts.chargeHop(li, t.socket, now, delivered, q, st.cat == hopCoh)
				}
				t.hopIdx++
				t.at = delivered
			}
			t.hopIdx = 0
			t.idx++
		case opMem:
			now := ts.eng.Now()
			if t.at > now {
				ts.eng.AtKind(t.at, "mem", t.fn)
				return
			}
			done, q := ts.ctrls[st.to].Access(now, t.addr, cache.BlockBytes)
			if ts.led != nil && t.record {
				ts.chargeMem(t.socket, st.to, now, done, q)
			}
			t.at = done
			t.idx++
		case opDone:
			now := ts.eng.Now()
			if t.at > now {
				ts.eng.AtKind(t.at, "complete", t.fn)
				return
			}
			t.finish(now)
			t.idx++
		}
	}
	ts.putTxn(t)
}

// finish is the opDone body: record the miss, charge the core, and let
// it issue more work.
//
//starnuma:hotpath completion of every timed access
func (t *txn) finish(now2 sim.Time) {
	ts := t.ts
	cs := t.cs
	if t.record {
		ts.w.amat.Observe(t.acc, now2-t.issued)
		ts.w.misses++
	}
	if ts.txnTrc != nil {
		ts.txnTrc.Record(t.issued, now2-t.issued, ts.lanes[t.socket], t.socket, t.home, t.res)
	}
	// Charge the miss's latency, divided by the core's MLP, as serial
	// stall on the core timeline: the standard additive overlap model
	// (1/IPC = 1/IPC₀ + missRate × L/MLP), which is also what
	// ZeroLoadIPC inverts.
	cs.compute += (now2 - t.issued) / sim.Time(ts.mlp)
	cs.outstanding--
	ts.tryIssue(cs)
}

// sendPath forwards a message hop by hop from node from to node to,
// calling then with the delivery time. Empty routes (from == to) deliver
// at start. Retained for the rare paths (replication, migration); the
// per-access coherence paths use txn programs instead.
func (ts *timingSystem) sendPath(start sim.Time, from, to topology.NodeID, bytes int, then func(sim.Time)) {
	ts.sendHops(start, ts.topo.Route(from, to), bytes, then)
}

func (ts *timingSystem) sendHops(at sim.Time, hops []int, bytes int, then func(sim.Time)) {
	if len(hops) == 0 {
		then(at)
		return
	}
	send := func(now sim.Time) {
		delivered, _ := ts.links[hops[0]].Send(now, bytes)
		ts.sendHops(delivered, hops[1:], bytes, then)
	}
	if at > ts.eng.Now() {
		ts.eng.AtKind(at, "send", send)
	} else {
		send(ts.eng.Now())
	}
}

// sendPage streams one 4KB page as line-sized packets from from to to,
// invoking then when the final packet lands. Packets share the route's
// links with demand traffic in FIFO order, so migrations consume
// bandwidth without head-of-line blocking whole-page transfers.
//
// The first hop — where all packets arrive together — is charged as one
// SendBatch, which is closed-form identical to 64 sequential Sends; the
// per-packet fallback covers fault-injected links, whose injector state
// evolves message by message.
func (ts *timingSystem) sendPage(start sim.Time, from, to topology.NodeID, then func(sim.Time)) {
	route := ts.topo.Route(from, to)
	if len(route) > 0 && start <= ts.eng.Now() {
		if first, step, ok := ts.links[route[0]].SendBatch(start, ts.sys.DataBytes, pageLineMessages); ok {
			remaining := pageLineMessages
			var lastArrival sim.Time
			cb := func(arr sim.Time) {
				if arr > lastArrival {
					lastArrival = arr
				}
				remaining--
				if remaining == 0 {
					then(lastArrival)
				}
			}
			for i := 0; i < pageLineMessages; i++ {
				ts.sendHops(first+step.Scale(i), route[1:], ts.sys.DataBytes, cb)
			}
			return
		}
	}
	remaining := pageLineMessages
	var lastArrival sim.Time
	for i := 0; i < pageLineMessages; i++ {
		ts.sendPath(start, from, to, ts.sys.DataBytes, func(arr sim.Time) {
			if arr > lastArrival {
				lastArrival = arr
			}
			remaining--
			if remaining == 0 {
				then(lastArrival)
			}
		})
	}
}

// memAccess performs a DRAM access at node when the request arrives
// there, invoking then with the data-ready time. Retained for the rare
// paths; per-access coherence paths use txn programs.
func (ts *timingSystem) memAccess(at sim.Time, node topology.NodeID, addr uint64, then func(sim.Time)) {
	access := func(now sim.Time) {
		done, _ := ts.ctrls[node].Access(now, addr, cache.BlockBytes)
		then(done)
	}
	if at > ts.eng.Now() {
		ts.eng.AtKind(at, "mem", access)
	} else {
		access(ts.eng.Now())
	}
}

// chargeHop books one link hop of a recorded demand access into the
// attribution ledger. A Send's round trip decomposes exactly as
// delivered − arrived = retry + queuing + (serialization + propagation):
// retry is fault-injector retrain/backoff, queuing is wire contention
// (CXL or socket-link by channel kind), and the remainder is the hop
// cost itself — charged to coherence on tagged block-transfer legs.
// Caller guarantees ts.led != nil.
//
//starnuma:hotpath one call per charged link hop
func (ts *timingSystem) chargeHop(li int, socket topology.NodeID, arrived, delivered, queuing sim.Time, coh bool) {
	s := int(socket)
	retry := ts.links[li].LastRetry()
	if retry > 0 {
		ts.led.Charge(s, attrib.FaultRetry, retry)
	}
	prop := delivered - arrived - queuing - retry
	if ts.linkCXL[li] {
		ts.led.Charge(s, attrib.CXLQueue, queuing)
		if coh {
			ts.led.Charge(s, attrib.Coherence, prop)
		} else {
			ts.led.Charge(s, attrib.CXLProp, prop)
		}
		return
	}
	ts.led.Charge(s, attrib.LinkQueue, queuing)
	if coh {
		ts.led.Charge(s, attrib.Coherence, prop)
	} else {
		ts.led.Charge(s, attrib.LinkProp, prop)
	}
}

// chargeMem books one memory access of a recorded demand access: the
// controller round trip decomposes exactly as done − arrived = on-chip
// + channel queuing + DRAM service (serialization, or bank service plus
// bus transfer for the banked model). Caller guarantees ts.led != nil.
//
//starnuma:hotpath one call per charged memory access
func (ts *timingSystem) chargeMem(socket, node topology.NodeID, arrived, done, queuing sim.Time) {
	s := int(socket)
	onChip := ts.ctrls[node].OnChipLatency()
	ts.led.Charge(s, attrib.OnChip, onChip)
	ts.led.Charge(s, attrib.DRAMQueue, queuing)
	ts.led.Charge(s, attrib.DRAM, done-arrived-onChip-queuing)
}

// sendHopsCharged is sendHops with per-hop attribution: identical event
// kinds and timing, plus a ledger charge after each Send. Used by the
// replicated-access demand legs, which keep the closure style; callers
// pick it only when ts.led != nil and the access is recorded, so the
// attribution-off path is untouched.
func (ts *timingSystem) sendHopsCharged(at sim.Time, hops []int, bytes int, socket topology.NodeID, then func(sim.Time)) {
	if len(hops) == 0 {
		then(at)
		return
	}
	send := func(now sim.Time) {
		delivered, q := ts.links[hops[0]].Send(now, bytes)
		ts.chargeHop(hops[0], socket, now, delivered, q, false)
		ts.sendHopsCharged(delivered, hops[1:], bytes, socket, then)
	}
	if at > ts.eng.Now() {
		ts.eng.AtKind(at, "send", send)
	} else {
		send(ts.eng.Now())
	}
}

// sendPathCharged is sendPath with per-hop attribution.
func (ts *timingSystem) sendPathCharged(start sim.Time, from, to topology.NodeID, bytes int, socket topology.NodeID, then func(sim.Time)) {
	ts.sendHopsCharged(start, ts.topo.Route(from, to), bytes, socket, then)
}

// memAccessCharged is memAccess with attribution: identical event kind
// and timing, plus the controller-round-trip charge.
func (ts *timingSystem) memAccessCharged(at sim.Time, node topology.NodeID, socket topology.NodeID, addr uint64, then func(sim.Time)) {
	access := func(now sim.Time) {
		done, q := ts.ctrls[node].Access(now, addr, cache.BlockBytes)
		ts.chargeMem(socket, node, now, done, q)
		then(done)
	}
	if at > ts.eng.Now() {
		ts.eng.AtKind(at, "mem", access)
	} else {
		access(ts.eng.Now())
	}
}

// start launches the cores and the migration engine.
//
//starnuma:coldpath once-per-window kickoff
func (ts *timingSystem) start(chk Checkpoint) {
	ts.scheduleMigrations(chk)
	for _, cs := range ts.cores {
		// The bound wake event doubles as the kickoff: hasWake is false,
		// so its body is exactly tryIssue.
		ts.eng.AtKind(0, "start", cs.wake)
	}
}

// scheduleMigrations models the window's share of the phase's migrations
// (§IV-C: timing simulation covers the first TimedInstr/PhaseInstr of
// the phase, hence that fraction of its migrations). The initiating core
// serialises migrations at MigrationCostCycles each; page data crosses
// the interconnect and accesses to an in-flight page stall until the
// data lands.
//
//starnuma:coldpath once per window, walks the migration plan
func (ts *timingSystem) scheduleMigrations(chk Checkpoint) {
	frac := float64(ts.cfg.TimedInstr) / float64(ts.cfg.PhaseInstr)
	n := int(float64(len(chk.Migrations)) * frac)
	if n > len(chk.Migrations) {
		n = len(chk.Migrations)
	}
	ts.w.migrModeled = n
	costPS := ts.cfg.MigrationCostCycles.Time(ts.cyclePS)
	for k := 0; k < n; k++ {
		m := chk.Migrations[k]
		startAt := costPS.Scale(k)
		ts.eng.AtKind(startAt, "migrate", func(now sim.Time) {
			page := m.Page
			if ts.tlbs != nil {
				// Hardware-assisted targeted shootdown (§III-D3): only
				// cores caching the translation are invalidated; they
				// repay with a page walk on their next access.
				ts.tlbs.Shootdown(page)
			}
			ts.pageHome[page] = m.To
			if _, ok := ts.inFlight[page]; !ok {
				ts.inFlight[page] = nil
			}
			if ts.led != nil && m.Drain {
				// Mark the in-flight move as a drain so demand stalls
				// behind it charge to the drain category.
				ts.drainInFlight[page] = true
			}
			from := m.From
			if from == Unassigned {
				from = m.To
			}
			ts.sendPage(now, from, m.To, func(arr sim.Time) {
				if ts.w.trc != nil && ts.trcMigN < migrationTraceCap {
					ts.trcMigN++
					ts.w.trc.SpanArgs("migrate", "page move", ts.lanes[m.To], now, arr-now,
						evtrace.Arg{Key: "page", Val: strconv.FormatUint(uint64(page), 10)},
						evtrace.Arg{Key: "from", Val: ts.lanes[from]})
				}
				fire := func(sim.Time) {
					waiters := ts.inFlight[page]
					delete(ts.inFlight, page)
					if ts.led != nil {
						delete(ts.drainInFlight, page)
					}
					for _, w := range waiters {
						w()
					}
				}
				if arr > ts.eng.Now() {
					ts.eng.AtKind(arr, "migrate_land", fire)
				} else {
					fire(ts.eng.Now())
				}
			})
		})
	}
	// Remaining migrations take effect instantly at window start: the
	// next checkpoint's map already reflects them in step B, and the
	// paper likewise only models the window's share.
	for k := n; k < len(chk.Migrations); k++ {
		ts.pageHome[chk.Migrations[k].Page] = chk.Migrations[k].To
	}
}

// tryIssue advances a core: it fetches accesses from the generator and
// issues them subject to the MLP cap and the compute-position constraint.
//
//starnuma:hotpath the per-instruction issue loop, dispatched from engine events
func (ts *timingSystem) tryIssue(cs *coreState) {
	if cs.done {
		return
	}
	now := ts.eng.Now()
	for cs.outstanding < ts.mlp {
		if !cs.hasPending {
			if cs.instr >= ts.cfg.TimedInstr {
				// Budget consumed; core finishes when outstanding drain.
				if cs.outstanding == 0 {
					ts.finishCore(cs, now)
				}
				return
			}
			a := ts.gen.Next(cs.id)
			cs.instr += uint64(a.Gap)
			cs.compute += gapTime(a.Gap, ts.ipc0, ts.cyclePS)
			cs.pendingA = a
			cs.hasPending = true
			if !cs.warmupDone && cs.instr >= ts.cfg.WarmupInstr {
				cs.warmupDone = true
				cs.warmupTime = now
				if cs.compute > now {
					cs.warmupTime = cs.compute
				}
				cs.warmupInstr = cs.instr
			}
		}
		if cs.compute > now {
			// Next miss's compute position not reached: wake then.
			if !cs.hasWake || cs.wakeAt > cs.compute {
				cs.hasWake = true
				cs.wakeAt = cs.compute
				ts.eng.AtKind(cs.compute, "wake", cs.wake)
			}
			return
		}
		a := cs.pendingA
		cs.hasPending = false
		cs.outstanding++
		ts.issueAccess(cs, a, now, cs.warmupDone)
	}
}

// finishCore retires a core at the end of its window.
//
//starnuma:hotpath one call per core per window
func (ts *timingSystem) finishCore(cs *coreState, now sim.Time) {
	cs.done = true
	cs.finish = now
	if cs.compute > cs.finish {
		cs.finish = cs.compute
	}
	// Post-warmup IPC.
	instr := float64(cs.instr - cs.warmupInstr)
	elapsed := float64(cs.finish - cs.warmupTime)
	if !cs.warmupDone || elapsed <= 0 {
		instr = float64(cs.instr)
		elapsed = float64(cs.finish)
	}
	ipc := 0.0
	if elapsed > 0 {
		ipc = instr / (elapsed / ts.cyclePS)
	}
	//starnumavet:allow hotalloc once per core per window, bounded by the core count
	ts.w.ipcs = append(ts.w.ipcs, ipc)
	ts.running--
	if ts.running == 0 {
		ts.w.simTime = now
		ts.eng.Halt()
	}
}

// issueAccess simulates one LLC miss end to end.
//
//starnuma:hotpath one call per timed memory access
func (ts *timingSystem) issueAccess(cs *coreState, a workload.Access, issued sim.Time, record bool) {
	// Stall behind an in-flight migration of the page (§IV-C).
	if waiters, ok := ts.inFlight[a.Page]; ok {
		ts.w.migrStalled++
		if ts.led != nil && record {
			// Charged variant: book the wait (from now until the page
			// lands) to migration, or to drain when the in-flight move is
			// a fault drain. Re-issue may stall again behind a later
			// migration; each leg charges its own wait, so chains sum
			// exactly.
			start := ts.eng.Now()
			cat := attrib.Migration
			if ts.drainInFlight[a.Page] {
				cat = attrib.Drain
			}
			sock := cs.socket
			//starnumavet:allow hotalloc waiter list exists only while a migration of this page is in flight; stalls are rare by design
			ts.inFlight[a.Page] = append(waiters, func() {
				ts.led.Charge(sock, cat, ts.eng.Now()-start)
				ts.issueAccess(cs, a, issued, record)
			})
			return
		}
		//starnumavet:allow hotalloc waiter list exists only while a migration of this page is in flight; stalls are rare by design
		ts.inFlight[a.Page] = append(waiters, func() {
			ts.issueAccess(cs, a, issued, record)
		})
		return
	}
	now := ts.eng.Now()
	// Software-tracking study: the first access to each poisoned page in
	// a phase takes a minor page fault before anything else happens.
	if ts.sampler != nil && ts.sampler.WouldFault(a.Page) {
		ts.sampler.MarkFaulted(a.Page)
		ts.w.pageFaults++
		penalty := ts.cfg.SoftwareTracking.FaultPenaltyCycles.Time(ts.cyclePS)
		if ts.led != nil && record {
			// The fault handler stalls the access for exactly penalty;
			// minor-fault time books under the TLB/translation category.
			ts.led.Charge(cs.socket, attrib.TLB, penalty)
		}
		ts.eng.AtKind(now+penalty, "fault", func(sim.Time) { ts.issueAccessAfterWalk(cs, a, issued, record) })
		return
	}
	// Translation: steady-state TLB behaviour is part of the measured
	// single-socket IPC, so only shootdown-induced walks (the marginal
	// cost of migrations) charge latency — modelled by delaying the
	// access by the page-walk penalty.
	if ts.tlbs != nil {
		if _, shot := ts.tlbs.Access(cs.id, a.Page); shot && ts.cfg.PageWalkPenalty > 0 {
			delay := ts.cfg.PageWalkPenalty
			if ts.w.trc != nil && ts.trcTLBN < tlbTraceCap {
				ts.trcTLBN++
				ts.w.trc.SpanArgs("tlb", "shootdown walk", ts.lanes[cs.socket], now, delay,
					evtrace.Arg{Key: "core", Val: strconv.Itoa(cs.id)})
			}
			if ts.led != nil && record {
				ts.led.Charge(cs.socket, attrib.TLB, delay)
			}
			ts.eng.AtKind(now+delay, "walk", func(sim.Time) { ts.issueAccessAfterWalk(cs, a, issued, record) })
			return
		}
	}
	ts.issueAccessAfterWalk(cs, a, issued, record)
}

// issueAccessAfterWalk continues issueAccess past the translation stage:
// it updates the LLC, consults the directory, and launches the
// transaction programs that model the resulting traffic.
//
//starnuma:hotpath continuation of issueAccess after the TLB verdict
func (ts *timingSystem) issueAccessAfterWalk(cs *coreState, a workload.Access, issued sim.Time, record bool) {
	now := ts.eng.Now()
	socket := topology.NodeID(cs.socket)
	home := ts.pageHome[a.Page]
	if home == Unassigned {
		home = socket // first touch during timing
		ts.pageHome[a.Page] = home
	}
	block := uint64(a.Page)*workload.BlocksPerPage + uint64(a.Block)
	addr := block * cache.BlockBytes

	// Replication study (§V-F): reads of a replicated page are served by
	// the socket-local replica; writes pay the software coherence
	// penalty for invalidating every replica, plus broadcast traffic.
	// Replicated pages bypass the hardware directory — their coherence
	// is software's problem, which is precisely the study's point.
	if ts.replicated != nil && ts.replicated[a.Page] {
		ts.replicatedAccess(cs, a, socket, home, addr, issued, record)
		return
	}

	// LLC presence update; evictions update the directory and generate
	// writeback traffic.
	if victim, vDirty, evicted := ts.llcs[cs.socket].Insert(block, a.Write); evicted {
		if ts.dir.Evict(socket, victim, vDirty) {
			victimPage := uint32(victim / workload.BlocksPerPage)
			vHome := socket
			if int(victimPage) < len(ts.pageHome) && ts.pageHome[victimPage] != Unassigned {
				vHome = ts.pageHome[victimPage]
			}
			// Fire-and-forget writeback of the dirty line.
			wb := ts.getTxn()
			wb.at = now
			wb.sendStep(socket, vHome, ts.sys.DataBytes)
			wb.run(now)
		}
	}

	homeIsPool := ts.topo.HasPool() && home == ts.topo.PoolNode()
	res := ts.dir.Access(socket, block, a.Write, homeIsPool)

	// Invalidations: state updates immediate, traffic asynchronous
	// (request out, acknowledgement back).
	for _, tgt := range res.Invalidate {
		ts.llcs[tgt].Invalidate(block)
		inv := ts.getTxn()
		inv.at = now
		inv.sendStep(home, tgt, ts.sys.MessageBytes)
		inv.sendStep(tgt, home, ts.sys.MessageBytes)
		inv.run(now)
	}
	// A write with a remote dirty owner is an RFO: the transfer itself
	// invalidates the owner's copy (no extra message needed).
	if a.Write && res.Owner >= 0 {
		ts.llcs[res.Owner].Invalidate(block)
	}

	// Tracker metadata traffic (annex flushes).
	if ts.chargeTracker {
		ts.annexCount[cs.socket]++
		if ts.annexCount[cs.socket]%annexFlushBatch == 0 {
			region := int(a.Page) / ts.cfg.RegionPages
			metaNode := topology.NodeID(region % ts.topo.Sockets())
			ax := ts.getTxn()
			ax.at = now
			ax.addr = addr
			ax.sendStep(socket, metaNode, ts.sys.DataBytes)
			ax.memStep(metaNode)
			ax.run(now)
		}
	}

	// The demand access itself.
	t := ts.getTxn()
	t.at = now
	t.addr = addr
	t.cs = cs
	t.issued = issued
	t.record = record
	t.socket, t.home = socket, home
	t.res = res
	switch res.Outcome {
	case coherence.Memory:
		t.acc = ts.classify(socket, home)
		if home != socket {
			t.sendStep(socket, home, ts.sys.MessageBytes)
		}
		t.memStep(home)
		if home != socket {
			t.sendStep(home, socket, ts.sys.DataBytes)
		}
		t.doneStep()
	case coherence.BlockTransfer3Hop:
		// R→H request, directory+memory access at H, H→O forward, O→R
		// data (Fig. 4's red path).
		t.acc = stats.BTSocket
		t.sendStep(socket, home, ts.sys.MessageBytes)
		t.memStep(home)
		t.sendStepCoh(home, res.Owner, ts.sys.MessageBytes)
		t.sendStepCoh(res.Owner, socket, ts.sys.DataBytes)
		t.doneStep()
	case coherence.BlockTransfer4Hop:
		poolN := ts.topo.PoolNode()
		t.sendStep(socket, poolN, ts.sys.MessageBytes)
		t.memStep(poolN)
		t.sendStepCoh(poolN, res.Owner, ts.sys.MessageBytes)
		if ts.cfg.ForceDirectBT {
			// Ablation: direct owner→requester transfer despite the pool
			// home — the path Fig. 4 shows to be slower on average.
			t.acc = stats.BTSocket
			t.sendStepCoh(res.Owner, socket, ts.sys.DataBytes)
		} else {
			// R→H(pool), directory at pool, H→O forward, O→H data, H→R
			// data (Fig. 4's blue path).
			t.acc = stats.BTPool
			t.sendStepCoh(res.Owner, poolN, ts.sys.DataBytes)
			t.sendStepCoh(poolN, socket, ts.sys.DataBytes)
		}
		t.doneStep()
	default:
		unknownOutcomePanic(res.Outcome)
	}
	t.run(now)
}

// unknownOutcomePanic reports an unhandled coherence outcome. Split out
// of issueAccessAfterWalk so the hot path keeps no fmt reference.
//
//starnuma:coldpath
func unknownOutcomePanic(o coherence.Outcome) {
	panic(fmt.Sprintf("core: unknown outcome %v", o))
}

// replicatedAccess services an access to a software-replicated page.
//
//starnuma:hotpath replica-read variant of issueAccess
func (ts *timingSystem) replicatedAccess(cs *coreState, a workload.Access,
	socket, home topology.NodeID, addr uint64, issued sim.Time, record bool) {
	now := ts.eng.Now()
	fin := func(done sim.Time, at stats.AccessType) {
		step := func(now2 sim.Time) {
			if record {
				ts.w.amat.Observe(at, now2-issued)
				ts.w.misses++
			}
			cs.compute += (now2 - issued) / sim.Time(ts.mlp)
			cs.outstanding--
			ts.tryIssue(cs)
		}
		if done > ts.eng.Now() {
			ts.eng.AtKind(done, "complete", step)
		} else {
			step(ts.eng.Now())
		}
	}
	charge := ts.led != nil && record
	if !a.Write {
		if record {
			ts.w.replicaReads++
		}
		if charge {
			ts.memAccessCharged(now, socket, socket, addr, func(done sim.Time) { fin(done, stats.Local) })
		} else {
			ts.memAccess(now, socket, addr, func(done sim.Time) { fin(done, stats.Local) })
		}
		return
	}
	// Store: software replica coherence. Broadcast invalidations to every
	// other socket, stall for the kernel-level penalty, then update the
	// page's home copy.
	if record {
		ts.w.replicaWriteStalls++
	}
	for s := 0; s < ts.topo.Sockets(); s++ {
		if topology.NodeID(s) == socket {
			continue
		}
		ts.sendPath(now, socket, topology.NodeID(s), ts.sys.MessageBytes, func(sim.Time) {})
	}
	penalty := ts.cfg.Replication.WritePenaltyCycles.Time(ts.cyclePS)
	at := ts.classify(socket, home)
	if charge {
		// The kernel-level replica-coherence stall is exactly penalty;
		// the home round trip decomposes like any demand access.
		ts.led.Charge(cs.socket, attrib.Replication, penalty)
		ts.eng.AtKind(now+penalty, "replica", func(start sim.Time) {
			if home == socket {
				ts.memAccessCharged(start, home, socket, addr, func(done sim.Time) { fin(done, at) })
				return
			}
			ts.sendPathCharged(start, socket, home, ts.sys.MessageBytes, socket, func(arr sim.Time) {
				ts.memAccessCharged(arr, home, socket, addr, func(ready sim.Time) {
					ts.sendPathCharged(ready, home, socket, ts.sys.DataBytes, socket, func(done sim.Time) {
						fin(done, at)
					})
				})
			})
		})
		return
	}
	ts.eng.AtKind(now+penalty, "replica", func(start sim.Time) {
		if home == socket {
			ts.memAccess(start, home, addr, func(done sim.Time) { fin(done, at) })
			return
		}
		ts.sendPath(start, socket, home, ts.sys.MessageBytes, func(arr sim.Time) {
			ts.memAccess(arr, home, addr, func(ready sim.Time) {
				ts.sendPath(ready, home, socket, ts.sys.DataBytes, func(done sim.Time) {
					fin(done, at)
				})
			})
		})
	})
}

// classify maps a memory access to its Fig. 8c category.
//
//starnuma:hotpath per-access latency-class bucketing
func (ts *timingSystem) classify(socket, home topology.NodeID) stats.AccessType {
	switch {
	case home == socket:
		return stats.Local
	case ts.topo.HasPool() && home == ts.topo.PoolNode():
		return stats.Pool
	case ts.topo.Chassis(socket) == ts.topo.Chassis(home):
		return stats.OneHop
	default:
		return stats.TwoHop
	}
}

// unfinishedPanic reports cores left running after the event queue
// drained. Split out of runWindow so the hot path keeps no fmt
// reference.
//
//starnuma:coldpath
func unfinishedPanic(running, phase int) {
	panic(fmt.Sprintf("core: %d cores never finished window (phase %d)", running, phase))
}

// phaseBudgeter is the optional AccessSource extension that lets window
// runs declare the per-core instruction budget of a phase up front, so
// the source can record the phase's miss stream once and replay it for
// every later window of the same phase (workload.Generator implements
// it). Sources without it are simply drawn from directly.
type phaseBudgeter interface {
	SetPhaseBudget(budget uint64)
}

// runWindow executes one checkpoint's timing simulation.
//
//starnuma:hotpath the step-C window timing simulation
func runWindow(sys SystemConfig, cfg SimConfig, gen AccessSource,
	chk Checkpoint, replicated []bool) windowStats {
	if pb, ok := gen.(phaseBudgeter); ok {
		pb.SetPhaseBudget(cfg.PhaseInstr)
	}
	ts := acquireTimingSystem(sys, cfg, gen, chk, replicated)
	gen.ResetPhase(chk.Phase)
	ts.start(chk)
	ts.eng.Run()
	// Cores that never finished (possible only on malformed configs)
	// would leave running > 0; guard against silent nonsense.
	if ts.running != 0 {
		unfinishedPanic(ts.running, chk.Phase)
	}
	for _, cs := range ts.cores {
		ts.w.instr += cs.instr - cs.warmupInstr
	}
	ts.w.dir = ts.dir.Stats()
	if ts.tlbs != nil {
		ts.w.tlb = ts.tlbs.Stats()
	}
	for _, inj := range ts.injectors {
		st := inj.Stats()
		ts.w.faultDegraded += st.DegradedSends
		ts.w.faultRetries += st.FlapRetries
		ts.w.faultRetryPS += st.RetryTime
	}
	if ts.led != nil {
		// Snapshot the attribution ledger with the window's conservation
		// target: the cells must sum exactly to the AMAT latency total.
		wp := ts.led.Window(chk.Phase, int64(ts.w.amat.SumLatency()))
		ts.w.prof = &wp
	}
	if ts.met != nil {
		ts.harvest(chk.Phase)
		ts.w.met = ts.met.Snapshot()
	}
	if ts.w.trc != nil {
		// The whole window as one span on the "sim" lane, recorded last
		// so its duration is the settled window length.
		ts.w.trc.SpanArgs("window", "window "+strconv.Itoa(chk.Phase), "sim", 0, ts.w.simTime,
			evtrace.Arg{Key: "phase", Val: strconv.Itoa(chk.Phase)},
			evtrace.Arg{Key: "migrations", Val: strconv.Itoa(ts.w.migrModeled)})
	}
	w := ts.w
	releaseTimingSystem(ts)
	return w
}
