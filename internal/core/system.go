package core

import (
	"fmt"
	"strconv"

	"starnuma/internal/cache"
	"starnuma/internal/coherence"
	"starnuma/internal/evtrace"
	"starnuma/internal/fault"
	"starnuma/internal/link"
	"starnuma/internal/memdev"
	"starnuma/internal/metrics"
	"starnuma/internal/migrate"
	"starnuma/internal/sim"
	"starnuma/internal/stats"
	"starnuma/internal/tlb"
	"starnuma/internal/topology"
	"starnuma/internal/tracker"
	"starnuma/internal/workload"
)

// annexFlushBatch mirrors the tracker's flush rate: one metadata write
// per this many LLC misses per socket (§III-D1's TLB annex).
const annexFlushBatch = 32

// pageLineMessages is how many line-sized packets carry one migrated
// 4KB page. Pages are packetised rather than sent as one bulk message so
// demand traffic interleaves with migration traffic — a monolithic 4KB
// transfer would monopolise a 3 GB/s link for ~1.4µs and head-of-line
// block every request behind it.
const pageLineMessages = workload.PageBytes / cache.BlockBytes

// coreState is the MLP-limited timing model of one core (DESIGN.md §3):
// compute retires at the workload's zero-load IPC, at most MLP misses
// overlap, and the next miss may not issue before its compute position.
type coreState struct {
	id, socket  int
	instr       uint64   // instructions retired so far (by gap accounting)
	compute     sim.Time // compute-completion time of work up to the pending miss
	pending     *workload.Access
	outstanding int
	done        bool
	wakeAt      sim.Time // earliest scheduled self-wake (dedup)
	hasWake     bool

	warmupDone  bool
	warmupTime  sim.Time
	warmupInstr uint64
	finish      sim.Time
}

// windowStats is what one step-C timing window produces.
type windowStats struct {
	amat        *stats.AMAT
	ipcs        []float64 // per-core post-warmup IPC
	instr       uint64    // post-warmup instructions
	misses      uint64    // post-warmup misses
	dir         coherence.Stats
	migrStalled uint64 // accesses stalled behind in-flight migrations
	migrModeled int
	simTime     sim.Time
	tlb         tlb.Stats
	// replication study counters (§V-F)
	replicaReads       uint64
	replicaWriteStalls uint64
	// software-tracking study: minor page faults taken in the window
	pageFaults uint64
	// fault-injection counters, summed over the window's link injectors:
	// sends served degraded, sends that hit a flap down-interval, and
	// the total retrain+retry wait they paid.
	faultDegraded uint64
	faultRetries  uint64
	faultRetryPS  sim.Time
	// met is the window's instrumentation snapshot; nil unless
	// SimConfig.CollectMetrics.
	met *metrics.Snapshot
	// trc is the window's event-trace buffer, with timestamps on the
	// window's local clock (t=0 at window start); nil unless
	// SimConfig.Trace. Result.MergeWindow shifts it onto the run's
	// continuous timeline.
	trc *evtrace.Buffer
}

// timingSystem wires the substrate models together for one window.
type timingSystem struct {
	sys  SystemConfig
	cfg  SimConfig
	topo *topology.Topology
	eng  *sim.Engine
	gen  AccessSource

	links   []*link.Link
	ctrls   []*memdev.Controller // indexed by node
	llcs    []*cache.LLC         // indexed by socket
	dir     *coherence.Directory
	tlbs    *tlb.System      // nil when TLB modelling is disabled
	sampler *tracker.Sampler // nil unless the software-tracking study runs

	// fault injection: the compiled schedule (nil = fault-free), the
	// per-link injectors installed for this window's phase, and the
	// pool device's health.
	sched     *fault.Schedule
	injectors []*fault.Injector
	poolFault fault.PoolState

	pageHome   []topology.NodeID
	inFlight   map[uint32][]func() // page -> callbacks waiting for migration
	replicated []bool              // §V-F study; nil when disabled

	cores   []*coreState
	running int

	ipc0    float64
	cyclePS float64
	mlp     int

	chargeTracker bool
	annexCount    []uint64

	// met is the window's instrumentation registry; nil (disabled)
	// unless cfg.CollectMetrics. All writes are nil-safe no-ops when
	// disabled, and collection never alters timing.
	met *metrics.Registry

	// Event tracing (nil/zero when cfg.Trace is off): precomputed
	// per-node lane names, the sampled coherence-transaction tracer,
	// and per-window caps on migration and TLB-walk spans.
	lanes   []string
	txnTrc  *coherence.TxnTracer
	trcMigN int
	trcTLBN int

	w windowStats
}

// policyChargesTracker reports whether the configured policy reads the
// hardware access tracker, and therefore whether the timing windows must
// charge annex flush traffic for its metadata. The registry descriptor
// declares it; static placement (oracle) never consults the tracker.
func policyChargesTracker(cfg SimConfig) bool {
	if cfg.StaticOracle {
		return false
	}
	d, ok := migrate.LookupPolicy(cfg.Policy.CanonicalName())
	return ok && d.UsesTracker
}

// newTimingSystem builds a fresh system for one checkpoint window.
//
//starnuma:coldpath once-per-window construction; allocation here is the point
func newTimingSystem(sys SystemConfig, cfg SimConfig, gen AccessSource,
	chk Checkpoint, replicated []bool) *timingSystem {
	topo := topology.New(sys.Topology)
	ts := &timingSystem{
		sys:           sys,
		cfg:           cfg,
		topo:          topo,
		eng:           sim.NewEngine(),
		gen:           gen,
		dir:           coherence.NewDirectory(topo.Sockets()),
		inFlight:      make(map[uint32][]func()),
		cyclePS:       sys.CyclePS(),
		mlp:           gen.Spec().MLP,
		annexCount:    make([]uint64, topo.Sockets()),
		chargeTracker: policyChargesTracker(cfg),
	}
	if cfg.CollectMetrics {
		ts.met = metrics.New()
		ts.eng.SetMetrics(ts.met)
	}
	if cfg.Trace {
		ts.w.trc = evtrace.NewBuffer()
		ts.lanes = traceLanes(topo)
		ts.txnTrc = coherence.NewTxnTracer(ts.w.trc, coherenceTraceSample)
	}
	localMissCycles := float64(ts.localUnloaded()) / ts.cyclePS
	ts.ipc0 = gen.Spec().ZeroLoadIPC(localMissCycles)
	if cfg.ModelTLB {
		ts.tlbs = tlb.NewSystem(topo.Sockets()*sys.CoresPerSocket, tlb.DefaultConfig())
	}
	if cfg.SoftwareTracking.Enable {
		// A window-local sampler with the same seed redraws the exact
		// sample step B used for this phase.
		tbl := tracker.NewTable(cfg.Tracker, gen.NumPages(), cfg.RegionPages)
		ts.sampler = tracker.NewSampler(tbl, cfg.SoftwareTracking.SampleFrac, gen.Spec().Seed)
		ts.sampler.ResetPhase(chk.Phase)
		ts.chargeTracker = false // faults replace annex flush traffic
	}

	ts.sched = fault.NewSchedule(cfg.Faults)

	// Links: one bandwidth server per directed channel, with a fault
	// injector installed when the plan targets it during this phase.
	for _, ch := range topo.Channels() {
		var bw link.GBps
		switch ch.Kind {
		case topology.KindUPI, topology.KindUPIASIC:
			bw = sys.UPIBandwidth
		case topology.KindNUMALink:
			bw = sys.NUMABandwidth
		case topology.KindCXL:
			bw = sys.Pool.LinkBW
		}
		l := link.New(fmt.Sprintf("%s:%s->%s", ch.Kind, ch.From, ch.To), bw, ch.Latency)
		if inj := ts.sched.Link(ch.Kind.String(), ch.From, ch.To, chk.Phase); inj != nil {
			l.SetFault(inj)
			ts.injectors = append(ts.injectors, inj)
			if ts.w.trc != nil {
				// Fault-adjusted sends trace onto a "fault" process with
				// one thread per degraded link.
				l.SetTrace(ts.w.trc, "fault/"+l.Name())
			}
		}
		ts.links = append(ts.links, l)
	}

	// Memory controllers per node.
	for s := 0; s < topo.Sockets(); s++ {
		ts.ctrls = append(ts.ctrls, memdev.NewController(fmt.Sprintf("s%d", s), sys.SocketMem))
		ts.llcs = append(ts.llcs, cache.New(sys.LLCBytes, sys.LLCWays))
	}
	if topo.HasPool() {
		pm := sys.PoolMem
		pm.Channels = sys.Pool.Channels
		ctrl := memdev.NewController("pool", pm)
		ts.poolFault = ts.sched.Pool(chk.Phase, pm.Channels)
		if ts.poolFault.Dead || len(ts.poolFault.Down) > 0 {
			ctrl.ApplyFault(ts.poolFault)
		}
		ts.ctrls = append(ts.ctrls, ctrl)
	}

	// Placement state.
	ts.pageHome = make([]topology.NodeID, len(chk.PageHome))
	copy(ts.pageHome, chk.PageHome)
	ts.replicated = replicated

	// Cores.
	n := topo.Sockets() * sys.CoresPerSocket
	for c := 0; c < n; c++ {
		ts.cores = append(ts.cores, &coreState{id: c, socket: gen.SocketOf(c)})
	}
	ts.running = n
	ts.w.amat = stats.NewAMAT()
	ts.w.amat.SetUnloadedLatencies(unloadedLatencies(topo, ts.localUnloaded()))
	return ts
}

// localUnloaded is the zero-contention local access latency of the
// configured memory.
func (ts *timingSystem) localUnloaded() sim.Time {
	return ts.sys.SocketMem.OnChip + ts.sys.SocketMem.DRAMLatency
}

// unloadedLatencies derives per-access-type zero-contention latencies
// from the topology's link constants, so the AMAT decomposition follows
// the system being simulated (Fig. 10's switched pool shifts Pool and
// BT_Pool automatically).
func unloadedLatencies(topo *topology.Topology, local sim.Time) [stats.NumAccessTypes]sim.Time {
	var out [stats.NumAccessTypes]sim.Time
	cfg := topo.Config()
	out[stats.Local] = local
	out[stats.OneHop] = 2*cfg.UPIOneWay + local
	inter := 2 * (2*cfg.UPIOneWay + 2*cfg.ASICOneWay + cfg.NUMAOneWay)
	out[stats.TwoHop] = inter + local
	out[stats.Pool] = 2*cfg.CXLOneWay + local
	// BT_Socket: mean 3-hop network latency over R,H,O combinations plus
	// a home memory/directory access (§V-A).
	if topo.Sockets() > 1 {
		var sum sim.Time
		var n int
		for r := topology.NodeID(0); int(r) < topo.Sockets(); r++ {
			for h := topology.NodeID(0); int(h) < topo.Sockets(); h++ {
				for o := topology.NodeID(0); int(o) < topo.Sockets(); o++ {
					if r == o {
						continue
					}
					sum += topo.OneWayLatency(r, h) + topo.OneWayLatency(h, o) + topo.OneWayLatency(o, r)
					n++
				}
			}
		}
		out[stats.BTSocket] = sim.Time(int64(sum)/int64(n)) + local
	} else {
		out[stats.BTSocket] = local
	}
	out[stats.BTPool] = 4*cfg.CXLOneWay + local
	return out
}

// sendPath forwards a message hop by hop from node from to node to,
// calling then with the delivery time. Empty routes (from == to) deliver
// at start.
//
//starnuma:hotpath one call per modeled message
func (ts *timingSystem) sendPath(start sim.Time, from, to topology.NodeID, bytes int, then func(sim.Time)) {
	ts.sendHops(start, ts.topo.Route(from, to), bytes, then)
}

//starnuma:hotpath per message, recursing once per hop
func (ts *timingSystem) sendHops(at sim.Time, hops []int, bytes int, then func(sim.Time)) {
	if len(hops) == 0 {
		then(at)
		return
	}
	send := func(now sim.Time) {
		delivered, _ := ts.links[hops[0]].Send(now, bytes)
		ts.sendHops(delivered, hops[1:], bytes, then)
	}
	if at > ts.eng.Now() {
		ts.eng.AtKind(at, "send", send)
	} else {
		send(ts.eng.Now())
	}
}

// sendPage streams one 4KB page as line-sized packets from from to to,
// invoking then when the final packet lands. Packets share the route's
// links with demand traffic in FIFO order, so migrations consume
// bandwidth without head-of-line blocking whole-page transfers.
//
//starnuma:hotpath one call per migrated page
func (ts *timingSystem) sendPage(start sim.Time, from, to topology.NodeID, then func(sim.Time)) {
	remaining := pageLineMessages
	var lastArrival sim.Time
	for i := 0; i < pageLineMessages; i++ {
		ts.sendPath(start, from, to, ts.sys.DataBytes, func(arr sim.Time) {
			if arr > lastArrival {
				lastArrival = arr
			}
			remaining--
			if remaining == 0 {
				then(lastArrival)
			}
		})
	}
}

// memAccess performs a DRAM access at node when the request arrives
// there, invoking then with the data-ready time.
//
//starnuma:hotpath one call per device access
func (ts *timingSystem) memAccess(at sim.Time, node topology.NodeID, addr uint64, then func(sim.Time)) {
	access := func(now sim.Time) {
		done, _ := ts.ctrls[node].Access(now, addr, cache.BlockBytes)
		then(done)
	}
	if at > ts.eng.Now() {
		ts.eng.AtKind(at, "mem", access)
	} else {
		access(ts.eng.Now())
	}
}

// start launches the cores and the migration engine.
//
//starnuma:coldpath once-per-window kickoff
func (ts *timingSystem) start(chk Checkpoint) {
	ts.scheduleMigrations(chk)
	for _, cs := range ts.cores {
		cs := cs
		ts.eng.AtKind(0, "start", func(sim.Time) { ts.tryIssue(cs) })
	}
}

// scheduleMigrations models the window's share of the phase's migrations
// (§IV-C: timing simulation covers the first TimedInstr/PhaseInstr of
// the phase, hence that fraction of its migrations). The initiating core
// serialises migrations at MigrationCostCycles each; page data crosses
// the interconnect and accesses to an in-flight page stall until the
// data lands.
//
//starnuma:coldpath once per window, walks the migration plan
func (ts *timingSystem) scheduleMigrations(chk Checkpoint) {
	frac := float64(ts.cfg.TimedInstr) / float64(ts.cfg.PhaseInstr)
	n := int(float64(len(chk.Migrations)) * frac)
	if n > len(chk.Migrations) {
		n = len(chk.Migrations)
	}
	ts.w.migrModeled = n
	costPS := ts.cfg.MigrationCostCycles.Time(ts.cyclePS)
	for k := 0; k < n; k++ {
		m := chk.Migrations[k]
		startAt := costPS.Scale(k)
		ts.eng.AtKind(startAt, "migrate", func(now sim.Time) {
			page := m.Page
			if ts.tlbs != nil {
				// Hardware-assisted targeted shootdown (§III-D3): only
				// cores caching the translation are invalidated; they
				// repay with a page walk on their next access.
				ts.tlbs.Shootdown(page)
			}
			ts.pageHome[page] = m.To
			if _, ok := ts.inFlight[page]; !ok {
				ts.inFlight[page] = nil
			}
			from := m.From
			if from == Unassigned {
				from = m.To
			}
			ts.sendPage(now, from, m.To, func(arr sim.Time) {
				if ts.w.trc != nil && ts.trcMigN < migrationTraceCap {
					ts.trcMigN++
					ts.w.trc.SpanArgs("migrate", "page move", ts.lanes[m.To], now, arr-now,
						evtrace.Arg{Key: "page", Val: strconv.FormatUint(uint64(page), 10)},
						evtrace.Arg{Key: "from", Val: ts.lanes[from]})
				}
				fire := func(sim.Time) {
					waiters := ts.inFlight[page]
					delete(ts.inFlight, page)
					for _, w := range waiters {
						w()
					}
				}
				if arr > ts.eng.Now() {
					ts.eng.AtKind(arr, "migrate_land", fire)
				} else {
					fire(ts.eng.Now())
				}
			})
		})
	}
	// Remaining migrations take effect instantly at window start: the
	// next checkpoint's map already reflects them in step B, and the
	// paper likewise only models the window's share.
	for k := n; k < len(chk.Migrations); k++ {
		ts.pageHome[chk.Migrations[k].Page] = chk.Migrations[k].To
	}
}

// tryIssue advances a core: it fetches accesses from the generator and
// issues them subject to the MLP cap and the compute-position constraint.
//
//starnuma:hotpath the per-instruction issue loop, dispatched from engine events
func (ts *timingSystem) tryIssue(cs *coreState) {
	if cs.done {
		return
	}
	now := ts.eng.Now()
	for cs.outstanding < ts.mlp {
		if cs.pending == nil {
			if cs.instr >= ts.cfg.TimedInstr {
				// Budget consumed; core finishes when outstanding drain.
				if cs.outstanding == 0 {
					ts.finishCore(cs, now)
				}
				return
			}
			a := ts.gen.Next(cs.id)
			cs.instr += uint64(a.Gap)
			cs.compute += gapTime(a.Gap, ts.ipc0, ts.cyclePS)
			cs.pending = &a
			if !cs.warmupDone && cs.instr >= ts.cfg.WarmupInstr {
				cs.warmupDone = true
				cs.warmupTime = now
				if cs.compute > now {
					cs.warmupTime = cs.compute
				}
				cs.warmupInstr = cs.instr
			}
		}
		if cs.compute > now {
			// Next miss's compute position not reached: wake then.
			if !cs.hasWake || cs.wakeAt > cs.compute {
				cs.hasWake = true
				cs.wakeAt = cs.compute
				ts.eng.AtKind(cs.compute, "wake", func(sim.Time) {
					cs.hasWake = false
					ts.tryIssue(cs)
				})
			}
			return
		}
		a := *cs.pending
		cs.pending = nil
		cs.outstanding++
		ts.issueAccess(cs, a, now, cs.warmupDone)
	}
}

// finishCore retires a core at the end of its window.
//
//starnuma:hotpath one call per core per window
func (ts *timingSystem) finishCore(cs *coreState, now sim.Time) {
	cs.done = true
	cs.finish = now
	if cs.compute > cs.finish {
		cs.finish = cs.compute
	}
	// Post-warmup IPC.
	instr := float64(cs.instr - cs.warmupInstr)
	elapsed := float64(cs.finish - cs.warmupTime)
	if !cs.warmupDone || elapsed <= 0 {
		instr = float64(cs.instr)
		elapsed = float64(cs.finish)
	}
	ipc := 0.0
	if elapsed > 0 {
		ipc = instr / (elapsed / ts.cyclePS)
	}
	//starnumavet:allow hotalloc once per core per window, bounded by the core count
	ts.w.ipcs = append(ts.w.ipcs, ipc)
	ts.running--
	if ts.running == 0 {
		ts.w.simTime = now
		ts.eng.Halt()
	}
}

// issueAccess simulates one LLC miss end to end.
//
//starnuma:hotpath one call per timed memory access
func (ts *timingSystem) issueAccess(cs *coreState, a workload.Access, issued sim.Time, record bool) {
	// Stall behind an in-flight migration of the page (§IV-C).
	if waiters, ok := ts.inFlight[a.Page]; ok {
		ts.w.migrStalled++
		//starnumavet:allow hotalloc waiter list exists only while a migration of this page is in flight; stalls are rare by design
		ts.inFlight[a.Page] = append(waiters, func() {
			ts.issueAccess(cs, a, issued, record)
		})
		return
	}
	now := ts.eng.Now()
	// Software-tracking study: the first access to each poisoned page in
	// a phase takes a minor page fault before anything else happens.
	if ts.sampler != nil && ts.sampler.WouldFault(a.Page) {
		ts.sampler.MarkFaulted(a.Page)
		ts.w.pageFaults++
		penalty := ts.cfg.SoftwareTracking.FaultPenaltyCycles.Time(ts.cyclePS)
		ts.eng.AtKind(now+penalty, "fault", func(sim.Time) { ts.issueAccessAfterWalk(cs, a, issued, record) })
		return
	}
	// Translation: steady-state TLB behaviour is part of the measured
	// single-socket IPC, so only shootdown-induced walks (the marginal
	// cost of migrations) charge latency — modelled by delaying the
	// access by the page-walk penalty.
	if ts.tlbs != nil {
		if _, shot := ts.tlbs.Access(cs.id, a.Page); shot && ts.cfg.PageWalkPenalty > 0 {
			delay := ts.cfg.PageWalkPenalty
			if ts.w.trc != nil && ts.trcTLBN < tlbTraceCap {
				ts.trcTLBN++
				ts.w.trc.SpanArgs("tlb", "shootdown walk", ts.lanes[cs.socket], now, delay,
					evtrace.Arg{Key: "core", Val: strconv.Itoa(cs.id)})
			}
			ts.eng.AtKind(now+delay, "walk", func(sim.Time) { ts.issueAccessAfterWalk(cs, a, issued, record) })
			return
		}
	}
	ts.issueAccessAfterWalk(cs, a, issued, record)
}

// issueAccessAfterWalk continues issueAccess past the translation stage.
//
//starnuma:hotpath continuation of issueAccess after the TLB verdict
func (ts *timingSystem) issueAccessAfterWalk(cs *coreState, a workload.Access, issued sim.Time, record bool) {
	now := ts.eng.Now()
	socket := topology.NodeID(cs.socket)
	home := ts.pageHome[a.Page]
	if home == Unassigned {
		home = socket // first touch during timing
		ts.pageHome[a.Page] = home
	}
	block := uint64(a.Page)*workload.BlocksPerPage + uint64(a.Block)
	addr := block * cache.BlockBytes

	// Replication study (§V-F): reads of a replicated page are served by
	// the socket-local replica; writes pay the software coherence
	// penalty for invalidating every replica, plus broadcast traffic.
	// Replicated pages bypass the hardware directory — their coherence
	// is software's problem, which is precisely the study's point.
	if ts.replicated != nil && ts.replicated[a.Page] {
		ts.replicatedAccess(cs, a, socket, home, addr, issued, record)
		return
	}

	// LLC presence update; evictions update the directory and generate
	// writeback traffic.
	if victim, vDirty, evicted := ts.llcs[cs.socket].Insert(block, a.Write); evicted {
		if ts.dir.Evict(socket, victim, vDirty) {
			victimPage := uint32(victim / workload.BlocksPerPage)
			vHome := socket
			if int(victimPage) < len(ts.pageHome) && ts.pageHome[victimPage] != Unassigned {
				vHome = ts.pageHome[victimPage]
			}
			// Fire-and-forget writeback of the dirty line.
			ts.sendPath(now, socket, vHome, ts.sys.DataBytes, func(sim.Time) {})
		}
	}

	homeIsPool := ts.topo.HasPool() && home == ts.topo.PoolNode()
	res := ts.dir.Access(socket, block, a.Write, homeIsPool)

	// Invalidations: state updates immediate, traffic asynchronous.
	for _, tgt := range res.Invalidate {
		ts.llcs[tgt].Invalidate(block)
		tgt := tgt
		ts.sendPath(now, home, tgt, ts.sys.MessageBytes, func(arr sim.Time) {
			ts.sendPath(arr, tgt, home, ts.sys.MessageBytes, func(sim.Time) {})
		})
	}
	// A write with a remote dirty owner is an RFO: the transfer itself
	// invalidates the owner's copy (no extra message needed).
	if a.Write && res.Owner >= 0 {
		ts.llcs[res.Owner].Invalidate(block)
	}

	// Tracker metadata traffic (annex flushes).
	if ts.chargeTracker {
		ts.annexCount[cs.socket]++
		if ts.annexCount[cs.socket]%annexFlushBatch == 0 {
			region := int(a.Page) / ts.cfg.RegionPages
			metaNode := topology.NodeID(region % ts.topo.Sockets())
			ts.sendPath(now, socket, metaNode, ts.sys.DataBytes, func(arr sim.Time) {
				ts.memAccess(arr, metaNode, addr, func(sim.Time) {})
			})
		}
	}

	complete := func(done sim.Time, at stats.AccessType) {
		fin := func(now2 sim.Time) {
			if record {
				ts.w.amat.Observe(at, now2-issued)
				ts.w.misses++
			}
			if ts.txnTrc != nil {
				ts.txnTrc.Record(issued, now2-issued, ts.lanes[socket], socket, home, res)
			}
			// Charge the miss's latency, divided by the core's MLP, as
			// serial stall on the core timeline: the standard additive
			// overlap model (1/IPC = 1/IPC₀ + missRate × L/MLP), which is
			// also what ZeroLoadIPC inverts.
			cs.compute += (now2 - issued) / sim.Time(ts.mlp)
			cs.outstanding--
			ts.tryIssue(cs)
		}
		if done > ts.eng.Now() {
			ts.eng.AtKind(done, "complete", fin)
		} else {
			fin(ts.eng.Now())
		}
	}

	switch res.Outcome {
	case coherence.Memory:
		at := ts.classify(socket, home)
		if home == socket {
			ts.memAccess(now, home, addr, func(done sim.Time) { complete(done, at) })
			return
		}
		ts.sendPath(now, socket, home, ts.sys.MessageBytes, func(arr sim.Time) {
			ts.memAccess(arr, home, addr, func(ready sim.Time) {
				ts.sendPath(ready, home, socket, ts.sys.DataBytes, func(done sim.Time) {
					complete(done, at)
				})
			})
		})
	case coherence.BlockTransfer3Hop:
		// R→H request, directory+memory access at H, H→O forward, O→R
		// data (Fig. 4's red path).
		owner := res.Owner
		ts.sendPath(now, socket, home, ts.sys.MessageBytes, func(arr sim.Time) {
			ts.memAccess(arr, home, addr, func(ready sim.Time) {
				ts.sendPath(ready, home, owner, ts.sys.MessageBytes, func(fwd sim.Time) {
					ts.sendPath(fwd, owner, socket, ts.sys.DataBytes, func(done sim.Time) {
						complete(done, stats.BTSocket)
					})
				})
			})
		})
	case coherence.BlockTransfer4Hop:
		owner := res.Owner
		poolN := ts.topo.PoolNode()
		if ts.cfg.ForceDirectBT {
			// Ablation: direct owner→requester transfer despite the pool
			// home — the path Fig. 4 shows to be slower on average.
			ts.sendPath(now, socket, poolN, ts.sys.MessageBytes, func(arr sim.Time) {
				ts.memAccess(arr, poolN, addr, func(ready sim.Time) {
					ts.sendPath(ready, poolN, owner, ts.sys.MessageBytes, func(fwd sim.Time) {
						ts.sendPath(fwd, owner, socket, ts.sys.DataBytes, func(done sim.Time) {
							complete(done, stats.BTSocket)
						})
					})
				})
			})
			return
		}
		// R→H(pool), directory at pool, H→O forward, O→H data, H→R data
		// (Fig. 4's blue path).
		ts.sendPath(now, socket, poolN, ts.sys.MessageBytes, func(arr sim.Time) {
			ts.memAccess(arr, poolN, addr, func(ready sim.Time) {
				ts.sendPath(ready, poolN, owner, ts.sys.MessageBytes, func(fwd sim.Time) {
					ts.sendPath(fwd, owner, poolN, ts.sys.DataBytes, func(back sim.Time) {
						ts.sendPath(back, poolN, socket, ts.sys.DataBytes, func(done sim.Time) {
							complete(done, stats.BTPool)
						})
					})
				})
			})
		})
	default:
		unknownOutcomePanic(res.Outcome)
	}
}

// unknownOutcomePanic reports an unhandled coherence outcome. Split out
// of issueAccessAfterWalk so the hot path keeps no fmt reference.
//
//starnuma:coldpath
func unknownOutcomePanic(o coherence.Outcome) {
	panic(fmt.Sprintf("core: unknown outcome %v", o))
}

// replicatedAccess services an access to a software-replicated page.
//
//starnuma:hotpath replica-read variant of issueAccess
func (ts *timingSystem) replicatedAccess(cs *coreState, a workload.Access,
	socket, home topology.NodeID, addr uint64, issued sim.Time, record bool) {
	now := ts.eng.Now()
	fin := func(done sim.Time, at stats.AccessType) {
		step := func(now2 sim.Time) {
			if record {
				ts.w.amat.Observe(at, now2-issued)
				ts.w.misses++
			}
			cs.compute += (now2 - issued) / sim.Time(ts.mlp)
			cs.outstanding--
			ts.tryIssue(cs)
		}
		if done > ts.eng.Now() {
			ts.eng.AtKind(done, "complete", step)
		} else {
			step(ts.eng.Now())
		}
	}
	if !a.Write {
		if record {
			ts.w.replicaReads++
		}
		ts.memAccess(now, socket, addr, func(done sim.Time) { fin(done, stats.Local) })
		return
	}
	// Store: software replica coherence. Broadcast invalidations to every
	// other socket, stall for the kernel-level penalty, then update the
	// page's home copy.
	if record {
		ts.w.replicaWriteStalls++
	}
	for s := 0; s < ts.topo.Sockets(); s++ {
		if topology.NodeID(s) == socket {
			continue
		}
		ts.sendPath(now, socket, topology.NodeID(s), ts.sys.MessageBytes, func(sim.Time) {})
	}
	penalty := ts.cfg.Replication.WritePenaltyCycles.Time(ts.cyclePS)
	at := ts.classify(socket, home)
	ts.eng.AtKind(now+penalty, "replica", func(start sim.Time) {
		if home == socket {
			ts.memAccess(start, home, addr, func(done sim.Time) { fin(done, at) })
			return
		}
		ts.sendPath(start, socket, home, ts.sys.MessageBytes, func(arr sim.Time) {
			ts.memAccess(arr, home, addr, func(ready sim.Time) {
				ts.sendPath(ready, home, socket, ts.sys.DataBytes, func(done sim.Time) {
					fin(done, at)
				})
			})
		})
	})
}

// classify maps a memory access to its Fig. 8c category.
//
//starnuma:hotpath per-access latency-class bucketing
func (ts *timingSystem) classify(socket, home topology.NodeID) stats.AccessType {
	switch {
	case home == socket:
		return stats.Local
	case ts.topo.HasPool() && home == ts.topo.PoolNode():
		return stats.Pool
	case ts.topo.Chassis(socket) == ts.topo.Chassis(home):
		return stats.OneHop
	default:
		return stats.TwoHop
	}
}

// unfinishedPanic reports cores left running after the event queue
// drained. Split out of runWindow so the hot path keeps no fmt
// reference.
//
//starnuma:coldpath
func unfinishedPanic(running, phase int) {
	panic(fmt.Sprintf("core: %d cores never finished window (phase %d)", running, phase))
}

// runWindow executes one checkpoint's timing simulation.
//
//starnuma:hotpath the step-C window timing simulation
func runWindow(sys SystemConfig, cfg SimConfig, gen AccessSource,
	chk Checkpoint, replicated []bool) windowStats {
	ts := newTimingSystem(sys, cfg, gen, chk, replicated)
	gen.ResetPhase(chk.Phase)
	ts.start(chk)
	ts.eng.Run()
	// Cores that never finished (possible only on malformed configs)
	// would leave running > 0; guard against silent nonsense.
	if ts.running != 0 {
		unfinishedPanic(ts.running, chk.Phase)
	}
	for _, cs := range ts.cores {
		ts.w.instr += cs.instr - cs.warmupInstr
	}
	ts.w.dir = ts.dir.Stats()
	if ts.tlbs != nil {
		ts.w.tlb = ts.tlbs.Stats()
	}
	for _, inj := range ts.injectors {
		st := inj.Stats()
		ts.w.faultDegraded += st.DegradedSends
		ts.w.faultRetries += st.FlapRetries
		ts.w.faultRetryPS += st.RetryTime
	}
	if ts.met != nil {
		ts.harvest(chk.Phase)
		ts.w.met = ts.met.Snapshot()
	}
	if ts.w.trc != nil {
		// The whole window as one span on the "sim" lane, recorded last
		// so its duration is the settled window length.
		ts.w.trc.SpanArgs("window", "window "+strconv.Itoa(chk.Phase), "sim", 0, ts.w.simTime,
			evtrace.Arg{Key: "phase", Val: strconv.Itoa(chk.Phase)},
			evtrace.Arg{Key: "migrations", Val: strconv.Itoa(ts.w.migrModeled)})
	}
	return ts.w
}
