package core

import (
	"sync"

	"starnuma/internal/migrate"
	"starnuma/internal/topology"
	"starnuma/internal/tracker"
)

// Step-B ingest memoization.
//
// Experiment sweeps run TraceSimulate once per variant — per migration
// policy, fault plan, or system knob — over the same recorded phase
// streams. The ingest products of one phase are variant-independent:
//
//   - The tracker and the per-phase PageCounts are reset before every
//     ingest, so their end-of-phase contents are a pure function of the
//     stream, the tracker shape, and the core→socket map — all folded
//     into the stream signature and the key fields below. Even the
//     tracker's cumulative record/flush counters are variant-independent,
//     because the number of Record calls per phase is fixed by the
//     stream.
//   - First-touch assignments only fire on Unassigned pages, and no
//     policy action can un-assign a page (migrations and drains move
//     pages the tracker saw, which are by definition already touched),
//     so the set of pages first-touched in phase k — and the socket each
//     lands on — is the same for every variant.
//
// The memo therefore captures, per (stream, phase, tracker shape,
// placement mode): the tracker and counts snapshots plus the first-touch
// (page, home) list. A hit replays all three by array copy instead of
// re-walking ~10^6 recorded accesses. The software-sampling path is
// excluded — the Sampler's per-phase fault set feeds step C's timing and
// is cheaper to recompute than to snapshot coherently.

// ingestKey identifies one memoized phase ingest. sig is the workload
// stream signature (spec, system shape, per-core budget — see
// workload.Generator.StreamSig); the remaining fields pin the tracker
// shape and the initial-placement mode, which change the ingest products
// for the same stream.
type ingestKey struct {
	sig         string
	phase       int
	kind        tracker.Kind
	regionPages int
	striped     bool
}

type ingestEntry struct {
	tbl *tracker.TableState
	pc  *migrate.PageCountsState
	// The phase's first-touch assignments, in stream order. Empty under
	// striped placement (nothing is ever Unassigned).
	firstPages []uint32
	firstHomes []topology.NodeID
	lastUse    int64
}

func (e *ingestEntry) bytes() int64 {
	return e.tbl.Bytes() + e.pc.Bytes() +
		int64(len(e.firstPages))*4 + int64(len(e.firstHomes))*8
}

// ingestCacheCap bounds memoized ingest bytes. Entries are a few MB
// each (dominated by the PageCounts snapshot, pages × sockets counters)
// and one is kept per (workload, shape, phase), so the cap comfortably
// holds a full sweep's working set; least-recently-used entries are
// dropped past it.
const ingestCacheCap = 2 << 30

var ingestCache struct {
	sync.Mutex
	entries map[ingestKey]*ingestEntry
	total   int64
	tick    int64
}

// lookupIngest returns the memoized ingest for key, or nil.
func lookupIngest(key ingestKey) *ingestEntry {
	c := &ingestCache
	c.Lock()
	defer c.Unlock()
	e := c.entries[key]
	if e == nil {
		return nil
	}
	c.tick++
	e.lastUse = c.tick
	return e
}

// storeIngest inserts e, evicting least-recently-used entries to stay
// under the byte cap. Oversized entries are simply not cached.
func storeIngest(key ingestKey, e *ingestEntry) {
	sz := e.bytes()
	if sz > ingestCacheCap {
		return
	}
	c := &ingestCache
	c.Lock()
	defer c.Unlock()
	if c.entries == nil {
		c.entries = make(map[ingestKey]*ingestEntry)
	}
	if _, dup := c.entries[key]; dup {
		return // lost a race; keep the resident copy
	}
	for c.total+sz > ingestCacheCap && len(c.entries) > 0 {
		var victim ingestKey
		oldest := int64(1<<63 - 1)
		for k, old := range c.entries {
			if old.lastUse < oldest {
				oldest, victim = old.lastUse, k
			}
		}
		c.total -= c.entries[victim].bytes()
		delete(c.entries, victim)
	}
	c.tick++
	e.lastUse = c.tick
	c.entries[key] = e
	c.total += sz
}
