package core

import (
	"fmt"
	"math"

	"starnuma/internal/attrib"
	"starnuma/internal/evtrace"
	"starnuma/internal/metrics"
	"starnuma/internal/stats"
	"starnuma/internal/topology"
	"starnuma/internal/workload"
)

// Plan is the prepared execution of one workload on one system: the
// validated configuration plus step B's trace-simulation output. It
// splits the pipeline so step C's timing windows — which are independent
// of one another once the checkpoints exist — can be executed in any
// order, including concurrently (internal/runner). A Plan is immutable
// after NewPlan and safe for concurrent RunWindow calls as long as each
// call gets its own AccessSource.
type Plan struct {
	sys  SystemConfig
	cfg  SimConfig
	spec workload.Spec
	tr   *TraceResult
}

// NewPlan validates the configuration and runs step B (trace simulation
// with migration decisions), consuming gen. The returned plan holds one
// checkpoint per phase, each describing an independent step-C window.
func NewPlan(sys SystemConfig, cfg SimConfig, gen AccessSource) (*Plan, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo := topology.New(sys.Topology)
	if want := topo.Sockets() * sys.CoresPerSocket; gen.NumCores() != want {
		return nil, fmt.Errorf("core: source has %d cores, system needs %d", gen.NumCores(), want)
	}
	spec := gen.Spec()
	tr, err := TraceSimulate(sys, cfg, gen)
	if err != nil {
		return nil, err
	}
	if cfg.StaticOracle {
		applyStaticOracle(tr, sys, gen, int64(spec.Seed))
	}
	if tr.ReplModel != nil {
		// The policy selected the replica set; carry its timing model
		// (write penalty) into the step-C windows.
		cfg.Replication = *tr.ReplModel
	}
	return &Plan{sys: sys, cfg: cfg, spec: spec, tr: tr}, nil
}

// NumWindows returns the number of step-C timing windows (one per
// checkpoint).
func (p *Plan) NumWindows() int { return len(p.tr.Checkpoints) }

// Checkpoint returns the i-th checkpoint.
func (p *Plan) Checkpoint(i int) Checkpoint { return p.tr.Checkpoints[i] }

// Trace returns step B's full output.
func (p *Plan) Trace() *TraceResult { return p.tr }

// Window is one step-C timing window's measurements, produced by
// RunWindow and folded into a Result by MergeWindow. It is opaque: the
// accumulation rules live in core, callers only route windows around.
type Window struct {
	stats windowStats
}

// RunWindow executes the i-th checkpoint's timing window. gen must
// replay the same per-core streams as the source the plan was built
// from; a fresh generator built from the same spec is equivalent, since
// streams are pure functions of (seed, core, phase) — that purity is
// what lets concurrent windows each own a private source.
//
//starnuma:hotpath step-C entry point, one call per (window, worker)
func (p *Plan) RunWindow(i int, gen AccessSource) Window {
	return Window{stats: runWindow(p.sys, p.cfg, gen, p.tr.Checkpoints[i], p.tr.Replicated)}
}

// NewResult initialises the aggregate result: header fields, step-B
// summaries, and the AMAT accumulator with the plan's unloaded-latency
// constants. Windows are then folded in with MergeWindow.
func (p *Plan) NewResult() *Result {
	res := &Result{
		Workload:       p.spec.Name,
		Policy:         p.cfg.Policy,
		Tracker:        p.cfg.Tracker.String(),
		AMAT:           stats.NewAMAT(),
		MigrStats:      p.tr.MigrStats,
		TrackerFlushes: p.tr.TrackerFlushes,
		Metrics:        p.tr.Metrics.Clone(),

		FaultDrainedPages: p.tr.DrainedPages,
	}
	if p.cfg.Trace {
		res.Trace = evtrace.NewBuffer()
	}
	topo := topology.New(p.sys.Topology)
	if p.cfg.Attrib {
		res.Profile = attrib.NewProfile(topo.Sockets())
	}
	res.AMAT.SetUnloadedLatencies(unloadedLatencies(topo,
		p.sys.SocketMem.OnChip+p.sys.SocketMem.DRAMLatency))
	return res
}

// MergeWindow folds one window's measurements into r. All counters are
// integer sums, so merging is commutative except for the per-core IPC
// samples, whose float mean is order-sensitive: merge windows in
// checkpoint order to get bit-identical aggregates regardless of how
// the windows were executed.
//
//starnuma:hotpath one call per finished window on the merge goroutine
func (r *Result) MergeWindow(w Window) {
	r.AMAT.Merge(w.stats.amat)
	//starnumavet:allow hotalloc once per merged window, amortized over the run
	r.ipcs = append(r.ipcs, w.stats.ipcs...)
	r.Instructions += w.stats.instr
	r.Misses += w.stats.misses
	r.Dir.Transactions += w.stats.dir.Transactions
	r.Dir.BT3Hop += w.stats.dir.BT3Hop
	r.Dir.BT4Hop += w.stats.dir.BT4Hop
	r.Dir.Invalidations += w.stats.dir.Invalidations
	r.MigrStalledAccesses += w.stats.migrStalled
	r.SimulatedTime += w.stats.simTime
	r.TLB.Hits += w.stats.tlb.Hits
	r.TLB.Walks += w.stats.tlb.Walks
	r.TLB.ShootdownWalks += w.stats.tlb.ShootdownWalks
	r.TLB.Shootdowns += w.stats.tlb.Shootdowns
	r.TLB.ShootdownTargets += w.stats.tlb.ShootdownTargets
	r.ReplicaReads += w.stats.replicaReads
	r.ReplicaWriteStalls += w.stats.replicaWriteStalls
	r.PageFaults += w.stats.pageFaults
	r.FaultDegradedSends += w.stats.faultDegraded
	r.FaultFlapRetries += w.stats.faultRetries
	if r.Profile != nil && w.stats.prof != nil {
		r.Profile.Append(*w.stats.prof)
	}
	if w.stats.met != nil {
		if r.Metrics == nil {
			r.Metrics = &metrics.Snapshot{} //starnumavet:allow hotalloc one allocation per Result, on the first instrumented window
		}
		r.Metrics.Merge(w.stats.met)
	}
	if r.Trace != nil {
		// Windows each simulate from their own t=0; shifting by the
		// cumulative simulated time lays them end to end. The recorded
		// start offsets later anchor step B's phase-clock events.
		if w.stats.trc != nil {
			w.stats.trc.Shift(r.traceOff)
			r.Trace.Append(w.stats.trc)
		}
		//starnumavet:allow hotalloc once per traced window, amortized over the run
		r.windowOffsets = append(r.windowOffsets, r.traceOff)
		r.traceOff += w.stats.simTime
	}
}

// Assemble merges the windows in slice order and computes the derived
// aggregates (IPC, MPKI, replication and pool placement counts). Pass
// windows indexed by checkpoint for the deterministic ordering contract
// of MergeWindow. A degenerate run with no windows (or windows that
// retired nothing) yields zero aggregates, never NaN.
func (p *Plan) Assemble(windows []Window) *Result {
	res := p.NewResult()
	for _, w := range windows {
		res.MergeWindow(w)
	}
	if res.Trace != nil && p.tr.Trace != nil {
		res.Trace.Append(translateStepB(p.tr.Trace, res.windowOffsets, res.traceOff))
	}
	res.IPC = stats.Mean(res.ipcs)
	if math.IsNaN(res.IPC) || math.IsInf(res.IPC, 0) {
		res.IPC = 0
	}
	if res.Instructions > 0 {
		res.MPKI = float64(res.Misses) / float64(res.Instructions) * 1000
	}
	for _, rep := range p.tr.Replicated {
		if rep {
			res.ReplicatedPages++
		}
	}
	topo := topology.New(p.sys.Topology)
	if topo.HasPool() {
		for _, h := range p.tr.FinalHome {
			if h == topo.PoolNode() {
				res.PoolPages++
			}
		}
	}
	return res
}
