// Package core assembles the full StarNUMA evaluation system and runs
// the paper's three-step methodology (§IV):
//
//	step A — synthetic workload streams (internal/workload) stand in for
//	         the Pin traces;
//	step B — a trace-only simulation makes per-phase migration decisions
//	         and emits checkpoints (page map + migration list);
//	step C — a discrete-event timing simulation of each checkpoint
//	         measures IPC, AMAT and the access breakdown, which are
//	         aggregated across checkpoints.
//
// Everything in this package is bound by the determinism contract: a
// Result is a pure function of (SystemConfig, SimConfig, workload spec,
// seed). Step-C windows are independent and may run concurrently on
// any worker count, but each must produce bit-identical windowStats
// regardless of scheduling — which is why window state lives in pooled
// scratches that reset to a fresh-built state, why the event queue
// orders ties by sequence number, and why no code here may consult the
// wall clock, environment, or map iteration order (starnumavet
// enforces the mechanical parts).
package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"starnuma/internal/fault"
	"starnuma/internal/link"
	"starnuma/internal/memdev"
	"starnuma/internal/migrate"
	"starnuma/internal/pool"
	"starnuma/internal/sim"
	"starnuma/internal/topology"
	"starnuma/internal/tracker"
)

// PolicySpec selects the step-B migration policy by registry name
// (internal/migrate's policy registry) plus optional parameter
// overrides. It replaces the closed PolicyKind enum: any registered
// policy is selectable by name, and its descriptor-declared parameters
// are overridable per run. The zero value selects the default StarNUMA
// policy.
type PolicySpec struct {
	// Name is the registry name ("starnuma", "oracle", ...); empty means
	// "starnuma".
	Name string
	// Params overrides descriptor-declared parameters by name.
	Params migrate.Params
}

// Legacy policy selectors, preserved as values so existing call sites
// (and their meaning) are unchanged by the registry redesign.
var (
	// PolicyStarNUMA runs Algorithm 1 over the region tracker.
	PolicyStarNUMA = PolicySpec{Name: "starnuma"}
	// PolicyPerfectBaseline runs the paper's favoured baseline: zero-cost
	// perfect per-page knowledge, migrations between sockets only.
	PolicyPerfectBaseline = PolicySpec{Name: "baseline-perfect"}
	// PolicyNone performs no dynamic migration (static placement
	// studies).
	PolicyNone = PolicySpec{Name: "none"}
)

// CanonicalName resolves the empty name to the default policy.
func (p PolicySpec) CanonicalName() string {
	if p.Name == "" {
		return "starnuma"
	}
	return p.Name
}

// String names the policy (reports, manifests).
func (p PolicySpec) String() string { return p.CanonicalName() }

// Is reports whether the spec selects the named policy.
func (p PolicySpec) Is(name string) bool { return p.CanonicalName() == name }

// Tag returns a short identity string for variant/memo naming: the
// canonical name, suffixed with a content hash of the parameter
// overrides when present.
func (p PolicySpec) Tag() string {
	if len(p.Params) == 0 {
		return p.CanonicalName()
	}
	b, _ := json.Marshal(p.Params) // map[string]float64 cannot fail
	sum := sha256.Sum256(b)
	return p.CanonicalName() + "-" + hex.EncodeToString(sum[:])[:8]
}

// legacyPolicyCodes maps the retired PolicyKind enum's integer JSON
// values to registry names. The three legacy policies still marshal as
// these integers so pre-redesign SimConfig JSON — and therefore every
// content-hashed result-cache key — stays byte-identical.
var legacyPolicyCodes = [...]string{"starnuma", "baseline-perfect", "none"}

// MarshalJSON emits the legacy integer for the three original policies
// (parameterless), the bare name string for other parameterless
// policies, and a {"name", "params"} object otherwise. It encodes the
// raw name — not the canonical one — so decode(encode(p)) == p for
// every value UnmarshalJSON can produce, including the zero spec (the
// result cache's fuzz round-trip contract).
func (p PolicySpec) MarshalJSON() ([]byte, error) {
	if len(p.Params) == 0 {
		for code, legacy := range legacyPolicyCodes {
			if p.Name == legacy {
				return json.Marshal(code)
			}
		}
		return json.Marshal(p.Name)
	}
	return json.Marshal(struct {
		Name   string         `json:"name"`
		Params migrate.Params `json:"params,omitempty"`
	}{p.Name, p.Params})
}

// UnmarshalJSON accepts all three forms MarshalJSON emits, so legacy
// PolicyKind integers keep decoding.
func (p *PolicySpec) UnmarshalJSON(b []byte) error {
	t := bytes.TrimSpace(b)
	if len(t) == 0 {
		return fmt.Errorf("core: empty policy")
	}
	switch t[0] {
	case '"':
		var name string
		if err := json.Unmarshal(t, &name); err != nil {
			return fmt.Errorf("core: policy: %w", err)
		}
		*p = PolicySpec{Name: name}
		return nil
	case '{':
		var obj struct {
			Name   string         `json:"name"`
			Params migrate.Params `json:"params"`
		}
		if err := json.Unmarshal(t, &obj); err != nil {
			return fmt.Errorf("core: policy: %w", err)
		}
		if len(obj.Params) == 0 {
			obj.Params = nil // normalize so re-encoding round-trips
		}
		*p = PolicySpec{Name: obj.Name, Params: obj.Params}
		return nil
	default:
		var code int
		if err := json.Unmarshal(t, &code); err != nil {
			return fmt.Errorf("core: policy: %w", err)
		}
		if code < 0 || code >= len(legacyPolicyCodes) {
			return fmt.Errorf("core: unknown legacy policy code %d", code)
		}
		*p = PolicySpec{Name: legacyPolicyCodes[code]}
		return nil
	}
}

// SystemConfig describes the hardware being simulated.
type SystemConfig struct {
	Topology topology.Config

	// Link bandwidths per direction (Table II scaled values).
	UPIBandwidth  link.GBps
	NUMABandwidth link.GBps

	// Pool describes the CXL MHD (bandwidth, latency budget, capacity
	// fraction); only used when Topology.HasPool.
	Pool pool.Config

	// SocketMem and PoolMem size each node's memory subsystem.
	SocketMem memdev.Config
	PoolMem   memdev.Config

	// LLCBytes/LLCWays size the per-socket LLC presence model.
	LLCBytes int64
	LLCWays  int

	CoresPerSocket int
	ClockGHz       float64

	// MessageBytes/DataBytes size request and data messages.
	MessageBytes int
	DataBytes    int
}

// BaselineSystem returns the paper's scaled 16-socket baseline
// (Table II): no pool.
func BaselineSystem() SystemConfig {
	topo := topology.DefaultConfig()
	topo.HasPool = false
	return SystemConfig{
		Topology:       topo,
		UPIBandwidth:   3,
		NUMABandwidth:  3,
		Pool:           pool.DefaultConfig(),
		SocketMem:      memdev.DefaultSocketConfig(),
		PoolMem:        memdev.DefaultPoolConfig(),
		LLCBytes:       8 << 20, // 2MB/core x 4 cores
		LLCWays:        16,
		CoresPerSocket: 4,
		ClockGHz:       2.4,
		MessageBytes:   16,
		DataBytes:      72, // 64B line + header
	}
}

// StarNUMASystem returns the baseline augmented with the CXL pool.
func StarNUMASystem() SystemConfig {
	s := BaselineSystem()
	s.Topology.HasPool = true
	s.Topology.CXLOneWay = s.Pool.Latency.OneWay()
	return s
}

// SingleSocketSystem returns a one-socket system (Table III's
// parenthesised IPC column): all memory local, no interconnect.
func SingleSocketSystem() SystemConfig {
	s := BaselineSystem()
	s.Topology.Sockets = 1
	s.Topology.SocketsPerChassis = 1
	return s
}

// Validate reports configuration errors.
func (c SystemConfig) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if c.Topology.HasPool {
		if err := c.Pool.Validate(); err != nil {
			return err
		}
	}
	if c.UPIBandwidth < 0 || c.NUMABandwidth < 0 {
		return fmt.Errorf("core: negative link bandwidth")
	}
	if c.LLCBytes <= 0 || c.LLCWays <= 0 {
		return fmt.Errorf("core: invalid LLC geometry %d/%d", c.LLCBytes, c.LLCWays)
	}
	if c.CoresPerSocket <= 0 {
		return fmt.Errorf("core: %d cores per socket", c.CoresPerSocket)
	}
	if c.ClockGHz <= 0 {
		return fmt.Errorf("core: clock %v GHz", c.ClockGHz)
	}
	if c.MessageBytes <= 0 || c.DataBytes <= 0 {
		return fmt.Errorf("core: invalid message sizes %d/%d", c.MessageBytes, c.DataBytes)
	}
	return nil
}

// CyclePS returns the core clock period in picoseconds.
func (c SystemConfig) CyclePS() float64 { return 1000 / c.ClockGHz }

// SimConfig describes the methodology parameters (phases, window sizes,
// migration policy).
type SimConfig struct {
	// Phases is the number of 1-phase checkpoints simulated (paper: 5-10).
	Phases int
	// PhaseInstr is the per-core instruction length of a phase in step B
	// (paper: 1B, scaled here).
	PhaseInstr uint64
	// TimedInstr is the per-core instruction budget of each step-C timing
	// window (paper: 100M per 1B phase — 10%).
	TimedInstr uint64
	// WarmupInstr is the per-core warm-up inside each window whose
	// accesses do not count toward statistics (paper: 10-20M).
	WarmupInstr uint64

	// RegionPages is the migration/tracking granularity (paper: 128
	// 4KB pages = 512KB, scaled down with footprints).
	RegionPages int
	// Tracker selects T16 or T0.
	Tracker tracker.Kind
	// Policy selects the migration policy from internal/migrate's
	// registry, by name plus optional parameter overrides. Content-hashed
	// into the runner's cache key (legacy policies keep their original
	// integer encoding, so old keys stay valid).
	Policy PolicySpec
	// Migration parameterises Algorithm 1.
	Migration migrate.Config
	// BaselineMigrationLimit caps the perfect baseline's moves per phase.
	BaselineMigrationLimit int

	// StaticOracle replaces first-touch + dynamic migration with
	// whole-run oracular placement (§V-B). Forces PolicyNone behaviour.
	StaticOracle bool

	// MigrationCostCycles is the per-page cost on the migration-
	// initiating core (hardware-assisted TLB shootdown, §IV-C: 3k
	// cycles).
	MigrationCostCycles sim.Cycles

	// Replication enables the §V-F study: replicate hot, widely-shared,
	// read-mostly pages into every socket instead of (or alongside)
	// pooling them.
	Replication migrate.ReplicationConfig

	// ForceDirectBT ablates Fig. 4's design point: block transfers whose
	// home is the pool are forced onto the direct owner→requester path
	// instead of the (counter-intuitively faster) 4-hop pool path.
	ForceDirectBT bool
	// StripedPlacement replaces first-touch initial placement with
	// round-robin page striping across sockets (ablation).
	StripedPlacement bool

	// SoftwareTracking replaces the hardware tracker with conventional
	// OS page-poisoning sampling (§III-D1): only a sampled fraction of
	// regions is monitored per phase, and the first access to each
	// sampled page pays a minor page fault. Used to reproduce the
	// paper's motivation for hardware tracking support.
	SoftwareTracking SoftwareTrackingConfig

	// CollectMetrics enables the instrumentation registry
	// (internal/metrics): scheduler, link, memory, cache, coherence,
	// TLB and migration counters harvested per phase and attached to
	// Result.Metrics. Collection is passive — simulation results are
	// bit-identical with it on or off — but it costs time and memory,
	// so it is off by default.
	CollectMetrics bool

	// Faults is the fault-injection plan (internal/fault): link
	// degradation, CXL port flaps and pool-channel failures scheduled at
	// simulated phases/times. nil (or an empty plan) injects nothing and
	// simulates bit-identically to a fault-free run. The plan is part of
	// the config, so it content-hashes into the runner's cache key.
	Faults *fault.Plan

	// Trace enables the event-trace recorder (internal/evtrace):
	// checkpoint-window spans, migration decisions, TLB-shootdown
	// stalls, sampled coherence transactions and fault-adjusted link
	// sends, assembled into Chrome trace_event JSON by the exp/cmd
	// layer. Recording is passive — results are bit-identical with it
	// on or off — and the field is excluded from JSON so enabling it
	// does not change the runner's content-addressed cache key (cached
	// results carry no trace, so the CLI disables the cache when
	// tracing).
	Trace bool `json:"-"`

	// Attrib enables the stall-attribution ledger (internal/attrib):
	// every recorded demand access's latency is decomposed into integer
	// segments charged per window × socket × category, snapshotted into
	// Result.Profile. Attribution is passive — timing and results are
	// bit-identical with it on or off — and the field is omitted from
	// JSON when false, so attribution-off runs keep their existing
	// content-addressed cache keys while attribution-on runs (whose
	// results carry a profile) hash to distinct keys and cache the
	// profile alongside the rest of the Result.
	Attrib bool `json:",omitempty"`

	// ModelTLB enables the translation subsystem: per-core TLBs, the
	// shared TLB directory for targeted shootdowns (§III-D3), and
	// page-walk penalties for shootdown-invalidated translations.
	ModelTLB bool
	// PageWalkPenalty is the latency charged for a shootdown-induced
	// page walk (§IV-C: "TLB misses trigger page walks").
	PageWalkPenalty sim.Time
}

// SoftwareTrackingConfig parameterises the software sampling study.
type SoftwareTrackingConfig struct {
	Enable bool
	// SampleFrac is the fraction of regions poisoned per phase.
	SampleFrac float64
	// FaultPenaltyCycles is the minor-page-fault cost charged to the
	// faulting core ("several thousand cycles", §III-D3).
	FaultPenaltyCycles sim.Cycles
}

// DefaultSoftwareTracking returns a typical OS sampling configuration:
// 5% of regions per phase at 3000 cycles per minor fault.
func DefaultSoftwareTracking() SoftwareTrackingConfig {
	return SoftwareTrackingConfig{SampleFrac: 0.05, FaultPenaltyCycles: 3000}
}

// DefaultSim returns the default methodology scaling (DESIGN.md §4).
func DefaultSim() SimConfig {
	return SimConfig{
		Phases:                 8,
		PhaseInstr:             4_000_000,
		TimedInstr:             400_000,
		WarmupInstr:            40_000,
		RegionPages:            32,
		Tracker:                tracker.T16,
		Policy:                 PolicyStarNUMA,
		Migration:              migrate.AutoConfig(),
		BaselineMigrationLimit: 8192,
		MigrationCostCycles:    3000,
		ModelTLB:               true,
		PageWalkPenalty:        100 * sim.Nanosecond,
	}
}

// QuickSim returns a smaller configuration for tests and benches.
func QuickSim() SimConfig {
	c := DefaultSim()
	c.Phases = 4
	c.PhaseInstr = 1_000_000
	c.TimedInstr = 100_000
	c.WarmupInstr = 10_000
	c.Migration.MigrationLimit = 4096
	return c
}

// Validate reports configuration errors.
func (c SimConfig) Validate() error {
	if c.Phases <= 0 {
		return fmt.Errorf("core: %d phases", c.Phases)
	}
	if c.PhaseInstr == 0 || c.TimedInstr == 0 {
		return fmt.Errorf("core: zero-length phase or window")
	}
	if c.TimedInstr > c.PhaseInstr {
		return fmt.Errorf("core: timed window %d exceeds phase %d", c.TimedInstr, c.PhaseInstr)
	}
	if c.WarmupInstr >= c.TimedInstr {
		return fmt.Errorf("core: warmup %d not inside window %d", c.WarmupInstr, c.TimedInstr)
	}
	if c.RegionPages <= 0 {
		return fmt.Errorf("core: region pages %d", c.RegionPages)
	}
	if err := migrate.CheckParams(c.Policy.CanonicalName(), c.Policy.Params); err != nil {
		return fmt.Errorf("core: policy: %w", err)
	}
	if c.MigrationCostCycles < 0 {
		return fmt.Errorf("core: negative migration cost")
	}
	if c.PageWalkPenalty < 0 {
		return fmt.Errorf("core: negative page walk penalty")
	}
	if err := c.Replication.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.SoftwareTracking.Enable {
		if c.SoftwareTracking.SampleFrac <= 0 || c.SoftwareTracking.SampleFrac > 1 {
			return fmt.Errorf("core: software tracking sample fraction %v", c.SoftwareTracking.SampleFrac)
		}
		if c.SoftwareTracking.FaultPenaltyCycles < 0 {
			return fmt.Errorf("core: negative fault penalty")
		}
	}
	return nil
}

// Unassigned marks a page that has not yet been first-touched.
const Unassigned topology.NodeID = -1

// gapTime converts an instruction gap into compute time at the
// workload's zero-load IPC.
func gapTime(gap uint32, ipc0, cyclePS float64) sim.Time {
	return sim.Time(float64(gap)*cyclePS/ipc0 + 0.5)
}
