package core

import (
	"testing"

	"starnuma/internal/migrate"
	"starnuma/internal/sim"
	"starnuma/internal/stats"
	"starnuma/internal/topology"
	"starnuma/internal/workload"
)

// fakeSource is a hand-crafted AccessSource: every core repeatedly
// accesses one fixed page with a fixed gap, giving white-box control
// over the timing window's traffic.
type fakeSource struct {
	spec       workload.Spec
	cores      int
	perSocket  int
	pages      int
	pageFor    func(core int) uint32
	writeEvery int // every Nth access is a store (0 = never)
	n          []int
}

func newFakeSource(pages int, pageFor func(int) uint32) *fakeSource {
	return &fakeSource{
		spec: workload.Spec{
			Name: "fake", SingleSocketIPC: 1, MPKI: 10, MLP: 2,
			FootprintPages: pages,
			Classes: []workload.PageClass{{
				Name: "all", PageShare: 1, AccessShare: 1, MinSharers: 1, MaxSharers: 1,
			}},
		},
		cores:     64,
		perSocket: 4,
		pages:     pages,
		pageFor:   pageFor,
		n:         make([]int, 64),
	}
}

func (f *fakeSource) Next(core int) workload.Access {
	f.n[core]++
	write := f.writeEvery > 0 && f.n[core]%f.writeEvery == 0
	// Stagger blocks per core so reads and writes of a block interleave
	// across sockets (lockstep identical streams would never leave clean
	// sharers for a write to invalidate).
	return workload.Access{
		Gap:   100,
		Page:  f.pageFor(core),
		Block: uint16((f.n[core] + 7*core) % workload.BlocksPerPage),
		Write: write,
	}
}
func (f *fakeSource) ResetPhase(int)      { f.n = make([]int, f.cores) }
func (f *fakeSource) NumPages() int       { return f.pages }
func (f *fakeSource) NumCores() int       { return f.cores }
func (f *fakeSource) SocketOf(c int) int  { return c / f.perSocket }
func (f *fakeSource) Spec() workload.Spec { return f.spec }

// windowSim is a minimal sim config for single-window tests.
func windowSim() SimConfig {
	c := DefaultSim()
	c.Phases = 1
	c.PhaseInstr = 50_000
	c.TimedInstr = 5_000
	c.WarmupInstr = 500
	c.Policy = PolicyNone
	return c
}

// homes builds a page map with every page on the given node.
func homesAll(pages int, node topology.NodeID) []topology.NodeID {
	out := make([]topology.NodeID, pages)
	for i := range out {
		out[i] = node
	}
	return out
}

func TestWindowAllLocal(t *testing.T) {
	// Each socket's cores access a page homed on that socket.
	src := newFakeSource(16, func(core int) uint32 { return uint32(core / 4) })
	home := make([]topology.NodeID, 16)
	for i := range home {
		home[i] = topology.NodeID(i)
	}
	w := runWindow(BaselineSystem(), windowSim(), src, Checkpoint{PageHome: home}, nil)
	fr := w.amat.Breakdown().Fractions()
	if fr[stats.Local] != 1 {
		t.Fatalf("local fraction = %v", fr[stats.Local])
	}
	if m := w.amat.Measured(); m < 80*sim.Nanosecond || m > 110*sim.Nanosecond {
		t.Fatalf("local AMAT = %v, want ~80ns", m)
	}
}

func TestWindowAllTwoHop(t *testing.T) {
	// Socket 0's cores access a page homed in another chassis; read-only
	// so no block transfers interfere.
	src := newFakeSource(16, func(core int) uint32 { return uint32(core/4) ^ 0xF })
	home := make([]topology.NodeID, 16)
	for i := range home {
		home[i] = topology.NodeID(i) // page p lives on socket p
	}
	w := runWindow(BaselineSystem(), windowSim(), src, Checkpoint{PageHome: home}, nil)
	fr := w.amat.Breakdown().Fractions()
	if fr[stats.TwoHop] != 1 {
		t.Fatalf("two-hop fraction = %v (breakdown %v)", fr[stats.TwoHop], fr)
	}
	if m := w.amat.Measured(); m < 360*sim.Nanosecond {
		t.Fatalf("2-hop AMAT = %v, want >= 360ns", m)
	}
}

func TestWindowAllPool(t *testing.T) {
	src := newFakeSource(16, func(core int) uint32 { return uint32(core % 16) })
	sys := StarNUMASystem()
	topo := topology.New(sys.Topology)
	w := runWindow(sys, windowSim(), src, Checkpoint{PageHome: homesAll(16, topo.PoolNode())}, nil)
	fr := w.amat.Breakdown().Fractions()
	if fr[stats.Pool] != 1 {
		t.Fatalf("pool fraction = %v", fr[stats.Pool])
	}
	if m := w.amat.Measured(); m < 180*sim.Nanosecond || m > 260*sim.Nanosecond {
		t.Fatalf("pool AMAT = %v, want ~180ns + mild queuing", m)
	}
}

func TestWindowWriteSharingTriggersBlockTransfers(t *testing.T) {
	// All cores read-write one hot page: dirty ownership bounces between
	// sockets, so block transfers must appear.
	src := newFakeSource(16, func(core int) uint32 { return 0 })
	src.writeEvery = 4
	w := runWindow(BaselineSystem(), windowSim(), src, Checkpoint{PageHome: homesAll(16, 3)}, nil)
	bd := w.amat.Breakdown()
	if bd[stats.BTSocket] == 0 {
		t.Fatalf("no socket block transfers: %v", bd)
	}
	if w.dir.Invalidations == 0 {
		t.Fatal("no invalidations despite write sharing")
	}
}

func TestWindowPoolHomeBlockTransfersUse4Hop(t *testing.T) {
	src := newFakeSource(16, func(core int) uint32 { return 0 })
	src.writeEvery = 4
	sys := StarNUMASystem()
	topo := topology.New(sys.Topology)
	w := runWindow(sys, windowSim(), src, Checkpoint{PageHome: homesAll(16, topo.PoolNode())}, nil)
	bd := w.amat.Breakdown()
	if bd[stats.BTPool] == 0 {
		t.Fatalf("no 4-hop transfers with pool home: %v", bd)
	}
	if bd[stats.BTSocket] != 0 {
		t.Fatalf("3-hop transfers with pool home: %v", bd)
	}
}

func TestWindowMigrationStallsAndRehomes(t *testing.T) {
	// All cores hammer page 0, which migrates from socket 15 to socket 0
	// at window start. Accesses caught mid-flight stall.
	src := newFakeSource(16, func(core int) uint32 { return 0 })
	chk := Checkpoint{
		PageHome:   homesAll(16, 15),
		Migrations: []migrate.Migration{{Page: 0, From: 15, To: 0}},
	}
	cfg := windowSim()
	// The full phase's migrations must be modelled in-window.
	cfg.TimedInstr = cfg.PhaseInstr
	w := runWindow(BaselineSystem(), cfg, src, chk, nil)
	if w.migrModeled != 1 {
		t.Fatalf("migrations modelled = %d", w.migrModeled)
	}
	// After migration, socket 0's accesses are local: breakdown must mix
	// local (socket 0 cores) and remote types.
	bd := w.amat.Breakdown()
	if bd[stats.Local] == 0 {
		t.Fatalf("no local accesses after migration: %v", bd)
	}
}

func TestWindowFractionalMigrationModeling(t *testing.T) {
	// With TimedInstr = 10% of PhaseInstr, only 10% of migrations are
	// modelled in the window (§IV-C); the rest apply instantly.
	src := newFakeSource(64, func(core int) uint32 { return uint32(core) })
	var migs []migrate.Migration
	for p := uint32(0); p < 20; p++ {
		migs = append(migs, migrate.Migration{Page: p, From: 15, To: 0})
	}
	cfg := windowSim()
	cfg.PhaseInstr = 50_000
	cfg.TimedInstr = 5_000
	w := runWindow(BaselineSystem(), cfg, src, Checkpoint{
		PageHome:   homesAll(64, 15),
		Migrations: migs,
	}, nil)
	if w.migrModeled != 2 { // 10% of 20
		t.Fatalf("migrations modelled = %d, want 2", w.migrModeled)
	}
}

func TestWindowFirstTouchInWindow(t *testing.T) {
	// Unassigned pages claimed in-window become local to the toucher.
	src := newFakeSource(16, func(core int) uint32 { return uint32(core / 4) })
	home := make([]topology.NodeID, 16)
	for i := range home {
		home[i] = Unassigned
	}
	w := runWindow(BaselineSystem(), windowSim(), src, Checkpoint{PageHome: home}, nil)
	fr := w.amat.Breakdown().Fractions()
	if fr[stats.Local] != 1 {
		t.Fatalf("first-touch window not all-local: %v", fr)
	}
}
