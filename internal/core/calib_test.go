package core

import (
	"fmt"
	"testing"

	"starnuma/internal/stats"
	"starnuma/internal/workload"
)

// TestPaperShapeRegression is the calibration guard: it runs the full
// suite at quick scale on both systems and asserts the paper's headline
// shapes (DESIGN.md §4's reproduction targets). If a model change
// shifts calibration, this test names the workload that moved.
func TestPaperShapeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration scan")
	}
	cfg := QuickSim()
	base := cfg
	base.Policy = PolicyPerfectBaseline

	// Per-workload expectations: baseline IPC near Table III's 16-socket
	// column (loose band — it *emerges* from contention), and speedup
	// within a qualitative range around Fig. 8a.
	expect := map[string]struct {
		paperIPC16             float64
		minSpeedup, maxSpeedup float64
	}{
		"SSSP":     {0.06, 1.8, 3.3},
		"BFS":      {0.10, 1.5, 2.8},
		"CC":       {0.14, 1.3, 2.2},
		"TC":       {0.40, 1.15, 1.9},
		"Masstree": {0.18, 1.15, 1.7},
		"TPCC":     {0.41, 1.05, 1.6},
		"FMI":      {0.61, 1.02, 1.5},
		"POA":      {0.68, 0.97, 1.03},
	}

	var speedups []float64
	fmt.Printf("%-9s %6s %6s %8s %7s %7s %6s %6s\n",
		"wkld", "bIPC", "sIPC", "speedup", "bAMAT", "sAMAT", "pool%", "mfrac")
	for _, spec := range workload.Suite(0.125) {
		rb, err := Run(BaselineSystem(), base, spec)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := Run(StarNUMASystem(), cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		sp := Speedup(rs, rb)
		speedups = append(speedups, sp)
		fmt.Printf("%-9s %6.3f %6.3f %7.2fx %6.0f %7.0f %6.2f %6.2f\n",
			spec.Name, rb.IPC, rs.IPC, sp,
			rb.AMAT.Measured().Nanos(), rs.AMAT.Measured().Nanos(),
			float64(rs.PoolPages)/float64(spec.FootprintPages), rs.MigrStats.PoolFraction())

		e := expect[spec.Name]
		if rb.IPC < e.paperIPC16/2.5 || rb.IPC > e.paperIPC16*2.5 {
			t.Errorf("%s: baseline IPC %.3f outside 2.5x band of Table III's %.2f",
				spec.Name, rb.IPC, e.paperIPC16)
		}
		if sp < e.minSpeedup || sp > e.maxSpeedup {
			t.Errorf("%s: speedup %.2fx outside [%.2f, %.2f]",
				spec.Name, sp, e.minSpeedup, e.maxSpeedup)
		}
		// AMAT must improve wherever speedup does.
		if sp > 1.05 && rs.AMAT.Measured() >= rb.AMAT.Measured() {
			t.Errorf("%s: speedup %.2fx without AMAT reduction", spec.Name, sp)
		}
	}
	gmean := stats.GeoMean(speedups)
	fmt.Printf("geomean speedup: %.2fx (paper: 1.54x)\n", gmean)
	if gmean < 1.30 || gmean > 1.75 {
		t.Errorf("geomean speedup %.2fx outside [1.30, 1.75] around paper's 1.54x", gmean)
	}
}
