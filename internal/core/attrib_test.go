package core

import (
	"encoding/json"
	"testing"

	"starnuma/internal/attrib"
	"starnuma/internal/fault"
	"starnuma/internal/migrate"
	"starnuma/internal/topology"
)

// attribSim is windowSim with the stall-attribution ledger enabled.
func attribSim() SimConfig {
	c := windowSim()
	c.Attrib = true
	return c
}

// checkConserved asserts the window carries a profile whose cells sum
// exactly — integer equality, no tolerance — to the window's recorded
// stall total, and returns it for category assertions.
func checkConserved(t *testing.T, w windowStats) *attrib.WindowProfile {
	t.Helper()
	if w.prof == nil {
		t.Fatal("no window profile with Attrib on")
	}
	want := int64(w.amat.SumLatency())
	if w.prof.TotalPS != want {
		t.Fatalf("profile total %d ps, AMAT stall total %d ps", w.prof.TotalPS, want)
	}
	if got := w.prof.Sum(); got != want {
		t.Fatalf("conservation violated: cells sum to %d ps, stall total %d ps (off by %d)",
			got, want, got-want)
	}
	return w.prof
}

// catTotal sums one category across the profile's sockets.
func catTotal(p *attrib.WindowProfile, c attrib.Category) int64 {
	var s int64
	for i := int(c); i < len(p.Cells); i += int(attrib.NumCategories) {
		s += p.Cells[i]
	}
	return s
}

func TestAttribOffNoProfile(t *testing.T) {
	src := newFakeSource(16, func(core int) uint32 { return uint32(core / 4) })
	w := runWindow(BaselineSystem(), windowSim(), src, Checkpoint{PageHome: homesAll(16, 0)}, nil)
	if w.prof != nil {
		t.Fatal("window profile present with Attrib off")
	}
}

func TestAttribConservationLocal(t *testing.T) {
	// All-local traffic: only the memory categories may be charged.
	src := newFakeSource(16, func(core int) uint32 { return uint32(core / 4) })
	home := make([]topology.NodeID, 16)
	for i := range home {
		home[i] = topology.NodeID(i)
	}
	w := runWindow(BaselineSystem(), attribSim(), src, Checkpoint{PageHome: home}, nil)
	p := checkConserved(t, w)
	if catTotal(p, attrib.OnChip) == 0 || catTotal(p, attrib.DRAM) == 0 {
		t.Fatalf("local run missing memory charges: %v", p.Cells)
	}
	for _, c := range []attrib.Category{attrib.LinkProp, attrib.LinkQueue,
		attrib.CXLProp, attrib.CXLQueue, attrib.Coherence, attrib.Migration} {
		if got := catTotal(p, c); got != 0 {
			t.Fatalf("local run charged %v = %d ps", c, got)
		}
	}
}

func TestAttribConservationTwoHop(t *testing.T) {
	// Cross-chassis reads: socket-link propagation must dominate and CXL
	// categories stay empty (no pool in the baseline system).
	src := newFakeSource(16, func(core int) uint32 { return uint32(core/4) ^ 0xF })
	home := make([]topology.NodeID, 16)
	for i := range home {
		home[i] = topology.NodeID(i)
	}
	w := runWindow(BaselineSystem(), attribSim(), src, Checkpoint{PageHome: home}, nil)
	p := checkConserved(t, w)
	if catTotal(p, attrib.LinkProp) == 0 {
		t.Fatalf("two-hop run charged no link propagation: %v", p.Cells)
	}
	if catTotal(p, attrib.CXLProp)+catTotal(p, attrib.CXLQueue) != 0 {
		t.Fatalf("CXL charges without a pool: %v", p.Cells)
	}
}

func TestAttribConservationPool(t *testing.T) {
	// Pool-homed reads cross CXL links: cxl-prop must be charged.
	src := newFakeSource(16, func(core int) uint32 { return uint32(core % 16) })
	sys := StarNUMASystem()
	topo := topology.New(sys.Topology)
	w := runWindow(sys, attribSim(), src, Checkpoint{PageHome: homesAll(16, topo.PoolNode())}, nil)
	p := checkConserved(t, w)
	if catTotal(p, attrib.CXLProp) == 0 {
		t.Fatalf("pool run charged no CXL propagation: %v", p.Cells)
	}
}

func TestAttribConservationCoherence(t *testing.T) {
	// Write sharing forces block transfers, whose post-home legs charge
	// to the coherence category.
	src := newFakeSource(16, func(core int) uint32 { return 0 })
	src.writeEvery = 4
	w := runWindow(BaselineSystem(), attribSim(), src, Checkpoint{PageHome: homesAll(16, 3)}, nil)
	p := checkConserved(t, w)
	if catTotal(p, attrib.Coherence) == 0 {
		t.Fatalf("write sharing charged no coherence time: %v", p.Cells)
	}
}

func TestAttribConservationMigrationStall(t *testing.T) {
	// Accesses caught behind the in-flight page move charge the wait to
	// the migration category; the second move of the same hot page also
	// forces TLB shootdown walks on cores that already cached the
	// translation.
	src := newFakeSource(16, func(core int) uint32 { return 0 })
	cfg := attribSim()
	cfg.TimedInstr = cfg.PhaseInstr // model the full migration list
	cfg.WarmupInstr = 0             // the t=0 stall must be recorded
	chk := Checkpoint{
		PageHome: homesAll(16, 15),
		Migrations: []migrate.Migration{
			{Page: 0, From: 15, To: 0},
			{Page: 0, From: 0, To: 1},
			{Page: 0, From: 1, To: 2},
			{Page: 0, From: 2, To: 3},
		},
	}
	w := runWindow(BaselineSystem(), cfg, src, chk, nil)
	p := checkConserved(t, w)
	if w.migrStalled == 0 {
		t.Fatal("no accesses stalled behind migrations")
	}
	if catTotal(p, attrib.Migration) == 0 {
		t.Fatalf("migration stalls charged nothing: %v", p.Cells)
	}
	if catTotal(p, attrib.TLB) == 0 {
		t.Fatalf("shootdown walks charged nothing: %v", p.Cells)
	}
	if catTotal(p, attrib.Drain) != 0 {
		t.Fatalf("policy migrations charged as drain: %v", p.Cells)
	}
}

func TestAttribConservationDrain(t *testing.T) {
	// The same stall behind a move flagged Drain books to the drain
	// category instead of migration.
	src := newFakeSource(16, func(core int) uint32 { return 0 })
	cfg := attribSim()
	cfg.TimedInstr = cfg.PhaseInstr
	cfg.WarmupInstr = 0
	chk := Checkpoint{
		PageHome:   homesAll(16, 15),
		Migrations: []migrate.Migration{{Page: 0, From: 15, To: 0, Drain: true}},
	}
	w := runWindow(BaselineSystem(), cfg, src, chk, nil)
	p := checkConserved(t, w)
	if w.migrStalled == 0 {
		t.Fatal("no accesses stalled behind the drain")
	}
	if catTotal(p, attrib.Drain) == 0 {
		t.Fatalf("drain stalls charged nothing: %v", p.Cells)
	}
	if catTotal(p, attrib.Migration) != 0 {
		t.Fatalf("drain stalls leaked into migration: %v", p.Cells)
	}
}

func TestAttribConservationSoftwareTracking(t *testing.T) {
	// Pages first touched after warm-up fault under software tracking;
	// the minor-fault penalty books under the TLB category.
	var src *fakeSource
	src = newFakeSource(32, func(core int) uint32 {
		if src.n[core] > 10 {
			return uint32(16 + core/4)
		}
		return uint32(core / 4)
	})
	cfg := attribSim()
	cfg.SoftwareTracking = SoftwareTrackingConfig{Enable: true, SampleFrac: 1, FaultPenaltyCycles: 3000}
	w := runWindow(BaselineSystem(), cfg, src, Checkpoint{PageHome: homesAll(32, 0)}, nil)
	p := checkConserved(t, w)
	if w.pageFaults == 0 {
		t.Fatal("software tracking took no page faults")
	}
	if catTotal(p, attrib.TLB) == 0 {
		t.Fatalf("minor faults charged nothing: %v", p.Cells)
	}
}

func TestAttribConservationReplication(t *testing.T) {
	// Stores to a replicated page pay the software coherence penalty,
	// charged to the replication category.
	src := newFakeSource(16, func(core int) uint32 { return 0 })
	src.writeEvery = 4
	cfg := attribSim()
	cfg.Replication.WritePenaltyCycles = 5000
	replicated := make([]bool, 16)
	replicated[0] = true
	w := runWindow(BaselineSystem(), cfg, src, Checkpoint{PageHome: homesAll(16, 3)}, replicated)
	p := checkConserved(t, w)
	if w.replicaWriteStalls == 0 {
		t.Fatal("no replica write stalls")
	}
	if catTotal(p, attrib.Replication) == 0 {
		t.Fatalf("replica writes charged nothing: %v", p.Cells)
	}
}

func TestAttribConservationFaultRetry(t *testing.T) {
	// A flapping CXL port delays demand sends by retrain/backoff time,
	// charged to fault-retry. FlapPlan starts at phase 1.
	src := newFakeSource(16, func(core int) uint32 { return uint32(core % 16) })
	sys := StarNUMASystem()
	topo := topology.New(sys.Topology)
	cfg := attribSim()
	cfg.Faults = fault.FlapPlan()
	chk := Checkpoint{Phase: 1, PageHome: homesAll(16, topo.PoolNode())}
	w := runWindow(sys, cfg, src, chk, nil)
	p := checkConserved(t, w)
	if w.faultRetries == 0 {
		t.Fatal("flap plan produced no retries")
	}
	if catTotal(p, attrib.FaultRetry) == 0 {
		t.Fatalf("flap retries charged nothing: %v", p.Cells)
	}
}

func TestAttribDifferentialResultJSON(t *testing.T) {
	// Attribution must be passive: with the profile stripped, an
	// attribution-on Result encodes byte-identically to attribution-off.
	spec := tinySpec(t, "CC")
	off, err := Run(StarNUMASystem(), tinySim(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cfgOn := tinySim()
	cfgOn.Attrib = true
	on, err := Run(StarNUMASystem(), cfgOn, spec)
	if err != nil {
		t.Fatal(err)
	}
	if on.Profile == nil {
		t.Fatal("no profile with Attrib on")
	}
	if err := on.Profile.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if len(on.Profile.Windows) != cfgOn.Phases {
		t.Fatalf("profile has %d windows, want %d", len(on.Profile.Windows), cfgOn.Phases)
	}
	on.Profile = nil
	a, err := json.Marshal(off)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(on)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("attribution-on Result differs from attribution-off after stripping the profile")
	}
}
