package core

import (
	"strconv"

	"starnuma/internal/evtrace"
	"starnuma/internal/sim"
	"starnuma/internal/topology"
)

// Trace event-volume controls. Timing windows generate far more raw
// events than a readable timeline wants, so high-frequency classes are
// sampled or capped per window; aggregate counts remain exact in
// internal/metrics.
const (
	// coherenceTraceSample records every N-th directory transaction.
	// Directory lookups happen on every LLC miss, so even a quick run
	// sees millions; this keeps coherence roughly in proportion to the
	// other event classes.
	coherenceTraceSample = 256
	// migrationTraceCap bounds per-window modeled-migration spans.
	migrationTraceCap = 128
	// tlbTraceCap bounds per-window shootdown-walk spans.
	tlbTraceCap = 256
)

// traceLanes precomputes per-node lane names ("socket0".."socketN",
// "pool") so hot-path recording does no formatting.
func traceLanes(topo *topology.Topology) []string {
	nodes := topo.Sockets()
	if topo.HasPool() {
		nodes++
	}
	lanes := make([]string, nodes)
	for n := range lanes {
		if topo.HasPool() && topology.NodeID(n) == topo.PoolNode() {
			lanes[n] = "pool"
		} else {
			lanes[n] = "socket" + strconv.Itoa(n)
		}
	}
	return lanes
}

// translateStepB maps step B's phase-clock events onto the assembled
// timeline: an event at phase-clock tick p lands at the start of
// timing window p (windows are merged in checkpoint order, so offset
// index == phase), and a span of d ticks stretches to window p+d's
// start. Ticks beyond the last window clamp to the timeline's end.
func translateStepB(b *evtrace.Buffer, offsets []sim.Time, total sim.Time) *evtrace.Buffer {
	out := evtrace.NewBuffer()
	off := func(k int64) sim.Time {
		if k < 0 {
			k = 0
		}
		if int(k) < len(offsets) {
			return offsets[k]
		}
		return total
	}
	for _, e := range b.Events {
		tick := int64(e.Ts)
		ne := e
		ne.Ts = off(tick)
		if e.Ph == evtrace.PhSpan {
			ne.Dur = off(tick+int64(e.Dur)) - ne.Ts
		}
		out.Events = append(out.Events, ne)
	}
	return out
}
