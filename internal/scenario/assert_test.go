package scenario

import (
	"bytes"
	"strings"
	"testing"

	"starnuma/internal/core"
	"starnuma/internal/metrics"
)

const assertDoc = `{
	"schema": "starnuma-scenario-v1", "name": "assert-test",
	"sim": {"phases": 3},
	"workloads": [{"name": "BFS"}, {"name": "TPCC"}],
	"events": [{"action": "pool-capacity", "at_phase": 1, "capacity_frac": 0.5}],
	"assertions": [
		{"kind": "ipc", "op": ">", "value": 0.1},
		{"kind": "mpki", "workload": "BFS", "op": "<", "value": 50},
		{"kind": "speedup", "vs": "no-events", "op": "<=", "value": 1.0, "workload": "BFS"},
		{"kind": "metric", "metric": "migrate/pages_to_pool", "op": ">=", "value": 5, "workload": "BFS"},
		{"kind": "fault_counter", "counter": "drained_pages", "op": ">=", "value": 1, "workload": "BFS"},
		{"kind": "drain_complete", "workload": "BFS"}
	]}`

// fakeRuns builds a RunSet whose BFS result drained pages down to the
// squeezed capacity.
func fakeRuns(c *Compiled) RunSet {
	cap := c.drainCapacity("BFS")
	bfs := &core.Result{
		Workload: "BFS", IPC: 0.5, MPKI: 32, PoolPages: cap,
		FaultDrainedPages: 100,
		Metrics: &metrics.Snapshot{
			Counters: map[string]uint64{"migrate/pages_to_pool": 10},
		},
	}
	tpcc := &core.Result{Workload: "TPCC", IPC: 0.9, MPKI: 4}
	return RunSet{
		Results: map[string]*core.Result{"BFS": bfs, "TPCC": tpcc},
		Ref: map[string]*core.Result{
			"BFS":  {Workload: "BFS", IPC: 0.6},
			"TPCC": {Workload: "TPCC", IPC: 0.9},
		},
	}
}

func TestEvaluatePass(t *testing.T) {
	c := mustCompile(t, assertDoc)
	v, err := c.Evaluate(fakeRuns(c))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if !v.Pass {
		for _, chk := range v.Failed() {
			t.Errorf("unexpected failure: %s", chk.Detail)
		}
		t.Fatal("verdict should pass")
	}
	// The unrestricted ipc assertion expands across both placements; the
	// rest are BFS-only: 2 + 5 = 7 checks.
	if len(v.Checks) != 7 {
		t.Fatalf("checks = %d, want 7", len(v.Checks))
	}
	if len(v.Workloads) != 2 || v.Workloads[0].Workload != "BFS" {
		t.Fatalf("workload outcomes = %+v", v.Workloads)
	}
	if got := v.Workloads[0].SpeedupVsNoEvents; got <= 0.83 || got >= 0.84 {
		t.Errorf("speedup vs no-events = %v, want 0.5/0.6", got)
	}
	if !strings.HasPrefix(v.Summary(), "PASS assert-test") {
		t.Errorf("summary = %q", v.Summary())
	}
}

func TestEvaluateFailureDetail(t *testing.T) {
	c := mustCompile(t, assertDoc)
	rs := fakeRuns(c)
	rs.Results["BFS"].FaultDrainedPages = 0 // fails the fault_counter check
	rs.Results["BFS"].PoolPages = 1 << 30   // fails drain_complete
	v, err := c.Evaluate(rs)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("verdict should fail")
	}
	failed := v.Failed()
	if len(failed) != 2 {
		t.Fatalf("failed = %+v", failed)
	}
	fc := failed[0]
	if fc.Kind != KindFaultCounter || fc.Line == 0 {
		t.Errorf("first failure = %+v", fc)
	}
	if !strings.Contains(fc.Detail, "drained_pages") ||
		!strings.Contains(fc.Detail, "FAILED: expected >= 1, got 0") {
		t.Errorf("detail not actionable: %q", fc.Detail)
	}
	dc := failed[1]
	if dc.Kind != KindDrainComplete || dc.Op != "<=" || dc.Pass {
		t.Errorf("drain failure = %+v", dc)
	}
	if !strings.HasPrefix(v.Summary(), "FAIL assert-test (2/7") {
		t.Errorf("summary = %q", v.Summary())
	}
}

func TestEvaluateMissingResult(t *testing.T) {
	c := mustCompile(t, assertDoc)
	rs := fakeRuns(c)
	delete(rs.Results, "TPCC")
	if _, err := c.Evaluate(rs); err == nil || !strings.Contains(err.Error(), "TPCC") {
		t.Fatalf("missing result error = %v", err)
	}
}

func TestEvaluateMissingReference(t *testing.T) {
	c := mustCompile(t, assertDoc)
	rs := fakeRuns(c)
	rs.Ref = nil
	v, err := c.Evaluate(rs)
	if err != nil {
		t.Fatal(err)
	}
	// The speedup check fails (reference unavailable) but evaluation
	// completes.
	if v.Pass {
		t.Fatal("verdict should fail without the reference")
	}
	found := false
	for _, chk := range v.Failed() {
		if chk.Kind == KindSpeedup && strings.Contains(chk.Detail, "unavailable") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no speedup-unavailable failure in %+v", v.Failed())
	}
}

func TestVerdictEncodeDeterministic(t *testing.T) {
	c := mustCompile(t, assertDoc)
	v1, err := c.Evaluate(fakeRuns(c))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.Evaluate(fakeRuns(c))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := v1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := v2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("verdict bytes differ across evaluations")
	}
	back, err := DecodeVerdict(b1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash != v1.Hash || back.Pass != v1.Pass || len(back.Checks) != len(v1.Checks) {
		t.Fatal("verdict round trip lost state")
	}
	if _, err := DecodeVerdict([]byte("{")); err == nil {
		t.Fatal("DecodeVerdict accepted corrupt input")
	}
}

func TestLookupMetricOrder(t *testing.T) {
	s := &metrics.Snapshot{
		Counters:   map[string]uint64{"x": 1},
		Gauges:     map[string]float64{"x": 2, "g": 2.5},
		Histograms: map[string]metrics.Histogram{"h": {Count: 2, Sum: 10}},
		Series:     map[string][]metrics.Point{"s": {{T: 0, V: 1}, {T: 1, V: 2}}},
	}
	cases := []struct {
		name string
		want float64
	}{
		{"x", 1},   // counter shadows the gauge
		{"g", 2.5}, // gauge
		{"h", 5},   // histogram mean
		{"s", 3},   // series point sum
	}
	for _, tc := range cases {
		got, ok := lookupMetric(s, tc.name)
		if !ok || got != tc.want {
			t.Errorf("lookupMetric(%q) = %v/%v, want %v", tc.name, got, ok, tc.want)
		}
	}
	if _, ok := lookupMetric(s, "absent"); ok {
		t.Error("absent metric resolved")
	}
	if _, ok := lookupMetric(nil, "x"); ok {
		t.Error("nil snapshot resolved")
	}
}

func TestDrainCapacityReflectsSqueeze(t *testing.T) {
	squeezed := mustCompile(t, assertDoc)
	calm := mustCompile(t, `{
		"schema": "starnuma-scenario-v1", "name": "calm",
		"sim": {"phases": 3},
		"workloads": [{"name": "BFS"}, {"name": "TPCC"}],
		"assertions": [{"kind": "drain_complete", "workload": "BFS"}]}`)
	sq, full := squeezed.drainCapacity("BFS"), calm.drainCapacity("BFS")
	if full <= 0 || sq != full/2 {
		t.Fatalf("squeezed capacity %d, full %d (want half)", sq, full)
	}
}
