package scenario

import (
	"testing"
)

func mustParse(t *testing.T, doc string) *Scenario {
	t.Helper()
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func mustCompile(t *testing.T, doc string) *Compiled {
	t.Helper()
	c, err := Compile(mustParse(t, doc))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

func TestCompileFull(t *testing.T) {
	c := mustCompile(t, validDoc)

	// System overrides landed.
	if c.Sys.Topology.Sockets != 8 || c.Sys.Topology.SocketsPerChassis != 4 {
		t.Errorf("topology shape = %d/%d", c.Sys.Topology.Sockets, c.Sys.Topology.SocketsPerChassis)
	}
	if c.Sys.Pool.CapacityFraction != 0.25 || c.Sys.Pool.Channels != 4 {
		t.Errorf("pool overrides lost: %+v", c.Sys.Pool)
	}
	if c.Cfg.Phases != 3 {
		t.Errorf("phases = %d", c.Cfg.Phases)
	}

	// The event script became a fault plan on the scenario run only; the
	// workload shift stayed out of it.
	if c.Cfg.Faults == nil || len(c.Cfg.Faults.Events) != 3 {
		t.Fatalf("fault plan = %+v", c.Cfg.Faults)
	}
	if c.RefCfg.Faults != nil {
		t.Error("no-events reference must have no fault plan")
	}

	// The BFS shift applies to the scenario specs, not the reference.
	if len(c.Specs) != 2 || len(c.RefSpecs) != 2 {
		t.Fatalf("specs = %d/%d", len(c.Specs), len(c.RefSpecs))
	}
	if c.Specs[0].Name != "BFS" || c.Specs[0].DriftFrac != 0.3 || c.Specs[0].DriftPeriod != 1 {
		t.Errorf("BFS shift lost: %+v", c.Specs[0])
	}
	if c.RefSpecs[0].DriftFrac != 0 {
		t.Error("reference spec must not drift")
	}
	if c.Specs[1].Name != "TPCC" || c.Specs[1].DriftFrac != 0 {
		t.Errorf("TPCC should not drift: %+v", c.Specs[1])
	}
	if c.Specs[1].Seed != 7 {
		t.Errorf("TPCC seed override lost: %d", c.Specs[1].Seed)
	}

	// The speedup assertion is vs no-events, so only Ref is needed, and
	// no metric assertion means no instrumentation.
	if !c.NeedsRef || c.NeedsBase {
		t.Errorf("NeedsRef/NeedsBase = %v/%v", c.NeedsRef, c.NeedsBase)
	}
	if c.Cfg.CollectMetrics {
		t.Error("CollectMetrics should be off without metric assertions")
	}
	if c.Hash == "" || c.Hash != c.Scenario.Hash() {
		t.Error("compiled hash must match the scenario hash")
	}
}

func TestCompileBaselineSpeedupAndMetrics(t *testing.T) {
	c := mustCompile(t, `{
		"schema": "starnuma-scenario-v1", "name": "x",
		"workloads": [{"name": "BFS"}],
		"assertions": [
			{"kind": "speedup", "vs": "baseline", "op": ">", "value": 1},
			{"kind": "metric", "metric": "migrate/pages_to_pool", "op": ">=", "value": 0}
		]}`)
	if !c.NeedsBase || c.NeedsRef {
		t.Errorf("NeedsBase/NeedsRef = %v/%v", c.NeedsBase, c.NeedsRef)
	}
	if !c.Cfg.CollectMetrics {
		t.Error("metric assertion must enable CollectMetrics")
	}
	// The baseline runs the perfect-baseline policy on a pool-less system
	// with the scenario's topology shape.
	if !c.BaseCfg.Policy.Is("baseline-perfect") {
		t.Errorf("base policy = %v", c.BaseCfg.Policy)
	}
	if c.BaseSys.Topology.HasPool {
		t.Error("baseline system must be pool-less")
	}
	if c.BaseSys.Topology.Sockets != c.Sys.Topology.Sockets {
		t.Error("baseline topology shape should match the scenario's")
	}
}

func TestCompileDeterministic(t *testing.T) {
	a := mustCompile(t, validDoc)
	b := mustCompile(t, validDoc)
	if a.Hash != b.Hash {
		t.Fatal("hash differs across compiles")
	}
	if len(a.Specs) != len(b.Specs) {
		t.Fatal("spec count differs")
	}
	for i := range a.Specs {
		if a.Specs[i].Name != b.Specs[i].Name || a.Specs[i].Seed != b.Specs[i].Seed {
			t.Fatalf("spec %d differs", i)
		}
	}
}

func TestCompileInvalid(t *testing.T) {
	s := mustParse(t, validDoc)
	s.System.Base = "quantum"
	if _, err := Compile(s); err == nil {
		t.Fatal("Compile accepted an invalid scenario")
	}
}

func TestCompileStallFracEnablesAttrib(t *testing.T) {
	c := mustCompile(t, `{
		"schema": "starnuma-scenario-v1", "name": "x",
		"workloads": [{"name": "BFS"}],
		"assertions": [
			{"kind": "stall_frac", "category": "cxl-queue", "op": ">=", "value": 0.1}
		]}`)
	if !c.Cfg.Attrib {
		t.Error("stall_frac assertion must enable Attrib")
	}
	if !c.RefCfg.Attrib {
		t.Error("the no-events reference must share the Attrib flag (same cache-key methodology)")
	}
	if c.Cfg.CollectMetrics {
		t.Error("stall_frac must not drag CollectMetrics along")
	}
	// And absent a stall_frac assertion, the ledger stays off.
	c2 := mustCompile(t, `{
		"schema": "starnuma-scenario-v1", "name": "x",
		"workloads": [{"name": "BFS"}],
		"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`)
	if c2.Cfg.Attrib {
		t.Error("Attrib should be off without stall_frac assertions")
	}
}
