package scenario

import (
	"fmt"

	"starnuma/internal/core"
	"starnuma/internal/link"
	"starnuma/internal/migrate"
	"starnuma/internal/pool"
	"starnuma/internal/stats"
	"starnuma/internal/tracker"
	"starnuma/internal/workload"
)

// Compiled is a scenario lowered onto the existing simulation machinery:
// system and methodology configurations (with the event script's
// fault-bound events compiled into Cfg.Faults), the placed workload
// specs (with workload shifts applied), and the reference configurations
// speedup assertions compare against. All of it is plain config data —
// the runner's content-addressed cache keys on it, so scenario runs ride
// the cache like every other experiment.
type Compiled struct {
	// Scenario is the validated source document.
	Scenario *Scenario
	// Hash is the scenario's content hash (Scenario.Hash).
	Hash string

	// Sys/Cfg/Specs is the scenario run proper.
	Sys   core.SystemConfig
	Cfg   core.SimConfig
	Specs []workload.Spec

	// RefCfg/RefSpecs is the "no-events" reference: the same scenario
	// with the event script removed (no fault plan, no workload shifts).
	// Only meaningful when NeedsRef.
	RefCfg   core.SimConfig
	RefSpecs []workload.Spec
	NeedsRef bool

	// BaseSys/BaseCfg is the paper's pool-less perfect baseline for
	// "vs baseline" speedups, run over RefSpecs. Only meaningful when
	// NeedsBase.
	BaseSys   core.SystemConfig
	BaseCfg   core.SimConfig
	NeedsBase bool
}

// Name returns the scenario name.
func (c *Compiled) Name() string { return c.Scenario.Name }

// Compile validates the scenario and lowers it onto core/fault/workload
// configuration. The result is a pure function of the scenario document:
// compiling the same scenario twice yields identical configurations.
func Compile(s *Scenario) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{Scenario: s, Hash: s.Hash()}

	if err := c.compileSystem(); err != nil {
		return nil, err
	}
	c.compileSim()
	if err := c.compileWorkloads(); err != nil {
		return nil, err
	}

	// Final cross-checks with the full configurations in hand.
	if err := c.Sys.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: system: %w", err)
	}
	if err := c.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: sim: %w", err)
	}
	// Specs are authored for 16 sockets; smaller systems clamp sharer
	// sets at generation time (workload.NewGenerator), so validate
	// against the clamp floor like the generator does.
	sockets := c.Sys.Topology.Sockets
	if sockets < 16 {
		sockets = 16
	}
	for _, spec := range c.Specs {
		if err := spec.Validate(sockets); err != nil {
			return nil, fmt.Errorf("scenario: workloads: %w", err)
		}
	}
	return c, nil
}

func (c *Compiled) compileSystem() error {
	s := c.Scenario
	switch s.System.Base {
	case BaseStarNUMA, "":
		c.Sys = core.StarNUMASystem()
	case BaseBaseline:
		c.Sys = core.BaselineSystem()
	case BaseSingleSocket:
		c.Sys = core.SingleSocketSystem()
	default:
		return fieldErr("system.base", "unknown variant %q", s.System.Base)
	}
	sys := &c.Sys
	if s.System.SocketsPerChassis > 0 {
		sys.Topology.SocketsPerChassis = s.System.SocketsPerChassis
	}
	if s.System.Sockets > 0 {
		sys.Topology.Sockets = s.System.Sockets
	}
	if s.System.PoolCapacityFraction > 0 {
		sys.Pool.CapacityFraction = s.System.PoolCapacityFraction
	}
	if s.System.PoolChannels > 0 {
		sys.Pool.Channels = s.System.PoolChannels
	}
	if s.System.PoolLatency == "switched" {
		sys.Pool.Latency = pool.SwitchedLatency()
	}
	if s.System.CXLBandwidthGBps > 0 {
		sys.Pool.LinkBW = link.GBps(s.System.CXLBandwidthGBps)
	}
	if s.System.UPIBandwidthGBps > 0 {
		sys.UPIBandwidth = link.GBps(s.System.UPIBandwidthGBps)
	}
	if s.System.NUMABandwidthGBps > 0 {
		sys.NUMABandwidth = link.GBps(s.System.NUMABandwidthGBps)
	}
	if sys.Topology.HasPool {
		// Keep the CXL one-way latency consistent with the (possibly
		// overridden) pool budget, as core.StarNUMASystem does.
		sys.Topology.CXLOneWay = sys.Pool.Latency.OneWay()
	}
	// The paper baseline for "vs baseline" speedups shares the
	// scenario's topology shape but has no pool.
	c.BaseSys = core.BaselineSystem()
	c.BaseSys.Topology.SocketsPerChassis = sys.Topology.SocketsPerChassis
	if s.System.Base != BaseSingleSocket {
		c.BaseSys.Topology.Sockets = sys.Topology.Sockets
	}
	return nil
}

func (c *Compiled) compileSim() {
	s := c.Scenario
	cfg := core.QuickSim()
	if s.Sim.Preset == "default" {
		cfg = core.DefaultSim()
	}
	if s.Sim.Phases > 0 {
		cfg.Phases = s.Sim.Phases
	}
	// The named policy comes straight from the migrate registry
	// (Validate already checked name and parameter keys). Legacy names
	// without parameters keep their historical cache-key encoding via
	// the PolicySpec codec.
	if s.Sim.Policy != "" || len(s.Sim.PolicyParams) > 0 {
		cfg.Policy = core.PolicySpec{Name: s.Sim.Policy, Params: migrate.Params(s.Sim.PolicyParams)}
		if cfg.Policy.Name == "" {
			cfg.Policy.Name = "starnuma"
		}
	}
	if s.Sim.Tracker == "t0" {
		cfg.Tracker = tracker.T0
	} else {
		cfg.Tracker = tracker.T16
	}
	// Metric assertions read the instrumentation snapshot, so their
	// presence enables collection (it is passive: results stay
	// bit-identical, and the flag is part of the cache key).
	for _, a := range s.Assertions {
		if a.Kind == KindMetric {
			cfg.CollectMetrics = true
			break
		}
	}
	// Stall-fraction assertions read the attribution profile, so their
	// presence enables the stall ledger (same passivity contract).
	for _, a := range s.Assertions {
		if a.Kind == KindStallFrac {
			cfg.Attrib = true
			break
		}
	}

	c.RefCfg = cfg // the no-events reference: same methodology, no plan
	c.Cfg = cfg
	c.Cfg.Faults = s.faultPlan()

	c.BaseCfg = c.RefCfg
	c.BaseCfg.Policy = core.PolicyPerfectBaseline

	for _, a := range s.Assertions {
		if a.Kind != KindSpeedup {
			continue
		}
		if a.Vs == VsBaseline {
			c.NeedsBase = true
		} else {
			c.NeedsRef = true
		}
	}
}

func (c *Compiled) compileWorkloads() error {
	s := c.Scenario
	scale := s.Sim.Scale
	if stats.IsZero(scale) {
		if s.Sim.Preset == "default" {
			scale = 0.25
		} else {
			scale = 0.125
		}
	}
	for _, w := range s.Workloads {
		ws := scale
		if w.Scale > 0 {
			ws = w.Scale
		}
		spec, err := workload.ByName(w.Name, ws)
		if err != nil {
			return fmt.Errorf("scenario: workloads: %w", err)
		}
		if w.Seed != 0 {
			spec.Seed = w.Seed
		}
		c.RefSpecs = append(c.RefSpecs, spec)
		// Workload shifts are part of the event script, so they apply to
		// the scenario run but not the no-events reference.
		for _, e := range s.Events {
			if e.Action != ActionWorkloadShift {
				continue
			}
			if e.Workload != "" && e.Workload != w.Name {
				continue
			}
			spec.DriftFrac = e.ShiftFrac
			spec.DriftPeriod = e.PeriodPhases
		}
		c.Specs = append(c.Specs, spec)
	}
	return nil
}
