// Package scenario is the declarative experiment layer: one JSON file
// composes a topology/pool configuration, workload placements, a timed
// event script and assertions on the outcome, and compiles into the
// existing core.SimConfig / fault.Plan / workload.Spec machinery. What
// previously took bespoke Go per experiment — "run StarNUMA under a
// mid-run capacity squeeze and check the drain completed with bounded
// slowdown" — becomes a file under scenarios/ that CI replays as a
// regression check.
//
// A scenario has five sections:
//
//   - system: which hardware variant to simulate (the paper baseline,
//     the StarNUMA pool system, or single-socket) plus topology/pool
//     overrides (socket count, pool capacity fraction, link bandwidths,
//     switched pool latency);
//   - sim: the methodology preset (quick or default) plus phase count,
//     migration policy and tracker overrides;
//   - workloads: the placements — which suite workloads run, at what
//     footprint scale, and under which seed;
//   - events: a timed script on the checkpoint-phase / ps sim clock:
//     link degradations and flaps (window-relative ps timestamps), pool
//     channel/device kills, pool-capacity squeezes, and workload phase
//     shifts (sharing-epoch re-draws);
//   - assertions: checks on the outcome — IPC/MPKI/AMAT thresholds,
//     speedup bounds against a reference run, metric-namespace
//     thresholds (internal/metrics), fault counters, pool residency and
//     drain completion.
//
// Like internal/fault, the package is part of the determinism contract
// (starnumavet's SimPackages): it performs no file IO and reads no
// clocks — scenario files are read by the cmd layer and handed in as
// bytes — and a compiled scenario is a pure function of those bytes, so
// its runs ride the runner's content-addressed result cache and its
// verdict manifest is byte-identical across reruns and worker counts.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Schema is the scenario document's schema identifier; Parse rejects
// anything else so format drift fails loudly.
const Schema = "starnuma-scenario-v1"

// Scenario is the root document of one declarative experiment.
type Scenario struct {
	Schema      string        `json:"schema"`
	Name        string        `json:"name"`
	Description string        `json:"description,omitempty"`
	System      SystemSpec    `json:"system"`
	Sim         SimSpec       `json:"sim"`
	Workloads   []WorkloadSel `json:"workloads"`
	Events      []Event       `json:"events,omitempty"`
	Assertions  []Assertion   `json:"assertions"`

	// lines holds the 1-based source line of each assertion, populated
	// by Parse so failure output can point at the offending file:line.
	// Programmatically-built scenarios have none (LineOf returns 0).
	lines []int
}

// SystemSpec selects and overrides the simulated hardware.
type SystemSpec struct {
	// Base is the hardware variant: "starnuma" (pool system),
	// "baseline" (paper's pool-less Superdome FLEX) or "single-socket".
	Base string `json:"base"`
	// Sockets/SocketsPerChassis override the topology shape (0 keeps
	// the base's values; Sockets must stay a multiple of
	// SocketsPerChassis).
	Sockets           int `json:"sockets,omitempty"`
	SocketsPerChassis int `json:"sockets_per_chassis,omitempty"`
	// PoolCapacityFraction overrides the pool budget (paper default
	// 0.20; Fig. 12 uses 1/17).
	PoolCapacityFraction float64 `json:"pool_capacity_fraction,omitempty"`
	// PoolChannels overrides the MHD DDR channel count.
	PoolChannels int `json:"pool_channels,omitempty"`
	// PoolLatency selects the Fig. 3 budget: "default" (100ns round
	// trip) or "switched" (Fig. 10's +90ns CXL switch).
	PoolLatency string `json:"pool_latency,omitempty"`
	// Link bandwidth overrides in GB/s per direction (0 keeps Table II).
	CXLBandwidthGBps  float64 `json:"cxl_bandwidth_gbps,omitempty"`
	UPIBandwidthGBps  float64 `json:"upi_bandwidth_gbps,omitempty"`
	NUMABandwidthGBps float64 `json:"numa_bandwidth_gbps,omitempty"`
}

// SimSpec selects and overrides the methodology configuration.
type SimSpec struct {
	// Preset is "quick" (test-sized, the default) or "default" (the
	// full evaluation scaling).
	Preset string `json:"preset,omitempty"`
	// Phases overrides the checkpoint count.
	Phases int `json:"phases,omitempty"`
	// Scale is the default workload footprint scale (0 keeps the
	// preset's: 0.125 quick, 0.25 default).
	Scale float64 `json:"scale,omitempty"`
	// Policy is a migration-policy registry name (internal/migrate;
	// "starnuma" when empty — see `starnuma policy list`).
	Policy string `json:"policy,omitempty"`
	// PolicyParams overrides the policy's descriptor-declared parameters
	// by name; keys are validated against the registry schema.
	PolicyParams map[string]float64 `json:"policy_params,omitempty"`
	// Tracker is "t16" (default) or "t0".
	Tracker string `json:"tracker,omitempty"`
}

// WorkloadSel places one suite workload into the scenario.
type WorkloadSel struct {
	// Name is a Table III workload name (see workload.Names).
	Name string `json:"name"`
	// Scale overrides the scenario-level footprint scale for this
	// workload only.
	Scale float64 `json:"scale,omitempty"`
	// Seed overrides the workload's stream seed (0 keeps the suite's).
	Seed uint64 `json:"seed,omitempty"`
}

// Event actions. Link events compile into internal/fault events with
// their ps-clock fields converted to the fault plan's window-relative
// nanoseconds; workload shifts compile into workload.Spec drift.
const (
	// ActionDegradeLink scales a link class's latency (latency_x) and
	// divides its bandwidth (bandwidth_div) from at_phase/at_ps.
	ActionDegradeLink = "degrade-link"
	// ActionFlapLink takes a link class down for the first down_ps of
	// every period_ps, charging retry_ps to delayed sends.
	ActionFlapLink = "flap-link"
	// ActionKill permanently fails a pool channel ("pool:chN") or the
	// whole MHD ("pool") from at_phase.
	ActionKill = "kill"
	// ActionPoolCapacity squeezes the pool to capacity_frac of nominal
	// from at_phase (until until_phase when set).
	ActionPoolCapacity = "pool-capacity"
	// ActionWorkloadShift makes sharing non-stationary: shift_frac of
	// each matching workload's regions re-draw their sharer sets every
	// period_phases (a hot working set arriving at new sockets).
	ActionWorkloadShift = "workload-shift"
)

// Event is one entry of the timed script. Phases index step-B
// checkpoints; at_ps/until_ps scope link events within each affected
// timing window on the picosecond sim clock.
type Event struct {
	Action string `json:"action"`
	// Target names the faulted component for link/kill actions (fault
	// plan syntax: "cxl", "upi", "numalink", "link", "cxl:s3",
	// "pool", "pool:ch0").
	Target string `json:"target,omitempty"`
	// AtPhase..UntilPhase scope the event to checkpoint phases
	// (until_phase 0 = open-ended).
	AtPhase    int `json:"at_phase,omitempty"`
	UntilPhase int `json:"until_phase,omitempty"`
	// AtPS..UntilPS further scope link events within each affected
	// timing window, in window-relative picoseconds (until_ps 0 = until
	// the window ends).
	AtPS    int64 `json:"at_ps,omitempty"`
	UntilPS int64 `json:"until_ps,omitempty"`
	// degrade-link knobs.
	LatencyX     float64 `json:"latency_x,omitempty"`
	BandwidthDiv float64 `json:"bandwidth_div,omitempty"`
	// flap-link knobs, on the ps clock.
	PeriodPS int64 `json:"period_ps,omitempty"`
	DownPS   int64 `json:"down_ps,omitempty"`
	RetryPS  int64 `json:"retry_ps,omitempty"`
	// pool-capacity knob.
	CapacityFrac float64 `json:"capacity_frac,omitempty"`
	// workload-shift knobs: Workload restricts the shift to one
	// placement (empty = all), ShiftFrac is the fraction of regions
	// re-drawing sharers, every PeriodPhases phases.
	Workload     string  `json:"workload,omitempty"`
	ShiftFrac    float64 `json:"shift_frac,omitempty"`
	PeriodPhases int     `json:"period_phases,omitempty"`
}

// Assertion kinds.
const (
	// KindIPC compares a workload's mean IPC against value.
	KindIPC = "ipc"
	// KindMPKI compares the measured LLC MPKI against value.
	KindMPKI = "mpki"
	// KindAMATNs compares the measured mean access latency in
	// nanoseconds against value.
	KindAMATNs = "amat_ns"
	// KindSpeedup compares IPC relative to a reference run: the same
	// scenario without its event script (vs "no-events", the default) or
	// the paper's pool-less perfect baseline (vs "baseline").
	KindSpeedup = "speedup"
	// KindMetric compares an internal/metrics value by namespace name
	// (e.g. "migrate/pages_to_pool"); counters and gauges compare their
	// value, histograms their mean, series the sum of their points.
	// Using it enables instrumentation collection for the run.
	KindMetric = "metric"
	// KindFaultCounter compares a Result fault counter:
	// "degraded_sends", "flap_retries" or "drained_pages".
	KindFaultCounter = "fault_counter"
	// KindStallFrac compares one stall-attribution category's fraction
	// of total stall time (internal/attrib; e.g. category "cxl-queue")
	// against value in [0,1]. Using it enables the stall ledger for the
	// run (passive: results stay bit-identical, the flag is part of the
	// cache key).
	KindStallFrac = "stall_frac"
	// KindPoolPages compares the pages resident in the pool at the end
	// of the run against value.
	KindPoolPages = "pool_pages"
	// KindDrainComplete asserts that final pool residency fits within
	// the event script's degraded capacity at the last phase — the
	// graceful-drain completion check (op/value unused).
	KindDrainComplete = "drain_complete"
)

// Speedup assertion references (Assertion.Vs).
const (
	// VsNoEvents compares against the same scenario with the event
	// script removed (the default).
	VsNoEvents = "no-events"
	// VsBaseline compares against the paper's pool-less perfect
	// baseline on the scenario's topology shape.
	VsBaseline = "baseline"
)

// Assertion is one regression check on a scenario's outcome.
type Assertion struct {
	Kind string `json:"kind"`
	// Workload restricts the check to one placement; empty checks every
	// placed workload.
	Workload string `json:"workload,omitempty"`
	// Metric names the internal/metrics key for kind "metric".
	Metric string `json:"metric,omitempty"`
	// Counter names the fault counter for kind "fault_counter".
	Counter string `json:"counter,omitempty"`
	// Category names the stall-attribution category for kind
	// "stall_frac" (one of internal/attrib's category names).
	Category string `json:"category,omitempty"`
	// Vs selects the speedup reference: "no-events" (default) or
	// "baseline".
	Vs string `json:"vs,omitempty"`
	// Op compares actual Op value: one of < <= > >= == !=.
	Op string `json:"op,omitempty"`
	// Value is the comparison threshold.
	Value float64 `json:"value,omitempty"`
}

// Parse decodes and validates a JSON scenario. Unknown fields, malformed
// JSON, trailing garbage and semantically invalid sections are all
// rejected with an error naming the offending field; Parse never panics.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	s := &Scenario{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse: trailing data after scenario object")
	}
	s.lines = assertionLines(data)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// LineOf returns the 1-based source line of assertion i, or 0 when the
// scenario was not built by Parse (or i is out of range).
func (s *Scenario) LineOf(i int) int {
	if i < 0 || i >= len(s.lines) {
		return 0
	}
	return s.lines[i]
}

// Hash returns the scenario's content hash: SHA-256 over the canonical
// re-encoding, so formatting and key order in the source file do not
// matter. The simulation-relevant parts of this content also hash into
// the runner's result-cache key through the compiled configurations.
func (s *Scenario) Hash() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Scenario fields are all plain data; Marshal cannot fail.
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// assertionLines walks the raw document with a token decoder and
// records the 1-based line each element of the top-level "assertions"
// array starts on. Any irregularity returns nil — line attribution is
// best-effort and never blocks parsing.
func assertionLines(data []byte) []int {
	dec := json.NewDecoder(bytes.NewReader(data))
	if t, err := dec.Token(); err != nil || t != json.Delim('{') {
		return nil
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil
		}
		key, _ := keyTok.(string)
		if key != "assertions" {
			var skip json.RawMessage
			if dec.Decode(&skip) != nil {
				return nil
			}
			continue
		}
		if t, err := dec.Token(); err != nil || t != json.Delim('[') {
			return nil
		}
		var lines []int
		for dec.More() {
			off := dec.InputOffset()
			var el json.RawMessage
			if dec.Decode(&el) != nil {
				return nil
			}
			lines = append(lines, lineAt(data, off))
		}
		return lines
	}
	return nil
}

// lineAt returns the 1-based line of the first token byte at or after
// offset off (skipping separators and whitespace).
func lineAt(data []byte, off int64) int {
	i := int(off)
	for i < len(data) {
		switch data[i] {
		case ' ', '\t', '\n', '\r', ',':
			i++
		default:
			return 1 + bytes.Count(data[:i], []byte{'\n'})
		}
	}
	return 1 + bytes.Count(data, []byte{'\n'})
}
