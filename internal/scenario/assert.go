package scenario

import (
	"fmt"

	"starnuma/internal/core"
	"starnuma/internal/fault"
	"starnuma/internal/metrics"
	"starnuma/internal/stats"
)

// RunSet carries the simulation results Evaluate reads, keyed by
// workload name. Ref and Base are consulted only when the compiled
// scenario declares the matching reference (NeedsRef / NeedsBase).
type RunSet struct {
	// Results is the scenario run proper (Sys/Cfg/Specs).
	Results map[string]*core.Result
	// Ref is the no-events reference (RefCfg/RefSpecs).
	Ref map[string]*core.Result
	// Base is the pool-less perfect baseline (BaseSys/BaseCfg/RefSpecs).
	Base map[string]*core.Result
}

// Evaluate checks every assertion against the run results and returns
// the verdict. Workload outcomes and checks appear in document order
// (placement order; assertion order, expanding unrestricted assertions
// across placements), so the verdict is byte-identical regardless of
// how the runs were scheduled. An error means a result the scenario
// requires is missing — a harness bug, not an assertion failure.
func (c *Compiled) Evaluate(rs RunSet) (*Verdict, error) {
	s := c.Scenario
	v := &Verdict{
		Schema:      VerdictSchema,
		Scenario:    s.Name,
		Description: s.Description,
		Hash:        c.Hash,
		Pass:        true,
	}
	for _, spec := range c.Specs {
		res := rs.Results[spec.Name]
		if res == nil {
			return nil, fmt.Errorf("scenario: evaluate: missing result for workload %q", spec.Name)
		}
		wo := WorkloadOutcome{
			Workload:      spec.Name,
			IPC:           res.IPC,
			AMATNs:        amatNs(res),
			MPKI:          res.MPKI,
			PoolPages:     res.PoolPages,
			DrainedPages:  res.FaultDrainedPages,
			DegradedSends: res.FaultDegradedSends,
			FlapRetries:   res.FaultFlapRetries,
		}
		if c.NeedsRef {
			if ref := rs.Ref[spec.Name]; ref != nil && ref.IPC > 0 {
				wo.SpeedupVsNoEvents = res.IPC / ref.IPC
			}
		}
		if c.NeedsBase {
			if base := rs.Base[spec.Name]; base != nil && base.IPC > 0 {
				wo.SpeedupVsBaseline = res.IPC / base.IPC
			}
		}
		v.Workloads = append(v.Workloads, wo)
	}
	for i := range s.Assertions {
		a := &s.Assertions[i]
		names := []string{a.Workload}
		if a.Workload == "" {
			names = names[:0]
			for _, spec := range c.Specs {
				names = append(names, spec.Name)
			}
		}
		for _, name := range names {
			chk := c.evalOne(i, a, name, rs)
			if !chk.Pass {
				v.Pass = false
			}
			v.Checks = append(v.Checks, chk)
		}
	}
	return v, nil
}

// evalOne evaluates one assertion for one workload.
func (c *Compiled) evalOne(i int, a *Assertion, name string, rs RunSet) Check {
	chk := Check{
		Index:    i,
		Line:     c.Scenario.LineOf(i),
		Kind:     a.Kind,
		Workload: name,
		Op:       a.Op,
		Want:     a.Value,
	}
	res := rs.Results[name]
	var subject string
	switch a.Kind {
	case KindIPC:
		subject = "ipc"
		chk.Got = res.IPC
	case KindMPKI:
		subject = "mpki"
		chk.Got = res.MPKI
	case KindAMATNs:
		subject = "amat_ns"
		chk.Got = amatNs(res)
	case KindSpeedup:
		ref, label := rs.Ref[name], "no-events"
		if a.Vs == VsBaseline {
			ref, label = rs.Base[name], "baseline"
		}
		subject = "speedup vs " + label
		if ref == nil || stats.IsZero(ref.IPC) {
			chk.Detail = fmt.Sprintf("%s (%s): reference result unavailable", subject, name)
			return chk
		}
		chk.Got = res.IPC / ref.IPC
	case KindMetric:
		subject = "metric " + a.Metric
		got, found := lookupMetric(res.Metrics, a.Metric)
		if !found {
			chk.Detail = fmt.Sprintf("%s (%s): not present in the instrumentation snapshot", subject, name)
			return chk
		}
		chk.Got = got
	case KindStallFrac:
		subject = "stall_frac " + a.Category
		if res.Profile == nil {
			chk.Detail = fmt.Sprintf("%s (%s): no attribution profile in the result", subject, name)
			return chk
		}
		chk.Got = res.Profile.Fraction(a.Category)
	case KindFaultCounter:
		subject = "fault counter " + a.Counter
		switch a.Counter {
		case "degraded_sends":
			chk.Got = float64(res.FaultDegradedSends)
		case "flap_retries":
			chk.Got = float64(res.FaultFlapRetries)
		case "drained_pages":
			chk.Got = float64(res.FaultDrainedPages)
		}
	case KindPoolPages:
		subject = "pool_pages"
		chk.Got = float64(res.PoolPages)
	case KindDrainComplete:
		// The drain completed iff final pool residency fits the degraded
		// capacity the event script leaves the device with.
		subject = "drain complete: pool residency"
		chk.Op = "<="
		chk.Want = float64(c.drainCapacity(name))
		chk.Got = float64(res.PoolPages)
	}
	chk.Pass = cmpOp(chk.Op, chk.Got, chk.Want)
	verb := "expected"
	if !chk.Pass {
		verb = "FAILED: expected"
	}
	chk.Detail = fmt.Sprintf("%s (%s): %s %s %v, got %v", subject, name, verb, chk.Op, chk.Want, chk.Got)
	return chk
}

// drainCapacity returns the pool page capacity left for the named
// workload under the event script's final-phase pool state.
func (c *Compiled) drainCapacity(name string) int {
	var footprint int
	for _, spec := range c.Specs {
		if spec.Name == name {
			footprint = spec.FootprintPages
			break
		}
	}
	sched := fault.NewSchedule(c.Cfg.Faults)
	st := sched.Pool(c.Cfg.Phases-1, c.Sys.Pool.Channels)
	return c.Sys.Pool.DegradedCapacityPages(footprint, st)
}

// lookupMetric resolves a metric name against the snapshot, trying the
// namespaces in a fixed order: counters, gauges, histograms (mean),
// series (sum of point values).
func lookupMetric(s *metrics.Snapshot, name string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	if v, ok := s.Counters[name]; ok {
		return float64(v), true
	}
	if v, ok := s.Gauges[name]; ok {
		return v, true
	}
	if h, ok := s.Histograms[name]; ok {
		return h.Mean(), true
	}
	if pts, ok := s.Series[name]; ok {
		var sum float64
		for _, p := range pts {
			sum += p.V
		}
		return sum, true
	}
	return 0, false
}

func cmpOp(op string, got, want float64) bool {
	switch op {
	case "<":
		return got < want
	case "<=":
		return got <= want
	case ">":
		return got > want
	case ">=":
		return got >= want
	case "==":
		return stats.SameFloat(got, want)
	case "!=":
		return !stats.SameFloat(got, want)
	}
	return false
}

func amatNs(res *core.Result) float64 {
	if res.AMAT == nil {
		return 0
	}
	return res.AMAT.Measured().Nanos()
}
