package scenario

import (
	"fmt"
	"strings"

	"starnuma/internal/attrib"
	"starnuma/internal/fault"
	"starnuma/internal/migrate"
	"starnuma/internal/stats"
	"starnuma/internal/workload"
)

// System base variants.
const (
	BaseStarNUMA     = "starnuma"
	BaseBaseline     = "baseline"
	BaseSingleSocket = "single-socket"
)

// fieldErr formats a validation error that names the offending field,
// e.g. "scenario: events[2].period_ps: must be > 0".
func fieldErr(field, format string, args ...any) error {
	return fmt.Errorf("scenario: %s: %s", field, fmt.Sprintf(format, args...))
}

// oneOf reports whether v is empty (meaning "default") or one of the
// allowed spellings.
func oneOf(v string, allowed ...string) bool {
	if v == "" {
		return true
	}
	for _, a := range allowed {
		if v == a {
			return true
		}
	}
	return false
}

// validOps are the assertion comparison operators.
var validOps = []string{"<", "<=", ">", ">=", "==", "!="}

// faultCounters are the Result counters kind "fault_counter" can name.
var faultCounters = []string{"degraded_sends", "flap_retries", "drained_pages"}

// Validate reports the first semantic error in the scenario, naming the
// offending field. It checks everything that does not require running a
// simulation: section enums, event-script ranges and conflicts (via the
// compiled fault plan), workload names, and assertion shapes.
func (s *Scenario) Validate() error {
	if s.Schema != Schema {
		return fieldErr("schema", "got %q, want %q", s.Schema, Schema)
	}
	if s.Name == "" {
		return fieldErr("name", "must be set")
	}
	if strings.ContainsAny(s.Name, " \t\n/\\") {
		return fieldErr("name", "%q may not contain whitespace or slashes", s.Name)
	}
	if err := s.validateSystem(); err != nil {
		return err
	}
	if err := s.validateSim(); err != nil {
		return err
	}
	if err := s.validateWorkloads(); err != nil {
		return err
	}
	if err := s.validateEvents(); err != nil {
		return err
	}
	return s.validateAssertions()
}

func (s *Scenario) validateSystem() error {
	sys := s.System
	if !oneOf(sys.Base, BaseStarNUMA, BaseBaseline, BaseSingleSocket) {
		return fieldErr("system.base", "unknown variant %q (want starnuma, baseline or single-socket)", sys.Base)
	}
	hasPool := s.hasPool()
	if sys.Sockets < 0 {
		return fieldErr("system.sockets", "negative count %d", sys.Sockets)
	}
	if sys.SocketsPerChassis < 0 {
		return fieldErr("system.sockets_per_chassis", "negative count %d", sys.SocketsPerChassis)
	}
	if sys.Base == BaseSingleSocket && (sys.Sockets > 1 || sys.SocketsPerChassis > 1) {
		return fieldErr("system.sockets", "base single-socket fixes the shape at one socket")
	}
	if !hasPool {
		switch {
		case !stats.IsZero(sys.PoolCapacityFraction):
			return fieldErr("system.pool_capacity_fraction", "base %q has no pool", sys.Base)
		case sys.PoolChannels != 0:
			return fieldErr("system.pool_channels", "base %q has no pool", sys.Base)
		case sys.PoolLatency != "":
			return fieldErr("system.pool_latency", "base %q has no pool", sys.Base)
		case !stats.IsZero(sys.CXLBandwidthGBps):
			return fieldErr("system.cxl_bandwidth_gbps", "base %q has no pool", sys.Base)
		}
	}
	if sys.PoolCapacityFraction < 0 || sys.PoolCapacityFraction > 1 {
		return fieldErr("system.pool_capacity_fraction", "%v out of (0, 1]", sys.PoolCapacityFraction)
	}
	if sys.PoolChannels < 0 {
		return fieldErr("system.pool_channels", "negative count %d", sys.PoolChannels)
	}
	if !oneOf(sys.PoolLatency, "default", "switched") {
		return fieldErr("system.pool_latency", "unknown budget %q (want default or switched)", sys.PoolLatency)
	}
	if sys.CXLBandwidthGBps < 0 || sys.UPIBandwidthGBps < 0 || sys.NUMABandwidthGBps < 0 {
		return fieldErr("system", "negative link bandwidth override")
	}
	return nil
}

func (s *Scenario) validateSim() error {
	sim := s.Sim
	if !oneOf(sim.Preset, "quick", "default") {
		return fieldErr("sim.preset", "unknown preset %q (want quick or default)", sim.Preset)
	}
	if sim.Phases < 0 {
		return fieldErr("sim.phases", "negative count %d", sim.Phases)
	}
	if sim.Scale < 0 {
		return fieldErr("sim.scale", "negative scale %v", sim.Scale)
	}
	policy := sim.Policy
	if policy == "" {
		policy = "starnuma"
	}
	if _, ok := migrate.LookupPolicy(policy); !ok {
		return fieldErr("sim.policy", "unknown policy %q (registered: %s)",
			sim.Policy, strings.Join(migrate.PolicyNames(), ", "))
	}
	if err := migrate.CheckParams(policy, migrate.Params(sim.PolicyParams)); err != nil {
		return fieldErr("sim.policy_params", "%v", err)
	}
	if !oneOf(sim.Tracker, "t16", "t0") {
		return fieldErr("sim.tracker", "unknown tracker %q (want t16 or t0)", sim.Tracker)
	}
	return nil
}

func (s *Scenario) validateWorkloads() error {
	if len(s.Workloads) == 0 {
		return fieldErr("workloads", "at least one workload placement required")
	}
	known := workload.Names()
	seen := make(map[string]bool, len(s.Workloads))
	for i, w := range s.Workloads {
		field := fmt.Sprintf("workloads[%d]", i)
		found := false
		for _, n := range known {
			if n == w.Name {
				found = true
				break
			}
		}
		if !found {
			return fieldErr(field+".name", "unknown workload %q (suite: %s)", w.Name, strings.Join(known, ", "))
		}
		if seen[w.Name] {
			return fieldErr(field+".name", "workload %q placed twice", w.Name)
		}
		seen[w.Name] = true
		if w.Scale < 0 {
			return fieldErr(field+".scale", "negative scale %v", w.Scale)
		}
	}
	return nil
}

// placed reports whether name is one of the scenario's placements.
func (s *Scenario) placed(name string) bool {
	for _, w := range s.Workloads {
		if w.Name == name {
			return true
		}
	}
	return false
}

// hasPool reports whether the compiled system will have a memory pool.
func (s *Scenario) hasPool() bool {
	return s.System.Base == "" || s.System.Base == BaseStarNUMA
}

func (s *Scenario) validateEvents() error {
	for i, e := range s.Events {
		field := fmt.Sprintf("events[%d]", i)
		if e.AtPhase < 0 {
			return fieldErr(field+".at_phase", "negative phase %d", e.AtPhase)
		}
		if e.UntilPhase < 0 {
			return fieldErr(field+".until_phase", "negative phase %d", e.UntilPhase)
		}
		if e.UntilPhase != 0 && e.UntilPhase <= e.AtPhase {
			return fieldErr(field+".until_phase", "empty phase range [%d, %d)", e.AtPhase, e.UntilPhase)
		}
		if e.AtPS < 0 || e.UntilPS < 0 {
			return fieldErr(field+".at_ps", "negative time range [%dps, %dps)", e.AtPS, e.UntilPS)
		}
		if e.UntilPS != 0 && e.UntilPS <= e.AtPS {
			return fieldErr(field+".until_ps", "empty time range [%dps, %dps)", e.AtPS, e.UntilPS)
		}
		switch e.Action {
		case ActionDegradeLink:
			if e.Target == "" {
				return fieldErr(field+".target", "degrade-link needs a link target (cxl, upi, numalink, link)")
			}
			if e.LatencyX <= 1 && e.BandwidthDiv <= 1 {
				return fieldErr(field+".latency_x", "degrade-link with no effect (latency_x and bandwidth_div both ≤ 1)")
			}
		case ActionFlapLink:
			if e.Target == "" {
				return fieldErr(field+".target", "flap-link needs a link target (cxl, upi, numalink, link)")
			}
			if e.PeriodPS <= 0 {
				return fieldErr(field+".period_ps", "must be > 0")
			}
			if e.DownPS <= 0 || e.DownPS >= e.PeriodPS {
				return fieldErr(field+".down_ps", "%d must be in (0, period_ps=%d)", e.DownPS, e.PeriodPS)
			}
			if e.RetryPS < 0 {
				return fieldErr(field+".retry_ps", "negative retry %d", e.RetryPS)
			}
		case ActionKill:
			if !s.hasPool() {
				return fieldErr(field, "kill targets the pool, but system.base %q has none", s.System.Base)
			}
			if e.Target != "pool" && !strings.HasPrefix(e.Target, "pool:") {
				return fieldErr(field+".target", "kill needs \"pool\" or \"pool:chN\", got %q", e.Target)
			}
			if e.UntilPhase != 0 || e.AtPS != 0 || e.UntilPS != 0 {
				return fieldErr(field, "kill is permanent: until_phase/at_ps/until_ps must be unset")
			}
		case ActionPoolCapacity:
			if !s.hasPool() {
				return fieldErr(field, "pool-capacity targets the pool, but system.base %q has none", s.System.Base)
			}
			if e.Target != "" && e.Target != "pool" {
				return fieldErr(field+".target", "pool-capacity applies to \"pool\", got %q", e.Target)
			}
			if e.CapacityFrac <= 0 || e.CapacityFrac >= 1 {
				return fieldErr(field+".capacity_frac", "%v must be in (0, 1)", e.CapacityFrac)
			}
			if e.AtPS != 0 || e.UntilPS != 0 {
				return fieldErr(field, "pool-capacity is phase-granular: at_ps/until_ps must be unset")
			}
		case ActionWorkloadShift:
			if e.ShiftFrac <= 0 || e.ShiftFrac > 1 {
				return fieldErr(field+".shift_frac", "%v must be in (0, 1]", e.ShiftFrac)
			}
			if e.PeriodPhases < 1 {
				return fieldErr(field+".period_phases", "must be ≥ 1")
			}
			if e.AtPhase != 0 || e.UntilPhase != 0 || e.AtPS != 0 || e.UntilPS != 0 {
				return fieldErr(field, "workload-shift recurs every period_phases from the start: at_phase/until_phase/at_ps/until_ps must be unset")
			}
			if e.Workload != "" && !s.placed(e.Workload) {
				return fieldErr(field+".workload", "%q is not one of the scenario's placements", e.Workload)
			}
		case "":
			return fieldErr(field+".action", "must be set")
		default:
			return fieldErr(field+".action", "unknown action %q", e.Action)
		}
	}
	// The link/pool events must also form a consistent fault plan
	// (fault.Plan.Validate rejects same-kind overlaps on intersecting
	// targets/phases/times).
	if plan := s.faultPlan(); plan != nil {
		if err := plan.Validate(); err != nil {
			return fmt.Errorf("scenario: events: %w", err)
		}
	}
	return nil
}

func (s *Scenario) validateAssertions() error {
	if len(s.Assertions) == 0 {
		return fieldErr("assertions", "at least one assertion required (a scenario is a regression check)")
	}
	for i, a := range s.Assertions {
		field := fmt.Sprintf("assertions[%d]", i)
		if a.Workload != "" && !s.placed(a.Workload) {
			return fieldErr(field+".workload", "%q is not one of the scenario's placements", a.Workload)
		}
		needsOp := a.Kind != KindDrainComplete
		if needsOp {
			ok := false
			for _, op := range validOps {
				if a.Op == op {
					ok = true
					break
				}
			}
			if !ok {
				return fieldErr(field+".op", "got %q, want one of %s", a.Op, strings.Join(validOps, " "))
			}
		}
		switch a.Kind {
		case KindIPC, KindMPKI, KindAMATNs, KindPoolPages:
			if a.Value < 0 {
				return fieldErr(field+".value", "negative threshold %v", a.Value)
			}
		case KindSpeedup:
			if !oneOf(a.Vs, VsNoEvents, VsBaseline) {
				return fieldErr(field+".vs", "unknown reference %q (want no-events or baseline)", a.Vs)
			}
			if a.Value < 0 {
				return fieldErr(field+".value", "negative speedup bound %v", a.Value)
			}
		case KindMetric:
			if a.Metric == "" {
				return fieldErr(field+".metric", "kind metric needs a metric name (e.g. migrate/pages_to_pool)")
			}
		case KindStallFrac:
			if _, ok := attrib.ByName(a.Category); !ok {
				return fieldErr(field+".category", "got %q, want one of %s", a.Category, strings.Join(attrib.Names(), " "))
			}
			if a.Value < 0 || a.Value > 1 {
				return fieldErr(field+".value", "stall fraction %v outside [0,1]", a.Value)
			}
		case KindFaultCounter:
			ok := false
			for _, c := range faultCounters {
				if a.Counter == c {
					ok = true
					break
				}
			}
			if !ok {
				return fieldErr(field+".counter", "got %q, want one of %s", a.Counter, strings.Join(faultCounters, ", "))
			}
		case KindDrainComplete:
			if a.Op != "" || !stats.IsZero(a.Value) {
				return fieldErr(field, "drain_complete takes no op/value")
			}
			if !s.hasPool() {
				return fieldErr(field, "drain_complete needs a pool, but system.base %q has none", s.System.Base)
			}
		case "":
			return fieldErr(field+".kind", "must be set")
		default:
			return fieldErr(field+".kind", "unknown kind %q", a.Kind)
		}
		if a.Metric != "" && a.Kind != KindMetric {
			return fieldErr(field+".metric", "only kind metric takes a metric name")
		}
		if a.Counter != "" && a.Kind != KindFaultCounter {
			return fieldErr(field+".counter", "only kind fault_counter takes a counter name")
		}
		if a.Category != "" && a.Kind != KindStallFrac {
			return fieldErr(field+".category", "only kind stall_frac takes a category name")
		}
		if a.Vs != "" && a.Kind != KindSpeedup {
			return fieldErr(field+".vs", "only kind speedup takes a reference")
		}
	}
	return nil
}

// faultPlan builds the fault plan the event script compiles into: every
// event except workload shifts, in script order. Returns nil when the
// script has no fault-bound events.
func (s *Scenario) faultPlan() *fault.Plan {
	var events []fault.Event
	for _, e := range s.Events {
		switch e.Action {
		case ActionDegradeLink:
			events = append(events, fault.Event{
				Kind: fault.Degrade, Target: e.Target,
				FromPhase: e.AtPhase, ToPhase: e.UntilPhase,
				FromNS: psToNS(e.AtPS), ToNS: psToNS(e.UntilPS),
				LatencyX: e.LatencyX, BandwidthDiv: e.BandwidthDiv,
			})
		case ActionFlapLink:
			events = append(events, fault.Event{
				Kind: fault.Flap, Target: e.Target,
				FromPhase: e.AtPhase, ToPhase: e.UntilPhase,
				FromNS: psToNS(e.AtPS), ToNS: psToNS(e.UntilPS),
				PeriodNS: psToNS(e.PeriodPS), DownNS: psToNS(e.DownPS), RetryNS: psToNS(e.RetryPS),
			})
		case ActionKill:
			events = append(events, fault.Event{
				Kind: fault.Kill, Target: e.Target, FromPhase: e.AtPhase,
			})
		case ActionPoolCapacity:
			events = append(events, fault.Event{
				Kind: fault.Capacity, Target: "pool",
				FromPhase: e.AtPhase, ToPhase: e.UntilPhase,
				CapacityFrac: e.CapacityFrac,
			})
		}
	}
	if len(events) == 0 {
		return nil
	}
	return &fault.Plan{Name: s.Name, Events: events}
}

// psToNS converts a scenario's integer picosecond timestamp to the
// fault plan's nanosecond float. fault compiles it back with
// sim.FromNanos, which rounds to the nearest picosecond, so the round
// trip is exact for any ps value within float64's integer range.
func psToNS(ps int64) float64 { return float64(ps) / 1000 }
