package scenario

import (
	"strings"
	"testing"
)

// FuzzParseScenario pins the parser's contract: arbitrary bytes never
// panic, and every rejection is a scenario-prefixed error (so failures
// name the layer, and field errors name the field).
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(validDoc))
	f.Add([]byte(assertDoc))
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"schema": "starnuma-scenario-v1"}`))
	f.Add([]byte(`{"schema": "starnuma-scenario-v1", "name": "x", "workloads": [{"name": "BFS"}], "assertions": [{"kind": "ipc", "op": ">", "value": 0}], "unknown": 1}`))
	f.Add([]byte(strings.Replace(validDoc, `"capacity_frac": 0.5`, `"capacity_frac": 1e308`, 1)))
	f.Add([]byte(strings.Replace(validDoc, `"at_phase": 1`, `"at_phase": -9`, 1)))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "scenario:") {
				t.Fatalf("error without scenario prefix: %v", err)
			}
			return
		}
		// Accepted documents must survive the rest of the pipeline
		// without panicking: hashing, line attribution and compilation.
		if s.Hash() == "" {
			t.Fatal("accepted scenario has empty hash")
		}
		for i := range s.Assertions {
			s.LineOf(i)
		}
		if _, err := Compile(s); err != nil &&
			!strings.HasPrefix(err.Error(), "scenario:") {
			t.Fatalf("compile error without scenario prefix: %v", err)
		}
	})
}
