package scenario

import (
	"strings"
	"testing"
)

// validDoc is a full-featured scenario exercising every section.
const validDoc = `{
  "schema": "starnuma-scenario-v1",
  "name": "test-full",
  "description": "exercises every section",
  "system": {
    "base": "starnuma",
    "sockets": 8,
    "sockets_per_chassis": 4,
    "pool_capacity_fraction": 0.25,
    "pool_channels": 4
  },
  "sim": {"preset": "quick", "phases": 3, "scale": 0.05},
  "workloads": [
    {"name": "BFS"},
    {"name": "TPCC", "scale": 0.04, "seed": 7}
  ],
  "events": [
    {"action": "degrade-link", "target": "cxl", "at_phase": 1, "latency_x": 2},
    {"action": "flap-link", "target": "upi", "at_phase": 1, "until_phase": 2,
     "period_ps": 1000000, "down_ps": 100000, "retry_ps": 50000},
    {"action": "pool-capacity", "at_phase": 1, "capacity_frac": 0.5},
    {"action": "workload-shift", "workload": "BFS", "shift_frac": 0.3, "period_phases": 1}
  ],
  "assertions": [
    {"kind": "ipc", "op": ">", "value": 0.01},
    {"kind": "speedup", "vs": "no-events", "op": "<=", "value": 1.5},
    {"kind": "fault_counter", "counter": "degraded_sends", "op": ">=", "value": 1, "workload": "BFS"},
    {"kind": "drain_complete"}
  ]
}
`

func TestParseValid(t *testing.T) {
	s, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Name != "test-full" || len(s.Workloads) != 2 || len(s.Events) != 4 || len(s.Assertions) != 4 {
		t.Fatalf("parsed shape wrong: %+v", s)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring the error must carry (the offending field)
	}{
		{"empty", ``, "parse"},
		{"not json", `nonsense`, "parse"},
		{"wrong schema", `{"schema": "v0", "name": "x", "workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`, "schema"},
		{"unknown field", `{"schema": "starnuma-scenario-v1", "name": "x", "typo_field": 1,
			"workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`, "typo_field"},
		{"trailing data", validDoc + `{"more": true}`, "trailing data"},
		{"no name", `{"schema": "starnuma-scenario-v1", "workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`, "name"},
		{"bad base", `{"schema": "starnuma-scenario-v1", "name": "x",
			"system": {"base": "quantum"}, "workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`, "system.base"},
		{"pool override on baseline", `{"schema": "starnuma-scenario-v1", "name": "x",
			"system": {"base": "baseline", "pool_channels": 4}, "workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`, "system.pool_channels"},
		{"no workloads", `{"schema": "starnuma-scenario-v1", "name": "x",
			"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`, "workloads"},
		{"unknown workload", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "NOPE"}],
			"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`, "workloads[0].name"},
		{"duplicate workload", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}, {"name": "BFS"}],
			"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`, "workloads[1].name"},
		{"bad action", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}],
			"events": [{"action": "explode"}],
			"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`, "events[0].action"},
		{"flap without period", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}],
			"events": [{"action": "flap-link", "target": "cxl"}],
			"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`, "events[0].period_ps"},
		{"capacity out of range", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}],
			"events": [{"action": "pool-capacity", "capacity_frac": 1.5}],
			"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`, "events[0].capacity_frac"},
		{"kill on pool-less base", `{"schema": "starnuma-scenario-v1", "name": "x",
			"system": {"base": "baseline"}, "workloads": [{"name": "BFS"}],
			"events": [{"action": "kill", "target": "pool"}],
			"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`, "events[0]"},
		{"overlapping degrades", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}],
			"events": [
				{"action": "degrade-link", "target": "cxl", "latency_x": 2},
				{"action": "degrade-link", "target": "cxl", "latency_x": 3}],
			"assertions": [{"kind": "ipc", "op": ">", "value": 0}]}`, "overlap"},
		{"no assertions", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}]}`, "assertions"},
		{"bad op", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "ipc", "op": "~", "value": 0}]}`, "assertions[0].op"},
		{"bad kind", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "vibes", "op": ">", "value": 0}]}`, "assertions[0].kind"},
		{"metric without name", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "metric", "op": ">", "value": 0}]}`, "assertions[0].metric"},
		{"counter on wrong kind", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "ipc", "counter": "drained_pages", "op": ">", "value": 0}]}`,
			"assertions[0].counter"},
		{"assertion names unplaced workload", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "ipc", "workload": "TPCC", "op": ">", "value": 0}]}`,
			"assertions[0].workload"},
		{"drain_complete with op", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "drain_complete", "op": "<"}]}`, "assertions[0]"},
		{"stall_frac unknown category", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "stall_frac", "category": "vibes", "op": ">", "value": 0.5}]}`,
			"assertions[0].category"},
		{"stall_frac out of range", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "stall_frac", "category": "cxl-queue", "op": ">", "value": 1.5}]}`,
			"assertions[0].value"},
		{"category on wrong kind", `{"schema": "starnuma-scenario-v1", "name": "x",
			"workloads": [{"name": "BFS"}],
			"assertions": [{"kind": "ipc", "category": "cxl-queue", "op": ">", "value": 0}]}`,
			"assertions[0].category"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted invalid doc")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

func TestLineOf(t *testing.T) {
	s, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	// The assertions array in validDoc starts on line 25; each assertion
	// is one line.
	lines := strings.Split(validDoc, "\n")
	for i := 0; i < len(s.Assertions); i++ {
		ln := s.LineOf(i)
		if ln == 0 {
			t.Fatalf("assertion %d has no line", i)
		}
		if !strings.Contains(lines[ln-1], `"kind"`) {
			t.Errorf("assertion %d attributed to line %d: %q", i, ln, lines[ln-1])
		}
	}
	if s.LineOf(-1) != 0 || s.LineOf(len(s.Assertions)) != 0 {
		t.Error("out-of-range LineOf should return 0")
	}
}

func TestHashFormattingInsensitive(t *testing.T) {
	a, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	// Same document, one line, different key spacing.
	compact := strings.Join(strings.Fields(validDoc), " ")
	b, err := Parse([]byte(compact))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() == "" || a.Hash() != b.Hash() {
		t.Fatalf("hash should be formatting-insensitive: %q vs %q", a.Hash(), b.Hash())
	}
	// But content-sensitive.
	c := *a
	c.Name = "other"
	if c.Hash() == a.Hash() {
		t.Fatal("hash ignored a content change")
	}
}
