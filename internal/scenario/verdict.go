package scenario

import (
	"encoding/json"
	"fmt"
)

// VerdictSchema versions the verdict-manifest document; bump on
// incompatible shape changes.
const VerdictSchema = "starnuma-scenario-verdict-v1"

// Verdict is the machine-readable outcome of one scenario run: headline
// numbers per placed workload plus the result of every assertion. Every
// field derives from the scenario document and the simulation Results,
// so Encode is byte-identical across reruns and worker counts.
type Verdict struct {
	Schema      string            `json:"schema"`
	Scenario    string            `json:"scenario"`
	Description string            `json:"description,omitempty"`
	Hash        string            `json:"hash"`
	Pass        bool              `json:"pass"`
	Workloads   []WorkloadOutcome `json:"workloads"`
	Checks      []Check           `json:"checks"`
}

// WorkloadOutcome is one placed workload's headline numbers.
type WorkloadOutcome struct {
	Workload      string  `json:"workload"`
	IPC           float64 `json:"ipc"`
	AMATNs        float64 `json:"amat_ns"`
	MPKI          float64 `json:"mpki"`
	PoolPages     int     `json:"pool_pages"`
	DrainedPages  uint64  `json:"drained_pages"`
	DegradedSends uint64  `json:"degraded_sends"`
	FlapRetries   uint64  `json:"flap_retries"`
	// Speedups are present only when the scenario declared the matching
	// reference (a speedup assertion).
	SpeedupVsNoEvents float64 `json:"speedup_vs_no_events,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// Check is the outcome of one assertion for one workload. Assertions
// with no workload restriction expand to one Check per placement, all
// sharing the assertion's Index and source Line.
type Check struct {
	// Index is the assertion's position in the scenario document.
	Index int `json:"index"`
	// Line is the assertion's 1-based source line (0 when the scenario
	// was built programmatically).
	Line     int    `json:"line,omitempty"`
	Kind     string `json:"kind"`
	Workload string `json:"workload,omitempty"`
	// Op/Want/Got record the comparison: Got Op Want.
	Op   string  `json:"op,omitempty"`
	Want float64 `json:"want"`
	Got  float64 `json:"got"`
	Pass bool    `json:"pass"`
	// Detail is the human-readable expected-vs-actual line, e.g.
	// "metric fault/drained_pages (BFS): expected >= 1, got 0".
	Detail string `json:"detail"`
}

// Failed returns the checks that did not pass, in document order.
func (v *Verdict) Failed() []Check {
	var out []Check
	for _, c := range v.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// Summary is the one-line human outcome, e.g.
// "PASS capacity-squeeze (5 checks)".
func (v *Verdict) Summary() string {
	if v.Pass {
		return fmt.Sprintf("PASS %s (%d checks)", v.Scenario, len(v.Checks))
	}
	return fmt.Sprintf("FAIL %s (%d/%d checks failed)", v.Scenario, len(v.Failed()), len(v.Checks))
}

// Encode renders the verdict as indented JSON with a trailing newline —
// the canonical manifest bytes the determinism tests pin.
func (v *Verdict) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode verdict: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeVerdict parses a verdict previously produced by Encode. Corrupt
// input returns an error, never a panic.
func DecodeVerdict(b []byte) (*Verdict, error) {
	var v Verdict
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("scenario: decode verdict: %w", err)
	}
	return &v, nil
}
