package migrate

// poolPlacementSuspended is a sharer threshold no real sharer set can
// reach (sharer counts are bounded by the socket count), used to switch
// pool placement off for a phase.
const poolPlacementSuspended = 1 << 30

// BandwidthAware wraps Algorithm 1's scan with link-saturation backoff:
// before each decision it consults the environment's health outlook for
// the upcoming timing window (decisions made at the end of phase P are
// modeled during P+1). Under partial degradation it scales the migration
// limit down by the severity factor — every migrated page crosses the
// very fabric that is struggling — and past the backoff point (or with a
// dead pool device) it suspends pool placement entirely, degenerating to
// socket-only StarNUMA-Halt behaviour until the link recovers.
type BandwidthAware struct {
	inner    *StarNUMA
	link     func(phase int) LinkHealth
	backoffX float64

	backoffPhases uint64
}

// Name implements Policy.
func (p *BandwidthAware) Name() string { return "bandwidth-aware" }

// Stats implements Policy.
func (p *BandwidthAware) Stats() Stats {
	s := p.inner.Stats()
	s.LinkBackoffPhases = p.backoffPhases
	return s
}

// Decide implements Policy.
func (p *BandwidthAware) Decide(phase int, st *State) []Migration {
	h := p.link(phase + 1)
	sev := h.Severity()
	saved := p.inner.cfg
	if h.PoolDead || sev >= p.backoffX {
		// Suspend pool placement: no sharer set can reach the threshold.
		p.inner.cfg.PoolSharerThreshold = poolPlacementSuspended
		p.backoffPhases++
	}
	if sev > 1 && saved.MigrationLimit > 0 {
		p.inner.cfg.MigrationLimit = int(float64(saved.MigrationLimit) / sev)
	}
	out := p.inner.Decide(phase, st)
	p.inner.cfg = saved
	return out
}
