package migrate

import (
	"testing"

	"starnuma/internal/topology"
	"starnuma/internal/tracker"
)

const (
	testPages   = 1024
	regionPages = 32
	poolNode    = topology.NodeID(16)
)

// newState builds a 16-socket state with all pages first-touched onto
// socket 0 and a pool of the given capacity.
func newState(tb *tracker.Table, poolCap int) *State {
	home := make([]topology.NodeID, testPages)
	return &State{
		PageHome:          home,
		Tracker:           tb,
		Sockets:           16,
		HasPool:           true,
		PoolNode:          poolNode,
		PoolCapacityPages: poolCap,
	}
}

// heatRegion records n accesses to region r from each socket in sockets.
func heatRegion(tb *tracker.Table, r int, n int, sockets ...int) {
	first, _ := tb.PageRange(r)
	for i := 0; i < n; i++ {
		for _, s := range sockets {
			tb.Record(s, uint32(first+i%regionPages))
		}
	}
}

func allSockets() []int {
	out := make([]int, 16)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestHotWidelySharedRegionGoesToPool(t *testing.T) {
	tb := tracker.NewTable(tracker.T16, testPages, regionPages)
	st := newState(tb, 512)
	heatRegion(tb, 2, 100, allSockets()...)

	cfg := DefaultConfig()
	cfg.HiStart = 64
	p := NewStarNUMA(cfg)
	ms := p.Decide(0, st)
	if len(ms) != regionPages {
		t.Fatalf("migrated %d pages, want %d", len(ms), regionPages)
	}
	sortMigrationsByPage(ms)
	first, _ := tb.PageRange(2)
	for i, m := range ms {
		if m.To != poolNode || int(m.Page) != first+i || m.From != 0 {
			t.Fatalf("migration %d = %+v", i, m)
		}
		if st.PageHome[m.Page] != poolNode {
			t.Fatal("PageHome not updated")
		}
	}
	if got := p.Stats().PagesToPool; got != regionPages {
		t.Fatalf("PagesToPool = %d", got)
	}
}

func TestHotNarrowlySharedRegionGoesToSharerSocket(t *testing.T) {
	tb := tracker.NewTable(tracker.T16, testPages, regionPages)
	st := newState(tb, 512)
	heatRegion(tb, 3, 200, 5, 6) // two sharers < threshold 8

	cfg := DefaultConfig()
	cfg.HiStart = 64
	p := NewStarNUMA(cfg)
	ms := p.Decide(0, st)
	if len(ms) != regionPages {
		t.Fatalf("migrated %d pages", len(ms))
	}
	for _, m := range ms {
		if m.To != 5 && m.To != 6 {
			t.Fatalf("destination %d not a sharer", m.To)
		}
	}
	if p.Stats().PagesToPool != 0 || p.Stats().PagesToSocket != regionPages {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestColdRegionNotMigrated(t *testing.T) {
	tb := tracker.NewTable(tracker.T16, testPages, regionPages)
	st := newState(tb, 512)
	heatRegion(tb, 1, 1, allSockets()...) // 16 accesses < HiStart

	cfg := DefaultConfig()
	cfg.HiStart = 1000
	p := NewStarNUMA(cfg)
	if ms := p.Decide(0, st); len(ms) != 0 {
		t.Fatalf("cold region migrated: %d pages", len(ms))
	}
}

func TestMigrationLimitRespected(t *testing.T) {
	tb := tracker.NewTable(tracker.T16, testPages, regionPages)
	st := newState(tb, testPages)
	for r := 0; r < 8; r++ {
		heatRegion(tb, r, 100, allSockets()...)
	}
	cfg := DefaultConfig()
	cfg.HiStart = 64
	cfg.MigrationLimit = regionPages * 2
	p := NewStarNUMA(cfg)
	ms := p.Decide(0, st)
	if len(ms) != regionPages*2 {
		t.Fatalf("migrated %d pages, want limit %d", len(ms), regionPages*2)
	}
}

func TestPoolCapacityTriggersEviction(t *testing.T) {
	tb := tracker.NewTable(tracker.T16, testPages, regionPages)
	st := newState(tb, regionPages) // pool fits exactly one region
	// Region 0 already in the pool but cold this phase.
	first, _ := tb.PageRange(0)
	for pg := first; pg < first+regionPages; pg++ {
		st.PageHome[pg] = poolNode
	}
	// A couple of sockets still touch it, below LO.
	tb.Record(2, uint32(first))
	heatRegion(tb, 5, 200, allSockets()...)

	cfg := DefaultConfig()
	cfg.HiStart = 64
	cfg.LoStart = 16
	p := NewStarNUMA(cfg)
	ms := p.Decide(0, st)

	// Region 0 must be evicted to a sharer (socket 2), region 5 pooled.
	var evicted, pooled int
	for _, m := range ms {
		switch {
		case m.From == poolNode && m.To == 2:
			evicted++
		case m.To == poolNode:
			pooled++
		}
	}
	if evicted != regionPages {
		t.Fatalf("evicted %d pages, want %d", evicted, regionPages)
	}
	if pooled != regionPages {
		t.Fatalf("pooled %d pages, want %d", pooled, regionPages)
	}
	if p.Stats().Evictions != regionPages {
		t.Fatalf("eviction stats = %+v", p.Stats())
	}
}

func TestPoolFullNoVictimSkips(t *testing.T) {
	tb := tracker.NewTable(tracker.T16, testPages, regionPages)
	st := newState(tb, regionPages)
	// Region 0 in pool and HOT (above LO): not evictable.
	first, _ := tb.PageRange(0)
	for pg := first; pg < first+regionPages; pg++ {
		st.PageHome[pg] = poolNode
	}
	heatRegion(tb, 0, 100, allSockets()...)
	heatRegion(tb, 5, 200, allSockets()...)

	cfg := DefaultConfig()
	cfg.HiStart = 6400 // only region 5 (200*16=3200... keep both hot) -> lower
	cfg.HiStart = 64
	cfg.LoStart = 4
	p := NewStarNUMA(cfg)
	ms := p.Decide(0, st)
	for _, m := range ms {
		if m.To == poolNode {
			t.Fatalf("migration to full pool: %+v", m)
		}
	}
	if p.Stats().EvictFailures == 0 {
		t.Fatal("no eviction failure recorded")
	}
	_, lo := p.Thresholds()
	if lo <= cfg.LoStart {
		t.Fatalf("LO threshold not raised after eviction failure: %d", lo)
	}
}

func TestPingPongSuppression(t *testing.T) {
	tb := tracker.NewTable(tracker.T16, testPages, regionPages)
	st := newState(tb, 512)
	cfg := DefaultConfig()
	cfg.HiStart = 64
	cfg.HiMin = 64
	cfg.HiMax = 64 // freeze threshold
	p := NewStarNUMA(cfg)

	// Region 1 oscillates: hot from all sockets each phase, but after
	// migrating to the pool, force it back out and heat it again. After
	// migCount > phase/4 it must be skipped.
	skips := func() uint64 { return p.Stats().PingPongSkips }
	for phase := 0; phase < 8; phase++ {
		tb.Reset()
		heatRegion(tb, 1, 100, allSockets()...)
		p.Decide(phase, st)
		// Kick the region out of the pool behind the policy's back.
		first, _ := tb.PageRange(1)
		for pg := first; pg < first+regionPages; pg++ {
			st.PageHome[pg] = 3
		}
	}
	if skips() == 0 {
		t.Fatal("ping-ponging region never suppressed")
	}
}

func TestT0PolicyPoolsOnlyFullySharedRegions(t *testing.T) {
	tb := tracker.NewTable(tracker.T0, testPages, regionPages)
	st := newState(tb, 512)
	heatRegion(tb, 2, 50, allSockets()...)      // all 16 sockets
	heatRegion(tb, 3, 500, 0, 1, 2, 3, 4, 5, 6) // 7 sockets: hot but not fully shared
	p := NewStarNUMA(DefaultConfig())
	ms := p.Decide(0, st)
	for _, m := range ms {
		r := tb.RegionOf(m.Page)
		if r != 2 {
			t.Fatalf("T0 migrated region %d: %+v", r, m)
		}
		if m.To != poolNode {
			t.Fatalf("T0 destination %v", m.To)
		}
	}
	if len(ms) != regionPages {
		t.Fatalf("migrated %d pages", len(ms))
	}
}

func TestDynamicHiThresholdAdjusts(t *testing.T) {
	tb := tracker.NewTable(tracker.T16, testPages, regionPages)
	st := newState(tb, testPages)
	cfg := DefaultConfig()
	cfg.HiStart = 64
	cfg.MigrationLimit = regionPages // tiny limit
	p := NewStarNUMA(cfg)
	// Many candidate regions -> HI should rise.
	for r := 0; r < 16; r++ {
		heatRegion(tb, r, 100, allSockets()...)
	}
	p.Decide(0, st)
	hi, _ := p.Thresholds()
	if hi <= cfg.HiStart {
		t.Fatalf("HI not raised: %d", hi)
	}
	// No candidates at all -> HI should fall.
	tb.Reset()
	p.Decide(1, st)
	hi2, _ := p.Thresholds()
	if hi2 >= hi {
		t.Fatalf("HI not lowered: %d -> %d", hi, hi2)
	}
}

func TestStarNUMARequiresTracker(t *testing.T) {
	p := NewStarNUMA(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without tracker")
		}
	}()
	p.Decide(0, &State{PageHome: make([]topology.NodeID, 8), Sockets: 16})
}

func TestPolicyNames(t *testing.T) {
	if NewStarNUMA(DefaultConfig()).Name() != "starnuma" {
		t.Fatal("starnuma name")
	}
	if NewPerfectBaseline(0).Name() != "baseline-perfect" {
		t.Fatal("baseline name")
	}
	if (NoMigration{}).Name() != "static" {
		t.Fatal("static name")
	}
}

func TestStatsPoolFraction(t *testing.T) {
	s := Stats{PagesToPool: 80, PagesToSocket: 20}
	if got := s.PoolFraction(); got != 0.8 {
		t.Fatalf("PoolFraction = %v", got)
	}
	if (Stats{}).PoolFraction() != 0 {
		t.Fatal("empty PoolFraction should be 0")
	}
}

func TestPingPongSuppressionCanBeDisabled(t *testing.T) {
	tb := tracker.NewTable(tracker.T16, testPages, regionPages)
	st := newState(tb, 512)
	cfg := DefaultConfig()
	cfg.HiStart = 64
	cfg.HiMin = 64
	cfg.HiMax = 64
	cfg.DisablePingPong = true
	p := NewStarNUMA(cfg)
	for phase := 0; phase < 8; phase++ {
		tb.Reset()
		heatRegion(tb, 1, 100, allSockets()...)
		p.Decide(phase, st)
		first, _ := tb.PageRange(1)
		for pg := first; pg < first+regionPages; pg++ {
			st.PageHome[pg] = 3
		}
	}
	if p.Stats().PingPongSkips != 0 {
		t.Fatalf("ping-pong suppressed despite DisablePingPong: %+v", p.Stats())
	}
	if p.Stats().PagesToPool < 4*regionPages {
		t.Fatalf("region did not keep migrating: %+v", p.Stats())
	}
}

func TestAutoScaleDerivesThresholds(t *testing.T) {
	c := AutoConfig().AutoScale(5000)
	if c.HiStart != 5000 {
		t.Errorf("HiStart = %d, want mean 5000", c.HiStart)
	}
	if c.HiMin != 2500 {
		t.Errorf("HiMin = %d, want mean/2", c.HiMin)
	}
	if c.LoStart != 312 {
		t.Errorf("LoStart = %d, want mean/16", c.LoStart)
	}
	if c.LoMax != 2500 {
		t.Errorf("LoMax = %d, want mean/2", c.LoMax)
	}
	if c.HiMax > 0xFFFF {
		t.Errorf("HiMax = %d exceeds counter saturation", c.HiMax)
	}
}

func TestAutoScaleClampsAtSaturation(t *testing.T) {
	// SSSP-like heat: mean far above the T16 counter's ceiling.
	c := AutoConfig().AutoScale(200000)
	if c.HiStart > 0xFFFF {
		t.Errorf("HiStart = %d unreachable (counter saturates at 65535)", c.HiStart)
	}
	if c.HiMin > 0xFFFF/2 {
		t.Errorf("HiMin = %d too high", c.HiMin)
	}
}

func TestAutoScalePreservesExplicitValues(t *testing.T) {
	c := DefaultConfig() // fully specified
	scaled := c.AutoScale(999999)
	if scaled.HiStart != c.HiStart || scaled.LoStart != c.LoStart {
		t.Error("AutoScale overwrote explicit thresholds")
	}
}

func TestAutoScaleFloor(t *testing.T) {
	c := AutoConfig().AutoScale(0.5) // nearly idle workload
	if c.HiStart == 0 || c.LoStart == 0 {
		t.Errorf("degenerate thresholds: %+v", c)
	}
}
