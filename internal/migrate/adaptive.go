package migrate

// EpochAdaptive wraps Algorithm 1's scan with an outer feedback loop:
// each epoch (decision point) it reads the previous phase's placement
// feedback from the environment and steers the dynamic HI threshold
// toward a target remote-access fraction. A high remote fraction means
// placement is lagging the workload — lower HI so more regions qualify
// for migration; a low one means placement has converged — raise HI and
// stop paying migration costs for marginal moves. This composes with
// (rather than replaces) §IV-C's candidate-ratio adjustment, which
// reacts to scan pressure, not to outcome.
type EpochAdaptive struct {
	inner        *StarNUMA
	feedback     func() PhaseFeedback
	targetRemote float64
	step         float64
}

// Name implements Policy.
func (p *EpochAdaptive) Name() string { return "epoch-adaptive" }

// Stats implements Policy.
func (p *EpochAdaptive) Stats() Stats { return p.inner.Stats() }

// Thresholds exposes the controlled HI/LO pair (tests, diagnostics).
func (p *EpochAdaptive) Thresholds() (hi, lo uint32) { return p.inner.Thresholds() }

// Decide implements Policy.
func (p *EpochAdaptive) Decide(phase int, st *State) []Migration {
	fb := p.feedback()
	if fb.Accesses > 0 {
		if fb.RemoteFrac > p.targetRemote {
			p.inner.scaleHi(1 / p.step)
		} else {
			p.inner.scaleHi(p.step)
		}
	}
	return p.inner.Decide(phase, st)
}
