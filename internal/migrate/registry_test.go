package migrate

import (
	"strings"
	"testing"

	"starnuma/internal/topology"
	"starnuma/internal/tracker"
)

// testEnv is a 16-socket pooled environment matching newState's shape.
func testEnv() PolicyEnv {
	return PolicyEnv{
		Sockets:                    16,
		HasPool:                    true,
		PoolNode:                   poolNode,
		PoolCapacityPages:          512,
		Pages:                      testPages,
		NumRegions:                 testPages / regionPages,
		RegionPages:                regionPages,
		TrackerKind:                tracker.T16,
		MeanRegionAccessesPerPhase: 100,
		Seed:                       1,
		WorkloadSeed:               7,
	}
}

// conformanceState builds a state with both tracker and perfect-count
// heat: region 2 hot and widely shared, region 3 hot with two sharers.
func conformanceState() *State {
	tb := tracker.NewTable(tracker.T16, testPages, regionPages)
	st := newState(tb, 512)
	st.Counts = NewPageCounts(testPages, 16)
	heatBoth(st, 2, 100, allSockets()...)
	heatBoth(st, 3, 200, 5, 6)
	return st
}

// heatBoth mirrors heatRegion into the per-page counts so tracker-driven
// and count-driven policies both see the load.
func heatBoth(st *State, r, n int, sockets ...int) {
	first, _ := st.Tracker.PageRange(r)
	for i := 0; i < n; i++ {
		for _, s := range sockets {
			pg := uint32(first + i%regionPages)
			st.Tracker.Record(s, pg)
			st.Counts.Record(s, pg)
		}
	}
}

func TestRegistryHasTournamentPolicies(t *testing.T) {
	want := []string{"starnuma", "baseline-perfect", "none",
		"epoch-adaptive", "bandwidth-aware", "replication", "oracle"}
	names := PolicyNames()
	if len(names) < len(want) {
		t.Fatalf("registry has %d policies, want >= %d", len(names), len(want))
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("policy %q not registered", n)
		}
	}
}

// TestRegistryConformance runs the contract every registered policy must
// satisfy: constructible with default params, a stable non-empty name, a
// no-op on a heat-free state, deterministic decisions for a fixed seed,
// and rejection of parameters outside the declared schema.
func TestRegistryConformance(t *testing.T) {
	for _, d := range Policies() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			build := func() Policy {
				p, err := NewPolicy(d.Name, nil, testEnv())
				if err != nil {
					t.Fatalf("NewPolicy(%q): %v", d.Name, err)
				}
				return p
			}

			// Stable name across constructions.
			if n := build().Name(); n == "" || n != build().Name() {
				t.Fatalf("unstable or empty Name: %q", n)
			}

			// Heat-free state: no decisions, placement untouched.
			empty := conformanceState()
			empty.Tracker.Reset()
			empty.Counts.Reset()
			if ms := build().Decide(0, empty); len(ms) != 0 {
				t.Fatalf("decided %d migrations with no recorded heat", len(ms))
			}
			for pg, h := range empty.PageHome {
				if h != 0 {
					t.Fatalf("heat-free Decide moved page %d to %v", pg, h)
				}
			}

			// Deterministic decisions: two fresh instances over identical
			// states agree phase by phase.
			pa, pb := build(), build()
			sa, sb := conformanceState(), conformanceState()
			for phase := 0; phase < 3; phase++ {
				ma, mb := pa.Decide(phase, sa), pb.Decide(phase, sb)
				if len(ma) != len(mb) {
					t.Fatalf("phase %d: %d vs %d migrations", phase, len(ma), len(mb))
				}
				for i := range ma {
					if ma[i] != mb[i] {
						t.Fatalf("phase %d migration %d: %+v vs %+v", phase, i, ma[i], mb[i])
					}
				}
			}
			for pg := range sa.PageHome {
				if sa.PageHome[pg] != sb.PageHome[pg] {
					t.Fatalf("placements diverged at page %d", pg)
				}
			}
			if pa.Stats() != pb.Stats() {
				t.Fatalf("stats diverged: %+v vs %+v", pa.Stats(), pb.Stats())
			}

			// Unknown parameters are rejected by name.
			_, err := NewPolicy(d.Name, Params{"definitely_not_a_param": 1}, testEnv())
			if err == nil || !strings.Contains(err.Error(), "definitely_not_a_param") {
				t.Fatalf("unknown param accepted (err = %v)", err)
			}
		})
	}
}

func TestNewPolicyUnknownName(t *testing.T) {
	_, err := NewPolicy("no-such-policy", nil, testEnv())
	if err == nil || !strings.Contains(err.Error(), "starnuma") {
		t.Fatalf("want error listing registered policies, got %v", err)
	}
}

func TestCheckParamsSchema(t *testing.T) {
	if err := CheckParams("starnuma", Params{"hi_start": 64, "seed": 2}); err != nil {
		t.Fatalf("declared params rejected: %v", err)
	}
	err := CheckParams("oracle", Params{"hi_start": 64})
	if err == nil || !strings.Contains(err.Error(), "pool_sharer_threshold") {
		t.Fatalf("want error naming accepted params, got %v", err)
	}
}

// TestEnvNormalize: policies that consume the Link/Feedback closures must
// work when the caller left them nil (NewPolicy normalizes).
func TestEnvNormalize(t *testing.T) {
	for _, name := range []string{"bandwidth-aware", "epoch-adaptive"} {
		p, err := NewPolicy(name, nil, testEnv())
		if err != nil {
			t.Fatal(err)
		}
		st := conformanceState()
		if ms := p.Decide(0, st); len(ms) == 0 {
			t.Errorf("%s decided nothing on a hot state under a healthy default env", name)
		}
	}
}

func TestEpochAdaptiveSteersHi(t *testing.T) {
	env := testEnv()
	fb := PhaseFeedback{}
	env.Feedback = func() PhaseFeedback { return fb }
	// migration_limit 0 disables the inner §IV-C candidate-ratio
	// adjustment and the wide [hi_min, hi_max] band keeps the clamp out
	// of the way, so the epoch controller is the only HI mutation.
	p, err := NewPolicy("epoch-adaptive", Params{
		"hi_start": 64, "hi_min": 8, "hi_max": 1 << 20, "migration_limit": 0,
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	ea := p.(*EpochAdaptive)
	hi0, _ := ea.Thresholds()

	fb = PhaseFeedback{Accesses: 1000, RemoteFrac: 0.9} // placement lagging
	ea.Decide(0, conformanceState())
	hiDown, _ := ea.Thresholds()
	if hiDown >= hi0 {
		t.Fatalf("high remote fraction should lower HI: %d -> %d", hi0, hiDown)
	}

	fb = PhaseFeedback{Accesses: 1000, RemoteFrac: 0.0} // converged
	ea.Decide(1, conformanceState())
	hiUp, _ := ea.Thresholds()
	if hiUp <= hiDown {
		t.Fatalf("low remote fraction should raise HI: %d -> %d", hiDown, hiUp)
	}
}

func TestBandwidthAwareSuspendsPoolPlacement(t *testing.T) {
	env := testEnv()
	health := LinkHealth{}
	env.Link = func(int) LinkHealth { return health }
	p, err := NewPolicy("bandwidth-aware", Params{"hi_start": 64}, env)
	if err != nil {
		t.Fatal(err)
	}

	// Healthy link: the hot widely-shared region goes to the pool.
	ms := p.Decide(0, conformanceState())
	toPool := 0
	for _, m := range ms {
		if m.To == poolNode {
			toPool++
		}
	}
	if toPool == 0 {
		t.Fatal("healthy link: expected pool placements")
	}
	if got := p.Stats().LinkBackoffPhases; got != 0 {
		t.Fatalf("healthy link counted %d backoff phases", got)
	}

	// Saturated link (severity >= backoff_x 2): pool placement suspends.
	health = LinkHealth{LatencyX: 3}
	for _, m := range p.Decide(0, conformanceState()) {
		if m.To == poolNode {
			t.Fatalf("saturated link still placed page %d in the pool", m.Page)
		}
	}
	if got := p.Stats().LinkBackoffPhases; got != 1 {
		t.Fatalf("LinkBackoffPhases = %d, want 1", got)
	}

	// A dead pool suspends placement regardless of severity.
	health = LinkHealth{PoolDead: true}
	for _, m := range p.Decide(0, conformanceState()) {
		if m.To == poolNode {
			t.Fatal("dead pool still received placements")
		}
	}
}

func TestOraclePostPlacement(t *testing.T) {
	env := testEnv()
	p, err := NewPolicy("oracle", nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if ms := p.Decide(0, conformanceState()); len(ms) != 0 {
		t.Fatal("oracle must not migrate dynamically")
	}

	totals := NewPageCounts(testPages, 16)
	totals.Record(3, 0) // page 0: socket 3 only
	for s := 0; s < 16; s++ {
		for i := 0; i < 10; i++ {
			totals.Record(s, 1) // page 1: hot, all sockets share it
		}
	}
	placement := p.(PostPlacer).PostPlace(totals)
	if placement[0] != 3 {
		t.Fatalf("page 0 placed at %v, want its only accessor 3", placement[0])
	}
	if placement[1] != poolNode {
		t.Fatalf("hot widely-shared page placed at %v, want pool", placement[1])
	}
}

func TestReplicationPolicyFiltersPoolMoves(t *testing.T) {
	p, err := NewPolicy("replication",
		Params{"hi_start": 64, "hot_accesses": 10}, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	st := conformanceState() // region 2: hot, read-only, shared by all sockets
	ms := p.Decide(0, st)
	rp := p.(*ReplicationPolicy)
	set := rp.ReplicatedSet()
	if set == nil {
		t.Fatal("no pages replicated")
	}
	first, _ := st.Tracker.PageRange(2)
	if !set[first] {
		t.Fatal("hot read-mostly widely-shared page not replicated")
	}
	// Replicated pages must not also be migrated into the pool — every
	// socket already has a local copy, pooling them wastes capacity.
	for _, m := range ms {
		if m.To == poolNode && set[m.Page] {
			t.Fatalf("replicated page %d migrated to the pool", m.Page)
		}
	}
	for pg, r := range set {
		if r && st.PageHome[pg] == poolNode {
			t.Fatalf("replicated page %d left homed in the pool", pg)
		}
	}
	if !rp.ReplicationModel().Enable {
		t.Fatal("replication model must be enabled")
	}

	// Written pages stay out of the replica set.
	st2 := conformanceState()
	for i := 0; i < 50; i++ {
		st2.Counts.RecordWrite(uint32(first))
	}
	p2, _ := NewPolicy("replication", Params{"hi_start": 64, "hot_accesses": 10}, testEnv())
	p2.Decide(0, st2)
	if s2 := p2.(*ReplicationPolicy).ReplicatedSet(); s2 != nil && s2[first] {
		t.Fatal("write-heavy page was replicated")
	}
}

func TestComputeFeedback(t *testing.T) {
	counts := NewPageCounts(4, 16)
	home := make([]topology.NodeID, 4)
	home[0] = 0        // local accesses
	home[1] = 1        // remote accesses (accessor is socket 0)
	home[2] = poolNode // pooled accesses
	home[3] = poolNode // untouched pool page: residency only
	for i := 0; i < 10; i++ {
		counts.Record(0, 0)
	}
	for i := 0; i < 5; i++ {
		counts.Record(0, 1)
	}
	for i := 0; i < 7; i++ {
		counts.Record(2, 2)
	}
	fb := ComputeFeedback(4, counts, home, true, poolNode)
	if fb.Phase != 4 || fb.Accesses != 22 {
		t.Fatalf("fb = %+v", fb)
	}
	if want := 5.0 / 22; fb.RemoteFrac != want {
		t.Fatalf("RemoteFrac = %v, want %v", fb.RemoteFrac, want)
	}
	if want := 7.0 / 22; fb.PoolFrac != want {
		t.Fatalf("PoolFrac = %v, want %v", fb.PoolFrac, want)
	}
	if fb.PoolResidentPages != 2 {
		t.Fatalf("PoolResidentPages = %d, want 2", fb.PoolResidentPages)
	}
}

func TestLinkHealthSeverity(t *testing.T) {
	cases := []struct {
		h    LinkHealth
		want float64
	}{
		{LinkHealth{}, 1},
		{LinkHealth{LatencyX: 3}, 3},
		{LinkHealth{BandwidthDiv: 4}, 4},
		{LinkHealth{DownFrac: 0.5}, 2},
		{LinkHealth{LatencyX: 2, BandwidthDiv: 1.5}, 2},
	}
	for _, c := range cases {
		if got := c.h.Severity(); got != c.want {
			t.Errorf("Severity(%+v) = %v, want %v", c.h, got, c.want)
		}
	}
}
