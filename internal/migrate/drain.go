package migrate

import (
	"sort"

	"starnuma/internal/topology"
	"starnuma/internal/tracker"
)

// DrainPool evacuates pool-resident pages back to the sockets until at
// most capacity remain — the graceful-degradation reaction to pool
// faults (internal/fault): a dying DDR channel shrinks the capacity
// budget and the overflow drains; a dead device drains everything, and
// the caller then disables the pool so the policy degenerates to
// socket-only (StarNUMA-Halt) migration.
//
// Draining is deterministic. With a tracker, whole regions drain
// coldest-first (ascending access count, region index breaking ties —
// T0's count-free tracker therefore drains in region order), each
// region's pool pages landing on its lowest-numbered sharer socket so
// the pages stay near their users; untouched regions fall back to
// region-index round-robin. Without a tracker (baseline policies),
// pages drain in page order to their hottest socket per st.Counts,
// falling back to page-index round-robin. Region granularity means the
// pool can end below capacity: the last drained region moves whole, as
// migrations always do.
//
// DrainPool mutates st.PageHome and returns the migrations performed,
// which the caller prepends to the phase's checkpoint so the timing
// windows model the drain traffic.
func DrainPool(st *State, capacity int) []Migration {
	if !st.HasPool {
		return nil
	}
	if capacity < 0 {
		capacity = 0
	}
	resident := st.poolPages()
	if resident <= capacity {
		return nil
	}
	var out []Migration
	if st.Tracker == nil {
		out = drainByPage(st, capacity, resident)
	} else {
		out = drainByRegion(st, capacity, resident)
	}
	st.traceDrain(resident, capacity, len(out))
	return out
}

// drainByRegion drains whole regions coldest-first.
func drainByRegion(st *State, capacity, resident int) []Migration {
	tbl := st.Tracker
	type coldRegion struct {
		r    int
		heat uint32
	}
	var regions []coldRegion
	for r := 0; r < tbl.NumRegions(); r++ {
		first, count := tbl.PageRange(r)
		for pg := first; pg < first+count && pg < len(st.PageHome); pg++ {
			if st.PageHome[pg] == st.PoolNode {
				regions = append(regions, coldRegion{r, tbl.Count(r)})
				break
			}
		}
	}
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].heat != regions[j].heat {
			return regions[i].heat < regions[j].heat
		}
		return regions[i].r < regions[j].r
	})
	var out []Migration
	for _, cr := range regions {
		if resident <= capacity {
			break
		}
		dest := drainRegionDestination(st, tbl, cr.r)
		first, count := tbl.PageRange(cr.r)
		moved := 0
		for pg := first; pg < first+count && pg < len(st.PageHome); pg++ {
			if st.PageHome[pg] != st.PoolNode {
				continue
			}
			out = append(out, Migration{Page: uint32(pg), From: st.PoolNode, To: dest, Drain: true})
			st.PageHome[pg] = dest
			resident--
			moved++
		}
		st.traceMove("drain region", cr.r, moved, dest)
	}
	return out
}

// drainRegionDestination picks where a drained region's pages land: the
// lowest-numbered sharer socket (SharerSet is sorted), or region-index
// round-robin when nothing shares it.
func drainRegionDestination(st *State, tbl *tracker.Table, r int) topology.NodeID {
	if sharers := tbl.SharerSet(r); len(sharers) > 0 {
		return topology.NodeID(sharers[0])
	}
	return topology.NodeID(r % st.Sockets)
}

// drainByPage drains individual pages in page order (no tracker).
func drainByPage(st *State, capacity, resident int) []Migration {
	var out []Migration
	for pg := range st.PageHome {
		if resident <= capacity {
			break
		}
		if st.PageHome[pg] != st.PoolNode {
			continue
		}
		dest := drainPageDestination(st, uint32(pg))
		out = append(out, Migration{Page: uint32(pg), From: st.PoolNode, To: dest, Drain: true})
		st.PageHome[pg] = dest
		resident--
	}
	return out
}

// drainPageDestination sends a page to its hottest socket when counts
// are available, else page-index round-robin.
func drainPageDestination(st *State, pg uint32) topology.NodeID {
	if st.Counts != nil {
		if s, c := st.Counts.Argmax(pg); c > 0 {
			return topology.NodeID(s)
		}
	}
	return topology.NodeID(int(pg) % st.Sockets)
}
