package migrate

import "fmt"

// PageCounts is exact per-page, per-socket access knowledge. The paper
// grants the *baseline* this information at zero cost to strengthen the
// comparison (§IV-C: "we favor the baseline by assuming zero-cost
// per-socket knowledge of all accesses to every 4KB page"). It also
// feeds the oracular static placement study (§V-B).
type PageCounts struct {
	sockets int
	counts  []uint32 // page-major: counts[page*sockets+socket]
	writes  []uint32 // per-page store counts (replication study, §V-F)
}

// NewPageCounts allocates counters for pages × sockets.
func NewPageCounts(pages, sockets int) *PageCounts {
	if pages <= 0 || sockets <= 0 {
		panic(fmt.Sprintf("migrate: invalid PageCounts %dx%d", pages, sockets))
	}
	return &PageCounts{sockets: sockets,
		counts: make([]uint32, pages*sockets),
		writes: make([]uint32, pages)}
}

// Pages returns the page count.
func (c *PageCounts) Pages() int { return len(c.counts) / c.sockets }

// Sockets returns the socket count.
func (c *PageCounts) Sockets() int { return c.sockets }

// Record notes one access by socket to page.
//
//starnuma:hotpath one call per tracked access (step B)
func (c *PageCounts) Record(socket int, page uint32) {
	c.counts[int(page)*c.sockets+socket]++
}

// RecordWrite notes that an access to page was a store.
//
//starnuma:hotpath one call per tracked write
func (c *PageCounts) RecordWrite(page uint32) {
	c.writes[page]++
}

// WriteFrac returns the fraction of the page's accesses that were
// stores (0 for untouched pages).
func (c *PageCounts) WriteFrac(page uint32) float64 {
	total := c.Total(page)
	if total == 0 {
		return 0
	}
	return float64(c.writes[page]) / float64(total)
}

// Count returns socket's access count on page.
func (c *PageCounts) Count(page uint32, socket int) uint32 {
	return c.counts[int(page)*c.sockets+socket]
}

// Total returns the page's access count across sockets.
func (c *PageCounts) Total(page uint32) uint64 {
	var t uint64
	row := c.counts[int(page)*c.sockets : int(page+1)*c.sockets]
	for _, v := range row {
		t += uint64(v)
	}
	return t
}

// Sharers returns how many sockets accessed the page.
func (c *PageCounts) Sharers(page uint32) int {
	n := 0
	row := c.counts[int(page)*c.sockets : int(page+1)*c.sockets]
	for _, v := range row {
		if v > 0 {
			n++
		}
	}
	return n
}

// Argmax returns the socket with the most accesses to page and its
// count. Ties resolve to the lowest socket.
func (c *PageCounts) Argmax(page uint32) (socket int, count uint32) {
	row := c.counts[int(page)*c.sockets : int(page+1)*c.sockets]
	for s, v := range row {
		if v > count {
			socket, count = s, v
		}
	}
	return socket, count
}

// Reset zeroes all counters (phase boundary).
func (c *PageCounts) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
	for i := range c.writes {
		c.writes[i] = 0
	}
}

// PageCountsState is a snapshot of a PageCounts, immutable once taken:
// SaveState copies out and LoadState copies in, so one state may be
// loaded into many counters.
type PageCountsState struct {
	counts []uint32
	writes []uint32
}

// Bytes returns the snapshot's approximate heap footprint, for
// size-bounded caches.
func (st *PageCountsState) Bytes() int64 {
	return int64(len(st.counts))*4 + int64(len(st.writes))*4
}

// SaveState captures the counters' current values.
func (c *PageCounts) SaveState() *PageCountsState {
	return &PageCountsState{
		counts: append([]uint32(nil), c.counts...),
		writes: append([]uint32(nil), c.writes...),
	}
}

// LoadState overwrites the counters with a snapshot taken from a
// PageCounts of the same shape. It panics on a shape mismatch.
func (c *PageCounts) LoadState(st *PageCountsState) {
	if len(st.counts) != len(c.counts) || len(st.writes) != len(c.writes) {
		panic("migrate: LoadState shape mismatch")
	}
	copy(c.counts, st.counts)
	copy(c.writes, st.writes)
}

// AddInto accumulates this phase's counts into dst (whole-run totals for
// the static oracle).
func (c *PageCounts) AddInto(dst *PageCounts) {
	if len(dst.counts) != len(c.counts) {
		panic("migrate: PageCounts shape mismatch")
	}
	for i, v := range c.counts {
		dst.counts[i] += v
	}
	for i, v := range c.writes {
		dst.writes[i] += v
	}
}
