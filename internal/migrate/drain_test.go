package migrate

import (
	"reflect"
	"testing"

	"starnuma/internal/topology"
	"starnuma/internal/tracker"
)

// poolHome moves pages [first, first+n) into the pool.
func poolHome(st *State, first, n int) {
	for pg := first; pg < first+n; pg++ {
		st.PageHome[pg] = st.PoolNode
	}
}

func countPool(st *State) int {
	n := 0
	for _, h := range st.PageHome {
		if h == poolNode {
			n++
		}
	}
	return n
}

func TestDrainPoolNoOpWithinCapacity(t *testing.T) {
	tb := tracker.NewTable(tracker.T16, testPages, regionPages)
	st := newState(tb, 512)
	poolHome(st, 0, 64)
	if ms := DrainPool(st, 64); ms != nil {
		t.Fatalf("drained %d pages while within capacity", len(ms))
	}
	st.HasPool = false
	if ms := DrainPool(st, 0); ms != nil {
		t.Fatal("drained a poolless state")
	}
}

func TestDrainPoolColdestRegionsFirst(t *testing.T) {
	tb := tracker.NewTable(tracker.T16, testPages, regionPages)
	st := newState(tb, 512)
	// Regions 2 (hot) and 5 (cold) are pool-resident; shrink capacity so
	// exactly one region must go — the cold one.
	poolHome(st, 2*regionPages, regionPages)
	poolHome(st, 5*regionPages, regionPages)
	heatRegion(tb, 2, 100, 3, 4)
	heatRegion(tb, 5, 1, 7)

	ms := DrainPool(st, regionPages)
	if len(ms) != regionPages {
		t.Fatalf("drained %d pages, want %d", len(ms), regionPages)
	}
	first, _ := tb.PageRange(5)
	for _, m := range ms {
		if int(m.Page) < first || int(m.Page) >= first+regionPages {
			t.Fatalf("drained page %d outside cold region 5", m.Page)
		}
		if m.From != poolNode || m.To != 7 {
			t.Fatalf("migration %+v, want pool -> sharer socket 7", m)
		}
		if st.PageHome[m.Page] != 7 {
			t.Fatal("PageHome not updated")
		}
	}
	if countPool(st) != regionPages {
		t.Fatalf("%d pages left in pool, want %d", countPool(st), regionPages)
	}
}

func TestDrainPoolToZeroEvictsEverything(t *testing.T) {
	tb := tracker.NewTable(tracker.T16, testPages, regionPages)
	st := newState(tb, 512)
	poolHome(st, 0, 3*regionPages)
	ms := DrainPool(st, 0)
	if len(ms) != 3*regionPages {
		t.Fatalf("drained %d pages, want %d", len(ms), 3*regionPages)
	}
	if countPool(st) != 0 {
		t.Fatalf("%d pages still pool-resident", countPool(st))
	}
}

func TestDrainPoolDeterministic(t *testing.T) {
	build := func() *State {
		tb := tracker.NewTable(tracker.T16, testPages, regionPages)
		st := newState(tb, 512)
		poolHome(st, 0, 8*regionPages)
		heatRegion(tb, 1, 50, 2, 9)
		heatRegion(tb, 6, 50, 4)
		return st
	}
	a := DrainPool(build(), 2*regionPages)
	b := DrainPool(build(), 2*regionPages)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical states drained differently")
	}
}

func TestDrainPoolByPageUsesCounts(t *testing.T) {
	// No tracker: baseline path. Pages drain in page order to their
	// hottest socket, or page-index round-robin without counts.
	st := &State{
		PageHome: make([]topology.NodeID, 64),
		Sockets:  16,
		HasPool:  true,
		PoolNode: poolNode,
		Counts:   NewPageCounts(64, 16),
	}
	poolHome(st, 0, 4)
	st.Counts.Record(3, 0) // page 0 hottest on socket 3
	ms := DrainPool(st, 0)
	if len(ms) != 4 {
		t.Fatalf("drained %d pages, want 4", len(ms))
	}
	if ms[0].Page != 0 || ms[0].To != 3 {
		t.Fatalf("page 0 drained to %+v, want hottest socket 3", ms[0])
	}
	for _, m := range ms[1:] {
		if want := topology.NodeID(int(m.Page) % st.Sockets); m.To != want {
			t.Fatalf("cold page %d drained to %v, want round-robin %v", m.Page, m.To, want)
		}
	}
}
