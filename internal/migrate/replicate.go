package migrate

import (
	"fmt"
	"sort"

	"starnuma/internal/sim"
)

// ReplicationConfig controls the page replication study (§V-F): an
// alternative to pooling in which widely-shared pages are replicated
// into every sharer's local memory. Reads hit the local replica; writes
// must keep replicas coherent in software, which the paper argues is
// prohibitive for read-write pages.
type ReplicationConfig struct {
	Enable bool
	// MinSharers: only pages this widely shared are replication
	// candidates (mirrors Algorithm 1's pool threshold).
	MinSharers int
	// MaxWriteFrac: pages writing more than this are excluded — software
	// replica coherence on write-hot pages is the study's point of
	// failure.
	MaxWriteFrac float64
	// CapacityFrac bounds the replicated footprint fraction, modelling
	// the memory-capacity pressure replication causes (each replica
	// consumes a full copy in every sharer socket).
	CapacityFrac float64
	// WritePenaltyCycles is the software coherence cost charged to every
	// store that hits a replicated page (invalidating replicas via
	// interprocessor interrupts and kernel handlers).
	WritePenaltyCycles sim.Cycles
}

// DefaultReplicationConfig mirrors the paper's framing: replicate
// read-mostly pages shared by 8+ sockets, capped at 25% of the
// footprint, with a multi-microsecond software penalty per store.
func DefaultReplicationConfig() ReplicationConfig {
	return ReplicationConfig{
		MinSharers:         8,
		MaxWriteFrac:       0.05,
		CapacityFrac:       0.25,
		WritePenaltyCycles: 5000,
	}
}

// Validate reports configuration errors.
func (c ReplicationConfig) Validate() error {
	if !c.Enable {
		return nil
	}
	if c.MinSharers < 1 {
		return fmt.Errorf("migrate: replication MinSharers %d", c.MinSharers)
	}
	if c.MaxWriteFrac < 0 || c.MaxWriteFrac > 1 {
		return fmt.Errorf("migrate: replication MaxWriteFrac %v", c.MaxWriteFrac)
	}
	if c.CapacityFrac <= 0 || c.CapacityFrac > 1 {
		return fmt.Errorf("migrate: replication CapacityFrac %v", c.CapacityFrac)
	}
	if c.WritePenaltyCycles < 0 {
		return fmt.Errorf("migrate: replication WritePenaltyCycles %d", c.WritePenaltyCycles)
	}
	return nil
}

// ReplicationSet selects the pages to replicate from whole-run access
// knowledge: the hottest pages that are widely shared and read-mostly,
// up to the capacity budget. Like the static oracle, the study is
// deliberately idealized — it measures replication's best case.
func ReplicationSet(total *PageCounts, cfg ReplicationConfig) []bool {
	pages := total.Pages()
	out := make([]bool, pages)
	if !cfg.Enable {
		return out
	}
	type cand struct {
		pg  uint32
		tot uint64
	}
	var cands []cand
	for pg := 0; pg < pages; pg++ {
		p := uint32(pg)
		if total.Sharers(p) >= cfg.MinSharers && total.WriteFrac(p) <= cfg.MaxWriteFrac && total.Total(p) > 0 {
			cands = append(cands, cand{p, total.Total(p)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].tot != cands[j].tot {
			return cands[i].tot > cands[j].tot
		}
		return cands[i].pg < cands[j].pg
	})
	budget := int(cfg.CapacityFrac * float64(pages))
	for i := 0; i < len(cands) && i < budget; i++ {
		out[cands[i].pg] = true
	}
	return out
}
