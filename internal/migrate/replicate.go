package migrate

import (
	"fmt"
	"sort"

	"starnuma/internal/sim"
)

// ReplicationConfig controls the page replication study (§V-F): an
// alternative to pooling in which widely-shared pages are replicated
// into every sharer's local memory. Reads hit the local replica; writes
// must keep replicas coherent in software, which the paper argues is
// prohibitive for read-write pages.
type ReplicationConfig struct {
	Enable bool
	// MinSharers: only pages this widely shared are replication
	// candidates (mirrors Algorithm 1's pool threshold).
	MinSharers int
	// MaxWriteFrac: pages writing more than this are excluded — software
	// replica coherence on write-hot pages is the study's point of
	// failure.
	MaxWriteFrac float64
	// CapacityFrac bounds the replicated footprint fraction, modelling
	// the memory-capacity pressure replication causes (each replica
	// consumes a full copy in every sharer socket).
	CapacityFrac float64
	// WritePenaltyCycles is the software coherence cost charged to every
	// store that hits a replicated page (invalidating replicas via
	// interprocessor interrupts and kernel handlers).
	WritePenaltyCycles sim.Cycles
}

// DefaultReplicationConfig mirrors the paper's framing: replicate
// read-mostly pages shared by 8+ sockets, capped at 25% of the
// footprint, with a multi-microsecond software penalty per store.
func DefaultReplicationConfig() ReplicationConfig {
	return ReplicationConfig{
		MinSharers:         8,
		MaxWriteFrac:       0.05,
		CapacityFrac:       0.25,
		WritePenaltyCycles: 5000,
	}
}

// Validate reports configuration errors.
func (c ReplicationConfig) Validate() error {
	if !c.Enable {
		return nil
	}
	if c.MinSharers < 1 {
		return fmt.Errorf("migrate: replication MinSharers %d", c.MinSharers)
	}
	if c.MaxWriteFrac < 0 || c.MaxWriteFrac > 1 {
		return fmt.Errorf("migrate: replication MaxWriteFrac %v", c.MaxWriteFrac)
	}
	if c.CapacityFrac <= 0 || c.CapacityFrac > 1 {
		return fmt.Errorf("migrate: replication CapacityFrac %v", c.CapacityFrac)
	}
	if c.WritePenaltyCycles < 0 {
		return fmt.Errorf("migrate: replication WritePenaltyCycles %d", c.WritePenaltyCycles)
	}
	return nil
}

// Replicator is implemented by policies that select pages for software
// replication as part of their decisions. core consumes the final set
// into TraceResult.Replicated and threads the returned model into the
// step-C configuration, so replica reads hit socket-local copies and
// replica writes pay the software coherence penalty.
type Replicator interface {
	// ReplicatedSet returns the pages selected for replication (nil when
	// nothing was selected).
	ReplicatedSet() []bool
	// ReplicationModel returns the timing model for the replica set.
	ReplicationModel() ReplicationConfig
}

// ReplicationPolicy turns the §V-F study into a dynamic policy:
// Algorithm 1's scan handles region placement, while a per-phase pass
// over the page counts replicates hot, widely-shared, read-mostly pages
// — the vagabond pages that architecturally lack a good single home.
// Selection is sticky (a replica, once made, stays) and bounded by the
// capacity budget; replicated pages are kept out of the pool, whose
// capacity is better spent on write-shared pages replicas cannot serve.
type ReplicationPolicy struct {
	inner *StarNUMA
	cfg   ReplicationConfig
	hot   uint64 // per-phase access floor for a replication candidate

	replicated []bool
	nRepl      int
}

// Name implements Policy.
func (p *ReplicationPolicy) Name() string { return "replication" }

// Stats implements Policy.
func (p *ReplicationPolicy) Stats() Stats { return p.inner.Stats() }

// ReplicatedSet implements Replicator.
func (p *ReplicationPolicy) ReplicatedSet() []bool { return p.replicated }

// ReplicationModel implements Replicator.
func (p *ReplicationPolicy) ReplicationModel() ReplicationConfig { return p.cfg }

// Decide implements Policy.
func (p *ReplicationPolicy) Decide(phase int, st *State) []Migration {
	if st.Counts != nil {
		p.updateReplicas(st)
	}
	out := p.inner.Decide(phase, st)
	if !st.HasPool || p.nRepl == 0 {
		return out
	}
	// Replicated pages are read socket-locally; pooling them wastes
	// capacity. Cancel the scan's pool-bound moves of replicated pages.
	kept := out[:0]
	for _, m := range out {
		if m.To == st.PoolNode && int(m.Page) < len(p.replicated) && p.replicated[m.Page] {
			st.PageHome[m.Page] = m.From
			continue
		}
		kept = append(kept, m)
	}
	return kept
}

// updateReplicas grows the sticky replica set from this phase's counts:
// qualifying pages (widely shared, read-mostly, hot enough) join in
// descending heat order until the capacity budget is spent.
func (p *ReplicationPolicy) updateReplicas(st *State) {
	pages := len(st.PageHome)
	if p.replicated == nil {
		p.replicated = make([]bool, pages)
	}
	budget := int(p.cfg.CapacityFrac * float64(pages))
	if p.nRepl >= budget {
		return
	}
	type cand struct {
		pg  uint32
		tot uint64
	}
	var cands []cand
	for pg := 0; pg < pages; pg++ {
		u := uint32(pg)
		if p.replicated[pg] {
			continue
		}
		tot := st.Counts.Total(u)
		if tot < p.hot || st.Counts.Sharers(u) < p.cfg.MinSharers ||
			st.Counts.WriteFrac(u) > p.cfg.MaxWriteFrac {
			continue
		}
		cands = append(cands, cand{u, tot})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].tot != cands[j].tot {
			return cands[i].tot > cands[j].tot
		}
		return cands[i].pg < cands[j].pg
	})
	for _, c := range cands {
		if p.nRepl >= budget {
			break
		}
		p.replicated[c.pg] = true
		p.nRepl++
	}
}

// ReplicationSet selects the pages to replicate from whole-run access
// knowledge: the hottest pages that are widely shared and read-mostly,
// up to the capacity budget. Like the static oracle, the study is
// deliberately idealized — it measures replication's best case.
func ReplicationSet(total *PageCounts, cfg ReplicationConfig) []bool {
	pages := total.Pages()
	out := make([]bool, pages)
	if !cfg.Enable {
		return out
	}
	type cand struct {
		pg  uint32
		tot uint64
	}
	var cands []cand
	for pg := 0; pg < pages; pg++ {
		p := uint32(pg)
		if total.Sharers(p) >= cfg.MinSharers && total.WriteFrac(p) <= cfg.MaxWriteFrac && total.Total(p) > 0 {
			cands = append(cands, cand{p, total.Total(p)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].tot != cands[j].tot {
			return cands[i].tot > cands[j].tot
		}
		return cands[i].pg < cands[j].pg
	})
	budget := int(cfg.CapacityFrac * float64(pages))
	for i := 0; i < len(cands) && i < budget; i++ {
		out[cands[i].pg] = true
	}
	return out
}
