package migrate

import "testing"

func TestReplicationConfigValidate(t *testing.T) {
	if err := DefaultReplicationConfig().Validate(); err != nil {
		t.Fatalf("disabled default invalid: %v", err)
	}
	ok := DefaultReplicationConfig()
	ok.Enable = true
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	mods := []func(*ReplicationConfig){
		func(c *ReplicationConfig) { c.MinSharers = 0 },
		func(c *ReplicationConfig) { c.MaxWriteFrac = -0.1 },
		func(c *ReplicationConfig) { c.MaxWriteFrac = 1.1 },
		func(c *ReplicationConfig) { c.CapacityFrac = 0 },
		func(c *ReplicationConfig) { c.CapacityFrac = 1.5 },
		func(c *ReplicationConfig) { c.WritePenaltyCycles = -1 },
	}
	for i, mod := range mods {
		c := ok
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWriteFracTracking(t *testing.T) {
	c := NewPageCounts(8, 4)
	c.Record(0, 1)
	c.Record(1, 1)
	c.RecordWrite(1)
	if got := c.WriteFrac(1); got != 0.5 {
		t.Fatalf("WriteFrac = %v", got)
	}
	if c.WriteFrac(2) != 0 {
		t.Fatal("untouched page WriteFrac != 0")
	}
	// AddInto carries writes; Reset clears them.
	dst := NewPageCounts(8, 4)
	c.AddInto(dst)
	if dst.WriteFrac(1) != 0.5 {
		t.Fatal("AddInto lost writes")
	}
	c.Reset()
	if c.WriteFrac(1) != 0 {
		t.Fatal("Reset kept writes")
	}
}

func TestReplicationSetSelection(t *testing.T) {
	total := NewPageCounts(100, 16)
	// Page 0: hot, widely shared, read-only -> replicate.
	for s := 0; s < 16; s++ {
		for i := 0; i < 100; i++ {
			total.Record(s, 0)
		}
	}
	// Page 1: widely shared but write-heavy -> excluded.
	for s := 0; s < 16; s++ {
		for i := 0; i < 100; i++ {
			total.Record(s, 1)
		}
	}
	for i := 0; i < 800; i++ {
		total.RecordWrite(1)
	}
	// Page 2: read-only but private -> excluded.
	for i := 0; i < 1000; i++ {
		total.Record(3, 2)
	}
	cfg := DefaultReplicationConfig()
	cfg.Enable = true
	set := ReplicationSet(total, cfg)
	if !set[0] {
		t.Error("hot read-only shared page not replicated")
	}
	if set[1] {
		t.Error("write-heavy page replicated")
	}
	if set[2] {
		t.Error("private page replicated")
	}
}

func TestReplicationSetDisabled(t *testing.T) {
	total := NewPageCounts(4, 4)
	set := ReplicationSet(total, DefaultReplicationConfig()) // Enable=false
	for _, v := range set {
		if v {
			t.Fatal("disabled config replicated pages")
		}
	}
}

func TestReplicationSetCapacity(t *testing.T) {
	total := NewPageCounts(100, 16)
	for pg := uint32(0); pg < 100; pg++ {
		for s := 0; s < 16; s++ {
			for i := 0; i <= int(pg); i++ { // hotter with higher page id
				total.Record(s, pg)
			}
		}
	}
	cfg := DefaultReplicationConfig()
	cfg.Enable = true
	cfg.CapacityFrac = 0.10
	set := ReplicationSet(total, cfg)
	n := 0
	for _, v := range set {
		if v {
			n++
		}
	}
	if n != 10 {
		t.Fatalf("replicated %d pages, budget 10", n)
	}
	// The hottest pages (highest ids) must be the ones selected.
	for pg := 90; pg < 100; pg++ {
		if !set[pg] {
			t.Fatalf("hottest page %d not selected", pg)
		}
	}
}
