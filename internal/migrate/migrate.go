// Package migrate implements StarNUMA's page migration machinery:
// Algorithm 1's threshold-based region migration with dynamic threshold
// adjustment, ping-pong suppression and victim eviction (§III-D2,
// §IV-C), plus the two comparison policies the paper evaluates — the
// favoured baseline with zero-cost perfect per-page access knowledge,
// and oracular static placement (§V-B).
package migrate

import (
	"fmt"
	"math/rand"
	"sort"

	"starnuma/internal/evtrace"
	"starnuma/internal/sim"
	"starnuma/internal/topology"
	"starnuma/internal/tracker"
)

// Migration is one page move decided at a phase boundary. Drain marks
// moves a fault drain forced (evacuating a failing pool device) rather
// than a policy chose; the stall-attribution ledger (internal/attrib)
// uses it to charge demand stalls behind the move to the drain
// category instead of migration.
type Migration struct {
	Page     uint32
	From, To topology.NodeID
	Drain    bool
}

// State is the placement state a policy inspects and mutates when
// deciding migrations.
type State struct {
	// PageHome maps each page to its current home node. Policies update
	// it in place as they decide migrations.
	PageHome []topology.NodeID
	// Tracker is the region metadata table (StarNUMA policies).
	Tracker *tracker.Table
	// Counts is perfect per-page knowledge (baseline policy and oracle).
	Counts *PageCounts

	Sockets           int
	HasPool           bool
	PoolNode          topology.NodeID
	PoolCapacityPages int

	// Trace is the step-B event buffer decisions record into; nil when
	// event tracing (internal/evtrace) is off. TraceTs is the phase-clock
	// timestamp stamped on events — set via BeginTracePhase, which also
	// resets the per-phase event caps. Recording is passive: decisions
	// are identical with tracing on or off.
	Trace   *evtrace.Buffer
	TraceTs sim.Time

	trcMoves int // per-phase recorded move decisions (capped)
	trcSkips int // per-phase recorded ping-pong skips (capped)
}

// poolPages counts pages currently homed in the pool.
func (s *State) poolPages() int {
	if !s.HasPool {
		return 0
	}
	n := 0
	for _, h := range s.PageHome {
		if h == s.PoolNode {
			n++
		}
	}
	return n
}

// Policy decides a phase's migrations.
type Policy interface {
	// Decide inspects st at the end of the given phase (0-based),
	// mutates st.PageHome, and returns the migrations performed.
	Decide(phase int, st *State) []Migration
	// Name identifies the policy in reports.
	Name() string
	// Stats returns the policy's lifetime decision counters (the zero
	// Stats for policies that keep none).
	Stats() Stats
}

// Stats counts a policy's lifetime decisions; used for Table IV.
type Stats struct {
	PagesToPool   uint64
	PagesToSocket uint64
	Evictions     uint64 // pages evicted from the pool to make room
	PingPongSkips uint64
	EvictFailures uint64 // pool-bound migrations dropped: no victim found
	// LinkBackoffPhases counts phases a bandwidth-aware policy suspended
	// pool placement under link saturation.
	LinkBackoffPhases uint64
}

// PoolFraction is the fraction of migrated pages that went to the pool
// (Table IV). Eviction moves are excluded, as in the paper.
func (s Stats) PoolFraction() float64 {
	total := s.PagesToPool + s.PagesToSocket
	if total == 0 {
		return 0
	}
	return float64(s.PagesToPool) / float64(total)
}

// Config parameterises the StarNUMA policy.
type Config struct {
	// HiStart is the initial ACCESS_THRES_HI (region accesses per phase
	// that make a region a migration candidate). Adjusted dynamically.
	HiStart uint32
	// LoStart is the initial ACCESS_THRES_LO for victim selection.
	LoStart uint32
	// HiMin/HiMax bound the dynamic adjustment.
	HiMin, HiMax uint32
	// LoMax bounds the eviction threshold's dynamic growth.
	LoMax uint32
	// MigrationLimit is Algorithm 1's MIGRATION_LIMIT in pages per phase.
	MigrationLimit int
	// PoolSharerThreshold: regions with at least this many sharer
	// sockets go to the pool (8 in Algorithm 1 line 8).
	PoolSharerThreshold int
	// Seed drives the random sharer choices of Algorithm 1.
	Seed int64
	// DisablePingPong turns off the ping-pong suppression footnote of
	// Algorithm 1 (ablation).
	DisablePingPong bool
}

// DefaultConfig returns Algorithm 1 parameters scaled to our phase
// lengths (the paper's 20K-per-1B-instruction threshold, rescaled; see
// DESIGN.md §4).
func DefaultConfig() Config {
	return Config{
		HiStart: 512, LoStart: 16,
		HiMin: 32, HiMax: 1 << 20, LoMax: 4096,
		MigrationLimit:      8192,
		PoolSharerThreshold: 8,
		Seed:                1,
	}
}

// AutoConfig returns a Config with zero thresholds, signalling that the
// caller should derive them from the workload's access rate (the paper
// likewise starts HI at 20K region accesses per 1B-instruction phase and
// adjusts dynamically, §IV-C). core.Run fills the zeros via
// Config.AutoScale.
func AutoConfig() Config {
	c := DefaultConfig()
	c.HiStart, c.HiMin, c.HiMax, c.LoStart, c.LoMax = 0, 0, 0, 0, 0
	return c
}

// trackerSaturation is the T16 counter's saturation value; thresholds
// above it can never fire, so AutoScale clamps against it.
const trackerSaturation = 0xFFFF

// AutoScale fills zero threshold fields from the expected mean region
// access count per phase: HI starts at the mean (hot regions qualify
// immediately) and the dynamic adjustment may lower it to half the
// mean; LO scales proportionally for victim selection. All
// values are clamped below the T16 counter's saturation point —
// otherwise bandwidth-heavy workloads (SSSP's MPKI of 73) could set a
// threshold no saturating counter can reach.
func (c Config) AutoScale(meanRegionAccessesPerPhase float64) Config {
	m := uint32(meanRegionAccessesPerPhase)
	if m < 8 {
		m = 8
	}
	clamp := func(v, max uint32) uint32 {
		if v > max {
			return max
		}
		return v
	}
	if c.HiStart == 0 {
		// Start at the mean region heat: hot regions qualify in the very
		// first phase (each phase of delay is a timing window without
		// pool placements), and the dynamic adjustment trims from there.
		c.HiStart = clamp(m, trackerSaturation*3/4)
	}
	if c.HiMin == 0 {
		c.HiMin = clamp(m/2, trackerSaturation/2)
	}
	if c.HiMax == 0 {
		c.HiMax = clamp(256*m, trackerSaturation)
	}
	if c.LoStart == 0 {
		c.LoStart = m / 16
		if c.LoStart == 0 {
			c.LoStart = 1
		}
	}
	if c.LoMax == 0 {
		c.LoMax = m / 2
		if c.LoMax < c.LoStart {
			c.LoMax = c.LoStart
		}
	}
	return c
}

// StarNUMA is Algorithm 1: a single-pass threshold policy over the
// region tracker.
type StarNUMA struct {
	cfg      Config
	hi, lo   uint32
	rng      *rand.Rand
	migCount []int // per-region migration count, for ping-pong detection
	stats    Stats
}

// NewStarNUMA creates the policy.
func NewStarNUMA(cfg Config) *StarNUMA {
	if cfg.MigrationLimit < 0 || cfg.PoolSharerThreshold < 1 {
		panic(fmt.Sprintf("migrate: invalid config %+v", cfg))
	}
	return &StarNUMA{cfg: cfg, hi: cfg.HiStart, lo: cfg.LoStart,
		rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements Policy.
func (p *StarNUMA) Name() string { return "starnuma" }

// Stats returns decision counters.
func (p *StarNUMA) Stats() Stats { return p.stats }

// Thresholds returns the current dynamic HI/LO thresholds (for tests and
// diagnostics).
func (p *StarNUMA) Thresholds() (hi, lo uint32) { return p.hi, p.lo }

// scaleHi multiplies the dynamic HI threshold by f, clamped to the
// configured [HiMin, HiMax] band — the hook outer feedback controllers
// (EpochAdaptive) steer through.
func (p *StarNUMA) scaleHi(f float64) {
	hi := uint32(float64(p.hi)*f + 0.5)
	if hi < p.cfg.HiMin {
		hi = p.cfg.HiMin
	}
	if hi > p.cfg.HiMax {
		hi = p.cfg.HiMax
	}
	if hi < 1 {
		hi = 1
	}
	p.hi = hi
}

// regionLocation derives each region's location as the majority home of
// its pages. After first-touch or previous migrations, pages of a region
// can be split; the majority matches the paper's notion of a (physical)
// region living in one place.
func regionLocation(st *State, tbl *tracker.Table) []topology.NodeID {
	nodes := st.Sockets
	if st.HasPool {
		nodes++
	}
	loc := make([]topology.NodeID, tbl.NumRegions())
	votes := make([]int, nodes)
	for r := 0; r < tbl.NumRegions(); r++ {
		for i := range votes {
			votes[i] = 0
		}
		first, count := tbl.PageRange(r)
		best, bestV := topology.NodeID(-1), 0
		for pg := first; pg < first+count && pg < len(st.PageHome); pg++ {
			h := st.PageHome[pg]
			if h < 0 {
				continue // untouched page: no home yet
			}
			votes[h]++
			if votes[h] > bestV {
				best, bestV = h, votes[h]
			}
		}
		loc[r] = best
	}
	return loc
}

// movePages rehomes all pages of region r to dest, returning the
// migrations performed.
func movePages(st *State, tbl *tracker.Table, r int, dest topology.NodeID) []Migration {
	first, count := tbl.PageRange(r)
	var out []Migration
	for pg := first; pg < first+count && pg < len(st.PageHome); pg++ {
		if st.PageHome[pg] == dest || st.PageHome[pg] < 0 {
			continue // already there, or never touched — nothing to move
		}
		out = append(out, Migration{Page: uint32(pg), From: st.PageHome[pg], To: dest})
		st.PageHome[pg] = dest
	}
	return out
}

// Decide implements Algorithm 1.
func (p *StarNUMA) Decide(phase int, st *State) []Migration {
	tbl := st.Tracker
	if tbl == nil {
		panic("migrate: StarNUMA policy requires a tracker")
	}
	if p.migCount == nil {
		p.migCount = make([]int, tbl.NumRegions())
	}
	loc := regionLocation(st, tbl)
	poolUsed := st.poolPages()

	var out []Migration
	migrated := 0
	candidatePages := 0

	for r := 0; r < tbl.NumRegions(); r++ {
		// Identify migration candidates (Algorithm 1 lines 6-10).
		hot := false
		if tbl.Kind() == tracker.T0 {
			// T0 cannot rank hotness: fixed threshold of "touched by all
			// sockets" (§IV-C).
			hot = tbl.SharerCount(r) >= st.Sockets
		} else {
			hot = tbl.Count(r) >= p.hi
		}
		if !hot {
			continue
		}
		candidatePages += tbl.RegionPages()
		if migrated >= p.cfg.MigrationLimit {
			continue // keep counting candidates for threshold adjustment
		}
		sharers := tbl.SharerSet(r)
		if len(sharers) == 0 {
			continue
		}
		best := topology.NodeID(sharers[p.rng.Intn(len(sharers))])
		if st.HasPool && len(sharers) >= p.cfg.PoolSharerThreshold {
			best = st.PoolNode
		}
		if best == loc[r] {
			continue
		}
		// Ping-pong check (Algorithm 1 line 12 + footnote).
		if !p.cfg.DisablePingPong && p.migCount[r] > (phase+1)/4 {
			p.stats.PingPongSkips++
			st.traceSkip(r)
			continue
		}
		// Eviction candidate (lines 13-23).
		if st.HasPool && best == st.PoolNode {
			need := tbl.RegionPages()
			for poolUsed+need > st.PoolCapacityPages {
				victim := p.findVictim(st, tbl, loc, r)
				if victim < 0 {
					p.stats.EvictFailures++
					if p.lo*2 <= p.cfg.LoMax {
						p.lo *= 2
					}
					break
				}
				dest := p.victimDestination(tbl, victim, st)
				moved := movePages(st, tbl, victim, dest)
				out = append(out, moved...)
				loc[victim] = dest
				poolUsed -= len(moved)
				p.stats.Evictions += uint64(len(moved))
				st.traceMove("evict region", victim, len(moved), dest)
			}
			if poolUsed+need > st.PoolCapacityPages {
				continue // pool still full; skip this migration
			}
		}
		// Perform migration (lines 24-26).
		moved := movePages(st, tbl, r, best)
		if len(moved) == 0 {
			continue
		}
		out = append(out, moved...)
		if best == st.PoolNode && st.HasPool {
			poolUsed += len(moved)
			p.stats.PagesToPool += uint64(len(moved))
		} else {
			p.stats.PagesToSocket += uint64(len(moved))
		}
		st.traceMove("migrate region", r, len(moved), best)
		loc[r] = best
		p.migCount[r]++
		migrated += len(moved)
	}

	p.adjustThresholds(candidatePages)
	return out
}

// findVictim scans for a pool-resident region colder than LO (Algorithm
// 1 lines 15-21), excluding the region being placed.
func (p *StarNUMA) findVictim(st *State, tbl *tracker.Table, loc []topology.NodeID, exclude int) int {
	for v := 0; v < tbl.NumRegions(); v++ {
		if v == exclude || loc[v] != st.PoolNode {
			continue
		}
		if tbl.Kind() == tracker.T0 {
			// No counts: a pool region no longer touched by everyone is
			// cold by T0's standards.
			if tbl.SharerCount(v) < st.Sockets {
				return v
			}
		} else if tbl.Count(v) <= p.lo {
			return v
		}
	}
	return -1
}

// victimDestination picks a random sharer of the victim (Algorithm 1
// line 22), falling back to a random socket for untouched regions.
func (p *StarNUMA) victimDestination(tbl *tracker.Table, victim int, st *State) topology.NodeID {
	sharers := tbl.SharerSet(victim)
	if len(sharers) == 0 {
		return topology.NodeID(p.rng.Intn(st.Sockets))
	}
	return topology.NodeID(sharers[p.rng.Intn(len(sharers))])
}

// adjustThresholds implements §IV-C's dynamic HI adjustment: HI tracks
// the ratio of candidate pages to the migration limit ("a simple
// function of page count exceeding the threshold relative to the set
// migration limit") so the scan selects roughly MIGRATION_LIMIT pages
// per phase. The multiplicative step is bounded to [1/4, 4] per phase.
func (p *StarNUMA) adjustThresholds(candidatePages int) {
	if p.cfg.MigrationLimit <= 0 {
		return
	}
	ratio := float64(candidatePages) / float64(p.cfg.MigrationLimit)
	var factor float64
	switch {
	case ratio > 1.25:
		factor = ratio
		if factor > 4 {
			factor = 4
		}
	case ratio < 0.75:
		// Descend fast: a near-empty candidate set means the threshold
		// is far above the workload's heat level, and every phase spent
		// descending is a phase without pool placements.
		factor = ratio
		if factor < 0.1 {
			factor = 0.1
		}
	default:
		return
	}
	hi := uint32(float64(p.hi) * factor)
	if hi < p.cfg.HiMin {
		hi = p.cfg.HiMin
	}
	if hi > p.cfg.HiMax {
		hi = p.cfg.HiMax
	}
	p.hi = hi
}

// sortMigrationsByPage orders migrations deterministically (helper for
// tests and stable checkpoint encoding).
func sortMigrationsByPage(ms []Migration) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Page < ms[j].Page })
}
