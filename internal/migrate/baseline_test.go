package migrate

import (
	"testing"
	"testing/quick"

	"starnuma/internal/topology"
)

func TestPageCountsBasics(t *testing.T) {
	c := NewPageCounts(64, 16)
	if c.Pages() != 64 {
		t.Fatalf("pages = %d", c.Pages())
	}
	c.Record(3, 10)
	c.Record(3, 10)
	c.Record(5, 10)
	if c.Count(10, 3) != 2 || c.Count(10, 5) != 1 || c.Count(10, 0) != 0 {
		t.Fatal("counts wrong")
	}
	if c.Total(10) != 3 || c.Sharers(10) != 2 {
		t.Fatalf("total=%d sharers=%d", c.Total(10), c.Sharers(10))
	}
	s, n := c.Argmax(10)
	if s != 3 || n != 2 {
		t.Fatalf("argmax = %d,%d", s, n)
	}
	c.Reset()
	if c.Total(10) != 0 {
		t.Fatal("reset failed")
	}
}

func TestPageCountsAddInto(t *testing.T) {
	a := NewPageCounts(8, 4)
	b := NewPageCounts(8, 4)
	a.Record(1, 2)
	a.Record(1, 2)
	a.AddInto(b)
	a.Reset()
	a.Record(2, 2)
	a.AddInto(b)
	if b.Count(2, 1) != 2 || b.Count(2, 2) != 1 {
		t.Fatal("accumulation wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch must panic")
		}
	}()
	NewPageCounts(4, 4).AddInto(NewPageCounts(8, 4))
}

func TestPageCountsInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPageCounts(0, 16)
}

func baselineState(pages int) *State {
	return &State{
		PageHome: make([]topology.NodeID, pages),
		Counts:   NewPageCounts(pages, 16),
		Sockets:  16,
	}
}

func TestPerfectBaselineMovesToMajoritySocket(t *testing.T) {
	st := baselineState(32)
	for i := 0; i < 20; i++ {
		st.Counts.Record(7, 3)
	}
	for i := 0; i < 5; i++ {
		st.Counts.Record(0, 3) // current home gets a few accesses
	}
	p := NewPerfectBaseline(0)
	ms := p.Decide(0, st)
	if len(ms) != 1 || ms[0].Page != 3 || ms[0].To != 7 || ms[0].From != 0 {
		t.Fatalf("migrations = %+v", ms)
	}
	if st.PageHome[3] != 7 {
		t.Fatal("PageHome not updated")
	}
}

func TestPerfectBaselineRespectsGainAndMin(t *testing.T) {
	st := baselineState(32)
	// Page 1: below MinAccesses.
	st.Counts.Record(7, 1)
	// Page 2: best socket barely ahead of home (gain too small).
	for i := 0; i < 10; i++ {
		st.Counts.Record(0, 2)
	}
	for i := 0; i < 11; i++ {
		st.Counts.Record(7, 2)
	}
	p := NewPerfectBaseline(0)
	if ms := p.Decide(0, st); len(ms) != 0 {
		t.Fatalf("unexpected migrations: %+v", ms)
	}
}

func TestPerfectBaselineLimit(t *testing.T) {
	st := baselineState(64)
	for pg := uint32(0); pg < 64; pg++ {
		for i := 0; i < 20; i++ {
			st.Counts.Record(9, pg)
		}
	}
	p := NewPerfectBaseline(10)
	if ms := p.Decide(0, st); len(ms) != 10 {
		t.Fatalf("migrated %d, want 10", len(ms))
	}
}

func TestPerfectBaselineRequiresCounts(t *testing.T) {
	p := NewPerfectBaseline(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Decide(0, &State{PageHome: make([]topology.NodeID, 4), Sockets: 16})
}

func TestNoMigration(t *testing.T) {
	st := baselineState(8)
	if ms := (NoMigration{}).Decide(0, st); ms != nil {
		t.Fatal("NoMigration migrated")
	}
}

func TestStaticOracleBaselinePlacement(t *testing.T) {
	total := NewPageCounts(16, 16)
	for i := 0; i < 10; i++ {
		total.Record(4, 0)
	}
	total.Record(2, 0)
	home := StaticOraclePlacement(total, StaticOracleConfig{Sockets: 16})
	if home[0] != 4 {
		t.Fatalf("page 0 home = %v, want 4", home[0])
	}
	// Untouched pages get a deterministic random socket in range.
	if home[5] < 0 || int(home[5]) >= 16 {
		t.Fatalf("untouched page home = %v", home[5])
	}
}

func TestStaticOraclePoolsHottestSharedPages(t *testing.T) {
	total := NewPageCounts(100, 16)
	// Pages 0..9 widely shared, page 0 hottest ... page 9 coldest.
	for pg := uint32(0); pg < 10; pg++ {
		for s := 0; s < 16; s++ {
			for i := 0; i < 10*(10-int(pg)); i++ {
				total.Record(s, pg)
			}
		}
	}
	// Page 50: hot but private.
	for i := 0; i < 10000; i++ {
		total.Record(3, 50)
	}
	cfg := StaticOracleConfig{
		Sockets: 16, HasPool: true, PoolNode: 16,
		PoolCapacityPages: 4, PoolSharerThreshold: 8,
	}
	home := StaticOraclePlacement(total, cfg)
	for pg := 0; pg < 4; pg++ {
		if home[pg] != 16 {
			t.Errorf("page %d home = %v, want pool", pg, home[pg])
		}
	}
	for pg := 4; pg < 10; pg++ {
		if home[pg] == 16 {
			t.Errorf("page %d pooled beyond capacity", pg)
		}
	}
	if home[50] == 16 {
		t.Error("private page pooled")
	}
}

func TestStaticOracleNoPool(t *testing.T) {
	total := NewPageCounts(8, 16)
	home := StaticOraclePlacement(total, StaticOracleConfig{Sockets: 16, HasPool: false})
	for _, h := range home {
		if int(h) >= 16 {
			t.Fatalf("home %v out of socket range", h)
		}
	}
}

func TestStaticOracleInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StaticOraclePlacement(NewPageCounts(4, 4), StaticOracleConfig{})
}

// Property: oracle placement always lands every page on a valid node and
// never exceeds pool capacity.
func TestStaticOracleInvariants(t *testing.T) {
	f := func(seed int64, capacity uint8) bool {
		total := NewPageCounts(64, 16)
		rng := newDetRand(seed)
		for i := 0; i < 500; i++ {
			total.Record(int(rng()%16), uint32(rng()%64))
		}
		cap := int(capacity % 64)
		cfg := StaticOracleConfig{
			Sockets: 16, HasPool: true, PoolNode: 16,
			PoolCapacityPages: cap, PoolSharerThreshold: 8, Seed: seed,
		}
		home := StaticOraclePlacement(total, cfg)
		pooled := 0
		for _, h := range home {
			if int(h) > 16 || h < 0 {
				return false
			}
			if h == 16 {
				pooled++
			}
		}
		return pooled <= cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// newDetRand is a minimal deterministic generator for property tests.
func newDetRand(seed int64) func() uint64 {
	s := uint64(seed)*0x9e3779b97f4a7c15 + 1
	return func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
}
