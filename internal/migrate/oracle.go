package migrate

import "starnuma/internal/topology"

// PostPlacer is implemented by policies that compute a whole-run static
// placement once step B's trace is fully observed. core rewrites every
// checkpoint's page map with the returned placement and drops all
// migrations — the §V-B zero-cost methodology, generalized from the
// StaticOracle flag into a first-class policy.
type PostPlacer interface {
	// PostPlace returns the placement for every page, derived from the
	// whole-run access totals.
	PostPlace(totals *PageCounts) []topology.NodeID
}

// OraclePolicy is the tournament's zero-cost upper bound: it performs no
// dynamic migrations (so the timing windows pay no migration stalls,
// shootdowns or transfer traffic) and instead places every page
// oracularly from whole-run totals — each page at its most frequent
// accessor, the hottest widely-shared pages in the pool.
type OraclePolicy struct {
	cfg StaticOracleConfig
}

// Name implements Policy.
func (*OraclePolicy) Name() string { return "oracle" }

// Stats implements Policy.
func (*OraclePolicy) Stats() Stats { return Stats{} }

// Decide implements Policy: the oracle never migrates dynamically.
func (*OraclePolicy) Decide(int, *State) []Migration { return nil }

// PostPlace implements PostPlacer.
func (p *OraclePolicy) PostPlace(totals *PageCounts) []topology.NodeID {
	return StaticOraclePlacement(totals, p.cfg)
}
