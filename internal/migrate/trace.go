package migrate

import (
	"strconv"

	"starnuma/internal/evtrace"
	"starnuma/internal/sim"
	"starnuma/internal/topology"
)

// Per-phase event caps. A single phase can decide thousands of page
// moves; the timeline wants the shape of the decision stream, not every
// page, so each event class is capped and the summary events carry the
// exact totals.
const (
	traceMoveCap = 128
	traceSkipCap = 64
)

// BeginTracePhase stamps subsequent trace events with the given
// phase-clock timestamp and resets the per-phase event caps. Step B
// records on a phase-index clock (one tick per phase); core.Plan
// translates ticks to window-start offsets when assembling the final
// timeline.
func (s *State) BeginTracePhase(ts sim.Time) {
	s.TraceTs = ts
	s.trcMoves = 0
	s.trcSkips = 0
}

// traceNode names a node for event annotations and lanes.
func (s *State) traceNode(n topology.NodeID) string {
	if s.HasPool && n == s.PoolNode {
		return "pool"
	}
	return "socket" + strconv.Itoa(int(n))
}

// traceMove records one region-granularity move decision (a migration,
// eviction or drain), capped per phase.
func (s *State) traceMove(name string, region, pages int, dest topology.NodeID) {
	if s.Trace == nil || s.trcMoves >= traceMoveCap {
		return
	}
	s.trcMoves++
	s.Trace.InstantArgs("migrate", name, "stepB/decide", s.TraceTs,
		evtrace.Arg{Key: "region", Val: strconv.Itoa(region)},
		evtrace.Arg{Key: "pages", Val: strconv.Itoa(pages)},
		evtrace.Arg{Key: "to", Val: s.traceNode(dest)})
}

// traceSkip records one ping-pong suppression, capped per phase.
func (s *State) traceSkip(region int) {
	if s.Trace == nil || s.trcSkips >= traceSkipCap {
		return
	}
	s.trcSkips++
	s.Trace.InstantArgs("migrate", "pingpong skip", "stepB/decide", s.TraceTs,
		evtrace.Arg{Key: "region", Val: strconv.Itoa(region)})
}

// traceDrain records the summary of a pool drain reaction.
func (s *State) traceDrain(resident, capacity, drained int) {
	if s.Trace == nil {
		return
	}
	s.Trace.InstantArgs("pool", "drain", "stepB/drain", s.TraceTs,
		evtrace.Arg{Key: "resident", Val: strconv.Itoa(resident)},
		evtrace.Arg{Key: "capacity", Val: strconv.Itoa(capacity)},
		evtrace.Arg{Key: "drained", Val: strconv.Itoa(drained)})
}
