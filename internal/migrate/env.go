package migrate

import (
	"starnuma/internal/topology"
	"starnuma/internal/tracker"
)

// PolicyEnv is the observation API a policy factory receives: the static
// shape of the simulated system plus two feedback channels — per-phase
// placement feedback derived from the access counts, and the fault
// schedule's link-health outlook. It replaces the ad-hoc State field
// grabbing policies used to do at Decide time for anything that is not
// per-phase placement state: State stays the mutable placement view,
// PolicyEnv is everything a policy may observe about the world it runs
// in.
//
// Factories must treat the env as read-only; the closures are safe to
// call from Decide (they are evaluated against step B's single-threaded
// phase loop, so they share the policy's determinism contract).
type PolicyEnv struct {
	// Sockets/HasPool/PoolNode/PoolCapacityPages mirror the topology the
	// policy will place pages onto.
	Sockets           int
	HasPool           bool
	PoolNode          topology.NodeID
	PoolCapacityPages int

	// Pages is the workload footprint; NumRegions/RegionPages describe
	// the tracker granularity.
	Pages       int
	NumRegions  int
	RegionPages int
	// TrackerKind is the region tracker variant (T16 or T0).
	TrackerKind tracker.Kind

	// MeanRegionAccessesPerPhase is the workload's expected region heat —
	// the Config.AutoScale input core derives from core count, phase
	// length and MPKI.
	MeanRegionAccessesPerPhase float64

	// Seed drives the policy's random choices (Config.Seed lineage);
	// WorkloadSeed is the workload stream's seed, used where decisions
	// must match per-workload seeded companions (the static oracle).
	Seed         int64
	WorkloadSeed int64

	// BaseMigration carries the SimConfig.Migration knobs (Algorithm 1
	// family); BaselineMigrationLimit the perfect baseline's cap.
	BaseMigration          Config
	BaselineMigrationLimit int

	// Replication carries the SimConfig.Replication knobs; the
	// replication policy falls back to DefaultReplicationConfig when the
	// study section is not enabled.
	Replication ReplicationConfig

	// Link reports the health outlook of the socket↔pool fabric for the
	// given phase's timing window (bandwidth-aware policies). Never nil
	// after NewPolicy; the default reports a healthy link.
	Link func(phase int) LinkHealth

	// Feedback reports the most recent completed phase's placement
	// feedback — the same numbers the metrics layer publishes under
	// migrate/policy/<name>/. Never nil after NewPolicy; the default
	// reports the zero PhaseFeedback.
	Feedback func() PhaseFeedback
}

// normalize fills nil closures so policies can call them untested.
func (e PolicyEnv) normalize() PolicyEnv {
	if e.Link == nil {
		e.Link = func(int) LinkHealth { return LinkHealth{} }
	}
	if e.Feedback == nil {
		e.Feedback = func() PhaseFeedback { return PhaseFeedback{} }
	}
	return e
}

// LinkHealth summarises the socket↔pool fabric's condition during one
// phase, derived from the fault schedule (fault.Schedule.Outlook plus
// the pool device state). The zero value means a healthy link.
type LinkHealth struct {
	// LatencyX is the worst active latency multiplier (≤1 = nominal).
	LatencyX float64
	// BandwidthDiv is the worst active bandwidth divisor (≤1 = nominal).
	BandwidthDiv float64
	// DownFrac is the fraction of the window the link spends down
	// retraining (flap events), in [0, 1).
	DownFrac float64
	// PoolDead marks the whole pool device as failed.
	PoolDead bool
	// PoolCapacityFrac is the usable fraction of nominal pool capacity
	// (surviving channels × capacity squeezes); 0 means unscaled.
	PoolCapacityFrac float64
}

// Severity collapses the health signal into a single effective-load
// multiplier ≥ 1: how much more expensive a pool access is, accounting
// for latency stretch, bandwidth division and flap downtime. PoolDead is
// not folded in — callers that must avoid a dead pool check it
// explicitly.
func (h LinkHealth) Severity() float64 {
	s := 1.0
	if h.LatencyX > s {
		s = h.LatencyX
	}
	if h.BandwidthDiv > s {
		s = h.BandwidthDiv
	}
	if h.DownFrac > 0 && h.DownFrac < 1 {
		if f := 1 / (1 - h.DownFrac); f > s {
			s = f
		}
	}
	return s
}

// PhaseFeedback is the per-phase placement feedback the environment
// exposes: how the previous phase's accesses landed relative to the
// placement the policy produced. Computed by ComputeFeedback.
type PhaseFeedback struct {
	// Phase is the completed phase the feedback describes.
	Phase int
	// Accesses is the phase's total access count; 0 means "no feedback
	// yet" (first decision point, or an idle phase).
	Accesses uint64
	// RemoteFrac is the fraction of accesses served by a remote socket —
	// neither the accessor's own memory nor the pool.
	RemoteFrac float64
	// PoolFrac is the fraction of accesses served by the pool.
	PoolFrac float64
	// PoolResidentPages counts pages homed in the pool at phase end.
	PoolResidentPages int
}

// ComputeFeedback derives one phase's PhaseFeedback from the phase's
// access counts and the end-of-phase placement. Untouched pages and
// pages with no home contribute nothing.
func ComputeFeedback(phase int, counts *PageCounts, home []topology.NodeID,
	hasPool bool, poolNode topology.NodeID) PhaseFeedback {
	fb := PhaseFeedback{Phase: phase}
	var local, remote, pooled uint64
	for pg := range home {
		h := home[pg]
		if h < 0 {
			continue
		}
		if hasPool && h == poolNode {
			fb.PoolResidentPages++ // residency counts every pool page, touched or not
		}
		p := uint32(pg)
		total := counts.Total(p)
		if total == 0 {
			continue
		}
		switch {
		case hasPool && h == poolNode:
			pooled += total
		case int(h) < counts.Sockets():
			c := uint64(counts.Count(p, int(h)))
			local += c
			remote += total - c
		default:
			remote += total
		}
	}
	fb.Accesses = local + remote + pooled
	if fb.Accesses > 0 {
		fb.RemoteFrac = float64(remote) / float64(fb.Accesses)
		fb.PoolFrac = float64(pooled) / float64(fb.Accesses)
	}
	return fb
}
