package migrate

import (
	"fmt"
	"math/rand"
	"sort"

	"starnuma/internal/topology"
)

// PerfectBaseline is the paper's favoured baseline migration policy:
// per-page migration decisions from complete, zero-cost access knowledge
// (§IV-C). A page moves to the socket that accessed it most during the
// phase when that socket's count sufficiently exceeds the current home's
// count. There is no pool; vagabond pages simply have no good
// destination — the paper's central observation.
type PerfectBaseline struct {
	// MinAccesses filters noise: pages below it are not considered.
	MinAccesses uint32
	// Gain is the advantage the best socket must have over the current
	// home (best > Gain × home) before a move is worthwhile.
	Gain float64
	// MigrationLimit caps pages moved per phase; the migration cost
	// itself is still modelled by the timing layer.
	MigrationLimit int

	stats Stats
}

// NewPerfectBaseline returns the baseline policy with the defaults used
// throughout the evaluation. The gain margin is deliberately high: with
// per-page counts in the hundreds, a lower margin migrates on sampling
// noise, and noise migrations only cost the baseline (stalls, traffic,
// shootdowns) without improving placement — the paper explicitly favors
// the baseline, so it must not self-harm.
func NewPerfectBaseline(limit int) *PerfectBaseline {
	return &PerfectBaseline{MinAccesses: 16, Gain: 1.6, MigrationLimit: limit}
}

// Name implements Policy.
func (p *PerfectBaseline) Name() string { return "baseline-perfect" }

// Stats returns decision counters.
func (p *PerfectBaseline) Stats() Stats { return p.stats }

// Decide implements Policy.
func (p *PerfectBaseline) Decide(phase int, st *State) []Migration {
	if st.Counts == nil {
		panic("migrate: PerfectBaseline requires PageCounts")
	}
	var out []Migration
	for pg := uint32(0); int(pg) < len(st.PageHome); pg++ {
		if p.MigrationLimit > 0 && len(out) >= p.MigrationLimit {
			break
		}
		best, bestCount := st.Counts.Argmax(pg)
		if bestCount < p.MinAccesses {
			continue
		}
		home := st.PageHome[pg]
		if topology.NodeID(best) == home {
			continue
		}
		var homeCount uint32
		if int(home) < st.Sockets {
			homeCount = st.Counts.Count(pg, int(home))
		}
		if float64(bestCount) <= p.Gain*float64(homeCount) {
			continue
		}
		out = append(out, Migration{Page: pg, From: home, To: topology.NodeID(best)})
		st.PageHome[pg] = topology.NodeID(best)
		p.stats.PagesToSocket++
	}
	return out
}

// NoMigration is a null policy: placement is whatever the initial
// placement produced. Used for static-placement studies.
type NoMigration struct{}

// Name implements Policy.
func (NoMigration) Name() string { return "static" }

// Decide implements Policy.
func (NoMigration) Decide(int, *State) []Migration { return nil }

// Stats implements Policy.
func (NoMigration) Stats() Stats { return Stats{} }

// StaticOracleConfig controls oracular static placement (§V-B).
type StaticOracleConfig struct {
	Sockets int
	HasPool bool
	// PoolNode is the pool's node ID when HasPool.
	PoolNode topology.NodeID
	// PoolCapacityPages bounds how many pages the oracle may pool.
	PoolCapacityPages int
	// PoolSharerThreshold mirrors Algorithm 1's sharing cut-off.
	PoolSharerThreshold int
	// Seed breaks placement ties deterministically.
	Seed int64
}

// StaticOraclePlacement computes an initial page placement from
// whole-run access totals: each page goes to its most-frequent accessor;
// with a pool, the hottest widely-shared pages go to the pool until
// capacity is exhausted. Being an oracle, it is allowed a global sort —
// unlike Algorithm 1, which is restricted to one unsorted pass.
func StaticOraclePlacement(total *PageCounts, cfg StaticOracleConfig) []topology.NodeID {
	if cfg.Sockets <= 0 {
		panic(fmt.Sprintf("migrate: invalid oracle config %+v", cfg))
	}
	pages := total.Pages()
	home := make([]topology.NodeID, pages)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Default: best socket (first-touch stand-in for untouched pages).
	for pg := 0; pg < pages; pg++ {
		best, count := total.Argmax(uint32(pg))
		if count == 0 {
			best = rng.Intn(cfg.Sockets)
		}
		home[pg] = topology.NodeID(best)
	}
	if !cfg.HasPool || cfg.PoolCapacityPages <= 0 {
		return home
	}

	// Pool the hottest widely-shared pages.
	type hotPage struct {
		pg    uint32
		total uint64
	}
	var candidates []hotPage
	for pg := 0; pg < pages; pg++ {
		if total.Sharers(uint32(pg)) >= cfg.PoolSharerThreshold {
			candidates = append(candidates, hotPage{uint32(pg), total.Total(uint32(pg))})
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].total != candidates[j].total {
			return candidates[i].total > candidates[j].total
		}
		return candidates[i].pg < candidates[j].pg
	})
	for i := 0; i < len(candidates) && i < cfg.PoolCapacityPages; i++ {
		home[candidates[i].pg] = cfg.PoolNode
	}
	return home
}
