package migrate

import (
	"fmt"
	"sort"
	"strings"
)

// Params is a policy's parameter overrides, keyed by the names its
// descriptor declares. Values are float64 across the board — thresholds,
// limits, fractions and booleans (0/non-0) all fit — which keeps the
// JSON form trivial and the content-hash encoding deterministic
// (encoding/json sorts map keys).
type Params map[string]float64

// Get returns the named parameter, or def when absent.
func (p Params) Get(name string, def float64) float64 {
	if v, ok := p[name]; ok {
		return v
	}
	return def
}

// Clone returns a copy (nil stays nil).
func (p Params) Clone() Params {
	if p == nil {
		return nil
	}
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// ParamSpec declares one parameter a policy accepts.
type ParamSpec struct {
	// Name is the JSON key ("migration_limit").
	Name string
	// Doc is the one-line description shown by `starnuma policy list`.
	Doc string
	// Default is the value used when the parameter is absent.
	Default float64
}

// Descriptor is one registered migration policy: a stable name, a doc
// line, the parameter schema, and the factory that builds instances.
// Modeled on the experiment registry (internal/exp): the registry is the
// single source of truth — the CLIs' `policy list`, the scenario DSL's
// validation, core's construction and the policysweep tournament all
// derive from it, so adding a policy is one Register call.
type Descriptor struct {
	// Name is the canonical registry key ("starnuma", "oracle").
	Name string
	// Doc is the one-line human description.
	Doc string
	// Params is the accepted parameter schema; NewPolicy rejects keys
	// outside it.
	Params []ParamSpec
	// UsesTracker marks policies that consume the region tracker's
	// metadata; the timing layer charges tracker flush traffic only for
	// these.
	UsesTracker bool
	// New builds a policy instance. Parameters are pre-validated against
	// Params; the factory may still reject out-of-range values.
	New func(Params, PolicyEnv) (Policy, error)
}

// policyRegistry holds the registered descriptors in registration order
// (builtin.go registers the built-ins in tournament order).
var policyRegistry []Descriptor

// Register adds a policy descriptor. It panics on a duplicate or empty
// name or a nil factory — registration is init-time wiring, and a broken
// registration should fail the whole binary, loudly.
func Register(d Descriptor) {
	if d.Name == "" || d.New == nil {
		panic("migrate: Register needs a name and a factory")
	}
	for _, e := range policyRegistry {
		if e.Name == d.Name {
			panic("migrate: duplicate policy " + d.Name)
		}
	}
	policyRegistry = append(policyRegistry, d)
}

// Policies returns the registered descriptors in registration order.
// The slice is a copy; descriptors are shared.
func Policies() []Descriptor {
	out := make([]Descriptor, len(policyRegistry))
	copy(out, policyRegistry)
	return out
}

// PolicyNames lists the registered policy names in registration order.
func PolicyNames() []string {
	out := make([]string, len(policyRegistry))
	for i, d := range policyRegistry {
		out[i] = d.Name
	}
	return out
}

// LookupPolicy resolves a registry name to its descriptor.
func LookupPolicy(name string) (Descriptor, bool) {
	for _, d := range policyRegistry {
		if d.Name == name {
			return d, true
		}
	}
	return Descriptor{}, false
}

// CheckParams validates params against the named policy's schema:
// unknown policy names and parameter keys outside the schema are
// rejected. Keys are checked in sorted order so the first error is
// deterministic.
func CheckParams(name string, params Params) error {
	d, ok := LookupPolicy(name)
	if !ok {
		return fmt.Errorf("migrate: unknown policy %q (registered: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
	if len(params) == 0 {
		return nil
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		known := false
		for _, ps := range d.Params {
			if ps.Name == k {
				known = true
				break
			}
		}
		if !known {
			var names []string
			for _, ps := range d.Params {
				names = append(names, ps.Name)
			}
			return fmt.Errorf("migrate: policy %q has no parameter %q (accepted: %s)",
				name, k, strings.Join(names, ", "))
		}
	}
	return nil
}

// NewPolicy validates params and builds an instance of the named policy.
func NewPolicy(name string, params Params, env PolicyEnv) (Policy, error) {
	if err := CheckParams(name, params); err != nil {
		return nil, err
	}
	d, _ := LookupPolicy(name)
	p, err := d.New(params, env.normalize())
	if err != nil {
		return nil, fmt.Errorf("migrate: policy %q: %w", name, err)
	}
	return p, nil
}
