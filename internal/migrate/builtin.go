package migrate

import (
	"fmt"

	"starnuma/internal/sim"
)

// cyclesParam reads a cycle-count parameter.
func cyclesParam(p Params, name string, def sim.Cycles) sim.Cycles {
	return sim.Cycles(p.Get(name, float64(def)))
}

// starnumaParams is the Algorithm 1 parameter schema, shared by every
// policy that embeds the StarNUMA scan (epoch-adaptive, bandwidth-aware,
// replication). Defaults of 0 mean "inherit the configured/auto-scaled
// value" (PolicyEnv.BaseMigration → Config.AutoScale).
var starnumaParams = []ParamSpec{
	{Name: "hi_start", Doc: "initial ACCESS_THRES_HI (0 = auto-scale from workload heat)"},
	{Name: "lo_start", Doc: "initial ACCESS_THRES_LO for victim selection (0 = auto)"},
	{Name: "hi_min", Doc: "lower bound of the dynamic HI adjustment (0 = auto)"},
	{Name: "hi_max", Doc: "upper bound of the dynamic HI adjustment (0 = auto)"},
	{Name: "lo_max", Doc: "upper bound of the dynamic LO growth (0 = auto)"},
	{Name: "migration_limit", Doc: "MIGRATION_LIMIT in pages per phase (0 = configured default)"},
	{Name: "pool_sharer_threshold", Doc: "sharer sockets at which a region goes to the pool", Default: 8},
	{Name: "seed", Doc: "seed for Algorithm 1's random sharer choices", Default: 1},
	{Name: "disable_pingpong", Doc: "non-0 disables ping-pong suppression (ablation)"},
}

// starnumaConfig resolves the effective Algorithm 1 configuration:
// the configured base knobs (or AutoConfig when the caller passed none),
// overridden by params, auto-scaled from the workload's region heat.
func starnumaConfig(p Params, env PolicyEnv) Config {
	cfg := env.BaseMigration
	if cfg == (Config{}) {
		cfg = AutoConfig()
	}
	cfg.HiStart = uint32(p.Get("hi_start", float64(cfg.HiStart)))
	cfg.LoStart = uint32(p.Get("lo_start", float64(cfg.LoStart)))
	cfg.HiMin = uint32(p.Get("hi_min", float64(cfg.HiMin)))
	cfg.HiMax = uint32(p.Get("hi_max", float64(cfg.HiMax)))
	cfg.LoMax = uint32(p.Get("lo_max", float64(cfg.LoMax)))
	cfg.MigrationLimit = int(p.Get("migration_limit", float64(cfg.MigrationLimit)))
	cfg.PoolSharerThreshold = int(p.Get("pool_sharer_threshold", float64(cfg.PoolSharerThreshold)))
	cfg.Seed = int64(p.Get("seed", float64(cfg.Seed)))
	if p.Get("disable_pingpong", 0) > 0 {
		cfg.DisablePingPong = true
	}
	return cfg.AutoScale(env.MeanRegionAccessesPerPhase)
}

// newStarNUMAScan builds the Algorithm 1 scan shared by the StarNUMA
// family, with factory-grade validation instead of NewStarNUMA's panic.
func newStarNUMAScan(p Params, env PolicyEnv) (*StarNUMA, error) {
	cfg := starnumaConfig(p, env)
	if cfg.MigrationLimit < 0 {
		return nil, fmt.Errorf("migration_limit %d is negative", cfg.MigrationLimit)
	}
	if cfg.PoolSharerThreshold < 1 {
		return nil, fmt.Errorf("pool_sharer_threshold %d must be ≥ 1", cfg.PoolSharerThreshold)
	}
	return NewStarNUMA(cfg), nil
}

// The built-in policies, in tournament order. Registration order is the
// order `starnuma policy list` and the policysweep ranking input use.
func init() {
	Register(Descriptor{
		Name:        "starnuma",
		Doc:         "Algorithm 1: threshold-based region migration over the tracker (§III-D2)",
		Params:      starnumaParams,
		UsesTracker: true,
		New: func(p Params, env PolicyEnv) (Policy, error) {
			return newStarNUMAScan(p, env)
		},
	})
	Register(Descriptor{
		Name: "baseline-perfect",
		Doc:  "paper's favoured baseline: zero-cost perfect per-page knowledge, socket-only moves (§IV-C)",
		Params: []ParamSpec{
			{Name: "migration_limit", Doc: "pages moved per phase (0 = configured default)", Default: 8192},
			{Name: "min_accesses", Doc: "per-phase accesses below which a page is ignored", Default: 16},
			{Name: "gain", Doc: "advantage factor the best socket needs over the home", Default: 1.6},
		},
		New: func(p Params, env PolicyEnv) (Policy, error) {
			limit := env.BaselineMigrationLimit
			if limit == 0 {
				limit = 8192
			}
			pol := NewPerfectBaseline(int(p.Get("migration_limit", float64(limit))))
			pol.MinAccesses = uint32(p.Get("min_accesses", float64(pol.MinAccesses)))
			pol.Gain = p.Get("gain", pol.Gain)
			if pol.Gain < 1 {
				return nil, fmt.Errorf("gain %v must be ≥ 1", pol.Gain)
			}
			return pol, nil
		},
	})
	Register(Descriptor{
		Name: "none",
		Doc:  "no dynamic migration: placement stays wherever first touch put it",
		New: func(Params, PolicyEnv) (Policy, error) {
			return NoMigration{}, nil
		},
	})
	Register(Descriptor{
		Name: "epoch-adaptive",
		Doc:  "Algorithm 1 with feedback control: HI chases a target remote-access fraction per epoch",
		Params: append([]ParamSpec{
			{Name: "target_remote", Doc: "remote-access fraction the controller steers toward", Default: 0.3},
			{Name: "adjust_step", Doc: "multiplicative HI step applied per epoch", Default: 1.5},
		}, starnumaParams...),
		UsesTracker: true,
		New: func(p Params, env PolicyEnv) (Policy, error) {
			inner, err := newStarNUMAScan(p, env)
			if err != nil {
				return nil, err
			}
			target := p.Get("target_remote", 0.3)
			if target < 0 || target > 1 {
				return nil, fmt.Errorf("target_remote %v out of [0, 1]", target)
			}
			step := p.Get("adjust_step", 1.5)
			if step <= 1 {
				return nil, fmt.Errorf("adjust_step %v must be > 1", step)
			}
			return &EpochAdaptive{inner: inner, feedback: env.Feedback,
				targetRemote: target, step: step}, nil
		},
	})
	Register(Descriptor{
		Name: "bandwidth-aware",
		Doc:  "Algorithm 1 that backs off under link saturation: throttled moves, no pool placement past the backoff point",
		Params: append([]ParamSpec{
			{Name: "backoff_x", Doc: "link severity (latency×/bandwidth÷) at which pool placement is suspended", Default: 2},
		}, starnumaParams...),
		UsesTracker: true,
		New: func(p Params, env PolicyEnv) (Policy, error) {
			inner, err := newStarNUMAScan(p, env)
			if err != nil {
				return nil, err
			}
			backoff := p.Get("backoff_x", 2)
			if backoff <= 1 {
				return nil, fmt.Errorf("backoff_x %v must be > 1", backoff)
			}
			return &BandwidthAware{inner: inner, link: env.Link, backoffX: backoff}, nil
		},
	})
	Register(Descriptor{
		Name: "replication",
		Doc:  "Algorithm 1 plus per-phase replication of hot read-mostly vagabond pages (§V-F as a dynamic policy)",
		Params: append([]ParamSpec{
			{Name: "min_sharers", Doc: "sharer sockets a replication candidate needs", Default: 8},
			{Name: "max_write_frac", Doc: "write fraction above which a page is never replicated", Default: 0.05},
			{Name: "capacity_frac", Doc: "replicated-footprint budget as a fraction of all pages", Default: 0.25},
			{Name: "hot_accesses", Doc: "per-phase accesses a replication candidate needs", Default: 64},
			{Name: "write_penalty_cycles", Doc: "software coherence cost charged per store to a replica", Default: 5000},
		}, starnumaParams...),
		UsesTracker: true,
		New: func(p Params, env PolicyEnv) (Policy, error) {
			inner, err := newStarNUMAScan(p, env)
			if err != nil {
				return nil, err
			}
			rc := env.Replication
			if !rc.Enable {
				rc = DefaultReplicationConfig()
			}
			rc.Enable = true
			rc.MinSharers = int(p.Get("min_sharers", float64(rc.MinSharers)))
			rc.MaxWriteFrac = p.Get("max_write_frac", rc.MaxWriteFrac)
			rc.CapacityFrac = p.Get("capacity_frac", rc.CapacityFrac)
			rc.WritePenaltyCycles = cyclesParam(p, "write_penalty_cycles", rc.WritePenaltyCycles)
			if err := rc.Validate(); err != nil {
				return nil, err
			}
			hot := p.Get("hot_accesses", 64)
			if hot < 0 {
				return nil, fmt.Errorf("hot_accesses %v is negative", hot)
			}
			return &ReplicationPolicy{inner: inner, cfg: rc, hot: uint64(hot)}, nil
		},
	})
	Register(Descriptor{
		Name: "oracle",
		Doc:  "zero-cost upper bound: oracular static placement from whole-run totals, no migrations (§V-B)",
		Params: []ParamSpec{
			{Name: "pool_sharer_threshold", Doc: "sharer sockets at which a page may be pooled", Default: 8},
		},
		New: func(p Params, env PolicyEnv) (Policy, error) {
			thr := int(p.Get("pool_sharer_threshold", 8))
			if thr < 1 {
				return nil, fmt.Errorf("pool_sharer_threshold %d must be ≥ 1", thr)
			}
			return &OraclePolicy{cfg: StaticOracleConfig{
				Sockets:             env.Sockets,
				HasPool:             env.HasPool,
				PoolNode:            env.PoolNode,
				PoolCapacityPages:   env.PoolCapacityPages,
				PoolSharerThreshold: thr,
				Seed:                env.WorkloadSeed,
			}}, nil
		},
	})
}
