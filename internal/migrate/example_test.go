package migrate_test

import (
	"fmt"

	"starnuma/internal/migrate"
	"starnuma/internal/topology"
	"starnuma/internal/tracker"
)

// Algorithm 1 in miniature: a region touched by all 16 sockets crosses
// the HI threshold and is migrated to the memory pool.
func ExampleStarNUMA() {
	tbl := tracker.NewTable(tracker.T16, 256, 32)
	for s := 0; s < 16; s++ {
		for i := 0; i < 10; i++ {
			tbl.Record(s, uint32(i)) // region 0, hot and fully shared
		}
	}
	st := &migrate.State{
		PageHome:          make([]topology.NodeID, 256), // all on socket 0
		Tracker:           tbl,
		Sockets:           16,
		HasPool:           true,
		PoolNode:          16,
		PoolCapacityPages: 64,
	}
	cfg := migrate.DefaultConfig()
	cfg.HiStart = 100
	policy := migrate.NewStarNUMA(cfg)
	moves := policy.Decide(0, st)
	fmt.Println("pages migrated:", len(moves))
	fmt.Println("destination:", moves[0].To)
	fmt.Printf("pool fraction: %.0f%%\n", 100*policy.Stats().PoolFraction())
	// Output:
	// pages migrated: 32
	// destination: 16
	// pool fraction: 100%
}
