package sim

import (
	"math/rand"
	"testing"
)

// refHeap is the reference binary min-heap the wheel replaced; the
// differential tests below pin the wheel's pop sequence to it under the
// (at, seq) total order.
type refHeap []scheduled

func (h refHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *refHeap) push(it scheduled) {
	*h = append(*h, it)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *refHeap) pop() scheduled {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// TestEventQueueDifferential drives the bucketed wheel and the
// reference heap with identical mixed push/pop traffic across many
// seeds and checks the pop sequences agree exactly — including
// same-timestamp ties, where seq must break the tie FIFO. Timestamps
// mix dense (in-wheel) and sparse (far-heap) horizons, and pushes are
// interleaved with pops at a monotonically advancing clock, mimicking
// how the engine uses the queue.
func TestEventQueueDifferential(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var wheel eventQueue
		var ref refHeap
		var seq uint64
		now := Time(0)
		push := func(at Time) {
			seq++
			it := scheduled{at: at, seq: seq}
			wheel.push(it)
			ref.push(it)
		}
		popBoth := func() {
			w := wheel.pop()
			r := ref.pop()
			if w.at != r.at || w.seq != r.seq {
				t.Fatalf("seed %d: wheel popped (at=%d seq=%d), heap popped (at=%d seq=%d)",
					seed, w.at, w.seq, r.at, r.seq)
			}
			if w.at < now {
				t.Fatalf("seed %d: time went backwards: %d < %d", seed, w.at, now)
			}
			now = w.at
		}
		for step := 0; step < 5000; step++ {
			switch {
			case len(ref) == 0 || rng.Intn(3) != 0:
				var at Time
				switch rng.Intn(10) {
				case 0: // far beyond the wheel horizon
					at = now + wheelSpan + Time(rng.Int63n(int64(wheelSpan)*100))
				case 1, 2: // ties: reuse the current time exactly
					at = now
				default: // dense in-horizon delta
					at = now + Time(rng.Int63n(int64(wheelSpan)-1))
				}
				push(at)
			default:
				popBoth()
			}
		}
		for len(ref) > 0 {
			popBoth()
		}
		if wheel.size != 0 {
			t.Fatalf("seed %d: wheel reports %d events after drain", seed, wheel.size)
		}
	}
}

// TestEventQueueFIFOTiesAcrossBuckets pins the tie-break when many
// events share one timestamp (they land in one bucket and must pop in
// seq order), and when ties straddle the wheel/far boundary.
func TestEventQueueFIFOTiesAcrossBuckets(t *testing.T) {
	var q eventQueue
	at := wheelSpan + 5 // beyond the initial horizon: all go to the far heap
	for i := 1; i <= 100; i++ {
		q.push(scheduled{at: at, seq: uint64(i)})
	}
	for i := 1; i <= 100; i++ {
		it := q.pop()
		if it.seq != uint64(i) {
			t.Fatalf("tie-break violated: popped seq %d, want %d", it.seq, i)
		}
	}
}

// TestEventQueueResetReusesCapacity checks reset drops queued events
// and rewinds the wheel so a reused queue behaves like a fresh one.
func TestEventQueueResetReusesCapacity(t *testing.T) {
	var q eventQueue
	for i := 0; i < 500; i++ {
		q.push(scheduled{at: Time(i * 3), seq: uint64(i + 1)})
	}
	q.pop()
	q.reset()
	if q.size != 0 {
		t.Fatalf("size after reset = %d", q.size)
	}
	// The wheel must accept t=0 events again after reset.
	q.push(scheduled{at: 0, seq: 1})
	q.push(scheduled{at: 7, seq: 2})
	if it := q.pop(); it.at != 0 {
		t.Fatalf("popped at=%d after reset, want 0", it.at)
	}
	if it := q.pop(); it.at != 7 {
		t.Fatalf("popped at=%d after reset, want 7", it.at)
	}
}

// TestEngineResetBehavesLikeFresh runs the same schedule on a reused
// and a fresh engine and requires identical firing order and clocks.
func TestEngineResetBehavesLikeFresh(t *testing.T) {
	run := func(e *Engine) []Time {
		var fired []Time
		e.At(30, func(now Time) { fired = append(fired, now) })
		e.At(10, func(now Time) {
			fired = append(fired, now)
			e.After(5, func(now Time) { fired = append(fired, now) })
		})
		e.Run()
		return fired
	}
	reused := NewEngine()
	run(reused)
	// Leave junk queued, then reset.
	reused.At(99, func(Time) { t.Fatal("dropped event fired") })
	reused.Reset()
	if reused.Now() != 0 || reused.Pending() != 0 || reused.Fired() != 0 {
		t.Fatalf("reset engine not fresh: now=%v pending=%d fired=%d",
			reused.Now(), reused.Pending(), reused.Fired())
	}
	got := run(reused)
	want := run(NewEngine())
	if len(got) != len(want) {
		t.Fatalf("reused fired %v, fresh fired %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("reused fired %v, fresh fired %v", got, want)
		}
	}
}

// BenchmarkEventQueuePushPop measures the steady-state cost of the
// dense-timestamp path: push an in-horizon event, pop the minimum. The
// AllocsPerRun pin holds the hot path alloc-free once bucket capacity
// has been established.
func BenchmarkEventQueuePushPop(b *testing.B) {
	var q eventQueue
	now := Time(0)
	rng := rand.New(rand.NewSource(1))
	var seq uint64
	// Establish steady-state occupancy and bucket capacity.
	for i := 0; i < 1024; i++ {
		seq++
		q.push(scheduled{at: now + Time(rng.Int63n(2000)), seq: seq})
	}
	if avg := testing.AllocsPerRun(10000, func() {
		it := q.pop()
		now = it.at
		seq++
		q.push(scheduled{at: now + Time(rng.Int63n(2000)), seq: seq})
	}); avg != 0 {
		b.Fatalf("steady-state push/pop allocates %v per op, want 0", avg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := q.pop()
		now = it.at
		seq++
		q.push(scheduled{at: now + Time(rng.Int63n(2000)), seq: seq})
	}
}

// BenchmarkEventQueueFarHorizon measures the overflow path: every event
// lands beyond the wheel horizon and migrates through the far heap.
// Also pinned alloc-free at steady state.
func BenchmarkEventQueueFarHorizon(b *testing.B) {
	var q eventQueue
	now := Time(0)
	rng := rand.New(rand.NewSource(2))
	var seq uint64
	for i := 0; i < 256; i++ {
		seq++
		q.push(scheduled{at: now + wheelSpan + Time(rng.Int63n(int64(wheelSpan))), seq: seq})
	}
	if avg := testing.AllocsPerRun(10000, func() {
		it := q.pop()
		now = it.at
		seq++
		q.push(scheduled{at: now + wheelSpan + Time(rng.Int63n(int64(wheelSpan))), seq: seq})
	}); avg != 0 {
		b.Fatalf("steady-state far push/pop allocates %v per op, want 0", avg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := q.pop()
		now = it.at
		seq++
		q.push(scheduled{at: now + wheelSpan + Time(rng.Int63n(int64(wheelSpan))), seq: seq})
	}
}
