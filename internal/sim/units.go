package sim

// Cycles counts core clock ticks. It is deliberately a distinct type
// from Time: a cycle count is dimensionless work whose duration depends
// on the clock, and the cycleunits analyzer (internal/lint/cycleunits)
// rejects direct Cycles<->Time conversions so latency-model refactors
// cannot silently treat ticks as picoseconds.
type Cycles int64

// Time converts the cycle count to simulated time at the given clock
// period in picoseconds (SystemConfig.CyclePS), rounding to the nearest
// picosecond. This is the one sanctioned Cycles->Time crossing.
func (c Cycles) Time(periodPS float64) Time {
	return Time(float64(c)*periodPS + 0.5)
}

// Scale returns t repeated n times. Multiplying two Times is rejected
// by the cycleunits analyzer (time² is meaningless), so scaling a
// duration by a dimensionless count goes through this helper.
func (t Time) Scale(n int) Time {
	return t * Time(n) //starnumavet:allow cycleunits the sanctioned scalar-multiplication helper
}
