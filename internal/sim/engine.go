// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer picoseconds so that latency and bandwidth
// arithmetic stays exact and runs are bit-reproducible. Events scheduled
// for the same instant fire in the order they were scheduled (FIFO
// tie-breaking by sequence number), which keeps multi-component models
// deterministic regardless of map iteration order elsewhere.
package sim

import (
	"fmt"

	"starnuma/internal/metrics"
)

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common time units, expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanos returns t expressed in (possibly fractional) nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// String formats the time in nanoseconds for human consumption.
func (t Time) String() string { return fmt.Sprintf("%.3fns", t.Nanos()) }

// FromNanos converts a nanosecond quantity to a Time, rounding to the
// nearest picosecond.
func FromNanos(ns float64) Time { return Time(ns*float64(Nanosecond) + 0.5) }

// Event is a unit of scheduled work. Fire runs at the event's timestamp.
type Event func(now Time)

type scheduled struct {
	at  Time
	seq uint64
	fn  Event
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is ready to use. Engine is not safe for concurrent use;
// the simulation model is expected to be single-threaded (determinism is
// a design goal — see DESIGN.md §3).
type Engine struct {
	now        Time
	seq        uint64
	queue      eventQueue
	fired      uint64
	halted     bool
	maxPending int
	met        *metrics.Registry // nil = collection disabled
}

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return e.queue.size }

// Reset rewinds the engine to a fresh state — clock at zero, counters
// cleared, any still-queued events dropped, metrics detached — while
// retaining the event queue's allocated capacity. It exists so one
// engine can be reused across timing windows instead of reallocating
// its wheel per window (internal/core's window scratch).
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.halted = false
	e.maxPending = 0
	e.met = nil
	e.queue.reset()
}

// MaxPending reports the queue-depth high-water mark.
func (e *Engine) MaxPending() int { return e.maxPending }

// SetMetrics directs scheduler instrumentation into m: per-kind event
// counters ("sim/events/<kind>", see AtKind) and a queue-depth
// histogram sampled at every dispatch ("sim/queue_depth"). A nil m
// (the default) disables collection. Collection never influences event
// order, timing, or any simulation result.
func (e *Engine) SetMetrics(m *metrics.Registry) { e.met = m }

// At schedules fn to run at the absolute time at. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering time
// would corrupt every downstream statistic.
//
//starnuma:hotpath
func (e *Engine) At(at Time, fn Event) { e.AtKind(at, "other", fn) }

// AtKind schedules fn like At and attributes the event to kind in the
// metrics registry ("sim/events/<kind>" counters). Kinds are a pure
// instrumentation label; scheduling order and timing are identical to
// At, and nothing is recorded unless SetMetrics enabled collection.
//
//starnuma:hotpath
func (e *Engine) AtKind(at Time, kind string, fn Event) {
	if at < e.now {
		schedulePanic(at, e.now)
	}
	e.seq++
	e.queue.push(scheduled{at: at, seq: e.seq, fn: fn})
	if e.queue.size > e.maxPending {
		e.maxPending = e.queue.size
	}
	if e.met != nil {
		e.met.Add("sim/events/"+kind, 1)
	}
}

// After schedules fn to run delay picoseconds from now.
//
//starnuma:hotpath
func (e *Engine) After(delay Time, fn Event) {
	if delay < 0 {
		delayPanic(delay)
	}
	e.At(e.now+delay, fn)
}

// schedulePanic reports a scheduling-in-the-past bug. Split out of
// AtKind so the hot path keeps no fmt reference.
//
//starnuma:coldpath
func schedulePanic(at, now Time) {
	panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, now))
}

//starnuma:coldpath
func delayPanic(delay Time) {
	panic(fmt.Sprintf("sim: negative delay %v", delay))
}

// Halt stops the current Run/RunUntil call after the in-flight event
// completes. Further events remain queued.
func (e *Engine) Halt() { e.halted = true }

// Step executes the single earliest event. It reports false when the
// queue is empty.
//
//starnuma:hotpath
func (e *Engine) Step() bool {
	if e.queue.size == 0 {
		return false
	}
	it := e.queue.pop()
	e.now = it.at
	e.fired++
	if e.met != nil {
		e.met.Observe("sim/queue_depth", int64(e.queue.size))
	}
	it.fn(e.now)
	return true
}

// Run executes events until the queue is empty or Halt is called.
//
//starnuma:hotpath
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is advanced to deadline if
// the queue drains or only later events remain.
//
//starnuma:hotpath
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted {
		if e.queue.size == 0 || e.queue.peekAt() > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
