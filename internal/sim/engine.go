// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer picoseconds so that latency and bandwidth
// arithmetic stays exact and runs are bit-reproducible. Events scheduled
// for the same instant fire in the order they were scheduled (FIFO
// tie-breaking by sequence number), which keeps multi-component models
// deterministic regardless of map iteration order elsewhere.
package sim

import (
	"container/heap"
	"fmt"

	"starnuma/internal/metrics"
)

// Time is a simulation timestamp in picoseconds.
type Time int64

// Common time units, expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanos returns t expressed in (possibly fractional) nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// String formats the time in nanoseconds for human consumption.
func (t Time) String() string { return fmt.Sprintf("%.3fns", t.Nanos()) }

// FromNanos converts a nanosecond quantity to a Time, rounding to the
// nearest picosecond.
func FromNanos(ns float64) Time { return Time(ns*float64(Nanosecond) + 0.5) }

// Event is a unit of scheduled work. Fire runs at the event's timestamp.
type Event func(now Time)

type scheduled struct {
	at  Time
	seq uint64
	fn  Event
}

type eventQueue []scheduled

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(scheduled)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is ready to use. Engine is not safe for concurrent use;
// the simulation model is expected to be single-threaded (determinism is
// a design goal — see DESIGN.md §3).
type Engine struct {
	now        Time
	seq        uint64
	queue      eventQueue
	fired      uint64
	halted     bool
	maxPending int
	met        *metrics.Registry // nil = collection disabled
}

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// MaxPending reports the queue-depth high-water mark.
func (e *Engine) MaxPending() int { return e.maxPending }

// SetMetrics directs scheduler instrumentation into m: per-kind event
// counters ("sim/events/<kind>", see AtKind) and a queue-depth
// histogram sampled at every dispatch ("sim/queue_depth"). A nil m
// (the default) disables collection. Collection never influences event
// order, timing, or any simulation result.
func (e *Engine) SetMetrics(m *metrics.Registry) { e.met = m }

// At schedules fn to run at the absolute time at. Scheduling in the past
// panics: it always indicates a model bug, and silently reordering time
// would corrupt every downstream statistic.
func (e *Engine) At(at Time, fn Event) { e.AtKind(at, "other", fn) }

// AtKind schedules fn like At and attributes the event to kind in the
// metrics registry ("sim/events/<kind>" counters). Kinds are a pure
// instrumentation label; scheduling order and timing are identical to
// At, and nothing is recorded unless SetMetrics enabled collection.
func (e *Engine) AtKind(at Time, kind string, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, scheduled{at: at, seq: e.seq, fn: fn})
	if len(e.queue) > e.maxPending {
		e.maxPending = len(e.queue)
	}
	if e.met != nil {
		e.met.Add("sim/events/"+kind, 1)
	}
}

// After schedules fn to run delay picoseconds from now.
func (e *Engine) After(delay Time, fn Event) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// Halt stops the current Run/RunUntil call after the in-flight event
// completes. Further events remain queued.
func (e *Engine) Halt() { e.halted = true }

// Step executes the single earliest event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	it := heap.Pop(&e.queue).(scheduled)
	e.now = it.at
	e.fired++
	if e.met != nil {
		e.met.Observe("sim/queue_depth", int64(len(e.queue)))
	}
	it.fn(e.now)
	return true
}

// Run executes events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued; the clock is advanced to deadline if
// the queue drains or only later events remain.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted {
		if len(e.queue) == 0 || e.queue[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
