package sim

import "math/bits"

// The event queue is a bucketed timing wheel with a far-future heap
// fallback — the classic calendar-queue design, specialised for the
// simulator's dense-timestamp common case. Most scheduled events land
// within a couple of microseconds of the clock (link hops, DRAM
// accesses, compute wakes), so O(log n) heap sifting per event is
// replaced by O(1) bucket appends plus a bitmap scan per pop. Events
// beyond the wheel's horizon (sparse horizons: migration kick-offs,
// replica-write penalties) overflow into a min-heap and are drained
// into the wheel as the clock approaches them.
//
// Determinism: pop returns the global minimum under the (at, seq) total
// order. seq is unique, so the pop sequence — and therefore every
// simulation result — is bit-identical to the binary-heap
// implementation this replaces. The differential test in queue_test.go
// pins exactly that property.
const (
	// bucketShift sets the bucket width: 1<<8 ps = 256ps, around one
	// core cycle — fine enough that same-bucket scans (linear per pop)
	// stay at a handful of events even under heavy link contention.
	bucketShift = 8
	// bucketCount spans 8192 buckets ≈ 2.1µs of horizon, comfortably
	// past link/DRAM latencies (~80–600ns deltas).
	bucketCount = 8192
	bucketMask  = bucketCount - 1
	occWords    = bucketCount / 64
	wheelSpan   = Time(bucketCount << bucketShift)
)

// eventQueue is the calendar queue: a ring of time buckets with an
// occupancy bitmap, plus the far-future overflow heap. The zero value
// is ready to use (buckets allocate lazily on first push).
type eventQueue struct {
	size    int // total events queued (wheel + far)
	inWheel int

	buckets [][]scheduled // len bucketCount once initialised
	occ     [occWords]uint64
	base    Time // start time of the bucket at baseIdx
	baseIdx int

	far farHeap
}

//starnuma:hotpath called once per scheduled event
func (q *eventQueue) push(it scheduled) {
	if q.buckets == nil {
		q.init()
	}
	q.size++
	// it.at >= engine.now >= q.base always holds: base only advances to
	// the bucket of an event that has been popped (now = its at), and
	// the engine rejects past scheduling.
	if d := it.at - q.base; d < wheelSpan {
		idx := (q.baseIdx + int(d>>bucketShift)) & bucketMask
		//starnumavet:allow hotalloc amortized bucket growth; capacity is retained across the whole run
		q.buckets[idx] = append(q.buckets[idx], it)
		q.occ[idx>>6] |= 1 << uint(idx&63)
		q.inWheel++
		return
	}
	q.far.push(it)
}

//starnuma:coldpath once per engine lifetime
func (q *eventQueue) init() {
	q.buckets = make([][]scheduled, bucketCount)
}

// settle prepares the queue for a minimum lookup: it relocates the
// wheel onto the far heap's top when the wheel is empty, drains
// far-future events that the horizon has reached, and advances
// base/baseIdx to the first occupied bucket. The queue must be
// non-empty. Settling mutates cursor state but removes nothing, so it
// is idempotent and shared by pop and peekAt.
//
//starnuma:hotpath called once per dispatched event
func (q *eventQueue) settle() int {
	if q.inWheel == 0 {
		// Jump the wheel to the earliest far event's bucket; the drain
		// below moves it (and any horizon-mates) in.
		q.base = q.far[0].at &^ (1<<bucketShift - 1)
	}
	for len(q.far) > 0 && q.far[0].at-q.base < wheelSpan {
		it := q.far.pop()
		idx := (q.baseIdx + int((it.at-q.base)>>bucketShift)) & bucketMask
		//starnumavet:allow hotalloc amortized bucket growth on far-heap drain
		q.buckets[idx] = append(q.buckets[idx], it)
		q.occ[idx>>6] |= 1 << uint(idx&63)
		q.inWheel++
	}
	idx := q.nextOccupied()
	if steps := (idx - q.baseIdx) & bucketMask; steps != 0 {
		q.base += Time(steps << bucketShift)
		q.baseIdx = idx
	}
	return idx
}

// nextOccupied scans the occupancy bitmap cyclically from baseIdx for
// the first non-empty bucket. At least one bucket must be occupied.
//
//starnuma:hotpath bitmap scan per dispatched event
func (q *eventQueue) nextOccupied() int {
	w := q.baseIdx >> 6
	word := q.occ[w] &^ (1<<uint(q.baseIdx&63) - 1) // mask bits below baseIdx
	for i := 0; i <= occWords; i++ {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w = (w + 1) & (occWords - 1)
		word = q.occ[w]
	}
	panic("sim: nextOccupied on empty wheel")
}

// pop removes and returns the event that is minimal under (at, seq).
// The queue must be non-empty.
//
//starnuma:hotpath called once per dispatched event
func (q *eventQueue) pop() scheduled {
	idx := q.settle()
	b := q.buckets[idx]
	best := 0
	for i := 1; i < len(b); i++ {
		if b[i].at < b[best].at || (b[i].at == b[best].at && b[i].seq < b[best].seq) {
			best = i
		}
	}
	it := b[best]
	last := len(b) - 1
	b[best] = b[last]
	b[last] = scheduled{} // drop the closure reference so finished events can be collected
	q.buckets[idx] = b[:last]
	if last == 0 {
		q.occ[idx>>6] &^= 1 << uint(idx&63)
	}
	q.inWheel--
	q.size--
	return it
}

// peekAt returns the timestamp of the minimal event without removing
// it. The queue must be non-empty.
func (q *eventQueue) peekAt() Time {
	idx := q.settle()
	b := q.buckets[idx]
	at := b[0].at
	for i := 1; i < len(b); i++ {
		if b[i].at < at {
			at = b[i].at
		}
	}
	return at
}

// reset empties the queue (dropping any still-scheduled events and
// their closure references) and rewinds the wheel to time zero, keeping
// every allocated bucket's capacity for reuse.
//
//starnuma:coldpath once per window on engine reuse
func (q *eventQueue) reset() {
	if q.size != 0 {
		for w, word := range q.occ {
			for word != 0 {
				idx := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				b := q.buckets[idx]
				for i := range b {
					b[i] = scheduled{}
				}
				q.buckets[idx] = b[:0]
			}
			q.occ[w] = 0
		}
		for i := range q.far {
			q.far[i] = scheduled{}
		}
		q.far = q.far[:0]
	}
	q.size, q.inWheel = 0, 0
	q.base, q.baseIdx = 0, 0
}

// farHeap is a binary min-heap of scheduled events ordered by
// (at, seq), holding events beyond the wheel's horizon. It is
// hand-rolled rather than built on container/heap: heap.Push/Pop
// traffic in interface{} and would box one scheduled struct per event.
type farHeap []scheduled

func (h farHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

//starnuma:hotpath once per beyond-horizon event
func (h *farHeap) push(it scheduled) {
	//starnumavet:allow hotalloc amortized heap growth; capacity is retained across the whole run
	*h = append(*h, it)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

//starnuma:hotpath once per beyond-horizon event
func (h *farHeap) pop() scheduled {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = scheduled{}
	q = q[:n]
	*h = q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}
