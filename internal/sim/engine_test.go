package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"starnuma/internal/metrics"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatalf("Nanosecond = %d", Nanosecond)
	}
	if Second != 1_000_000_000_000 {
		t.Fatalf("Second = %d", Second)
	}
	if got := FromNanos(80).Nanos(); got != 80 {
		t.Fatalf("FromNanos(80).Nanos() = %v", got)
	}
	if got := FromNanos(0.5); got != 500 {
		t.Fatalf("FromNanos(0.5) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	if s := FromNanos(130).String(); s != "130.000ns" {
		t.Fatalf("String = %q", s)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func(Time) { got = append(got, 3) })
	e.At(10, func(Time) { got = append(got, 1) })
	e.At(20, func(Time) { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v", e.Now())
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired = %d", e.Fired())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(42, func(Time) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break violated at %d: %v", i, v)
		}
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.After(10, func(now Time) {
		fired = append(fired, now)
		e.After(5, func(now Time) { fired = append(fired, now) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(50, func(Time) {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	e.After(-1, func(Time) {})
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func(Time) {
			count++
			if count == 4 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("count = %d", count)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run() // resumes
	if count != 10 {
		t.Fatalf("count after resume = %d", count)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %v, want clock advanced to deadline", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 || e.Now() != 100 {
		t.Fatalf("fired = %v now = %v", fired, e.Now())
	}
}

func TestEngineRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(777)
	if e.Now() != 777 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue should return false")
	}
}

// Property: events always fire in non-decreasing timestamp order, and the
// set of fired timestamps equals the set scheduled.
func TestEngineOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%64) + 1
		want := make([]Time, count)
		var got []Time
		for i := 0; i < count; i++ {
			at := Time(rng.Int63n(1000))
			want[i] = at
			e.At(at, func(now Time) { got = append(got, now) })
		}
		e.Run()
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != count {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: nested After calls never observe a clock that moves backwards.
func TestEngineMonotonicClockProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		last := Time(-1)
		ok := true
		var spawn func(now Time)
		remaining := 200
		spawn = func(now Time) {
			if now < last {
				ok = false
			}
			last = now
			if remaining > 0 {
				remaining--
				e.After(Time(rng.Int63n(50)), spawn)
			}
		}
		e.At(0, spawn)
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func(Time) {})
		}
		e.Run()
	}
}

func TestEngineMetricsHooks(t *testing.T) {
	e := NewEngine()
	m := metrics.New()
	e.SetMetrics(m)
	e.AtKind(0, "wake", func(Time) {})
	e.AtKind(5, "wake", func(Time) {})
	e.AtKind(3, "send", func(Time) {})
	e.At(7, func(Time) {})
	if e.MaxPending() != 4 {
		t.Fatalf("MaxPending = %d, want 4", e.MaxPending())
	}
	e.Run()
	s := m.Snapshot()
	if s.Counters["sim/events/wake"] != 2 || s.Counters["sim/events/send"] != 1 ||
		s.Counters["sim/events/other"] != 1 {
		t.Fatalf("kind counters = %v", s.Counters)
	}
	h := s.Histograms["sim/queue_depth"]
	if h.Count != 4 {
		t.Fatalf("queue depth samples = %d, want 4", h.Count)
	}
}

// TestEngineMetricsDoNotPerturbOrder pins the determinism contract:
// with and without a registry, the same schedule fires in the same
// order at the same times.
func TestEngineMetricsDoNotPerturbOrder(t *testing.T) {
	run := func(m *metrics.Registry) []Time {
		e := NewEngine()
		e.SetMetrics(m)
		var fired []Time
		for j := 0; j < 100; j++ {
			e.AtKind(Time(j%13), "k", func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		return fired
	}
	off, on := run(nil), run(metrics.New())
	if len(off) != len(on) {
		t.Fatalf("fired %d vs %d events", len(off), len(on))
	}
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("event %d fired at %v with metrics on, %v off", i, on[i], off[i])
		}
	}
}
