package sim_test

import (
	"fmt"

	"starnuma/internal/sim"
)

// A tiny two-event simulation: schedule, run, observe the clock.
func ExampleEngine() {
	eng := sim.NewEngine()
	eng.At(100*sim.Nanosecond, func(now sim.Time) {
		fmt.Println("first event at", now)
		eng.After(30*sim.Nanosecond, func(now sim.Time) {
			fmt.Println("chained event at", now)
		})
	})
	eng.Run()
	fmt.Println("clock:", eng.Now())
	// Output:
	// first event at 100.000ns
	// chained event at 130.000ns
	// clock: 130.000ns
}
