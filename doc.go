// Package starnuma is a from-scratch Go reproduction of "StarNUMA:
// Mitigating NUMA Challenges with Memory Pooling" (Cho & Daglis, MICRO
// 2024).
//
// StarNUMA augments a hierarchical 16-socket NUMA system with a
// CXL-attached memory pool that every socket reaches in a single
// high-bandwidth hop, and migrates "vagabond" pages — pages actively
// shared by many sockets, which have no good home socket — into it.
//
// The repository contains:
//
//   - a deterministic discrete-event simulator of the multi-socket
//     system (interconnect, memory, coherence) under internal/...;
//   - the StarNUMA architecture: pool, trackers, Algorithm 1 migration;
//   - synthetic models of the paper's eight workloads;
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation (internal/exp, cmd/expall), with benchmark
//     entry points in bench_test.go.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results.
package starnuma

// Version identifies this reproduction release.
const Version = "1.0.0"
