// Latencysweep: at what CXL latency does the memory pool stop paying
// off? The paper's Fig. 10 compares 100ns and 190ns penalties; this
// example sweeps the penalty up to and past the 2-hop NUMA latency to
// locate the crossover.
//
// Run with:
//
//	go run ./examples/latencysweep [-workload TC]
package main

import (
	"flag"
	"fmt"
	"log"

	"starnuma/internal/core"
	"starnuma/internal/pool"
	"starnuma/internal/sim"
	"starnuma/internal/workload"
)

func main() {
	wl := flag.String("workload", "TC", "workload to sweep (TC is the most latency-sensitive)")
	flag.Parse()

	spec, err := workload.ByName(*wl, 0.125)
	if err != nil {
		log.Fatal(err)
	}
	simCfg := core.QuickSim()

	baseCfg := simCfg
	baseCfg.Policy = core.PolicyPerfectBaseline
	base, err := core.Run(core.BaselineSystem(), baseCfg, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CXL latency sweep, %s (baseline IPC %.3f; 2-hop NUMA access = 360ns)\n\n", spec.Name, base.IPC)
	fmt.Printf("%-14s %-12s %-8s %-8s\n", "pool penalty", "end-to-end", "speedup", "AMAT")
	for _, penaltyNS := range []float64{60, 100, 140, 190, 240, 280} {
		sys := core.StarNUMASystem()
		lat := pool.DefaultLatency()
		// Fold the extra budget into the switch stage, as the paper's
		// >16-socket scaling discussion does (§III-B).
		lat.Switch = sim.FromNanos(penaltyNS) - lat.RoundTrip() + lat.Switch
		if lat.Switch < 0 {
			lat.Switch = 0
			lat.Retimer = sim.FromNanos(penaltyNS) - 80*sim.Nanosecond
		}
		sys.Pool.Latency = lat
		sys.Topology.CXLOneWay = lat.OneWay()
		r, err := core.Run(sys, simCfg, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %-12s %-8s %.0fns\n",
			fmt.Sprintf("%.0fns", penaltyNS),
			fmt.Sprintf("%.0fns", penaltyNS+80),
			fmt.Sprintf("%.2fx", core.Speedup(r, base)),
			r.AMAT.Measured().Nanos())
	}
	fmt.Println("\npaper Fig. 10: raising the penalty 100ns -> 190ns cuts the average speedup")
	fmt.Println("1.54x -> 1.34x; TC collapses 1.63x -> 1.11x because its benefit is pure latency.")
}
