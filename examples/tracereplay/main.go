// Tracereplay: the trace-driven path of the evaluation pipeline. It
// dumps two phases of a workload's miss stream to binary trace files
// (the step-A artifact, §IV-A1), then replays them through steps B and C
// via core.RunSource — the route an externally captured trace would
// take.
//
// Run with:
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"starnuma/internal/core"
	"starnuma/internal/trace"
	"starnuma/internal/workload"
)

func main() {
	spec, err := workload.ByName("TPCC", 0.125)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewGenerator(spec, 16, 4)
	if err != nil {
		log.Fatal(err)
	}

	sim := core.QuickSim()
	sim.Phases = 2

	// Step A: materialise each phase as a trace file.
	dir, err := os.MkdirTemp("", "starnuma-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	var paths []string
	for phase := 0; phase < sim.Phases; phase++ {
		path := filepath.Join(dir, fmt.Sprintf("tpcc.p%d.sntr", phase))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		n, err := trace.DumpPhase(gen, phase, sim.PhaseInstr, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("phase %d: %d records -> %s\n", phase, n, path)
		paths = append(paths, path)
	}

	// Steps B+C, twice: once from the live generator, once replaying the
	// trace files. Identical streams must produce identical results.
	fromGen, err := core.Run(core.StarNUMASystem(), sim, spec)
	if err != nil {
		log.Fatal(err)
	}
	src, err := trace.NewSource(spec, 16, 4, paths)
	if err != nil {
		log.Fatal(err)
	}
	fromTrace, err := core.RunSource(core.StarNUMASystem(), sim, src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %8s %12s %10s\n", "source", "IPC", "AMAT", "pool pages")
	fmt.Printf("%-12s %8.3f %11.1fns %10d\n", "generator",
		fromGen.IPC, fromGen.AMAT.Measured().Nanos(), fromGen.PoolPages)
	fmt.Printf("%-12s %8.3f %11.1fns %10d\n", "trace file",
		fromTrace.IPC, fromTrace.AMAT.Measured().Nanos(), fromTrace.PoolPages)
}
