// Capacitysweep: how big does the memory pool need to be? This example
// extends the paper's Fig. 12 (which compares only 1/5 and 1/17 of the
// footprint) into a full sweep, demonstrating the public API's
// configurability.
//
// Run with:
//
//	go run ./examples/capacitysweep [-workload Masstree]
package main

import (
	"flag"
	"fmt"
	"log"

	"starnuma/internal/core"
	"starnuma/internal/workload"
)

func main() {
	wl := flag.String("workload", "BFS", "workload to sweep")
	flag.Parse()

	spec, err := workload.ByName(*wl, 0.125)
	if err != nil {
		log.Fatal(err)
	}
	sim := core.QuickSim()

	baseCfg := sim
	baseCfg.Policy = core.PolicyPerfectBaseline
	base, err := core.Run(core.BaselineSystem(), baseCfg, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pool capacity sweep, %s (baseline IPC %.3f)\n\n", spec.Name, base.IPC)
	fmt.Printf("%-10s %-8s %-10s %-10s\n", "capacity", "speedup", "pool pages", "AMAT")
	for _, frac := range []float64{1.0 / 17, 0.10, 0.20, 0.40, 0.80} {
		sys := core.StarNUMASystem()
		sys.Pool.CapacityFraction = frac
		r, err := core.Run(sys, sim, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-8s %-10d %.0fns\n",
			fmt.Sprintf("%.1f%%", 100*frac),
			fmt.Sprintf("%.2fx", core.Speedup(r, base)),
			r.PoolPages, r.AMAT.Measured().Nanos())
	}
	fmt.Println("\npaper Fig. 12: shrinking the pool 4x (1/5 -> 1/17) costs only ~4% average speedup;")
	fmt.Println("a high fraction of remote accesses targets few hot pages, which still fit.")
}
